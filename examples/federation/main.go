// Federation: three member clusters — each a full orchestrator over its own
// testbed — behind one federation tier (DESIGN.md §11). A small slice lands
// on the lowest-latency member that fits it; a big one becomes a
// cross-cluster span installed through the two-phase engine, one leg per
// member. Then the edge cluster partitions away: its spans roll back on the
// reachable members, its legs are orphaned, new demand re-homes elsewhere —
// and the heal reconciles the orphans exactly once.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"time"

	overbook "repro"
)

func main() {
	sys, err := overbook.NewSimulatedFederation(overbook.FederationOptions{
		Seed: 7,
		Clusters: []overbook.ClusterConfig{
			{Name: "edge-muc", Location: "munich-edge", LatencyMs: 1,
				Orchestrator: overbook.OrchestratorConfig{Overbook: true, Risk: 0.9, PLMNLimit: 64},
				Testbed:      overbook.TestbedConfig{MaxPLMNs: 64, RedundantTransport: true}},
			{Name: "metro-fra", Location: "frankfurt", LatencyMs: 4,
				Orchestrator: overbook.OrchestratorConfig{Overbook: true, Risk: 0.9, PLMNLimit: 64},
				Testbed:      overbook.TestbedConfig{MaxPLMNs: 64, RedundantTransport: true}},
			{Name: "core-ams", Location: "amsterdam", LatencyMs: 9,
				Orchestrator: overbook.OrchestratorConfig{Overbook: true, Risk: 0.9, PLMNLimit: 64},
				Testbed:      overbook.TestbedConfig{MaxPLMNs: 64, RedundantTransport: true}},
		},
		Federation: overbook.FederationConfig{Audit: true},
	})
	if err != nil {
		panic(err)
	}
	fed := sys.Federation
	fed.Start()

	registry := func() {
		for _, ci := range fed.ClusterInfos() {
			state := "alive"
			switch {
			case ci.Failed:
				state = "FAILED"
			case ci.Partitioned:
				state = "partitioned"
			}
			fmt.Printf("  %-10s %-13s +%.0fms  %-11s headroom %6.1f / %6.1f Mbps  %d slices\n",
				ci.Name, ci.Location, ci.LatencyMs, state,
				ci.HeadroomMbps, ci.AdvertisedMbps, ci.ActiveSlices)
		}
	}
	fmt.Println("== the registry: three members, one capacity ledger ==")
	registry()

	// A latency-tight slice: only the edge member leaves budget after its
	// federation latency is subtracted.
	fmt.Println("\n== placement dry-run: 20 Mbps under a 4 ms budget ==")
	ex, err := fed.Explain(overbook.SpanRequest{
		SLA: overbook.SLA{ThroughputMbps: 20, MaxLatencyMs: 4,
			Duration: time.Hour, PriceEUR: 80, PenaltyEUR: 2},
	})
	if err != nil {
		panic(err)
	}
	for _, cand := range ex.Candidates {
		verdict := "eligible"
		if !cand.Eligible {
			verdict = cand.Reason
		}
		fmt.Printf("  %-10s %s\n", cand.Cluster, verdict)
	}

	submit := func(tenant string, mbps, latency float64) overbook.SpanStatus {
		st, err := fed.Submit(overbook.SpanRequest{
			Tenant: tenant,
			SLA: overbook.SLA{ThroughputMbps: mbps, MaxLatencyMs: latency,
				Duration: time.Hour, PriceEUR: 4 * mbps, PenaltyEUR: 2},
		})
		if err != nil {
			panic(err)
		}
		if st.State == "rejected" {
			fmt.Printf("  %s REJECTED [%s]: %s\n", tenant, st.RejectCode, st.Reason)
			return st
		}
		fmt.Printf("  %s -> span %s (%d legs)", tenant, st.ID, len(st.Legs))
		for _, leg := range st.Legs {
			fmt.Printf("  %s:%.1f Mbps", leg.Cluster, leg.Mbps)
		}
		fmt.Println()
		return st
	}

	fmt.Println("\n== small slice lands whole on the edge; a big one spans clusters ==")
	edgeSpan := submit("iot-fleet", 20, 4)
	big := submit("broadcaster", 180, 50)
	sys.Sim.RunFor(2 * time.Minute) // legs install, barriers audit the books

	fmt.Println("\n== the edge cluster partitions away ==")
	if err := fed.Partition("edge-muc"); err != nil {
		panic(err)
	}
	if _, ok := fed.Get(edgeSpan.ID); !ok {
		fmt.Printf("  span %s had its leg on edge-muc: its record is gone and the\n"+
			"  unreachable leg is an orphan until the heal reconciles it\n", edgeSpan.ID)
	}
	if _, ok := fed.Get(big.ID); ok {
		fmt.Printf("  span %s touched no edge leg: it keeps running untouched\n", big.ID)
	}
	submit("iot-fleet-2", 20, 50) // re-homes: the edge is excluded
	sys.Sim.RunFor(time.Minute)
	registry()

	fmt.Println("\n== heal: orphans reconciled exactly once, books re-anchored ==")
	if err := fed.Heal("edge-muc"); err != nil {
		panic(err)
	}
	sys.Sim.RunFor(2 * time.Minute)
	registry()

	st := fed.Stats()
	fmt.Printf("\n%d spans installed (%d cross-cluster), %d rejected, %d live, %d barriers\n",
		st.SpansInstalled, st.SpansCrossCluster, st.SpansRejected, st.SpansLive, st.Barriers)
	if aud := fed.Auditor(); aud != nil {
		fmt.Printf("conservation auditor: %d sweeps, %d violations\n",
			aud.Stats().Sweeps, len(aud.Violations()))
	}
	g := fed.Gain()
	fmt.Printf("federated gain: %.2fx multiplexing, %d admitted member slices, net %.2f EUR\n",
		g.MultiplexingGain, g.Admitted, g.NetRevenueEUR)
}
