// Multitenant demonstration: the full Section-3 scenario. Heterogeneous
// slice requests (eMBB, automotive, e-health, mMTC) arrive as a Poisson
// process; the orchestrator admits what the overbooked capacity carries and
// rejects the rest; a periodic printout reproduces the dashboard's
// gains-vs-penalties panel while multiple slices are running.
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	r, err := scenario.NewRunner(scenario.Options{
		Seed:             2018,
		MeanInterarrival: 12 * time.Minute,
		Orchestrator: core.Config{
			Overbook:  true,
			Risk:      0.95,
			PLMNLimit: 24,
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("T+      GAIN   SOLD/CAP  ACTIVE  ADM/REJ  REVENUE€  PENALTY€   NET€")
	start := r.Sim.Now()
	r.Sim.Every(time.Hour, "report", func() {
		g := r.Orch.Gain()
		fmt.Printf("%4.0fh   %.2fx  %.2fx     %3d     %d/%d     %8.2f  %8.2f  %8.2f\n",
			r.Sim.Now().Sub(start).Hours(), g.MultiplexingGain, g.OverbookingRatio,
			g.Active, g.Admitted, g.Rejected,
			g.RevenueTotalEUR, g.PenaltyTotalEUR, g.NetRevenueEUR)
	})

	r.StartArrivals()
	if err := r.Sim.RunFor(12 * time.Hour); err != nil {
		panic(err)
	}

	res := r.Collect()
	fmt.Printf("\n12h multi-tenant run: %d requests offered, %d admitted (%.0f%%), %d rejected\n",
		res.Offered, res.Gain.Admitted, res.AdmissionRate*100, res.Gain.Rejected)
	fmt.Printf("mean multiplexing gain %.2fx; SLA violation rate %.1f%%\n",
		res.MeanMultiplexingGain, res.ViolationRate*100)
	fmt.Println("\nfinal slice table (dashboard view):")
	fmt.Println("ID     TENANT                  CLASS       STATE        ALLOC    NET€")
	for _, s := range res.Slices {
		fmt.Printf("%-6s %-22s %-11s %-12s %6.1f  %7.2f\n",
			s.ID, s.Tenant, s.Class, s.State, s.Allocation.AllocatedMbps, s.Accounting.NetEUR)
	}
	if len(res.Gain.RejectReasons) > 0 {
		fmt.Println("\nrejection reasons:")
		for reason, n := range res.Gain.RejectReasons {
			fmt.Printf("  %-22s %d\n", reason, n)
		}
	}
}
