// Resilience: the wireless transport of the testbed degrades and fails —
// rain fade on the mmWave hop, then a full link failure — and the
// orchestrator reacts: re-routing slices over the backup switch when the
// topology allows it, shrinking them to the surviving capacity when it
// doesn't, and tearing down cleanly what cannot be saved.
//
// Run with: go run ./examples/resilience
package main

import (
	"fmt"
	"time"

	overbook "repro"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func main() {
	cfg := overbook.TestbedConfig{RedundantTransport: true}
	sys, err := overbook.NewSimulated(overbook.Options{Seed: 3, Overbook: true, Testbed: cfg})
	if err != nil {
		panic(err)
	}
	orch := sys.Orchestrator
	orch.Start()

	// Three slices, all with paths over the enb-1 mmWave hop.
	var ids []overbook.Snapshot
	for i := 0; i < 3; i++ {
		sl, err := orch.Submit(overbook.Request{
			Tenant: fmt.Sprintf("tenant-%d", i+1),
			SLA: overbook.SLA{
				ThroughputMbps: 20, MaxLatencyMs: 50,
				Duration: 4 * time.Hour, PriceEUR: 80, PenaltyEUR: 2,
			},
		}, traffic.NewConstant(8, 0.5, sys.Sim.Rand()))
		if err != nil {
			panic(err)
		}
		sys.Sim.RunFor(15 * time.Second)
		ids = append(ids, sl.Snapshot())
	}
	fmt.Printf("%d slices active; primary paths use the mmWave hop %s->%s\n\n",
		orch.ActiveCount(), testbed.ENBName(0), testbed.Switch)

	show := func() {
		for _, snap := range orch.List() {
			if snap.State == "active" {
				fmt.Printf("  %-5s %-10s allocated %5.1f Mbps  path %.2f ms\n",
					snap.ID, snap.Tenant, snap.Allocation.AllocatedMbps, snap.Allocation.PathLatencyMs)
			} else {
				fmt.Printf("  %-5s %-10s %s (%s)\n", snap.ID, snap.Tenant, snap.State, snap.Reason)
			}
		}
	}

	fmt.Println("== rain fade: mmWave hop drops from 1000 to 25 Mbps ==")
	rep, err := orch.HandleLinkDegradation(testbed.ENBName(0), testbed.Switch, 25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("restored %d, dropped %d\n", len(rep.Restored), len(rep.Dropped))
	show()

	sys.Sim.RunFor(10 * time.Minute)

	fmt.Println("\n== hard failure: the degraded hop goes down entirely ==")
	rep, err = orch.HandleLinkFailure(testbed.ENBName(0), testbed.Switch)
	if err != nil {
		panic(err)
	}
	fmt.Printf("restored %d via backup switch, dropped %d\n", len(rep.Restored), len(rep.Dropped))
	show()

	sys.Sim.RunFor(30 * time.Minute)
	g := orch.Gain()
	fmt.Printf("\nafter the incident: %d slices still active, %d violation epochs total, net %.2f EUR\n",
		g.Active, g.ViolationEpochs, g.NetRevenueEUR)
	_ = ids
}
