// E-health vertical under a diurnal day: a 24-hour run showing how the
// forecasting engine tracks the day/night demand curve and how the
// overbooking engine resizes the slice's reservation hour by hour —
// the statistical multiplexing the demo's dashboard visualises.
//
// Run with: go run ./examples/ehealth
package main

import (
	"fmt"
	"time"

	overbook "repro"
	"repro/internal/monitor"
	"repro/internal/traffic"
)

func main() {
	cfg := overbook.OrchestratorConfig{
		Overbook: true,
		Risk:     0.95,
		Epoch:    5 * time.Minute,
	}
	sys, err := overbook.NewSimulated(overbook.Options{Seed: 11, Orchestrator: &cfg})
	if err != nil {
		panic(err)
	}
	orch := sys.Orchestrator
	orch.Start()

	// Diurnal demand: 15 Mbps mean, peak at 11:00 (clinic hours), noise.
	demand := traffic.NewDiurnal(15, 9, 11, 1.0, sys.Sim.Rand())
	sl, err := orch.Submit(overbook.Request{
		Tenant: "medcare-ehealth",
		SLA: overbook.SLA{
			ThroughputMbps: 30,
			MaxLatencyMs:   20,
			Duration:       24 * time.Hour,
			PriceEUR:       400,
			PenaltyEUR:     6,
			Class:          overbook.ClassEHealth,
		},
	}, demand)
	if err != nil {
		panic(err)
	}
	sys.Sim.RunFor(15 * time.Second)
	fmt.Printf("e-health slice %s active in %q\n\n", sl.ID(), sl.Allocation().DataCenter)

	fmt.Println("HOUR   DEMAND   ALLOCATED   CONTRACT   (overbooking tracks the diurnal curve)")
	id := string(sl.ID())
	for h := 0; h < 24; h++ {
		sys.Sim.RunFor(time.Hour)
		store := orch.Store()
		dm := store.Series(monitor.SliceMetric(id, "demand_mbps")).WindowStats(12).Mean
		al := store.Series(monitor.SliceMetric(id, "allocated_mbps")).WindowStats(12).Mean
		bar := ""
		for i := 0; i < int(al); i++ {
			bar += "#"
		}
		fmt.Printf("%02d:00  %5.1f    %5.1f       %.0f   %s\n", (h+1)%24, dm, al, sl.SLA().ThroughputMbps, bar)
	}

	acct := sl.Accounting()
	g := orch.Gain()
	fmt.Printf("\n24h summary: %d violation epochs of %d served (%.1f%%)\n",
		acct.ViolationEpochs, acct.ServedEpochs, acct.ViolationRate*100)
	fmt.Printf("net revenue %.2f EUR; mean multiplexing gain over the day %.2fx\n",
		acct.NetEUR, orch.Store().Series("orchestrator/multiplexing_gain").WindowStats(0).Mean)
	fmt.Printf("reconfigurations applied by the control loop: %d\n", g.Reconfigurations)
}
