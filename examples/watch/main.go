// Watch: the event-driven counterpart of examples/quickstart. Instead of
// polling List to see what the orchestrator did, subscribe once to the
// ordered slice-lifecycle stream (overbook.Event / Orchestrator.Watch) and
// observe every transition — submission, admission, installation, the
// overbooking resizes, expiry — as it is published, exactly the feed the
// dashboard and `slicectl watch` consume over GET /api/v2/events.
//
// Run with: go run ./examples/watch
package main

import (
	"context"
	"fmt"
	"time"

	overbook "repro"
	"repro/internal/traffic"
)

func main() {
	sys, err := overbook.NewSimulated(overbook.Options{Seed: 7, Overbook: true})
	if err != nil {
		panic(err)
	}
	orch := sys.Orchestrator
	orch.Start()

	// Subscribe before submitting: Since 0 tails new events. The buffer
	// absorbs everything a short simulated run publishes; a subscriber
	// that falls behind the replay ring would receive one "resync" marker
	// instead of ever stalling admission.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := orch.Watch(ctx, overbook.WatchOptions{Buffer: 4096})

	submit := func(tenant string, mbps float64, d time.Duration) {
		_, err := orch.Submit(overbook.Request{
			Tenant: tenant,
			SLA: overbook.SLA{
				ThroughputMbps: mbps, MaxLatencyMs: 30, Duration: d,
				PriceEUR: 80, PenaltyEUR: 2,
			},
		}, traffic.NewConstant(mbps*0.6, mbps*0.1, sys.Sim.Rand()))
		if err != nil {
			panic(err)
		}
	}
	submit("video-cdn", 40, 45*time.Minute)
	submit("factory", 25, 30*time.Minute)
	submit("impossible", 500, time.Hour) // rejected: exceeds radio capacity

	// One simulated hour: installs complete, the control loop squeezes the
	// overbooked reservations, the short slices expire.
	sys.Sim.RunFor(time.Hour)

	fmt.Println("== the ordered lifecycle stream ==")
	for {
		select {
		case ev := <-events:
			fmt.Printf("#%-3d %-10s %-4s %-10s %s", ev.Seq, ev.Type, ev.Slice, ev.Tenant, ev.State)
			if ev.Mbps > 0 {
				fmt.Printf(" %.1f Mbps", ev.Mbps)
			}
			if ev.RejectCode != "" {
				fmt.Printf(" [%s]", ev.RejectCode)
			}
			fmt.Println()
		case <-time.After(200 * time.Millisecond):
			// The subscriber goroutine has drained everything published.
			fmt.Printf("\nlast sequence: %d — resume any time with WatchOptions{Since: n}\n",
				orch.Events().LastSeq())
			return
		}
	}
}
