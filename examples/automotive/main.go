// Automotive vertical: a latency-critical (URLLC-like) slice whose 8 ms
// end-to-end budget cannot be met from the core cloud, so the orchestrator
// places its vEPC at the mobile edge — the latency-driven placement the
// demo's multi-domain embedding performs. The example then degrades the
// transport network and shows a too-tight request being rejected with the
// reason the dashboard would display.
//
// Run with: go run ./examples/automotive
package main

import (
	"fmt"
	"time"

	overbook "repro"
	"repro/internal/epc"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func main() {
	sys, err := overbook.NewSimulated(overbook.Options{Seed: 7, Overbook: true})
	if err != nil {
		panic(err)
	}
	orch := sys.Orchestrator
	orch.Start()

	// Compare the transport delay to each DC first.
	for _, dc := range []string{testbed.EdgeDC, testbed.CoreDC} {
		d, err := sys.Testbed.Ctrl.Transport.FeasibleDelay(dc, 20)
		if err != nil {
			panic(err)
		}
		fmt.Printf("best eNB->%-4s transport delay: %.2f ms\n", dc, d)
	}

	// The V2X profile: bursty telemetry with event spikes.
	rng := sys.Sim.Rand()
	demand := traffic.NewBursty(4, 18, 0.05, 0.25, 0.5, rng)

	fmt.Println("\nrequesting automotive slice: 20 Mbps, <= 5 ms")
	sl, err := orch.Submit(overbook.Request{
		Tenant: "acme-automotive",
		SLA: overbook.SLA{
			ThroughputMbps: 20,
			MaxLatencyMs:   5, // unmeetable from the core DC (>6 ms away)
			Duration:       2 * time.Hour,
			PriceEUR:       90,
			PenaltyEUR:     4,
			Class:          overbook.ClassAutomotive,
		},
	}, demand)
	if err != nil {
		panic(err)
	}
	sys.Sim.RunFor(15 * time.Second)
	alloc := sl.Allocation()
	fmt.Printf("placed in %q (path %.2f ms within the 5 ms budget)\n", alloc.DataCenter, alloc.PathLatencyMs)

	// Attach a fleet of vehicles to the slice's PLMN.
	for i := 0; i < 5; i++ {
		imsi := fmt.Sprintf("00101000000%04d", i)
		if _, err := sys.Testbed.Ctrl.Cloud.EPCs().Attach(epc.UE{IMSI: imsi, PLMN: alloc.PLMN}, sys.Sim.Now()); err != nil {
			panic(err)
		}
	}
	inst, _ := sys.Testbed.Ctrl.Cloud.EPCs().Get(alloc.EPCID)
	fmt.Printf("%d vehicles attached to PLMN %s via %s\n", inst.Attached(), alloc.PLMN, alloc.EPCID)

	// Run an hour: overbooking shrinks the reservation toward the bursty
	// mean while the scheduler's shared-PRB mode absorbs spikes.
	sys.Sim.RunFor(time.Hour)
	acct := sl.Accounting()
	fmt.Printf("\nafter 1h: allocated %.1f / contracted %.0f Mbps, %d/%d violation epochs, net %.2f EUR\n",
		sl.Allocation().AllocatedMbps, sl.SLA().ThroughputMbps,
		acct.ViolationEpochs, acct.ServedEpochs, acct.NetEUR)

	// An impossible request: 0.5 ms end-to-end cannot be met even at the
	// edge — the dashboard shows the rejection.
	fmt.Println("\nrequesting impossible slice: 20 Mbps, <= 0.5 ms")
	bad, err := orch.Submit(overbook.Request{
		Tenant: "acme-automotive-hard",
		SLA: overbook.SLA{
			ThroughputMbps: 20, MaxLatencyMs: 0.5,
			Duration: time.Hour, PriceEUR: 200, PenaltyEUR: 4,
			Class: overbook.ClassAutomotive,
		},
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("outcome: %s — %s\n", bad.State(), bad.Reason())
}
