// Quickstart: build the demo testbed, request one network slice through the
// public API, and watch it go through admission, multi-domain installation
// and activation — the minimal end-to-end path of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	overbook "repro"
	"repro/internal/epc"
)

func main() {
	sys, err := overbook.NewSimulated(overbook.Options{Seed: 1, Overbook: true})
	if err != nil {
		panic(err)
	}
	orch := sys.Orchestrator
	orch.Start()

	fmt.Println("== testbed ==")
	fmt.Printf("radio capacity: %.1f Mbps over %d eNBs\n",
		sys.Testbed.RadioCapacityMbps(), len(sys.Testbed.RAN.Names()))
	fmt.Printf("data centers:   %v\n", sys.Testbed.Region.Names())

	fmt.Println("\n== requesting a slice (the dashboard form fields) ==")
	sl, err := orch.Submit(overbook.Request{
		Tenant: "quickstart-tenant",
		SLA: overbook.SLA{
			ThroughputMbps: 30,        // expected throughput
			MaxLatencyMs:   20,        // maximum latency allowed
			Duration:       time.Hour, // slice time duration
			PriceEUR:       100,       // price willing to be paid
			PenaltyEUR:     2,         // penalty per SLA-violation epoch
			Class:          overbook.ClassEHealth,
		},
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("submitted: %s state=%s\n", sl.ID(), sl.State())

	// Let the installation stages elapse on the virtual clock.
	sys.Sim.RunFor(15 * time.Second)
	alloc := sl.Allocation()
	fmt.Printf("active:    PLMN=%s DC=%s path=%.2fms PRBs=%v\n",
		alloc.PLMN, alloc.DataCenter, alloc.PathLatencyMs, alloc.PRBs)

	tl, _ := orch.Timeline(sl.ID())
	fmt.Println("\n== installation timeline (Fig. 2 workflow) ==")
	fmt.Printf("T+%5.2fs radio PRBs reserved, PLMN broadcast\n", tl.RadioDone.Sub(tl.Submitted).Seconds())
	fmt.Printf("T+%5.2fs transport paths up, OpenFlow entries installed\n", tl.PathsDone.Sub(tl.Submitted).Seconds())
	fmt.Printf("T+%5.2fs Heat stack (vEPC VMs) created\n", tl.StackDone.Sub(tl.Submitted).Seconds())
	fmt.Printf("T+%5.2fs OpenEPC booted — slice active\n", tl.Active.Sub(tl.Submitted).Seconds())

	// Attach a UE to the slice's dedicated PLMN.
	ue := epc.UE{IMSI: "001010000000001", PLMN: alloc.PLMN}
	bearer, err := sys.Testbed.Ctrl.Cloud.EPCs().Attach(ue, sys.Sim.Now())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nUE %s attached: EPS bearer EBI=%d QCI=%d\n", ue.IMSI, bearer.EBI, bearer.QCI)

	// Feed some live demand and run half an hour of control epochs.
	orch.RecordDemand(sl.ID(), 14)
	sys.Sim.RunFor(30 * time.Minute)

	g := orch.Gain()
	fmt.Println("\n== gains vs penalties (the dashboard panel) ==")
	fmt.Printf("contracted %.0f Mbps, allocated %.1f Mbps -> multiplexing gain %.2fx\n",
		g.ContractedMbps, g.AllocatedMbps, g.MultiplexingGain)
	fmt.Printf("revenue %.2f EUR, penalties %.2f EUR, net %.2f EUR\n",
		g.RevenueTotalEUR, g.PenaltyTotalEUR, g.NetRevenueEUR)
}
