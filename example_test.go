package overbook_test

import (
	"fmt"
	"time"

	overbook "repro"
)

// ExampleNewSimulated shows the minimal end-to-end path: build the demo
// testbed, submit a slice with the dashboard's five parameters, let the
// installation stages elapse on the virtual clock, and read the
// gains-vs-penalties report.
func ExampleNewSimulated() {
	sys, err := overbook.NewSimulated(overbook.Options{Seed: 1, Overbook: true})
	if err != nil {
		panic(err)
	}
	sys.Orchestrator.Start()

	sl, err := sys.Orchestrator.Submit(overbook.Request{
		Tenant: "acme",
		SLA: overbook.SLA{
			ThroughputMbps: 30,        // expected throughput
			MaxLatencyMs:   20,        // maximum latency allowed
			Duration:       time.Hour, // slice time duration
			PriceEUR:       100,       // price willing to be paid
			PenaltyEUR:     2,         // penalty per SLA-violation epoch
		},
	}, nil)
	if err != nil {
		panic(err)
	}

	sys.Sim.RunFor(time.Minute)
	fmt.Println("state:", sl.State())
	fmt.Println("data center:", sl.Allocation().DataCenter)
	fmt.Println("PLMN:", sl.Allocation().PLMN)
	fmt.Printf("admitted: %d\n", sys.Orchestrator.Gain().Admitted)
	// Output:
	// state: active
	// data center: core
	// PLMN: 001-01
	// admitted: 1
}
