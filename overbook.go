// Package overbook is the public facade of the end-to-end network-slice
// overbooking orchestrator — a from-scratch reproduction of "Overbooking
// Network Slices End-to-End: Implementation and Demonstration" (Zanzi et
// al., SIGCOMM'18 Posters and Demos).
//
// A System bundles the simulated testbed of the demo (two MOCN eNBs,
// mmWave/µWave transport around a programmable switch, edge and core
// OpenStack-style data centers) with the orchestrator that admits slices
// under revenue maximization, embeds them across the three domains, and
// overbooks their resources from traffic forecasts.
//
// Quick start:
//
//	sys, _ := overbook.NewSimulated(overbook.Options{Seed: 1, Overbook: true})
//	sys.Orchestrator.Start()
//	sl, _ := sys.Orchestrator.Submit(overbook.Request{
//		Tenant: "acme",
//		SLA: overbook.SLA{ThroughputMbps: 30, MaxLatencyMs: 20,
//			Duration: time.Hour, PriceEUR: 100, PenaltyEUR: 2},
//	}, nil)
//	sys.Sim.RunFor(time.Hour)
//	fmt.Println(sl.State(), sys.Orchestrator.Gain().MultiplexingGain)
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
//
// A System is safe for concurrent use: the orchestrator core is sharded
// (see core.Config.Shards and DESIGN.md §3.4), so parallel Submit, Delete,
// Get, List, Gain, RecordDemand and the control epoch may be driven from
// many goroutines — independent tenants are admitted and installed in
// parallel. The control epoch is a phase pipeline (DESIGN.md §7): only its
// brief serial head quiesces the registry, the per-slice analysis runs one
// worker per shard, and the read plane (Gain, ActiveCount, List,
// LastEpoch) never takes more than one shard lock at a time — a dashboard
// polling at any rate cannot stall admission.
//
// The v2 surface is event-driven and context-aware: every lifecycle
// transition is published as an ordered Event, and
// Orchestrator.Watch(ctx, WatchOptions{Since: n}) resumes the stream from
// any recent sequence number (DESIGN.md §6). SubmitCtx, SubmitBatchCtx and
// ListFiltered add cancellation, filtering and keyset pagination; the v1
// methods remain as thin wrappers with identical behavior.
// The one single-goroutine surface is advancing a simulated
// System's virtual clock (Sim.RunFor / RunUntil / Step) and drawing from
// Sim.Rand, which stay with one driver to keep experiments deterministic.
package overbook

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/wal"
)

// Re-exported core types, so typical users import only this package.
type (
	// Request is a tenant's slice request.
	Request = slice.Request
	// SLA carries the contract parameters of a request.
	SLA = slice.SLA
	// Slice is a managed network slice.
	Slice = slice.Slice
	// Snapshot is the API view of a slice.
	Snapshot = slice.Snapshot
	// GainReport is the gains-vs-penalties dashboard report.
	GainReport = core.GainReport
	// OrchestratorConfig tunes admission and overbooking.
	OrchestratorConfig = core.Config
	// TestbedConfig scales the simulated infrastructure.
	TestbedConfig = testbed.Config
	// RejectionCause is the typed admission-rejection cause attached to a
	// rejected Slice (Slice.Cause, Snapshot.RejectCode).
	RejectionCause = slice.RejectionCause
	// RejectCode is the stable rejection taxonomy; the constants below are
	// errors.Is sentinels: errors.Is(&cause, overbook.RejectRadioCapacity).
	RejectCode = slice.RejectCode
	// Event is one ordered slice-lifecycle event delivered by
	// Orchestrator.Watch and GET /api/v2/events.
	Event = core.Event
	// EventType names one kind of lifecycle event (the constants below).
	EventType = core.EventType
	// WatchOptions positions and filters a Watch subscription.
	WatchOptions = core.WatchOptions
	// ListOptions filters and paginates Orchestrator.ListFiltered.
	ListOptions = core.ListOptions
	// ListPage is one page of filtered slice snapshots.
	ListPage = core.ListPage
	// PersistStatus reports the durability plane's health
	// (GET /api/v2/recovery).
	PersistStatus = core.PersistStatus
	// RecoveryReport summarises a crash-recovery boot (DESIGN.md §9).
	RecoveryReport = core.RecoveryReport
	// DryRunReport is the server-side feasibility report of
	// Orchestrator.DryRun — the full admission chain evaluated against live
	// capacity with nothing reserved (DESIGN.md §13).
	DryRunReport = core.DryRunReport
	// Template is one versioned slice class of the intent plane.
	Template = intent.Template
	// Fleet is the bulk-instantiation record of one template version.
	Fleet = intent.Fleet
	// Rollout is one canary reconfiguration of a fleet.
	Rollout = intent.Rollout
	// IntentManager drives templates, fleets and canary rollouts
	// (DESIGN.md §13).
	IntentManager = intent.Manager
	// IntentConfig parameterizes NewIntentManager.
	IntentConfig = intent.Config
)

// NewIntentManager builds the declarative intent plane over a system's
// orchestrator, scheduling rollout decisions on the system clock.
func NewIntentManager(sys *System, cfg IntentConfig) *IntentManager {
	return intent.NewManager(sys.Orchestrator, sys.Clock, cfg)
}

// The slice-lifecycle event taxonomy, re-exported from internal/core. A
// Watch subscriber (or SSE consumer) that falls behind the bounded replay
// ring receives one EventResync marker and must re-List state.
const (
	EventSubmitted    = core.EventSubmitted
	EventAdmitted     = core.EventAdmitted
	EventRejected     = core.EventRejected
	EventInstalled    = core.EventInstalled
	EventResized      = core.EventResized
	EventViolation    = core.EventViolation
	EventExpired      = core.EventExpired
	EventDeleted      = core.EventDeleted
	EventRestored     = core.EventRestored
	EventLinkFailed   = core.EventLinkFailed
	EventLinkDegraded = core.EventLinkDegraded
	EventLinkRestored = core.EventLinkRestored
	EventResync       = core.EventResync
	EventShutdown     = core.EventShutdown
)

// The stable rejection taxonomy, re-exported from internal/slice.
const (
	RejectPLMNExhausted     = slice.RejectPLMNExhausted
	RejectRadioCapacity     = slice.RejectRadioCapacity
	RejectLatencyUnmeetable = slice.RejectLatencyUnmeetable
	RejectTransportCapacity = slice.RejectTransportCapacity
	RejectCloudCapacity     = slice.RejectCloudCapacity
	RejectMECCapacity       = slice.RejectMECCapacity
	RejectRevenuePolicy     = slice.RejectRevenuePolicy
	RejectOther             = slice.RejectOther
)

// Service classes for SLA.Class.
const (
	ClassEMBB       = slice.ClassEMBB
	ClassAutomotive = slice.ClassAutomotive
	ClassEHealth    = slice.ClassEHealth
	ClassMMTC       = slice.ClassMMTC
)

// Options assembles a System. Zero values select the demo defaults.
type Options struct {
	// Seed drives all randomness of a simulated system.
	Seed int64
	// Overbook enables forecast-based provisioning (the paper's headline
	// feature). Risk tunes how aggressively (default 0.95).
	Overbook bool
	Risk     float64
	// Orchestrator overrides the full orchestrator config; when set,
	// Overbook/Risk above are ignored.
	Orchestrator *OrchestratorConfig
	// Testbed overrides the infrastructure scale.
	Testbed TestbedConfig
}

// System is an assembled testbed + orchestrator.
type System struct {
	// Sim is the virtual clock (nil for live systems).
	Sim *sim.Simulator
	// Clock is the scheduler driving the orchestrator.
	Clock sim.Scheduler
	// Testbed is the simulated infrastructure.
	Testbed *testbed.Testbed
	// Orchestrator is the system under control.
	Orchestrator *core.Orchestrator

	// walWriter is the durable log of a NewLiveDurable system (nil
	// otherwise); Shutdown owns closing it.
	walWriter *wal.Writer
}

// Shutdown stops the control loop, publishes the terminal EventShutdown on
// the event bus — so draining Watch/SSE subscribers observe a clean end of
// stream instead of a silent cut — flushes the write-ahead log and closes
// it. The returned event is the published terminal marker. Safe on systems
// without persistence; the System stays readable afterwards.
//
// A daemon that is still draining an HTTP server should not use this
// one-shot form: call Orchestrator.Shutdown first, drain the server while
// the log is still open (late mutations that are acknowledged stay
// durable), then CloseWAL — see cmd/orchestrator.
func (s *System) Shutdown() (Event, error) {
	ev := s.Orchestrator.Shutdown()
	return ev, s.CloseWAL()
}

// CloseWAL detaches the persistence sink and closes the write-ahead log.
// The close is serialized against in-flight appends by the orchestrator's
// persistence mutex; mutations arriving afterwards proceed without
// durability instead of failing. A no-op on systems without persistence,
// and on second and later calls.
func (s *System) CloseWAL() error {
	if s.walWriter == nil {
		return nil
	}
	w := s.walWriter
	s.walWriter = nil
	return s.Orchestrator.ClosePersist(w.Close)
}

func (o Options) orchConfig() core.Config {
	if o.Orchestrator != nil {
		return *o.Orchestrator
	}
	return core.Config{Overbook: o.Overbook, Risk: o.Risk}
}

// NewSimulated builds a deterministic simulated System: experiments run in
// virtual time via sys.Sim.RunFor.
func NewSimulated(opts Options) (*System, error) {
	s := sim.NewSimulator(opts.Seed)
	tb, err := testbed.New(opts.Testbed, s.Rand())
	if err != nil {
		return nil, err
	}
	orch := core.New(opts.orchConfig(), tb, s, monitor.NewStore(8192))
	return &System{Sim: s, Clock: s, Testbed: tb, Orchestrator: orch}, nil
}

// NewLive builds a wall-clock System for the daemon (cmd/orchestrator):
// the same orchestration code runs on real timers and demand arrives via
// the REST API.
func NewLive(opts Options) (*System, error) {
	clock := sim.NewRealtimeClock()
	tb, err := testbed.New(opts.Testbed, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	orch := core.New(opts.orchConfig(), tb, clock, monitor.NewStore(8192))
	return &System{Clock: clock, Testbed: tb, Orchestrator: orch}, nil
}

// NewLiveDurable is NewLive with a write-ahead log under dataDir
// (DESIGN.md §9): when the directory holds a previous run's log, the
// orchestrator is rebuilt by deterministic crash recovery — checkpoint plus
// log-tail replay — before serving; an empty directory starts fresh with
// durability on. Orchestrator.PersistStatus reports the recovery outcome
// (also served at GET /api/v2/recovery). Call System.Shutdown to flush and
// close the log on exit.
func NewLiveDurable(opts Options, dataDir string) (*System, error) {
	clock := sim.NewRealtimeClock()
	tb, err := testbed.New(opts.Testbed, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	orch, w, err := core.Recover(opts.orchConfig(), tb, clock, monitor.NewStore(8192), dataDir)
	if err != nil {
		return nil, err
	}
	return &System{Clock: clock, Testbed: tb, Orchestrator: orch, walWriter: w}, nil
}
