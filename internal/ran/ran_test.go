package ran

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/slice"
)

func plmn(mnc string) slice.PLMN { return slice.PLMN{MCC: "001", MNC: mnc} }

func newTestENB(t *testing.T) *ENB {
	t.Helper()
	e, err := NewENB(Config{Name: "enb-1", Bandwidth: BW20MHz, MeanCQI: 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBandwidthPRBTable(t *testing.T) {
	cases := map[Bandwidth]int{
		BW1_4MHz: 6, BW3MHz: 15, BW5MHz: 25, BW10MHz: 50, BW15MHz: 75, BW20MHz: 100,
	}
	for bw, want := range cases {
		if got := bw.PRBs(); got != want {
			t.Fatalf("%v PRBs = %d, want %d", bw, got, want)
		}
	}
	if Bandwidth(99).PRBs() != 0 {
		t.Fatal("invalid bandwidth has PRBs")
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	prev := -1.0
	for cqi := 0; cqi <= 15; cqi++ {
		e := Efficiency(cqi)
		if e < prev {
			t.Fatalf("efficiency not monotone at CQI %d", cqi)
		}
		prev = e
	}
	if Efficiency(-5) != 0 || Efficiency(40) != Efficiency(15) {
		t.Fatal("CQI clamping broken")
	}
}

func TestPRBThroughputScale(t *testing.T) {
	// CQI 15: 5.5547 bits/sym * 12 * 11 / 1000 ≈ 0.733 Mbps per PRB;
	// a 20 MHz cell at top CQI is then ~73 Mbps per carrier, the right
	// order for a single-stream LTE small cell.
	got := PRBThroughputMbps(15)
	if math.Abs(got-0.7332) > 0.01 {
		t.Fatalf("PRB throughput at CQI15 = %v", got)
	}
	if PRBThroughputMbps(0) != 0 {
		t.Fatal("CQI0 should carry nothing")
	}
}

func TestNewENBValidation(t *testing.T) {
	if _, err := NewENB(Config{Bandwidth: BW10MHz}, nil); err == nil {
		t.Fatal("nameless eNB accepted")
	}
	if _, err := NewENB(Config{Name: "x", Bandwidth: Bandwidth(99)}, nil); err == nil {
		t.Fatal("invalid bandwidth accepted")
	}
	if _, err := NewENB(Config{Name: "x", Bandwidth: BW1_4MHz, ControlPRBs: 6}, nil); err == nil {
		t.Fatal("all-control grid accepted")
	}
}

func TestReserveResizeRelease(t *testing.T) {
	e := newTestENB(t)
	p := plmn("01")
	if err := e.Reserve(p, 40); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Reservation(p); got != 40 {
		t.Fatalf("reservation %d", got)
	}
	if e.FreePRBs() != 60 {
		t.Fatalf("free %d", e.FreePRBs())
	}
	if err := e.Resize(p, 70); err != nil {
		t.Fatal(err)
	}
	if e.FreePRBs() != 30 {
		t.Fatalf("free after grow %d", e.FreePRBs())
	}
	if err := e.Resize(p, 10); err != nil {
		t.Fatal(err)
	}
	if e.FreePRBs() != 90 {
		t.Fatalf("free after shrink %d", e.FreePRBs())
	}
	e.Release(p)
	if e.FreePRBs() != 100 {
		t.Fatalf("free after release %d", e.FreePRBs())
	}
	if _, ok := e.Reservation(p); ok {
		t.Fatal("released PLMN still reserved")
	}
}

func TestReserveErrors(t *testing.T) {
	e := newTestENB(t)
	p := plmn("01")
	if err := e.Reserve(p, 0); err == nil {
		t.Fatal("zero reservation accepted")
	}
	if err := e.Reserve(p, 101); !errors.Is(err, ErrInsufficientPRBs) {
		t.Fatalf("oversize reserve: %v", err)
	}
	if err := e.Reserve(p, 50); err != nil {
		t.Fatal(err)
	}
	if err := e.Reserve(p, 10); !errors.Is(err, ErrAlreadyReserved) {
		t.Fatalf("duplicate reserve: %v", err)
	}
	if err := e.Resize(plmn("09"), 10); !errors.Is(err, ErrUnknownPLMN) {
		t.Fatalf("resize unknown: %v", err)
	}
	if err := e.Resize(p, 200); !errors.Is(err, ErrInsufficientPRBs) {
		t.Fatalf("oversize resize: %v", err)
	}
	if got, _ := e.Reservation(p); got != 50 {
		t.Fatalf("failed resize mutated reservation to %d", got)
	}
}

func TestMOCNListLimit(t *testing.T) {
	e, _ := NewENB(Config{Name: "e", Bandwidth: BW20MHz, MaxPLMNs: 2, MeanCQI: 12}, nil)
	e.Reserve(plmn("01"), 10)
	e.Reserve(plmn("02"), 10)
	if err := e.Reserve(plmn("03"), 10); !errors.Is(err, ErrPLMNListFull) {
		t.Fatalf("3rd PLMN on limit-2 list: %v", err)
	}
	bl := e.BroadcastList()
	if len(bl) != 2 || bl[0] != plmn("01") || bl[1] != plmn("02") {
		t.Fatalf("broadcast list %v", bl)
	}
}

func TestControlPRBsExcluded(t *testing.T) {
	e, _ := NewENB(Config{Name: "e", Bandwidth: BW10MHz, ControlPRBs: 10, MeanCQI: 12}, nil)
	if e.TotalPRBs() != 40 {
		t.Fatalf("schedulable %d", e.TotalPRBs())
	}
	if err := e.Reserve(plmn("01"), 41); !errors.Is(err, ErrInsufficientPRBs) {
		t.Fatal("reservation ate control PRBs")
	}
}

func TestSizingRoundTrip(t *testing.T) {
	e := newTestENB(t) // CQI 12 → 3.9023*12*11/1000 = 0.515 Mbps/PRB
	prbs := e.PRBsForThroughput(30)
	if got := e.ThroughputForPRBs(prbs); got < 30 {
		t.Fatalf("PRB sizing under-provisions: %d PRBs -> %.2f Mbps", prbs, got)
	}
	if got := e.ThroughputForPRBs(prbs - 1); got >= 30 {
		t.Fatalf("PRB sizing wastes a block: %d PRBs already give %.2f", prbs-1, got)
	}
	if e.PRBsForThroughput(0) != 0 || e.PRBsForThroughput(-5) != 0 {
		t.Fatal("non-positive demand sized to PRBs")
	}
}

func TestScheduleEpochDedicated(t *testing.T) {
	e := newTestENB(t)
	p1, p2 := plmn("01"), plmn("02")
	e.Reserve(p1, 50)
	e.Reserve(p2, 50)
	per := PRBThroughputMbps(12)

	served, util := e.ScheduleEpoch(DemandMbps{p1: 10 * per, p2: 100 * per}, false)
	if math.Abs(served[p1]-10*per) > 1e-9 {
		t.Fatalf("p1 served %.3f, want %.3f", served[p1], 10*per)
	}
	// p2 demands 100 PRBs worth but owns only 50: capped without sharing.
	if math.Abs(served[p2]-50*per) > 1e-9 {
		t.Fatalf("p2 served %.3f, want %.3f", served[p2], 50*per)
	}
	if math.Abs(util-0.60) > 1e-9 {
		t.Fatalf("util %.3f, want 0.60", util)
	}
}

func TestScheduleEpochSharedUnused(t *testing.T) {
	e := newTestENB(t)
	p1, p2 := plmn("01"), plmn("02")
	e.Reserve(p1, 50)
	e.Reserve(p2, 50)
	per := PRBThroughputMbps(12)

	served, util := e.ScheduleEpoch(DemandMbps{p1: 10 * per, p2: 100 * per}, true)
	// p2 can now borrow p1's 40 idle PRBs: 50 own + 40 borrowed = 90.
	if math.Abs(served[p2]-90*per) > 1e-6 {
		t.Fatalf("p2 served %.3f, want %.3f", served[p2], 90*per)
	}
	if math.Abs(served[p1]-10*per) > 1e-9 {
		t.Fatalf("p1 served %.3f", served[p1])
	}
	if math.Abs(util-1.0) > 1e-6 {
		t.Fatalf("util %.3f, want 1.0", util)
	}
}

func TestScheduleEpochZeroDemand(t *testing.T) {
	e := newTestENB(t)
	e.Reserve(plmn("01"), 30)
	served, util := e.ScheduleEpoch(DemandMbps{}, true)
	if served[plmn("01")] != 0 || util != 0 {
		t.Fatalf("served %v util %v with no demand", served, util)
	}
}

func TestUtilizationTracksReservations(t *testing.T) {
	e := newTestENB(t)
	if e.Utilization() != 0 {
		t.Fatal("fresh eNB utilised")
	}
	e.Reserve(plmn("01"), 25)
	if got := e.Utilization(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("utilization %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	e := newTestENB(t)
	e.Reserve(plmn("01"), 20)
	s := e.Snapshot()
	if s.Name != "enb-1" || s.TotalPRBs != 100 || s.FreePRBs != 80 {
		t.Fatalf("snapshot %+v", s)
	}
	if len(s.PLMNs) != 1 || s.PLMNs[0].PRBs != 20 {
		t.Fatalf("snapshot plmns %+v", s.PLMNs)
	}
}

func TestNetworkRegistry(t *testing.T) {
	n := NewNetwork()
	e1, _ := NewENB(Config{Name: "enb-1", Bandwidth: BW10MHz, MeanCQI: 12}, nil)
	e2, _ := NewENB(Config{Name: "enb-2", Bandwidth: BW20MHz, MeanCQI: 12}, nil)
	if err := n.Add(e1); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(e2); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(e1); err == nil {
		t.Fatal("duplicate eNB accepted")
	}
	if got := n.Names(); len(got) != 2 || got[0] != "enb-1" {
		t.Fatalf("names %v", got)
	}
	if _, ok := n.Get("enb-2"); !ok {
		t.Fatal("Get missed enb-2")
	}
	want := e1.CapacityMbps() + e2.CapacityMbps()
	if got := n.TotalCapacityMbps(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("total capacity %v, want %v", got, want)
	}
}

func TestCQIDrawBounded(t *testing.T) {
	e, _ := NewENB(Config{Name: "e", Bandwidth: BW10MHz, MeanCQI: 2, CQIStdDev: 6}, rand.New(rand.NewSource(4)))
	for i := 0; i < 500; i++ {
		cqi := e.drawCQI()
		if cqi < 1 || cqi > 15 {
			t.Fatalf("CQI draw %d out of range", cqi)
		}
	}
}

// Property: scheduling never serves a PLMN more than its demand, never
// serves more PRBs than the grid holds, and without sharing never exceeds
// each PLMN's own reservation.
func TestPropertySchedulerConservation(t *testing.T) {
	per := PRBThroughputMbps(12)
	f := func(resRaw [3]uint8, demRaw [3]uint16, share bool) bool {
		e, _ := NewENB(Config{Name: "p", Bandwidth: BW20MHz, MeanCQI: 12}, nil)
		plmns := []slice.PLMN{plmn("01"), plmn("02"), plmn("03")}
		res := map[slice.PLMN]int{}
		free := 100
		for i, p := range plmns {
			r := int(resRaw[i])%50 + 1
			if r > free {
				r = free
			}
			if r == 0 {
				continue
			}
			if err := e.Reserve(p, r); err != nil {
				return false
			}
			res[p] = r
			free -= r
		}
		demand := DemandMbps{}
		for i, p := range plmns {
			demand[p] = float64(demRaw[i]%200) * per / 4
		}
		served, util := e.ScheduleEpoch(demand, share)
		totalPRBs := 0.0
		for p, s := range served {
			if s > demand[p]+1e-6 {
				return false // served more than asked
			}
			if !share && s > float64(res[p])*per+1e-6 {
				return false // exceeded dedicated budget
			}
			totalPRBs += s / per
		}
		return totalPRBs <= 100+1e-6 && util >= 0 && util <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
