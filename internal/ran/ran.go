// Package ran models the radio access network of the testbed: LTE eNBs
// supporting the Multi Operator Core Network (MOCN) RAN-sharing model, where
// each network slice is mapped onto a dedicated PLMN with a reserved share
// of Physical Resource Blocks (PRBs).
//
// The demo used two NEC MB4420 small cells. The orchestrator's RAN
// controller never touches symbols or HARQ; it reserves PRB budgets per
// PLMN, resizes them when the overbooking engine reconfigures, and reads
// back utilization. This package therefore models exactly that control
// surface plus a per-TTI-abstracted scheduler that converts PRB budgets and
// a CQI distribution into served throughput.
package ran

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/slice"
)

// Bandwidth is an LTE channel bandwidth.
type Bandwidth int

// Standard E-UTRA channel bandwidths. The zero value is invalid so that an
// unset configuration cannot silently select the smallest grid.
const (
	bwInvalid Bandwidth = iota
	BW1_4MHz
	BW3MHz
	BW5MHz
	BW10MHz
	BW15MHz
	BW20MHz
)

// PRBs returns the number of physical resource blocks for the bandwidth
// (3GPP TS 36.101 Table 5.6-1).
func (b Bandwidth) PRBs() int {
	switch b {
	case BW1_4MHz:
		return 6
	case BW3MHz:
		return 15
	case BW5MHz:
		return 25
	case BW10MHz:
		return 50
	case BW15MHz:
		return 75
	case BW20MHz:
		return 100
	default:
		return 0
	}
}

// String returns the bandwidth label.
func (b Bandwidth) String() string {
	switch b {
	case BW1_4MHz:
		return "1.4MHz"
	case BW3MHz:
		return "3MHz"
	case BW5MHz:
		return "5MHz"
	case BW10MHz:
		return "10MHz"
	case BW15MHz:
		return "15MHz"
	case BW20MHz:
		return "20MHz"
	default:
		return fmt.Sprintf("Bandwidth(%d)", int(b))
	}
}

// cqiEfficiency maps CQI 1..15 to spectral efficiency in bits/symbol
// (3GPP TS 36.213 Table 7.2.3-1). Index 0 is out-of-range (no service).
var cqiEfficiency = [16]float64{
	0,      // CQI 0: out of range
	0.1523, // QPSK 78/1024
	0.2344,
	0.3770,
	0.6016,
	0.8770,
	1.1758,
	1.4766, // 16QAM starts
	1.9141,
	2.4063,
	2.7305, // 64QAM starts
	3.3223,
	3.9023,
	4.5234,
	5.1152,
	5.5547,
}

// Efficiency returns the spectral efficiency (bits/symbol) for a CQI in
// 0..15; out-of-range CQIs clamp.
func Efficiency(cqi int) float64 {
	if cqi < 0 {
		cqi = 0
	}
	if cqi > 15 {
		cqi = 15
	}
	return cqiEfficiency[cqi]
}

// PRBThroughputMbps returns the downlink throughput of one PRB sustained
// over a second at the given CQI. A PRB is 12 subcarriers; with a normal
// cyclic prefix there are 14 OFDM symbols per 1 ms subframe, of which ~11
// carry data after control/reference overhead (3 symbols PDCCH+CRS).
func PRBThroughputMbps(cqi int) float64 {
	const (
		subcarriers      = 12
		dataSymbolsPerMs = 11
	)
	bitsPerMs := Efficiency(cqi) * subcarriers * dataSymbolsPerMs
	return bitsPerMs / 1000 // kbit/ms == Mbit/s
}

// Errors returned by the eNB reservation API. The orchestrator surfaces
// them as admission-rejection reasons.
var (
	ErrInsufficientPRBs = errors.New("ran: insufficient free PRBs")
	ErrUnknownPLMN      = errors.New("ran: PLMN has no reservation")
	ErrPLMNListFull     = errors.New("ran: MOCN broadcast list full")
	ErrAlreadyReserved  = errors.New("ran: PLMN already has a reservation")
)

// Config describes one eNB.
type Config struct {
	// Name identifies the eNB ("enb-1", "enb-2" in the testbed).
	Name string
	// Bandwidth sets the PRB grid size.
	Bandwidth Bandwidth
	// Carriers aggregates this many component carriers of Bandwidth into
	// one logical cell (default 1, the demo's single-carrier MB4420).
	// Scale-out simulations raise it so thousands of slices fit one cell's
	// PRB grid; the control surface (reserve/resize/release per PLMN) is
	// unchanged.
	Carriers int
	// MaxPLMNs bounds the MOCN broadcast list (SIB1 allows 6).
	MaxPLMNs int
	// MeanCQI is the average channel quality of the attached UE
	// population; per-slice CQI draws centre here.
	MeanCQI float64
	// CQIStdDev spreads the per-epoch CQI draws (0 = deterministic).
	CQIStdDev float64
	// ControlPRBs are always kept aside for common channels and cannot
	// be reserved by slices.
	ControlPRBs int
}

// ENB is one MOCN-sharing eNode-B. All methods are safe for concurrent use.
type ENB struct {
	cfg Config
	rng *rand.Rand

	mu       sync.Mutex
	reserved map[slice.PLMN]int // PRBs per PLMN
	order    []slice.PLMN       // reservation order, for deterministic iteration
	used     int                // sum of reserved PRBs, kept incrementally so
	// the free-PRB check on every reserve/resize is O(1) instead of a scan
	// over all PLMNs (the control epoch resizes every slice every period).

	// ver counts every state change that can flip a headroom answer —
	// Reserve, Resize, Release, SetMeanCQI — so per-cell feasibility
	// summaries can be cached and invalidated incrementally.
	ver atomic.Uint64
}

// Version returns a counter bumped by every reservation or channel-quality
// mutation; equal versions guarantee equal headroom answers.
func (e *ENB) Version() uint64 { return e.ver.Load() }

// NewENB validates cfg and returns the eNB. rng may be nil for a
// deterministic (mean-CQI) channel.
func NewENB(cfg Config, rng *rand.Rand) (*ENB, error) {
	if cfg.Name == "" {
		return nil, errors.New("ran: eNB needs a name")
	}
	if cfg.Bandwidth.PRBs() == 0 {
		return nil, fmt.Errorf("ran: invalid bandwidth %v", cfg.Bandwidth)
	}
	if cfg.MaxPLMNs <= 0 {
		cfg.MaxPLMNs = slice.DefaultPLMNLimit
	}
	if cfg.MeanCQI <= 0 {
		cfg.MeanCQI = 12
	}
	if cfg.Carriers <= 0 {
		cfg.Carriers = 1
	}
	if cfg.ControlPRBs < 0 || cfg.ControlPRBs >= cfg.Bandwidth.PRBs()*cfg.Carriers {
		return nil, fmt.Errorf("ran: control PRBs %d out of range for %v x%d", cfg.ControlPRBs, cfg.Bandwidth, cfg.Carriers)
	}
	return &ENB{cfg: cfg, rng: rng, reserved: make(map[slice.PLMN]int)}, nil
}

// Name returns the eNB name.
func (e *ENB) Name() string { return e.cfg.Name }

// TotalPRBs returns the schedulable PRBs (grid across all aggregated
// carriers, minus control overhead).
func (e *ENB) TotalPRBs() int { return e.cfg.Bandwidth.PRBs()*e.cfg.Carriers - e.cfg.ControlPRBs }

// FreePRBs returns unreserved schedulable PRBs.
func (e *ENB) FreePRBs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.freeLocked()
}

func (e *ENB) freeLocked() int { return e.TotalPRBs() - e.used }

// MeanCQI returns the configured average channel quality. Guarded by the
// cell mutex because SetMeanCQI (chaos fade injection) may rescale it at
// runtime.
func (e *ENB) MeanCQI() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.MeanCQI
}

// CapacityMbps returns the cell capacity at the mean CQI.
func (e *ENB) CapacityMbps() float64 {
	return float64(e.TotalPRBs()) * PRBThroughputMbps(int(math.Round(e.MeanCQI())))
}

// PRBsForThroughput converts a required throughput into a PRB budget at the
// eNB's mean CQI, rounding up. It is the sizing function the RAN controller
// uses when translating an orchestrator reservation into radio resources.
func (e *ENB) PRBsForThroughput(mbps float64) int {
	if mbps <= 0 {
		return 0
	}
	per := PRBThroughputMbps(int(math.Round(e.MeanCQI())))
	return int(math.Ceil(mbps / per))
}

// ThroughputForPRBs is the inverse sizing function at mean CQI.
func (e *ENB) ThroughputForPRBs(prbs int) float64 {
	return float64(prbs) * PRBThroughputMbps(int(math.Round(e.MeanCQI())))
}

// Reserve dedicates prbs to the PLMN, adding it to the MOCN broadcast list.
func (e *ENB) Reserve(p slice.PLMN, prbs int) error {
	if prbs <= 0 {
		return fmt.Errorf("ran: reservation of %d PRBs on %s must be positive", prbs, e.cfg.Name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.reserved[p]; ok {
		return fmt.Errorf("%w: %s on %s", ErrAlreadyReserved, p, e.cfg.Name)
	}
	if len(e.reserved) >= e.cfg.MaxPLMNs {
		return fmt.Errorf("%w: %d PLMNs on %s", ErrPLMNListFull, len(e.reserved), e.cfg.Name)
	}
	if prbs > e.freeLocked() {
		return fmt.Errorf("%w: want %d, free %d on %s", ErrInsufficientPRBs, prbs, e.freeLocked(), e.cfg.Name)
	}
	e.reserved[p] = prbs
	e.used += prbs
	e.order = append(e.order, p)
	e.ver.Add(1)
	return nil
}

// Resize changes the PLMN's reservation to prbs (the overbooking
// reconfiguration primitive). Growing fails if free PRBs do not cover the
// increase.
func (e *ENB) Resize(p slice.PLMN, prbs int) error {
	if prbs <= 0 {
		return fmt.Errorf("ran: resize to %d PRBs must be positive (release instead)", prbs)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, ok := e.reserved[p]
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrUnknownPLMN, p, e.cfg.Name)
	}
	delta := prbs - cur
	if delta > e.freeLocked() {
		return fmt.Errorf("%w: grow by %d, free %d on %s", ErrInsufficientPRBs, delta, e.freeLocked(), e.cfg.Name)
	}
	e.reserved[p] = prbs
	e.used += delta
	e.ver.Add(1)
	return nil
}

// Release removes the PLMN's reservation and broadcast entry. Unknown PLMNs
// are a no-op so teardown is idempotent.
func (e *ENB) Release(p slice.PLMN) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.reserved[p]
	if !ok {
		return
	}
	delete(e.reserved, p)
	e.used -= n
	for i, q := range e.order {
		if q == p {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.ver.Add(1)
}

// SetMeanCQI rescales the cell's channel quality (clamped to 1..15) — the
// chaos model of eNB capacity loss: a deep fade or interference event cuts
// the throughput every PRB sustains, shrinking CapacityMbps and the
// orchestrator's overbooking budget while existing PRB reservations stay
// intact. Admission tightens and resizes re-quantize at the new CQI; no
// reservation is invalidated, so the books stay conserved throughout.
func (e *ENB) SetMeanCQI(cqi float64) {
	if cqi < 1 {
		cqi = 1
	}
	if cqi > 15 {
		cqi = 15
	}
	e.mu.Lock()
	e.cfg.MeanCQI = cqi
	e.mu.Unlock()
	e.ver.Add(1)
}

// AuditConservation cross-checks the cell's incremental PRB accounting
// against ground truth and returns one message per discrepancy (empty when
// the books balance): the used counter must equal the sum of per-PLMN
// reservations, free PRBs must never go negative, every reservation must be
// positive, and the broadcast-list order must mirror the reservation map.
// It is the radio half of the invariant auditor's conservation sweep.
func (e *ENB) AuditConservation() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	sum := 0
	for p, n := range e.reserved {
		if n <= 0 {
			out = append(out, fmt.Sprintf("ran %s: PLMN %s holds non-positive reservation %d", e.cfg.Name, p, n))
		}
		sum += n
	}
	if sum != e.used {
		out = append(out, fmt.Sprintf("ran %s: used counter %d != sum of reservations %d", e.cfg.Name, e.used, sum))
	}
	if e.freeLocked() < 0 {
		out = append(out, fmt.Sprintf("ran %s: negative slack (%d free of %d)", e.cfg.Name, e.freeLocked(), e.TotalPRBs()))
	}
	if len(e.order) != len(e.reserved) {
		out = append(out, fmt.Sprintf("ran %s: broadcast list has %d entries, reservation map %d", e.cfg.Name, len(e.order), len(e.reserved)))
	}
	for _, p := range e.order {
		if _, ok := e.reserved[p]; !ok {
			out = append(out, fmt.Sprintf("ran %s: broadcast list entry %s has no reservation", e.cfg.Name, p))
		}
	}
	if len(e.reserved) > e.cfg.MaxPLMNs {
		out = append(out, fmt.Sprintf("ran %s: %d PLMNs exceed MOCN list bound %d", e.cfg.Name, len(e.reserved), e.cfg.MaxPLMNs))
	}
	return out
}

// Reservation returns the PRBs currently dedicated to the PLMN.
func (e *ENB) Reservation(p slice.PLMN) (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.reserved[p]
	return n, ok
}

// BroadcastList returns the PLMNs in the MOCN SIB1 list, in reservation
// order.
func (e *ENB) BroadcastList() []slice.PLMN {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]slice.PLMN(nil), e.order...)
}

// drawCQI samples the epoch CQI for one slice's UE population.
func (e *ENB) drawCQI() int {
	cqi := e.MeanCQI()
	if e.rng != nil && e.cfg.CQIStdDev > 0 {
		cqi += e.rng.NormFloat64() * e.cfg.CQIStdDev
	}
	v := int(math.Round(cqi))
	if v < 1 {
		v = 1
	}
	if v > 15 {
		v = 15
	}
	return v
}

// DemandMbps is the per-PLMN offered load for one scheduling epoch.
type DemandMbps map[slice.PLMN]float64

// ServedMbps is the per-PLMN throughput delivered in one epoch.
type ServedMbps map[slice.PLMN]float64

// ScheduleEpoch runs the MOCN scheduler for one monitoring epoch: each PLMN
// is served up to its reserved PRB budget at the epoch's CQI; if
// shareUnused is true, PRBs left idle by under-demanding slices are
// redistributed to saturated ones (work-conserving proportional reuse, the
// in-scheduler statistical multiplexing of [1]).
//
// It returns the delivered throughput per PLMN and the overall PRB
// utilization in [0,1].
func (e *ENB) ScheduleEpoch(demand DemandMbps, shareUnused bool) (ServedMbps, float64) {
	e.mu.Lock()
	order := append([]slice.PLMN(nil), e.order...)
	res := make(map[slice.PLMN]int, len(e.reserved))
	for p, n := range e.reserved {
		res[p] = n
	}
	e.mu.Unlock()

	served := make(ServedMbps, len(order))
	perPRB := PRBThroughputMbps(e.drawCQI())
	if perPRB <= 0 {
		for _, p := range order {
			served[p] = 0
		}
		return served, 0
	}

	type state struct {
		plmn    slice.PLMN
		want    float64 // PRBs needed to satisfy demand (fractional)
		granted float64
	}
	states := make([]state, 0, len(order))
	idle := 0.0
	usedPRBs := 0.0
	for _, p := range order {
		d := demand[p]
		budget := float64(res[p])
		want := d / perPRB
		granted := math.Min(want, budget)
		if granted < 0 {
			granted = 0
		}
		idle += budget - granted
		usedPRBs += granted
		states = append(states, state{plmn: p, want: want, granted: granted})
	}

	if shareUnused && idle > 1e-9 {
		// Redistribute idle PRBs to saturated slices proportionally to
		// their unmet demand, iterating because a grant can satiate.
		for iter := 0; iter < 4 && idle > 1e-9; iter++ {
			totalUnmet := 0.0
			for _, s := range states {
				if s.want > s.granted {
					totalUnmet += s.want - s.granted
				}
			}
			if totalUnmet <= 1e-9 {
				break
			}
			share := math.Min(idle, totalUnmet)
			for i := range states {
				s := &states[i]
				if s.want <= s.granted {
					continue
				}
				extra := share * (s.want - s.granted) / totalUnmet
				if s.granted+extra > s.want {
					extra = s.want - s.granted
				}
				s.granted += extra
				idle -= extra
				usedPRBs += extra
			}
		}
	}

	for _, s := range states {
		served[s.plmn] = s.granted * perPRB
	}
	util := 0.0
	if t := float64(e.TotalPRBs()); t > 0 {
		util = usedPRBs / t
	}
	return served, util
}

// Utilization returns the fraction of schedulable PRBs currently reserved.
func (e *ENB) Utilization() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := float64(e.TotalPRBs())
	if t == 0 {
		return 0
	}
	return float64(e.TotalPRBs()-e.freeLocked()) / t
}

// Snapshot summarises the eNB state for telemetry.
type Snapshot struct {
	Name        string            `json:"name"`
	Bandwidth   string            `json:"bandwidth"`
	TotalPRBs   int               `json:"total_prbs"`
	FreePRBs    int               `json:"free_prbs"`
	Utilization float64           `json:"utilization"`
	PLMNs       []PLMNReservation `json:"plmns"`
}

// PLMNReservation is one entry of the snapshot.
type PLMNReservation struct {
	PLMN slice.PLMN `json:"plmn"`
	PRBs int        `json:"prbs"`
}

// Snapshot captures the eNB state.
func (e *ENB) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Snapshot{
		Name:      e.cfg.Name,
		Bandwidth: e.cfg.Bandwidth.String(),
		TotalPRBs: e.TotalPRBs(),
		FreePRBs:  e.freeLocked(),
	}
	if s.TotalPRBs > 0 {
		s.Utilization = float64(s.TotalPRBs-s.FreePRBs) / float64(s.TotalPRBs)
	}
	for _, p := range e.order {
		s.PLMNs = append(s.PLMNs, PLMNReservation{PLMN: p, PRBs: e.reserved[p]})
	}
	return s
}

// Network is the RAN domain: the set of eNBs the RAN controller manages.
// All methods are safe for concurrent use; lookups take a shared read lock
// because every slice installation walks the eNB set.
type Network struct {
	mu   sync.RWMutex
	enbs map[string]*ENB
	ver  atomic.Uint64 // bumped when the eNB set changes
}

// Version returns a counter bumped when the eNB set changes; callers may
// cache the cell list keyed by it.
func (n *Network) Version() uint64 { return n.ver.Load() }

// NewNetwork returns an empty RAN domain.
func NewNetwork() *Network { return &Network{enbs: make(map[string]*ENB)} }

// Add registers an eNB; duplicate names error.
func (n *Network) Add(e *ENB) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.enbs[e.Name()]; ok {
		return fmt.Errorf("ran: duplicate eNB %q", e.Name())
	}
	n.enbs[e.Name()] = e
	n.ver.Add(1)
	return nil
}

// Get returns the named eNB.
func (n *Network) Get(name string) (*ENB, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.enbs[name]
	return e, ok
}

// Names lists eNB names sorted.
func (n *Network) Names() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.enbs))
	for name := range n.enbs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the eNBs sorted by name.
func (n *Network) All() []*ENB {
	names := n.Names()
	out := make([]*ENB, 0, len(names))
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, name := range names {
		out = append(out, n.enbs[name])
	}
	return out
}

// TotalCapacityMbps sums the mean-CQI capacity of all cells.
func (n *Network) TotalCapacityMbps() float64 {
	sum := 0.0
	for _, e := range n.All() {
		sum += e.CapacityMbps()
	}
	return sum
}
