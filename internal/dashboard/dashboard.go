// Package dashboard renders the demo's control dashboard: a web page that
// "allows requesting network slices on-demand, monitors their performance
// once deployed and displays the achieved multiplexing gain through
// overbooking" (abstract), including "the current gains vs. penalties when
// multiple network slices are running" (Section 3).
//
// The page is server-rendered html/template with an inline SVG chart (no
// JavaScript frameworks — the repository is stdlib-only). Instead of the
// old fixed-interval polling refresh, a few inline lines of vanilla JS
// subscribe to the orchestrator's lifecycle stream (GET /api/v2/events,
// Server-Sent Events) and re-render only when something actually happened —
// an admission, a squeeze, an SLA violation, a restoration. Browsers
// without EventSource (and error paths) fall back to the old timed reload.
// A small HTML form posts slice requests to the REST API through the same
// orchestrator, and a "recent events" pane shows the tail of the ordered
// event sequence.
//
// Each render reads Gain() and List() — both served from the orchestrator's
// lock-free read plane (per-shard counters and shard-by-shard snapshots; see
// core's gain.go and DESIGN.md §7), so dashboard polling at any rate never
// freezes admission or the control epoch, and epoch-aligned numbers are
// additionally available from the published EpochSnapshot (GET
// /api/v2/epoch).
package dashboard

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/slice"
)

// Handler serves the dashboard over an orchestrator.
type Handler struct {
	orch *core.Orchestrator
	tpl  *template.Template
	// RefreshSeconds sets the fallback reload interval used when the
	// event stream is unavailable (default 5).
	RefreshSeconds int
}

// New builds the dashboard handler.
func New(orch *core.Orchestrator) *Handler {
	return &Handler{
		orch:           orch,
		tpl:            template.Must(template.New("dash").Parse(pageTemplate)),
		RefreshSeconds: 5,
	}
}

// view is the template's data model.
type view struct {
	Refresh    int
	Now        string
	Gain       core.GainReport
	GainPct    string
	Slices     []slice.Snapshot
	ENBs       []enbView
	DCs        []dcView
	Chart      template.HTML
	RejectRows []rejectRow
	// Events is the tail of the lifecycle event sequence, newest first,
	// read straight from the orchestrator's replay ring.
	Events []core.Event
	// LastSeq seeds the page's EventSource resume point.
	LastSeq int64
}

type enbView struct {
	Name  string
	Total int
	Free  int
	Util  string
}

type dcView struct {
	Name string
	Kind string
	Util string
	VMs  int
}

type rejectRow struct {
	Reason string
	Count  int
}

// ServeHTTP renders the dashboard (GET) and accepts the request form (POST).
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		h.handleForm(w, r)
		return
	}
	v := view{
		Refresh: h.RefreshSeconds,
		Now:     time.Now().UTC().Format(time.RFC3339),
		// LastSeq is read before any state below: an event published while
		// the page gathers Gain/List lands after this sequence, so the
		// EventSource resume (?since=LastSeq) re-renders rather than
		// skipping it and leaving the page stale.
		LastSeq: h.orch.Events().LastSeq(),
		Gain:    h.orch.Gain(),
	}
	v.GainPct = fmt.Sprintf("%.1f%%", (v.Gain.MultiplexingGain-1)*100)
	v.Slices = h.orch.List()
	tb := h.orch.Testbed()
	for _, e := range tb.RAN.All() {
		s := e.Snapshot()
		v.ENBs = append(v.ENBs, enbView{
			Name: s.Name, Total: s.TotalPRBs, Free: s.FreePRBs,
			Util: fmt.Sprintf("%.0f%%", s.Utilization*100),
		})
	}
	for _, dc := range tb.Region.All() {
		c := dc.Capacity()
		v.DCs = append(v.DCs, dcView{
			Name: dc.Name(), Kind: dc.Kind(),
			Util: fmt.Sprintf("%.0f%%", dc.Utilization()*100), VMs: c.VMs,
		})
	}
	// The histogram is keyed on the stable typed cause codes (bounded
	// cardinality); sort for a deterministic render.
	for code, n := range v.Gain.RejectReasons {
		v.RejectRows = append(v.RejectRows, rejectRow{Reason: code, Count: n})
	}
	sort.Slice(v.RejectRows, func(i, j int) bool { return v.RejectRows[i].Reason < v.RejectRows[j].Reason })
	// Recent lifecycle events, newest first (the ring returns oldest first).
	recent := h.orch.Events().Recent(12)
	for i := len(recent) - 1; i >= 0; i-- {
		v.Events = append(v.Events, recent[i])
	}
	v.Chart = template.HTML(h.gainChartSVG(640, 200))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := h.tpl.Execute(w, v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleForm accepts the slice-request form post and redirects back.
func (h *Handler) handleForm(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f := func(name string) float64 {
		x, _ := strconv.ParseFloat(r.PostFormValue(name), 64)
		return x
	}
	class := slice.ClassEMBB
	switch strings.ToLower(r.PostFormValue("class")) {
	case "automotive":
		class = slice.ClassAutomotive
	case "e-health":
		class = slice.ClassEHealth
	case "mmtc":
		class = slice.ClassMMTC
	}
	req := slice.Request{
		Tenant: r.PostFormValue("tenant"),
		SLA: slice.SLA{
			ThroughputMbps: f("throughput"),
			MaxLatencyMs:   f("latency"),
			Duration:       time.Duration(f("duration_min")) * time.Minute,
			PriceEUR:       f("price"),
			PenaltyEUR:     f("penalty"),
			Class:          class,
		},
	}
	if _, err := h.orch.Submit(req, nil); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, r.URL.Path, http.StatusSeeOther)
}

// gainChartSVG draws the multiplexing-gain and penalty series as two
// polylines. Exported indirectly via the rendered page; kept free of
// template escaping issues by building pure SVG markup.
func (h *Handler) gainChartSVG(width, height int) string {
	store := h.orch.Store()
	gains := store.Series("orchestrator/multiplexing_gain").Values(120)
	pens := store.Series("orchestrator/penalties_eur").Values(120)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" xmlns="http://www.w3.org/2000/svg">`, width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#10151c"/>`, width, height)
	drawSeries := func(vals []float64, color string) {
		if len(vals) < 2 {
			return
		}
		maxV := 0.0
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
		if maxV <= 0 {
			maxV = 1
		}
		var pts []string
		for i, v := range vals {
			x := float64(i)/float64(len(vals)-1)*float64(width-20) + 10
			y := float64(height-15) - v/maxV*float64(height-30)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`, color, strings.Join(pts, " "))
	}
	drawSeries(gains, "#4cc38a") // gain: green
	drawSeries(pens, "#e5484d")  // penalties: red
	fmt.Fprintf(&b, `<text x="12" y="16" fill="#4cc38a" font-size="12">multiplexing gain</text>`)
	fmt.Fprintf(&b, `<text x="140" y="16" fill="#e5484d" font-size="12">penalties (EUR)</text>`)
	b.WriteString(`</svg>`)
	return b.String()
}

// Stats exposes chart-source statistics for tests.
func (h *Handler) Stats() monitor.Stats {
	return h.orch.Store().Series("orchestrator/multiplexing_gain").WindowStats(0)
}

const pageTemplate = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<noscript><meta http-equiv="refresh" content="{{.Refresh}}"></noscript>
<title>E2E Network Slicing Orchestrator</title>
<style>
 body { font-family: -apple-system, "Segoe UI", sans-serif; background:#0b0e13; color:#e6e6e6; margin:2rem; }
 h1 { font-size:1.4rem; } h2 { font-size:1.1rem; margin-top:1.6rem; color:#9ecbff; }
 table { border-collapse: collapse; width:100%; font-size:0.85rem; }
 th, td { border-bottom:1px solid #2a3140; padding:0.35rem 0.6rem; text-align:left; }
 .kpi { display:inline-block; background:#151b26; border:1px solid #2a3140; border-radius:8px;
        padding:0.7rem 1.1rem; margin:0 0.6rem 0.6rem 0; }
 .kpi b { display:block; font-size:1.25rem; color:#4cc38a; }
 .rejected { color:#e5484d; } .active { color:#4cc38a; } .installing { color:#f5a524; }
 form input, form select { background:#151b26; color:#e6e6e6; border:1px solid #2a3140; padding:0.25rem; margin:0.15rem; }
 form button { background:#1f6feb; color:white; border:0; padding:0.4rem 1rem; border-radius:6px; }
</style>
</head>
<body>
<h1>End-to-End Network Slicing Orchestrator — Overbooking Dashboard</h1>
<p>rendered {{.Now}} · live via /api/v2/events (seq {{.LastSeq}}) · fallback refresh {{.Refresh}}s</p>

<div>
 <span class="kpi"><b>{{printf "%.2f×" .Gain.MultiplexingGain}}</b>multiplexing gain</span>
 <span class="kpi"><b>{{printf "%.2f×" .Gain.OverbookingRatio}}</b>overbooking ratio</span>
 <span class="kpi"><b>{{.Gain.Active}}</b>active slices</span>
 <span class="kpi"><b>{{.Gain.Admitted}} / {{.Gain.Rejected}}</b>admitted / rejected</span>
 <span class="kpi"><b>{{printf "%.2f €" .Gain.RevenueTotalEUR}}</b>revenue</span>
 <span class="kpi"><b>{{printf "%.2f €" .Gain.PenaltyTotalEUR}}</b>penalties</span>
 <span class="kpi"><b>{{printf "%.2f €" .Gain.NetRevenueEUR}}</b>net</span>
</div>

<h2>Gains vs. penalties</h2>
{{.Chart}}

<h2>Request a network slice</h2>
<form method="POST">
 <input name="tenant" placeholder="tenant" required>
 <input name="throughput" placeholder="throughput Mbps" required>
 <input name="latency" placeholder="max latency ms" required>
 <input name="duration_min" placeholder="duration min" required>
 <input name="price" placeholder="price €" required>
 <input name="penalty" placeholder="penalty €" required>
 <select name="class">
   <option>eMBB</option><option>automotive</option><option>e-health</option><option>mMTC</option>
 </select>
 <button type="submit">Request slice</button>
</form>

<h2>Network slices</h2>
<table>
<tr><th>ID</th><th>Tenant</th><th>Class</th><th>State</th><th>PLMN</th><th>DC</th>
    <th>Contract</th><th>Allocated</th><th>Demand</th><th>Violations</th><th>Net €</th><th>Cause</th><th>Reason</th></tr>
{{range .Slices}}
<tr>
 <td>{{.ID}}</td><td>{{.Tenant}}</td><td>{{.Class}}</td>
 <td class="{{.State}}">{{.State}}</td>
 <td>{{if .Allocation.PLMN.IsZero}}—{{else}}{{.Allocation.PLMN}}{{end}}</td>
 <td>{{.Allocation.DataCenter}}</td>
 <td>{{printf "%.0f Mbps" .SLA.ThroughputMbps}}</td>
 <td>{{printf "%.1f Mbps" .Allocation.AllocatedMbps}}</td>
 <td>{{printf "%.1f Mbps" .Accounting.DemandMbps}}</td>
 <td>{{.Accounting.ViolationEpochs}}/{{.Accounting.ServedEpochs}}</td>
 <td>{{printf "%.2f" .Accounting.NetEUR}}</td>
 <td>{{.RejectCode}}</td>
 <td>{{.Reason}}</td>
</tr>
{{end}}
</table>

<h2>Radio access (MOCN eNBs)</h2>
<table>
<tr><th>eNB</th><th>PRBs</th><th>free</th><th>utilization</th></tr>
{{range .ENBs}}<tr><td>{{.Name}}</td><td>{{.Total}}</td><td>{{.Free}}</td><td>{{.Util}}</td></tr>{{end}}
</table>

<h2>Data centers</h2>
<table>
<tr><th>DC</th><th>kind</th><th>vCPU utilization</th><th>VMs</th></tr>
{{range .DCs}}<tr><td>{{.Name}}</td><td>{{.Kind}}</td><td>{{.Util}}</td><td>{{.VMs}}</td></tr>{{end}}
</table>

{{if .RejectRows}}
<h2>Rejection reasons</h2>
<table>
<tr><th>cause code</th><th>count</th></tr>
{{range .RejectRows}}<tr><td>{{.Reason}}</td><td>{{.Count}}</td></tr>{{end}}
</table>
{{end}}

{{if .Events}}
<h2>Recent events</h2>
<table>
<tr><th>#</th><th>time</th><th>event</th><th>slice</th><th>tenant</th><th>state</th><th>detail</th></tr>
{{range .Events}}<tr><td>{{.Seq}}</td><td>{{.Time.Format "15:04:05"}}</td><td>{{.Type}}</td><td>{{.Slice}}</td><td>{{.Tenant}}</td><td>{{.State}}</td><td>{{.Detail}}</td></tr>
{{end}}
</table>
{{end}}

<script>
(function () {
  // Event-driven refresh: re-render when the orchestrator publishes a
  // lifecycle event, instead of polling on a timer. Resumes from the
  // sequence this page was rendered at, so nothing is missed in between.
  var reloading = false;
  function reload() {
    if (reloading) { return; }
    reloading = true;
    setTimeout(function () { location.reload(); }, 400);
  }
  function fallback() { setTimeout(function () { location.reload(); }, {{.Refresh}} * 1000); }
  if (!window.EventSource) { fallback(); return; }
  var types = ["submitted", "admitted", "rejected", "installed", "resized",
    "violation", "expired", "deleted", "restored",
    "link-failed", "link-degraded", "link-restored", "resync"];
  var es = new EventSource("/api/v2/events?since={{.LastSeq}}");
  for (var i = 0; i < types.length; i++) { es.addEventListener(types[i], reload); }
  es.onerror = function () { es.close(); fallback(); };
})();
</script>
</body>
</html>`
