package dashboard

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func dashEnv(t *testing.T) (*Handler, *core.Orchestrator, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	orch.Start()
	return New(orch), orch, s
}

func render(t *testing.T, h *Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func submit(t *testing.T, orch *core.Orchestrator, tenant string) {
	t.Helper()
	_, err := orch.Submit(sliceReq(tenant), traffic.NewConstant(10, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
}

func sliceReq(tenant string) slice.Request {
	return slice.Request{
		Tenant: tenant,
		SLA: slice.SLA{
			ThroughputMbps: 30,
			MaxLatencyMs:   20,
			Duration:       time.Hour,
			PriceEUR:       100,
			PenaltyEUR:     2,
		},
	}
}

func TestRenderEmptyDashboard(t *testing.T) {
	h, _, _ := dashEnv(t)
	body := render(t, h)
	for _, want := range []string{
		"Overbooking Dashboard",
		"multiplexing gain",
		"Radio access (MOCN eNBs)",
		"enb-1", "enb-2", "edge", "core",
		"<svg",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

func TestRenderWithSlices(t *testing.T) {
	h, orch, s := dashEnv(t)
	submit(t, orch, "acme")
	s.RunFor(15 * time.Second)
	s.RunFor(5 * time.Minute)
	body := render(t, h)
	if !strings.Contains(body, "acme") {
		t.Fatal("tenant missing from table")
	}
	if !strings.Contains(body, `class="active"`) {
		t.Fatal("active state styling missing")
	}
	if !strings.Contains(body, "001-01") {
		t.Fatal("PLMN missing")
	}
}

func TestRejectedSliceShowsReason(t *testing.T) {
	h, orch, _ := dashEnv(t)
	r := sliceReq("impossible")
	r.SLA.MaxLatencyMs = 0.01
	orch.Submit(r, nil)
	body := render(t, h)
	if !strings.Contains(body, "rejected") || !strings.Contains(body, "latency") {
		t.Fatal("rejection not rendered")
	}
	if !strings.Contains(body, "Rejection reasons") {
		t.Fatal("rejection histogram missing")
	}
}

func TestFormSubmission(t *testing.T) {
	h, orch, _ := dashEnv(t)
	srv := httptest.NewServer(h)
	defer srv.Close()
	form := url.Values{
		"tenant":       {"form-tenant"},
		"throughput":   {"25"},
		"latency":      {"30"},
		"duration_min": {"60"},
		"price":        {"80"},
		"penalty":      {"1.5"},
		"class":        {"e-health"},
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(srv.URL, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ls := orch.List()
	if len(ls) != 1 || ls[0].Tenant != "form-tenant" || ls[0].Class != "e-health" {
		t.Fatalf("slices %+v", ls)
	}
}

func TestFormInvalidRejected(t *testing.T) {
	h, _, _ := dashEnv(t)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.PostForm(srv.URL, url.Values{"tenant": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestChartContainsSeriesAfterEpochs(t *testing.T) {
	h, orch, s := dashEnv(t)
	submit(t, orch, "charted")
	s.RunFor(15 * time.Second)
	s.RunFor(30 * time.Minute)
	svg := h.gainChartSVG(640, 200)
	if !strings.Contains(svg, "polyline") {
		t.Fatal("chart has no polylines")
	}
	if h.Stats().N == 0 {
		t.Fatal("no gain samples recorded")
	}
}

func TestChartEmptyStoreStillValidSVG(t *testing.T) {
	h, _, _ := dashEnv(t)
	svg := h.gainChartSVG(640, 200)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("svg malformed: %.60s", svg)
	}
}

func TestTenantNameEscaped(t *testing.T) {
	h, orch, _ := dashEnv(t)
	submit(t, orch, "<script>alert(1)</script>")
	body := render(t, h)
	if strings.Contains(body, "<script>alert(1)</script>") {
		t.Fatal("tenant name not escaped")
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Fatal("escaped tenant missing")
	}
}
