// Package integration_test exercises the whole stack — orchestrator,
// controllers, substrates, REST API — together, checking the cross-module
// invariants no unit test can see: resource conservation across arbitrary
// lifecycles, agreement between the API view and substrate state, and
// long-horizon stability of the control loop.
package integration_test

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/epc"
	"repro/internal/monitor"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// assertClean fails if any domain still holds resources.
func assertClean(t *testing.T, tb *testbed.Testbed) {
	t.Helper()
	if u := tb.Ctrl.RAN.Utilization(); u != 0 {
		t.Fatalf("RAN leaked: utilization %.4f", u)
	}
	mean, max := tb.Transport.Utilization()
	if mean != 0 || max != 0 {
		t.Fatalf("transport leaked: mean %.4f max %.4f", mean, max)
	}
	if u := tb.Ctrl.Cloud.Utilization(); u != 0 {
		t.Fatalf("cloud leaked: utilization %.4f", u)
	}
	if n := len(tb.Ctrl.Cloud.EPCs().All()); n != 0 {
		t.Fatalf("%d EPC instances leaked", n)
	}
}

// TestFullLifecycleLeavesNoResidue drives many slices through their whole
// lifecycle (admission, install, traffic, expiry/delete) and verifies every
// domain returns to zero.
func TestFullLifecycleLeavesNoResidue(t *testing.T) {
	s := sim.NewSimulator(5)
	tb := testbed.MustNew(testbed.Default(), s.Rand())
	o := core.New(core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 32}, tb, s, monitor.NewStore(1024))
	o.Start()

	gen := traffic.NewRequestGenerator(nil, 0, s.Rand())
	var live []*slice.Slice
	for i := 0; i < 12; i++ {
		g := gen.Next(s.Now())
		g.Request.SLA.Duration = time.Duration(30+10*i) * time.Minute
		sl, err := o.Submit(g.Request, g.Demand)
		if err != nil {
			t.Fatal(err)
		}
		if sl.State() != slice.StateRejected {
			live = append(live, sl)
		}
		s.RunFor(7 * time.Minute)
	}
	if len(live) < 4 {
		t.Fatalf("only %d slices admitted", len(live))
	}
	// Delete a couple early, let the rest expire.
	for i, sl := range live {
		if i%3 == 0 && sl.State() == slice.StateActive {
			if err := o.Delete(sl.ID()); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.RunFor(6 * time.Hour) // beyond the longest duration
	for _, sl := range live {
		if got := sl.State(); got != slice.StateTerminated {
			t.Fatalf("slice %s still %v", sl.ID(), got)
		}
	}
	assertClean(t, tb)
}

// TestPropertyRandomLifecycleConservation drives random submit/delete/run
// interleavings and checks conservation at every step plus cleanliness at
// the end.
func TestPropertyRandomLifecycleConservation(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		s := sim.NewSimulator(seed)
		tb := testbed.MustNew(testbed.Default(), s.Rand())
		o := core.New(core.Config{Overbook: true, Risk: 0.85, PLMNLimit: 16}, tb, s, monitor.NewStore(256))
		o.Start()
		gen := traffic.NewRequestGenerator(nil, 0, s.Rand())
		var ids []slice.ID
		for _, op := range ops {
			switch op % 3 {
			case 0: // submit
				g := gen.Next(s.Now())
				sl, err := o.Submit(g.Request, g.Demand)
				if err != nil {
					return false
				}
				if sl.State() != slice.StateRejected {
					ids = append(ids, sl.ID())
				}
			case 1: // delete oldest live
				if len(ids) > 0 {
					o.Delete(ids[0]) // may fail if already expired: fine
					ids = ids[1:]
				}
			case 2: // advance time
				s.RunFor(time.Duration(op) * time.Minute)
			}
			// Invariant: RAN utilization within [0,1]; gain report sane.
			if u := tb.Ctrl.RAN.Utilization(); u < 0 || u > 1+1e-9 {
				return false
			}
			g := o.Gain()
			if g.AllocatedMbps < -1e-9 {
				return false
			}
			// Allocations may exceed contracts only by PRB rounding
			// (one block per eNB per slice, ~0.52 Mbps each).
			roundingSlack := float64(2*16) * 0.6
			if g.AllocatedMbps > g.ContractedMbps+roundingSlack {
				return false
			}
		}
		// Drain everything.
		for _, id := range ids {
			o.Delete(id)
		}
		s.RunFor(48 * time.Hour)
		return tb.Ctrl.RAN.Utilization() == 0 && tb.Ctrl.Cloud.Utilization() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAPIViewMatchesSubstrateState cross-checks the slice snapshot against
// the actual substrate objects.
func TestAPIViewMatchesSubstrateState(t *testing.T) {
	s := sim.NewSimulator(3)
	tb := testbed.MustNew(testbed.Default(), s.Rand())
	o := core.New(core.Config{}, tb, s, monitor.NewStore(128))
	o.Start()
	sl, err := o.Submit(slice.Request{
		Tenant: "xcheck",
		SLA: slice.SLA{ThroughputMbps: 25, MaxLatencyMs: 20,
			Duration: time.Hour, PriceEUR: 80, PenaltyEUR: 2},
	}, traffic.NewConstant(10, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)
	snap := sl.Snapshot()

	// RAN: per-eNB reservations match the snapshot.
	for name, prbs := range snap.Allocation.PRBs {
		e, ok := tb.RAN.Get(name)
		if !ok {
			t.Fatalf("snapshot names unknown eNB %s", name)
		}
		got, ok := e.Reservation(snap.Allocation.PLMN)
		if !ok || got != prbs {
			t.Fatalf("eNB %s: snapshot %d PRBs, substrate %d", name, prbs, got)
		}
		bl := e.BroadcastList()
		found := false
		for _, p := range bl {
			if p == snap.Allocation.PLMN {
				found = true
			}
		}
		if !found {
			t.Fatalf("PLMN %s not broadcast by %s", snap.Allocation.PLMN, name)
		}
	}
	// Transport: every path reservation exists and terminates at the DC.
	for _, pid := range snap.Allocation.PathIDs {
		r, ok := tb.Transport.Reservation(pid)
		if !ok {
			t.Fatalf("path %s missing", pid)
		}
		if r.Hops[len(r.Hops)-1] != snap.Allocation.DataCenter {
			t.Fatalf("path %s ends at %s, not %s", pid, r.Hops[len(r.Hops)-1], snap.Allocation.DataCenter)
		}
		if r.DelayMs > snap.SLA.MaxLatencyMs {
			t.Fatalf("path delay %.2f exceeds SLA %.2f", r.DelayMs, snap.SLA.MaxLatencyMs)
		}
	}
	// Cloud: the stack exists in the named DC with 4 vEPC components.
	dc, _ := tb.Region.Get(snap.Allocation.DataCenter)
	stack, ok := dc.Stack(snap.Allocation.StackID)
	if !ok {
		t.Fatalf("stack %s missing", snap.Allocation.StackID)
	}
	if len(stack.VMs) != 4 {
		t.Fatalf("vEPC has %d VMs", len(stack.VMs))
	}
	// EPC: running instance serves the slice PLMN, UEs can attach.
	inst, ok := tb.Ctrl.Cloud.EPCs().ByPLMN(snap.Allocation.PLMN)
	if !ok || inst.ID() != snap.Allocation.EPCID {
		t.Fatalf("EPC registry mismatch: %v", ok)
	}
	if _, err := tb.Ctrl.Cloud.EPCs().Attach(epc.UE{IMSI: "001010000099999", PLMN: snap.Allocation.PLMN}, s.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestLongHorizonStability runs three simulated days of churn and checks
// the system neither leaks memory-visible state (slices map grows only
// with offered requests) nor deadlocks, and the gain stays in sane bounds.
func TestLongHorizonStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon")
	}
	r, err := scenario.NewRunner(scenario.Options{
		Seed:             9,
		MeanInterarrival: 10 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.StartArrivals()
	if err := r.Sim.RunFor(72 * time.Hour); err != nil {
		t.Fatal(err)
	}
	res := r.Collect()
	if res.Offered < 300 {
		t.Fatalf("only %d requests over 3 days", res.Offered)
	}
	if res.Gain.Epochs < 4000 {
		t.Fatalf("control loop ran %d epochs", res.Gain.Epochs)
	}
	if res.MeanMultiplexingGain < 1.0 || res.MeanMultiplexingGain > 10 {
		t.Fatalf("gain %.2f out of sane bounds", res.MeanMultiplexingGain)
	}
	if res.ViolationRate > 0.5 {
		t.Fatalf("violation rate %.2f — control loop unstable", res.ViolationRate)
	}
	// Terminated slices outnumber active by far after 3 days; none stuck
	// in transient states.
	stuck := 0
	for _, sn := range res.Slices {
		switch sn.State {
		case "admitted", "installing", "reconfiguring":
			stuck++
		}
	}
	if stuck > 2 { // at most the freshly arrived ones
		t.Fatalf("%d slices stuck in transient states", stuck)
	}
}

// TestConcurrentAPIAccess hammers a live-clock orchestrator from multiple
// goroutines (the race detector is the real assertion here).
func TestConcurrentAPIAccess(t *testing.T) {
	clock := sim.NewRealtimeClock()
	defer clock.CancelAll()
	tb := testbed.MustNew(testbed.Default(), nil)
	o := core.New(core.Config{Overbook: true, Epoch: 5 * time.Millisecond, PLMNLimit: 32}, tb, clock, monitor.NewStore(128))
	o.Start()
	defer o.Stop()

	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 20 && err == nil; i++ {
				var sl *slice.Slice
				sl, err = o.Submit(slice.Request{
					Tenant: fmt.Sprintf("g%d-%d", g, i),
					SLA: slice.SLA{ThroughputMbps: 5, MaxLatencyMs: 50,
						Duration: time.Second, PriceEUR: 1},
				}, nil)
				if err == nil && sl.State() != slice.StateRejected {
					o.RecordDemand(sl.ID(), 2)
					o.Delete(sl.ID())
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				o.Gain()
				o.List()
				time.Sleep(time.Millisecond)
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
