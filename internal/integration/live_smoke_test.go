package integration_test

// Live-daemon smoke: boot the exact stack cmd/orchestrator serves — a
// wall-clock System with the REST API mounted under /api/v1/ and /api/v2/
// — and drive one idempotent submit / watch / delete round-trip through
// the v2 client, asserting the ordered event stream reports the whole
// lifecycle. The CI workflow runs the same round-trip against the real
// binary; this in-process twin keeps it in tier-1 and under -race.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	overbook "repro"
	"repro/internal/core"
	"repro/internal/restapi"
)

func TestLiveDaemonV2RoundTrip(t *testing.T) {
	cfg := overbook.OrchestratorConfig{
		Overbook: true,
		Risk:     0.9,
		Epoch:    200 * time.Millisecond,
	}
	sys, err := overbook.NewLive(overbook.Options{Seed: 42, Orchestrator: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	sys.Orchestrator.Start()
	defer sys.Orchestrator.Stop()

	api := restapi.NewServer(sys.Orchestrator)
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", api)
	mux.Handle("/api/v2/", api)
	mux.Handle("/healthz", api)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := restapi.NewClient(srv.URL)

	if err := c.Health(); err != nil {
		t.Fatal(err)
	}

	// Watch in the background from the head of the stream.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	type seen struct {
		types []core.EventType
	}
	got := make(chan seen, 1)
	ready := make(chan struct{})
	go func() {
		var s seen
		close(ready)
		c.WatchEvents(ctx, restapi.WatchParams{}, func(ev core.Event) error {
			s.types = append(s.types, ev.Type)
			if ev.Type == core.EventDeleted {
				got <- s
				return restapi.ErrStopWatch
			}
			return nil
		})
	}()
	<-ready
	time.Sleep(100 * time.Millisecond) // let the SSE subscription attach

	body := restapi.SliceRequestBody{
		Tenant: "smoke", DurationSeconds: 300, MaxLatencyMs: 40,
		ThroughputMbps: 15, PriceEUR: 20, PenaltyEUR: 1,
	}
	snap, err := c.SubmitSliceV2(body, "smoke-key")
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != "installing" {
		t.Fatalf("state %q reason %q", snap.State, snap.Reason)
	}
	// Idempotent retry returns the same slice.
	again, err := c.SubmitSliceV2(body, "smoke-key")
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != snap.ID {
		t.Fatalf("idempotent retry created %s, want %s", again.ID, snap.ID)
	}
	// The filtered v2 list sees it.
	page, err := c.ListSlicesV2(restapi.ListQuery{Tenant: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Slices) != 1 || page.Slices[0].ID != snap.ID {
		t.Fatalf("v2 list %+v", page.Slices)
	}
	if err := c.DeleteSliceV2(snap.ID); err != nil {
		t.Fatal(err)
	}

	select {
	case s := <-got:
		want := map[core.EventType]bool{
			core.EventSubmitted: false, core.EventAdmitted: false, core.EventDeleted: false,
		}
		for _, typ := range s.types {
			if _, ok := want[typ]; ok {
				want[typ] = true
			}
		}
		for typ, ok := range want {
			if !ok {
				t.Fatalf("event %s never observed in %v", typ, s.types)
			}
		}
	case <-ctx.Done():
		t.Fatal("lifecycle events never arrived over the live stream")
	}
}
