package testbed

import (
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/ran"
	"repro/internal/transport"
)

func TestDefaultMatchesDemoScale(t *testing.T) {
	tb, err := New(Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tb.RAN.Names()); got != 2 {
		t.Fatalf("eNBs %d, demo had 2", got)
	}
	e, _ := tb.RAN.Get(ENBName(0))
	if e.TotalPRBs() != 100 {
		t.Fatalf("PRBs %d, want 100 (20 MHz)", e.TotalPRBs())
	}
	if got := tb.Region.Names(); len(got) != 2 || got[0] != CoreDC || got[1] != EdgeDC {
		t.Fatalf("DCs %v", got)
	}
	if tb.Ctrl.RAN == nil || tb.Ctrl.Transport == nil || tb.Ctrl.Cloud == nil {
		t.Fatal("controllers not wired")
	}
}

func TestZeroConfigNormalizes(t *testing.T) {
	tb, err := New(Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tb.RadioCapacityMbps() < 50 {
		t.Fatalf("zero config produced a tiny testbed: %.1f Mbps", tb.RadioCapacityMbps())
	}
	if tb.Config.ENBs != 2 || tb.Config.CoreHosts != 4 {
		t.Fatalf("normalized config %+v", tb.Config)
	}
}

func TestLinkTechnologiesMatchFig2(t *testing.T) {
	tb := MustNew(Default(), nil)
	l, ok := tb.Transport.Link(ENBName(0), Switch)
	if !ok || l.Type != transport.MmWave {
		t.Fatalf("enb-1 uplink %+v", l)
	}
	l, ok = tb.Transport.Link(ENBName(1), Switch)
	if !ok || l.Type != transport.MicroWave {
		t.Fatalf("enb-2 uplink %+v", l)
	}
	l, ok = tb.Transport.Link(Switch, CoreDC)
	if !ok || l.Type != transport.Wired {
		t.Fatalf("core link %+v", l)
	}
}

func TestCoreFartherThanEdge(t *testing.T) {
	tb := MustNew(Default(), nil)
	edge, err := tb.Transport.ShortestPath(transport.PathRequest{From: ENBName(0), To: EdgeDC, MinMbps: 1})
	if err != nil {
		t.Fatal(err)
	}
	core, err := tb.Transport.ShortestPath(transport.PathRequest{From: ENBName(0), To: CoreDC, MinMbps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if core.DelayMs-edge.DelayMs < 3 {
		t.Fatalf("core (%.1f) should be clearly farther than edge (%.1f)", core.DelayMs, edge.DelayMs)
	}
}

func TestRedundantTransportAddsBackupOnly(t *testing.T) {
	plain := MustNew(Default(), nil)
	cfg := Default()
	cfg.RedundantTransport = true
	red := MustNew(cfg, nil)

	if len(plain.Transport.NodesOfKind(transport.KindSwitch)) != 1 {
		t.Fatal("plain testbed has extra switches")
	}
	if len(red.Transport.NodesOfKind(transport.KindSwitch)) != 2 {
		t.Fatal("redundant testbed missing backup switch")
	}
	// Primary shortest paths must be identical.
	for _, dc := range []string{EdgeDC, CoreDC} {
		p1, err := plain.Transport.ShortestPath(transport.PathRequest{From: ENBName(0), To: dc, MinMbps: 1})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := red.Transport.ShortestPath(transport.PathRequest{From: ENBName(0), To: dc, MinMbps: 1})
		if err != nil {
			t.Fatal(err)
		}
		if p1.DelayMs != p2.DelayMs {
			t.Fatalf("backup changed primary delay to %s: %.2f vs %.2f", dc, p1.DelayMs, p2.DelayMs)
		}
	}
	// Backup path must exist when primary switch is cut off.
	red.Transport.SetLinkUp(ENBName(0), Switch, false)
	p, err := red.Transport.ShortestPath(transport.PathRequest{From: ENBName(0), To: CoreDC, MinMbps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops[1] != BackupSwitch {
		t.Fatalf("backup path %v", p.Hops)
	}
}

func TestScaledTestbed(t *testing.T) {
	cfg := Config{ENBs: 6, EdgeHosts: 3, CoreHosts: 8}
	tb := MustNew(cfg, rand.New(rand.NewSource(1)))
	if got := len(tb.RAN.Names()); got != 6 {
		t.Fatalf("eNBs %d", got)
	}
	// Wireless technology alternates.
	mm, uw := 0, 0
	for i := 0; i < 6; i++ {
		l, ok := tb.Transport.Link(ENBName(i), Switch)
		if !ok {
			t.Fatalf("eNB %d not connected", i)
		}
		switch l.Type {
		case transport.MmWave:
			mm++
		case transport.MicroWave:
			uw++
		}
	}
	if mm != 3 || uw != 3 {
		t.Fatalf("technology mix mm=%d µ=%d", mm, uw)
	}
	edge, _ := tb.Region.Get(EdgeDC)
	if edge.Capacity().Hosts != 3 {
		t.Fatalf("edge hosts %d", edge.Capacity().Hosts)
	}
}

func TestPlacementPolicyPropagates(t *testing.T) {
	cfg := Default()
	cfg.Placement = cloud.WorstFit
	tb := MustNew(cfg, nil)
	core, _ := tb.Region.Get(CoreDC)
	// Two stacks with worst-fit spread across hosts.
	s1, err := core.CreateStack("a", cloud.Template{Resources: []cloud.TemplateResource{{Name: "r", Flavor: cloud.FlavorSmall}}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.CreateStack("b", cloud.Template{Resources: []cloud.TemplateResource{{Name: "r", Flavor: cloud.FlavorSmall}}})
	if err != nil {
		t.Fatal(err)
	}
	if s1.VMs[0].Host == s2.VMs[0].Host {
		t.Fatalf("worst-fit stacked on %s", s1.VMs[0].Host)
	}
}

func TestNormalizationMakesAnyConfigBuildable(t *testing.T) {
	// Every zero/negative knob is normalized, so any config builds.
	cfgs := []Config{
		{},
		{ENBs: -1, EdgeHostVCPUs: -5},
		{MeanCQI: -3, CoreDelayMs: -1},
		{ENBBandwidth: ran.BW1_4MHz}, // tiny but valid grid
	}
	for i, cfg := range cfgs {
		if _, err := New(cfg, nil); err != nil {
			t.Fatalf("config %d failed: %v", i, err)
		}
	}
}
