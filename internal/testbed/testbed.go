// Package testbed assembles the full end-to-end environment of the demo's
// Fig. 2: two MOCN-sharing eNBs, a transport network of mmWave/µWave
// wireless hops around programmable switches, and two OpenStack-style data
// centers (mobile edge and cloud core), all wired to the three domain
// controllers the orchestrator sits on.
//
// Every experiment, example and benchmark starts from this builder so that
// numbers are comparable across the repository.
package testbed

import (
	"fmt"
	"math/rand"

	"repro/internal/cloud"
	"repro/internal/ctrl"
	"repro/internal/mec"
	"repro/internal/ran"
	"repro/internal/transport"
)

// Config scales the testbed. The zero value is adjusted to Default().
type Config struct {
	// ENBs is the number of radio cells (the demo had 2).
	ENBs int
	// ENBBandwidth sets each cell's PRB grid.
	ENBBandwidth ran.Bandwidth
	// ENBCarriers aggregates this many component carriers of ENBBandwidth
	// per cell (default 1). Scale-out experiments and the epoch benchmarks
	// raise it — together with MaxPLMNs and the link capacities — so
	// thousands of concurrent slices fit the radio grid.
	ENBCarriers int
	// MaxPLMNs lifts each cell's MOCN broadcast-list bound (default 6, the
	// 3GPP SIB1 limit). Scale-out experiments and the concurrent-admission
	// benchmarks raise it together with core.Config.PLMNLimit so the radio
	// capacity, not the broadcast list, is what binds.
	MaxPLMNs int
	// MeanCQI / CQIStdDev set the radio channel model.
	MeanCQI   float64
	CQIStdDev float64
	// EdgeHosts / CoreHosts are compute nodes per DC.
	EdgeHosts, CoreHosts int
	// EdgeHostVCPUs / CoreHostVCPUs size each host.
	EdgeHostVCPUs, CoreHostVCPUs float64
	// MmWaveMbps / MicroWaveMbps / WiredMbps are link capacities.
	MmWaveMbps, MicroWaveMbps, WiredMbps float64
	// CoreDelayMs is the extra wired delay to the core DC, the quantity
	// that forces latency-critical slices to the edge.
	CoreDelayMs float64
	// Placement selects the Nova-like scheduler policy.
	Placement cloud.PlacementPolicy
	// RedundantTransport adds a backup switch (sw2) with higher-delay
	// µWave links from every eNB and wired links to both DCs — the
	// "different transport network topology configurations" the demo's
	// programmable switch enables. Primary paths are unchanged (backup
	// links are strictly worse in delay); restoration after a link
	// failure becomes possible.
	RedundantTransport bool
	// MECHosts enables the optional fourth orchestration domain: an edge
	// MEC compute pool of this many hosts, registered behind the same
	// generic Domain surface as the radio/transport/cloud controllers.
	// 0 (the default) leaves the demo's original three-domain setup
	// untouched.
	MECHosts int
	// MECHostCPUs sizes each MEC host (default 8 when MECHosts > 0).
	MECHostCPUs float64
	// MECProcDelayMs is the per-app processing-latency contribution
	// charged against the slice budget (default 0.2 ms).
	MECProcDelayMs float64
}

// Default returns the demo-scale testbed configuration.
func Default() Config {
	return Config{
		ENBs:          2,
		ENBBandwidth:  ran.BW20MHz,
		MeanCQI:       12,
		CQIStdDev:     0,
		EdgeHosts:     2,
		CoreHosts:     4,
		EdgeHostVCPUs: 16,
		CoreHostVCPUs: 32,
		MmWaveMbps:    1000,
		MicroWaveMbps: 400,
		WiredMbps:     10000,
		CoreDelayMs:   6.0,
		Placement:     cloud.BestFit,
	}
}

// normalize fills zero fields from Default.
func (c Config) normalize() Config {
	d := Default()
	if c.ENBs <= 0 {
		c.ENBs = d.ENBs
	}
	if c.ENBBandwidth.PRBs() == 0 {
		c.ENBBandwidth = d.ENBBandwidth
	}
	if c.MeanCQI <= 0 {
		c.MeanCQI = d.MeanCQI
	}
	if c.EdgeHosts <= 0 {
		c.EdgeHosts = d.EdgeHosts
	}
	if c.CoreHosts <= 0 {
		c.CoreHosts = d.CoreHosts
	}
	if c.EdgeHostVCPUs <= 0 {
		c.EdgeHostVCPUs = d.EdgeHostVCPUs
	}
	if c.CoreHostVCPUs <= 0 {
		c.CoreHostVCPUs = d.CoreHostVCPUs
	}
	if c.MmWaveMbps <= 0 {
		c.MmWaveMbps = d.MmWaveMbps
	}
	if c.MicroWaveMbps <= 0 {
		c.MicroWaveMbps = d.MicroWaveMbps
	}
	if c.WiredMbps <= 0 {
		c.WiredMbps = d.WiredMbps
	}
	if c.CoreDelayMs <= 0 {
		c.CoreDelayMs = d.CoreDelayMs
	}
	if c.MECHosts > 0 {
		if c.MECHostCPUs <= 0 {
			c.MECHostCPUs = 8
		}
		if c.MECProcDelayMs <= 0 {
			c.MECProcDelayMs = 0.2
		}
	}
	return c
}

// Names of the well-known nodes.
const (
	EdgeDC       = "edge"
	CoreDC       = "core"
	Switch       = "sw1"
	BackupSwitch = "sw2"
)

// Testbed is the assembled environment.
type Testbed struct {
	Config    Config
	RAN       *ran.Network
	Transport *transport.Network
	Region    *cloud.Region
	// MEC is the optional edge compute pool (nil unless Config.MECHosts
	// enables the fourth domain).
	MEC  *mec.Pool
	Ctrl ctrl.Set
}

// ENBName returns the i-th eNB name (0-based).
func ENBName(i int) string { return fmt.Sprintf("enb-%d", i+1) }

// New builds the testbed. rng seeds the radio channel model; nil gives a
// deterministic mean-CQI channel.
func New(cfg Config, rng *rand.Rand) (*Testbed, error) {
	cfg = cfg.normalize()

	// Radio domain: N MOCN cells.
	ranNet := ran.NewNetwork()
	for i := 0; i < cfg.ENBs; i++ {
		e, err := ran.NewENB(ran.Config{
			Name:      ENBName(i),
			Bandwidth: cfg.ENBBandwidth,
			Carriers:  cfg.ENBCarriers,
			MaxPLMNs:  cfg.MaxPLMNs,
			MeanCQI:   cfg.MeanCQI,
			CQIStdDev: cfg.CQIStdDev,
		}, rng)
		if err != nil {
			return nil, err
		}
		if err := ranNet.Add(e); err != nil {
			return nil, err
		}
	}

	// Transport domain (Fig. 2): each eNB reaches the programmable switch
	// over a wireless hop — odd cells on mmWave, even cells on µWave —
	// and the switch connects to both data centers over wired links. The
	// core DC sits several ms further away.
	tn := transport.NewNetwork()
	if err := tn.AddNode(Switch, transport.KindSwitch); err != nil {
		return nil, err
	}
	if err := tn.AddNode(EdgeDC, transport.KindDC); err != nil {
		return nil, err
	}
	if err := tn.AddNode(CoreDC, transport.KindDC); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.ENBs; i++ {
		name := ENBName(i)
		if err := tn.AddNode(name, transport.KindENB); err != nil {
			return nil, err
		}
		if i%2 == 0 {
			if err := tn.AddBiLink(name, Switch, transport.MmWave, cfg.MmWaveMbps, 0.5); err != nil {
				return nil, err
			}
		} else {
			if err := tn.AddBiLink(name, Switch, transport.MicroWave, cfg.MicroWaveMbps, 1.2); err != nil {
				return nil, err
			}
		}
	}
	if err := tn.AddBiLink(Switch, EdgeDC, transport.Wired, cfg.WiredMbps, 0.3); err != nil {
		return nil, err
	}
	if err := tn.AddBiLink(Switch, CoreDC, transport.Wired, cfg.WiredMbps, cfg.CoreDelayMs); err != nil {
		return nil, err
	}
	if cfg.RedundantTransport {
		if err := tn.AddNode(BackupSwitch, transport.KindSwitch); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.ENBs; i++ {
			// Backup wireless hops are strictly slower than the primary,
			// so shortest-path routing never prefers them while sw1 is up.
			if err := tn.AddBiLink(ENBName(i), BackupSwitch, transport.MicroWave, cfg.MicroWaveMbps, 2.5); err != nil {
				return nil, err
			}
		}
		if err := tn.AddBiLink(BackupSwitch, EdgeDC, transport.Wired, cfg.WiredMbps, 1.0); err != nil {
			return nil, err
		}
		if err := tn.AddBiLink(BackupSwitch, CoreDC, transport.Wired, cfg.WiredMbps, cfg.CoreDelayMs+1); err != nil {
			return nil, err
		}
	}

	// Cloud domain: edge (small) + core (large) data centers.
	region := cloud.NewRegion()
	edge := cloud.NewDataCenter(EdgeDC, "edge", cfg.Placement)
	for i := 0; i < cfg.EdgeHosts; i++ {
		if err := edge.AddHost(fmt.Sprintf("edge-h%d", i+1), cfg.EdgeHostVCPUs, int(cfg.EdgeHostVCPUs)*4096, 500); err != nil {
			return nil, err
		}
	}
	core := cloud.NewDataCenter(CoreDC, "core", cfg.Placement)
	for i := 0; i < cfg.CoreHosts; i++ {
		if err := core.AddHost(fmt.Sprintf("core-h%d", i+1), cfg.CoreHostVCPUs, int(cfg.CoreHostVCPUs)*4096, 2000); err != nil {
			return nil, err
		}
	}
	if err := region.Add(edge); err != nil {
		return nil, err
	}
	if err := region.Add(core); err != nil {
		return nil, err
	}

	tb := &Testbed{
		Config:    cfg,
		RAN:       ranNet,
		Transport: tn,
		Region:    region,
	}
	tb.Ctrl = ctrl.Set{
		RAN:       ctrl.NewRANController(ranNet),
		Transport: ctrl.NewTransportController(tn),
		Cloud:     ctrl.NewCloudController(region),
	}

	// Optional fourth domain: the edge MEC compute pool, registered behind
	// the same generic Domain surface — the orchestrator core picks it up
	// from the Set without any MEC-specific wiring.
	if cfg.MECHosts > 0 {
		pool := mec.NewPool(cfg.MECProcDelayMs)
		for i := 0; i < cfg.MECHosts; i++ {
			if err := pool.AddHost(fmt.Sprintf("mec-h%d", i+1), cfg.MECHostCPUs); err != nil {
				return nil, err
			}
		}
		tb.MEC = pool
		tb.Ctrl.Extra = append(tb.Ctrl.Extra, ctrl.NewMECController(pool))
	}
	return tb, nil
}

// MustNew is New panicking on error, for tests and examples where the
// default config is known-good.
func MustNew(cfg Config, rng *rand.Rand) *Testbed {
	tb, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return tb
}

// RadioCapacityMbps returns the total mean-CQI radio capacity — the
// denominator of the multiplexing-gain metric.
func (tb *Testbed) RadioCapacityMbps() float64 {
	return tb.RAN.TotalCapacityMbps()
}
