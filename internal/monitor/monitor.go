// Package monitor implements the real-time monitoring pillar of the
// orchestrator (Fig. 1: "Collect information about network utilization" /
// "Real time monitoring"). Domain controllers push samples into named time
// series; the orchestrator and dashboard read windows, aggregates and
// percentiles back out.
//
// Series are fixed-capacity rings: the orchestrator only ever needs a
// bounded history (forecast warm-up plus dashboard window), and rings keep
// the memory of a long-running daemon flat.
//
// Store and Series are safe for concurrent use — domain controllers and
// the sharded orchestrator write from parallel goroutines while the REST
// API and dashboard read. Reads (lookups, windows, stats, snapshots) take
// shared read locks so they never stall the telemetry hot path.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Sample is one timestamped measurement.
type Sample struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// Series is a fixed-capacity ring buffer of samples. Safe for concurrent use.
//
// Internally the ring stores (unix-nanosecond, value) pairs rather than
// Sample structs: time.Time carries a *Location pointer, and a store with
// tens of thousands of per-slice series would otherwise hand the garbage
// collector millions of pointer slots to scan on every cycle. Timestamps
// round-trip exactly (nanosecond precision, reported in UTC).
type Series struct {
	mu   sync.RWMutex
	name string
	at   []int64 // UnixNano per sample
	val  []float64
	head int // next write position
	n    int // valid samples
}

// NewSeries returns an empty series with the given capacity (minimum 1).
func NewSeries(name string, capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{name: name, at: make([]int64, capacity), val: make([]float64, capacity)}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample, evicting the oldest when full.
func (s *Series) Add(at time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(at.UnixNano(), v)
}

func (s *Series) addLocked(atNanos int64, v float64) {
	s.at[s.head] = atNanos
	s.val[s.head] = v
	s.head = (s.head + 1) % len(s.at)
	if s.n < len(s.at) {
		s.n++
	}
}

// Len returns the number of stored samples.
func (s *Series) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Capacity returns the ring size.
func (s *Series) Capacity() int { return len(s.at) }

// Last returns the most recent sample, if any.
func (s *Series) Last() (Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.n == 0 {
		return Sample{}, false
	}
	idx := (s.head - 1 + len(s.at)) % len(s.at)
	return Sample{At: time.Unix(0, s.at[idx]).UTC(), Value: s.val[idx]}, true
}

// Window returns up to n most recent samples in chronological order.
// n <= 0 returns everything stored.
func (s *Series) Window(n int) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n <= 0 || n > s.n {
		n = s.n
	}
	out := make([]Sample, n)
	start := (s.head - n + len(s.at)) % len(s.at)
	for i := 0; i < n; i++ {
		j := (start + i) % len(s.at)
		out[i] = Sample{At: time.Unix(0, s.at[j]).UTC(), Value: s.val[j]}
	}
	return out
}

// Values returns just the values of Window(n).
func (s *Series) Values(n int) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n <= 0 || n > s.n {
		n = s.n
	}
	out := make([]float64, n)
	start := (s.head - n + len(s.at)) % len(s.at)
	for i := range out {
		out[i] = s.val[(start+i)%len(s.at)]
	}
	return out
}

// Since returns all stored samples at or after t, chronological.
func (s *Series) Since(t time.Time) []Sample {
	all := s.Window(0)
	i := sort.Search(len(all), func(i int) bool { return !all[i].At.Before(t) })
	return all[i:]
}

// Stats summarises a window of samples.
type Stats struct {
	N             int     `json:"n"`
	Mean          float64 `json:"mean"`
	Min           float64 `json:"min"`
	Max           float64 `json:"max"`
	StdDev        float64 `json:"stddev"`
	P50, P95, P99 float64
}

// WindowStats computes aggregates over the n most recent samples
// (n <= 0: all).
func (s *Series) WindowStats(n int) Stats {
	vals := s.Values(n)
	return Compute(vals)
}

// Compute returns summary statistics for vals.
func Compute(vals []float64) Stats {
	st := Stats{N: len(vals)}
	if len(vals) == 0 {
		return st
	}
	st.Min, st.Max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(vals))
	ss := 0.0
	for _, v := range vals {
		d := v - st.Mean
		ss += d * d
	}
	if len(vals) > 1 {
		st.StdDev = math.Sqrt(ss / float64(len(vals)-1))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	st.P50 = Percentile(sorted, 0.50)
	st.P95 = Percentile(sorted, 0.95)
	st.P99 = Percentile(sorted, 0.99)
	return st
}

// Percentile returns the p-quantile (0..1) of an ascending-sorted slice
// using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Store is a concurrent registry of named series — the monitoring database
// the REST API and dashboard read from.
type Store struct {
	mu       sync.RWMutex
	series   map[string]*Series
	capacity int
}

// NewStore returns a store whose auto-created series hold capacity samples.
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1024
	}
	return &Store{series: make(map[string]*Series), capacity: capacity}
}

// Series returns the named series, creating it on first use.
func (st *Store) Series(name string) *Series {
	st.mu.RLock()
	s, ok := st.series[name]
	st.mu.RUnlock()
	if ok {
		return s
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok = st.series[name]; ok {
		return s
	}
	s = NewSeries(name, st.capacity)
	st.series[name] = s
	return s
}

// SeriesSized returns the named series, creating it on first use with the
// given ring capacity instead of the store default. An existing series keeps
// its original capacity. The orchestrator uses this to bound per-slice
// telemetry rings: with tens of thousands of slices, default-sized rings
// would dominate the daemon's memory.
func (st *Store) SeriesSized(name string, capacity int) *Series {
	st.mu.RLock()
	s, ok := st.series[name]
	st.mu.RUnlock()
	if ok {
		return s
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok = st.series[name]; ok {
		return s
	}
	s = NewSeries(name, capacity)
	st.series[name] = s
	return s
}

// Record appends to the named series, creating it if needed.
func (st *Store) Record(name string, at time.Time, v float64) {
	st.Series(name).Add(at, v)
}

// BatchSample is one (series, value) pair of a RecordBatch flush.
type BatchSample struct {
	Name  string
	Value float64
}

// RecordBatch appends every sample, all stamped at, resolving the whole
// batch against the series registry in a single shared-lock acquisition
// (plus one write-lock pass when new series must be created) — the epoch
// engine's per-shard telemetry flush, replacing one registry round-trip per
// sample. Missing series are created with the store default capacity.
// Semantics per sample are identical to Record.
func (st *Store) RecordBatch(at time.Time, samples []BatchSample) {
	st.recordBatch(at, samples, st.capacity)
}

// RecordBatchSized is RecordBatch, but series missing from the registry are
// created with the given ring capacity (see SeriesSized).
func (st *Store) RecordBatchSized(at time.Time, samples []BatchSample, capacity int) {
	st.recordBatch(at, samples, capacity)
}

func (st *Store) recordBatch(at time.Time, samples []BatchSample, capacity int) {
	if len(samples) == 0 {
		return
	}
	ptrs := make([]*Series, len(samples))
	missing := false
	st.mu.RLock()
	for i := range samples {
		if s, ok := st.series[samples[i].Name]; ok {
			ptrs[i] = s
		} else {
			missing = true
		}
	}
	st.mu.RUnlock()
	if missing {
		st.mu.Lock()
		for i := range samples {
			if ptrs[i] != nil {
				continue
			}
			s, ok := st.series[samples[i].Name]
			if !ok {
				s = NewSeries(samples[i].Name, capacity)
				st.series[samples[i].Name] = s
			}
			ptrs[i] = s
		}
		st.mu.Unlock()
	}
	nanos := at.UnixNano()
	for i := range samples {
		s := ptrs[i]
		s.mu.Lock()
		s.addLocked(nanos, samples[i].Value)
		s.mu.Unlock()
	}
}

// Names returns all series names, sorted.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.series))
	for n := range st.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the latest value of every series — the payload the
// domain controllers feed to the orchestrator over REST.
func (st *Store) Snapshot() map[string]float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make(map[string]float64, len(st.series))
	for n, s := range st.series {
		if last, ok := s.Last(); ok {
			out[n] = last.Value
		}
	}
	return out
}

// SliceMetric builds the conventional per-slice series name,
// e.g. SliceMetric("s-3", "demand_mbps") = "slice/s-3/demand_mbps".
func SliceMetric(sliceID, metric string) string {
	return fmt.Sprintf("slice/%s/%s", sliceID, metric)
}

// DomainMetric builds the conventional per-domain series name,
// e.g. DomainMetric("ran", "utilization") = "domain/ran/utilization".
func DomainMetric(domain, metric string) string {
	return fmt.Sprintf("domain/%s/%s", domain, metric)
}
