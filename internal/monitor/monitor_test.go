package monitor

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2018, 8, 20, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func TestSeriesAddAndLast(t *testing.T) {
	s := NewSeries("x", 4)
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has Last")
	}
	s.Add(at(1), 10)
	s.Add(at(2), 20)
	last, ok := s.Last()
	if !ok || last.Value != 20 || !last.At.Equal(at(2)) {
		t.Fatalf("last = %+v", last)
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestSeriesEvictsOldest(t *testing.T) {
	s := NewSeries("x", 3)
	for i := 1; i <= 5; i++ {
		s.Add(at(i), float64(i))
	}
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	vals := s.Values(0)
	want := []float64{3, 4, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("ring values %v, want %v", vals, want)
		}
	}
}

func TestWindowChronologicalAndBounded(t *testing.T) {
	s := NewSeries("x", 10)
	for i := 0; i < 7; i++ {
		s.Add(at(i), float64(i))
	}
	w := s.Window(3)
	if len(w) != 3 || w[0].Value != 4 || w[2].Value != 6 {
		t.Fatalf("window = %+v", w)
	}
	if got := s.Window(100); len(got) != 7 {
		t.Fatalf("oversized window returned %d", len(got))
	}
}

func TestSince(t *testing.T) {
	s := NewSeries("x", 10)
	for i := 0; i < 10; i++ {
		s.Add(at(i), float64(i))
	}
	got := s.Since(at(7))
	if len(got) != 3 || got[0].Value != 7 {
		t.Fatalf("since = %+v", got)
	}
	if len(s.Since(at(100))) != 0 {
		t.Fatal("future Since returned samples")
	}
}

func TestComputeStats(t *testing.T) {
	st := Compute([]float64{1, 2, 3, 4, 5})
	if st.N != 5 || st.Mean != 3 || st.Min != 1 || st.Max != 5 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.StdDev-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("stddev %v", st.StdDev)
	}
	if st.P50 != 3 {
		t.Fatalf("p50 %v", st.P50)
	}
}

func TestComputeEmpty(t *testing.T) {
	st := Compute(nil)
	if st.N != 0 || st.Mean != 0 {
		t.Fatalf("empty stats %+v", st)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("P(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestStoreAutoCreatesAndSnapshots(t *testing.T) {
	st := NewStore(16)
	st.Record("a", at(1), 1)
	st.Record("b", at(1), 2)
	st.Record("a", at(2), 3)
	snap := st.Snapshot()
	if snap["a"] != 3 || snap["b"] != 2 {
		t.Fatalf("snapshot %v", snap)
	}
	names := st.Names()
	if len(names) != 2 || !sort.StringsAreSorted(names) {
		t.Fatalf("names %v", names)
	}
}

func TestStoreSeriesIdentity(t *testing.T) {
	st := NewStore(8)
	if st.Series("x") != st.Series("x") {
		t.Fatal("Series returned different instances")
	}
}

func TestMetricNameHelpers(t *testing.T) {
	if SliceMetric("s1", "demand") != "slice/s1/demand" {
		t.Fatal("SliceMetric format")
	}
	if DomainMetric("ran", "util") != "domain/ran/util" {
		t.Fatal("DomainMetric format")
	}
}

func TestConcurrentAccess(t *testing.T) {
	st := NewStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Record("shared", at(i), float64(g*1000+i))
				st.Series("shared").WindowStats(10)
				st.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if st.Series("shared").Len() != 64 {
		t.Fatalf("len %d after concurrent writes", st.Series("shared").Len())
	}
}

// Property: ring length never exceeds capacity and Window(0) is always
// chronological.
func TestPropertyRingInvariant(t *testing.T) {
	f := func(vals []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		s := NewSeries("p", capacity)
		for i, v := range vals {
			s.Add(at(i), float64(v))
		}
		if s.Len() > capacity {
			return false
		}
		w := s.Window(0)
		for i := 1; i < len(w); i++ {
			if w[i].At.Before(w[i-1].At) {
				return false
			}
		}
		// Window must hold exactly the most recent min(len(vals),capacity).
		want := len(vals)
		if want > capacity {
			want = capacity
		}
		if len(w) != want {
			return false
		}
		for i := range w {
			if w[i].Value != float64(vals[len(vals)-want+i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		fs := make([]float64, len(vals))
		for i, v := range vals {
			fs[i] = float64(v)
		}
		sort.Float64s(fs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Percentile(fs, p)
			if q < prev || q < fs[0]-1e-9 || q > fs[len(fs)-1]+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
