package monitor

import (
	"sync"
	"testing"
)

// The monitor-ring edge cases the chaos/invariant PR pins down: exact-
// capacity wraparound (the per-slice rings are bounded at 512 samples and
// the epoch engine fills them one batch per epoch), empty-series reads, and
// RecordBatchSized batches that exceed or duplicate into a single ring.
// (The `at` time helper is shared with monitor_test.go.)

// TestRingWraparoundAtExactCapacity fills a 512-ring to exactly its
// capacity, then one past it, checking both boundaries sample by sample.
func TestRingWraparoundAtExactCapacity(t *testing.T) {
	const cap = 512
	s := NewSeries("x", cap)
	for i := 0; i < cap; i++ {
		s.Add(at(i), float64(i))
	}
	if s.Len() != cap {
		t.Fatalf("Len %d at exact capacity, want %d", s.Len(), cap)
	}
	w := s.Window(0)
	if len(w) != cap || w[0].Value != 0 || w[cap-1].Value != cap-1 {
		t.Fatalf("window [%v..%v] of %d at exact capacity", w[0].Value, w[len(w)-1].Value, len(w))
	}
	// The 513th sample evicts exactly the oldest.
	s.Add(at(cap), float64(cap))
	if s.Len() != cap {
		t.Fatalf("Len %d after wraparound, want %d", s.Len(), cap)
	}
	w = s.Window(0)
	if w[0].Value != 1 || w[cap-1].Value != cap {
		t.Fatalf("window [%v..%v] after wraparound, want [1..%d]", w[0].Value, w[cap-1].Value, cap)
	}
	for i := 1; i < len(w); i++ {
		if w[i].Value != w[i-1].Value+1 {
			t.Fatalf("window not contiguous at %d: %v -> %v", i, w[i-1].Value, w[i].Value)
		}
	}
	if last, ok := s.Last(); !ok || last.Value != cap || !last.At.Equal(at(cap)) {
		t.Fatalf("Last %+v ok=%v after wraparound", last, ok)
	}
}

// TestEmptyAndDegenerateSeries: every read path on a series with no samples
// (and on minimum-capacity rings) is well-defined.
func TestEmptyAndDegenerateSeries(t *testing.T) {
	s := NewSeries("empty", 512)
	if s.Len() != 0 {
		t.Fatal("fresh series not empty")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported a sample")
	}
	if w := s.Window(0); len(w) != 0 {
		t.Fatalf("Window(0) on empty series: %v", w)
	}
	if w := s.Window(10); len(w) != 0 {
		t.Fatalf("Window(10) on empty series: %v", w)
	}
	if v := s.Values(5); len(v) != 0 {
		t.Fatalf("Values on empty series: %v", v)
	}
	if since := s.Since(at(0)); len(since) != 0 {
		t.Fatalf("Since on empty series: %v", since)
	}
	st := s.WindowStats(0)
	if st.N != 0 || st.Mean != 0 || st.P99 != 0 {
		t.Fatalf("stats on empty series: %+v", st)
	}

	// Requested capacity <= 0 clamps to 1, and the 1-ring keeps the newest.
	tiny := NewSeries("tiny", 0)
	if tiny.Capacity() != 1 {
		t.Fatalf("capacity %d, want clamp to 1", tiny.Capacity())
	}
	tiny.Add(at(1), 1)
	tiny.Add(at(2), 2)
	if last, _ := tiny.Last(); last.Value != 2 || tiny.Len() != 1 {
		t.Fatalf("1-ring kept %+v (len %d)", last, tiny.Len())
	}
}

// TestRecordBatchSizedOverflow: one batch larger than the ring capacity
// must land like the equivalent Record sequence — the ring retains the
// batch's tail — and a batch writing the same series twice appends twice.
func TestRecordBatchSizedOverflow(t *testing.T) {
	st := NewStore(1024)
	batch := make([]BatchSample, 8)
	for i := range batch {
		batch[i] = BatchSample{Name: "over", Value: float64(i)}
	}
	st.RecordBatchSized(at(1), batch, 4) // ring half the batch size
	s := st.Series("over")
	if s.Capacity() != 4 {
		t.Fatalf("capacity %d, want the sized 4", s.Capacity())
	}
	vals := s.Values(0)
	want := []float64{4, 5, 6, 7}
	if len(vals) != len(want) {
		t.Fatalf("values %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values %v, want %v", vals, want)
		}
	}

	// Duplicate names in one batch hit the same ring in order, and an
	// existing series keeps its original capacity on later sized batches.
	st.RecordBatchSized(at(2), []BatchSample{
		{Name: "over", Value: 100},
		{Name: "over", Value: 101},
		{Name: "fresh", Value: 1},
	}, 9)
	vals = st.Series("over").Values(0)
	if vals[len(vals)-2] != 100 || vals[len(vals)-1] != 101 {
		t.Fatalf("duplicate-name batch landed as %v", vals)
	}
	if c := st.Series("over").Capacity(); c != 4 {
		t.Fatalf("existing ring resized to %d", c)
	}
	if c := st.Series("fresh").Capacity(); c != 9 {
		t.Fatalf("new ring capacity %d, want 9", c)
	}

	// Empty batches are a no-op.
	st.RecordBatchSized(at(3), nil, 4)
	if got := len(st.Series("over").Values(0)); got != 4 {
		t.Fatalf("empty batch changed the ring: %d values", got)
	}
}

// TestRecordBatchConcurrentWithReads hammers batch writes against window
// reads; the race detector owns the verdict, the final length check the
// bookkeeping.
func TestRecordBatchConcurrentWithReads(t *testing.T) {
	st := NewStore(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.RecordBatchSized(at(i), []BatchSample{
					{Name: "shared", Value: float64(i)},
					{Name: "shared", Value: float64(i) + 0.5},
				}, 32)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = st.Series("shared").Window(0)
				_ = st.Snapshot()
			}
		}()
	}
	wg.Wait()
	// Whoever touched the name first fixed the ring capacity (32 from the
	// sized batch, 64 from a reader's default-capacity lookup); either way
	// far more samples than capacity landed, so the ring must be full.
	s := st.Series("shared")
	if s.Len() != s.Capacity() {
		t.Fatalf("ring length %d after concurrent batches, want full %d", s.Len(), s.Capacity())
	}
}
