package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/forecast"
	"repro/internal/invariant"
	"repro/internal/mec"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/wal"
)

// This file is deterministic crash recovery (DESIGN.md §9): Recover loads
// the latest checkpoint snapshot plus the write-ahead log tail from disk and
// rebuilds an orchestrator whose externally observable state — gain report,
// slice registry, published epoch snapshot, event sequence, capacity-ledger
// float bits — is bit-identical to the crashed run's state at its last
// commit boundary.
//
// Replay never re-decides: every log record carries the original run's full
// outcome (PRBs per eNB, path hops and bandwidth, MEC host, money and ledger
// movements), and the appliers below impose those outcomes onto the rebuilt
// substrates. Environment perturbations (CQI fades, MEC brownouts) are
// deliberately not durable — they bypass the orchestrator and only lower
// capacity below the defaults, so imposed outcomes always fit a
// default-environment testbed.
//
// The whole pass is single-threaded: no API goroutine, timer or subscriber
// runs until Recover returns, so the appliers touch shard maps and counters
// without taking the locks the live paths require.
//
// Scope of the bit-identical contract: it holds for single-driver runs (the
// deterministic sim driver, the crash-point harness, a daemon with one
// mutating client). Under live concurrency, records are sequenced by
// persistMu inside each shard's critical section, but the global float
// accumulators (capacity ledger, gain accumulator) are guarded by their own
// mutexes — two operations on different shards can mutate an accumulator in
// one order while their WAL records land in the other. Replay applies in
// WAL order, so a recovered concurrent run is semantically equivalent
// (every slice, event, counter and euro is exact) while the low-order bits
// of those float sums may differ by association order. Digest comparisons
// (StateDigest) and the §8 auditor's strict ledger-equality sweep are
// therefore deterministic-driver tools; DESIGN.md §9.3 records the same
// caveat.

// RecoveryReport summarises one crash-recovery pass.
type RecoveryReport struct {
	// SnapshotSeq is the WAL sequence the loaded checkpoint was anchored at
	// (0 when recovery replayed the log from its beginning).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Replayed counts the log records applied after the checkpoint.
	Replayed int `json:"replayed"`
	// LastSeq is the last durable WAL sequence; appending resumes after it.
	LastSeq uint64 `json:"last_seq"`
	// TornTail reports that the log ended mid-record (the crash hit the
	// fsync window); the torn fragment was discarded and truncated.
	TornTail bool `json:"torn_tail,omitempty"`
	// CleanShutdown reports that the log ended with a shutdown record — the
	// previous run exited cleanly rather than crashing.
	CleanShutdown bool `json:"clean_shutdown,omitempty"`
	// LiveSlices counts recovered slices in a live state (admitted,
	// installing, active or reconfiguring).
	LiveSlices int `json:"live_slices"`
}

// Recover rebuilds an orchestrator from the WAL directory: load the newest
// usable checkpoint and the log tail, replay, truncate any torn tail, and
// re-attach a writer so new operations append after the recovered sequence.
// An empty or absent directory degenerates to a fresh orchestrator with
// persistence enabled. cfg.Persist is ignored — the attached sink is always
// the directory's WAL writer. The caller owns closing the returned writer.
func Recover(cfg Config, tb *testbed.Testbed, clock sim.Scheduler, store *monitor.Store, dir string) (*Orchestrator, *wal.Writer, error) {
	rec, err := wal.Load(dir)
	if err != nil {
		return nil, nil, err
	}
	o, _, err := RecoverFromWAL(cfg, tb, clock, store, rec)
	if err != nil {
		return nil, nil, err
	}
	if rec.TornTail {
		// The writer appends; a torn fragment left in place would corrupt
		// the record stream for the next recovery.
		if err := wal.Repair(dir, rec.LogBytes); err != nil {
			return nil, nil, err
		}
	}
	w, err := wal.Create(dir, rec.LastSeq)
	if err != nil {
		return nil, nil, err
	}
	o.AttachSink(WALSink(w), rec.LastSeq)
	return o, w, nil
}

// RecoverFromWAL rebuilds an orchestrator from an already-loaded WAL image:
// restore the checkpoint, replay the log tail in order, re-arm the pending
// activation and expiry timers on the clock, and re-attach the invariant
// auditor primed with the recovered state. The returned orchestrator has no
// persistence sink attached (see AttachSink); crash-point tests recover
// against in-memory images without touching disk.
func RecoverFromWAL(cfg Config, tb *testbed.Testbed, clock sim.Scheduler, store *monitor.Store, rec *wal.Recovered) (*Orchestrator, *RecoveryReport, error) {
	base := cfg
	base.Persist = nil
	base.Audit = false
	base.AuditOnViolation = nil
	o := New(base, tb, clock, store)

	rep := &RecoveryReport{SnapshotSeq: rec.SnapshotSeq, LastSeq: rec.LastSeq, TornTail: rec.TornTail}
	if rec.Snapshot != nil {
		if err := o.restoreSnapshot(rec.Snapshot); err != nil {
			return nil, nil, fmt.Errorf("core: restore checkpoint at seq %d: %w", rec.SnapshotSeq, err)
		}
	}
	for _, r := range rec.Records {
		if err := o.applyRecord(r); err != nil {
			return nil, nil, fmt.Errorf("core: replay record %d (%s): %w", r.Seq, r.Type, err)
		}
		rep.Replayed++
		rep.CleanShutdown = r.Type == recShutdown
	}
	o.rearmTimers()
	for _, sh := range o.shards {
		for _, m := range sh.slices {
			switch m.s.State() {
			case slice.StateAdmitted, slice.StateInstalling, slice.StateActive, slice.StateReconfiguring:
				rep.LiveSlices++
			}
		}
	}

	// Re-attach the auditor only now: it must not observe the historical
	// stream twice (Republish bypasses the tap), and its state starts where
	// the recovered orchestrator's does.
	if cfg.Audit {
		o.cfg.Audit = true
		o.cfg.AuditOnViolation = cfg.AuditOnViolation
		o.audit = invariant.New(invariant.Options{OnViolation: cfg.AuditOnViolation})
		o.bus.SetTap(o.auditObserveEvent)
		states := make(map[slice.ID]string)
		for _, sh := range o.shards {
			for id, m := range sh.slices {
				// Only live slices: terminal states forbid successors and
				// are dropped from the auditor's tracking on observation.
				switch m.s.State() {
				case slice.StateAdmitted, slice.StateInstalling:
					states[id] = "installing"
				case slice.StateActive, slice.StateReconfiguring:
					states[id] = "active"
				}
			}
		}
		o.audit.Prime(o.bus.LastSeq(), states, int(o.epochs.Load()), clock.Now())
	}
	o.recovery = rep
	return o, rep, nil
}

// AttachSink wires a persistence sink into a recovered orchestrator, with
// appends resuming after lastSeq. It must be called before any concurrent
// operation starts (Recover and the crash-point harness call it immediately
// after RecoverFromWAL returns).
func (o *Orchestrator) AttachSink(sink Sink, lastSeq uint64) {
	o.persistMu.Lock()
	o.persist = sink
	o.walSeq = lastSeq
	o.persistMu.Unlock()
	o.commit.mu.Lock()
	o.commit.durable = lastSeq
	o.commit.mu.Unlock()
}

// restoreSnapshot rebuilds the orchestrator from a checkpoint blob: global
// counters and accumulators bit-exactly, then every registry slice with its
// substrate outcomes re-imposed.
func (o *Orchestrator) restoreSnapshot(blob []byte) error {
	var st checkpointState
	if err := json.Unmarshal(blob, &st); err != nil {
		return err
	}
	o.seq.Store(st.SeqCounter)
	o.epochs.Store(st.Epochs)
	if st.LastEpoch != nil {
		snap := *st.LastEpoch
		o.lastEpoch.Store(&snap)
	}
	o.bus.Restore(st.EventNext)
	o.ledger.mu.Lock()
	o.ledger.load = st.LedgerLoad
	o.ledger.mu.Unlock()
	// Restore replaces the whole allocator state — snapshot slices' PLMNs
	// are already in its in-use set, so they are not re-imposed per slice.
	o.plmns.Restore(st.PLMN)
	o.acc.mu.Lock()
	o.acc.revenueEUR = st.Acc.RevenueEUR
	o.acc.penaltyEUR = st.Acc.PenaltyEUR
	o.acc.contractedMbps = st.Acc.ContractedMbps
	o.acc.allocatedMbps = st.Acc.AllocatedMbps
	o.acc.live = st.Acc.Live
	o.acc.rejectReasons = make(map[string]int, len(st.Acc.RejectReasons))
	for k, v := range st.Acc.RejectReasons {
		o.acc.rejectReasons[k] = v
	}
	o.acc.mu.Unlock()
	// The checkpoint stores global counter sums; only sums are ever read,
	// so they all land in shard 0.
	sh0 := o.shards[0]
	sh0.admitted.Store(st.Counters.Admitted)
	sh0.rejected.Store(st.Counters.Rejected)
	sh0.violations.Store(st.Counters.Violations)
	sh0.reconfigurations.Store(st.Counters.Reconfigurations)
	sh0.active.Store(st.Counters.Active)
	o.history.mu.Lock()
	o.history.ids = append([]slice.ID(nil), st.History...)
	o.history.mu.Unlock()
	for _, ls := range st.Links {
		if err := o.tb.Transport.SetLinkCapacity(ls.From, ls.To, ls.CapacityMbps); err != nil {
			return err
		}
		if err := o.tb.Transport.SetLinkUp(ls.From, ls.To, ls.Up); err != nil {
			return err
		}
	}
	for i := range st.Slices {
		if err := o.restoreSlice(&st.Slices[i]); err != nil {
			return fmt.Errorf("slice %s: %w", st.Slices[i].Slice.ID, err)
		}
	}
	return nil
}

// restoreSlice registers one checkpointed slice, re-imposing its substrate
// outcomes when it is in a live state.
func (o *Orchestrator) restoreSlice(ps *persistedSlice) error {
	s := slice.Rehydrate(ps.Slice)
	id := s.ID()
	sh := o.shardFor(id)
	m := &managedSlice{
		s: s, sh: sh,
		ledgerMbps: ps.LedgerMbps,
		activateAt: ps.ActivateAt,
		lastDemand: ps.LastDemand,
		haveDemand: ps.HaveDemand,
	}
	switch s.State() {
	case slice.StateAdmitted, slice.StateInstalling, slice.StateActive, slice.StateReconfiguring:
		m.prov = forecast.NewProvisioner(o.cfg.NewForecaster(), o.cfg.effectiveRisk(), o.cfg.FloorMbps)
		if err := o.imposeSubstrate(s, ps.Paths, ps.MECHost, ps.MECCPU); err != nil {
			return err
		}
		switch s.State() {
		case slice.StateActive, slice.StateReconfiguring:
			if err := o.tb.Ctrl.Cloud.MarkEPCRunning(s.Allocation().EPCID, ps.Slice.Starts); err != nil {
				return err
			}
		}
	}
	sh.slices[id] = m
	if ps.Timeline != nil {
		tl := *ps.Timeline
		sh.timelines[id] = &tl
	}
	return nil
}

// imposeSubstrate re-creates a live slice's logged substrate outcomes on the
// rebuilt testbed: per-eNB PRB reservations, transport paths at their
// recorded hops and bandwidth, the vEPC deployment (deterministic IDs), and
// the MEC app on its recorded host. The slice's PLMN must already be owned
// (allocator Restore or Impose).
func (o *Orchestrator) imposeSubstrate(s *slice.Slice, paths []pathRecord, mecHost string, mecCPU float64) error {
	alloc := s.Allocation()
	id := s.ID()
	enbs := make([]string, 0, len(alloc.PRBs))
	for name := range alloc.PRBs {
		enbs = append(enbs, name)
	}
	sort.Strings(enbs)
	for _, name := range enbs {
		e, ok := o.tb.RAN.Get(name)
		if !ok {
			return fmt.Errorf("unknown eNB %q", name)
		}
		if err := e.Reserve(alloc.PLMN, alloc.PRBs[name]); err != nil {
			return fmt.Errorf("radio impose on %s: %w", name, err)
		}
	}
	pids := make([]string, 0, len(paths))
	for _, pr := range paths {
		if _, err := o.tb.Transport.Reserve(pr.ID, pr.Hops, pr.Mbps); err != nil {
			return fmt.Errorf("transport impose %s: %w", pr.ID, err)
		}
		pids = append(pids, pr.ID)
	}
	o.tb.Ctrl.Transport.ImportPaths(id, pids)
	if alloc.StackID != "" {
		dep, err := o.tb.Ctrl.Cloud.DeployEPC(id, alloc.DataCenter, alloc.PLMN, s.SLA().ThroughputMbps, s.SLA().Class)
		if err != nil {
			return fmt.Errorf("cloud impose: %w", err)
		}
		o.tb.Ctrl.Cloud.RestoreDeployment(id, dep)
	}
	if alloc.MECAppID != "" && o.tb.MEC != nil {
		if _, err := o.tb.MEC.PlaceAt(alloc.MECAppID, id, mecCPU, mecHost); err != nil {
			return fmt.Errorf("mec impose: %w", err)
		}
	}
	return nil
}

// applyRecord dispatches one log record to its applier.
func (o *Orchestrator) applyRecord(r wal.Record) error {
	switch r.Type {
	case recAdmit:
		var ar admitRecord
		if err := json.Unmarshal(r.Payload, &ar); err != nil {
			return err
		}
		return o.applyAdmit(ar)
	case recReject:
		var rr rejectRecord
		if err := json.Unmarshal(r.Payload, &rr); err != nil {
			return err
		}
		return o.applyReject(rr)
	case recActivate:
		var ar activateRecord
		if err := json.Unmarshal(r.Payload, &ar); err != nil {
			return err
		}
		return o.applyActivate(ar)
	case recTeardown:
		var tr teardownRecord
		if err := json.Unmarshal(r.Payload, &tr); err != nil {
			return err
		}
		return o.applyTeardown(tr)
	case recResize:
		var rr resizeRecord
		if err := json.Unmarshal(r.Payload, &rr); err != nil {
			return err
		}
		return o.applyResize(rr)
	case recReroute:
		var rr rerouteRecord
		if err := json.Unmarshal(r.Payload, &rr); err != nil {
			return err
		}
		return o.applyReroute(rr)
	case recEpoch:
		var er epochRecord
		if err := json.Unmarshal(r.Payload, &er); err != nil {
			return err
		}
		return o.applyEpoch(er)
	case recLink:
		var lr linkRecord
		if err := json.Unmarshal(r.Payload, &lr); err != nil {
			return err
		}
		return o.applyLink(lr)
	case recShutdown:
		var sr shutdownRecord
		if err := json.Unmarshal(r.Payload, &sr); err != nil {
			return err
		}
		o.republish(sr.Events)
		return nil
	default:
		return fmt.Errorf("unknown record type %q", r.Type)
	}
}

// republish re-inserts logged events into the replay ring under their
// original sequence numbers.
func (o *Orchestrator) republish(events []Event) {
	for _, ev := range events {
		o.bus.Republish(ev)
	}
}

// bumpSeq advances the slice-ID counter past a replayed slice's number.
func (o *Orchestrator) bumpSeq(id slice.ID) {
	if n := int64(seqOf(id)); n > o.seq.Load() {
		o.seq.Store(n)
	}
}

// applyAdmit registers a logged admission: the slice image as of the admit
// boundary, its substrate outcomes imposed, the ledger reservation repeated
// and the deterministic installation timeline stamped. Stage-timer stamps
// are written directly (the stages complete at fixed config offsets from
// submission — exactly what the uncrashed run's timers record); only the
// activation timer is re-armed afterwards (rearmTimers).
func (o *Orchestrator) applyAdmit(ar admitRecord) error {
	s := slice.Rehydrate(ar.Slice)
	id := s.ID()
	o.bumpSeq(id)
	alloc := s.Allocation()
	if err := o.plmns.Impose(alloc.PLMN, id); err != nil {
		return err
	}
	if err := o.imposeSubstrate(s, ar.Paths, ar.MECHost, ar.MECCPU); err != nil {
		return err
	}
	o.ledger.Update(0, ar.ReservedMbps)
	sh := o.shardFor(id)
	sh.slices[id] = &managedSlice{
		s: s, sh: sh,
		prov:       forecast.NewProvisioner(o.cfg.NewForecaster(), o.cfg.effectiveRisk(), o.cfg.FloorMbps),
		ledgerMbps: ar.ReservedMbps,
		activateAt: ar.ActivateAt,
	}
	sh.admitted.Add(1)
	o.acc.admit(s.SLA().PriceEUR, s.SLA().ThroughputMbps, alloc.AllocatedMbps)
	radioAt := ar.SubmittedAt.Add(o.cfg.RadioConfigDelay)
	pathsAt := radioAt.Add(o.cfg.PathSetupDelay)
	sh.timelines[id] = &InstallTimeline{
		Submitted: ar.SubmittedAt,
		RadioDone: radioAt,
		PathsDone: pathsAt,
		StackDone: pathsAt.Add(o.cfg.StackCreateDelay),
	}
	o.republish(ar.Events)
	return nil
}

// applyReject registers a logged rejection, repeating the admission path's
// ledger reserve-then-release round trip when it happened — float addition
// is not exactly invertible, so skipping it would change the ledger's bits.
func (o *Orchestrator) applyReject(rr rejectRecord) error {
	s := slice.Rehydrate(rr.Slice)
	id := s.ID()
	o.bumpSeq(id)
	sh := o.shardFor(id)
	sh.slices[id] = &managedSlice{s: s, sh: sh}
	sh.rejected.Add(1)
	if cause, ok := s.Cause(); ok {
		o.acc.reject(string(cause.Code))
	}
	if rr.ReservedMbps > 0 {
		o.ledger.Update(0, rr.ReservedMbps)
		o.ledger.Release(rr.ReservedMbps)
	}
	o.dropFinished(o.history.Push(id))
	o.republish(rr.Events)
	return nil
}

// applyActivate replays a vEPC-boot completion.
func (o *Orchestrator) applyActivate(ar activateRecord) error {
	sh := o.shardFor(ar.Slice)
	m, ok := sh.slices[ar.Slice]
	if !ok {
		return fmt.Errorf("unknown slice")
	}
	if err := o.tb.Ctrl.Cloud.MarkEPCRunning(m.s.Allocation().EPCID, ar.At); err != nil {
		return err
	}
	if err := m.s.Activate(ar.At); err != nil {
		return err
	}
	sh.active.Add(1)
	if tl, ok := sh.timelines[ar.Slice]; ok {
		tl.Active = ar.At
	}
	o.republish(ar.Events)
	return nil
}

// applyTeardown replays a teardown from any live state — teardownLocked's
// bookkeeping minus publication.
func (o *Orchestrator) applyTeardown(tr teardownRecord) error {
	sh := o.shardFor(tr.Slice)
	m, ok := sh.slices[tr.Slice]
	if !ok {
		return fmt.Errorf("unknown slice")
	}
	st := m.s.State()
	alloc := m.s.Allocation()
	o.releaseAll(tr.Slice, alloc.PLMN)
	o.plmns.Release(alloc.PLMN)
	o.ledger.Release(m.ledgerMbps)
	m.ledgerMbps = 0
	switch st {
	case slice.StateAdmitted, slice.StateInstalling, slice.StateActive, slice.StateReconfiguring:
		o.acc.release(m.s.SLA().ThroughputMbps, alloc.AllocatedMbps)
	}
	switch st {
	case slice.StateActive, slice.StateReconfiguring:
		sh.active.Add(-1)
	}
	if err := m.s.Terminate(tr.Reason); err != nil {
		return err
	}
	o.dropFinished(o.history.Push(tr.Slice))
	o.republish(tr.Events)
	return nil
}

// applyResize imposes a logged reallocation outcome: the recorded per-eNB
// PRBs, the transport paths resized to the new aggregate when the original
// operation did so (engine resizes — degradation shrinks leave transport to
// their preceding reroute record), and the MEC app at its recorded sizing
// input. Reconfiguration counting mirrors the original paths: engine resizes
// count one; the shrink's count came from its reroute.
func (o *Orchestrator) applyResize(rr resizeRecord) error {
	sh := o.shardFor(rr.Slice)
	m, ok := sh.slices[rr.Slice]
	if !ok || m.s.State() == slice.StateTerminated || m.s.State() == slice.StateRejected {
		// A resize against a slice the recovered registry no longer holds
		// live. In a well-formed log this cannot happen — per-slice record
		// order (admit < resize < teardown) is pinned under the shard lock,
		// and the resize→teardown→crash enumeration in the crashtest harness
		// proves every prefix replays with the slice present — but a torn or
		// hand-truncated image must degrade to a skip, not abort the whole
		// recovery or resurrect released ledger/substrate capacity. The
		// logged events are still republished so the sequence space and
		// replay ring stay contiguous.
		o.republish(rr.Events)
		return nil
	}
	alloc := m.s.Allocation()
	before := alloc.AllocatedMbps
	enbs := make([]string, 0, len(rr.PRBs))
	for name := range rr.PRBs {
		enbs = append(enbs, name)
	}
	sort.Strings(enbs)
	for _, name := range enbs {
		e, ok := o.tb.RAN.Get(name)
		if !ok {
			return fmt.Errorf("unknown eNB %q", name)
		}
		if err := e.Resize(alloc.PLMN, rr.PRBs[name]); err != nil {
			return fmt.Errorf("radio resize on %s: %w", name, err)
		}
	}
	if rr.ResizePaths && len(alloc.PathIDs) > 0 {
		if err := o.tb.Ctrl.Transport.ResizePaths(rr.Slice, rr.Mbps); err != nil {
			return err
		}
	}
	if alloc.MECAppID != "" && o.tb.MEC != nil {
		if err := o.tb.MEC.Resize(alloc.MECAppID, mec.CPUForMbps(rr.MECMbps)); err != nil {
			return err
		}
	}
	alloc.AllocatedMbps = rr.Mbps
	alloc.PRBs = make(map[string]int, len(rr.PRBs))
	for k, v := range rr.PRBs {
		alloc.PRBs[k] = v
	}
	m.s.SetAllocation(alloc)
	o.acc.allocDelta(rr.Mbps - before)
	if rr.ResizePaths {
		sh.reconfigurations.Add(1)
	}
	o.republish(rr.Events)
	return nil
}

// applyReroute rebuilds a slice's transport paths from a logged restoration
// outcome.
func (o *Orchestrator) applyReroute(rr rerouteRecord) error {
	sh := o.shardFor(rr.Slice)
	m, ok := sh.slices[rr.Slice]
	if !ok {
		return fmt.Errorf("unknown slice")
	}
	o.tb.Ctrl.Transport.ReleasePaths(rr.Slice)
	pids := make([]string, 0, len(rr.Paths))
	for _, pr := range rr.Paths {
		if _, err := o.tb.Transport.Reserve(pr.ID, pr.Hops, pr.Mbps); err != nil {
			return fmt.Errorf("transport impose %s: %w", pr.ID, err)
		}
		pids = append(pids, pr.ID)
	}
	o.tb.Ctrl.Transport.ImportPaths(rr.Slice, pids)
	alloc := m.s.Allocation()
	alloc.PathIDs = pids
	alloc.PathLatencyMs = rr.WorstDelayMs
	m.s.SetAllocation(alloc)
	sh.reconfigurations.Add(1)
	o.republish(rr.Events)
	return nil
}

// applyEpoch replays a control epoch's per-slice outcomes. The epoch's
// resizes preceded this record as their own records, so only the analysis
// results (demand samples, violation counting, forecaster observations),
// the charges and the ledger rolls happen here — each phase in the logged
// item order, preserving every accumulator's float-addition order.
func (o *Orchestrator) applyEpoch(er epochRecord) error {
	o.epochs.Store(er.Epoch)
	for _, it := range er.Items {
		m, ok := o.shardFor(it.Slice).slices[it.Slice]
		if !ok {
			continue
		}
		m.lastDemand = it.Demand
		m.haveDemand = true
		if it.Counted {
			m.s.RecordEpoch(it.Demand, it.Served)
			m.prov.Observe(it.Demand)
		}
	}
	for _, it := range er.Items {
		if !it.Charged {
			continue
		}
		if m, ok := o.shardFor(it.Slice).slices[it.Slice]; ok {
			m.sh.violations.Add(1)
			o.acc.penalty(m.s.SLA().PenaltyEUR)
		}
	}
	for _, it := range er.Items {
		if !it.LedgerUpdated {
			continue
		}
		if m, ok := o.shardFor(it.Slice).slices[it.Slice]; ok {
			o.ledger.Update(m.ledgerMbps, it.LedgerTo)
			m.ledgerMbps = it.LedgerTo
		}
	}
	snap := er.Snapshot
	o.lastEpoch.Store(&snap)
	o.republish(er.Events)
	return nil
}

// applyLink replays a transport-link transition; per-victim outcomes follow
// as their own records.
func (o *Orchestrator) applyLink(lr linkRecord) error {
	var err error
	switch lr.Kind {
	case "fail":
		err = o.tb.Transport.SetLinkUp(lr.From, lr.To, false)
	case "degrade":
		err = o.tb.Transport.SetLinkCapacity(lr.From, lr.To, lr.CapacityMbps)
	case "restore":
		err = o.tb.Transport.SetLinkUp(lr.From, lr.To, true)
	default:
		err = fmt.Errorf("unknown link record kind %q", lr.Kind)
	}
	if err != nil {
		return err
	}
	o.republish(lr.Events)
	return nil
}

// rearmTimers re-schedules the clock work the crashed run had pending:
// installing slices' activation timers (the stage stamps are already
// written — see applyAdmit) and active slices' contracted-expiry teardowns.
// A scheduled instant already in the past fires on the clock's next step
// (sim.At clamps), preserving the sim's deterministic event order.
func (o *Orchestrator) rearmTimers() {
	o.lockAll()
	ordered := o.orderedSlicesAllLocked()
	o.unlockAll()
	for _, m := range ordered {
		switch m.s.State() {
		case slice.StateInstalling:
			id := m.s.ID()
			m.timers = append(m.timers,
				o.clock.At(m.activateAt, string(id)+"/activate", func() { o.activate(id) }))
		case slice.StateActive, slice.StateReconfiguring:
			o.armExpiry(m)
		}
	}
}
