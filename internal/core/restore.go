package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ctrl"
	"repro/internal/slice"
)

// This file implements transport restoration — the reaction half of the
// demo's "dynamic configuration" pillar. The testbed's wireless transport
// (mmWave rain fade, µWave interference) and the programmable switch's
// topology reconfigurations can take links down at runtime; the
// orchestrator must then re-route the slices whose dedicated paths crossed
// the failed link or, when no feasible alternative exists, tear them down
// and surface the SLA failure.
//
// A failed link's victims can live on any shard, so both handlers are
// whole-registry passes: they serialize on epochMu (so a restoration never
// interleaves with the control epoch's phase pipeline or the squeeze) and
// then take every shard lock (index order) for the duration, serializing
// against in-flight admissions.

// RestorationReport summarises one link-failure handling pass.
type RestorationReport struct {
	// Link is the failed directed link ("from->to").
	Link string `json:"link"`
	// Restored lists slices whose paths were successfully re-routed.
	Restored []slice.ID `json:"restored"`
	// Dropped lists slices terminated because no feasible path remained.
	Dropped []slice.ID `json:"dropped"`
}

// HandleLinkFailure marks the directed link down and re-routes every live
// slice whose reserved paths crossed it. Re-routing keeps the slice's data
// center and current bandwidth; the latency budget is re-validated. Slices
// with no feasible alternative are terminated (the tenant's SLA failed
// outright — shown on the dashboard). Safe for concurrent use.
func (o *Orchestrator) HandleLinkFailure(from, to string) (RestorationReport, error) {
	rep, err := o.handleLinkFailure(from, to)
	o.commitPersist()
	return rep, err
}

// handleLinkFailure is HandleLinkFailure's body; it holds epochMu and the
// shard locks for the duration and leaves the WAL commit to the caller.
func (o *Orchestrator) handleLinkFailure(from, to string) (RestorationReport, error) {
	o.epochMu.Lock()
	defer o.epochMu.Unlock()
	o.lockAll()

	rep := RestorationReport{Link: from + "->" + to}
	victims := o.tb.Transport.PathsOverLink(from, to)
	if err := o.tb.Transport.SetLinkUp(from, to, false); err != nil {
		o.unlockAll()
		return rep, err
	}
	linkEv := o.publishLink(EventLinkFailed, rep.Link, "")
	if o.persist != nil {
		o.appendRecord(recLink, linkRecord{Kind: "fail", From: from, To: to, Events: []Event{linkEv}})
	}
	if len(victims) == 0 {
		o.unlockAll()
		return rep, nil
	}

	// Path IDs are "<sliceID>/<enb>-><dc>"; recover the victim slices.
	ids := victimSliceIDs(victims)

	var evicted []slice.ID
	for _, id := range ids {
		m, ok := o.lookupAllLocked(id)
		if !ok {
			continue
		}
		switch m.s.State() {
		case slice.StateRejected, slice.StateTerminated:
			continue
		}
		if o.rerouteLocked(m, m.s.Allocation().AllocatedMbps) {
			rep.Restored = append(rep.Restored, id)
			ev := o.publish(EventRestored, m.s, "re-routed around "+rep.Link)
			o.appendReroute(m, ev)
		} else {
			evicted = append(evicted, o.teardownLocked(m.sh, m, fmt.Sprintf("transport link %s failed, no feasible restoration path", rep.Link), EventDeleted)...)
			rep.Dropped = append(rep.Dropped, id)
		}
	}
	o.dropFinishedAllLocked(evicted)
	o.auditSweepAllLocked() // restoration is a whole-registry mutation: sweep before unlocking
	o.unlockAll()
	return rep, nil
}

// appendReroute logs the slice's freshly rebuilt transport paths (the
// outcome of a successful rerouteLocked). The caller holds the shard locks;
// events may be empty for the degradation shrink's interim re-route.
func (o *Orchestrator) appendReroute(m *managedSlice, events ...Event) {
	if o.persist == nil {
		return
	}
	alloc := m.s.Allocation()
	o.appendRecord(recReroute, rerouteRecord{
		Slice:        m.s.ID(),
		Paths:        o.pathRecords(alloc.PathIDs),
		WorstDelayMs: alloc.PathLatencyMs,
		Events:       events,
	})
}

// victimSliceIDs maps path IDs ("<sliceID>/<enb>-><dc>") onto their unique
// slice IDs, in submission order.
func victimSliceIDs(pathIDs []string) []slice.ID {
	seen := map[slice.ID]bool{}
	var ids []slice.ID
	for _, pid := range pathIDs {
		idx := strings.IndexByte(pid, '/')
		if idx < 0 {
			continue
		}
		id := slice.ID(pid[:idx])
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return seqOf(ids[i]) < seqOf(ids[j]) })
	return ids
}

// RestoreLink marks the directed link up again. Existing paths are not
// moved back (make-before-break is a non-goal); new computations will use
// it.
func (o *Orchestrator) RestoreLink(from, to string) error {
	if err := o.tb.Transport.SetLinkUp(from, to, true); err != nil {
		return err
	}
	ev := o.publishLink(EventLinkRestored, from+"->"+to, "")
	if o.persist != nil {
		o.appendRecord(recLink, linkRecord{Kind: "restore", From: from, To: to, Events: []Event{ev}})
	}
	o.commitPersist()
	return nil
}

// HandleLinkDegradation rescales the directed link's capacity (rain fade on
// the mmWave hop, interference on µWave) and resolves any resulting
// oversubscription: each victim slice is first re-routed at its current
// bandwidth; if no alternative exists, its reservation is shrunk to the
// link's fair share (demand keeps flowing, SLA violations become the
// monitoring loop's problem); a slice that cannot even keep the floor is
// dropped. Safe for concurrent use.
func (o *Orchestrator) HandleLinkDegradation(from, to string, newCapacityMbps float64) (RestorationReport, error) {
	rep, err := o.handleLinkDegradation(from, to, newCapacityMbps)
	o.commitPersist()
	return rep, err
}

// handleLinkDegradation is HandleLinkDegradation's body; it holds epochMu
// and the shard locks for the duration and leaves the WAL commit to the
// caller.
func (o *Orchestrator) handleLinkDegradation(from, to string, newCapacityMbps float64) (RestorationReport, error) {
	o.epochMu.Lock()
	defer o.epochMu.Unlock()
	o.lockAll()

	rep := RestorationReport{Link: from + "->" + to}
	if err := o.tb.Transport.SetLinkCapacity(from, to, newCapacityMbps); err != nil {
		o.unlockAll()
		return rep, err
	}
	linkEv := o.publishLink(EventLinkDegraded, rep.Link, fmt.Sprintf("capacity rescaled to %.1f Mbps", newCapacityMbps))
	if o.persist != nil {
		o.appendRecord(recLink, linkRecord{Kind: "degrade", From: from, To: to, CapacityMbps: newCapacityMbps, Events: []Event{linkEv}})
	}
	over := o.tb.Transport.OversubscribedPaths()
	if len(over) == 0 {
		o.unlockAll()
		return rep, nil
	}

	ids := victimSliceIDs(over)

	// Fair share per victim on the degraded link.
	share := newCapacityMbps / float64(len(ids))
	var evicted []slice.ID
	for _, id := range ids {
		m, ok := o.lookupAllLocked(id)
		if !ok {
			continue
		}
		switch m.s.State() {
		case slice.StateRejected, slice.StateTerminated:
			continue
		}
		// First try to keep the full allocation on an alternative route;
		// failing that, re-establish paths at the fair share of the
		// degraded link and shrink the radio side to match.
		if o.rerouteLocked(m, m.s.Allocation().AllocatedMbps) {
			rep.Restored = append(rep.Restored, id)
			ev := o.publish(EventRestored, m.s, "re-routed around degraded "+rep.Link)
			o.appendReroute(m, ev)
			continue
		}
		target := share
		if target < o.cfg.FloorMbps || !o.rerouteLocked(m, target) {
			evicted = append(evicted, o.teardownLocked(m.sh, m, fmt.Sprintf("transport link %s degraded below slice floor", rep.Link), EventDeleted)...)
			rep.Dropped = append(rep.Dropped, id)
			continue
		}
		// The interim re-route at the fair share is its own WAL record (no
		// event — the EventResized below announces the shrink).
		o.appendReroute(m)
		// The re-route just rebuilt the paths at the fair share; shrink the
		// rest of the allocation to match. The chain head's quantized grant
		// records the new throughput, and every concurrent-group domain
		// (vEPC no-op, MEC app CPU, ...) follows the same target — shrinks
		// always fit, so errors are ignored like in the engine's restore
		// path.
		alloc := m.s.Allocation()
		before := alloc.AllocatedMbps
		tx := ctrl.Tx{Slice: id, PLMN: alloc.PLMN, SLA: m.s.SLA(), DataCenter: alloc.DataCenter,
			LatencyBudgetMs: o.latencyBudget(m.s.SLA())}
		if g, err := o.domains.chain[0].Resize(tx, target); err == nil && g != nil {
			g.Apply(&alloc)
		} else {
			alloc.AllocatedMbps = target
		}
		for _, d := range o.domains.async {
			d.Resize(tx, target)
		}
		m.s.SetAllocation(alloc)
		o.acc.allocDelta(alloc.AllocatedMbps - before)
		rep.Restored = append(rep.Restored, id)
		ev := o.publish(EventResized, m.s, fmt.Sprintf("shrunk to fair share of degraded %s", rep.Link))
		if o.persist != nil {
			// Unlike an engine resize, the shrink re-sizes no transport
			// paths (the re-route above already rebuilt them at the share)
			// and feeds the MEC app the raw share rather than the radio-
			// quantized value; PRBs capture the radio's final state even
			// when its resize failed and only AllocatedMbps moved.
			o.appendRecord(recResize, resizeRecord{
				Slice:       id,
				Mbps:        alloc.AllocatedMbps,
				PRBs:        alloc.PRBs,
				MECMbps:     target,
				ResizePaths: false,
				Events:      []Event{ev},
			})
		}
	}
	o.dropFinishedAllLocked(evicted)
	o.auditSweepAllLocked()
	o.unlockAll()
	return rep, nil
}

// rerouteLocked rebuilds the slice's transport paths around the current
// topology at the given bandwidth, keeping its DC, driving the transport
// controller through its generic Domain surface (Release + Reserve + grant
// Apply) with the Set's Wrap decoration applied, so fault-injection and
// tracing wrappers observe restoration like any engine operation. Old
// reservations are released first (their bandwidth is stranded on the
// broken/degraded hop anyway, and the replacement may share the surviving
// hops); Release is idempotent, so staged fallbacks may call this
// repeatedly with shrinking targets. Returns success. The caller holds the
// slice's shard lock.
func (o *Orchestrator) rerouteLocked(m *managedSlice, mbps float64) bool {
	alloc := m.s.Allocation()
	sla := m.s.SLA()
	d := o.tb.Ctrl.Wrapped(o.tb.Ctrl.Transport)
	d.Release(m.s.ID(), alloc.PLMN)
	g, cause := d.Reserve(ctrl.Tx{
		Slice:           m.s.ID(),
		PLMN:            alloc.PLMN,
		SLA:             sla,
		DataCenter:      alloc.DataCenter,
		Mbps:            mbps,
		LatencyBudgetMs: o.latencyBudget(sla),
	})
	if cause != nil {
		return false
	}
	g.Apply(&alloc)
	m.s.SetAllocation(alloc)
	m.sh.reconfigurations.Add(1)
	return true
}
