package core

// TestDryRunIsolation pins the dry-run mutation-freedom contract promised in
// dryrun.go: a burst of concurrent probes — feasible and infeasible alike —
// leaves the capacity ledger bit-identical, publishes zero events, and never
// perturbs the outcome of live admissions racing it.

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// dryRunEnv builds a deterministic simulated-clock orchestrator with the
// invariant auditor attached. Time is never advanced, so every event and
// every ledger round trip comes from the calls the test makes.
func dryRunEnv(t *testing.T, seed int64) *Orchestrator {
	t.Helper()
	s := sim.NewSimulator(seed)
	tb, err := testbed.New(testbed.Config{
		ENBs:      4,
		MaxPLMNs:  256,
		CoreHosts: 8,
		EdgeHosts: 4,
	}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           256,
		Shards:              8,
		Audit:               true,
	}, tb, s, monitor.NewStore(256))
}

// dryRunProbes is the probe mix: admissible requests, a radio-capacity
// reject, and an unplaceable latency bound — every dry-run exit path.
func dryRunProbes(i int) slice.Request {
	switch i % 3 {
	case 0:
		return slice.Request{Tenant: fmt.Sprintf("probe-%d", i), SLA: slice.SLA{
			ThroughputMbps: 5, MaxLatencyMs: 50, Duration: time.Hour, PriceEUR: 20, PenaltyEUR: 1,
		}}
	case 1:
		return slice.Request{Tenant: fmt.Sprintf("probe-%d", i), SLA: slice.SLA{
			ThroughputMbps: 1e7, MaxLatencyMs: 50, Duration: time.Hour, PriceEUR: 1e6, PenaltyEUR: 1,
		}}
	default:
		return slice.Request{Tenant: fmt.Sprintf("probe-%d", i), SLA: slice.SLA{
			ThroughputMbps: 5, MaxLatencyMs: 1e-9, Duration: time.Hour, PriceEUR: 20, PenaltyEUR: 1,
		}}
	}
}

// dryRunBurst fires workers×perWorker probes concurrently and fails the
// test on transport-level errors (rejections are reports, not errors).
func dryRunBurst(t *testing.T, o *Orchestrator, workers, perWorker int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := o.DryRun(dryRunProbes(w*perWorker + i)); err != nil {
					t.Errorf("dry-run: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// liveWorkload submits a deterministic sequence of admissions and teardowns
// from the calling goroutine. With a simulated clock that never advances,
// its effect on the ledger is a fixed sequence of reserve/release round
// trips — any concurrent mutation would shift the final float bits.
func liveWorkload(t *testing.T, o *Orchestrator, n int) {
	t.Helper()
	var ids []slice.ID
	for i := 0; i < n; i++ {
		sl, err := o.Submit(slice.Request{Tenant: fmt.Sprintf("live-%d", i), SLA: slice.SLA{
			ThroughputMbps: 3, MaxLatencyMs: 40, Duration: time.Hour, PriceEUR: 15, PenaltyEUR: 1,
		}}, nil)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if sl.State() != slice.StateRejected {
			ids = append(ids, sl.ID())
		}
		// Tear down every third admission so releases interleave with
		// reservations (float addition is order-sensitive).
		if i%3 == 2 && len(ids) > 0 {
			if err := o.Delete(ids[0]); err != nil {
				t.Fatalf("teardown: %v", err)
			}
			ids = ids[1:]
		}
	}
}

func TestDryRunIsolation(t *testing.T) {
	// Phase 1: dry-runs against a quiescent orchestrator with live state.
	// Ledger bits, event sequence, and the audit verdict must not move.
	o := dryRunEnv(t, 42)
	liveWorkload(t, o, 30)
	o.AuditSweep()
	if v := o.Auditor().Violations(); len(v) != 0 {
		t.Fatalf("baseline not invariant-clean: %+v", v[0])
	}
	bits := math.Float64bits(o.ledger.Load())
	seq := o.Events().LastSeq()
	digest := o.StateDigest()

	dryRunBurst(t, o, 8, 50)

	if got := math.Float64bits(o.ledger.Load()); got != bits {
		t.Errorf("dry-run burst moved the ledger: %016x -> %016x", bits, got)
	}
	if got := o.Events().LastSeq(); got != seq {
		t.Errorf("dry-run burst published events: seq %d -> %d", seq, got)
	}
	if got := o.StateDigest(); string(got) != string(digest) {
		t.Errorf("dry-run burst changed the state digest:\nbefore: %s\nafter:  %s", digest, got)
	}
	o.AuditSweep()
	if v := o.Auditor().Violations(); len(v) != 0 {
		t.Errorf("audit after dry-run burst: %+v", v[0])
	}

	// Phase 2: the same deterministic live workload twice — once alone,
	// once racing a dry-run burst. The dry-runs must not shift a single
	// bit of the outcome.
	control := dryRunEnv(t, 7)
	liveWorkload(t, control, 60)

	racing := dryRunEnv(t, 7)
	done := make(chan struct{})
	go func() {
		defer close(done)
		dryRunBurst(t, racing, 8, 100)
	}()
	liveWorkload(t, racing, 60)
	<-done

	cb, rb := math.Float64bits(control.ledger.Load()), math.Float64bits(racing.ledger.Load())
	if cb != rb {
		t.Errorf("dry-runs perturbed racing admissions: ledger %016x vs %016x", cb, rb)
	}
	if cs, rs := control.Events().LastSeq(), racing.Events().LastSeq(); cs != rs {
		t.Errorf("dry-runs perturbed the event sequence: %d vs %d", cs, rs)
	}
	if cd, rd := control.StateDigest(), racing.StateDigest(); string(cd) != string(rd) {
		t.Errorf("dry-runs perturbed the state digest:\ncontrol: %s\nracing:  %s", cd, rd)
	}
	racing.AuditSweep()
	if v := racing.Auditor().Violations(); len(v) != 0 {
		t.Errorf("audit after racing burst: %+v", v[0])
	}
}
