package core

import (
	"context"
	"fmt"

	"repro/internal/slice"
	"repro/internal/traffic"
)

// Batch admission: when several slice requests are pending at once (the
// broker setting of reference [3]), admitting them first-come-first-served
// can strand capacity on low-value slices. SubmitBatch decides the whole
// batch jointly under the configured policy before installing winners in
// arrival order.

// BatchPolicy selects how a pending batch is decided.
type BatchPolicy int

// Batch admission policies.
const (
	// BatchFCFS admits in arrival order while estimates fit — what the
	// online Submit path does implicitly.
	BatchFCFS BatchPolicy = iota
	// BatchDensity admits in descending revenue-per-Mbps order.
	BatchDensity
	// BatchOptimal solves the 0/1 knapsack exactly (revenue maximization
	// over the batch, the [3] broker objective).
	BatchOptimal
)

// String returns the policy name.
func (p BatchPolicy) String() string {
	switch p {
	case BatchFCFS:
		return "fcfs"
	case BatchDensity:
		return "density"
	case BatchOptimal:
		return "knapsack-optimal"
	default:
		return fmt.Sprintf("BatchPolicy(%d)", int(p))
	}
}

// BatchItem pairs a request with its (optional) simulated demand process.
type BatchItem struct {
	Request slice.Request
	Demand  traffic.Demand
}

// SubmitBatch decides the batch jointly under the policy and submits the
// chosen requests through the normal installation path; the others are
// registered as rejected with a batch-policy reason. Returned slices are
// positionally aligned with items. Safe for concurrent use; the budget is
// read from the capacity ledger in one atomic step. It is a thin wrapper
// over SubmitBatchCtx with a background context.
func (o *Orchestrator) SubmitBatch(items []BatchItem, policy BatchPolicy) ([]*slice.Slice, error) {
	return o.SubmitBatchCtx(context.Background(), items, policy)
}

// SubmitBatchCtx is SubmitBatch with caller-controlled cancellation: an
// already-cancelled context fails fast before any admission work. The batch
// decision and installs then run to completion — a batch is decided jointly,
// so it is never abandoned halfway by a racing cancel.
func (o *Orchestrator) SubmitBatchCtx(ctx context.Context, items []BatchItem, policy BatchPolicy) ([]*slice.Slice, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Budget: remaining estimated radio capacity.
	budget := o.tb.RadioCapacityMbps()*o.cfg.UtilizationCap - o.ledger.Load()
	if budget < 0 {
		budget = 0
	}

	reqs := make([]KnapsackRequest, len(items))
	for i, it := range items {
		if err := it.Request.Validate(); err != nil {
			return nil, fmt.Errorf("core: batch item %d: %w", i, err)
		}
		reqs[i] = KnapsackRequest{Req: it.Request, LoadMbps: o.admissionEstimate(it.Request.SLA)}
	}

	var chosen []int
	switch policy {
	case BatchDensity:
		chosen, _ = DensityOrderedSubset(reqs, budget)
	case BatchOptimal:
		chosen, _ = MaxRevenueSubset(reqs, budget)
	default:
		chosen, _ = GreedyRevenueSubset(reqs, budget)
	}
	take := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		take[i] = true
	}

	out := make([]*slice.Slice, len(items))
	for i, it := range items {
		if take[i] {
			// Deliberately not threading ctx further: the batch was decided
			// jointly, so once committed it installs to completion — a cancel
			// racing the loop must not strand half the winners installed with
			// the caller never receiving their handles.
			sl, err := o.Submit(it.Request, it.Demand)
			if err != nil {
				return nil, err
			}
			out[i] = sl
			continue
		}
		// Register the loser as a rejected slice so the dashboard shows it.
		id := slice.ID(fmt.Sprintf("s-%d", o.seq.Add(1)))
		sl, err := slice.New(id, it.Request)
		if err != nil {
			return nil, err
		}
		subEv := o.publish(EventSubmitted, sl, "")
		sh := o.shardFor(id)
		sh.mu.Lock()
		evicted := o.rejectLocked(sh, sl, slice.Rejectf(slice.RejectRevenuePolicy, "",
			"revenue policy: not selected by %s batch admission", policy), subEv, 0)
		sh.mu.Unlock()
		o.dropFinished(evicted)
		o.commitPersist()
		out[i] = sl
	}
	return out, nil
}
