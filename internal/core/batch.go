package core

import (
	"context"
	"fmt"

	"repro/internal/slice"
	"repro/internal/traffic"
)

// Batch admission: when several slice requests are pending at once (the
// broker setting of reference [3]), admitting them first-come-first-served
// can strand capacity on low-value slices. SubmitBatch decides the whole
// batch jointly under the configured policy before installing winners in
// arrival order.

// BatchPolicy selects how a pending batch is decided.
type BatchPolicy int

// Batch admission policies.
const (
	// BatchFCFS admits in arrival order while estimates fit — what the
	// online Submit path does implicitly.
	BatchFCFS BatchPolicy = iota
	// BatchDensity admits in descending revenue-per-Mbps order.
	BatchDensity
	// BatchOptimal solves the 0/1 knapsack exactly (revenue maximization
	// over the batch, the [3] broker objective).
	BatchOptimal
)

// String returns the policy name.
func (p BatchPolicy) String() string {
	switch p {
	case BatchFCFS:
		return "fcfs"
	case BatchDensity:
		return "density"
	case BatchOptimal:
		return "knapsack-optimal"
	default:
		return fmt.Sprintf("BatchPolicy(%d)", int(p))
	}
}

// BatchItem pairs a request with its (optional) simulated demand process.
type BatchItem struct {
	Request slice.Request
	Demand  traffic.Demand
}

// SubmitBatch decides the batch jointly under the policy and submits the
// chosen requests through the normal installation path; the others are
// registered as rejected with a batch-policy reason. Returned slices are
// positionally aligned with items. Safe for concurrent use; the budget is
// read from the capacity ledger in one atomic step, and the whole batch is
// made durable with a single WAL fsync at the batch edge instead of one per
// item. It is a thin wrapper over SubmitBatchCtx with a background context.
func (o *Orchestrator) SubmitBatch(items []BatchItem, policy BatchPolicy) ([]*slice.Slice, error) {
	return o.SubmitBatchCtx(context.Background(), items, policy)
}

// SubmitBatchCtx is SubmitBatch with caller-controlled cancellation: an
// already-cancelled context fails fast before any admission work. The batch
// decision and installs then run to completion — a batch is decided jointly,
// so it is never abandoned halfway by a racing cancel.
func (o *Orchestrator) SubmitBatchCtx(ctx context.Context, items []BatchItem, policy BatchPolicy) ([]*slice.Slice, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Budget: remaining estimated radio capacity — one ledger read and one
	// (cached) capacity read decide the whole batch's feasibility sweep.
	budget := o.radioCapacityMbps()*o.cfg.UtilizationCap - o.ledger.Load()
	if budget < 0 {
		budget = 0
	}

	reqs := make([]KnapsackRequest, len(items))
	for i, it := range items {
		if err := it.Request.Validate(); err != nil {
			return nil, fmt.Errorf("core: batch item %d: %w", i, err)
		}
		reqs[i] = KnapsackRequest{Req: it.Request, LoadMbps: o.admissionEstimate(it.Request.SLA)}
	}

	var chosen []int
	switch policy {
	case BatchDensity:
		chosen, _ = DensityOrderedSubset(reqs, budget)
	case BatchOptimal:
		chosen, _ = MaxRevenueSubset(reqs, budget)
	default:
		chosen, _ = GreedyRevenueSubset(reqs, budget)
	}
	take := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		take[i] = true
	}

	// Apply the decision in strict submission order. WAL records buffer as
	// each item lands and a single commitPersist at the end makes the whole
	// batch durable with one fsync — per-item streams and states are
	// unchanged, only the durability boundary moves to the batch edge.
	//
	// Consecutive losers on the same shard keep that shard's lock across
	// items (curSh); the lock is dropped before any winner installs (the
	// install path takes shard locks itself) and before the deferred fsync.
	var (
		curSh   *shard
		evicted []slice.ID
	)
	flush := func() {
		if curSh != nil {
			curSh.mu.Unlock()
			curSh = nil
		}
		if len(evicted) > 0 {
			o.dropFinished(evicted)
			evicted = evicted[:0]
		}
	}
	defer func() {
		flush()
		o.commitPersist()
	}()

	out := make([]*slice.Slice, len(items))
	for i, it := range items {
		if take[i] {
			flush()
			// Deliberately not threading ctx further: the batch was decided
			// jointly, so once committed it installs to completion — a cancel
			// racing the loop must not strand half the winners installed with
			// the caller never receiving their handles. syncPersist is off:
			// the batch-edge fsync covers the winner's records.
			sl, err := o.submitCtx(context.Background(), it.Request, it.Demand, false)
			if err != nil {
				return nil, err
			}
			out[i] = sl
			continue
		}
		// Register the loser as a rejected slice so the dashboard shows it.
		id := o.nextID()
		sl, err := slice.New(id, it.Request)
		if err != nil {
			return nil, err
		}
		subEv := o.publish(EventSubmitted, sl, "")
		if sh := o.shardFor(id); sh != curSh {
			flush()
			sh.mu.Lock()
			curSh = sh
		}
		evicted = append(evicted, o.rejectLocked(curSh, sl, slice.Rejectf(slice.RejectRevenuePolicy, "",
			"revenue policy: not selected by %s batch admission", policy), subEv, 0)...)
		out[i] = sl
	}
	return out, nil
}
