package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/slice"
)

func kreq(mbps, price float64) KnapsackRequest {
	return KnapsackRequest{
		Req: slice.Request{
			Tenant: "t",
			SLA: slice.SLA{
				ThroughputMbps: mbps, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: price,
			},
		},
		LoadMbps: mbps,
	}
}

func TestKnapsackPicksOptimal(t *testing.T) {
	reqs := []KnapsackRequest{
		kreq(60, 60), // density 1.0
		kreq(50, 80), // density 1.6
		kreq(50, 75), // density 1.5
		kreq(10, 30), // density 3.0
	}
	// Capacity 110: optimal = {50/80, 50/75, 10/30} = 185.
	chosen, rev := MaxRevenueSubset(reqs, 110)
	if rev != 185 {
		t.Fatalf("optimal revenue %.1f, want 185 (chosen %v)", rev, chosen)
	}
	if len(chosen) != 3 {
		t.Fatalf("chosen %v", chosen)
	}
	// Greedy by arrival admits 60/60 then 50/80 = 140 and is stuck.
	_, greedy := GreedyRevenueSubset(reqs, 110)
	if greedy != 140 {
		t.Fatalf("greedy revenue %.1f, want 140", greedy)
	}
	// Density-ordered gets 30+80+75 = 185 here.
	_, dens := DensityOrderedSubset(reqs, 110)
	if dens != 185 {
		t.Fatalf("density revenue %.1f", dens)
	}
}

func TestKnapsackEdgeCases(t *testing.T) {
	if c, r := MaxRevenueSubset(nil, 100); c != nil || r != 0 {
		t.Fatal("empty request set")
	}
	if c, r := MaxRevenueSubset([]KnapsackRequest{kreq(10, 5)}, 0); c != nil || r != 0 {
		t.Fatal("zero capacity")
	}
	// Single request exactly at capacity.
	c, r := MaxRevenueSubset([]KnapsackRequest{kreq(100, 7)}, 100)
	if len(c) != 1 || r != 7 {
		t.Fatalf("exact fit: %v %.1f", c, r)
	}
	// Request bigger than capacity.
	c, r = MaxRevenueSubset([]KnapsackRequest{kreq(200, 7)}, 100)
	if len(c) != 0 || r != 0 {
		t.Fatalf("oversize: %v %.1f", c, r)
	}
}

func TestChosenIndicesAscendingAndFeasible(t *testing.T) {
	reqs := []KnapsackRequest{kreq(30, 10), kreq(30, 20), kreq(30, 30), kreq(30, 40)}
	chosen, _ := MaxRevenueSubset(reqs, 90)
	if len(chosen) != 3 {
		t.Fatalf("chosen %v", chosen)
	}
	load := 0.0
	for i := 1; i < len(chosen); i++ {
		if chosen[i] <= chosen[i-1] {
			t.Fatalf("indices not ascending: %v", chosen)
		}
	}
	for _, i := range chosen {
		load += reqs[i].LoadMbps
	}
	if load > 90 {
		t.Fatalf("infeasible load %.1f", load)
	}
}

// bruteForce enumerates all subsets (for small n) to verify optimality.
func bruteForce(reqs []KnapsackRequest, capacity float64) float64 {
	best := 0.0
	n := len(reqs)
	for mask := 0; mask < 1<<n; mask++ {
		load, rev := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				load += math.Ceil(reqs[i].LoadMbps)
				rev += reqs[i].Req.SLA.PriceEUR
			}
		}
		if load <= capacity && rev > best {
			best = rev
		}
	}
	return best
}

// Property: the DP matches brute force, and greedy/density never beat it.
func TestPropertyKnapsackOptimality(t *testing.T) {
	f := func(sizes [6]uint8, prices [6]uint8, capRaw uint8) bool {
		capacity := float64(capRaw%120) + 1
		var reqs []KnapsackRequest
		for i := 0; i < 6; i++ {
			mbps := float64(sizes[i]%40) + 1
			price := float64(prices[i] % 100)
			reqs = append(reqs, kreq(mbps, price))
		}
		_, opt := MaxRevenueSubset(reqs, capacity)
		want := bruteForce(reqs, math.Floor(capacity))
		if math.Abs(opt-want) > 1e-9 {
			return false
		}
		_, g := GreedyRevenueSubset(reqs, capacity)
		_, d := DensityOrderedSubset(reqs, capacity)
		return g <= opt+1e-9 && d <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReasonClass(t *testing.T) {
	cases := map[string]string{
		"PLMN broadcast list full":         "plmn-exhausted",
		"radio capacity: estimated load":   "radio-capacity",
		"latency: best path":               "latency-unmeetable",
		"cloud compute: edge cannot fit":   "cloud-capacity",
		"transport to core: no path":       "transport-capacity",
		"revenue density 0.1 below policy": "revenue-policy",
		"mystery":                          "other",
	}
	for reason, want := range cases {
		if got := reasonClass(reason); got != want {
			t.Fatalf("reasonClass(%q) = %q, want %q", reason, got, want)
		}
	}
}
