package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

func kreq(mbps, price float64) KnapsackRequest {
	return KnapsackRequest{
		Req: slice.Request{
			Tenant: "t",
			SLA: slice.SLA{
				ThroughputMbps: mbps, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: price,
			},
		},
		LoadMbps: mbps,
	}
}

func TestKnapsackPicksOptimal(t *testing.T) {
	reqs := []KnapsackRequest{
		kreq(60, 60), // density 1.0
		kreq(50, 80), // density 1.6
		kreq(50, 75), // density 1.5
		kreq(10, 30), // density 3.0
	}
	// Capacity 110: optimal = {50/80, 50/75, 10/30} = 185.
	chosen, rev := MaxRevenueSubset(reqs, 110)
	if rev != 185 {
		t.Fatalf("optimal revenue %.1f, want 185 (chosen %v)", rev, chosen)
	}
	if len(chosen) != 3 {
		t.Fatalf("chosen %v", chosen)
	}
	// Greedy by arrival admits 60/60 then 50/80 = 140 and is stuck.
	_, greedy := GreedyRevenueSubset(reqs, 110)
	if greedy != 140 {
		t.Fatalf("greedy revenue %.1f, want 140", greedy)
	}
	// Density-ordered gets 30+80+75 = 185 here.
	_, dens := DensityOrderedSubset(reqs, 110)
	if dens != 185 {
		t.Fatalf("density revenue %.1f", dens)
	}
}

func TestKnapsackEdgeCases(t *testing.T) {
	if c, r := MaxRevenueSubset(nil, 100); c != nil || r != 0 {
		t.Fatal("empty request set")
	}
	if c, r := MaxRevenueSubset([]KnapsackRequest{kreq(10, 5)}, 0); c != nil || r != 0 {
		t.Fatal("zero capacity")
	}
	// Single request exactly at capacity.
	c, r := MaxRevenueSubset([]KnapsackRequest{kreq(100, 7)}, 100)
	if len(c) != 1 || r != 7 {
		t.Fatalf("exact fit: %v %.1f", c, r)
	}
	// Request bigger than capacity.
	c, r = MaxRevenueSubset([]KnapsackRequest{kreq(200, 7)}, 100)
	if len(c) != 0 || r != 0 {
		t.Fatalf("oversize: %v %.1f", c, r)
	}
}

func TestChosenIndicesAscendingAndFeasible(t *testing.T) {
	reqs := []KnapsackRequest{kreq(30, 10), kreq(30, 20), kreq(30, 30), kreq(30, 40)}
	chosen, _ := MaxRevenueSubset(reqs, 90)
	if len(chosen) != 3 {
		t.Fatalf("chosen %v", chosen)
	}
	load := 0.0
	for i := 1; i < len(chosen); i++ {
		if chosen[i] <= chosen[i-1] {
			t.Fatalf("indices not ascending: %v", chosen)
		}
	}
	for _, i := range chosen {
		load += reqs[i].LoadMbps
	}
	if load > 90 {
		t.Fatalf("infeasible load %.1f", load)
	}
}

// bruteForce enumerates all subsets (for small n) to verify optimality.
func bruteForce(reqs []KnapsackRequest, capacity float64) float64 {
	best := 0.0
	n := len(reqs)
	for mask := 0; mask < 1<<n; mask++ {
		load, rev := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				load += math.Ceil(reqs[i].LoadMbps)
				rev += reqs[i].Req.SLA.PriceEUR
			}
		}
		if load <= capacity && rev > best {
			best = rev
		}
	}
	return best
}

// Property: the DP matches brute force, and greedy/density never beat it.
func TestPropertyKnapsackOptimality(t *testing.T) {
	f := func(sizes [6]uint8, prices [6]uint8, capRaw uint8) bool {
		capacity := float64(capRaw%120) + 1
		var reqs []KnapsackRequest
		for i := 0; i < 6; i++ {
			mbps := float64(sizes[i]%40) + 1
			price := float64(prices[i] % 100)
			reqs = append(reqs, kreq(mbps, price))
		}
		_, opt := MaxRevenueSubset(reqs, capacity)
		want := bruteForce(reqs, math.Floor(capacity))
		if math.Abs(opt-want) > 1e-9 {
			return false
		}
		_, g := GreedyRevenueSubset(reqs, capacity)
		_, d := DensityOrderedSubset(reqs, capacity)
		return g <= opt+1e-9 && d <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestRejectionCauseTaxonomy drives real rejections end-to-end and checks
// that each surfaces its stable typed code (the histogram bucket) and is
// errors.Is-compatible against the RejectCode sentinels.
func TestRejectionCauseTaxonomy(t *testing.T) {
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{MinRevenueDensity: 1000}, tb, s, monitor.NewStore(64))

	// Revenue policy.
	sl, err := o.Submit(req("cheap", 20, 50, time.Hour, 0.01), nil)
	if err != nil {
		t.Fatal(err)
	}
	cause, ok := sl.Cause()
	if !ok || cause.Code != slice.RejectRevenuePolicy {
		t.Fatalf("cause %+v, ok %v", cause, ok)
	}
	if !errors.Is(&cause, slice.RejectRevenuePolicy) {
		t.Fatalf("errors.Is(%v, RejectRevenuePolicy) = false", cause)
	}
	if errors.Is(&cause, slice.RejectRadioCapacity) {
		t.Fatalf("cause %v matched the wrong code", cause)
	}
	if sl.Snapshot().RejectCode != slice.RejectRevenuePolicy {
		t.Fatalf("snapshot code %q", sl.Snapshot().RejectCode)
	}

	// Latency unmeetable.
	o2 := New(Config{}, tb, s, monitor.NewStore(64))
	sl2, err := o2.Submit(req("urllc", 20, 0.01, time.Hour, 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := sl2.Cause(); c.Code != slice.RejectLatencyUnmeetable {
		t.Fatalf("latency cause %+v", c)
	}
	if g := o2.Gain(); g.RejectReasons[string(slice.RejectLatencyUnmeetable)] != 1 {
		t.Fatalf("histogram %v not keyed on typed codes", g.RejectReasons)
	}
}
