// Package core implements the paper's primary contribution: the end-to-end
// network slicing orchestrator that (i) admits heterogeneous slice requests
// under a revenue-maximization strategy, (ii) allocates resources across the
// radio, transport and cloud domains, and (iii) monitors, forecasts and
// dynamically reconfigures — overbooks — running slices to maximize
// statistical multiplexing (Sections 1–3 of the paper).
//
// The orchestrator is clock-driven (see internal/sim): Submit performs
// admission and reserves resources synchronously, then installation
// latencies (radio config, path setup, Heat stack, vEPC boot) elapse on the
// clock before the slice turns Active. A periodic control epoch measures
// demand, feeds the forecasters, charges SLA violations and resizes
// reservations.
//
// All multi-domain resource work — install, admission feasibility, resize,
// teardown, restoration — runs through the generic two-phase transaction
// engine (engine.go) over the uniform ctrl.Domain surface, with automatic
// reverse-order rollback; rejections carry typed slice.RejectionCause
// values end-to-end. The engine has no domain-specific branches, so new
// domains (e.g. the MEC compute domain) register in the testbed only.
//
// # Concurrency
//
// The Orchestrator is safe for concurrent use. Slice state is partitioned
// into Config.Shards independent shards (hash of slice ID), each with its
// own lock, so admissions, installs, teardowns and demand recording for
// slices on different shards proceed in parallel; requests that hash to the
// same shard queue up on its lock in arrival order. The shared radio
// overbooking budget is a capacity ledger with a two-phase reservation
// (reserve at admission, release on failure or teardown), so the admission
// capacity check is one atomic step rather than a registry scan.
//
// Submit, SubmitCtx, SubmitBatch, SubmitBatchCtx, Delete, Get, List,
// ListFiltered, Watch, Timeline, RecordDemand, ActiveCount, Gain, LastEpoch,
// RunEpoch, HandleLinkFailure, HandleLinkDegradation, RestoreLink, Start and
// Stop are all goroutine-safe. Every lifecycle transition is additionally
// published on an ordered event bus (events.go): Watch subscribers observe a
// single global sequence and may resume from any recent sequence number;
// slow subscribers are resynced, never allowed to stall admission.
//
// The read plane never freezes the registry: Gain and ActiveCount are
// served from per-shard atomic counters plus one leaf accumulator (gain.go),
// List/ListFiltered snapshot shard by shard (one shard lock at a time), and
// each control epoch publishes an immutable EpochSnapshot for epoch-aligned
// reads. The control epoch itself is a phase pipeline (epoch.go): a brief
// serial collection pass holds every shard lock in index order, the
// per-slice analysis phase runs one worker per shard holding only its own
// shard lock, and reconfigurations commit in submission order. Epoch,
// squeeze and restoration passes serialize on epochMu; everything else
// holds at most one shard lock, which keeps the locking deadlock-free by
// construction (see DESIGN.md §3.4 and §7).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/forecast"
	"repro/internal/invariant"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Config tunes the orchestrator. Zero values select the defaults noted on
// each field.
type Config struct {
	// Epoch is the monitoring/reconfiguration period (default 1m).
	Epoch time.Duration
	// Overbook enables forecast-based provisioning. When false every
	// slice keeps its full contracted reservation (peak provisioning).
	Overbook bool
	// Risk is the one-sided confidence that an overbooked slice's
	// provisioned capacity covers its demand (default 0.95). Values
	// >= 0.9995 behave like peak provisioning.
	Risk float64
	// AdmissionLoadFactor estimates mean/peak demand of a not-yet-observed
	// slice for the admission capacity check when overbooking (default 0.6).
	AdmissionLoadFactor float64
	// UtilizationCap bounds the estimated radio load admission may reach,
	// as a fraction of capacity (default 0.95).
	UtilizationCap float64
	// MinRevenueDensity rejects requests paying less than this many EUR
	// per Mbps·hour (default 0 — everything that fits is admitted).
	MinRevenueDensity float64
	// PenaltyAware rejects slices whose expected SLA penalties at the
	// configured risk exceed their price — the penalty-conscious variant
	// of the revenue-maximization policy (ablation A4).
	PenaltyAware bool
	// FloorMbps is the minimum per-slice reservation (default 1).
	FloorMbps float64
	// ReconfigThreshold is the hysteresis: reservations are resized only
	// when the target differs from the current allocation by more than
	// this fraction of the contract (default 0.05).
	ReconfigThreshold float64
	// ShareUnusedPRBs lets the cell scheduler lend idle reserved PRBs to
	// saturated slices within an epoch (default false: violations then
	// reflect provisioning decisions alone; ablation A1 quantifies what
	// work-conserving sharing adds on top).
	ShareUnusedPRBs bool
	// NewForecaster builds the per-slice demand forecaster
	// (default EWMA(0.3)).
	NewForecaster func() forecast.Forecaster
	// Installation latencies (defaults: radio 500ms, paths 200ms,
	// stack 2s; vEPC boot time comes from epc.BootDelayFor).
	RadioConfigDelay time.Duration
	PathSetupDelay   time.Duration
	StackCreateDelay time.Duration
	// PLMNLimit bounds simultaneously installed slices (default 6, the
	// MOCN SIB1 limit). Experiments that stress admission raise it.
	PLMNLimit int
	// HistoryLimit bounds how many finished (terminated/rejected) slices
	// are retained for the dashboard; the oldest beyond the limit are
	// pruned so a long-running daemon stays flat (default 512).
	HistoryLimit int
	// Shards is the number of independent admission shards the slice
	// registry is partitioned into (rounded up to a power of two,
	// default 8). Requests for slices on different shards are admitted,
	// installed and torn down in parallel; a single shard serializes its
	// slices in arrival order. Shard count never changes outcomes — only
	// contention — so deterministic simulations are identical at any
	// setting.
	Shards int
	// EventBuffer bounds the lifecycle event replay ring: Watch subscribers
	// can resume from any sequence still within the last EventBuffer events
	// (default 1024). Older positions resync (see EventResync).
	EventBuffer int
	// Audit attaches the cross-domain invariant auditor
	// (internal/invariant): every epoch barrier and restoration pass runs a
	// full conservation/leak sweep, every install rollback and teardown a
	// scoped leak check, and every published event is validated for
	// sequence gap-freeness and state-machine legality. Auditing observes,
	// it never alters outcomes — a fixed-seed run is identical with it on
	// or off. Read results via Auditor(). Chaos scenarios and CI soak tests
	// enable it; the cost is O(registry) per epoch.
	Audit bool
	// AuditOnViolation, when set with Audit, is called synchronously for
	// every detected violation (tests fail fast through it).
	AuditOnViolation func(invariant.Violation)
	// Persist, when set, write-ahead logs every state transition to the
	// sink before the operation's durability boundary (commit = fsync) and
	// checkpoints full state every SnapshotEvery epochs, enabling
	// deterministic crash recovery via Recover (DESIGN.md §9). Leave nil to
	// run without durability.
	Persist Sink
	// SnapshotEvery is the checkpoint cadence in control epochs
	// (default 16). Only meaningful with Persist set.
	SnapshotEvery int
	// CommitMaxDelay bounds the group-commit grouping window: a commit
	// leader that observes other writers in flight may wait up to this long
	// for them to join its fsync before flushing (default 0 — natural
	// batching only: the leader flushes immediately and concurrent arrivals
	// form the next group while the fsync runs). A lone writer never waits,
	// so single-threaded latency is unchanged. Only meaningful with Persist.
	CommitMaxDelay time.Duration
	// CommitMaxBatch caps how many operations a commit leader waits to
	// accumulate inside the CommitMaxDelay window before fsyncing
	// (default 64). Natural batching is not capped — one fsync always
	// covers every record appended before it, regardless of this knob.
	CommitMaxBatch int
	// CommitPerOp disables group commit: every operation fsyncs its own
	// records under the persistence mutex, serializing all durable
	// operations — the PR 6 behaviour, kept as the measurable baseline for
	// BenchmarkDurableAdmission and for sinks that must observe every
	// operation boundary individually.
	CommitPerOp bool
}

func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = time.Minute
	}
	if c.Risk <= 0 {
		c.Risk = 0.95
	}
	if c.AdmissionLoadFactor <= 0 {
		c.AdmissionLoadFactor = 0.6
	}
	if c.UtilizationCap <= 0 {
		c.UtilizationCap = 0.95
	}
	if c.FloorMbps <= 0 {
		c.FloorMbps = 1
	}
	if c.ReconfigThreshold <= 0 {
		c.ReconfigThreshold = 0.05
	}
	if c.NewForecaster == nil {
		c.NewForecaster = func() forecast.Forecaster { return forecast.NewEWMA(0.3) }
	}
	if c.RadioConfigDelay <= 0 {
		c.RadioConfigDelay = 500 * time.Millisecond
	}
	if c.PathSetupDelay <= 0 {
		c.PathSetupDelay = 200 * time.Millisecond
	}
	if c.StackCreateDelay <= 0 {
		c.StackCreateDelay = 2 * time.Second
	}
	if c.PLMNLimit <= 0 {
		c.PLMNLimit = slice.DefaultPLMNLimit
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 512
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	c.Shards = ceilPow2(c.Shards)
	if c.EventBuffer <= 0 {
		c.EventBuffer = 1024
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 16
	}
	if c.CommitMaxBatch <= 0 {
		c.CommitMaxBatch = 64
	}
	return c
}

// ceilPow2 rounds n up to the next power of two (capped at 1<<16).
func ceilPow2(n int) int {
	p := 1
	for p < n && p < 1<<16 {
		p <<= 1
	}
	return p
}

// effectiveRisk returns the provisioning risk honouring the master switch.
func (c Config) effectiveRisk() float64 {
	if !c.Overbook {
		return 1.0
	}
	return c.Risk
}

// managedSlice is the orchestrator's bookkeeping for one slice. All fields
// are guarded by the owning shard's mutex.
type managedSlice struct {
	s    *slice.Slice
	sh   *shard
	prov *forecast.Provisioner
	// demand is the simulated offered-load process (nil in live mode,
	// where demand arrives via RecordDemand).
	demand traffic.Demand
	// lastDemand is the most recent demand sample in Mbps.
	lastDemand float64
	haveDemand bool
	// ledgerMbps is this slice's entry in the shared capacity ledger.
	ledgerMbps float64
	// provCapMbps, when > 0, caps the epoch loop's provisioning target for
	// this slice — the intent plane's canary-rollout knob (SetProvisionCap):
	// without it any rollout resize would be undone by the next control
	// epoch's forecast-driven reconfiguration. Read and written under the
	// shard lock. Volatile: not persisted (replay imposes logged epoch
	// outcomes, so recovery digests are unaffected); the intent plane
	// re-establishes caps after a restart.
	provCapMbps float64
	// activateAt is the scheduled vEPC-boot completion instant (recovery
	// re-arms the activation timer from it).
	activateAt time.Time
	// Cached telemetry series names ("slice/<id>/demand_mbps", ...), built
	// lazily on the slice's first epoch so the monitoring flush does not
	// re-format three names per slice per epoch.
	seriesDemand, seriesServed, seriesAlloc string

	expiry *sim.Event
	timers []*sim.Event // pending installation stage events
}

// Orchestrator is the end-to-end slice orchestrator. It is safe for
// concurrent use; see the package documentation for the sharding model.
type Orchestrator struct {
	cfg     Config
	clock   sim.Scheduler
	tb      *testbed.Testbed
	store   *monitor.Store
	plmns   *slice.PLMNAllocator
	domains txEngine

	shards    []*shard
	shardMask uint32
	ledger    capacityLedger
	history   finishedHistory
	bus       *EventBus

	// feas holds the per-domain feasibility memos (feascache.go); radioHead
	// caches the per-cell radio headroom summary the fast-reject path probes
	// (fastpath.go). Both are exact version-keyed caches.
	feas      []feasMemo
	radioHead atomic.Pointer[radioHeadroom]

	// audit is the invariant auditor (nil unless Config.Audit); pendingTx
	// tracks slice IDs whose install transaction is in flight so the sweep
	// never mistakes the squeeze window's unregistered grants for leaks
	// (audit.go).
	audit     *invariant.Auditor
	pendingTx sync.Map // slice.ID -> struct{}

	// acc holds the order-sensitive float aggregates of the gain report;
	// lastEpoch is the snapshot the telemetry barrier (phase P4) publishes
	// each epoch (gain.go).
	acc       *gainAccumulator
	lastEpoch atomic.Pointer[EpochSnapshot]

	// epochMu serializes the whole-registry passes — the control epoch's
	// phase pipeline, the squeeze, link restoration — against each other,
	// so no two of them interleave their multi-phase work. It is always
	// acquired before any shard lock (never while holding one).
	epochMu sync.Mutex

	seq    atomic.Int64 // slice ID sequence
	epochs atomic.Int64 // control-loop passes

	// Durability plane (persist.go): persistMu is a leaf mutex guarding the
	// WAL sequence counter, the latched error and the closed flag, so
	// records can be appended from under shard locks and epochMu. The sink
	// pointer itself is immutable once operations run (set by New or
	// AttachSink before anything concurrent starts) — the unguarded
	// `o.persist != nil` fast paths rely on that; detachment is the guarded
	// persistClosed flag, not a pointer write.
	persist       Sink
	persistMu     sync.Mutex
	walSeq        uint64
	persistErr    error
	persistClosed bool
	recovery      *RecoveryReport
	// commit is the group-commit state machine (persist.go): operations
	// reaching their durability boundary elect one leader to fsync for the
	// whole group instead of fsyncing individually. Its mutex is ordered
	// after persistMu (commitPersist takes persistMu first, then commit.mu;
	// never the reverse while holding commit.mu).
	commit commitGroup

	loopMu sync.Mutex
	loop   *sim.Event
}

// New returns an orchestrator over the testbed using the given clock.
func New(cfg Config, tb *testbed.Testbed, clock sim.Scheduler, store *monitor.Store) *Orchestrator {
	cfg = cfg.withDefaults()
	if store == nil {
		store = monitor.NewStore(4096)
	}
	o := &Orchestrator{
		cfg:       cfg,
		clock:     clock,
		tb:        tb,
		store:     store,
		plmns:     slice.NewPLMNAllocator("001", cfg.PLMNLimit),
		domains:   newTxEngine(tb.Ctrl),
		shards:    make([]*shard, cfg.Shards),
		shardMask: uint32(cfg.Shards - 1),
		history:   finishedHistory{limit: cfg.HistoryLimit},
		bus:       NewEventBus(cfg.EventBuffer),
		acc:       newGainAccumulator(),
		persist:   cfg.Persist,
	}
	o.commit.cond.L = &o.commit.mu
	for i := range o.shards {
		o.shards[i] = newShard()
	}
	o.feas = newFeasTable(o.domains)
	if cfg.Audit {
		o.audit = invariant.New(invariant.Options{OnViolation: cfg.AuditOnViolation})
		o.bus.SetTap(o.auditObserveEvent)
	}
	return o
}

// Config returns the effective configuration.
func (o *Orchestrator) Config() Config { return o.cfg }

// Store returns the monitoring store (read by the REST API and dashboard).
func (o *Orchestrator) Store() *monitor.Store { return o.store }

// Testbed returns the managed testbed.
func (o *Orchestrator) Testbed() *testbed.Testbed { return o.tb }

// Start schedules the periodic control loop on the clock.
func (o *Orchestrator) Start() {
	o.loopMu.Lock()
	defer o.loopMu.Unlock()
	if o.loop != nil {
		return
	}
	o.loop = o.clock.Every(o.cfg.Epoch, "orchestrator/epoch", o.RunEpoch)
}

// Stop cancels the control loop.
func (o *Orchestrator) Stop() {
	o.loopMu.Lock()
	defer o.loopMu.Unlock()
	if o.loop != nil {
		o.loop.Cancel()
		o.loop = nil
	}
}

// InstallTimeline records the per-stage installation instants of one slice
// — the Fig. 2 workflow (PRB reserve → path setup → Heat stack → vEPC boot
// → UEs may attach).
type InstallTimeline struct {
	Submitted time.Time `json:"submitted"`
	RadioDone time.Time `json:"radio_done"`
	PathsDone time.Time `json:"paths_done"`
	StackDone time.Time `json:"stack_done"`
	Active    time.Time `json:"active"`
}

// Total returns submission-to-active duration.
func (tl InstallTimeline) Total() time.Duration { return tl.Active.Sub(tl.Submitted) }

// Timeline returns the installation timeline of a slice, if recorded.
func (o *Orchestrator) Timeline(id slice.ID) (InstallTimeline, bool) {
	sh := o.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tl, ok := sh.timelines[id]
	if !ok {
		return InstallTimeline{}, false
	}
	return *tl, true
}

// errReject carries a typed admission rejection cause through the install
// path (not an error to callers: rejection is a normal outcome shown on the
// dashboard). It unwraps to the cause, so errors.Is against RejectCode
// sentinels works on the whole chain.
type errReject struct{ cause *slice.RejectionCause }

func (e errReject) Error() string { return e.cause.Detail }
func (e errReject) Unwrap() error { return e.cause }

// Submit runs admission control and, when accepted, reserves resources in
// all three domains and schedules the installation stages. The returned
// slice is in StateInstalling or StateRejected; rejection is not an error.
// The optional demand process makes the simulation feed the slice's
// offered load every epoch (live deployments call RecordDemand instead).
//
// Submit is safe for concurrent use: requests serialize per shard, so
// independent tenants are admitted and installed in parallel. It is a thin
// wrapper over SubmitCtx with a background context.
func (o *Orchestrator) Submit(req slice.Request, demand traffic.Demand) (*slice.Slice, error) {
	return o.SubmitCtx(context.Background(), req, demand)
}

// SubmitCtx is Submit with caller-controlled cancellation: a context that is
// already cancelled (or past its deadline) fails fast with ctx.Err() before
// any admission work. Once admission starts the multi-domain transaction
// runs to completion — reservations are atomic (fully installed or fully
// rolled back), never torn down halfway by a racing cancel.
//
// Each submission publishes its lifecycle on the event bus: EventSubmitted,
// then EventAdmitted or EventRejected, later EventInstalled when the
// installation stages complete (see Watch).
func (o *Orchestrator) SubmitCtx(ctx context.Context, req slice.Request, demand traffic.Demand) (*slice.Slice, error) {
	return o.submitCtx(ctx, req, demand, true)
}

// submitCtx is the shared submission body. syncPersist selects the
// durability boundary: the online path commits (fsyncs) the WAL records it
// appended before returning; the batch path passes false and commits once
// for the whole batch — same record stream, one fsync instead of one per
// item.
func (o *Orchestrator) submitCtx(ctx context.Context, req slice.Request, demand traffic.Demand, syncPersist bool) (*slice.Slice, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Arrival.IsZero() {
		req.Arrival = o.clock.Now()
	}
	id := o.nextID()
	s, err := slice.New(id, req)
	if err != nil {
		return nil, err
	}
	// Mark the install transaction in flight for the invariant auditor: the
	// engine may release the shard lock around the squeeze while holding
	// grants that are registered nowhere yet.
	auditDone := o.auditPendingBegin(id)
	defer auditDone()
	subEv := o.publish(EventSubmitted, s, "")
	sh := o.shardFor(id)
	sh.mu.Lock()

	// Phase one: admission checks plus the atomic capacity-ledger
	// reservation for the newcomer's estimated radio load.
	cause, reserved, dcName := o.admit(req)
	if cause != nil {
		// On rejection, reserved is the amount admit reserved-then-released
		// on the ledger (non-zero only when the radio check passed but a
		// later domain failed); the reject record mirrors that round trip.
		evicted := o.rejectLocked(sh, s, cause, subEv, reserved)
		sh.mu.Unlock()
		o.dropFinished(evicted)
		if syncPersist {
			o.commitPersist()
		}
		return s, nil
	}

	// Phase two: the multi-domain transaction; any failure releases the
	// ledger reservation and converts to a typed rejection.
	if err := o.install(sh, s, demand, reserved, dcName); err != nil {
		o.ledger.Release(reserved)
		o.auditSliceReleased(id) // rollback must leave nothing behind
		var rej errReject
		if errors.As(err, &rej) {
			evicted := o.rejectLocked(sh, s, rej.cause, subEv, reserved)
			sh.mu.Unlock()
			o.dropFinished(evicted)
			if syncPersist {
				o.commitPersist()
			}
			return s, nil
		}
		sh.mu.Unlock()
		// The squeeze may have appended resize records before the failure;
		// they are real committed outcomes and must become durable.
		if syncPersist {
			o.commitPersist()
		}
		return nil, err
	}
	sh.admitted.Add(1)
	o.acc.admit(req.SLA.PriceEUR, req.SLA.ThroughputMbps, s.AllocatedMbps())
	admitEv := o.publish(EventAdmitted, s, "")
	if o.persist != nil {
		o.appendAdmit(sh.slices[id], reserved, subEv.Time, subEv, admitEv)
	}
	if o.audit != nil {
		o.auditSliceInstalled(sh.slices[id]) // commit must hold what it recorded
	}
	sh.mu.Unlock()
	if syncPersist {
		o.commitPersist()
	}
	return s, nil
}

// nextID burns the next slice ID. The concatenation is byte-identical to the
// fmt.Sprintf("s-%d", ...) it replaced, minus the formatting machinery.
func (o *Orchestrator) nextID() slice.ID {
	return slice.ID("s-" + strconv.FormatInt(o.seq.Add(1), 10))
}

// rejectLocked registers a rejected request in the shard (so the dashboard
// shows it), keys the rejection histogram on the cause's stable typed code
// — never on the free-form detail string, which would give every rejection
// its own bucket — and returns any finished slices evicted from the bounded
// history, which the caller must drop after releasing the shard lock.
// subEv is the submission event (embedded in the WAL record alongside the
// rejection event); mirrorMbps is the ledger reserve the admission path
// released before failing (0 when it never reserved).
func (o *Orchestrator) rejectLocked(sh *shard, s *slice.Slice, cause *slice.RejectionCause, subEv Event, mirrorMbps float64) []slice.ID {
	s.Reject(cause)
	sh.rejected.Add(1)
	o.acc.reject(string(cause.Code))
	sh.slices[s.ID()] = &managedSlice{s: s, sh: sh}
	rejEv := o.publish(EventRejected, s, cause.Detail)
	if o.persist != nil {
		o.appendRecord(recReject, rejectRecord{
			Slice:        s.Persist(),
			ReservedMbps: mirrorMbps,
			Events:       []Event{subEv, rejEv},
		})
	}
	return o.history.Push(s.ID())
}

// Delete tears the slice down ahead of its expiry.
func (o *Orchestrator) Delete(id slice.ID) error {
	sh := o.shardFor(id)
	sh.mu.Lock()
	m, ok := sh.slices[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("core: unknown slice %s", id)
	}
	switch m.s.State() {
	case slice.StateRejected, slice.StateTerminated:
		st := m.s.State()
		sh.mu.Unlock()
		return fmt.Errorf("core: slice %s already %s", id, st)
	}
	evicted := o.teardownLocked(sh, m, "deleted by tenant", EventDeleted)
	o.auditSliceReleased(id)
	sh.mu.Unlock()
	o.dropFinished(evicted)
	o.commitPersist()
	return nil
}

// Get returns the slice by ID.
func (o *Orchestrator) Get(id slice.ID) (*slice.Slice, bool) {
	sh := o.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.slices[id]
	if !ok {
		return nil, false
	}
	return m.s, true
}

// List returns snapshots of every slice, sorted by ID sequence. Snapshots
// are taken shard by shard (see ListFiltered). It is a thin wrapper over
// ListFiltered with zero options.
func (o *Orchestrator) List() []slice.Snapshot {
	page, _ := o.ListFiltered(ListOptions{}) // zero options never error
	return page.Slices
}

// ListOptions filters and paginates ListFiltered. Zero values select
// everything in one page.
type ListOptions struct {
	// State keeps only slices in this lifecycle state (API string form,
	// e.g. "active", "rejected"); "" keeps all.
	State string
	// Tenant keeps only this tenant's slices; "" keeps all.
	Tenant string
	// RejectCode keeps only slices rejected with this taxonomy code; ""
	// keeps all.
	RejectCode slice.RejectCode
	// Limit caps the page size (0 = unlimited).
	Limit int
	// PageToken resumes a paginated listing: pass the previous page's
	// NextPageToken. Tokens are stable across calls (they encode the last
	// returned slice's submission sequence).
	PageToken string
}

// ListPage is one page of filtered slice snapshots.
type ListPage struct {
	Slices []slice.Snapshot `json:"slices"`
	// NextPageToken is set when more matching slices remain; pass it as
	// ListOptions.PageToken to continue.
	NextPageToken string `json:"next_page_token,omitempty"`
}

// ListFiltered returns the snapshots matching opts, sorted by submission
// sequence. Since PR 4 it snapshots shard by shard — one shard lock at a
// time, never the whole registry — so a large list request can no longer
// stall admission on other shards. The page is therefore not a single
// atomic cut across shards: a transition committed on another shard while
// the listing walks may or may not appear. Pagination is keyset-based (the
// token encodes the last seen submission sequence), so pages stay
// consistent under concurrent admissions: a slice admitted behind the
// cursor is simply picked up by a later page, never duplicated.
func (o *Orchestrator) ListFiltered(opts ListOptions) (ListPage, error) {
	after := 0
	if opts.PageToken != "" {
		n, err := strconv.Atoi(opts.PageToken)
		if err != nil || n < 0 {
			return ListPage{}, fmt.Errorf("core: bad page token %q", opts.PageToken)
		}
		after = n
	}
	// Pass one: match on the cheap accessors only, collecting lightweight
	// references — state transitions for a shard's slices need its lock,
	// which we hold while walking it.
	type matchRef struct {
		seq int
		id  slice.ID
		sh  *shard
	}
	var matches []matchRef
	for _, sh := range o.shards {
		sh.mu.Lock()
		for _, m := range sh.slices {
			seq := seqOf(m.s.ID())
			if seq <= after {
				continue
			}
			if opts.Tenant != "" && m.s.Tenant() != opts.Tenant {
				continue
			}
			if opts.State != "" && m.s.State().String() != opts.State {
				continue
			}
			if opts.RejectCode != "" {
				cause, ok := m.s.Cause()
				if !ok || cause.Code != opts.RejectCode {
					continue
				}
			}
			matches = append(matches, matchRef{seq: seq, id: m.s.ID(), sh: sh})
		}
		sh.mu.Unlock()
	}
	// Pass two: order, cut the page, and pay the deep Snapshot clone only
	// for the entries actually returned — a limit-16 request over an
	// 8192-slice registry clones 16 snapshots, not 8192. A slice evicted
	// or transitioned out of the requested filter between the passes is
	// skipped (the page may come back short), never returned with a
	// snapshot contradicting the query.
	sort.Slice(matches, func(i, j int) bool { return matches[i].seq < matches[j].seq })
	page := ListPage{}
	if opts.Limit > 0 && len(matches) > opts.Limit {
		page.NextPageToken = strconv.Itoa(matches[opts.Limit-1].seq)
		matches = matches[:opts.Limit]
	}
	page.Slices = make([]slice.Snapshot, 0, len(matches))
	for _, ref := range matches {
		ref.sh.mu.Lock()
		if m, ok := ref.sh.slices[ref.id]; ok {
			stillMatches := true
			if opts.State != "" && m.s.State().String() != opts.State {
				stillMatches = false
			}
			if stillMatches && opts.RejectCode != "" {
				cause, ok := m.s.Cause()
				stillMatches = ok && cause.Code == opts.RejectCode
			}
			if stillMatches {
				page.Slices = append(page.Slices, m.s.Snapshot())
			}
		}
		ref.sh.mu.Unlock()
	}
	return page, nil
}

func seqOf(id slice.ID) int {
	n := 0
	for i := 2; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n
}

// RecordDemand feeds a live demand measurement for the slice (Mbps). In
// simulations the attached traffic.Demand process supersedes it.
func (o *Orchestrator) RecordDemand(id slice.ID, mbps float64) error {
	sh := o.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.slices[id]
	if !ok {
		return fmt.Errorf("core: unknown slice %s", id)
	}
	m.lastDemand = mbps
	m.haveDemand = true
	return nil
}
