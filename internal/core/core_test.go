package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// env builds a simulator + testbed + orchestrator triple.
func env(t *testing.T, cfg Config) (*sim.Simulator, *Orchestrator) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := New(cfg, tb, s, monitor.NewStore(512))
	return s, o
}

func req(tenant string, mbps, latencyMs float64, dur time.Duration, price float64) slice.Request {
	return slice.Request{
		Tenant: tenant,
		SLA: slice.SLA{
			ThroughputMbps: mbps,
			MaxLatencyMs:   latencyMs,
			Duration:       dur,
			PriceEUR:       price,
			PenaltyEUR:     2,
		},
	}
}

func TestSubmitInstallActivateExpire(t *testing.T) {
	s, o := env(t, Config{})
	sl, err := o.Submit(req("t1", 30, 50, time.Hour, 100), traffic.NewConstant(15, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := sl.State(); got != slice.StateInstalling {
		t.Fatalf("state after submit %v", got)
	}
	// Install stages take radio 0.5s + paths 0.2s + stack 2s + boot 5s.
	s.RunFor(10 * time.Second)
	if got := sl.State(); got != slice.StateActive {
		t.Fatalf("state after install window %v", got)
	}
	tl, ok := o.Timeline(sl.ID())
	if !ok {
		t.Fatal("no timeline")
	}
	if !tl.RadioDone.Before(tl.PathsDone) || !tl.PathsDone.Before(tl.StackDone) || !tl.StackDone.Before(tl.Active) {
		t.Fatalf("timeline out of order: %+v", tl)
	}
	if tot := tl.Total(); tot < 7*time.Second || tot > 9*time.Second {
		t.Fatalf("install total %v, want ~7.7s", tot)
	}
	// Runs to expiry.
	s.RunFor(time.Hour)
	if got := sl.State(); got != slice.StateTerminated {
		t.Fatalf("state after expiry %v", got)
	}
	if sl.Reason() != "expired" {
		t.Fatalf("reason %q", sl.Reason())
	}
	// All resources released.
	if got := o.tb.Ctrl.RAN.Utilization(); got != 0 {
		t.Fatalf("RAN util %.3f after expiry", got)
	}
	if got := o.tb.Ctrl.Cloud.Utilization(); got != 0 {
		t.Fatalf("cloud util %.3f after expiry", got)
	}
}

func TestRejectInvalidRequest(t *testing.T) {
	_, o := env(t, Config{})
	if _, err := o.Submit(slice.Request{}, nil); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestRejectLatencyUnmeetable(t *testing.T) {
	_, o := env(t, Config{})
	sl, err := o.Submit(req("t1", 10, 0.1, time.Hour, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sl.State() != slice.StateRejected {
		t.Fatalf("state %v", sl.State())
	}
	if !strings.Contains(sl.Reason(), "latency") {
		t.Fatalf("reason %q", sl.Reason())
	}
}

func TestRejectRadioCapacityPeakProvisioning(t *testing.T) {
	_, o := env(t, Config{}) // no overbooking
	// Capacity ~103 Mbps at CQI 12; two 60 Mbps slices exceed it.
	a, _ := o.Submit(req("a", 60, 50, time.Hour, 100), nil)
	if a.State() != slice.StateInstalling {
		t.Fatalf("first slice %v: %s", a.State(), a.Reason())
	}
	b, _ := o.Submit(req("b", 60, 50, time.Hour, 100), nil)
	if b.State() != slice.StateRejected {
		t.Fatalf("second slice %v", b.State())
	}
	if !strings.Contains(b.Reason(), "radio") {
		t.Fatalf("reason %q", b.Reason())
	}
}

func TestOverbookingAdmitsMore(t *testing.T) {
	countAdmitted := func(cfg Config) int {
		_, o := env(t, cfg)
		n := 0
		for i := 0; i < 6; i++ {
			sl, err := o.Submit(req("t", 40, 50, time.Hour, 100), traffic.NewConstant(10, 0, nil))
			if err != nil {
				t.Fatal(err)
			}
			if sl.State() != slice.StateRejected {
				n++
			}
		}
		return n
	}
	peak := countAdmitted(Config{})
	over := countAdmitted(Config{Overbook: true, Risk: 0.9, AdmissionLoadFactor: 0.5})
	if over <= peak {
		t.Fatalf("overbooking admitted %d, peak %d — no gain", over, peak)
	}
}

func TestPLMNExhaustionRejects(t *testing.T) {
	_, o := env(t, Config{Overbook: true, AdmissionLoadFactor: 0.1, PLMNLimit: 2})
	var last *slice.Slice
	for i := 0; i < 3; i++ {
		last, _ = o.Submit(req("t", 5, 50, time.Hour, 10), nil)
	}
	if last.State() != slice.StateRejected || !strings.Contains(last.Reason(), "PLMN") {
		t.Fatalf("state %v reason %q", last.State(), last.Reason())
	}
}

func TestRevenuePolicyRejects(t *testing.T) {
	_, o := env(t, Config{MinRevenueDensity: 1.0})
	// 10 EUR for 10 Mbps * 1h = 1.0 exactly meets; 5 EUR fails.
	ok, _ := o.Submit(req("rich", 10, 50, time.Hour, 10), nil)
	if ok.State() == slice.StateRejected {
		t.Fatalf("at-threshold rejected: %s", ok.Reason())
	}
	bad, _ := o.Submit(req("poor", 10, 50, time.Hour, 5), nil)
	if bad.State() != slice.StateRejected || !strings.Contains(bad.Reason(), "revenue") {
		t.Fatalf("state %v reason %q", bad.State(), bad.Reason())
	}
}

func TestEdgeComputeForcedPlacement(t *testing.T) {
	s, o := env(t, Config{})
	r := req("edge-tenant", 20, 50, time.Hour, 50)
	r.SLA.EdgeCompute = true
	sl, _ := o.Submit(r, nil)
	s.RunFor(10 * time.Second)
	if got := sl.Allocation().DataCenter; got != testbed.EdgeDC {
		t.Fatalf("placed in %q, want edge", got)
	}
}

func TestTightLatencyForcesEdge(t *testing.T) {
	s, o := env(t, Config{})
	// Core path is >6 ms; a 4 ms budget fits only via the edge.
	sl, _ := o.Submit(req("urllc", 20, 4, time.Hour, 50), nil)
	s.RunFor(10 * time.Second)
	if sl.State() != slice.StateActive {
		t.Fatalf("state %v: %s", sl.State(), sl.Reason())
	}
	if got := sl.Allocation().DataCenter; got != testbed.EdgeDC {
		t.Fatalf("placed in %q, want edge", got)
	}
}

func TestRelaxedLatencyPrefersCore(t *testing.T) {
	s, o := env(t, Config{})
	sl, _ := o.Submit(req("embb", 20, 100, time.Hour, 50), nil)
	s.RunFor(10 * time.Second)
	if got := sl.Allocation().DataCenter; got != testbed.CoreDC {
		t.Fatalf("placed in %q, want core", got)
	}
}

func TestDeleteReleasesEverything(t *testing.T) {
	s, o := env(t, Config{})
	sl, _ := o.Submit(req("t", 30, 50, time.Hour, 100), nil)
	s.RunFor(10 * time.Second)
	if err := o.Delete(sl.ID()); err != nil {
		t.Fatal(err)
	}
	if sl.State() != slice.StateTerminated {
		t.Fatalf("state %v", sl.State())
	}
	if o.tb.Ctrl.RAN.Utilization() != 0 || o.tb.Ctrl.Cloud.Utilization() != 0 {
		t.Fatal("delete leaked resources")
	}
	if err := o.Delete(sl.ID()); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := o.Delete("ghost"); err == nil {
		t.Fatal("unknown delete accepted")
	}
	// Expiry timer must not fire afterwards.
	s.RunFor(2 * time.Hour)
}

func TestEpochChargesViolationsWhenSqueezedTooHard(t *testing.T) {
	s, o := env(t, Config{
		Overbook:        true,
		Risk:            0.5, // no safety margin: provision = forecast
		ShareUnusedPRBs: false,
		Epoch:           time.Minute,
	})
	o.Start()
	// Bursty demand around a low mean with spikes the forecast misses.
	rng := s.Rand()
	sl, _ := o.Submit(req("bursty", 60, 50, 3*time.Hour, 100), traffic.NewBursty(5, 55, 0.05, 0.3, 0, rng))
	s.RunFor(2 * time.Hour)
	acct := sl.Accounting()
	if acct.ServedEpochs == 0 {
		t.Fatal("no epochs served")
	}
	if acct.ViolationEpochs == 0 {
		t.Fatal("aggressive overbooking with bursts should cause violations")
	}
	if acct.PenaltyEUR != float64(acct.ViolationEpochs)*2 {
		t.Fatalf("penalty %.1f for %d violations", acct.PenaltyEUR, acct.ViolationEpochs)
	}
	g := o.Gain()
	if g.PenaltyTotalEUR != acct.PenaltyEUR {
		t.Fatalf("orchestrator penalty %.1f vs slice %.1f", g.PenaltyTotalEUR, acct.PenaltyEUR)
	}
}

func TestPeakProvisioningNeverViolates(t *testing.T) {
	s, o := env(t, Config{ShareUnusedPRBs: false})
	o.Start()
	rng := s.Rand()
	sl, _ := o.Submit(req("t", 60, 50, 3*time.Hour, 100), traffic.NewBursty(5, 55, 0.05, 0.3, 0, rng))
	s.RunFor(2 * time.Hour)
	acct := sl.Accounting()
	if acct.ViolationEpochs != 0 {
		t.Fatalf("peak provisioning violated %d epochs", acct.ViolationEpochs)
	}
	if acct.ServedEpochs == 0 {
		t.Fatal("no epochs served")
	}
}

func TestOverbookingShrinksAllocation(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.9})
	o.Start()
	sl, _ := o.Submit(req("t", 60, 50, 3*time.Hour, 100), traffic.NewConstant(12, 0.5, s.Rand()))
	s.RunFor(30 * time.Minute)
	alloc := sl.Allocation().AllocatedMbps
	if alloc >= 60 {
		t.Fatalf("allocation %.1f not shrunk below contract 60", alloc)
	}
	if alloc < 12 {
		t.Fatalf("allocation %.1f below steady demand", alloc)
	}
	g := o.Gain()
	if g.MultiplexingGain <= 1.0 {
		t.Fatalf("multiplexing gain %.2f not above 1", g.MultiplexingGain)
	}
	if g.Reconfigurations == 0 {
		t.Fatal("no reconfigurations recorded")
	}
}

func TestPeakProvisioningKeepsFullAllocation(t *testing.T) {
	s, o := env(t, Config{})
	o.Start()
	sl, _ := o.Submit(req("t", 60, 50, 2*time.Hour, 100), traffic.NewConstant(12, 0.5, s.Rand()))
	s.RunFor(30 * time.Minute)
	if alloc := sl.Allocation().AllocatedMbps; alloc < 60 {
		t.Fatalf("peak allocation %.1f dropped below contract", alloc)
	}
	if g := o.Gain(); g.MultiplexingGain > 1.001 {
		t.Fatalf("gain %.3f without overbooking", g.MultiplexingGain)
	}
}

func TestSqueezeToAccommodateNewcomer(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.9, AdmissionLoadFactor: 0.4})
	o.Start()
	// First tenant contracts most of the capacity but uses little.
	a, _ := o.Submit(req("incumbent", 80, 50, 3*time.Hour, 100), traffic.NewConstant(15, 0, nil))
	s.RunFor(20 * time.Minute) // allocation shrinks toward ~15
	// Newcomer wants 40 Mbps peak; physically free capacity would be
	// ~103-80 = 23 if the incumbent kept its full contract.
	b, _ := o.Submit(req("newcomer", 40, 50, time.Hour, 80), traffic.NewConstant(10, 0, nil))
	if b.State() == slice.StateRejected {
		t.Fatalf("newcomer rejected: %s", b.Reason())
	}
	s.RunFor(10 * time.Second)
	if b.State() != slice.StateActive {
		t.Fatalf("newcomer %v", b.State())
	}
	_ = a
	if g := o.Gain(); g.OverbookingRatio <= 1.0 {
		t.Fatalf("overbooking ratio %.2f not above 1 (contracted %.0f, capacity %.0f)",
			g.OverbookingRatio, g.ContractedMbps, g.CapacityMbps)
	}
}

func TestRecordDemandLiveMode(t *testing.T) {
	s, o := env(t, Config{})
	o.Start()
	sl, _ := o.Submit(req("live", 30, 50, time.Hour, 50), nil) // no demand process
	s.RunFor(10 * time.Second)
	if err := o.RecordDemand(sl.ID(), 17); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Minute)
	acct := sl.Accounting()
	if acct.DemandMbps != 17 {
		t.Fatalf("demand %v", acct.DemandMbps)
	}
	if err := o.RecordDemand("ghost", 1); err == nil {
		t.Fatal("unknown slice demand accepted")
	}
}

func TestListAndGet(t *testing.T) {
	s, o := env(t, Config{})
	a, _ := o.Submit(req("a", 10, 50, time.Hour, 10), nil)
	b, _ := o.Submit(req("b", 10, 50, time.Hour, 10), nil)
	s.RunFor(10 * time.Second)
	ls := o.List()
	if len(ls) != 2 || ls[0].ID != a.ID() || ls[1].ID != b.ID() {
		t.Fatalf("list %+v", ls)
	}
	if _, ok := o.Get(a.ID()); !ok {
		t.Fatal("Get failed")
	}
	if _, ok := o.Get("nope"); ok {
		t.Fatal("ghost found")
	}
	if o.ActiveCount() != 2 {
		t.Fatalf("active %d", o.ActiveCount())
	}
}

func TestGainCounters(t *testing.T) {
	s, o := env(t, Config{})
	o.Submit(req("a", 60, 50, time.Hour, 100), nil)
	o.Submit(req("b", 60, 50, time.Hour, 100), nil) // rejected (radio)
	s.RunFor(10 * time.Second)
	g := o.Gain()
	if g.Admitted != 1 || g.Rejected != 1 {
		t.Fatalf("admitted %d rejected %d", g.Admitted, g.Rejected)
	}
	if g.RevenueTotalEUR != 100 {
		t.Fatalf("revenue %.1f", g.RevenueTotalEUR)
	}
	if g.RejectReasons["radio-capacity"] != 1 {
		t.Fatalf("reasons %v", g.RejectReasons)
	}
	if g.ContractedMbps != 60 {
		t.Fatalf("contracted %.1f", g.ContractedMbps)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	s, o := env(t, Config{Epoch: time.Minute})
	o.Start()
	o.Start()
	s.RunFor(5 * time.Minute)
	if g := o.Gain(); g.Epochs != 5 {
		t.Fatalf("epochs %d after double Start", g.Epochs)
	}
	o.Stop()
	o.Stop()
	s.RunFor(5 * time.Minute)
	if g := o.Gain(); g.Epochs != 5 {
		t.Fatalf("epochs %d after Stop", g.Epochs)
	}
}

func TestTelemetrySeriesPopulated(t *testing.T) {
	s, o := env(t, Config{Overbook: true})
	o.Start()
	o.Submit(req("t", 30, 50, time.Hour, 50), traffic.NewConstant(10, 0, nil))
	s.RunFor(20 * time.Minute)
	snap := o.Store().Snapshot()
	for _, key := range []string{
		"orchestrator/multiplexing_gain",
		"orchestrator/overbooking_ratio",
		"orchestrator/active_slices",
		"domain/ran/utilization",
		"slice/s-1/demand_mbps",
		"slice/s-1/allocated_mbps",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("series %s missing (have %v)", key, o.Store().Names())
		}
	}
}
