package core

import (
	"math"

	"repro/internal/ctrl"
	"repro/internal/ran"
	"repro/internal/slice"
)

// The zero-allocation admission fast path. Under overload the orchestrator
// spends most of its time saying no: every such no through Submit still
// burns a slice ID, publishes two events, registers a rejected slice,
// formats a detail string and appends a WAL record. SubmitFast answers the
// only question an overloaded front end needs — "would Submit certainly
// reject this right now?" — from version-keyed caches and pooled causes,
// without any of that machinery.
//
// Static detail strings replace the formatted ones of the full path: the
// fast path exists to allocate nothing, and a rejection storm does not need
// per-request numbers in its error text.
const (
	fastDetailRevenueDensity = "fast-reject: revenue density below the configured policy floor"
	fastDetailPenalty        = "fast-reject: expected SLA penalties at the configured risk reach the price"
	fastDetailPLMN           = "fast-reject: PLMN broadcast list full"
	fastDetailLedger         = "fast-reject: estimated radio load exceeds the admission capacity cap"
	fastDetailPRBs           = "fast-reject: a cell lacks free PRBs for the contracted throughput"
)

// cellHeadroom is one cell's admission-relevant state: free schedulable
// PRBs and the per-PRB throughput at the cell's mean CQI.
type cellHeadroom struct {
	freePRBs   int
	perPRBMbps float64
}

// radioHeadroom is an immutable snapshot of the radio substrate's headroom,
// keyed by the sum of the RAN topology version and every cell's version.
// Every counter is monotonic, so the sum strictly increases on any mutation
// and equal sums guarantee an identical substrate.
type radioHeadroom struct {
	ver   uint64
	cells []cellHeadroom
	// capacityMbps is the total mean-CQI radio capacity, summed in sorted
	// cell order — bit-identical to testbed.RadioCapacityMbps, cached here
	// so the admission hot path stops re-sorting and re-summing per request.
	capacityMbps float64
}

// radioHeadroomNow returns the current headroom snapshot, rebuilding it only
// when some cell changed. The double version read makes the cache exact: a
// mutation racing the rebuild prevents the snapshot from being stored under
// the old version (it is still returned for one-shot use — no staler than
// any admission-time dry run).
func (o *Orchestrator) radioHeadroomNow() *radioHeadroom {
	rc := o.tb.Ctrl.RAN
	cells := rc.Cells()
	ver := rc.Network().Version()
	for _, e := range cells {
		ver += e.Version()
	}
	if hr := o.radioHead.Load(); hr != nil && hr.ver == ver {
		return hr
	}
	hr := &radioHeadroom{ver: ver, cells: make([]cellHeadroom, len(cells))}
	for i, e := range cells {
		per := ran.PRBThroughputMbps(int(math.Round(e.MeanCQI())))
		hr.cells[i] = cellHeadroom{freePRBs: e.FreePRBs(), perPRBMbps: per}
		hr.capacityMbps += float64(e.TotalPRBs()) * per
	}
	ver2 := rc.Network().Version()
	for _, e := range cells {
		ver2 += e.Version()
	}
	if ver2 != ver {
		return hr
	}
	o.radioHead.Store(hr)
	return hr
}

// radioCapacityMbps is the cached total mean-CQI radio capacity — the same
// sum (same cell order, same arithmetic) as tb.RadioCapacityMbps().
func (o *Orchestrator) radioCapacityMbps() float64 {
	return o.radioHeadroomNow().capacityMbps
}

// SubmitFast answers whether Submit would certainly reject the request right
// now, without burning a slice ID, publishing events, registering a rejected
// slice or appending WAL records. A non-nil cause means rejection is certain
// at the instant of the check (concurrent releases can free capacity a
// moment later, exactly as they can race Submit's own admission). A nil
// result means the request may be admissible and must go through Submit for
// the authoritative decision — SubmitFast never admits.
//
// The returned cause is either pooled (hand it back via
// slice.RecycleRejection when done — the steady-state fast path then
// allocates nothing) or a shared memoized feasibility outcome
// (RecycleRejection ignores those, so callers need not distinguish). The
// cause's code matches what Submit would produce; when several rejections
// apply at once the picked one may differ from the sequential path's
// precedence, and details are static strings rather than formatted ones.
func (o *Orchestrator) SubmitFast(req slice.Request) *slice.RejectionCause {
	sla := req.SLA

	// Policy checks: pure functions of the request and the configuration,
	// mirroring admit's order.
	if o.cfg.MinRevenueDensity > 0 {
		density := sla.PriceEUR / (sla.ThroughputMbps * sla.Duration.Hours())
		if density < o.cfg.MinRevenueDensity {
			return slice.PooledRejection(slice.RejectRevenuePolicy, "", fastDetailRevenueDensity)
		}
	}
	if o.cfg.PenaltyAware {
		if o.expectedPenaltyEUR(sla) >= sla.PriceEUR {
			return slice.PooledRejection(slice.RejectRevenuePolicy, "", fastDetailPenalty)
		}
	}

	// PLMN broadcast slots.
	if o.plmns.Available() == 0 {
		return slice.PooledRejection(slice.RejectPLMNExhausted, "", fastDetailPLMN)
	}

	// Capacity-ledger headroom: admission's TryReserve admits iff
	// load+new <= cap, and the squeeze never shrinks ledger entries, so an
	// overfull ledger is a certain rejection.
	hr := o.radioHeadroomNow()
	capacity := hr.capacityMbps * o.cfg.UtilizationCap
	newLoad := o.admissionEstimate(sla)
	if o.ledger.Load()+newLoad > capacity {
		return slice.PooledRejection(slice.RejectRadioCapacity, "ran", fastDetailLedger)
	}

	// Per-cell PRB headroom. Only definite under peak provisioning: when
	// overbooking, a failed radio reserve triggers the squeeze-and-retry
	// path, so a full cell is not a final answer there.
	if o.cfg.effectiveRisk() >= 0.9995 && len(hr.cells) > 0 {
		share := sla.ThroughputMbps / float64(len(hr.cells))
		for _, c := range hr.cells {
			need := 1
			if share > 0 {
				if need = int(math.Ceil(share / c.perPRBMbps)); need < 1 {
					need = 1
				}
			}
			if need > c.freePRBs {
				return slice.PooledRejection(slice.RejectRadioCapacity, "ran", fastDetailPRBs)
			}
		}
	}

	// Memoized placement probe: certain rejection requires every candidate
	// data center to have a feasibility failure memoized at the substrate's
	// *current* version (feascache.go). Any unknown or stale entry means
	// "maybe admissible" — fall through to the full path.
	var last *slice.RejectionCause
	for _, dc := range dcCandidates(sla) {
		tx := ctrl.Tx{
			SLA:             sla,
			DataCenter:      dc,
			Mbps:            newLoad,
			LatencyBudgetMs: o.latencyBudget(sla),
		}
		cause, definite := o.feasProbeReject(tx)
		if !definite {
			return nil
		}
		last = cause
	}
	return last
}
