package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// redundantEnv builds an environment with the backup switch enabled.
func redundantEnv(t *testing.T, redundant bool) (*sim.Simulator, *Orchestrator) {
	t.Helper()
	s := sim.NewSimulator(1)
	cfg := testbed.Default()
	cfg.RedundantTransport = redundant
	tb, err := testbed.New(cfg, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	return s, o
}

func TestLinkFailureRestoresViaBackup(t *testing.T) {
	s, o := redundantEnv(t, true)
	o.Start()
	sl, _ := o.Submit(req("t", 30, 50, 2*time.Hour, 100), traffic.NewConstant(10, 0, nil))
	s.RunFor(15 * time.Second)
	if sl.State().String() != "active" {
		t.Fatalf("state %v: %s", sl.State(), sl.Reason())
	}
	primaryLatency := sl.Allocation().PathLatencyMs

	// Fail the primary mmWave hop of enb-1.
	rep, err := o.HandleLinkFailure(testbed.ENBName(0), testbed.Switch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 || rep.Restored[0] != sl.ID() {
		t.Fatalf("restored %v dropped %v", rep.Restored, rep.Dropped)
	}
	if sl.State().String() != "active" {
		t.Fatalf("slice no longer active: %v", sl.State())
	}
	alloc := sl.Allocation()
	if alloc.PathLatencyMs <= primaryLatency {
		t.Fatalf("restored path latency %.2f not above primary %.2f", alloc.PathLatencyMs, primaryLatency)
	}
	// New paths must avoid the failed link.
	for _, pid := range alloc.PathIDs {
		r, ok := o.tb.Transport.Reservation(pid)
		if !ok {
			t.Fatalf("reservation %s missing", pid)
		}
		for i := 0; i+1 < len(r.Hops); i++ {
			if r.Hops[i] == testbed.ENBName(0) && r.Hops[i+1] == testbed.Switch {
				t.Fatalf("restored path still uses failed link: %v", r.Hops)
			}
		}
	}
	// The slice must keep serving traffic after restoration.
	s.RunFor(10 * time.Minute)
	if got := sl.Accounting().ServedEpochs; got == 0 {
		t.Fatal("no epochs served after restoration")
	}
}

func TestLinkFailureWithoutBackupDropsSlice(t *testing.T) {
	s, o := redundantEnv(t, false)
	o.Start()
	sl, _ := o.Submit(req("t", 30, 50, 2*time.Hour, 100), traffic.NewConstant(10, 0, nil))
	s.RunFor(15 * time.Second)

	rep, err := o.HandleLinkFailure(testbed.ENBName(0), testbed.Switch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0] != sl.ID() {
		t.Fatalf("restored %v dropped %v", rep.Restored, rep.Dropped)
	}
	if sl.State().String() != "terminated" || !strings.Contains(sl.Reason(), "no feasible restoration") {
		t.Fatalf("state %v reason %q", sl.State(), sl.Reason())
	}
	// All domain resources must be freed.
	if o.tb.Ctrl.RAN.Utilization() != 0 || o.tb.Ctrl.Cloud.Utilization() != 0 {
		t.Fatal("dropped slice leaked resources")
	}
	mean, _ := o.tb.Transport.Utilization()
	if mean != 0 {
		t.Fatalf("transport still reserved: %.4f", mean)
	}
}

func TestLinkFailureUnknownLink(t *testing.T) {
	_, o := redundantEnv(t, true)
	if _, err := o.HandleLinkFailure("ghost", "sw1"); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestLinkFailureNoVictimsIsNoop(t *testing.T) {
	s, o := redundantEnv(t, true)
	o.Start()
	// Slice to the edge: fails only if edge links break. Failing the core
	// link must not touch it.
	r := req("t", 20, 4, time.Hour, 50)
	sl, _ := o.Submit(r, nil)
	s.RunFor(15 * time.Second)
	rep, err := o.HandleLinkFailure(testbed.Switch, testbed.CoreDC)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored)+len(rep.Dropped) != 0 {
		t.Fatalf("unexpected victims: %+v", rep)
	}
	if sl.State().String() != "active" {
		t.Fatalf("bystander slice %v", sl.State())
	}
}

func TestRestoreLinkReenablesRouting(t *testing.T) {
	s, o := redundantEnv(t, false)
	o.Start()
	o.HandleLinkFailure(testbed.ENBName(0), testbed.Switch)
	// New submissions are now infeasible (enb-1 unreachable).
	sl, _ := o.Submit(req("t2", 20, 50, time.Hour, 50), nil)
	if sl.State().String() != "rejected" {
		t.Fatalf("submit over broken topology: %v", sl.State())
	}
	if err := o.RestoreLink(testbed.ENBName(0), testbed.Switch); err != nil {
		t.Fatal(err)
	}
	sl2, _ := o.Submit(req("t3", 20, 50, time.Hour, 50), nil)
	s.RunFor(15 * time.Second)
	if sl2.State().String() != "active" {
		t.Fatalf("submit after restore: %v (%s)", sl2.State(), sl2.Reason())
	}
}

func TestLinkDegradationShrinksInPlaceWithoutBackup(t *testing.T) {
	s, o := redundantEnv(t, false)
	o.Start()
	// Two slices sharing the enb-1 mmWave hop (each path carries half the
	// slice's throughput).
	a, _ := o.Submit(req("a", 40, 50, 2*time.Hour, 100), traffic.NewConstant(10, 0, nil))
	b, _ := o.Submit(req("b", 40, 50, 2*time.Hour, 100), traffic.NewConstant(10, 0, nil))
	s.RunFor(15 * time.Second)

	// Rain fade: the mmWave hop collapses from 1000 to 30 Mbps. Each
	// slice's enb-1 path reserved 20; 40 reserved > 30 available.
	rep, err := o.HandleLinkDegradation(testbed.ENBName(0), testbed.Switch, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 2 || len(rep.Dropped) != 0 {
		t.Fatalf("report %+v", rep)
	}
	// The first victim shrinks to its fair share; the freed bandwidth may
	// let later victims keep their full allocation. Both stay active and
	// the link must no longer be oversubscribed.
	shrunk := 0
	for _, sl := range []*slice.Slice{a, b} {
		if got := sl.State().String(); got != "active" {
			t.Fatalf("slice %s state %s", sl.ID(), got)
		}
		if sl.Allocation().AllocatedMbps < 39 {
			shrunk++
		}
	}
	if shrunk == 0 {
		t.Fatal("no slice shrunk after fade")
	}
	if len(o.tb.Transport.OversubscribedPaths()) != 0 {
		t.Fatal("link still oversubscribed after handling")
	}
	l, _ := o.tb.Transport.Link(testbed.ENBName(0), testbed.Switch)
	if l.ReservedMbps() > 30+1e-9 {
		t.Fatalf("link carries %.1f > capacity 30", l.ReservedMbps())
	}
}

func TestLinkDegradationReroutesWithBackup(t *testing.T) {
	s, o := redundantEnv(t, true)
	o.Start()
	sl, _ := o.Submit(req("a", 40, 50, 2*time.Hour, 100), traffic.NewConstant(10, 0, nil))
	s.RunFor(15 * time.Second)
	rep, err := o.HandleLinkDegradation(testbed.ENBName(0), testbed.Switch, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 {
		t.Fatalf("report %+v", rep)
	}
	// With the backup switch the slice keeps its full allocation.
	if got := sl.Allocation().AllocatedMbps; got < 40 {
		t.Fatalf("allocation %.1f shrunk despite backup path", got)
	}
}

func TestLinkDegradationBelowFloorDrops(t *testing.T) {
	s, o := redundantEnv(t, false)
	o.Start()
	sl, _ := o.Submit(req("a", 40, 50, 2*time.Hour, 100), traffic.NewConstant(10, 0, nil))
	s.RunFor(15 * time.Second)
	// Degrade below the 1 Mbps floor (per victim share 0.5).
	rep, err := o.HandleLinkDegradation(testbed.ENBName(0), testbed.Switch, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dropped) != 1 {
		t.Fatalf("report %+v", rep)
	}
	if sl.State().String() != "terminated" {
		t.Fatalf("state %v", sl.State())
	}
	if o.tb.Ctrl.RAN.Utilization() != 0 {
		t.Fatal("drop leaked radio resources")
	}
}

func TestLinkDegradationNoVictims(t *testing.T) {
	_, o := redundantEnv(t, false)
	rep, err := o.HandleLinkDegradation(testbed.ENBName(0), testbed.Switch, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored)+len(rep.Dropped) != 0 {
		t.Fatalf("victims on idle network: %+v", rep)
	}
	if _, err := o.HandleLinkDegradation("ghost", "x", 10); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestBackupTopologyDoesNotChangePrimaryPaths(t *testing.T) {
	_, oPlain := redundantEnv(t, false)
	_, oRed := redundantEnv(t, true)
	for _, o := range []*Orchestrator{oPlain, oRed} {
		d, err := o.tb.Ctrl.Transport.FeasibleDelay(testbed.CoreDC, 20)
		if err != nil {
			t.Fatal(err)
		}
		if d != 7.2 { // 1.2 µWave + 6.0 core wired
			t.Fatalf("primary delay %.2f changed by backup topology", d)
		}
	}
}
