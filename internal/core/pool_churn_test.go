package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ctrl"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// TestPooledGrantChurnPoisoned is the use-after-release tripwire for the
// grant pools: with poisoning on, RecycleGrant overwrites every container a
// recycled grant still references with sentinel garbage before the pool
// hands the object out again. Any engine or controller path that retained
// an allocation map, a path list or a PLMN past its recycle point would
// either install poisoned values — tripping the invariant auditor's
// conservation sweep and the per-slice substrate checks — or race the
// overwrite and trip the race detector. The churn mixes concurrent admits,
// deletes and certain rejections (the abort→recycle path) across shards.
func TestPooledGrantChurnPoisoned(t *testing.T) {
	ctrl.SetGrantPoisoning(true)
	t.Cleanup(func() { ctrl.SetGrantPoisoning(false) })

	s := sim.NewSimulator(11)
	tb, err := testbed.New(testbed.Config{
		ENBs: 4, MaxPLMNs: 2048, CoreHosts: 16, EdgeHosts: 8,
		MECHosts: 2, MECHostCPUs: 32,
	}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           2048,
		HistoryLimit:        64,
		Shards:              8,
		Audit:               true,
	}, tb, s, monitor.NewStore(1024))

	const workers, iters = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("churn-%d", w)
			for i := 0; i < iters; i++ {
				mk := func(mbps, latency float64) slice.Request {
					return slice.Request{
						Tenant: tenant,
						SLA: slice.SLA{
							ThroughputMbps: mbps, MaxLatencyMs: latency,
							Duration: time.Hour, PriceEUR: 10, PenaltyEUR: 1,
						},
					}
				}
				// Admissible request: exercises reserve→commit→apply→recycle.
				sl, err := o.Submit(mk(2, 50), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if sl.State() != slice.StateRejected {
					if err := o.Delete(sl.ID()); err != nil {
						t.Error(err)
						return
					}
				}
				// Unmeetable latency: exercises the abort→recycle path on
				// every domain that granted before the transport dry run
				// said no.
				if sl, err = o.Submit(mk(2, 0.01), nil); err != nil {
					t.Error(err)
					return
				}
				if sl.State() != slice.StateRejected {
					t.Error("unmeetable latency admitted")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// One full conservation/leak sweep over the substrate books plus the
	// per-slice checks: poisoned values installed anywhere surface here.
	o.AuditSweep()
	if vs := o.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("invariant violations after poisoned churn: %v", vs)
	}
	if n := o.ActiveCount(); n != 0 {
		t.Fatalf("%d slices still active after churn", n)
	}
}
