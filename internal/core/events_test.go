package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

func eventEnv(t *testing.T, cfg Config) (*Orchestrator, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, tb, s, monitor.NewStore(256)), s
}

func eventReq(tenant string) slice.Request {
	return slice.Request{
		Tenant: tenant,
		SLA: slice.SLA{
			ThroughputMbps: 20, MaxLatencyMs: 30, Duration: time.Hour,
			PriceEUR: 50, PenaltyEUR: 1,
		},
	}
}

// collect drains ch until it has n events or the deadline passes.
func collect(t *testing.T, ch <-chan Event, n int) []Event {
	t.Helper()
	var out []Event
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d/%d events", len(out), n)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timeout after %d/%d events", len(out), n)
		}
	}
	return out
}

// TestEventLifecycleSequence pins the ordered event sequence of one full
// slice lifecycle: submitted, admitted, installed, deleted — with strictly
// increasing sequence numbers and post-transition states.
func TestEventLifecycleSequence(t *testing.T) {
	orch, s := eventEnv(t, Config{Overbook: true, Risk: 0.9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := orch.Watch(ctx, WatchOptions{})

	sl, err := orch.Submit(eventReq("acme"), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)
	if err := orch.Delete(sl.ID()); err != nil {
		t.Fatal(err)
	}

	got := collect(t, ch, 4)
	wantTypes := []EventType{EventSubmitted, EventAdmitted, EventInstalled, EventDeleted}
	wantStates := []string{"pending", "installing", "active", "terminated"}
	for i, ev := range got {
		if ev.Type != wantTypes[i] {
			t.Fatalf("event %d: type %s, want %s (%+v)", i, ev.Type, wantTypes[i], got)
		}
		if ev.State != wantStates[i] {
			t.Fatalf("event %d: state %s, want %s", i, ev.State, wantStates[i])
		}
		if ev.Slice != sl.ID() || ev.Tenant != "acme" {
			t.Fatalf("event %d: slice %s tenant %s", i, ev.Slice, ev.Tenant)
		}
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d: zero time", i)
		}
	}
}

// TestEventRejectedCarriesCode checks rejections publish the typed cause.
func TestEventRejectedCarriesCode(t *testing.T) {
	orch, _ := eventEnv(t, Config{Overbook: true, Risk: 0.9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := orch.Watch(ctx, WatchOptions{Types: []EventType{EventRejected}})

	req := eventReq("impossible")
	req.SLA.MaxLatencyMs = 0.01
	if _, err := orch.Submit(req, nil); err != nil {
		t.Fatal(err)
	}
	ev := collect(t, ch, 1)[0]
	if ev.RejectCode != slice.RejectLatencyUnmeetable {
		t.Fatalf("reject code %q, want %q", ev.RejectCode, slice.RejectLatencyUnmeetable)
	}
	if ev.State != "rejected" {
		t.Fatalf("state %q", ev.State)
	}
}

// TestEventExpiry checks the contracted expiry publishes EventExpired.
func TestEventExpiry(t *testing.T) {
	orch, s := eventEnv(t, Config{Overbook: true, Risk: 0.9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := orch.Watch(ctx, WatchOptions{Types: []EventType{EventExpired}})

	req := eventReq("short")
	req.SLA.Duration = 10 * time.Minute
	if _, err := orch.Submit(req, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Hour)
	ev := collect(t, ch, 1)[0]
	if ev.State != "terminated" || ev.Detail != "expired" {
		t.Fatalf("event %+v", ev)
	}
}

// TestWatchResumeMatchesUninterrupted is the core replay contract: a
// subscriber that disconnects mid-stream and resumes with Since=<last seen>
// observes the exact same ordered tail an uninterrupted subscriber does.
func TestWatchResumeMatchesUninterrupted(t *testing.T) {
	orch, s := eventEnv(t, Config{Overbook: true, Risk: 0.9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	full := orch.Watch(ctx, WatchOptions{})

	var ids []slice.ID
	for i := 0; i < 3; i++ {
		sl, err := orch.Submit(eventReq(fmt.Sprintf("t%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sl.ID())
	}
	s.RunFor(15 * time.Second) // 3 submitted + 3 admitted + 3 installed

	// Interrupted subscriber: replays from the start, reads 4 events, dies.
	ctx1, cancel1 := context.WithCancel(context.Background())
	part1 := collect(t, orch.Watch(ctx1, WatchOptions{Since: -1}), 4)
	cancel1()

	// More events while it is gone.
	for _, id := range ids {
		if err := orch.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	// Resume after the last seen sequence.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	part2 := collect(t, orch.Watch(ctx2, WatchOptions{Since: part1[len(part1)-1].Seq}), 8)

	want := collect(t, full, 12)
	got := append(part1, part2...)
	if len(got) != len(want) {
		t.Fatalf("%d resumed events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type || got[i].Slice != want[i].Slice {
			t.Fatalf("event %d diverged: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestWatchFilters checks tenant and state server-side filtering.
func TestWatchFilters(t *testing.T) {
	orch, s := eventEnv(t, Config{Overbook: true, Risk: 0.9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	byTenant := orch.Watch(ctx, WatchOptions{Tenants: []string{"bob"}})
	byState := orch.Watch(ctx, WatchOptions{States: []string{"active"}})

	if _, err := orch.Submit(eventReq("alice"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := orch.Submit(eventReq("bob"), nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)

	for _, ev := range collect(t, byTenant, 3) { // submitted, admitted, installed
		if ev.Tenant != "bob" {
			t.Fatalf("tenant filter leaked %+v", ev)
		}
	}
	for _, ev := range collect(t, byState, 2) { // both installs
		if ev.Type != EventInstalled || ev.State != "active" {
			t.Fatalf("state filter leaked %+v", ev)
		}
	}
}

// TestSlowSubscriberResyncs pins the backpressure contract: a subscriber
// that stops reading while the ring wraps receives one resync marker and
// then the retained tail — and the publisher is never blocked.
func TestSlowSubscriberResyncs(t *testing.T) {
	bus := NewEventBus(8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := bus.Watch(ctx, WatchOptions{Buffer: 1})

	// Publish far past ring+buffer without any consumer: must never block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			bus.Publish(Event{Type: EventSubmitted, Slice: slice.ID(fmt.Sprintf("s-%d", i+1))})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}

	sawResync := false
	last := int64(0)
	deadline := time.After(5 * time.Second)
	for last < 100 {
		select {
		case ev := <-ch:
			if ev.Type == EventResync {
				sawResync = true
			} else if ev.Seq <= last {
				t.Fatalf("sequence went backwards: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
		case <-deadline:
			t.Fatalf("timed out at seq %d (resync=%v)", last, sawResync)
		}
	}
	if !sawResync {
		t.Fatal("slow subscriber never received a resync marker")
	}
}

// TestWatchSinceAheadResyncs: a stale resume token from a previous daemon
// run (ahead of the current stream) must resync immediately, not hang.
func TestWatchSinceAheadResyncs(t *testing.T) {
	bus := NewEventBus(8)
	bus.Publish(Event{Type: EventSubmitted})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := bus.Watch(ctx, WatchOptions{Since: 99})
	select {
	case ev := <-ch:
		if ev.Type != EventResync {
			t.Fatalf("got %+v, want resync", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no immediate resync for a future Since")
	}
}

// TestWatchNeverBlocksParallelAdmission races many concurrent submitters
// against slow and cancelled subscribers (run with -race): admission must
// complete regardless of subscriber behavior.
func TestWatchNeverBlocksParallelAdmission(t *testing.T) {
	cfg := Config{
		Overbook: true, Risk: 0.9, AdmissionLoadFactor: 0.1,
		PLMNLimit: 4096, Shards: 8, EventBuffer: 64,
	}
	clock := sim.NewRealtimeClock()
	tb, err := testbed.New(testbed.Config{ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	orch := New(cfg, tb, clock, monitor.NewStore(256))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A dead subscriber (never reads), a slow one, and one that cancels
	// mid-run.
	_ = orch.Watch(ctx, WatchOptions{Buffer: 1})
	slow := orch.Watch(ctx, WatchOptions{Buffer: 1})
	go func() {
		for range slow {
			time.Sleep(time.Millisecond)
		}
	}()
	midCtx, midCancel := context.WithCancel(context.Background())
	_ = orch.Watch(midCtx, WatchOptions{Buffer: 1})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sl, err := orch.Submit(eventReq(fmt.Sprintf("t%d", g)), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if sl.State() != slice.StateRejected {
					if err := orch.Delete(sl.ID()); err != nil {
						t.Error(err)
						return
					}
				}
				if i == 10 && g == 0 {
					midCancel()
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("admission blocked with slow/dead subscribers attached")
	}
	midCancel()
	if got := orch.Events().LastSeq(); got < 8*25 {
		t.Fatalf("only %d events published", got)
	}
}

// TestListFiltered covers filters, keyset pagination and token validation.
func TestListFiltered(t *testing.T) {
	orch, s := eventEnv(t, Config{Overbook: true, Risk: 0.9})
	for i := 0; i < 3; i++ {
		if _, err := orch.Submit(eventReq("acme"), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := orch.Submit(eventReq("zeta"), nil); err != nil {
		t.Fatal(err)
	}
	bad := eventReq("zeta")
	bad.SLA.MaxLatencyMs = 0.01
	if _, err := orch.Submit(bad, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)

	// Tenant filter.
	page, err := orch.ListFiltered(ListOptions{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Slices) != 3 || page.NextPageToken != "" {
		t.Fatalf("tenant filter: %d slices, token %q", len(page.Slices), page.NextPageToken)
	}

	// State + reject-code filters.
	page, err = orch.ListFiltered(ListOptions{State: "rejected", RejectCode: slice.RejectLatencyUnmeetable})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Slices) != 1 || page.Slices[0].Tenant != "zeta" {
		t.Fatalf("reject filter: %+v", page.Slices)
	}

	// Pagination walks all 5 in order without duplicates.
	var seen []slice.ID
	token := ""
	for pages := 0; ; pages++ {
		page, err := orch.ListFiltered(ListOptions{Limit: 2, PageToken: token})
		if err != nil {
			t.Fatal(err)
		}
		for _, sn := range page.Slices {
			seen = append(seen, sn.ID)
		}
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(seen) != 5 {
		t.Fatalf("pagination saw %d slices: %v", len(seen), seen)
	}
	for i := 1; i < len(seen); i++ {
		if seqOf(seen[i]) <= seqOf(seen[i-1]) {
			t.Fatalf("pagination out of order: %v", seen)
		}
	}

	// Bad token is a caller error.
	if _, err := orch.ListFiltered(ListOptions{PageToken: "nope"}); err == nil {
		t.Fatal("bad page token accepted")
	}

	// List() remains the zero-option wrapper.
	if got := len(orch.List()); got != 5 {
		t.Fatalf("List: %d slices", got)
	}
}

// TestSubmitCtxCancelled: a cancelled context fails fast without admitting.
func TestSubmitCtxCancelled(t *testing.T) {
	orch, _ := eventEnv(t, Config{Overbook: true, Risk: 0.9})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := orch.SubmitCtx(ctx, eventReq("late"), nil); err != context.Canceled {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if _, err := orch.SubmitBatchCtx(ctx, []BatchItem{{Request: eventReq("late")}}, BatchFCFS); err != context.Canceled {
		t.Fatalf("batch err %v, want context.Canceled", err)
	}
	if n := len(orch.List()); n != 0 {
		t.Fatalf("%d slices registered after cancelled submits", n)
	}
	if seq := orch.Events().LastSeq(); seq != 0 {
		t.Fatalf("%d events published after cancelled submits", seq)
	}
}
