package core

import (
	"testing"
	"time"

	"repro/internal/slice"
	"repro/internal/traffic"
)

// rampDemand rises linearly from lo to hi over rampDur, then holds.
type rampDemand struct {
	lo, hi  float64
	start   time.Time
	rampDur time.Duration
}

func (r *rampDemand) Sample(t time.Time) float64 {
	frac := float64(t.Sub(r.start)) / float64(r.rampDur)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return r.lo + frac*(r.hi-r.lo)
}
func (r *rampDemand) Mean() float64 { return (r.lo + r.hi) / 2 }
func (r *rampDemand) Name() string  { return "ramp" }

func TestAllocationGrowsBackWithDemand(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.9})
	o.Start()
	demand := &rampDemand{lo: 5, hi: 55, start: s.Now().Add(time.Hour), rampDur: 2 * time.Hour}
	sl, _ := o.Submit(req("ramp", 60, 50, 6*time.Hour, 200), demand)

	// Phase 1: low demand — allocation shrinks well below contract.
	s.RunFor(time.Hour)
	low := sl.Allocation().AllocatedMbps
	if low >= 30 {
		t.Fatalf("low-phase allocation %.1f did not shrink", low)
	}
	// Phase 2: demand ramps to near contract — allocation must follow up.
	s.RunFor(3 * time.Hour)
	high := sl.Allocation().AllocatedMbps
	if high <= low+10 {
		t.Fatalf("allocation did not grow back: low %.1f, high %.1f", low, high)
	}
	if high < 50 {
		t.Fatalf("high-phase allocation %.1f below ramped demand 55", high)
	}
}

func TestFloorEnforcedAtZeroDemand(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.5, FloorMbps: 2})
	o.Start()
	sl, _ := o.Submit(req("idle", 40, 50, 3*time.Hour, 100), traffic.NewConstant(0, 0, nil))
	s.RunFor(time.Hour)
	if got := sl.Allocation().AllocatedMbps; got < 2 {
		t.Fatalf("allocation %.2f below floor", got)
	}
}

func TestEpochWithNoActiveSlices(t *testing.T) {
	s, o := env(t, Config{})
	o.Start()
	s.RunFor(10 * time.Minute)
	g := o.Gain()
	if g.Epochs != 10 {
		t.Fatalf("epochs %d", g.Epochs)
	}
	if _, ok := o.Store().Snapshot()["domain/ran/utilization"]; !ok {
		t.Fatal("telemetry missing on idle system")
	}
}

func TestNoViolationsChargedDuringInstall(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.5, Epoch: time.Second})
	o.Start()
	// Huge demand attached, but the slice spends ~8s installing; during
	// that window epochs must not account it.
	sl, _ := o.Submit(req("installing", 30, 50, time.Hour, 100), traffic.NewConstant(1000, 0, nil))
	s.RunFor(5 * time.Second) // still installing
	if got := sl.Accounting().ServedEpochs; got != 0 {
		t.Fatalf("epochs charged during install: %d", got)
	}
	if sl.State() != slice.StateInstalling {
		t.Fatalf("state %v", sl.State())
	}
}

func TestReconfigHysteresisSuppressesSmallMoves(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.9, ReconfigThreshold: 0.5})
	o.Start()
	// Demand wobbles mildly around 20 — within the 50%-of-contract band
	// relative to the initial squeeze, so after the first shrink there
	// should be almost no further reconfigurations.
	sl, _ := o.Submit(req("stable", 40, 50, 4*time.Hour, 100), traffic.NewConstant(20, 0.5, s.Rand()))
	s.RunFor(3 * time.Hour)
	g := o.Gain()
	if g.Reconfigurations > 3 {
		t.Fatalf("wide hysteresis produced %d reconfigurations", g.Reconfigurations)
	}
	_ = sl
}

func TestGainReportConsistency(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.9, PLMNLimit: 16})
	o.Start()
	for i := 0; i < 3; i++ {
		o.Submit(req("t", 25, 50, 2*time.Hour, 100), traffic.NewConstant(10, 0, nil))
	}
	s.RunFor(time.Hour)
	g := o.Gain()
	if g.ContractedMbps != 75 {
		t.Fatalf("contracted %.1f", g.ContractedMbps)
	}
	if g.MultiplexingGain <= 0 || g.OverbookingRatio <= 0 {
		t.Fatalf("gain %.2f ratio %.2f", g.MultiplexingGain, g.OverbookingRatio)
	}
	// Gain must equal contracted/allocated.
	want := g.ContractedMbps / g.AllocatedMbps
	if diff := g.MultiplexingGain - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("gain %.6f != contracted/allocated %.6f", g.MultiplexingGain, want)
	}
	// Net = revenue - penalties.
	if g.NetRevenueEUR != g.RevenueTotalEUR-g.PenaltyTotalEUR {
		t.Fatal("net revenue identity broken")
	}
}

func TestEpochSnapshotPublished(t *testing.T) {
	s, o := env(t, Config{Overbook: true, Risk: 0.9})
	if _, ok := o.LastEpoch(); ok {
		t.Fatal("epoch snapshot published before any epoch ran")
	}
	o.Start()
	o.Submit(req("t", 30, 50, 2*time.Hour, 50), traffic.NewConstant(10, 0, nil))
	s.RunFor(20 * time.Minute)
	snap, ok := o.LastEpoch()
	if !ok {
		t.Fatal("no epoch snapshot after 20 epochs")
	}
	if snap.Epoch != 20 {
		t.Fatalf("snapshot epoch %d, want 20", snap.Epoch)
	}
	if snap.MeasuredSlices != 1 {
		t.Fatalf("measured %d slices, want 1", snap.MeasuredSlices)
	}
	if snap.RANUtilization <= 0 {
		t.Fatalf("RAN utilization %.3f, want > 0 under load", snap.RANUtilization)
	}
	// Nothing moved since the epoch, so the snapshot must agree with the
	// live report — the documented staleness bound is "at most one epoch".
	g := o.Gain()
	if snap.Gain.Admitted != g.Admitted || snap.Gain.Active != g.Active || snap.Gain.Epochs != g.Epochs {
		t.Fatalf("snapshot gain %+v diverged from live %+v on a quiet system", snap.Gain, g)
	}
	// The snapshot is immutable: mutating the returned histogram must not
	// leak into the published copy.
	snap.Gain.RejectReasons["tampered"] = 1
	again, _ := o.LastEpoch()
	if _, ok := again.Gain.RejectReasons["tampered"]; ok {
		t.Fatal("snapshot histogram aliased between readers")
	}
}
