package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ctrl"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// faultDomain decorates a real domain through ctrl.Set.Wrap: it can fail
// Reserve or Commit on one targeted domain and records every lifecycle verb
// into a shared log so tests can assert rollback ordering.
type faultDomain struct {
	inner       ctrl.Domain
	target      string // domain name whose stage fails ("" = none)
	failReserve bool
	failCommit  bool

	mu  *sync.Mutex
	log *[]string
}

func (f *faultDomain) record(event string) {
	f.mu.Lock()
	*f.log = append(*f.log, event+":"+f.inner.Domain())
	f.mu.Unlock()
}

func (f *faultDomain) Domain() string       { return f.inner.Domain() }
func (f *faultDomain) Utilization() float64 { return f.inner.Utilization() }
func (f *faultDomain) PushTelemetry(store *monitor.Store, now time.Time) {
	f.inner.PushTelemetry(store, now)
}
func (f *faultDomain) Feasible(tx ctrl.Tx) *slice.RejectionCause { return f.inner.Feasible(tx) }
func (f *faultDomain) Resize(tx ctrl.Tx, mbps float64) (ctrl.Grant, error) {
	return f.inner.Resize(tx, mbps)
}
func (f *faultDomain) Release(id slice.ID, p slice.PLMN) {
	f.record("release")
	f.inner.Release(id, p)
}

func (f *faultDomain) Reserve(tx ctrl.Tx) (ctrl.Grant, *slice.RejectionCause) {
	if f.failReserve && f.inner.Domain() == f.target {
		f.record("fail-reserve")
		return nil, slice.Rejectf(slice.RejectOther, f.inner.Domain(), "%s: injected reserve fault", f.inner.Domain())
	}
	g, cause := f.inner.Reserve(tx)
	if cause == nil {
		f.record("reserve")
	}
	return g, cause
}

func (f *faultDomain) Commit(g ctrl.Grant) error {
	if f.failCommit && f.inner.Domain() == f.target {
		f.record("fail-commit")
		return fmt.Errorf("%s: injected commit fault", f.inner.Domain())
	}
	f.record("commit")
	return f.inner.Commit(g)
}

func (f *faultDomain) Abort(g ctrl.Grant) {
	f.record("abort")
	f.inner.Abort(g)
}

// faultEnv builds a four-domain testbed (MEC enabled) whose engine domains
// are wrapped with the fault injector.
func faultEnv(t *testing.T, target string, failReserve, failCommit bool) (*Orchestrator, *testbed.Testbed, *[]string) {
	t.Helper()
	var mu sync.Mutex
	log := &[]string{}
	tb, err := testbed.New(testbed.Config{MECHosts: 1, MECHostCPUs: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.Ctrl.Wrap = func(d ctrl.Domain) ctrl.Domain {
		return &faultDomain{inner: d, target: target, failReserve: failReserve, failCommit: failCommit, mu: &mu, log: log}
	}
	// Peak provisioning: no squeeze retries, so one injected reserve fault
	// rejects deterministically.
	o := New(Config{}, tb, sim.NewRealtimeClock(), monitor.NewStore(64))
	return o, tb, log
}

// assertPristine checks that every substrate is back at its empty baseline:
// PLMN slots, PRBs, link bandwidth, stacks/hosts, MEC apps and the capacity
// ledger — the leak check after a rolled-back installation.
func assertPristine(t *testing.T, o *Orchestrator, tb *testbed.Testbed) {
	t.Helper()
	if avail := o.plmns.Available(); avail != o.cfg.PLMNLimit {
		t.Fatalf("PLMN slots leaked: %d available, want %d", avail, o.cfg.PLMNLimit)
	}
	for _, e := range tb.RAN.All() {
		if e.FreePRBs() != e.TotalPRBs() {
			t.Fatalf("PRBs leaked on %s: %d free of %d", e.Name(), e.FreePRBs(), e.TotalPRBs())
		}
	}
	if mean, _ := tb.Transport.Utilization(); mean != 0 {
		t.Fatalf("transport bandwidth leaked: utilization %g", mean)
	}
	for _, dc := range tb.Region.All() {
		if c := dc.Capacity(); c.Stacks != 0 || c.VMs != 0 || c.UsedVCPUs != 0 {
			t.Fatalf("cloud leaked in %s: %+v", dc.Name(), c)
		}
	}
	if tb.MEC != nil {
		if c := tb.MEC.Capacity(); c.Apps != 0 || c.UsedCPUs != 0 {
			t.Fatalf("MEC apps leaked: %+v", c)
		}
	}
	if load := o.ledger.Load(); load != 0 {
		t.Fatalf("capacity ledger leaked %g Mbps", load)
	}
}

// abortsOf filters the event log down to the abort sequence.
func abortsOf(log []string) []string {
	var out []string
	for _, e := range log {
		if strings.HasPrefix(e, "abort:") {
			out = append(out, strings.TrimPrefix(e, "abort:"))
		}
	}
	return out
}

// TestInstallFaultInjectionRollsBackInReverse fails each domain's reserve
// and commit stage in turn through a generic Domain wrapper and asserts
// that (i) the submission converts to a rejection, (ii) rollback aborts the
// granted domains in exact reverse acquisition order, and (iii) nothing
// leaks: PLMN slots, PRBs, link bandwidth, hosts/stacks, MEC apps and
// capacity-ledger entries all return to baseline.
func TestInstallFaultInjectionRollsBackInReverse(t *testing.T) {
	// Logical acquisition order is chain (ran, transport) then the
	// concurrent group in registration order (cloud, mec).
	order := []string{"ran", "transport", "cloud", "mec"}
	granted := func(failing string, stage string) []string {
		if stage == "commit" {
			return order // everything reserved before the first commit
		}
		var g []string
		for _, d := range order {
			if d == failing {
				// Chain domains after the failing one never reserve;
				// concurrent-group domains always do.
				if d == "ran" || d == "transport" {
					continue
				}
				continue
			}
			if failing == "ran" && d == "transport" {
				continue // chain stops at the first failure
			}
			g = append(g, d)
		}
		return g
	}
	reverse := func(xs []string) []string {
		out := make([]string, len(xs))
		for i, x := range xs {
			out[len(xs)-1-i] = x
		}
		return out
	}

	for _, stage := range []string{"reserve", "commit"} {
		for _, target := range order {
			t.Run(stage+"/"+target, func(t *testing.T) {
				o, tb, log := faultEnv(t, target, stage == "reserve", stage == "commit")
				sl, err := o.Submit(req("fault", 20, 50, time.Hour, 50), nil)
				if err != nil {
					t.Fatal(err)
				}
				if sl.State() != slice.StateRejected {
					t.Fatalf("state %v, want rejected", sl.State())
				}
				cause, ok := sl.Cause()
				if !ok || !errors.Is(&cause, slice.RejectOther) {
					t.Fatalf("cause %+v (ok %v)", cause, ok)
				}
				want := reverse(granted(target, stage))
				if got := abortsOf(*log); !equalStrings(got, want) {
					t.Fatalf("abort order %v, want %v (log %v)", got, want, *log)
				}
				assertPristine(t, o, tb)
			})
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMECDomainThroughGenericEngine proves the pluggable fourth domain:
// with MECHosts enabled, a slice's edge app is placed at install, resized by
// the overbooking loop, released at teardown and rolled back on rejection —
// all through the generic engine, never through MEC-specific core code.
func TestMECDomainThroughGenericEngine(t *testing.T) {
	s := sim.NewSimulator(3)
	tb, err := testbed.New(testbed.Config{MECHosts: 1, MECHostCPUs: 4}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))

	// 40 Mbps → 2-CPU app on the 4-CPU pool.
	sl, err := o.Submit(req("edge-app", 40, 50, time.Hour, 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sl.State() == slice.StateRejected {
		t.Fatalf("rejected: %s", sl.Reason())
	}
	alloc := sl.Allocation()
	if alloc.MECAppID != string(sl.ID())+"/app" {
		t.Fatalf("MEC app not recorded in allocation: %+v", alloc)
	}
	app, ok := tb.MEC.App(alloc.MECAppID)
	if !ok || app.CPU != 2 {
		t.Fatalf("app %+v (ok %v)", app, ok)
	}

	// The overbooking squeeze resizes the app with the slice.
	s.RunFor(15 * time.Second) // activate
	if err := o.RecordDemand(sl.ID(), 5); err != nil {
		t.Fatal(err)
	}
	o.RunEpoch()
	o.RunEpoch() // second epoch: forecast has observations, resize fires
	if app, _ := tb.MEC.App(alloc.MECAppID); app.CPU != 1 {
		t.Fatalf("app CPU %v after squeeze, want 1 (alloc %.1f Mbps)", app.CPU, sl.Allocation().AllocatedMbps)
	}

	// A second big slice cannot fit the remaining MEC CPUs: typed
	// mec-capacity rejection from the admission dry run.
	big, err := o.Submit(req("too-big", 80, 50, time.Hour, 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := big.Cause(); c.Code != slice.RejectMECCapacity {
		t.Fatalf("cause %+v, want mec-capacity", c)
	}

	// Teardown releases the app.
	if err := o.Delete(sl.ID()); err != nil {
		t.Fatal(err)
	}
	if u := tb.MEC.Utilization(); u != 0 {
		t.Fatalf("MEC utilization %g after teardown", u)
	}
}

// TestMECRestorationKeepsApp drives a link failure with the MEC domain
// registered: restoration re-routes the transport paths while the edge app
// stays placed — the restore path runs through the same generic surface.
func TestMECRestorationKeepsApp(t *testing.T) {
	s := sim.NewSimulator(4)
	tb, err := testbed.New(testbed.Config{MECHosts: 1, MECHostCPUs: 8, RedundantTransport: true}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{}, tb, s, monitor.NewStore(256))
	sl, err := o.Submit(req("resilient", 20, 50, time.Hour, 50), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)
	if sl.State() != slice.StateActive {
		t.Fatalf("state %v: %s", sl.State(), sl.Reason())
	}
	rep, err := o.HandleLinkFailure(testbed.ENBName(0), testbed.Switch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 || len(rep.Dropped) != 0 {
		t.Fatalf("report %+v", rep)
	}
	if _, ok := tb.MEC.App(sl.Allocation().MECAppID); !ok {
		t.Fatal("edge app lost during transport restoration")
	}
}
