package core

import (
	"repro/internal/slice"
)

// Server-side dry-run (DESIGN.md §13): the full admission/feasibility chain
// of admit() evaluated against the live capacity ledger and domain
// controllers without reserving anything, burning an ID, or publishing an
// event. The intent plane uses it to answer "would this template admit
// right now?" for a tenant before committing a fleet instantiation.
//
// Mutation-freedom is structural, not incidental: admit()'s radio check is a
// TryReserve-then-Release round trip, and float addition is not exactly
// invertible — replaying that round trip from a probe would perturb the
// ledger's bit pattern and break bit-identical replay. The dry-run therefore
// reads the ledger once (Load) and compares, and the per-domain feasibility
// scan reuses feasibleAll, which is a pure dry run by construction (it backs
// the memoized fast-reject path). TestDryRunIsolation pins the contract:
// a dry-run burst racing live admissions leaves ledger bits and the event
// sequence untouched.

// DryRunReport is the outcome of one mutation-free admission probe.
type DryRunReport struct {
	// Feasible is the headline verdict: the request would have been
	// admitted at the instant of the probe.
	Feasible bool `json:"feasible"`
	// RejectCode/Detail carry the typed rejection the live path would have
	// returned (empty when feasible).
	RejectCode slice.RejectCode `json:"reject_code,omitempty"`
	Detail     string           `json:"detail,omitempty"`
	// DataCenter is the placement the live path would have chosen.
	DataCenter string `json:"data_center,omitempty"`
	// EstimatedLoadMbps is the radio load admission would charge (the
	// overbooking estimate, or the full contract at peak provisioning).
	EstimatedLoadMbps float64 `json:"estimated_load_mbps"`
	// LedgerLoadMbps / CapacityMbps are the live ledger reading and the
	// cap-scaled radio capacity the headroom check ran against.
	LedgerLoadMbps float64 `json:"ledger_load_mbps"`
	CapacityMbps   float64 `json:"capacity_mbps"`
}

// DryRun evaluates the full admission chain for the request — revenue
// policy, penalty-aware pricing, PLMN availability, overbooking-aware radio
// headroom, and the per-domain feasibility scan with placement choice —
// without mutating any state: no ledger reservation, no slice ID, no event.
// The verdict is advisory: it is exact at the instant of the probe, but a
// concurrent admission can consume the headroom before a follow-up Submit.
// Safe for concurrent use from any number of goroutines.
func (o *Orchestrator) DryRun(req slice.Request) (DryRunReport, error) {
	if err := req.Validate(); err != nil {
		return DryRunReport{}, err
	}
	sla := req.SLA
	rep := DryRunReport{
		EstimatedLoadMbps: o.admissionEstimate(sla),
		CapacityMbps:      o.radioCapacityMbps() * o.cfg.UtilizationCap,
		LedgerLoadMbps:    o.ledger.Load(),
	}
	fail := func(c *slice.RejectionCause) (DryRunReport, error) {
		rep.RejectCode = c.Code
		rep.Detail = c.Detail
		return rep, nil
	}

	// The checks mirror admit() in order, so a dry-run rejection carries the
	// same typed cause the live path would.
	if o.cfg.MinRevenueDensity > 0 {
		density := sla.PriceEUR / (sla.ThroughputMbps * sla.Duration.Hours())
		if density < o.cfg.MinRevenueDensity {
			return fail(slice.Rejectf(slice.RejectRevenuePolicy, "",
				"revenue density %.3f EUR/(Mbps·h) below policy %.3f", density, o.cfg.MinRevenueDensity))
		}
	}
	if o.cfg.PenaltyAware {
		if expected := o.expectedPenaltyEUR(sla); expected >= sla.PriceEUR {
			return fail(slice.Rejectf(slice.RejectRevenuePolicy, "",
				"revenue: expected penalty %.2f EUR >= price %.2f EUR at risk %.2f",
				expected, sla.PriceEUR, o.cfg.effectiveRisk()))
		}
	}
	if o.plmns.Available() == 0 {
		return fail(slice.Rejectf(slice.RejectPLMNExhausted, "", "PLMN broadcast list full"))
	}
	// Radio headroom: the same bound TryReserve enforces, evaluated by
	// comparison instead of reservation.
	if rep.LedgerLoadMbps+rep.EstimatedLoadMbps > rep.CapacityMbps {
		return fail(slice.Rejectf(slice.RejectRadioCapacity, "ran",
			"radio capacity: estimated load %.1f+%.1f Mbps exceeds %.1f",
			rep.LedgerLoadMbps, rep.EstimatedLoadMbps, rep.CapacityMbps))
	}
	dc, cause := o.chooseDataCenter(sla)
	if cause != nil {
		return fail(cause)
	}
	rep.Feasible = true
	rep.DataCenter = dc
	return rep, nil
}
