package core

import (
	"sync"

	"repro/internal/ctrl"
	"repro/internal/slice"
)

// safeReserve runs d.Reserve, converting a panic (a double-release bug, a
// corrupted substrate, a misbehaving pluggable domain) into a typed
// RejectInternal cause: the transaction fails and rolls back through the
// normal rejection path instead of crashing the orchestrator mid-install.
func safeReserve(d ctrl.Domain, tx ctrl.Tx) (g ctrl.Grant, cause *slice.RejectionCause) {
	defer func() {
		if r := recover(); r != nil {
			g = nil
			cause = slice.Rejectf(slice.RejectInternal, d.Domain(), "%s: panic in reserve: %v", d.Domain(), r)
		}
	}()
	return d.Reserve(tx)
}

// safeCommit is safeReserve for phase two. The returned error carries a
// typed cause so commitGrants' classification preserves RejectInternal.
func safeCommit(d ctrl.Domain, g ctrl.Grant) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = slice.Rejectf(slice.RejectInternal, d.Domain(), "%s: panic in commit: %v", d.Domain(), r)
		}
	}()
	return d.Commit(g)
}

// safeAbort swallows a panic from one domain's rollback so the reverse-order
// unwind always reaches every remaining grant — a partial rollback would
// leak everything behind the panicking domain.
func safeAbort(d ctrl.Domain, g ctrl.Grant) {
	defer func() { _ = recover() }()
	d.Abort(g)
}

// This file is the generic multi-domain two-phase transaction engine: the
// one place that knows how to reserve, commit, abort, resize and release a
// slice across an ordered chain of domains. It drives every domain through
// the uniform ctrl.Domain surface and never branches on domain identity —
// adding a domain (see the MEC controller) changes the testbed's
// registration, not this file.
//
// Execution plan (from ctrl.Set):
//
//   - The *chain* (radio → transport) runs sequentially; each stage is
//     sized to the previous grant's effective throughput, so transport
//     paths always match what the radio actually granted.
//   - The *concurrent group* (cloud vEPC, MEC apps, any Extra domain) is
//     independent of the chain, so it reserves in parallel with it — the
//     per-request domain parallelism of the original hand-rolled install —
//     and joins in registration order, keeping rejection precedence
//     deterministic regardless of goroutine scheduling.
//
// Rollback is reverse acquisition order, automatic, on any failure: a
// reserve or commit failure aborts every grant taken so far (concurrent
// group first, then the chain backwards), and the caller releases the PLMN
// and capacity-ledger entry it acquired before the transaction.

// txEngine is the orchestrator's compiled execution plan.
type txEngine struct {
	chain []ctrl.Domain // sequential, throughput-threaded
	async []ctrl.Domain // independent of the chain, joined in order
	all   []ctrl.Domain // chain then async — the logical acquisition order
	// fixedLatencyMs sums the fixed processing contributions of every
	// registered domain (ctrl.LatencyContributor — a capability query,
	// not an identity branch); the engine deducts it from every latency
	// budget it hands out.
	fixedLatencyMs float64
	// recycle enables returning grants to the ctrl pools at the engine's
	// exclusive-ownership points. It is off when a Wrap decoration is
	// installed: a decorator (chaos, tracing) may legitimately retain grant
	// references past abort/commit, and recycling a retained grant would let
	// its single-shot abort latch fire against an unrelated slice.
	recycle bool
}

func newTxEngine(set ctrl.Set) txEngine {
	chain, async := set.Chain(), set.Async()
	all := make([]ctrl.Domain, 0, len(chain)+len(async))
	all = append(all, chain...)
	all = append(all, async...)
	e := txEngine{chain: chain, async: async, all: all, recycle: set.Wrap == nil}
	for _, d := range all {
		if lc, ok := d.(ctrl.LatencyContributor); ok {
			e.fixedLatencyMs += lc.ProcessingLatencyMs()
		}
	}
	return e
}

// latencyBudget is the latency budget handed to every domain: the SLA bound
// minus the vEPC user-plane processing share and every registered domain's
// fixed processing contribution.
func (o *Orchestrator) latencyBudget(sla slice.SLA) float64 {
	return sla.MaxLatencyMs - epcProcMs - o.domains.fixedLatencyMs
}

// domainGrant pairs a grant with its owning domain so rollback never needs
// to rediscover who granted what.
type domainGrant struct {
	d ctrl.Domain
	g ctrl.Grant
}

// grantsPool recycles the per-transaction grant list (install and resize
// both build one per request on the hot path). The pool stores slice
// pointers so a Put never re-allocates the header.
var grantsPool = sync.Pool{New: func() any {
	s := make([]domainGrant, 0, 8)
	return &s
}}

func getGrants() *[]domainGrant { return grantsPool.Get().(*[]domainGrant) }

// putGrants clears and returns the grant list to the pool. The caller must
// have recycled or abandoned the grants themselves first.
func putGrants(gs *[]domainGrant) {
	for i := range *gs {
		(*gs)[i] = domainGrant{}
	}
	*gs = (*gs)[:0]
	grantsPool.Put(gs)
}

// recycleGrants hands every grant back to the ctrl pools — callable only at
// points where the engine provably holds the last reference (after a full
// commit+apply, or after a reverse-order abort) and only when no Wrap
// decoration could have retained a grant (txEngine.recycle).
func (o *Orchestrator) recycleGrants(gs []domainGrant) {
	if !o.domains.recycle {
		return
	}
	for i := range gs {
		if gs[i].g != nil {
			ctrl.RecycleGrant(gs[i].g)
			gs[i].g = nil
		}
	}
}

// abortGrants rolls back in reverse acquisition order. Each abort is
// panic-contained (safeAbort): one misbehaving domain must not strand the
// grants behind it.
func abortGrants(grants []domainGrant) {
	for i := len(grants) - 1; i >= 0; i-- {
		safeAbort(grants[i].d, grants[i].g)
	}
}

// reserveAll runs phase one of the install transaction across the chain and
// the concurrent group. On success the returned (pooled) grant list is in
// logical acquisition order (chain, then concurrent group in registration
// order) and the caller must hand it back via putGrants; on failure
// everything already granted has been aborted in reverse order and the first
// failure (chain before concurrent group, both in registration order) is
// returned.
//
// The caller holds sh.mu. When the head of the chain — the bottleneck
// domain the overbooking budget governs — cannot fit the request at face
// value and overbooking is on, running slices are first squeezed down to
// their forecast-provisioned sizes and the stage retried, then retried once
// more at the admission estimate (fallbackMbps): "allocated network slices
// might be dynamically re-configured (overbooked) to accommodate new slice
// requests" (Section 3). The squeeze locks every shard, so the caller's
// shard lock is released around it (the newcomer is unpublished; nothing
// observes the gap) and re-acquired before retrying.
func (o *Orchestrator) reserveAll(sh *shard, tx ctrl.Tx, fallbackMbps float64) (*[]domainGrant, *slice.RejectionCause) {
	// The concurrent group reserves inline at its dispatch point. It used to
	// run on per-request goroutines overlapping the chain; the group's
	// substrates (cloud compute, MEC pool) are disjoint from the chain's
	// (radio, transport), and the old join always completed before the
	// squeeze and before any failure handling, so "group first, then chain"
	// is one legal schedule of that concurrent program — outcomes are
	// bit-identical — without the goroutine+channel cost on every install.
	type asyncResult struct {
		g     ctrl.Grant
		cause *slice.RejectionCause
	}
	var joinedBuf [4]asyncResult
	joined := joinedBuf[:0]
	for _, d := range o.domains.async {
		// tx goes by value: concurrent-group domains size off the contract
		// while the chain loop below threads effective throughput through
		// its own copy.
		g, cause := safeReserve(d, tx)
		joined = append(joined, asyncResult{g, cause})
	}

	gs := getGrants()
	var failure *slice.RejectionCause
	for i, d := range o.domains.chain {
		g, cause := safeReserve(d, tx)
		if cause != nil && i == 0 && o.cfg.effectiveRisk() < 0.9995 {
			sh.mu.Unlock()
			o.squeezeAll()
			sh.mu.Lock()
			g, cause = safeReserve(d, tx)
			if cause != nil && fallbackMbps < tx.Mbps {
				// Last resort: install at the admission estimate; the
				// epoch loop will grow it when capacity frees up.
				fb := tx
				fb.Mbps = fallbackMbps
				g, cause = safeReserve(d, fb)
			}
		}
		if cause != nil {
			failure = cause
			break
		}
		*gs = append(*gs, domainGrant{d: d, g: g})
		if m := g.EffectiveMbps(); m > 0 {
			tx.Mbps = m
		}
	}

	// Fold in the concurrent group in registration order. A chain failure
	// outranks any concurrent-group failure (matching the order of the
	// admission checks); among the group, the first registered wins.
	for i, res := range joined {
		switch {
		case res.cause == nil:
			*gs = append(*gs, domainGrant{d: o.domains.async[i], g: res.g})
		case failure == nil:
			failure = res.cause
		}
	}
	if failure != nil {
		abortGrants(*gs)
		o.recycleGrants(*gs)
		putGrants(gs)
		return nil, failure
	}
	return gs, nil
}

// commitGrants runs phase two in acquisition order. A failing commit aborts
// every grant in reverse order (domains must accept Abort after Commit).
func commitGrants(grants []domainGrant) *slice.RejectionCause {
	for _, dg := range grants {
		if err := safeCommit(dg.d, dg.g); err != nil {
			abortGrants(grants)
			return slice.CauseOf(err, slice.RejectOther, dg.d.Domain())
		}
	}
	return nil
}

// releaseAll frees every domain's resources for the slice in reverse
// acquisition order. Domain Release is idempotent, so teardown paths may
// call this regardless of how far installation got.
func (o *Orchestrator) releaseAll(id slice.ID, p slice.PLMN) {
	for i := len(o.domains.all) - 1; i >= 0; i-- {
		o.domains.all[i].Release(id, p)
	}
}

// resizeAll applies a new throughput across every domain in acquisition
// order, threading each grant's effective throughput into the next stage
// exactly like installation does. On any failure the already-resized
// domains are restored to prev in reverse order and false is returned; on
// success the returned (pooled) grant list (entries may hold nil grants)
// records the allocation changes for the caller to apply and then return
// via putGrants.
func (o *Orchestrator) resizeAll(tx ctrl.Tx, target, prev float64) (*[]domainGrant, bool) {
	gs := getGrants()
	carried := target
	for i, d := range o.domains.all {
		g, err := d.Resize(tx, carried)
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				rg, rerr := o.domains.all[j].Resize(tx, prev)
				if rerr == nil && rg != nil && o.domains.recycle {
					ctrl.RecycleGrant(rg) // restoration grants are never applied
				}
			}
			putGrants(gs)
			return nil, false
		}
		*gs = append(*gs, domainGrant{d: d, g: g})
		if g != nil {
			if m := g.EffectiveMbps(); m > 0 {
				carried = m
			}
		}
	}
	return gs, true
}
