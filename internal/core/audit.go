package core

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/slice"
	"repro/internal/traffic"
)

// This file wires the cross-domain invariant auditor (internal/invariant)
// through the orchestrator. With Config.Audit enabled the core proves, at
// every epoch barrier and on every transaction commit/rollback, that its
// books stay exact:
//
//   - every published lifecycle event is observed synchronously from the
//     bus (events.go tap), so sequence gap-freeness and per-slice state
//     legality are checked in publication order;
//   - every install rollback and teardown is followed by a scoped leak
//     check (no ID-keyed resource of the slice survives in any substrate),
//     and every successful install by the mirror-image presence check;
//   - the epoch's telemetry barrier — and every whole-registry restoration
//     pass — ends with a full conservation sweep under all shard locks:
//     substrate books vs ground truth, capacity ledger vs the sum of live
//     entries, substrate holdings vs live slices.
//
// Install transactions that release their shard lock around the overbooking
// squeeze hold resources while being registered nowhere; the pending-ID set
// below exempts exactly those from leak checks, so auditing stays exact
// under full concurrency (see DESIGN.md §8 for the determinism argument).

// auditObserveEvent is the synchronous bus tap (called under the bus mutex,
// in sequence order).
func (o *Orchestrator) auditObserveEvent(ev Event) {
	o.audit.ObserveEvent(ev.Seq, ev.Slice, string(ev.Type), ev.State)
}

// auditPendingBegin marks the slice's install transaction in flight. The
// returned func clears the mark; callers defer it around the whole
// submission so the squeeze window (shard lock released mid-install) never
// reads as a leak.
func (o *Orchestrator) auditPendingBegin(id slice.ID) func() {
	if o.audit == nil {
		return func() {}
	}
	o.pendingTx.Store(id, struct{}{})
	return func() { o.pendingTx.Delete(id) }
}

// auditSliceReleased runs the scoped rollback/teardown leak check. Safe to
// call with or without shard locks held (it reads only the internally
// synchronized substrates).
func (o *Orchestrator) auditSliceReleased(id slice.ID) {
	if o.audit == nil {
		return
	}
	o.audit.CheckSliceReleased(o.tb, id)
}

// auditSliceInstalled runs the scoped post-commit presence check.
func (o *Orchestrator) auditSliceInstalled(m *managedSlice) {
	if o.audit == nil {
		return
	}
	alloc := m.s.Allocation()
	o.audit.CheckSliceInstalled(o.tb, invariant.SliceView{
		ID:       m.s.ID(),
		State:    m.s.State().String(),
		PLMN:     alloc.PLMN,
		PathIDs:  alloc.PathIDs,
		StackID:  alloc.StackID,
		EPCID:    alloc.EPCID,
		MECAppID: alloc.MECAppID,
		DC:       alloc.DataCenter,
	})
}

// auditSweepAllLocked runs the full conservation/leak sweep. The caller
// holds every shard lock (epoch barrier, restoration passes), so the
// registry cut is consistent and no install transaction is mid-flight
// except those in the pending set.
func (o *Orchestrator) auditSweepAllLocked() {
	if o.audit == nil {
		return
	}
	var views []invariant.SliceView
	for _, sh := range o.shards {
		for _, m := range sh.slices {
			alloc := m.s.Allocation()
			views = append(views, invariant.SliceView{
				ID:         m.s.ID(),
				State:      m.s.State().String(),
				LedgerMbps: m.ledgerMbps,
				PLMN:       alloc.PLMN,
				PathIDs:    alloc.PathIDs,
				StackID:    alloc.StackID,
				EPCID:      alloc.EPCID,
				MECAppID:   alloc.MECAppID,
				DC:         alloc.DataCenter,
			})
		}
	}
	owners := make(map[slice.PLMN]slice.ID)
	for _, p := range o.plmns.InUse() {
		if id, ok := o.plmns.Owner(p); ok {
			owners[p] = id
		}
	}
	pending := make(map[slice.ID]bool)
	o.pendingTx.Range(func(k, _ any) bool {
		pending[k.(slice.ID)] = true
		return true
	})
	o.audit.Sweep(invariant.SweepInput{
		TB:         o.tb,
		Slices:     views,
		LedgerLoad: o.ledger.Load(),
		PLMNOwners: owners,
		Pending:    pending,
	})
}

// Auditor returns the invariant auditor when Config.Audit is enabled, nil
// otherwise. Tests and chaos scenarios read violations from it; it never
// alters orchestrator behavior.
func (o *Orchestrator) Auditor() *invariant.Auditor { return o.audit }

// AuditSweep runs one full conservation/leak sweep immediately, outside the
// epoch barrier. The crash-recovery harness calls it right after Recover to
// prove the rebuilt state keeps the books exact. No-op without Config.Audit.
func (o *Orchestrator) AuditSweep() {
	if o.audit == nil {
		return
	}
	o.epochMu.Lock()
	defer o.epochMu.Unlock()
	o.lockAll()
	defer o.unlockAll()
	o.auditSweepAllLocked()
}

// WrapDemand atomically replaces the slice's simulated demand process with
// wrap(current). Chaos timelines use it to overlay flash crowds or other
// adversarial load shapes on a running slice; the wrapped process is
// sampled from the next epoch on. The current process may be nil (live-mode
// slices fed via RecordDemand); wrap may return nil to detach the process
// again.
func (o *Orchestrator) WrapDemand(id slice.ID, wrap func(traffic.Demand) traffic.Demand) error {
	if wrap == nil {
		return fmt.Errorf("core: WrapDemand needs a wrapper")
	}
	sh := o.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.slices[id]
	if !ok {
		return fmt.Errorf("core: unknown slice %s", id)
	}
	m.demand = wrap(m.demand)
	return nil
}
