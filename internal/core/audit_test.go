package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ctrl"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// auditEnv builds a four-domain simulated orchestrator with the invariant
// auditor attached.
func auditEnv(t *testing.T, cfg Config) (*Orchestrator, *testbed.Testbed, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(7)
	tb, err := testbed.New(testbed.Config{MECHosts: 1, MECHostCPUs: 16, RedundantTransport: true}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Audit = true
	o := New(cfg, tb, s, monitor.NewStore(256))
	return o, tb, s
}

// TestAuditCleanUnderFullLifecycle drives every lifecycle path — install,
// epochs with resizes, tenant delete, link failure with restoration, expiry
// — with the auditor attached and asserts not a single invariant tripped
// while the sweeps and event checks demonstrably ran.
func TestAuditCleanUnderFullLifecycle(t *testing.T) {
	o, _, s := auditEnv(t, Config{Overbook: true, Risk: 0.9, Epoch: time.Minute})
	o.Start()
	defer o.Stop()

	var ids []slice.ID
	for i := 0; i < 4; i++ {
		sl, err := o.Submit(req("tenant", 20, 50, 30*time.Minute, 50), nil)
		if err != nil {
			t.Fatal(err)
		}
		if sl.State() == slice.StateRejected {
			t.Fatalf("unexpected rejection: %s", sl.Reason())
		}
		ids = append(ids, sl.ID())
	}
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := o.RecordDemand(id, 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := o.HandleLinkFailure(testbed.ENBName(0), testbed.Switch); err != nil {
		t.Fatal(err)
	}
	if err := o.RestoreLink(testbed.ENBName(0), testbed.Switch); err != nil {
		t.Fatal(err)
	}
	// Run past every remaining expiry.
	if err := s.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}

	a := o.Auditor()
	if a == nil {
		t.Fatal("auditor not attached")
	}
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Sweeps < 10 || st.Events < 10 {
		t.Fatalf("auditor barely ran: %+v", st)
	}
}

// TestAuditDetectsSeededLeak plants an orphan resource behind the
// orchestrator's back and asserts the next epoch sweep flags it.
func TestAuditDetectsSeededLeak(t *testing.T) {
	o, tb, _ := auditEnv(t, Config{})
	if _, err := tb.MEC.Place("ghost/app", "ghost", 1); err != nil {
		t.Fatal(err)
	}
	o.RunEpoch()
	found := false
	for _, v := range o.Auditor().Violations() {
		if v.Check == "leak" {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan app not flagged: %v", o.Auditor().Violations())
	}
}

// TestAuditDetectsCookedLedger corrupts the capacity ledger and asserts the
// sweep reports the drift.
func TestAuditDetectsCookedLedger(t *testing.T) {
	o, _, _ := auditEnv(t, Config{})
	o.ledger.Release(-25) // inject 25 Mbps of phantom load
	o.RunEpoch()
	found := false
	for _, v := range o.Auditor().Violations() {
		if v.Check == "ledger" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ledger drift not flagged: %v", o.Auditor().Violations())
	}
}

// TestFaultInjectorRollbackAuditClean arms reserve and commit faults on
// every domain through the first-class ctrl.FaultInjector capability and
// asserts (i) the submission rejects with the typed fault-injected code,
// (ii) nothing leaks (engine assertPristine plus the invariant auditor's
// scoped and sweep checks stay clean).
func TestFaultInjectorRollbackAuditClean(t *testing.T) {
	domains := func(tb *testbed.Testbed) map[string]ctrl.Controller {
		return map[string]ctrl.Controller{
			"ran":       tb.Ctrl.RAN,
			"transport": tb.Ctrl.Transport,
			"cloud":     tb.Ctrl.Cloud,
			"mec":       tb.Ctrl.Extra[0],
		}
	}
	for _, stage := range []ctrl.FaultStage{ctrl.FaultReserve, ctrl.FaultCommit} {
		for _, name := range []string{"ran", "transport", "cloud", "mec"} {
			t.Run(stage.String()+"/"+name, func(t *testing.T) {
				o, tb, _ := auditEnv(t, Config{})
				fi, ok := ctrl.Injector(domains(tb)[name])
				if !ok {
					t.Fatalf("%s does not implement FaultInjector", name)
				}
				fi.InjectFault(ctrl.Fault{Stage: stage, Remaining: 1})
				sl, err := o.Submit(req("chaos", 20, 50, time.Hour, 50), nil)
				if err != nil {
					t.Fatal(err)
				}
				if sl.State() != slice.StateRejected {
					t.Fatalf("state %v, want rejected", sl.State())
				}
				cause, ok := sl.Cause()
				if !ok || !errors.Is(&cause, slice.RejectFaultInjected) {
					t.Fatalf("cause %+v (ok %v), want fault-injected", cause, ok)
				}
				assertPristine(t, o, tb)
				o.RunEpoch() // full sweep over the rolled-back state
				if err := o.Auditor().Err(); err != nil {
					t.Fatal(err)
				}
				// The fault disarmed itself (Remaining: 1): the next
				// submission must succeed.
				sl2, err := o.Submit(req("chaos", 20, 50, time.Hour, 50), nil)
				if err != nil {
					t.Fatal(err)
				}
				if sl2.State() == slice.StateRejected {
					t.Fatalf("post-fault submission rejected: %s", sl2.Reason())
				}
			})
		}
	}
}

// panicDomain decorates a Domain to panic in a chosen verb — the
// double-release / substrate-corruption stand-in.
type panicDomain struct {
	inner   ctrl.Domain
	target  string
	reserve bool
	commit  bool
}

func (p *panicDomain) Domain() string       { return p.inner.Domain() }
func (p *panicDomain) Utilization() float64 { return p.inner.Utilization() }
func (p *panicDomain) PushTelemetry(store *monitor.Store, now time.Time) {
	p.inner.PushTelemetry(store, now)
}
func (p *panicDomain) Feasible(tx ctrl.Tx) *slice.RejectionCause { return p.inner.Feasible(tx) }
func (p *panicDomain) Resize(tx ctrl.Tx, mbps float64) (ctrl.Grant, error) {
	return p.inner.Resize(tx, mbps)
}
func (p *panicDomain) Release(id slice.ID, pl slice.PLMN) { p.inner.Release(id, pl) }
func (p *panicDomain) Abort(g ctrl.Grant)                 { p.inner.Abort(g) }

func (p *panicDomain) Reserve(tx ctrl.Tx) (ctrl.Grant, *slice.RejectionCause) {
	if p.reserve && p.inner.Domain() == p.target {
		panic("injected reserve panic")
	}
	return p.inner.Reserve(tx)
}

func (p *panicDomain) Commit(g ctrl.Grant) error {
	if p.commit && p.inner.Domain() == p.target {
		panic("injected commit panic")
	}
	return p.inner.Commit(g)
}

// TestDomainPanicBecomesTypedRejection proves the engine converts a domain
// panic into a typed internal rejection with full rollback instead of
// crashing: for each domain and stage, the submission rejects with
// RejectInternal and the substrates return to baseline.
func TestDomainPanicBecomesTypedRejection(t *testing.T) {
	for _, stage := range []string{"reserve", "commit"} {
		for _, target := range []string{"ran", "transport", "cloud", "mec"} {
			t.Run(stage+"/"+target, func(t *testing.T) {
				tb, err := testbed.New(testbed.Config{MECHosts: 1, MECHostCPUs: 16}, nil)
				if err != nil {
					t.Fatal(err)
				}
				tb.Ctrl.Wrap = func(d ctrl.Domain) ctrl.Domain {
					return &panicDomain{inner: d, target: target,
						reserve: stage == "reserve", commit: stage == "commit"}
				}
				o := New(Config{Audit: true}, tb, sim.NewRealtimeClock(), monitor.NewStore(64))
				sl, err := o.Submit(req("panicky", 20, 50, time.Hour, 50), nil)
				if err != nil {
					t.Fatal(err)
				}
				if sl.State() != slice.StateRejected {
					t.Fatalf("state %v, want rejected", sl.State())
				}
				cause, ok := sl.Cause()
				if !ok || !errors.Is(&cause, slice.RejectInternal) {
					t.Fatalf("cause %+v (ok %v), want internal", cause, ok)
				}
				assertPristine(t, o, tb)
				if err := o.Auditor().Err(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAbortIsSingleShot proves the PLMN-recycling hazard is closed: a grant
// aborted twice releases its radio reservation exactly once, so a new
// owner's PRBs survive a stale second abort.
func TestAbortIsSingleShot(t *testing.T) {
	tb, err := testbed.New(testbed.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := slice.PLMN{MCC: "001", MNC: "01"}
	tx := ctrl.Tx{Slice: "s-1", PLMN: p, Mbps: 20,
		SLA: slice.SLA{ThroughputMbps: 20, MaxLatencyMs: 50, Duration: time.Hour, Class: slice.ClassEMBB}}
	g, cause := tb.Ctrl.RAN.Reserve(tx)
	if cause != nil {
		t.Fatal(cause)
	}
	tb.Ctrl.RAN.Abort(g)
	// The PLMN slot is recycled by a second slice.
	tx2 := tx
	tx2.Slice = "s-2"
	g2, cause := tb.Ctrl.RAN.Reserve(tx2)
	if cause != nil {
		t.Fatal(cause)
	}
	// A stale duplicate abort of the first grant must not free s-2's PRBs.
	tb.Ctrl.RAN.Abort(g)
	for _, e := range tb.RAN.All() {
		if _, ok := e.Reservation(p); !ok {
			t.Fatalf("stale double-abort released the recycled PLMN on %s", e.Name())
		}
	}
	tb.Ctrl.RAN.Abort(g2)
}

// TestWrapDemandOverlay proves the chaos demand hook: wrapping a live
// slice's demand changes what the next epoch samples.
func TestWrapDemandOverlay(t *testing.T) {
	o, _, s := auditEnv(t, Config{})
	sl, err := o.Submit(req("wrap", 20, 50, time.Hour, 50), traffic.NewConstant(5, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := o.WrapDemand(sl.ID(), func(d traffic.Demand) traffic.Demand {
		return traffic.NewConstant(17, 0, nil)
	}); err != nil {
		t.Fatal(err)
	}
	o.RunEpoch()
	if got := sl.Snapshot().Accounting.DemandMbps; got != 17 {
		t.Fatalf("sampled demand %v after wrap, want 17", got)
	}
	if err := o.WrapDemand("no-such-slice", func(d traffic.Demand) traffic.Demand { return d }); err == nil {
		t.Fatal("WrapDemand on unknown slice did not error")
	}
	if err := o.Auditor().Err(); err != nil {
		t.Fatal(err)
	}
}
