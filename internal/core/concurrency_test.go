package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// concurrentEnv builds a wall-clock orchestrator over a testbed large
// enough that many small slices are in flight at once.
func concurrentEnv(t *testing.T, shards int) *Orchestrator {
	t.Helper()
	tb, err := testbed.New(testbed.Config{
		ENBs:      4,
		MaxPLMNs:  512,
		CoreHosts: 16,
		EdgeHosts: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           512,
		Shards:              shards,
		HistoryLimit:        64,
	}, tb, sim.NewRealtimeClock(), monitor.NewStore(256))
}

func smallReq(tenant string) slice.Request {
	return slice.Request{
		Tenant: tenant,
		SLA: slice.SLA{
			ThroughputMbps: 2,
			MaxLatencyMs:   50,
			Duration:       time.Hour,
			PriceEUR:       10,
			PenaltyEUR:     1,
		},
	}
}

// TestConcurrentAdmitTeardownEpochRollover drives parallel admissions,
// demand recording and teardowns across tenants while epoch rollovers,
// gain/list reads and transport restoration passes run concurrently — the
// workload the sharded engine exists for. Run with -race; the final
// invariants catch leaked reservations and lost counter updates.
func TestConcurrentAdmitTeardownEpochRollover(t *testing.T) {
	o := concurrentEnv(t, 8)

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	var admittedIDs []slice.ID
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sl, err := o.Submit(smallReq(fmt.Sprintf("tenant-%d-%d", w, i)), nil)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if sl.State() == slice.StateRejected {
					continue
				}
				// The flapper may terminate-and-evict the slice first, so
				// "unknown slice" is a legitimate outcome here too.
				if err := o.RecordDemand(sl.ID(), 1); err != nil &&
					!strings.Contains(err.Error(), "unknown") {
					t.Errorf("record demand: %v", err)
				}
				// Tear half down immediately; the rest die at the end.
				// The concurrent link-flapper may beat us to it ("already
				// terminated"), and the bounded history may then evict the
				// corpse ("unknown slice") — both are legitimate races.
				if i%2 == 0 {
					if err := o.Delete(sl.ID()); err != nil &&
						!strings.Contains(err.Error(), "already") &&
						!strings.Contains(err.Error(), "unknown") {
						t.Errorf("delete: %v", err)
					}
				} else {
					mu.Lock()
					admittedIDs = append(admittedIDs, sl.ID())
					mu.Unlock()
				}
			}
		}(w)
	}

	// Concurrent epoch rollovers and whole-registry reads.
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				o.RunEpoch()
				o.Gain()
				o.List()
				o.ActiveCount()
			}
		}
	}()
	// Concurrent link flapping exercises the restoration pass.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if _, err := o.HandleLinkFailure(testbed.ENBName(0), testbed.Switch); err != nil {
					t.Errorf("link failure: %v", err)
					return
				}
				if err := o.RestoreLink(testbed.ENBName(0), testbed.Switch); err != nil {
					t.Errorf("restore link: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	bg.Wait()

	// Every submission is accounted exactly once.
	g := o.Gain()
	if got := g.Admitted + g.Rejected; got != workers*perWorker {
		t.Fatalf("admitted %d + rejected %d = %d, want %d", g.Admitted, g.Rejected, got, workers*perWorker)
	}

	// Tear the survivors down (link flapping may already have dropped
	// some); afterwards every domain must be empty and the capacity
	// ledger drained — any leak means a lost two-phase release.
	for _, id := range admittedIDs {
		if sl, ok := o.Get(id); ok && sl.State() != slice.StateTerminated {
			if err := o.Delete(id); err != nil {
				t.Fatalf("final delete %s: %v", id, err)
			}
		}
	}
	// Bandwidth bookkeeping is float add/subtract in reroute order, so an
	// empty network may carry ~1e-16 residue; anything larger is a leak.
	const eps = 1e-9
	if u := o.tb.Ctrl.RAN.Utilization(); u != 0 {
		t.Fatalf("RAN utilization %.4f after teardown", u)
	}
	if u := o.tb.Ctrl.Cloud.Utilization(); u != 0 {
		t.Fatalf("cloud utilization %.4f after teardown", u)
	}
	if mean, _ := o.tb.Transport.Utilization(); math.Abs(mean) > eps {
		t.Fatalf("transport utilization %g after teardown", mean)
	}
	if load := o.ledger.Load(); math.Abs(load) > eps {
		t.Fatalf("capacity ledger holds %g Mbps after teardown", load)
	}
}

// TestShardCountDoesNotChangeOutcomes runs the same deterministic simulated
// workload at 1 and 16 shards and requires identical results: sharding is
// a contention optimization, not a policy change.
func TestShardCountDoesNotChangeOutcomes(t *testing.T) {
	run := func(shards int) GainReport {
		s := sim.NewSimulator(7)
		tb, err := testbed.New(testbed.Default(), s.Rand())
		if err != nil {
			t.Fatal(err)
		}
		o := New(Config{Overbook: true, Risk: 0.9, Shards: shards}, tb, s, monitor.NewStore(512))
		o.Start()
		for i := 0; i < 8; i++ {
			if _, err := o.Submit(req(fmt.Sprintf("t%d", i), 25, 50, 2*time.Hour, 40),
				traffic.NewConstant(8, 0.5, s.Rand())); err != nil {
				t.Fatal(err)
			}
			s.RunFor(10 * time.Minute)
		}
		s.RunFor(time.Hour)
		return o.Gain()
	}
	one, sixteen := run(1), run(16)
	if !reflect.DeepEqual(one, sixteen) {
		t.Fatalf("shard count changed outcomes:\n 1 shard: %+v\n16 shards: %+v", one, sixteen)
	}
}

// TestConcurrentSubmitSqueeze forces the squeeze path (radio full at face
// value) from parallel submissions: the shard-lock release/re-acquire dance
// around the whole-registry squeeze must not deadlock or leak.
func TestConcurrentSubmitSqueeze(t *testing.T) {
	tb, err := testbed.New(testbed.Config{MaxPLMNs: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := New(Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.2,
		PLMNLimit:           64,
		Shards:              4,
	}, tb, sim.NewRealtimeClock(), monitor.NewStore(256))

	// ~103 Mbps capacity: 12 × 20 Mbps contracts oversubscribe it, so
	// later installs must squeeze earlier ones down to their estimates.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				r := smallReq(fmt.Sprintf("squeeze-%d-%d", w, i))
				r.SLA.ThroughputMbps = 20
				if _, err := o.Submit(r, nil); err != nil {
					t.Errorf("submit: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	g := o.Gain()
	if g.Admitted+g.Rejected != 12 {
		t.Fatalf("accounted %d of 12 submissions", g.Admitted+g.Rejected)
	}
	if g.Admitted < 2 {
		t.Fatalf("only %d admitted; squeeze path not effective", g.Admitted)
	}
}

// TestConcurrentSubmitDeleteWatchDuringEpochs hammers the phase-pipelined
// epoch: back-to-back RunEpoch passes (serial head, parallel per-shard
// analysis, ordered commit, snapshot publish) run while workers submit,
// record demand and delete slices and a Watch subscriber drains the ordered
// event stream. Run with -race; the final invariants catch lost counter
// updates and a stale or inconsistent published snapshot.
func TestConcurrentSubmitDeleteWatchDuringEpochs(t *testing.T) {
	o := concurrentEnv(t, 16)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := o.Watch(ctx, WatchOptions{Since: -1, Buffer: 1024})
	var consumed atomic.Int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range events {
			consumed.Add(1)
		}
	}()

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sl, err := o.Submit(smallReq(fmt.Sprintf("epoch-churn-%d-%d", w, i)), nil)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if sl.State() == slice.StateRejected {
					continue
				}
				if err := o.RecordDemand(sl.ID(), 1); err != nil &&
					!strings.Contains(err.Error(), "unknown") {
					t.Errorf("record demand: %v", err)
				}
				if i%2 == 0 {
					if err := o.Delete(sl.ID()); err != nil &&
						!strings.Contains(err.Error(), "already") &&
						!strings.Contains(err.Error(), "unknown") {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}(w)
	}

	// Back-to-back epochs plus the lock-free read plane, concurrently.
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				o.RunEpoch()
				o.LastEpoch()
				o.Gain()
				o.ActiveCount()
				if _, err := o.ListFiltered(ListOptions{State: "active", Limit: 16}); err != nil {
					t.Errorf("list filtered: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	bg.Wait()
	o.RunEpoch() // one quiet epoch so the snapshot reflects the final state

	g := o.Gain()
	if got := g.Admitted + g.Rejected; got != workers*perWorker {
		t.Fatalf("admitted %d + rejected %d = %d, want %d", g.Admitted, g.Rejected, got, workers*perWorker)
	}
	snap, ok := o.LastEpoch()
	if !ok {
		t.Fatal("no epoch snapshot published")
	}
	if snap.Gain.Admitted != g.Admitted || snap.Gain.Rejected != g.Rejected {
		t.Fatalf("quiet snapshot %d/%d diverged from live %d/%d",
			snap.Gain.Admitted, snap.Gain.Rejected, g.Admitted, g.Rejected)
	}
	cancel()
	<-drained
	if consumed.Load() == 0 {
		t.Fatal("watch subscriber saw no events")
	}
}
