package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/slice"
)

// This file implements the partitioning layer of the concurrent admission
// engine (DESIGN.md §3.4): the slice registry is split into a power-of-two
// number of shards, keyed by an FNV-1a hash of the slice ID, so independent
// tenants' admissions, installs and teardowns serialize only against their
// own shard. Whole-registry passes — the serial head of the control epoch,
// restoration after link failures, the squeeze that shrinks running slices
// for a newcomer — first take the orchestrator's epochMu (serializing those
// passes against each other and against the epoch's phase pipeline) and
// then acquire every shard lock in index order (lockAll), which is
// deadlock-free because single-shard paths never hold more than one shard
// lock at a time. See DESIGN.md §7 for the full phase/locking contract.
//
// The global overbooking budget lives outside the shards in a capacity
// ledger: admission performs a two-phase reservation (reserve the estimated
// load atomically, commit it to the slice's bookkeeping on install success,
// release it on any failure or teardown), so the radio capacity check needs
// no cross-shard iteration on the hot path.

// shard is one partition of the orchestrator's slice registry. Its mutex
// guards the maps and the managedSlice bookkeeping of every slice hashed to
// it. The cumulative counters are atomics so the read plane (Gain,
// ActiveCount, the dashboard) sums them without taking any shard lock;
// writers update them while holding the shard lock (or, for the epoch's
// violation pass, from the single ordered-commit goroutine), so each
// counter is monotone and exact.
type shard struct {
	mu        sync.Mutex
	slices    map[slice.ID]*managedSlice
	timelines map[slice.ID]*InstallTimeline

	// Cumulative counters for the demonstration dashboard; Gain aggregates
	// them across shards. Order-sensitive float aggregates (money, live
	// Mbps totals) live in the global gainAccumulator instead — see
	// gain.go for the split's rationale.
	admitted         atomic.Int64
	rejected         atomic.Int64
	violations       atomic.Int64
	reconfigurations atomic.Int64
	// active counts slices currently in StateActive or StateReconfiguring
	// (incremented on activation, decremented on teardown from either
	// state).
	active atomic.Int64
}

func newShard() *shard {
	return &shard{
		slices:    make(map[slice.ID]*managedSlice),
		timelines: make(map[slice.ID]*InstallTimeline),
	}
}

// shardFor maps a slice ID onto its shard (FNV-1a inlined: this runs on
// every per-slice operation, and hash/fnv would allocate its hasher each
// call).
func (o *Orchestrator) shardFor(id slice.ID) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return o.shards[h&o.shardMask]
}

// lockAll acquires every shard lock in index order. Paired with unlockAll.
// Only whole-registry passes use it — the epoch's serial collection phase,
// the squeeze, restoration — and all of them hold epochMu first; per-slice
// paths lock exactly one shard, so the index order makes deadlock
// impossible. The read plane (Gain, ActiveCount, List) no longer uses it.
func (o *Orchestrator) lockAll() {
	for _, sh := range o.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases every shard lock (reverse order).
func (o *Orchestrator) unlockAll() {
	for i := len(o.shards) - 1; i >= 0; i-- {
		o.shards[i].mu.Unlock()
	}
}

// orderedSlicesAllLocked returns every managed slice across all shards
// sorted by submission sequence. Caller must hold all shard locks. Every
// loop that samples randomness, resizes reservations or sums floating-point
// loads must use this order so that runs are bit-reproducible under a fixed
// seed (map and shard iteration order are not).
func (o *Orchestrator) orderedSlicesAllLocked() []*managedSlice {
	n := 0
	for _, sh := range o.shards {
		n += len(sh.slices)
	}
	out := make([]*managedSlice, 0, n)
	for _, sh := range o.shards {
		for _, m := range sh.slices {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return seqOf(out[i].s.ID()) < seqOf(out[j].s.ID()) })
	return out
}

// lookupAllLocked finds the managed slice by ID. Caller holds all shard
// locks (restoration paths).
func (o *Orchestrator) lookupAllLocked(id slice.ID) (*managedSlice, bool) {
	m, ok := o.shardFor(id).slices[id]
	return m, ok
}

// capacityLedger is the shared radio overbooking budget: the running sum of
// every live slice's estimated load (the forecast provisioning target once
// observed, the a-priori admission estimate before). Admission reserves
// against it in one atomic step — phase one of the two-phase reservation —
// and installation failure or teardown releases it, so concurrent admissions
// on different shards never oversell the same capacity.
type capacityLedger struct {
	mu   sync.Mutex
	load float64
}

// Load returns the current estimated radio load in Mbps.
func (l *capacityLedger) Load() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load
}

// TryReserve atomically adds mbps if the total stays within limit. It
// returns whether the reservation was taken and the load seen at decision
// time (for the rejection message).
func (l *capacityLedger) TryReserve(mbps, limit float64) (bool, float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.load+mbps > limit {
		return false, l.load
	}
	l.load += mbps
	return true, l.load
}

// Release subtracts a previously reserved load.
func (l *capacityLedger) Release(mbps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.load -= mbps
	if l.load < 0 {
		l.load = 0
	}
}

// Update replaces a slice's ledger entry (epoch reprovisioning).
func (l *capacityLedger) Update(old, new float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.load += new - old
	if l.load < 0 {
		l.load = 0
	}
}

// finishedHistory bounds how many finished (terminated/rejected) slices the
// registry retains, globally across shards, so a long-running daemon stays
// flat. It orders entries by submission sequence — the oldest finished
// slices are evicted first, exactly the pre-sharding pruning policy.
type finishedHistory struct {
	mu    sync.Mutex
	limit int
	ids   []slice.ID // ascending submission sequence
}

// Push records a newly finished slice and returns the IDs evicted beyond the
// limit. The caller deletes those from their shards — after releasing its
// own shard lock (dropFinished) or directly when it already holds every
// shard lock (dropFinishedAllLocked); Push itself takes only the history
// mutex, so it is safe under any shard lock.
func (h *finishedHistory) Push(id slice.ID) []slice.ID {
	h.mu.Lock()
	defer h.mu.Unlock()
	seq := seqOf(id)
	i := sort.Search(len(h.ids), func(i int) bool { return seqOf(h.ids[i]) >= seq })
	h.ids = append(h.ids, "")
	copy(h.ids[i+1:], h.ids[i:])
	h.ids[i] = id
	excess := len(h.ids) - h.limit
	if excess <= 0 {
		return nil
	}
	evicted := append([]slice.ID(nil), h.ids[:excess]...)
	h.ids = append(h.ids[:0], h.ids[excess:]...)
	return evicted
}

// dropFinished deletes evicted finished slices from their shards, locking
// one shard at a time. Callers must hold no shard lock.
func (o *Orchestrator) dropFinished(ids []slice.ID) {
	for _, id := range ids {
		sh := o.shardFor(id)
		sh.mu.Lock()
		delete(sh.slices, id)
		delete(sh.timelines, id)
		sh.mu.Unlock()
	}
}

// dropFinishedAllLocked is dropFinished for callers already holding every
// shard lock (restoration passes).
func (o *Orchestrator) dropFinishedAllLocked(ids []slice.ID) {
	for _, id := range ids {
		sh := o.shardFor(id)
		delete(sh.slices, id)
		delete(sh.timelines, id)
	}
}
