package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/slice"
	"repro/internal/traffic"
	"repro/internal/wal"
)

// nastyStrings exercises every escaping branch of appendJSONString:
// HTML-escaped bytes, control characters, quotes and backslashes,
// invalid UTF-8, U+2028/U+2029, and multi-byte runes.
var nastyStrings = []string{
	"",
	"plain",
	`quo"te and back\slash`,
	"<html> & 'friends'",
	"tab\there\nnewline\rcr",
	"ctrl\x00\x01\x1f\x7fbytes",
	"bad utf8 \xff\xfe tail \xc3",
	"line sep   para sep   done",
	"ünïcødé — 网络切片 🛰",
	"trailing backslash \\",
}

var nastyFloats = []float64{
	0, 1, -1, 0.1, -0.1, 123.456, 1e-6, 9.9e-7, 1e-7, 1e20, 1e21, 2.5e22,
	-1e300, 3.14159265358979, 1.0000000000000002, 42,
}

var nastyTimes = []time.Time{
	{}, // zero time: omitempty on a struct never fires, so it must serialize
	time.Date(2026, 8, 8, 12, 30, 45, 0, time.UTC),
	time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.UTC),
	time.Date(2026, 8, 8, 12, 30, 45, 120000000, time.FixedZone("CET", 3600)),
	time.Date(1999, 1, 1, 0, 0, 0, 1, time.UTC),
}

func randString(rng *rand.Rand) string {
	return nastyStrings[rng.Intn(len(nastyStrings))]
}

func randFloat(rng *rand.Rand) float64 {
	return nastyFloats[rng.Intn(len(nastyFloats))]
}

func randTime(rng *rand.Rand) time.Time {
	return nastyTimes[rng.Intn(len(nastyTimes))]
}

func randEvent(rng *rand.Rand) Event {
	return Event{
		Seq:        rng.Int63n(1 << 40),
		Time:       randTime(rng),
		Type:       EventType(randString(rng)),
		Slice:      slice.ID(randString(rng)),
		Tenant:     randString(rng),
		State:      randString(rng),
		RejectCode: slice.RejectCode(randString(rng)),
		Mbps:       randFloat(rng),
		Link:       randString(rng),
		Detail:     randString(rng),
	}
}

func randEvents(rng *rand.Rand) []Event {
	switch rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return []Event{}
	default:
		evs := make([]Event, rng.Intn(4)+1)
		for i := range evs {
			evs[i] = randEvent(rng)
		}
		return evs
	}
}

func randAllocation(rng *rand.Rand) slice.Allocation {
	a := slice.Allocation{
		AllocatedMbps: randFloat(rng),
		PathLatencyMs: randFloat(rng),
		DataCenter:    randString(rng),
		StackID:       randString(rng),
		EPCID:         randString(rng),
		MECAppID:      randString(rng),
		PLMN:          slice.PLMN{MCC: randString(rng), MNC: randString(rng)},
	}
	switch rng.Intn(3) {
	case 0: // nil map / nil slice → null
	case 1:
		a.PRBs = map[string]int{}
		a.PathIDs = []string{}
	default:
		a.PRBs = map[string]int{"enb-0": rng.Intn(100), "enb-1": -3, "a": 0, "zz": 7}
		a.PathIDs = []string{randString(rng), randString(rng)}
	}
	return a
}

func randPersisted(rng *rand.Rand) slice.Persisted {
	p := slice.Persisted{
		ID: slice.ID(randString(rng)),
		Request: slice.Request{
			Tenant: randString(rng),
			SLA: slice.SLA{
				ThroughputMbps: randFloat(rng),
				MaxLatencyMs:   randFloat(rng),
				Duration:       time.Duration(rng.Int63n(int64(2 * time.Hour))),
				PriceEUR:       randFloat(rng),
				PenaltyEUR:     randFloat(rng),
				Class:          slice.ServiceClass(rng.Intn(3)),
				EdgeCompute:    rng.Intn(2) == 0,
			},
			Arrival: randTime(rng),
		},
		State:   slice.State(rng.Intn(6)),
		Reason:  randString(rng),
		Created: randTime(rng),
		Starts:  randTime(rng),
		Expires: randTime(rng),

		Allocation: randAllocation(rng),
	}
	if rng.Intn(2) == 0 {
		p.Cause = &slice.RejectionCause{
			Code:   slice.RejectCode(randString(rng)),
			Domain: randString(rng),
			Detail: randString(rng),
		}
	}
	if rng.Intn(2) == 0 {
		p.ViolationEpochs = rng.Intn(3)
		p.ServedEpochs = rng.Intn(3)
		p.PenaltyEUR = randFloat(rng)
		p.DemandMbps = randFloat(rng)
		p.ServedMbps = randFloat(rng)
	}
	return p
}

func randAdmitRecord(rng *rand.Rand) admitRecord {
	r := admitRecord{
		Slice:        randPersisted(rng),
		ReservedMbps: randFloat(rng),
		MECHost:      randString(rng),
		MECCPU:       randFloat(rng),
		SubmittedAt:  randTime(rng),
		ActivateAt:   randTime(rng),
		Events:       randEvents(rng),
	}
	switch rng.Intn(3) {
	case 0: // nil → omitted
	case 1:
		r.Paths = []pathRecord{} // empty → also omitted by omitempty
	default:
		r.Paths = make([]pathRecord, rng.Intn(3)+1)
		for i := range r.Paths {
			r.Paths[i] = pathRecord{
				ID:      randString(rng),
				Hops:    []string{randString(rng), randString(rng)},
				Mbps:    randFloat(rng),
				DelayMs: randFloat(rng),
			}
			if rng.Intn(3) == 0 {
				r.Paths[i].Hops = nil
			}
		}
	}
	return r
}

// TestFastRecordEncodersMatchEncodingJSON pins the hand-rolled hot-path
// encoders byte-for-byte to encoding/json across adversarial strings,
// floats, times, and nil/empty/populated container shapes. The WAL format
// is the json.Marshal output; this test is what lets marshalRecord swap
// encoders without a format migration.
func TestFastRecordEncodersMatchEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(9)) // deterministic: failures must reproduce

	check := func(t *testing.T, payload any) {
		t.Helper()
		want, err := json.Marshal(payload)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got, err := marshalRecord(payload)
		if err != nil {
			t.Fatalf("marshalRecord: %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("encoder mismatch for %#v\n got: %s\nwant: %s", payload, got, want)
		}
	}

	t.Run("strings", func(t *testing.T) {
		for _, s := range nastyStrings {
			check(t, teardownRecord{Slice: slice.ID(s), Reason: s})
		}
	})
	t.Run("floats", func(t *testing.T) {
		for _, f := range nastyFloats {
			r := admitRecord{ReservedMbps: f, MECCPU: f}
			r.Slice.Allocation.AllocatedMbps = f
			r.Slice.Request.SLA.PriceEUR = f
			check(t, r)
		}
	})
	t.Run("times", func(t *testing.T) {
		for _, tm := range nastyTimes {
			r := admitRecord{SubmittedAt: tm, ActivateAt: tm}
			r.Slice.Created = tm
			r.Slice.Starts = tm
			r.Slice.Request.Arrival = tm
			check(t, r)
			check(t, teardownRecord{Events: []Event{{Time: tm}}})
		}
	})
	t.Run("zero_values", func(t *testing.T) {
		check(t, admitRecord{})
		check(t, teardownRecord{})
	})
	t.Run("randomized", func(t *testing.T) {
		for i := 0; i < 2000; i++ {
			check(t, randAdmitRecord(rng))
			check(t, teardownRecord{
				Slice:  slice.ID(randString(rng)),
				Reason: randString(rng),
				Events: randEvents(rng),
			})
		}
	})
}

// TestFastRecordEncoderLiveStream re-encodes every record a live durable
// orchestrator wrote and asserts each admit/teardown payload round-trips
// through the fast encoder identically — the integration-level version of
// the unit equivalence test above.
func TestFastRecordEncoderLiveStream(t *testing.T) {
	dir := t.TempDir()
	_, o, w := durableEnv(t, Config{Overbook: true, Risk: 0.9, PLMNLimit: 32}, dir)
	for i := 0; i < 8; i++ {
		s, err := o.Submit(req(fmt.Sprintf("tenant-%d", i), 20, 50, time.Hour, 100),
			traffic.NewConstant(12, 0, nil))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if s.State() == slice.StateRejected {
			t.Fatalf("slice %d rejected: %s", i, s.Reason())
		}
		if i%2 == 0 {
			if err := o.Delete(s.ID()); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
	}
	o.Shutdown()
	if err := w.Close(); err != nil {
		t.Fatalf("close wal: %v", err)
	}

	rec, err := wal.Load(dir)
	if err != nil {
		t.Fatalf("load wal: %v", err)
	}
	checked := 0
	for _, rec := range rec.Records {
		var payload any
		switch rec.Type {
		case recAdmit:
			var r admitRecord
			if err := json.Unmarshal(rec.Payload, &r); err != nil {
				t.Fatalf("decode admit: %v", err)
			}
			payload = r
		case recTeardown:
			var r teardownRecord
			if err := json.Unmarshal(rec.Payload, &r); err != nil {
				t.Fatalf("decode teardown: %v", err)
			}
			payload = r
		default:
			continue
		}
		// The live payload was produced by the fast encoder; json.Marshal of
		// the decoded image must reproduce it (omitempty boundaries included).
		want, err := json.Marshal(payload)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		got, err := marshalRecord(payload)
		if err != nil {
			t.Fatalf("marshalRecord: %v", err)
		}
		if string(got) != string(want) || string(got) != string(rec.Payload) {
			t.Fatalf("live record seq %d diverged\n  wal: %s\n fast: %s\n json: %s",
				rec.Seq, rec.Payload, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no admit/teardown records found in live WAL")
	}
}
