package core

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/slice"
)

// RunEpoch executes one pass of the Fig. 1 closed loop:
//
//  1. collect information about network utilization — sample every active
//     slice's offered load;
//  2. real-time monitoring — run the cell schedulers, measure delivered
//     throughput, charge SLA violations;
//  3. data analysis and feature extraction — feed the per-slice
//     forecasters with the new demand sample;
//  4. resource allocation optimization — compute each slice's new
//     provisioning target (forecast + risk margin, capped by contract);
//  5. automatic configuration of network elements — resize radio and
//     transport reservations where the target moved beyond hysteresis.
//
// It also pushes all telemetry and the gain/penalty dashboard series, and
// rolls the per-slice capacity-ledger entries forward to the new
// provisioning targets so subsequent admissions see the refreshed budget.
//
// The epoch is the cross-shard rollover of the sharded engine: it takes
// every shard lock (index order), so it serializes against all in-flight
// admissions and teardowns — a brief stop-the-world pass, matching the
// paper's single periodic reconfiguration point.
func (o *Orchestrator) RunEpoch() {
	o.lockAll()
	defer o.unlockAll()
	now := o.clock.Now()
	o.epochs.Add(1)

	// Stage 1: demand collection, in submission order (the sampling draws
	// from the shared RNG, so order is part of determinism).
	demands := make(map[slice.PLMN]float64)
	var active []*managedSlice
	for _, m := range o.orderedSlicesAllLocked() {
		if m.s.State() != slice.StateActive {
			continue
		}
		if m.demand != nil {
			m.lastDemand = m.demand.Sample(now)
			m.haveDemand = true
		}
		if !m.haveDemand {
			continue
		}
		demands[m.s.Allocation().PLMN] = m.lastDemand
		active = append(active, m)
	}

	// Stage 2: schedule the epoch and account violations.
	served, ranUtil := o.tb.Ctrl.RAN.ScheduleEpoch(demands, o.cfg.ShareUnusedPRBs)
	for _, m := range active {
		plmn := m.s.Allocation().PLMN
		got := served[plmn]
		if m.s.RecordEpoch(m.lastDemand, got) {
			m.sh.violationsTotal++
			m.sh.penaltyTotalEUR += m.s.SLA().PenaltyEUR
			o.publish(EventViolation, m.s,
				fmt.Sprintf("served %.1f of %.1f Mbps demanded", got, m.lastDemand))
		}
		id := string(m.s.ID())
		o.store.Record(monitor.SliceMetric(id, "demand_mbps"), now, m.lastDemand)
		o.store.Record(monitor.SliceMetric(id, "served_mbps"), now, got)
	}

	// Stages 3–5: forecast, optimize, reconfigure; roll the ledger entry
	// forward to the new provisioning target.
	for _, m := range active {
		m.prov.Observe(m.lastDemand)
		target := m.prov.Provision(m.s.SLA().ThroughputMbps)
		o.resizeLocked(m, target)
		o.ledger.Update(m.ledgerMbps, target)
		m.ledgerMbps = target
		o.store.Record(monitor.SliceMetric(string(m.s.ID()), "allocated_mbps"), now, m.s.Allocation().AllocatedMbps)
	}

	// Telemetry.
	o.tb.Ctrl.PushTelemetry(o.store, now)
	o.store.Record("orchestrator/ran_epoch_utilization", now, ranUtil)
	g := o.gainAllLocked()
	o.store.Record("orchestrator/overbooking_ratio", now, g.OverbookingRatio)
	o.store.Record("orchestrator/multiplexing_gain", now, g.MultiplexingGain)
	o.store.Record("orchestrator/penalties_eur", now, g.PenaltyTotalEUR)
	o.store.Record("orchestrator/net_revenue_eur", now, g.NetRevenueEUR)
	o.store.Record("orchestrator/active_slices", now, float64(len(active)))
}

// GainReport is the dashboard's "current gains vs. penalties" panel plus
// the admission counters.
type GainReport struct {
	// CapacityMbps is the physical radio capacity at mean CQI.
	CapacityMbps float64 `json:"capacity_mbps"`
	// ContractedMbps sums the SLAs of live (installing or active) slices.
	ContractedMbps float64 `json:"contracted_mbps"`
	// AllocatedMbps sums the current (possibly shrunk) reservations.
	AllocatedMbps float64 `json:"allocated_mbps"`
	// OverbookingRatio is ContractedMbps / CapacityMbps: above 1 the
	// operator has sold more than it physically owns.
	OverbookingRatio float64 `json:"overbooking_ratio"`
	// MultiplexingGain is ContractedMbps / AllocatedMbps: how much SLA
	// each reserved Mbps carries (1.0 without overbooking).
	MultiplexingGain float64 `json:"multiplexing_gain"`
	// Admission counters.
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Active   int `json:"active"`
	// RejectReasons histograms rejection causes (experiment D6).
	RejectReasons map[string]int `json:"reject_reasons"`
	// Money (the gains-vs-penalties trade-off of Section 3).
	RevenueTotalEUR float64 `json:"revenue_total_eur"`
	PenaltyTotalEUR float64 `json:"penalty_total_eur"`
	NetRevenueEUR   float64 `json:"net_revenue_eur"`
	// ViolationEpochs counts SLA-violation epochs across all slices.
	ViolationEpochs int `json:"violation_epochs"`
	// Reconfigurations counts overbooking resizes applied.
	Reconfigurations int `json:"reconfigurations"`
	// Epochs counts control-loop passes.
	Epochs int `json:"epochs"`
}

// Gain returns the current gain/penalty report, atomic across shards.
func (o *Orchestrator) Gain() GainReport {
	o.lockAll()
	defer o.unlockAll()
	return o.gainAllLocked()
}

// gainAllLocked aggregates the shard counters and live-slice totals. Caller
// holds every shard lock.
func (o *Orchestrator) gainAllLocked() GainReport {
	g := GainReport{
		CapacityMbps:  o.tb.RadioCapacityMbps(),
		Epochs:        int(o.epochs.Load()),
		RejectReasons: make(map[string]int),
	}
	for _, sh := range o.shards {
		g.Admitted += sh.admitted
		g.Rejected += sh.rejected
		g.RevenueTotalEUR += sh.revenueTotalEUR
		g.PenaltyTotalEUR += sh.penaltyTotalEUR
		g.ViolationEpochs += sh.violationsTotal
		g.Reconfigurations += sh.reconfigurations
		for k, v := range sh.rejectReasons {
			g.RejectReasons[k] += v
		}
	}
	for _, m := range o.orderedSlicesAllLocked() {
		switch m.s.State() {
		case slice.StateActive, slice.StateReconfiguring:
			g.Active++
			fallthrough
		case slice.StateAdmitted, slice.StateInstalling:
			g.ContractedMbps += m.s.SLA().ThroughputMbps
			g.AllocatedMbps += m.s.Allocation().AllocatedMbps
		}
	}
	if g.CapacityMbps > 0 {
		g.OverbookingRatio = g.ContractedMbps / g.CapacityMbps
	}
	if g.AllocatedMbps > 0 {
		g.MultiplexingGain = g.ContractedMbps / g.AllocatedMbps
	}
	g.NetRevenueEUR = g.RevenueTotalEUR - g.PenaltyTotalEUR
	return g
}
