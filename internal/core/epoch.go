package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/slice"
)

// This file is the phase-pipelined control epoch — the Fig. 1 closed loop
// (monitor → analyze → optimize → reconfigure) restructured so its cost no
// longer means freezing the whole sharded engine (DESIGN.md §7):
//
//	P1  collect   serial, all shard locks: sample every active slice's
//	              offered load in submission order. The sampling draws from
//	              the shared simulation RNG, so this order is part of the
//	              fixed-seed determinism contract and must stay serial.
//	P2  schedule  serial, all shard locks: one global RAN.ScheduleEpoch
//	              pass over the collected demand (the cell scheduler and
//	              its CQI draw are genuinely global).
//	P3  analyze   parallel, one worker per shard, each holding only its
//	              own shard lock: per-slice violation detection
//	              (RecordEpoch), forecaster update, provisioning target —
//	              the embarrassingly parallel per-slice pipeline of the
//	              companion forecasting paper [4] — plus the shard's
//	              demand/served telemetry flushed as one batch.
//	P3c commit    serial, submission order, one shard lock at a time:
//	              charge and publish SLA violations, then apply resizes
//	              through the transaction engine and roll the capacity
//	              ledger forward. Everything order-sensitive (domain
//	              mutations, ledger float additions, event sequence)
//	              happens here, in exactly the order the pre-pipeline
//	              epoch performed it — the determinism argument is that
//	              P3 computes only per-slice values, and every shared-
//	              state mutation is confined to the serial phases.
//	P4  publish   telemetry barrier: flush the remaining batches, fold the
//	              gain report and atomically publish the EpochSnapshot the
//	              read plane serves from.
//
// Between P2's unlock and each commit step, per-slice operations on other
// shards (admissions, teardowns, watches) proceed concurrently; the epoch
// re-checks slice liveness under the shard lock before touching it. Whole-
// registry passes (squeeze, restoration) cannot interleave: RunEpoch holds
// epochMu for the duration.

// sliceSeriesCapacity bounds the per-slice telemetry rings. Orchestrator-
// level and domain series keep the store's default capacity; per-slice
// rings are the ones that multiply by the slice count, and a bounded
// dashboard window is all they serve.
const sliceSeriesCapacity = 512

// epochItem carries one active slice through the epoch pipeline. The serial
// phases fill plmn/demand/served; the slice's shard worker fills live,
// violated and target.
type epochItem struct {
	m        *managedSlice
	plmn     slice.PLMN
	demand   float64
	served   float64
	live     bool // still Active when its shard worker reached it
	violated bool
	target   float64
	// WAL capture (persist.go): whether the commit phase actually charged
	// the violation and rolled the ledger, and to what value.
	charged       bool
	ledgerUpdated bool
	ledgerTo      float64
}

// RunEpoch executes one pass of the Fig. 1 closed loop:
//
//  1. collect information about network utilization — sample every active
//     slice's offered load;
//  2. real-time monitoring — run the cell schedulers, measure delivered
//     throughput, charge SLA violations;
//  3. data analysis and feature extraction — feed the per-slice
//     forecasters with the new demand sample;
//  4. resource allocation optimization — compute each slice's new
//     provisioning target (forecast + risk margin, capped by contract);
//  5. automatic configuration of network elements — resize radio and
//     transport reservations where the target moved beyond hysteresis.
//
// It also pushes all telemetry, rolls the per-slice capacity-ledger entries
// forward to the new provisioning targets, and publishes the epoch's
// outcome as an atomically swapped EpochSnapshot.
//
// Steps 1–2 are the serial head (phases P1/P2, under every shard lock in
// index order — the only remaining stop-the-world window, and it is O(n)
// cheap). Steps 3–4 run in parallel shard workers (P3); step 5 and all
// other shared-state mutations commit serially in submission order (P3c),
// so a fixed-seed run is bit-identical at any shard count. See the file
// comment for the full phase/locking contract.
func (o *Orchestrator) RunEpoch() {
	o.runEpoch()
	// The durability boundary: fsync the epoch's records with no lock held
	// (test sinks read the state digest from inside Committed).
	o.commitPersist()
}

// runEpoch is RunEpoch's body; it holds epochMu for the duration and leaves
// the WAL commit to the caller.
func (o *Orchestrator) runEpoch() {
	o.epochMu.Lock()
	defer o.epochMu.Unlock()
	now := o.clock.Now()
	o.epochs.Add(1)

	// P1: demand collection, in submission order (the sampling draws from
	// the shared RNG, so order is part of determinism).
	o.lockAll()
	ordered := o.orderedSlicesAllLocked()
	items := make([]epochItem, 0, len(ordered))
	demands := make(map[slice.PLMN]float64, len(ordered))
	for _, m := range ordered {
		if m.s.State() != slice.StateActive {
			continue
		}
		if m.demand != nil {
			m.lastDemand = m.demand.Sample(now)
			m.haveDemand = true
		}
		if !m.haveDemand {
			continue
		}
		plmn := m.s.Allocation().PLMN
		demands[plmn] = m.lastDemand
		items = append(items, epochItem{m: m, plmn: plmn, demand: m.lastDemand})
	}

	// P2: the global cell-scheduler pass and its violation inputs.
	served, ranUtil := o.tb.Ctrl.RAN.ScheduleEpoch(demands, o.cfg.ShareUnusedPRBs)
	for i := range items {
		items[i].served = served[items[i].plmn]
	}
	o.unlockAll()

	// P3: per-shard parallel monitor/analyze/optimize workers.
	o.analyzePhase(now, items)

	// P3c: ordered commit. First charge and publish every SLA violation in
	// submission order, each under its shard lock so a concurrent Delete
	// serializes against the charge — a slice torn down since P3 is
	// dropped, never billed or announced after its EventDeleted...
	var epochEvents []Event
	for i := range items {
		it := &items[i]
		if !it.violated {
			continue
		}
		m := it.m
		m.sh.mu.Lock()
		if m.s.State() == slice.StateActive {
			m.sh.violations.Add(1)
			o.acc.penalty(m.s.SLA().PenaltyEUR)
			ev := o.publish(EventViolation, m.s,
				fmt.Sprintf("served %.1f of %.1f Mbps demanded", it.served, it.demand))
			it.charged = true
			epochEvents = append(epochEvents, ev)
		}
		m.sh.mu.Unlock()
	}
	// ...then apply reconfigurations and roll the ledger forward, still in
	// submission order: resizes contend on the shared PRB/link/CPU pools,
	// so their order decides marginal grow/shrink outcomes and the ledger's
	// float bits — pinning it here keeps fixed-seed runs identical at any
	// shard count.
	allocBatch := make([]monitor.BatchSample, 0, len(items))
	for i := range items {
		it := &items[i]
		if !it.live {
			continue
		}
		m := it.m
		m.sh.mu.Lock()
		if m.s.State() == slice.StateActive {
			o.resizeLocked(m, it.target)
			o.ledger.Update(m.ledgerMbps, it.target)
			m.ledgerMbps = it.target
			it.ledgerUpdated = true
			it.ledgerTo = it.target
			allocBatch = append(allocBatch, monitor.BatchSample{
				Name: m.seriesAlloc, Value: m.s.Allocation().AllocatedMbps})
		}
		m.sh.mu.Unlock()
	}

	// P4: telemetry barrier — flush the commit batch, push domain
	// telemetry, fold the gain report and publish the epoch snapshot. The
	// fold runs under a momentary lockAll: every counter/accumulator
	// update happens while holding a shard lock, so quiescing the shards
	// makes the snapshot one mutually consistent cut (the lock-free
	// Gain() alone guarantees only per-field exactness) — O(shards) work,
	// once per epoch.
	o.store.RecordBatchSized(now, allocBatch, sliceSeriesCapacity)
	o.tb.Ctrl.PushTelemetry(o.store, now)
	o.lockAll()
	g := o.Gain()
	o.unlockAll()
	o.store.Record("orchestrator/ran_epoch_utilization", now, ranUtil)
	o.store.Record("orchestrator/overbooking_ratio", now, g.OverbookingRatio)
	o.store.Record("orchestrator/multiplexing_gain", now, g.MultiplexingGain)
	o.store.Record("orchestrator/penalties_eur", now, g.PenaltyTotalEUR)
	o.store.Record("orchestrator/net_revenue_eur", now, g.NetRevenueEUR)
	o.store.Record("orchestrator/active_slices", now, float64(len(items)))
	snap := EpochSnapshot{
		Epoch:          int(o.epochs.Load()),
		At:             now,
		MeasuredSlices: len(items),
		RANUtilization: ranUtil,
		Gain:           g,
	}
	o.lastEpoch.Store(&snap)

	// WAL: one epoch record carrying every per-slice outcome (demand and
	// served samples, charges, ledger rolls) and the published snapshot
	// verbatim. The epoch's resize outcomes precede it as their own records
	// in commit order.
	if o.persist != nil {
		rec := epochRecord{
			Epoch:    o.epochs.Load(),
			At:       now,
			RANUtil:  ranUtil,
			Snapshot: snap,
			Events:   epochEvents,
			Items:    make([]epochItemRecord, 0, len(items)),
		}
		for i := range items {
			it := &items[i]
			rec.Items = append(rec.Items, epochItemRecord{
				Slice:         it.m.s.ID(),
				Demand:        it.demand,
				Served:        it.served,
				Counted:       it.live,
				Charged:       it.charged,
				LedgerUpdated: it.ledgerUpdated,
				LedgerTo:      it.ledgerTo,
			})
		}
		o.appendRecord(recEpoch, rec)
	}

	// Audit barrier: snapshot monotonicity plus the full conservation/leak
	// sweep under a momentary all-shard quiesce — the same cut discipline
	// as the gain fold above (audit.go).
	if o.audit != nil {
		o.audit.ObserveEpoch(int(o.epochs.Load()), now)
		o.lockAll()
		o.auditSweepAllLocked()
		o.unlockAll()
	}

	// Checkpoint cadence: fold the log into a full-state snapshot every
	// SnapshotEvery epochs, anchored at the epoch record's sequence.
	if o.persist != nil && o.epochs.Load()%int64(o.cfg.SnapshotEvery) == 0 {
		o.checkpoint()
	}
}

// analyzePhase is P3: per-slice violation detection, forecaster update and
// provisioning-target computation, partitioned by shard. Each worker holds
// only its own shard's lock, touches only that shard's slices (and their
// slice-private forecasters), and flushes its demand/served telemetry as
// one batch after unlocking — no shared state is written, which is what
// makes the phase safe to run on one goroutine per shard. With a single
// shard (or a single populated shard) the phase runs inline: that is the
// serial path the shard-equivalence tests compare against.
func (o *Orchestrator) analyzePhase(now time.Time, items []epochItem) {
	if len(items) == 0 {
		return
	}
	groups := make(map[*shard][]int, len(o.shards))
	for i := range items {
		sh := items[i].m.sh
		groups[sh] = append(groups[sh], i)
	}
	work := func(idxs []int) {
		sh := items[idxs[0]].m.sh
		batch := make([]monitor.BatchSample, 0, 2*len(idxs))
		sh.mu.Lock()
		for _, i := range idxs {
			it := &items[i]
			m := it.m
			// A teardown may have won the race since P1 released the
			// locks (live mode); a dead slice is dropped from the epoch.
			if m.s.State() != slice.StateActive {
				continue
			}
			it.live = true
			it.violated = m.s.RecordEpoch(it.demand, it.served)
			if m.seriesDemand == "" {
				id := string(m.s.ID())
				m.seriesDemand = monitor.SliceMetric(id, "demand_mbps")
				m.seriesServed = monitor.SliceMetric(id, "served_mbps")
				m.seriesAlloc = monitor.SliceMetric(id, "allocated_mbps")
			}
			batch = append(batch,
				monitor.BatchSample{Name: m.seriesDemand, Value: it.demand},
				monitor.BatchSample{Name: m.seriesServed, Value: it.served})
			m.prov.Observe(it.demand)
			it.target = m.prov.Provision(m.s.SLA().ThroughputMbps)
			// The intent plane's rollout cap bounds the target (the canary
			// knob); resizeLocked still clamps to [floor, contract].
			if m.provCapMbps > 0 && it.target > m.provCapMbps {
				it.target = m.provCapMbps
			}
		}
		sh.mu.Unlock()
		o.store.RecordBatchSized(now, batch, sliceSeriesCapacity)
	}
	if len(groups) == 1 {
		for _, idxs := range groups {
			work(idxs)
		}
		return
	}
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			work(idxs)
		}(idxs)
	}
	wg.Wait()
}
