package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/slice"
)

// batch builds a batch whose FCFS outcome is suboptimal: a big cheap slice
// first, then valuable smaller ones.
func suboptimalBatch() []BatchItem {
	mk := func(mbps, price float64) BatchItem {
		return BatchItem{Request: slice.Request{
			Tenant: "b",
			SLA: slice.SLA{
				ThroughputMbps: mbps, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: price, PenaltyEUR: 1,
			},
		}}
	}
	return []BatchItem{
		mk(60, 60), // arrives first, low density
		mk(40, 90), // high density
		mk(40, 85), // high density
		mk(10, 40), // highest density
	}
}

func TestSubmitBatchOptimalBeatsFCFS(t *testing.T) {
	revenueOf := func(policy BatchPolicy) float64 {
		_, o := env(t, Config{Overbook: true, AdmissionLoadFactor: 1.0, UtilizationCap: 0.95})
		slices, err := o.SubmitBatch(suboptimalBatch(), policy)
		if err != nil {
			t.Fatal(err)
		}
		if len(slices) != 4 {
			t.Fatalf("got %d slices", len(slices))
		}
		return o.Gain().RevenueTotalEUR
	}
	// Capacity ~97.9 estimated: FCFS takes 60€ slice + one 40 = 60+90 = 150.
	fcfs := revenueOf(BatchFCFS)
	opt := revenueOf(BatchOptimal)
	dens := revenueOf(BatchDensity)
	if opt <= fcfs {
		t.Fatalf("optimal %v <= fcfs %v", opt, fcfs)
	}
	if dens < fcfs {
		t.Fatalf("density %v below fcfs %v", dens, fcfs)
	}
	if opt < dens {
		t.Fatalf("optimal %v below density %v", opt, dens)
	}
}

func TestSubmitBatchLosersRejectedWithReason(t *testing.T) {
	_, o := env(t, Config{Overbook: true, AdmissionLoadFactor: 1.0})
	slices, err := o.SubmitBatch(suboptimalBatch(), BatchOptimal)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, sl := range slices {
		if sl.State() == slice.StateRejected {
			rejected++
			if !strings.Contains(sl.Reason(), "batch admission") {
				t.Fatalf("reason %q", sl.Reason())
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no batch losers at tight capacity")
	}
	g := o.Gain()
	if g.RejectReasons["revenue-policy"] != rejected {
		t.Fatalf("histogram %v vs %d", g.RejectReasons, rejected)
	}
	// Positional alignment preserved.
	if len(slices) != 4 {
		t.Fatal("alignment broken")
	}
}

func TestSubmitBatchInvalidItem(t *testing.T) {
	_, o := env(t, Config{})
	items := suboptimalBatch()
	items[1].Request.SLA.Duration = 0
	if _, err := o.SubmitBatch(items, BatchOptimal); err == nil {
		t.Fatal("invalid item accepted")
	}
}

func TestSubmitBatchOnFullSystemRejectsAll(t *testing.T) {
	_, o := env(t, Config{}) // peak provisioning
	// Fill capacity.
	o.Submit(req("big", 90, 50, time.Hour, 10), nil)
	slices, err := o.SubmitBatch(suboptimalBatch(), BatchOptimal)
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range slices {
		if sl.State() != slice.StateRejected {
			t.Fatalf("slice admitted on full system: %v", sl.State())
		}
	}
}

func TestBatchPolicyString(t *testing.T) {
	if BatchFCFS.String() != "fcfs" || BatchDensity.String() != "density" ||
		BatchOptimal.String() != "knapsack-optimal" {
		t.Fatal("policy names")
	}
	if BatchPolicy(9).String() != "BatchPolicy(9)" {
		t.Fatal("unknown policy")
	}
}
