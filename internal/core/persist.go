package core

import (
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/slice"
	"repro/internal/wal"
)

// This file is the orchestrator side of the durable write-ahead log
// (DESIGN.md §9). The framing layer (internal/wal) is payload-agnostic; the
// record schema below is the orchestration-level redo log: every record
// carries the full logged *outcome* of a state transition (PRBs per eNB,
// path hops and bandwidth, MEC host, money and ledger movements), so replay
// imposes recorded decisions instead of re-deriving them — the environment
// that shaped the original decision (CQI fades, MEC brownouts) is not
// durable, and re-running the decision logic against a rebuilt default
// environment could diverge.
//
// Hook discipline: records are appended inside the mutating operation's
// critical section (appendRecord takes only the leaf persistMu, so it is
// safe under shard locks and epochMu), and each top-level operation ends
// with one commitPersist() — the durability boundary — called with no shard
// lock and no epochMu held. A crash between an append and its commit may
// lose that operation entirely, but can never surface a torn prefix of it
// as recovered state.
//
// Since PR 9 the boundary is group-committed (DESIGN.md §12): instead of
// each operation fsyncing its own records, concurrent committers elect one
// leader that performs a single fsync covering every record appended so
// far; the rest block until a completed fsync's coverage reaches their last
// record. The durability contract is unchanged — commitPersist still does
// not return while the operation's records are only buffered — but the
// fsync cost is amortized across however many operations were in flight,
// and because the file write + fsync run outside persistMu (StagedSink),
// appends keep flowing while the disk works. A lone committer degenerates
// to the old synchronous per-op fsync, so single-driver simulations and the
// §9.2 crashtest harness see byte- and boundary-identical behaviour.

// Sink receives the orchestrator's write-ahead records. The production
// implementation wraps *wal.Writer (see WALSink); crash-point tests
// substitute an in-memory sink that snapshots digests at commit boundaries.
//
// Append may be called under shard locks and epochMu (it must only buffer).
// Committed and Snapshot are only ever invoked with no orchestrator lock
// held except the persistence mutex, so a Sink whose Committed reads back
// orchestrator state (List, Gain, StateDigest) is safe under a
// single-driver clock; such read-back sinks are for deterministic tests
// only, not for live concurrent deployments.
type Sink interface {
	// Append buffers one record. Sequence numbers are contiguous from 1.
	Append(rec wal.Record) error
	// Committed marks the operation boundary: everything appended so far
	// must become durable (fsync for the file-backed sink).
	Committed() error
	// Snapshot durably checkpoints a full-state blob anchored at record
	// sequence seq; records up to and including seq are folded into it.
	Snapshot(seq uint64, blob []byte) error
}

// StagedSink is the optional fast path a Sink can provide for group commit:
// StageCommit is called under the persistence mutex and must capture
// everything appended so far, returning a step that makes the capture
// durable. The step runs outside the persistence mutex — concurrent
// operations keep appending while the disk works — and the commit-group
// leadership protocol guarantees at most one staged step is in flight at a
// time, issued in capture order, with Snapshot/Close quiesced around it.
// Sinks without StageCommit (the crashtest digest probes) are committed
// under the persistence mutex exactly as before group commit.
type StagedSink interface {
	Sink
	StageCommit() func() error
}

// walSink adapts *wal.Writer to the Sink interface.
type walSink struct{ w *wal.Writer }

func (s walSink) Append(rec wal.Record) error         { return s.w.Append(rec) }
func (s walSink) Committed() error                    { return s.w.Sync() }
func (s walSink) Snapshot(seq uint64, b []byte) error { return s.w.Snapshot(seq, b) }
func (s walSink) StageCommit() func() error           { return s.w.StageSync() }

// WALSink wraps a write-ahead-log writer as the orchestrator's persistence
// sink: Committed maps to the batched fsync, Snapshot to the atomic
// checkpoint rename.
func WALSink(w *wal.Writer) Sink { return walSink{w} }

// Record type tags of the orchestration redo log.
const (
	recAdmit    = "admit"
	recReject   = "reject"
	recActivate = "activate"
	recTeardown = "teardown"
	recResize   = "resize"
	recReroute  = "reroute"
	recEpoch    = "epoch"
	recLink     = "link"
	recShutdown = "shutdown"
)

// pathRecord is one transport path outcome: the exact hops and bandwidth
// the original run reserved, so replay re-imposes the same route even if
// the (unlogged) topology weather would steer a fresh computation elsewhere.
type pathRecord struct {
	ID      string   `json:"id"`
	Hops    []string `json:"hops"`
	Mbps    float64  `json:"mbps"`
	DelayMs float64  `json:"delay_ms"`
}

// admitRecord logs a successful admission: the slice's full durable image
// (state Installing, allocation populated) plus every substrate outcome the
// install transaction produced.
type admitRecord struct {
	Slice        slice.Persisted `json:"slice"`
	ReservedMbps float64         `json:"reserved_mbps"`
	Paths        []pathRecord    `json:"paths,omitempty"`
	MECHost      string          `json:"mec_host,omitempty"`
	MECCPU       float64         `json:"mec_cpu,omitempty"`
	SubmittedAt  time.Time       `json:"submitted_at"`
	ActivateAt   time.Time       `json:"activate_at"`
	Events       []Event         `json:"events"`
}

// rejectRecord logs a rejection. ReservedMbps mirrors a capacity-ledger
// reserve-then-release the admission path performed before failing (zero
// when admission failed before the radio check): float addition is not
// exactly invertible, so replay must repeat the round trip to reproduce the
// ledger's bits.
type rejectRecord struct {
	Slice        slice.Persisted `json:"slice"`
	ReservedMbps float64         `json:"reserved_mbps,omitempty"`
	Events       []Event         `json:"events"`
}

// activateRecord logs the vEPC-boot completion that turned a slice Active.
type activateRecord struct {
	Slice  slice.ID  `json:"slice"`
	At     time.Time `json:"at"`
	Events []Event   `json:"events"`
}

// teardownRecord logs a teardown from any live state (tenant delete,
// expiry, EPC boot failure, unrecoverable link failure). The event carries
// the taxonomy type (deleted/expired) and post-transition state.
type teardownRecord struct {
	Slice  slice.ID `json:"slice"`
	Reason string   `json:"reason"`
	Events []Event  `json:"events"`
}

// resizeRecord logs a multi-domain reallocation outcome. Mbps and PRBs are
// the post-resize radio allocation; MECMbps is the throughput the MEC app
// was sized from (the radio-quantized value on engine resizes, the raw fair
// share on degradation shrinks). ResizePaths records whether transport
// reservations were resized to Mbps (engine resizes) or left to a preceding
// reroute record (degradation shrinks).
type resizeRecord struct {
	Slice       slice.ID       `json:"slice"`
	Mbps        float64        `json:"mbps"`
	PRBs        map[string]int `json:"prbs"`
	MECMbps     float64        `json:"mec_mbps"`
	ResizePaths bool           `json:"resize_paths"`
	Events      []Event        `json:"events"`
}

// rerouteRecord logs a restoration re-route: the replacement paths at their
// reserved bandwidth. Events is empty for the degradation shrink's interim
// re-route (the following resizeRecord carries the EventResized).
type rerouteRecord struct {
	Slice        slice.ID     `json:"slice"`
	Paths        []pathRecord `json:"paths"`
	WorstDelayMs float64      `json:"worst_delay_ms"`
	Events       []Event      `json:"events,omitempty"`
}

// epochItemRecord is one measured slice's epoch outcome. Counted mirrors
// whether the analysis phase reached the slice alive (RecordEpoch and the
// forecaster observation ran); Charged whether the commit phase actually
// billed the violation; LedgerUpdated/LedgerTo the capacity-ledger roll.
type epochItemRecord struct {
	Slice         slice.ID `json:"slice"`
	Demand        float64  `json:"demand"`
	Served        float64  `json:"served"`
	Counted       bool     `json:"counted,omitempty"`
	Charged       bool     `json:"charged,omitempty"`
	LedgerUpdated bool     `json:"ledger_updated,omitempty"`
	LedgerTo      float64  `json:"ledger_to,omitempty"`
}

// epochRecord logs one control-epoch pass. Resize outcomes of the epoch are
// separate resizeRecords appended (in commit order) before this record;
// Snapshot is the published EpochSnapshot verbatim — including gain fields
// derived from the unlogged radio environment — so recovery restores the
// read plane bit-identically.
type epochRecord struct {
	Epoch    int64             `json:"epoch"`
	At       time.Time         `json:"at"`
	RANUtil  float64           `json:"ran_util"`
	Items    []epochItemRecord `json:"items,omitempty"`
	Snapshot EpochSnapshot     `json:"snapshot"`
	Events   []Event           `json:"events,omitempty"`
}

// linkRecord logs a transport-link transition driven through the
// orchestrator (failure, degradation, restoration). Per-victim outcomes
// follow as their own records in WAL order.
type linkRecord struct {
	Kind         string  `json:"kind"` // "fail" | "degrade" | "restore"
	From         string  `json:"from"`
	To           string  `json:"to"`
	CapacityMbps float64 `json:"capacity_mbps,omitempty"`
	Events       []Event `json:"events"`
}

// shutdownRecord logs a clean daemon shutdown: recovery knows the previous
// run ended at a commit boundary, and subscribers that were draining when
// the process died can observe the terminal event after restart.
type shutdownRecord struct {
	At     time.Time `json:"at"`
	Events []Event   `json:"events"`
}

// appendRecord marshals payload and buffers it on the sink under the next
// WAL sequence. It takes only the leaf persistMu, so callers may hold shard
// locks and epochMu. The first sink or marshal error latches: persistence
// is disabled from that point (surfaced via PersistStatus) rather than
// crashing the control plane mid-operation.
func (o *Orchestrator) appendRecord(typ string, payload any) {
	if o.persist == nil {
		return
	}
	// Marshal before taking persistMu: the payload is built from data the
	// caller owns (its shard lock is still held), so encoding it needs no
	// persistence state, and keeping it outside shrinks the append critical
	// section every other shard serializes on.
	b, merr := marshalRecord(payload)
	o.persistMu.Lock()
	defer o.persistMu.Unlock()
	if o.persistErr != nil || o.persistClosed {
		return
	}
	err := merr
	if err == nil {
		o.walSeq++
		err = o.persist.Append(wal.Record{Seq: o.walSeq, Type: typ, Payload: b})
	}
	if err != nil {
		o.persistErr = err
	}
}

// errPersistClosed is the commit-group outcome for operations whose
// durability boundary was reached after ClosePersist retired the sink; it
// deliberately never latches into persistErr (closing is not a failure).
var errPersistClosed = errors.New("core: persistence closed")

// commitGroup is the group-commit state machine (DESIGN.md §12). Its mutex
// is independent of persistMu and never held while acquiring it: the
// per-operation path goes persistMu → release → commit.mu, and the leader's
// flush goes commit.mu → release → persistMu → flush.
type commitGroup struct {
	mu   sync.Mutex
	cond sync.Cond
	// durable is the highest WAL sequence covered by a completed fsync;
	// an operation whose last record is at or below it is durable.
	durable uint64
	// flushing marks a flush (group leader, checkpoint, or close) in
	// flight; at most one at a time, so staged WAL writes land in order.
	flushing bool
	// cur is the commit group gathering for the next flush, nil when none.
	// Its first member is the designated leader (the only goroutine parked
	// on cond waiting for the in-flight flush); later arrivals join the
	// ticket and sleep on its done channel, so a completed group wakes its
	// members with one channel close instead of a Broadcast herd that
	// re-acquires mu once per member.
	cur *commitTicket
	// err is the latched flush failure: every current and future group
	// member observes it (a follower must not report durable success
	// because only the leader saw the fsync fail).
	err error
	// closed mirrors persistClosed so blocked members wake and return
	// instead of waiting for a flush that will never come.
	closed bool
	// barrier counts checkpoints waiting to take leadership. While it is
	// non-zero no new group leader is elected, so a checkpoint cannot be
	// starved by committers re-electing leaders faster than it can observe
	// flushing==false; commits queued behind the barrier are covered by
	// the checkpoint's own sync (its anchor is at or past their targets).
	barrier int

	// Telemetry (PersistStatus): completed fsync barriers, operations that
	// reached their durability boundary, and the largest group one fsync
	// covered.
	fsyncs    uint64
	commitOps uint64
	maxGroup  int
}

// commitTicket is one gathering commit group. members and maxTarget are
// guarded by commitGroup.mu; done is closed exactly once, by the leader,
// after every member's durability outcome is decided.
type commitTicket struct {
	members   int
	maxTarget uint64
	done      chan struct{}
}

// commitPersist is the durability boundary: it returns only once every
// record appended by the operation is covered by a completed fsync (or
// persistence has failed/closed, which latches and disables durability
// rather than crashing the control plane). It must be called with no shard
// lock and no epochMu held — test sinks read the orchestrator's state
// digest from inside Committed.
//
// Group commit: the first operation to reach the boundary while no flush is
// in flight becomes the leader and fsyncs once for every record appended so
// far — its own and those of any operation still on its way here. Later
// arrivals find a flush in flight, block, and are covered either by that
// fsync (if their records made the capture) or by the next group's, whose
// leader is elected among them when the current flush completes. A lone
// committer flushes immediately and synchronously. With Config.CommitPerOp
// the PR 6 behaviour is kept: every operation fsyncs its own records under
// persistMu, serializing all durable operations (the benchmark baseline).
func (o *Orchestrator) commitPersist() {
	if o.persist == nil {
		return
	}
	o.persistMu.Lock()
	if o.persistErr != nil || o.persistClosed {
		o.persistMu.Unlock()
		return
	}
	target := o.walSeq
	if o.cfg.CommitPerOp {
		err := o.persist.Committed()
		if err != nil {
			o.persistErr = err
		}
		o.persistMu.Unlock()
		g := &o.commit
		g.mu.Lock()
		g.commitOps++
		if err == nil {
			g.fsyncs++
			if target > g.durable {
				g.durable = target
			}
			if g.maxGroup < 1 {
				g.maxGroup = 1
			}
		}
		g.mu.Unlock()
		return
	}
	o.persistMu.Unlock()
	o.commitWait(target)
}

// commitWait blocks until a completed fsync covers target. The first
// arrival while no group is gathering opens a ticket and leads it: it waits
// out any in-flight flush (parked on cond), then fsyncs once for every
// member that joined meanwhile. Joiners sleep on the ticket's channel and
// are woken by one close — their records were appended before they arrived
// here, so the leader's capture necessarily includes them.
func (o *Orchestrator) commitWait(target uint64) {
	g := &o.commit
	g.mu.Lock()
	g.commitOps++
	if g.err != nil || g.closed || g.durable >= target {
		g.mu.Unlock()
		return
	}
	if t := g.cur; t != nil {
		t.members++
		if target > t.maxTarget {
			t.maxTarget = target
		}
		g.mu.Unlock()
		<-t.done
		return
	}
	t := &commitTicket{members: 1, maxTarget: target, done: make(chan struct{})}
	g.cur = t
	for (g.flushing || g.barrier > 0) && !g.closed && g.err == nil {
		g.cond.Wait()
		if g.cur != t {
			// A checkpoint completed this ticket while its leader was
			// parked: every member (this goroutine included) is already
			// covered by the snapshot's sync.
			g.mu.Unlock()
			return
		}
	}
	if g.closed || g.err != nil || g.durable >= t.maxTarget {
		// Persistence ended, failed, or the flush just waited out (a prior
		// group, a checkpoint) already captured every member's records —
		// nothing left to fsync for this ticket.
		g.cur = nil
		g.mu.Unlock()
		close(t.done)
		return
	}
	g.flushing = true
	members := t.members

	// Grouping window: with other writers already queued, the leader may
	// linger up to CommitMaxDelay for more to arrive, capped at
	// CommitMaxBatch members; the ticket stays joinable until just before
	// the flush. A lone writer never waits — the synchronous fallback that
	// keeps single-threaded latency at the per-op cost. The window trades
	// bounded latency for fewer fsyncs on devices whose sync is too fast
	// for natural batching to build groups.
	if d := o.cfg.CommitMaxDelay; d > 0 && members > 1 {
		g.mu.Unlock()
		deadline := time.Now().Add(d)
		for members < o.cfg.CommitMaxBatch {
			remain := time.Until(deadline)
			if remain <= 0 {
				break
			}
			if step := 50 * time.Microsecond; remain > step {
				remain = step
			}
			time.Sleep(remain)
			g.mu.Lock()
			members = t.members
			g.mu.Unlock()
		}
		g.mu.Lock()
	}
	g.cur = nil
	members = t.members
	g.mu.Unlock()

	covered, err := o.flushCommit()

	g.mu.Lock()
	g.flushing = false
	if err != nil {
		if !errors.Is(err, errPersistClosed) {
			g.err = err
		}
	} else {
		g.fsyncs++
		if covered > g.durable {
			g.durable = covered
		}
		if members > g.maxGroup {
			g.maxGroup = members
		}
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	close(t.done)
}

// flushCommit performs one durability barrier covering every record
// appended so far, returning the covered sequence. For a StagedSink the
// capture happens under persistMu but the write+fsync runs outside it, so
// concurrent operations keep appending records while the disk works; the
// caller's leadership (commitGroup.flushing) guarantees staged steps are
// serialized in capture order. Failures latch persistErr exactly as the
// per-op path always has.
func (o *Orchestrator) flushCommit() (uint64, error) {
	o.persistMu.Lock()
	if o.persistErr != nil || o.persistClosed {
		err := o.persistErr
		o.persistMu.Unlock()
		if err == nil {
			err = errPersistClosed
		}
		return 0, err
	}
	covered := o.walSeq
	if ss, ok := o.persist.(StagedSink); ok {
		step := ss.StageCommit()
		o.persistMu.Unlock()
		err := step()
		if err != nil {
			o.persistMu.Lock()
			if o.persistErr == nil {
				o.persistErr = err
			}
			o.persistMu.Unlock()
		}
		return covered, err
	}
	err := o.persist.Committed()
	if err != nil {
		o.persistErr = err
	}
	o.persistMu.Unlock()
	return covered, err
}

// pathRecords captures the current transport reservations of the given
// path IDs (leaf substrate read locks only — safe under shard locks).
func (o *Orchestrator) pathRecords(pids []string) []pathRecord {
	out := make([]pathRecord, 0, len(pids))
	for _, pid := range pids {
		if r, ok := o.tb.Transport.Reservation(pid); ok {
			out = append(out, pathRecord{ID: r.ID, Hops: r.Hops, Mbps: r.Mbps, DelayMs: r.DelayMs})
		}
	}
	return out
}

// appendAdmit logs a successful admission with every substrate outcome.
// The caller holds the slice's shard lock.
func (o *Orchestrator) appendAdmit(m *managedSlice, reservedMbps float64, submittedAt time.Time, events ...Event) {
	if o.persist == nil {
		return
	}
	alloc := m.s.Allocation()
	rec := admitRecord{
		Slice:        m.s.Persist(),
		ReservedMbps: reservedMbps,
		Paths:        o.pathRecords(alloc.PathIDs),
		SubmittedAt:  submittedAt,
		ActivateAt:   m.activateAt,
		Events:       events,
	}
	if alloc.MECAppID != "" {
		if app, ok := o.tb.MEC.App(alloc.MECAppID); ok {
			rec.MECHost, rec.MECCPU = app.Host, app.CPU
		}
	}
	o.appendRecord(recAdmit, rec)
}

// PersistStatus reports the durability plane's health.
type PersistStatus struct {
	// Enabled reports whether a persistence sink is attached.
	Enabled bool `json:"enabled"`
	// LastSeq is the sequence of the most recently appended WAL record.
	LastSeq uint64 `json:"last_seq"`
	// Error carries the latched persistence error ("" while healthy).
	// Persistence disables itself on the first sink failure; the
	// orchestrator keeps running without durability.
	Error string `json:"error,omitempty"`
	// Recovered reports whether this orchestrator was built by Recover.
	Recovered bool `json:"recovered"`
	// Recovery summarises the recovery pass when Recovered.
	Recovery *RecoveryReport `json:"recovery,omitempty"`
	// DurableSeq is the highest WAL sequence covered by a completed fsync;
	// LastSeq minus DurableSeq is the buffered, not-yet-durable tail.
	DurableSeq uint64 `json:"durable_seq"`
	// Fsyncs counts completed durability barriers (group-commit fsyncs,
	// per-op commits under CommitPerOp, and checkpoints). CommitOps counts
	// operations that reached their durability boundary; CommitOps/Fsyncs
	// is the realized group-commit amortization.
	Fsyncs    uint64 `json:"fsyncs"`
	CommitOps uint64 `json:"commit_ops"`
	// MaxGroup is the largest number of operations one fsync covered.
	MaxGroup int `json:"max_group,omitempty"`
}

// PersistStatus returns the durability plane's current status.
func (o *Orchestrator) PersistStatus() PersistStatus {
	st := PersistStatus{Enabled: o.persist != nil, Recovery: o.recovery, Recovered: o.recovery != nil}
	o.persistMu.Lock()
	st.LastSeq = o.walSeq
	if o.persistClosed {
		st.Enabled = false
	}
	if o.persistErr != nil {
		st.Error = o.persistErr.Error()
	}
	o.persistMu.Unlock()
	g := &o.commit
	g.mu.Lock()
	st.DurableSeq = g.durable
	st.Fsyncs = g.fsyncs
	st.CommitOps = g.commitOps
	st.MaxGroup = g.maxGroup
	g.mu.Unlock()
	return st
}

// Shutdown stops the control loop, publishes the terminal EventShutdown on
// the bus (so draining subscribers observe a clean end of stream instead of
// a silent cut) and flushes the write-ahead log. The orchestrator remains
// readable — and the sink remains attached, so late mutations stay durable
// while a server drains — until the caller closes the WAL writer via
// ClosePersist.
func (o *Orchestrator) Shutdown() Event {
	o.Stop()
	ev := Event{Time: o.clock.Now(), Type: EventShutdown, Detail: "orchestrator shutting down"}
	ev.Seq = o.bus.Publish(ev)
	o.appendRecord(recShutdown, shutdownRecord{At: ev.Time, Events: []Event{ev}})
	o.commitPersist()
	return ev
}

// ClosePersist retires the persistence sink and runs closeFn (the WAL
// writer's Close) under the persistence mutex, so it can never race a
// concurrent appendRecord/commitPersist against the writer's internals.
// The sink pointer stays in place (the lock-free `o.persist != nil` fast
// paths depend on it being immutable); the guarded persistClosed flag makes
// every subsequent append and commit a no-op rather than latching an error
// on a closed file — so a daemon closes the log only after its server has
// drained (see cmd/orchestrator). Safe to call without a sink attached and
// more than once; closeFn may be nil.
//
// Group-commit interaction: closing first waits out any in-flight flush and
// takes commit leadership, so a staged WAL write can never race the
// writer's Close (an operation whose commit completed before ClosePersist
// stays durable). Operations still blocked waiting for a flush are then
// woken by the closed flag and return non-durable — acknowledged-but-
// unflushed tails are the caller's responsibility, which is why the daemon
// drains its server and runs Shutdown (whose commit completes) first.
func (o *Orchestrator) ClosePersist(closeFn func() error) error {
	g := &o.commit
	g.mu.Lock()
	// Announce first: with closed set, no new leader is ever elected (and
	// blocked members drain), so only the one in-flight flush must be
	// waited out — churning committers cannot starve the close.
	g.closed = true
	for g.flushing {
		g.cond.Wait()
	}
	g.flushing = true
	g.mu.Unlock()

	o.persistMu.Lock()
	o.persistClosed = true
	var err error
	if closeFn != nil {
		err = closeFn()
	}
	o.persistMu.Unlock()

	g.mu.Lock()
	g.flushing = false
	g.cond.Broadcast()
	g.mu.Unlock()
	return err
}

// checkpointState is the full-state checkpoint blob (snapshot payload):
// everything recovery needs to rebuild the orchestrator without replaying
// the log from its beginning. Not captured — and documented as such in
// DESIGN.md §9 — are forecaster internals (re-driven from tail epoch
// records only), the monitoring store, and environment perturbations (CQI,
// MEC host capacities); recovered slices re-impose their logged outcomes
// onto a default-environment testbed.
type checkpointState struct {
	// EventNext is the bus's next sequence number.
	EventNext int64 `json:"event_next"`
	// Epochs is the control-loop pass counter.
	Epochs int64 `json:"epochs"`
	// SeqCounter is the slice-ID sequence counter.
	SeqCounter int64 `json:"seq_counter"`
	// LastEpoch is the published epoch snapshot, verbatim.
	LastEpoch *EpochSnapshot `json:"last_epoch,omitempty"`
	// LedgerLoad is the capacity ledger's running float sum, bit-exact.
	LedgerLoad float64         `json:"ledger_load"`
	PLMN       slice.PLMNState `json:"plmn"`
	Acc        accState        `json:"acc"`
	// Counters are the global sums of the per-shard dashboard counters;
	// restore folds them into shard 0 (only sums are ever read).
	Counters counterState `json:"counters"`
	// History is the bounded finished-slice eviction queue, in order.
	History []slice.ID `json:"history,omitempty"`
	// Links is the transport topology's per-link up/capacity state.
	Links []linkState `json:"links,omitempty"`
	// Slices are the registry's slices in submission order, each with its
	// substrate outcomes for re-imposition.
	Slices []persistedSlice `json:"slices,omitempty"`
}

// accState is the gain accumulator's durable image (order-sensitive float
// aggregates, captured and restored bit-exactly).
type accState struct {
	RevenueEUR     float64        `json:"revenue_eur"`
	PenaltyEUR     float64        `json:"penalty_eur"`
	ContractedMbps float64        `json:"contracted_mbps"`
	AllocatedMbps  float64        `json:"allocated_mbps"`
	Live           int            `json:"live"`
	RejectReasons  map[string]int `json:"reject_reasons,omitempty"`
}

// counterState sums the per-shard dashboard counters.
type counterState struct {
	Admitted         int64 `json:"admitted"`
	Rejected         int64 `json:"rejected"`
	Violations       int64 `json:"violations"`
	Reconfigurations int64 `json:"reconfigurations"`
	Active           int64 `json:"active"`
}

// linkState is one transport link's durable state.
type linkState struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	Up           bool    `json:"up"`
	CapacityMbps float64 `json:"capacity_mbps"`
}

// persistedSlice is one registry entry in the checkpoint: the slice's full
// durable image plus the orchestrator-level bookkeeping and substrate
// outcomes that live outside the slice.
type persistedSlice struct {
	Slice      slice.Persisted `json:"slice"`
	LedgerMbps float64         `json:"ledger_mbps,omitempty"`
	// Paths / MECHost / MECCPU capture substrate outcomes for live slices
	// (empty for rejected/terminated entries kept only for the dashboard).
	Paths      []pathRecord     `json:"paths,omitempty"`
	MECHost    string           `json:"mec_host,omitempty"`
	MECCPU     float64          `json:"mec_cpu,omitempty"`
	ActivateAt time.Time        `json:"activate_at,omitempty"`
	LastDemand float64          `json:"last_demand,omitempty"`
	HaveDemand bool             `json:"have_demand,omitempty"`
	Timeline   *InstallTimeline `json:"timeline,omitempty"`
}

// buildCheckpointLocked assembles the checkpoint blob. The caller holds
// epochMu and every shard lock, so the cut is consistent.
func (o *Orchestrator) buildCheckpointLocked() ([]byte, error) {
	st := checkpointState{
		EventNext:  o.bus.LastSeq() + 1,
		Epochs:     o.epochs.Load(),
		SeqCounter: o.seq.Load(),
		LedgerLoad: o.ledger.Load(),
		PLMN:       o.plmns.Export(),
	}
	if le := o.lastEpoch.Load(); le != nil {
		snap := *le
		st.LastEpoch = &snap
	}
	o.acc.mu.Lock()
	st.Acc = accState{
		RevenueEUR:     o.acc.revenueEUR,
		PenaltyEUR:     o.acc.penaltyEUR,
		ContractedMbps: o.acc.contractedMbps,
		AllocatedMbps:  o.acc.allocatedMbps,
		Live:           o.acc.live,
		RejectReasons:  make(map[string]int, len(o.acc.rejectReasons)),
	}
	for k, v := range o.acc.rejectReasons {
		st.Acc.RejectReasons[k] = v
	}
	o.acc.mu.Unlock()
	for _, sh := range o.shards {
		st.Counters.Admitted += sh.admitted.Load()
		st.Counters.Rejected += sh.rejected.Load()
		st.Counters.Violations += sh.violations.Load()
		st.Counters.Reconfigurations += sh.reconfigurations.Load()
		st.Counters.Active += sh.active.Load()
	}
	o.history.mu.Lock()
	st.History = append([]slice.ID(nil), o.history.ids...)
	o.history.mu.Unlock()
	for _, ls := range o.tb.Transport.Snapshot() {
		st.Links = append(st.Links, linkState{From: ls.From, To: ls.To, Up: ls.Up, CapacityMbps: ls.CapacityMbps})
	}
	for _, m := range o.orderedSlicesAllLocked() {
		ps := persistedSlice{
			Slice:      m.s.Persist(),
			LedgerMbps: m.ledgerMbps,
			ActivateAt: m.activateAt,
			LastDemand: m.lastDemand,
			HaveDemand: m.haveDemand,
		}
		switch m.s.State() {
		case slice.StateAdmitted, slice.StateInstalling, slice.StateActive, slice.StateReconfiguring:
			alloc := m.s.Allocation()
			ps.Paths = o.pathRecords(alloc.PathIDs)
			if alloc.MECAppID != "" {
				if app, ok := o.tb.MEC.App(alloc.MECAppID); ok {
					ps.MECHost, ps.MECCPU = app.Host, app.CPU
				}
			}
		}
		if tl, ok := m.sh.timelines[m.s.ID()]; ok {
			cp := *tl
			ps.Timeline = &cp
		}
		st.Slices = append(st.Slices, ps)
	}
	return json.Marshal(st)
}

// checkpoint writes a full-state snapshot anchored at the WAL sequence
// current while the shards are quiesced. Called from the epoch tail with
// epochMu held and no shard lock; it quiesces the shards itself for the
// consistent cut.
//
// The anchor must be captured inside the lockAll window: the moment the
// shard locks drop, a concurrent operation (SubmitCtx, an activation timer,
// Delete) can append records and advance walSeq, and a snapshot anchored
// past records whose effects are not in the blob would make recovery skip
// them — silently losing the operations. persistMu nests inside shard locks
// everywhere (appendRecord), so acquiring it here preserves lock order, and
// holding it through Snapshot pins anchor == last appended record at the
// checkpoint's fsync.
//
// Group-commit interaction: the checkpoint first takes commit leadership —
// waiting out any in-flight group flush — because Snapshot both syncs the
// log and may compact it (swapping the writer's file handle), which must
// never overlap a staged write still holding the old handle. For a
// StagedSink the snapshot's own sync advances the durable frontier (anchor
// == walSeq at the cut, at or past every queued commit target), so queued
// operations are released durable without another fsync. For probing sinks
// (§9.2 crashtest) the frontier is deliberately NOT advanced: those sinks
// observe every operation boundary through Committed, and swallowing the
// boundary that follows a checkpoint would shift their captured commit
// stream relative to the pre-group-commit contract.
func (o *Orchestrator) checkpoint() {
	if o.persist == nil {
		return
	}
	g := &o.commit
	g.mu.Lock()
	g.barrier++
	for g.flushing && !g.closed {
		g.cond.Wait()
	}
	g.barrier--
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.flushing = true
	g.mu.Unlock()

	o.lockAll()
	blob, err := o.buildCheckpointLocked()
	o.persistMu.Lock()
	anchor := o.walSeq
	o.unlockAll()
	ok := false
	if o.persistErr == nil && !o.persistClosed {
		if err == nil {
			err = o.persist.Snapshot(anchor, blob)
		}
		if err != nil {
			o.persistErr = err
		} else {
			ok = true
		}
	}
	o.persistMu.Unlock()

	_, staged := o.persist.(StagedSink)
	g.mu.Lock()
	g.flushing = false
	if ok {
		g.fsyncs++
		if staged && anchor > g.durable {
			g.durable = anchor
		}
		// The snapshot's sync may already cover every member of the
		// gathering ticket; complete it here rather than waiting for its
		// parked leader to win the lock back — under a hot checkpoint loop
		// the leader may not be scheduled for a long time, and its members
		// would be held hostage with their records long since durable.
		if t := g.cur; t != nil && g.durable >= t.maxTarget {
			g.cur = nil
			close(t.done)
		}
	} else if err != nil {
		g.err = err
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// StateDigest returns a canonical JSON image of every externally observable
// outcome the recovery contract promises to reproduce bit-identically: the
// gain report, every slice snapshot in submission order, the published
// epoch snapshot, the capacity ledger's float bits, the event sequence head
// and the epoch counter. Crash-point tests compare digests between an
// uncrashed run and a crash-recovered one at commit boundaries.
//
// Fields derived live from the radio environment (physical capacity at the
// current mean CQI, and the overbooking ratio computed from it) are
// excluded: chaos-injected CQI fades are deliberately not durable, so a
// recovered orchestrator measures default-environment capacity. The
// epoch-aligned values inside LastEpoch are restored verbatim from the log
// and do compare exactly.
func (o *Orchestrator) StateDigest() []byte {
	g := o.Gain()
	g.CapacityMbps = 0
	g.OverbookingRatio = 0
	var last *EpochSnapshot
	if snap, ok := o.LastEpoch(); ok {
		last = &snap
	}
	d := struct {
		Gain         GainReport       `json:"gain"`
		Slices       []slice.Snapshot `json:"slices"`
		LastEpoch    *EpochSnapshot   `json:"last_epoch,omitempty"`
		LedgerMbps   float64          `json:"ledger_mbps"`
		LastEventSeq int64            `json:"last_event_seq"`
		Epochs       int64            `json:"epochs"`
	}{
		Gain:         g,
		Slices:       o.List(),
		LastEpoch:    last,
		LedgerMbps:   o.ledger.Load(),
		LastEventSeq: o.bus.LastSeq(),
		Epochs:       o.epochs.Load(),
	}
	b, err := json.Marshal(d)
	if err != nil {
		return []byte("digest-error: " + err.Error())
	}
	return b
}
