package core

import (
	"encoding/json"
	"time"

	"repro/internal/slice"
	"repro/internal/wal"
)

// This file is the orchestrator side of the durable write-ahead log
// (DESIGN.md §9). The framing layer (internal/wal) is payload-agnostic; the
// record schema below is the orchestration-level redo log: every record
// carries the full logged *outcome* of a state transition (PRBs per eNB,
// path hops and bandwidth, MEC host, money and ledger movements), so replay
// imposes recorded decisions instead of re-deriving them — the environment
// that shaped the original decision (CQI fades, MEC brownouts) is not
// durable, and re-running the decision logic against a rebuilt default
// environment could diverge.
//
// Hook discipline: records are appended inside the mutating operation's
// critical section (appendRecord takes only the leaf persistMu, so it is
// safe under shard locks and epochMu), and each top-level operation ends
// with one commitPersist() — the fsync boundary — called with no shard lock
// and no epochMu held. Durability is therefore batched per operation: a
// crash between an append and its commit may lose that operation entirely,
// but can never surface a torn prefix of it as recovered state.

// Sink receives the orchestrator's write-ahead records. The production
// implementation wraps *wal.Writer (see WALSink); crash-point tests
// substitute an in-memory sink that snapshots digests at commit boundaries.
//
// Append may be called under shard locks and epochMu (it must only buffer).
// Committed and Snapshot are only ever invoked with no orchestrator lock
// held except the persistence mutex, so a Sink whose Committed reads back
// orchestrator state (List, Gain, StateDigest) is safe under a
// single-driver clock; such read-back sinks are for deterministic tests
// only, not for live concurrent deployments.
type Sink interface {
	// Append buffers one record. Sequence numbers are contiguous from 1.
	Append(rec wal.Record) error
	// Committed marks the operation boundary: everything appended so far
	// must become durable (fsync for the file-backed sink).
	Committed() error
	// Snapshot durably checkpoints a full-state blob anchored at record
	// sequence seq; records up to and including seq are folded into it.
	Snapshot(seq uint64, blob []byte) error
}

// walSink adapts *wal.Writer to the Sink interface.
type walSink struct{ w *wal.Writer }

func (s walSink) Append(rec wal.Record) error         { return s.w.Append(rec) }
func (s walSink) Committed() error                    { return s.w.Sync() }
func (s walSink) Snapshot(seq uint64, b []byte) error { return s.w.Snapshot(seq, b) }

// WALSink wraps a write-ahead-log writer as the orchestrator's persistence
// sink: Committed maps to the batched fsync, Snapshot to the atomic
// checkpoint rename.
func WALSink(w *wal.Writer) Sink { return walSink{w} }

// Record type tags of the orchestration redo log.
const (
	recAdmit    = "admit"
	recReject   = "reject"
	recActivate = "activate"
	recTeardown = "teardown"
	recResize   = "resize"
	recReroute  = "reroute"
	recEpoch    = "epoch"
	recLink     = "link"
	recShutdown = "shutdown"
)

// pathRecord is one transport path outcome: the exact hops and bandwidth
// the original run reserved, so replay re-imposes the same route even if
// the (unlogged) topology weather would steer a fresh computation elsewhere.
type pathRecord struct {
	ID      string   `json:"id"`
	Hops    []string `json:"hops"`
	Mbps    float64  `json:"mbps"`
	DelayMs float64  `json:"delay_ms"`
}

// admitRecord logs a successful admission: the slice's full durable image
// (state Installing, allocation populated) plus every substrate outcome the
// install transaction produced.
type admitRecord struct {
	Slice        slice.Persisted `json:"slice"`
	ReservedMbps float64         `json:"reserved_mbps"`
	Paths        []pathRecord    `json:"paths,omitempty"`
	MECHost      string          `json:"mec_host,omitempty"`
	MECCPU       float64         `json:"mec_cpu,omitempty"`
	SubmittedAt  time.Time       `json:"submitted_at"`
	ActivateAt   time.Time       `json:"activate_at"`
	Events       []Event         `json:"events"`
}

// rejectRecord logs a rejection. ReservedMbps mirrors a capacity-ledger
// reserve-then-release the admission path performed before failing (zero
// when admission failed before the radio check): float addition is not
// exactly invertible, so replay must repeat the round trip to reproduce the
// ledger's bits.
type rejectRecord struct {
	Slice        slice.Persisted `json:"slice"`
	ReservedMbps float64         `json:"reserved_mbps,omitempty"`
	Events       []Event         `json:"events"`
}

// activateRecord logs the vEPC-boot completion that turned a slice Active.
type activateRecord struct {
	Slice  slice.ID  `json:"slice"`
	At     time.Time `json:"at"`
	Events []Event   `json:"events"`
}

// teardownRecord logs a teardown from any live state (tenant delete,
// expiry, EPC boot failure, unrecoverable link failure). The event carries
// the taxonomy type (deleted/expired) and post-transition state.
type teardownRecord struct {
	Slice  slice.ID `json:"slice"`
	Reason string   `json:"reason"`
	Events []Event  `json:"events"`
}

// resizeRecord logs a multi-domain reallocation outcome. Mbps and PRBs are
// the post-resize radio allocation; MECMbps is the throughput the MEC app
// was sized from (the radio-quantized value on engine resizes, the raw fair
// share on degradation shrinks). ResizePaths records whether transport
// reservations were resized to Mbps (engine resizes) or left to a preceding
// reroute record (degradation shrinks).
type resizeRecord struct {
	Slice       slice.ID       `json:"slice"`
	Mbps        float64        `json:"mbps"`
	PRBs        map[string]int `json:"prbs"`
	MECMbps     float64        `json:"mec_mbps"`
	ResizePaths bool           `json:"resize_paths"`
	Events      []Event        `json:"events"`
}

// rerouteRecord logs a restoration re-route: the replacement paths at their
// reserved bandwidth. Events is empty for the degradation shrink's interim
// re-route (the following resizeRecord carries the EventResized).
type rerouteRecord struct {
	Slice        slice.ID     `json:"slice"`
	Paths        []pathRecord `json:"paths"`
	WorstDelayMs float64      `json:"worst_delay_ms"`
	Events       []Event      `json:"events,omitempty"`
}

// epochItemRecord is one measured slice's epoch outcome. Counted mirrors
// whether the analysis phase reached the slice alive (RecordEpoch and the
// forecaster observation ran); Charged whether the commit phase actually
// billed the violation; LedgerUpdated/LedgerTo the capacity-ledger roll.
type epochItemRecord struct {
	Slice         slice.ID `json:"slice"`
	Demand        float64  `json:"demand"`
	Served        float64  `json:"served"`
	Counted       bool     `json:"counted,omitempty"`
	Charged       bool     `json:"charged,omitempty"`
	LedgerUpdated bool     `json:"ledger_updated,omitempty"`
	LedgerTo      float64  `json:"ledger_to,omitempty"`
}

// epochRecord logs one control-epoch pass. Resize outcomes of the epoch are
// separate resizeRecords appended (in commit order) before this record;
// Snapshot is the published EpochSnapshot verbatim — including gain fields
// derived from the unlogged radio environment — so recovery restores the
// read plane bit-identically.
type epochRecord struct {
	Epoch    int64             `json:"epoch"`
	At       time.Time         `json:"at"`
	RANUtil  float64           `json:"ran_util"`
	Items    []epochItemRecord `json:"items,omitempty"`
	Snapshot EpochSnapshot     `json:"snapshot"`
	Events   []Event           `json:"events,omitempty"`
}

// linkRecord logs a transport-link transition driven through the
// orchestrator (failure, degradation, restoration). Per-victim outcomes
// follow as their own records in WAL order.
type linkRecord struct {
	Kind         string  `json:"kind"` // "fail" | "degrade" | "restore"
	From         string  `json:"from"`
	To           string  `json:"to"`
	CapacityMbps float64 `json:"capacity_mbps,omitempty"`
	Events       []Event `json:"events"`
}

// shutdownRecord logs a clean daemon shutdown: recovery knows the previous
// run ended at a commit boundary, and subscribers that were draining when
// the process died can observe the terminal event after restart.
type shutdownRecord struct {
	At     time.Time `json:"at"`
	Events []Event   `json:"events"`
}

// appendRecord marshals payload and buffers it on the sink under the next
// WAL sequence. It takes only the leaf persistMu, so callers may hold shard
// locks and epochMu. The first sink or marshal error latches: persistence
// is disabled from that point (surfaced via PersistStatus) rather than
// crashing the control plane mid-operation.
func (o *Orchestrator) appendRecord(typ string, payload any) {
	if o.persist == nil {
		return
	}
	o.persistMu.Lock()
	defer o.persistMu.Unlock()
	if o.persistErr != nil || o.persistClosed {
		return
	}
	b, err := json.Marshal(payload)
	if err == nil {
		o.walSeq++
		err = o.persist.Append(wal.Record{Seq: o.walSeq, Type: typ, Payload: b})
	}
	if err != nil {
		o.persistErr = err
	}
}

// commitPersist is the durability boundary: every record appended by the
// operation becomes durable (fsync in the file-backed sink). It must be
// called with no shard lock and no epochMu held — test sinks read the
// orchestrator's state digest from inside Committed.
func (o *Orchestrator) commitPersist() {
	if o.persist == nil {
		return
	}
	o.persistMu.Lock()
	defer o.persistMu.Unlock()
	if o.persistErr != nil || o.persistClosed {
		return
	}
	if err := o.persist.Committed(); err != nil {
		o.persistErr = err
	}
}

// pathRecords captures the current transport reservations of the given
// path IDs (leaf substrate read locks only — safe under shard locks).
func (o *Orchestrator) pathRecords(pids []string) []pathRecord {
	out := make([]pathRecord, 0, len(pids))
	for _, pid := range pids {
		if r, ok := o.tb.Transport.Reservation(pid); ok {
			out = append(out, pathRecord{ID: r.ID, Hops: r.Hops, Mbps: r.Mbps, DelayMs: r.DelayMs})
		}
	}
	return out
}

// appendAdmit logs a successful admission with every substrate outcome.
// The caller holds the slice's shard lock.
func (o *Orchestrator) appendAdmit(m *managedSlice, reservedMbps float64, submittedAt time.Time, events ...Event) {
	if o.persist == nil {
		return
	}
	alloc := m.s.Allocation()
	rec := admitRecord{
		Slice:        m.s.Persist(),
		ReservedMbps: reservedMbps,
		Paths:        o.pathRecords(alloc.PathIDs),
		SubmittedAt:  submittedAt,
		ActivateAt:   m.activateAt,
		Events:       events,
	}
	if alloc.MECAppID != "" {
		if app, ok := o.tb.MEC.App(alloc.MECAppID); ok {
			rec.MECHost, rec.MECCPU = app.Host, app.CPU
		}
	}
	o.appendRecord(recAdmit, rec)
}

// PersistStatus reports the durability plane's health.
type PersistStatus struct {
	// Enabled reports whether a persistence sink is attached.
	Enabled bool `json:"enabled"`
	// LastSeq is the sequence of the most recently appended WAL record.
	LastSeq uint64 `json:"last_seq"`
	// Error carries the latched persistence error ("" while healthy).
	// Persistence disables itself on the first sink failure; the
	// orchestrator keeps running without durability.
	Error string `json:"error,omitempty"`
	// Recovered reports whether this orchestrator was built by Recover.
	Recovered bool `json:"recovered"`
	// Recovery summarises the recovery pass when Recovered.
	Recovery *RecoveryReport `json:"recovery,omitempty"`
}

// PersistStatus returns the durability plane's current status.
func (o *Orchestrator) PersistStatus() PersistStatus {
	st := PersistStatus{Enabled: o.persist != nil, Recovery: o.recovery, Recovered: o.recovery != nil}
	o.persistMu.Lock()
	st.LastSeq = o.walSeq
	if o.persistClosed {
		st.Enabled = false
	}
	if o.persistErr != nil {
		st.Error = o.persistErr.Error()
	}
	o.persistMu.Unlock()
	return st
}

// Shutdown stops the control loop, publishes the terminal EventShutdown on
// the bus (so draining subscribers observe a clean end of stream instead of
// a silent cut) and flushes the write-ahead log. The orchestrator remains
// readable — and the sink remains attached, so late mutations stay durable
// while a server drains — until the caller closes the WAL writer via
// ClosePersist.
func (o *Orchestrator) Shutdown() Event {
	o.Stop()
	ev := Event{Time: o.clock.Now(), Type: EventShutdown, Detail: "orchestrator shutting down"}
	ev.Seq = o.bus.Publish(ev)
	o.appendRecord(recShutdown, shutdownRecord{At: ev.Time, Events: []Event{ev}})
	o.commitPersist()
	return ev
}

// ClosePersist retires the persistence sink and runs closeFn (the WAL
// writer's Close) under the persistence mutex, so it can never race a
// concurrent appendRecord/commitPersist against the writer's internals.
// The sink pointer stays in place (the lock-free `o.persist != nil` fast
// paths depend on it being immutable); the guarded persistClosed flag makes
// every subsequent append and commit a no-op rather than latching an error
// on a closed file — so a daemon closes the log only after its server has
// drained (see cmd/orchestrator). Safe to call without a sink attached and
// more than once; closeFn may be nil.
func (o *Orchestrator) ClosePersist(closeFn func() error) error {
	o.persistMu.Lock()
	defer o.persistMu.Unlock()
	o.persistClosed = true
	if closeFn == nil {
		return nil
	}
	return closeFn()
}

// checkpointState is the full-state checkpoint blob (snapshot payload):
// everything recovery needs to rebuild the orchestrator without replaying
// the log from its beginning. Not captured — and documented as such in
// DESIGN.md §9 — are forecaster internals (re-driven from tail epoch
// records only), the monitoring store, and environment perturbations (CQI,
// MEC host capacities); recovered slices re-impose their logged outcomes
// onto a default-environment testbed.
type checkpointState struct {
	// EventNext is the bus's next sequence number.
	EventNext int64 `json:"event_next"`
	// Epochs is the control-loop pass counter.
	Epochs int64 `json:"epochs"`
	// SeqCounter is the slice-ID sequence counter.
	SeqCounter int64 `json:"seq_counter"`
	// LastEpoch is the published epoch snapshot, verbatim.
	LastEpoch *EpochSnapshot `json:"last_epoch,omitempty"`
	// LedgerLoad is the capacity ledger's running float sum, bit-exact.
	LedgerLoad float64         `json:"ledger_load"`
	PLMN       slice.PLMNState `json:"plmn"`
	Acc        accState        `json:"acc"`
	// Counters are the global sums of the per-shard dashboard counters;
	// restore folds them into shard 0 (only sums are ever read).
	Counters counterState `json:"counters"`
	// History is the bounded finished-slice eviction queue, in order.
	History []slice.ID `json:"history,omitempty"`
	// Links is the transport topology's per-link up/capacity state.
	Links []linkState `json:"links,omitempty"`
	// Slices are the registry's slices in submission order, each with its
	// substrate outcomes for re-imposition.
	Slices []persistedSlice `json:"slices,omitempty"`
}

// accState is the gain accumulator's durable image (order-sensitive float
// aggregates, captured and restored bit-exactly).
type accState struct {
	RevenueEUR     float64        `json:"revenue_eur"`
	PenaltyEUR     float64        `json:"penalty_eur"`
	ContractedMbps float64        `json:"contracted_mbps"`
	AllocatedMbps  float64        `json:"allocated_mbps"`
	Live           int            `json:"live"`
	RejectReasons  map[string]int `json:"reject_reasons,omitempty"`
}

// counterState sums the per-shard dashboard counters.
type counterState struct {
	Admitted         int64 `json:"admitted"`
	Rejected         int64 `json:"rejected"`
	Violations       int64 `json:"violations"`
	Reconfigurations int64 `json:"reconfigurations"`
	Active           int64 `json:"active"`
}

// linkState is one transport link's durable state.
type linkState struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	Up           bool    `json:"up"`
	CapacityMbps float64 `json:"capacity_mbps"`
}

// persistedSlice is one registry entry in the checkpoint: the slice's full
// durable image plus the orchestrator-level bookkeeping and substrate
// outcomes that live outside the slice.
type persistedSlice struct {
	Slice      slice.Persisted `json:"slice"`
	LedgerMbps float64         `json:"ledger_mbps,omitempty"`
	// Paths / MECHost / MECCPU capture substrate outcomes for live slices
	// (empty for rejected/terminated entries kept only for the dashboard).
	Paths      []pathRecord     `json:"paths,omitempty"`
	MECHost    string           `json:"mec_host,omitempty"`
	MECCPU     float64          `json:"mec_cpu,omitempty"`
	ActivateAt time.Time        `json:"activate_at,omitempty"`
	LastDemand float64          `json:"last_demand,omitempty"`
	HaveDemand bool             `json:"have_demand,omitempty"`
	Timeline   *InstallTimeline `json:"timeline,omitempty"`
}

// buildCheckpointLocked assembles the checkpoint blob. The caller holds
// epochMu and every shard lock, so the cut is consistent.
func (o *Orchestrator) buildCheckpointLocked() ([]byte, error) {
	st := checkpointState{
		EventNext:  o.bus.LastSeq() + 1,
		Epochs:     o.epochs.Load(),
		SeqCounter: o.seq.Load(),
		LedgerLoad: o.ledger.Load(),
		PLMN:       o.plmns.Export(),
	}
	if le := o.lastEpoch.Load(); le != nil {
		snap := *le
		st.LastEpoch = &snap
	}
	o.acc.mu.Lock()
	st.Acc = accState{
		RevenueEUR:     o.acc.revenueEUR,
		PenaltyEUR:     o.acc.penaltyEUR,
		ContractedMbps: o.acc.contractedMbps,
		AllocatedMbps:  o.acc.allocatedMbps,
		Live:           o.acc.live,
		RejectReasons:  make(map[string]int, len(o.acc.rejectReasons)),
	}
	for k, v := range o.acc.rejectReasons {
		st.Acc.RejectReasons[k] = v
	}
	o.acc.mu.Unlock()
	for _, sh := range o.shards {
		st.Counters.Admitted += sh.admitted.Load()
		st.Counters.Rejected += sh.rejected.Load()
		st.Counters.Violations += sh.violations.Load()
		st.Counters.Reconfigurations += sh.reconfigurations.Load()
		st.Counters.Active += sh.active.Load()
	}
	o.history.mu.Lock()
	st.History = append([]slice.ID(nil), o.history.ids...)
	o.history.mu.Unlock()
	for _, ls := range o.tb.Transport.Snapshot() {
		st.Links = append(st.Links, linkState{From: ls.From, To: ls.To, Up: ls.Up, CapacityMbps: ls.CapacityMbps})
	}
	for _, m := range o.orderedSlicesAllLocked() {
		ps := persistedSlice{
			Slice:      m.s.Persist(),
			LedgerMbps: m.ledgerMbps,
			ActivateAt: m.activateAt,
			LastDemand: m.lastDemand,
			HaveDemand: m.haveDemand,
		}
		switch m.s.State() {
		case slice.StateAdmitted, slice.StateInstalling, slice.StateActive, slice.StateReconfiguring:
			alloc := m.s.Allocation()
			ps.Paths = o.pathRecords(alloc.PathIDs)
			if alloc.MECAppID != "" {
				if app, ok := o.tb.MEC.App(alloc.MECAppID); ok {
					ps.MECHost, ps.MECCPU = app.Host, app.CPU
				}
			}
		}
		if tl, ok := m.sh.timelines[m.s.ID()]; ok {
			cp := *tl
			ps.Timeline = &cp
		}
		st.Slices = append(st.Slices, ps)
	}
	return json.Marshal(st)
}

// checkpoint writes a full-state snapshot anchored at the WAL sequence
// current while the shards are quiesced. Called from the epoch tail with
// epochMu held and no shard lock; it quiesces the shards itself for the
// consistent cut.
//
// The anchor must be captured inside the lockAll window: the moment the
// shard locks drop, a concurrent operation (SubmitCtx, an activation timer,
// Delete) can append records and advance walSeq, and a snapshot anchored
// past records whose effects are not in the blob would make recovery skip
// them — silently losing the operations. persistMu nests inside shard locks
// everywhere (appendRecord), so acquiring it here preserves lock order, and
// holding it through Snapshot pins anchor == last appended record at the
// checkpoint's fsync.
func (o *Orchestrator) checkpoint() {
	if o.persist == nil {
		return
	}
	o.lockAll()
	blob, err := o.buildCheckpointLocked()
	o.persistMu.Lock()
	anchor := o.walSeq
	o.unlockAll()
	defer o.persistMu.Unlock()
	if o.persistErr != nil || o.persistClosed {
		return
	}
	if err == nil {
		err = o.persist.Snapshot(anchor, blob)
	}
	if err != nil {
		o.persistErr = err
	}
}

// StateDigest returns a canonical JSON image of every externally observable
// outcome the recovery contract promises to reproduce bit-identically: the
// gain report, every slice snapshot in submission order, the published
// epoch snapshot, the capacity ledger's float bits, the event sequence head
// and the epoch counter. Crash-point tests compare digests between an
// uncrashed run and a crash-recovered one at commit boundaries.
//
// Fields derived live from the radio environment (physical capacity at the
// current mean CQI, and the overbooking ratio computed from it) are
// excluded: chaos-injected CQI fades are deliberately not durable, so a
// recovered orchestrator measures default-environment capacity. The
// epoch-aligned values inside LastEpoch are restored verbatim from the log
// and do compare exactly.
func (o *Orchestrator) StateDigest() []byte {
	g := o.Gain()
	g.CapacityMbps = 0
	g.OverbookingRatio = 0
	var last *EpochSnapshot
	if snap, ok := o.LastEpoch(); ok {
		last = &snap
	}
	d := struct {
		Gain         GainReport       `json:"gain"`
		Slices       []slice.Snapshot `json:"slices"`
		LastEpoch    *EpochSnapshot   `json:"last_epoch,omitempty"`
		LedgerMbps   float64          `json:"ledger_mbps"`
		LastEventSeq int64            `json:"last_event_seq"`
		Epochs       int64            `json:"epochs"`
	}{
		Gain:         g,
		Slices:       o.List(),
		LastEpoch:    last,
		LedgerMbps:   o.ledger.Load(),
		LastEventSeq: o.bus.LastSeq(),
		Epochs:       o.epochs.Load(),
	}
	b, err := json.Marshal(d)
	if err != nil {
		return []byte("digest-error: " + err.Error())
	}
	return b
}
