package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/wal"
)

// groupSink is an in-memory StagedSink for exercising the commit-group
// protocol in isolation: the staged step sleeps for delay (modelling a slow
// fsync, so concurrent committers pile into groups), counts completed
// syncs, and fails with failWith when set. inFlight is observable so tests
// can prove the quiesce contract — Snapshot and Close must never overlap a
// staged step.
type groupSink struct {
	delay    time.Duration
	failWith error

	appends  atomic.Int64
	syncs    atomic.Int64
	inFlight atomic.Bool
}

func (s *groupSink) Append(rec wal.Record) error { s.appends.Add(1); return nil }
func (s *groupSink) Committed() error            { return s.StageCommit()() }
func (s *groupSink) Snapshot(seq uint64, b []byte) error {
	if s.inFlight.Load() {
		return errors.New("snapshot overlapped a staged step")
	}
	return nil
}
func (s *groupSink) StageCommit() func() error {
	return func() error {
		s.inFlight.Store(true)
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		s.inFlight.Store(false)
		if s.failWith != nil {
			return s.failWith
		}
		s.syncs.Add(1)
		return nil
	}
}

// groupEnv builds a minimal orchestrator over the given sink. The commit
// path never touches the testbed, so the default small topology is fine.
func groupEnv(t *testing.T, cfg Config, sink Sink) *Orchestrator {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Persist = sink
	return New(cfg, tb, s, monitor.NewStore(128))
}

type groupPayload struct {
	N int `json:"n"`
}

// TestGroupCommitSoloSynchronous proves the lone-writer fallback: with no
// concurrency, every operation's commit is a synchronous group of one —
// exactly the pre-group-commit per-op fsync behaviour — and the counters
// say so.
func TestGroupCommitSoloSynchronous(t *testing.T) {
	sink := &groupSink{}
	o := groupEnv(t, Config{}, sink)
	const ops = 5
	for i := 0; i < ops; i++ {
		o.appendRecord("test", groupPayload{N: i})
		o.commitPersist()
	}
	st := o.PersistStatus()
	if st.Fsyncs != ops || st.CommitOps != ops {
		t.Fatalf("solo: fsyncs=%d commitOps=%d, want %d each", st.Fsyncs, st.CommitOps, ops)
	}
	if st.MaxGroup != 1 {
		t.Fatalf("solo: maxGroup=%d, want 1", st.MaxGroup)
	}
	if st.DurableSeq != st.LastSeq || st.LastSeq != ops {
		t.Fatalf("solo: durable=%d last=%d, want %d", st.DurableSeq, st.LastSeq, ops)
	}
	// A commit with no new records is covered by the last fsync and must
	// not pay another one.
	o.commitPersist()
	if st := o.PersistStatus(); st.Fsyncs != ops {
		t.Fatalf("empty commit fsynced: %d, want %d", st.Fsyncs, ops)
	}
}

// TestGroupCommitBatchesConcurrentWriters proves the amortization: with a
// slow staged fsync and many concurrent committers, operations arriving
// during a flush are covered by the next leader's single fsync, so the
// fsync count lands well below the operation count while every operation
// still returns durable.
func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	sink := &groupSink{delay: 2 * time.Millisecond}
	o := groupEnv(t, Config{}, sink)
	const workers, iters = 16, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				o.appendRecord("test", groupPayload{N: w*iters + i})
				o.commitPersist()
			}
		}(w)
	}
	wg.Wait()
	st := o.PersistStatus()
	if st.Error != "" {
		t.Fatalf("latched error: %s", st.Error)
	}
	if st.CommitOps != workers*iters {
		t.Fatalf("commitOps=%d, want %d", st.CommitOps, workers*iters)
	}
	if st.Fsyncs >= st.CommitOps {
		t.Fatalf("no amortization: %d fsyncs for %d ops", st.Fsyncs, st.CommitOps)
	}
	if got := sink.syncs.Load(); uint64(got) != st.Fsyncs {
		t.Fatalf("sink saw %d syncs, status says %d", got, st.Fsyncs)
	}
	if st.DurableSeq != st.LastSeq {
		t.Fatalf("quiesced but durable=%d < last=%d", st.DurableSeq, st.LastSeq)
	}
	t.Logf("%d ops, %d fsyncs, max group %d", st.CommitOps, st.Fsyncs, st.MaxGroup)
}

// TestGroupCommitFollowerObservesLeaderError is the error-propagation edge
// case: when the leader's fsync fails, every member of the group — and
// every later committer — must observe the failure and return instead of
// hanging on a durability that will never come; the error latches exactly
// like a per-op fsync failure always has.
func TestGroupCommitFollowerObservesLeaderError(t *testing.T) {
	sinkErr := errors.New("disk gone")
	sink := &groupSink{delay: 2 * time.Millisecond, failWith: sinkErr}
	o := groupEnv(t, Config{}, sink)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o.appendRecord("test", groupPayload{N: w})
			o.commitPersist()
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("group members hung after the leader's fsync failed")
	}
	st := o.PersistStatus()
	if st.Error == "" {
		t.Fatal("leader fsync failure did not latch")
	}
	if st.DurableSeq != 0 {
		t.Fatalf("durable advanced to %d past a failed fsync", st.DurableSeq)
	}
	if sink.syncs.Load() != 0 {
		t.Fatalf("sink recorded %d successful syncs", sink.syncs.Load())
	}
	// Later operations must not block or fsync: persistence is disabled.
	o.appendRecord("test", groupPayload{N: 99})
	o.commitPersist()
	if got := o.PersistStatus(); got.Fsyncs != 0 {
		t.Fatalf("commit after latched error fsynced: %+v", got)
	}
}

// TestClosePersistRacesCommitGroup drives ClosePersist into concurrent
// committers on a slow staged sink: close must wait out the in-flight
// flush (never overlapping a staged step — that is the quiesce contract a
// real WAL close needs, since Close touches the same file handle), wake
// every blocked member, and leave later commits as silent no-ops.
func TestClosePersistRacesCommitGroup(t *testing.T) {
	sink := &groupSink{delay: time.Millisecond}
	o := groupEnv(t, Config{}, sink)
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				o.appendRecord("test", groupPayload{N: w*1000 + i})
				o.commitPersist()
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond) // let groups form
	closed := 0
	err := o.ClosePersist(func() error {
		if sink.inFlight.Load() {
			t.Error("ClosePersist overlapped a staged flush")
		}
		closed++
		return nil
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if closed != 1 {
		t.Fatalf("closeFn ran %d times", closed)
	}
	st := o.PersistStatus()
	if st.Enabled {
		t.Fatal("still enabled after ClosePersist")
	}
	if st.Error != "" {
		t.Fatalf("close latched an error: %s", st.Error)
	}
	// Post-close commits are no-ops, not errors.
	before := st.Fsyncs
	o.appendRecord("test", groupPayload{N: -1})
	o.commitPersist()
	if got := o.PersistStatus(); got.Fsyncs != before || got.Error != "" {
		t.Fatalf("post-close commit not a no-op: %+v", got)
	}
}

// TestGroupCommitChurnStress is the full-stack soak the recovery CI job
// runs under -race -count=2: Submit/SubmitBatch/Delete churn from many
// goroutines against a real group-committed WAL with the invariant auditor
// armed, an AuditSweep barrier mid-churn and at the end, and a final
// recovery proving the group-committed log replays to an audit-clean
// registry of the same shape.
func TestGroupCommitChurnStress(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           2048,
		HistoryLimit:        128,
		Shards:              8,
		Audit:               true,
	}
	s := sim.NewSimulator(17)
	tb, err := testbed.New(testbed.Config{
		ENBs: 4, MaxPLMNs: 2048, CoreHosts: 16, EdgeHosts: 8,
		MECHosts: 2, MECHostCPUs: 32,
	}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Persist = WALSink(w)
	o := New(cfg, tb, s, monitor.NewStore(1024))

	workers, iters := 8, 30
	if testing.Short() {
		workers, iters = 4, 10
	}
	mk := func(tenant string, mbps, latency float64) slice.Request {
		return slice.Request{
			Tenant: tenant,
			SLA: slice.SLA{
				ThroughputMbps: mbps, MaxLatencyMs: latency,
				Duration: time.Hour, PriceEUR: 10, PenaltyEUR: 1,
			},
		}
	}
	churn := func(half int) {
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				tenant := fmt.Sprintf("gc-%d-%d", half, g)
				for i := 0; i < iters; i++ {
					switch i % 3 {
					case 0:
						sl, err := o.Submit(mk(tenant, 2, 50), nil)
						if err != nil {
							t.Error(err)
							return
						}
						if sl.State() != slice.StateRejected {
							if err := o.Delete(sl.ID()); err != nil {
								t.Error(err)
								return
							}
						}
					case 1:
						items := []BatchItem{
							{Request: mk(tenant, 2, 50)},
							{Request: mk(tenant, 1, 50)},
						}
						out, err := o.SubmitBatch(items, BatchFCFS)
						if err != nil {
							t.Error(err)
							return
						}
						for _, sl := range out {
							if sl != nil && sl.State() != slice.StateRejected {
								if err := o.Delete(sl.ID()); err != nil {
									t.Error(err)
									return
								}
							}
						}
					default:
						// Unmeetable latency: the certain-reject path still
						// writes (and group-commits) its reject record.
						sl, err := o.Submit(mk(tenant, 2, 0.01), nil)
						if err != nil {
							t.Error(err)
							return
						}
						if sl.State() != slice.StateRejected {
							t.Error("unmeetable latency admitted")
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}

	churn(0)
	// Mid-churn barrier: the books must balance while the WAL keeps going.
	o.AuditSweep()
	if vs := o.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("invariant violations at mid-churn barrier: %v", vs)
	}
	churn(1)
	o.AuditSweep()
	if vs := o.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("invariant violations after churn: %v", vs)
	}
	if n := o.ActiveCount(); n != 0 {
		t.Fatalf("%d slices still active after churn", n)
	}

	st := o.PersistStatus()
	if st.Error != "" {
		t.Fatalf("persistence latched an error: %s", st.Error)
	}
	if st.DurableSeq != st.LastSeq {
		t.Fatalf("quiesced but durable=%d < last=%d", st.DurableSeq, st.LastSeq)
	}
	if st.CommitOps == 0 || st.Fsyncs == 0 {
		t.Fatalf("counters dead: %+v", st)
	}
	t.Logf("churn: %d records, %d commit ops, %d fsyncs, max group %d",
		st.LastSeq, st.CommitOps, st.Fsyncs, st.MaxGroup)
	regSize := len(o.List())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := sim.NewSimulator(18)
	tb2, err := testbed.New(testbed.Config{
		ENBs: 4, MaxPLMNs: 2048, CoreHosts: 16, EdgeHosts: 8,
		MECHosts: 2, MECHostCPUs: 32,
	}, s2.Rand())
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Persist = nil
	o2, w2, err := Recover(cfg2, tb2, s2, monitor.NewStore(1024), dir)
	if err != nil {
		t.Fatalf("recover from group-committed log: %v", err)
	}
	defer w2.Close()
	o2.AuditSweep()
	if vs := o2.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("recovered state fails audit: %v", vs)
	}
	if got := len(o2.List()); got != regSize {
		t.Fatalf("recovered registry has %d entries, churned run had %d", got, regSize)
	}
}
