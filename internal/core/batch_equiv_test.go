package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/wal"
)

// recoveredDigest closes the writer and rebuilds an orchestrator from the
// directory, returning the recovered replica's state digest.
func recoveredDigest(t *testing.T, cfg Config, dir string, w *wal.Writer) []byte {
	t.Helper()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o, w2, err := Recover(cfg, tb, s, monitor.NewStore(512), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	return o.StateDigest()
}

// walRecords loads the directory's full record stream.
func walRecords(t *testing.T, dir string) []wal.Record {
	t.Helper()
	rec, err := wal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Records
}

// TestBatchedVsSequentialEquivalence proves the tentpole's exactness claim:
// for an all-feasible batch under FCFS, SubmitBatch (one feasibility sweep,
// one fsync at the batch edge) and item-by-item Submit produce identical
// slice outcomes, event sequences, ledger state, WAL record streams and
// crash-recovery digests — only the number of fsyncs differs.
func TestBatchedVsSequentialEquivalence(t *testing.T) {
	cfg := Config{Overbook: true, AdmissionLoadFactor: 1.0, UtilizationCap: 0.95}
	items := make([]BatchItem, 4)
	for i := range items {
		items[i] = BatchItem{Request: slice.Request{
			Tenant: fmt.Sprintf("eq-%d", i),
			SLA: slice.SLA{
				ThroughputMbps: 10, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: 50, PenaltyEUR: 1,
			},
		}}
	}

	dirSeq, dirBatch := t.TempDir(), t.TempDir()
	_, oSeq, wSeq := durableEnv(t, cfg, dirSeq)
	_, oBatch, wBatch := durableEnv(t, cfg, dirBatch)

	var seqSlices []*slice.Slice
	for _, it := range items {
		sl, err := oSeq.Submit(it.Request, it.Demand)
		if err != nil {
			t.Fatal(err)
		}
		seqSlices = append(seqSlices, sl)
	}
	batchSlices, err := oBatch.SubmitBatch(items, BatchFCFS)
	if err != nil {
		t.Fatal(err)
	}

	for i := range items {
		a, b := seqSlices[i], batchSlices[i]
		if a.ID() != b.ID() || a.State() != b.State() {
			t.Fatalf("item %d diverged: sequential %s/%v, batched %s/%v",
				i, a.ID(), a.State(), b.ID(), b.State())
		}
		if a.State() == slice.StateRejected {
			t.Fatalf("item %d rejected in the all-feasible scenario: %s", i, a.Reason())
		}
	}

	// Ledger, gain, event head, slice registry: one canonical image.
	dSeq, dBatch := oSeq.StateDigest(), oBatch.StateDigest()
	if !bytes.Equal(dSeq, dBatch) {
		t.Fatalf("state digests diverged:\nsequential %s\nbatched    %s", dSeq, dBatch)
	}

	// WAL record streams must be byte-identical: batching moves the
	// durability boundary (one fsync per batch), never the records.
	if err := wSeq.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := wBatch.Sync(); err != nil {
		t.Fatal(err)
	}
	rSeq, rBatch := walRecords(t, dirSeq), walRecords(t, dirBatch)
	if len(rSeq) != len(rBatch) {
		t.Fatalf("record counts diverged: sequential %d, batched %d", len(rSeq), len(rBatch))
	}
	for i := range rSeq {
		a, b := rSeq[i], rBatch[i]
		if a.Seq != b.Seq || a.Type != b.Type || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("record %d diverged:\nsequential %d %s %s\nbatched    %d %s %s",
				i, a.Seq, a.Type, a.Payload, b.Seq, b.Type, b.Payload)
		}
	}

	// Crash-recovery replicas of both logs agree with each other and with
	// the live systems.
	recSeq := recoveredDigest(t, cfg, dirSeq, wSeq)
	recBatch := recoveredDigest(t, cfg, dirBatch, wBatch)
	if !bytes.Equal(recSeq, recBatch) {
		t.Fatalf("recovered digests diverged:\nsequential %s\nbatched    %s", recSeq, recBatch)
	}
	if !bytes.Equal(recSeq, dSeq) {
		t.Fatalf("recovery drifted from live state:\nlive      %s\nrecovered %s", dSeq, recSeq)
	}
}

// TestBatchOverflowConservation covers the overflow half: when the budget
// forces losers, the batch admits exactly the policy's chosen subset in
// arrival positions, charges the ledger only for winners, and the batched
// WAL (one fsync for the whole mixed batch) still recovers to the live
// state bit-exactly.
func TestBatchOverflowConservation(t *testing.T) {
	cfg := Config{} // peak provisioning: estimates are the full contracts
	dir := t.TempDir()
	_, o, w := durableEnv(t, cfg, dir)

	items := suboptimalBatch() // 60+40+40+10 Mbps against ~93 Mbps of budget
	budget := o.radioCapacityMbps()*o.cfg.UtilizationCap - o.ledger.Load()
	reqs := make([]KnapsackRequest, len(items))
	for i, it := range items {
		reqs[i] = KnapsackRequest{Req: it.Request, LoadMbps: o.admissionEstimate(it.Request.SLA)}
	}
	chosen, _ := GreedyRevenueSubset(reqs, budget)
	want := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		want[i] = true
	}
	if len(chosen) == 0 || len(chosen) == len(items) {
		t.Fatalf("fixture lost its tension: %d of %d chosen", len(chosen), len(items))
	}

	slices, err := o.SubmitBatch(items, BatchFCFS)
	if err != nil {
		t.Fatal(err)
	}
	wantLoad := 0.0
	for i, sl := range slices {
		if want[i] {
			if sl.State() == slice.StateRejected {
				t.Fatalf("winner %d rejected: %s", i, sl.Reason())
			}
			wantLoad += reqs[i].LoadMbps
			continue
		}
		if sl.State() != slice.StateRejected {
			t.Fatalf("loser %d admitted: %v", i, sl.State())
		}
	}
	if got := o.ledger.Load(); got != wantLoad {
		t.Fatalf("ledger conservation broken: %v Mbps charged, winners total %v", got, wantLoad)
	}

	live := o.StateDigest()
	if rec := recoveredDigest(t, cfg, dir, w); !bytes.Equal(rec, live) {
		t.Fatalf("overflow batch recovery drifted:\nlive      %s\nrecovered %s", live, rec)
	}
}
