package core

import (
	"context"
	"slices"
	"sync"
	"time"

	"repro/internal/slice"
)

// This file implements the slice-lifecycle event bus: every orchestrator
// transition is published as a typed Event carrying a monotonically
// increasing global sequence number, with a bounded replay ring so
// subscribers can resume from any recent sequence (DESIGN.md §6).
//
// The bus is deliberately decoupled from the sharded hot path: shards
// publish by appending to the ring under the bus's own (leaf) mutex —
// sequence numbers are assigned there, not by shard counters — and wake
// subscribers with a condition-variable broadcast. Each subscriber drains
// the ring from its own goroutine at its own pace, so a slow or dead
// subscriber can never stall admission: when the ring laps a subscriber's
// cursor it receives a single EventResync marker (telling it to re-List and
// continue) instead of backpressuring the core.

// EventType names one kind of slice-lifecycle event. The values are stable
// API surface: they are the SSE `event:` field of GET /api/v2/events and the
// `type` field of the Event JSON encoding.
type EventType string

// The slice-lifecycle event taxonomy.
const (
	// EventSubmitted: a request reached the orchestrator and got an ID.
	EventSubmitted EventType = "submitted"
	// EventAdmitted: admission passed and the multi-domain install is
	// scheduled (slice state "installing").
	EventAdmitted EventType = "admitted"
	// EventRejected: admission turned the request down; RejectCode carries
	// the stable taxonomy bucket.
	EventRejected EventType = "rejected"
	// EventInstalled: the installation stages finished and the slice turned
	// Active (UEs may attach).
	EventInstalled EventType = "installed"
	// EventResized: the overbooking loop, squeeze or degradation handling
	// changed the slice's reservation; Mbps is the new allocation.
	EventResized EventType = "resized"
	// EventViolation: a monitoring epoch charged an SLA violation.
	EventViolation EventType = "violation"
	// EventExpired: the slice reached its contracted expiry and was torn
	// down.
	EventExpired EventType = "expired"
	// EventDeleted: the slice was torn down before expiry (tenant delete,
	// EPC boot failure, or an unrecoverable transport failure — see Detail).
	EventDeleted EventType = "deleted"
	// EventRestored: the slice's transport paths were re-routed around a
	// failed or degraded link.
	EventRestored EventType = "restored"
	// EventLinkFailed: a directed transport link went down; Link is
	// "from->to".
	EventLinkFailed EventType = "link-failed"
	// EventLinkDegraded: a directed transport link's capacity was rescaled.
	EventLinkDegraded EventType = "link-degraded"
	// EventLinkRestored: a directed transport link came back up.
	EventLinkRestored EventType = "link-restored"
	// EventResync is the backpressure marker: events before Seq were lost to
	// this subscriber (slow consumer, or a Since older than the replay
	// ring). Re-List current state and keep consuming.
	EventResync EventType = "resync"
	// EventShutdown is the terminal event of a clean daemon shutdown: the
	// stream ends here on purpose, subscribers should not expect more
	// events until the orchestrator recovers under a new run.
	EventShutdown EventType = "shutdown"
)

// Event is one ordered slice-lifecycle event. Seq is a global, strictly
// increasing sequence number: a subscriber that resumes with
// WatchOptions.Since (or GET /api/v2/events?since=) set to the last Seq it
// saw observes the exact same ordered tail an uninterrupted subscriber
// would, as long as the replay ring still holds it.
type Event struct {
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	Type EventType `json:"type"`
	// Slice-scoped fields (empty on link events and resync markers).
	Slice  slice.ID `json:"slice,omitempty"`
	Tenant string   `json:"tenant,omitempty"`
	// State is the slice's lifecycle state after the transition.
	State      string           `json:"state,omitempty"`
	RejectCode slice.RejectCode `json:"reject_code,omitempty"`
	// Mbps is the slice's current radio allocation (0 before install).
	Mbps float64 `json:"mbps,omitempty"`
	// Link is the directed transport link ("from->to") on link events.
	Link   string `json:"link,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// WatchOptions filters and positions one event subscription.
type WatchOptions struct {
	// Since positions the stream: 0 tails only new events; > 0 resumes
	// after that sequence number (replaying retained events Seq > Since);
	// < 0 replays everything the ring still holds before tailing. A Since
	// beyond the current head (e.g. a token from a previous daemon run)
	// yields an immediate EventResync.
	Since int64
	// Tenants keeps only events for these tenants (nil = all). Link events
	// carry no tenant and are filtered out when this is set.
	Tenants []string
	// States keeps only events whose post-transition slice state matches
	// (nil = all).
	States []string
	// Types keeps only these event types (nil = all).
	Types []EventType
	// Buffer is the subscriber channel capacity (default 64).
	Buffer int
}

func (o WatchOptions) match(ev Event) bool {
	if ev.Type == EventResync {
		return true // resync markers always pass: they carry the contract
	}
	if len(o.Types) > 0 && !slices.Contains(o.Types, ev.Type) {
		return false
	}
	if len(o.Tenants) > 0 && !slices.Contains(o.Tenants, ev.Tenant) {
		return false
	}
	if len(o.States) > 0 && !slices.Contains(o.States, ev.State) {
		return false
	}
	return true
}

// EventBus is the orchestrator's lifecycle event fan-out: a bounded replay
// ring plus any number of pull-based subscribers. Safe for concurrent use.
//
// The lock is a RWMutex with the condition variable on its read side:
// publishers take the write lock only for the O(1) sequence-assign-and-
// append, while any number of subscriber drain goroutines read the ring
// concurrently under read locks — so a large fan-out contends with itself,
// not with the admission hot path.
type EventBus struct {
	mu   sync.RWMutex
	cond *sync.Cond // on mu.RLocker(): readers wait, the writer broadcasts
	ring []Event
	next int64 // next sequence number to assign; the first event gets 1
	// tap, when set, observes every event synchronously under the bus
	// mutex, in sequence order — the invariant auditor's gap-freeness and
	// state-legality checks need exactly that ordering guarantee, which no
	// asynchronous subscriber can provide.
	tap func(Event)
}

// NewEventBus builds a bus retaining the last capacity events for replay
// (default 1024).
func NewEventBus(capacity int) *EventBus {
	if capacity <= 0 {
		capacity = 1024
	}
	b := &EventBus{ring: make([]Event, capacity), next: 1}
	b.cond = sync.NewCond(b.mu.RLocker())
	return b
}

// Publish assigns ev the next global sequence number, appends it to the
// replay ring and wakes subscribers. It never blocks beyond the bus mutex —
// subscriber backpressure is absorbed by per-subscriber cursors, not by the
// publisher — so it is safe to call from the admission hot path under shard
// locks. Returns the assigned sequence number.
func (b *EventBus) Publish(ev Event) int64 {
	b.mu.Lock()
	ev.Seq = b.next
	b.next++
	b.ring[(ev.Seq-1)%int64(len(b.ring))] = ev
	if b.tap != nil {
		b.tap(ev)
	}
	b.mu.Unlock()
	// Waiters register with the cond before releasing their read lock, and
	// the write above excludes read lock holders, so broadcasting after
	// unlock cannot miss a waiter.
	b.cond.Broadcast()
	return ev.Seq
}

// Restore advances the bus's next sequence number to at least next. It is
// the recovery primitive restoring the sequence space from a checkpoint;
// it never rewinds (replayed events re-published out of the log keep their
// original numbering via Republish).
func (b *EventBus) Restore(next int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if next > b.next {
		b.next = next
	}
}

// Republish re-inserts a logged event into the replay ring under its
// original sequence number — the log-replay primitive. Unlike Publish it
// assigns nothing, and it deliberately bypasses the tap: the invariant
// auditor is primed with the post-recovery state once replay finishes,
// rather than observing the historical stream twice.
func (b *EventBus) Republish(ev Event) {
	if ev.Seq <= 0 {
		return
	}
	b.mu.Lock()
	b.ring[(ev.Seq-1)%int64(len(b.ring))] = ev
	if ev.Seq >= b.next {
		b.next = ev.Seq + 1
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// SetTap installs the synchronous event observer (nil clears it). It must
// be set before any event is published — the orchestrator wires it at
// construction; installing it mid-stream would hand the observer a
// sequence that does not start where its state does.
func (b *EventBus) SetTap(tap func(Event)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tap = tap
}

// LastSeq returns the sequence number of the most recent event (0 when none
// has been published yet).
func (b *EventBus) LastSeq() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.next - 1
}

// oldestLocked returns the sequence of the oldest event the ring still
// holds. Caller holds b.mu.
func (b *EventBus) oldestLocked() int64 {
	o := b.next - int64(len(b.ring))
	if o < 1 {
		o = 1
	}
	return o
}

// Recent returns up to n of the most recent events, oldest first (n <= 0
// returns everything retained).
func (b *EventBus) Recent(n int) []Event {
	b.mu.RLock()
	defer b.mu.RUnlock()
	last := b.next - 1
	first := b.oldestLocked()
	if last < first {
		return nil
	}
	if n > 0 && last-first+1 > int64(n) {
		first = last - int64(n) + 1
	}
	out := make([]Event, 0, last-first+1)
	for s := first; s <= last; s++ {
		out = append(out, b.ring[(s-1)%int64(len(b.ring))])
	}
	return out
}

// Watch subscribes to the event stream. The returned channel delivers
// events in sequence order until ctx is cancelled, then closes. Each
// subscription drains the replay ring from its own goroutine, so a slow
// receiver delays only itself: if the ring laps its cursor it receives one
// EventResync marker and continues from the oldest retained event.
func (b *EventBus) Watch(ctx context.Context, opts WatchOptions) <-chan Event {
	buf := opts.Buffer
	if buf <= 0 {
		buf = 64
	}
	out := make(chan Event, buf)

	b.mu.RLock()
	var cursor int64 // deliver events with Seq > cursor
	switch {
	case opts.Since > 0:
		cursor = opts.Since
	case opts.Since == 0:
		cursor = b.next - 1
	default:
		cursor = 0
	}
	if head := b.next - 1; cursor > head {
		// A resume token ahead of the stream (stale token from another
		// run): resync immediately; the buffered channel always has room.
		out <- Event{Seq: head, Type: EventResync,
			Detail: "requested sequence ahead of stream; state must be re-listed"}
		cursor = head
	}
	b.mu.RUnlock()

	// Wake the drain goroutine out of cond.Wait when ctx is cancelled. The
	// write lock is taken first so a waiter between its ctx check and
	// cond.Wait registration (it holds the read lock throughout) cannot
	// miss this broadcast.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.mu.Unlock() //nolint:staticcheck // empty critical section is the fence
		b.cond.Broadcast()
	})

	go func() {
		defer stop()
		defer close(out)
		for {
			b.mu.RLock()
			for b.next-1 <= cursor && ctx.Err() == nil {
				b.cond.Wait()
			}
			if ctx.Err() != nil {
				b.mu.RUnlock()
				return
			}
			var ev Event
			if oldest := b.oldestLocked(); cursor+1 < oldest {
				// The ring lapped this subscriber: everything up to
				// oldest-1 is gone. Emit the resync contract and continue
				// from what is still retained.
				ev = Event{Seq: oldest - 1, Type: EventResync,
					Time:   b.ring[(oldest-1)%int64(len(b.ring))].Time,
					Detail: "subscriber lagged past the replay ring; state must be re-listed"}
				cursor = oldest - 1
			} else {
				cursor++
				ev = b.ring[(cursor-1)%int64(len(b.ring))]
			}
			b.mu.RUnlock()
			if !opts.match(ev) {
				continue
			}
			select {
			case out <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Events returns the orchestrator's lifecycle event bus (replay ring reads,
// LastSeq; most consumers want Watch instead).
func (o *Orchestrator) Events() *EventBus { return o.bus }

// Watch subscribes to the orchestrator's ordered lifecycle event stream;
// see EventBus.Watch and WatchOptions for positioning, filtering and the
// resync contract. Safe for concurrent use; any number of subscribers may
// watch without affecting admission throughput.
func (o *Orchestrator) Watch(ctx context.Context, opts WatchOptions) <-chan Event {
	return o.bus.Watch(ctx, opts)
}

// publish emits a slice-scoped lifecycle event. Callers may hold shard
// locks: the bus mutex is a leaf and Publish never blocks on subscribers.
// The published event (with its assigned sequence number) is returned so
// mutation paths can embed it in their write-ahead records.
func (o *Orchestrator) publish(typ EventType, s *slice.Slice, detail string) Event {
	ev := Event{
		Time:   o.clock.Now(),
		Type:   typ,
		Slice:  s.ID(),
		Tenant: s.Tenant(),
		State:  s.State().String(),
		Mbps:   s.AllocatedMbps(),
		Detail: detail,
	}
	if c, ok := s.Cause(); ok {
		ev.RejectCode = c.Code
	}
	ev.Seq = o.bus.Publish(ev)
	return ev
}

// publishLink emits a transport-link event and returns it with its
// assigned sequence number.
func (o *Orchestrator) publishLink(typ EventType, link, detail string) Event {
	ev := Event{Time: o.clock.Now(), Type: typ, Link: link, Detail: detail}
	ev.Seq = o.bus.Publish(ev)
	return ev
}
