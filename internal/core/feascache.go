package core

import (
	"math"
	"sync/atomic"

	"repro/internal/ctrl"
	"repro/internal/slice"
)

// Feasibility memoization. Admission's per-domain dry runs (chooseDataCenter
// → feasibleAll) are pure functions of (a) the transaction's capacity
// signature and (b) the domain's substrate state. Domains that implement
// ctrl.FeasVersioner expose a monotonic counter covering (b), so an outcome
// observed at version v can be replayed verbatim while the version still
// reads v — an exact cache, never a heuristic. Domains without the
// capability (the RAN dry run is vacuous; chaos Wrap decorators deliberately
// hide it) are simply called every time, which switches memoization off
// under fault injection without any identity branching.
//
// The payoff is asymmetric by design: every successful install mutates the
// substrates and bumps the versions, so admit-heavy traffic sees few hits —
// but a rejection storm (the overload regime the fast-reject path serves)
// leaves the substrates untouched, and every probe after the first is a
// lock-free table read.

// feasSlots is the per-domain direct-mapped table size. Collisions only cost
// a re-computation, never a wrong answer: the full key is compared on probe.
const feasSlots = 64

// feasKey is the capacity signature of a feasibility query — every Tx field
// a Feasible implementation may consult except the slice/PLMN identity,
// which the FeasVersioner contract requires outcomes to be independent of.
type feasKey struct {
	dc     string
	mbps   float64
	budget float64
	sla    slice.SLA
}

// feasEntry is one memoized outcome: the dry-run answer for key observed
// while the domain's feasibility version read ver. The cause pointer is
// shared across every request that hits the entry; RejectionCause values are
// immutable after construction, so sharing is safe.
type feasEntry struct {
	key   feasKey
	ver   uint64
	cause *slice.RejectionCause
}

// feasMemo is one domain's direct-mapped memo table. A nil versioner
// disables it.
type feasMemo struct {
	versioner ctrl.FeasVersioner
	slots     [feasSlots]atomic.Pointer[feasEntry]
}

// newFeasTable builds one memo per engine domain, enabled only where the
// domain advertises the FeasVersioner capability.
func newFeasTable(e txEngine) []feasMemo {
	memos := make([]feasMemo, len(e.all))
	for i, d := range e.all {
		if v, ok := d.(ctrl.FeasVersioner); ok {
			memos[i].versioner = v
		}
	}
	return memos
}

// feasHash maps a key onto a table slot (FNV-1a over the DC name and the
// float bit patterns; written out manually so probing allocates nothing).
func feasHash(k *feasKey) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k.dc); i++ {
		h = (h ^ uint32(k.dc[i])) * prime32
	}
	mix := func(h uint32, v uint64) uint32 {
		h = (h ^ uint32(v)) * prime32
		return (h ^ uint32(v>>32)) * prime32
	}
	h = mix(h, math.Float64bits(k.mbps))
	h = mix(h, math.Float64bits(k.budget))
	h = mix(h, math.Float64bits(k.sla.ThroughputMbps))
	h = mix(h, math.Float64bits(k.sla.MaxLatencyMs))
	h = mix(h, uint64(k.sla.Duration))
	h = mix(h, uint64(k.sla.Class))
	if k.sla.EdgeCompute {
		h = (h ^ 1) * prime32
	}
	return h
}

// feasibleAll runs every domain's admission dry run against tx in
// acquisition order and returns the first failing domain's cause, memoizing
// per-domain outcomes under their feasibility versions (see the file
// comment). The version is read before and after the dry run and the
// outcome stored only when unchanged, so a mutation racing the dry run can
// never freeze a stale answer under a newer version.
func (o *Orchestrator) feasibleAll(tx ctrl.Tx) *slice.RejectionCause {
	k := feasKey{dc: tx.DataCenter, mbps: tx.Mbps, budget: tx.LatencyBudgetMs, sla: tx.SLA}
	slot := feasHash(&k) & (feasSlots - 1)
	for i, d := range o.domains.all {
		m := &o.feas[i]
		if m.versioner == nil {
			if cause := d.Feasible(tx); cause != nil {
				return cause
			}
			continue
		}
		ver := m.versioner.FeasVersion()
		if e := m.slots[slot].Load(); e != nil && e.ver == ver && e.key == k {
			if e.cause != nil {
				return e.cause
			}
			continue
		}
		cause := d.Feasible(tx)
		if m.versioner.FeasVersion() == ver {
			m.slots[slot].Store(&feasEntry{key: k, ver: ver, cause: cause})
		}
		if cause != nil {
			return cause
		}
	}
	return nil
}

// feasProbeReject is the probe-only variant for the zero-allocation fast
// path: it reports a memoized, currently-valid failing outcome for tx, never
// computing anything. The second return is false when no memo can prove a
// present-version failure (unknown, stale, or all-pass) — the caller must
// then fall through to the full path. The returned cause is shared; it is
// safe to hand to slice.RecycleRejection, which ignores non-pooled causes.
func (o *Orchestrator) feasProbeReject(tx ctrl.Tx) (*slice.RejectionCause, bool) {
	k := feasKey{dc: tx.DataCenter, mbps: tx.Mbps, budget: tx.LatencyBudgetMs, sla: tx.SLA}
	slot := feasHash(&k) & (feasSlots - 1)
	for i := range o.domains.all {
		m := &o.feas[i]
		if m.versioner == nil {
			continue
		}
		e := m.slots[slot].Load()
		if e == nil || e.key != k || e.cause == nil {
			continue
		}
		if e.ver == m.versioner.FeasVersion() {
			return e.cause, true
		}
	}
	return nil, false
}
