package core

import (
	"math"
	"sync"
	"testing"
)

// TestGainAccumulatorConcurrentShardUpdates hammers the order-sensitive
// float accumulator from parallel "shards": admits, rejects, penalties and
// allocation deltas race against report() readers. The race detector owns
// the data-race verdict; the assertions pin the conservation properties
// that survive any interleaving — matched admit/release pairs return the
// live totals to exactly zero (the live-count snap), money sums land on the
// closed-form totals, and every intermediate report is finite.
func TestGainAccumulatorConcurrentShardUpdates(t *testing.T) {
	a := newGainAccumulator()
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	// Concurrent readers: every snapshot must be finite (a torn float
	// would trip the race detector anyway; this guards the aggregates).
	// Bounded iteration count — an unbounded spin starves the writers
	// under the race detector's mutex accounting.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				var g GainReport
				g.RejectReasons = map[string]int{}
				a.report(&g)
				for _, v := range []float64{g.RevenueTotalEUR, g.PenaltyTotalEUR, g.ContractedMbps, g.AllocatedMbps} {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("non-finite aggregate %v", v)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				a.admit(10, 30, 20)
				a.allocDelta(-5)
				a.penalty(2)
				a.reject("radio-capacity")
				a.release(30, 15) // 20 alloc - 5 delta
			}
		}()
	}
	for w := 0; w < workers; w++ {
		// A second wave whose releases race the first wave's admits.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				a.admit(1, 8, 8)
				a.release(8, 8)
			}
		}()
	}
	wg.Wait()

	var g GainReport
	g.RejectReasons = map[string]int{}
	a.report(&g)
	const n = workers * perW
	if g.RevenueTotalEUR != 11*n {
		t.Errorf("revenue %v, want %v", g.RevenueTotalEUR, 11*n)
	}
	if g.PenaltyTotalEUR != 2*n {
		t.Errorf("penalties %v, want %v", g.PenaltyTotalEUR, 2*n)
	}
	if g.RejectReasons["radio-capacity"] != n {
		t.Errorf("reject histogram %v, want %d", g.RejectReasons, n)
	}
	// Every admit was matched by a release: the live totals must have
	// snapped back to exactly zero, not an accumulated rounding residue.
	if g.ContractedMbps != 0 || g.AllocatedMbps != 0 {
		t.Errorf("live totals (%v contracted, %v allocated) after matched admit/release, want exact 0",
			g.ContractedMbps, g.AllocatedMbps)
	}
	if a.live != 0 {
		t.Errorf("live count %d, want 0", a.live)
	}
}

// TestGainAccumulatorZeroSnap: the empty-registry snap works even when
// float rounding would otherwise leave an ulp-sized residue.
func TestGainAccumulatorZeroSnap(t *testing.T) {
	a := newGainAccumulator()
	// 0.1 + 0.2 - 0.3 != 0 in binary floating point — exactly the residue
	// class the snap exists for.
	a.admit(0, 0.1, 0.1)
	a.admit(0, 0.2, 0.2)
	a.release(0.3, 0.3)
	a.release(0, 0) // releases the second slice; live hits 0
	var g GainReport
	g.RejectReasons = map[string]int{}
	a.report(&g)
	if g.ContractedMbps != 0 || g.AllocatedMbps != 0 {
		t.Fatalf("residue survived the zero snap: contracted %v, allocated %v", g.ContractedMbps, g.AllocatedMbps)
	}
}
