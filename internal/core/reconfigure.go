package core

import (
	"fmt"

	"repro/internal/slice"
)

// Public reconfiguration surface for the intent plane (DESIGN.md §13):
// canary rollouts resize a fleet fraction to a new template version's
// provisioning target and must both apply the change now (Resize) and keep
// the control epoch from undoing it on its next pass (SetProvisionCap).

// Resize applies a new provisioning target to the slice through the same
// multi-domain reconfiguration path the control epoch uses: hysteresis,
// clamping to [FloorMbps, contract], the Active→Reconfiguring→Active state
// walk, reverse-order abort on any domain failure, EventResized and the WAL
// resize record. Returns whether a reconfiguration actually happened (false
// when hysteresis swallowed it or a domain refused). Slices already
// rejected or terminated are skipped without error — a fleet operation must
// tolerate members expiring under it; only an unknown ID is an error.
func (o *Orchestrator) Resize(id slice.ID, targetMbps float64) (bool, error) {
	changed, err := o.resizeWith(id, func(m *managedSlice) bool {
		return o.resizeLocked(m, targetMbps)
	})
	return changed, err
}

// SetProvisionCap caps the slice's epoch provisioning target at capMbps
// (0 clears the cap) and immediately resizes toward the cap — down when the
// canary shrinks to an aggressive new template, back up when a rollback
// restores the old version (the next overbooking epoch may then shrink
// below it again, toward its own forecast target, as usual). The cap is the
// canary-rollout primitive: a plain Resize would last exactly one control
// epoch before the forecast-driven reconfiguration restored its own target.
// The cap is volatile state — not written to the WAL — because recovery
// imposes logged epoch outcomes rather than re-deciding them; the intent
// plane re-establishes caps after a restart. Returns whether an immediate
// reconfiguration happened.
func (o *Orchestrator) SetProvisionCap(id slice.ID, capMbps float64) (bool, error) {
	if capMbps < 0 {
		return false, fmt.Errorf("core: negative provision cap %.1f", capMbps)
	}
	return o.resizeWith(id, func(m *managedSlice) bool {
		m.provCapMbps = capMbps
		if capMbps > 0 {
			return o.resizeLocked(m, capMbps)
		}
		return false
	})
}

// resizeWith runs fn on the slice under its shard lock, skipping terminal
// states, then commits any WAL records the reconfiguration appended.
func (o *Orchestrator) resizeWith(id slice.ID, fn func(*managedSlice) bool) (bool, error) {
	sh := o.shardFor(id)
	sh.mu.Lock()
	m, ok := sh.slices[id]
	if !ok {
		sh.mu.Unlock()
		return false, fmt.Errorf("core: unknown slice %s", id)
	}
	switch m.s.State() {
	case slice.StateRejected, slice.StateTerminated:
		sh.mu.Unlock()
		return false, nil
	}
	changed := fn(m)
	sh.mu.Unlock()
	if changed {
		o.commitPersist()
	}
	return changed, nil
}
