package core

import (
	"fmt"

	"repro/internal/ctrl"
	"repro/internal/forecast"
	"repro/internal/slice"
	"repro/internal/traffic"
)

// install reserves resources in all three domains for an admitted request
// and schedules the installation stages on the clock. Any domain failure
// rolls everything back and converts to a rejection. The caller holds
// sh.mu (its shard's lock) and has already reserved reservedMbps on the
// capacity ledger; install commits that reservation to the managed slice's
// bookkeeping on success (the caller releases it on failure).
//
// The cloud deployment (Heat stack + vEPC registration) is independent of
// the radio grant, so it runs concurrently with the radio reservation and
// the transport path setup — the per-domain parallelism inside one request.
// Join order is fixed, so outcomes are deterministic: a radio or transport
// failure is reported first (matching the domain order of the admission
// checks), with any concurrently created stack torn back down.
//
// When the radio domain cannot fit the newcomer's contract at face value
// but overbooking is on, running slices are first squeezed down to their
// forecast-provisioned sizes — "allocated network slices might be
// dynamically re-configured (overbooked) to accommodate new slice requests"
// (Section 3). The squeeze is a whole-registry pass needing every shard
// lock, so install briefly releases its own shard lock around it (the
// newcomer is not yet published, so nothing can observe the gap) and
// re-acquires it before retrying.
func (o *Orchestrator) install(sh *shard, s *slice.Slice, demand traffic.Demand, reservedMbps float64) error {
	sla := s.SLA()
	now := o.clock.Now()

	dcName, _, reason := o.chooseDataCenter(sla)
	if reason != "" {
		return errReject{reason}
	}

	// 1. PLMN.
	plmn, err := o.plmns.Allocate(s.ID())
	if err != nil {
		return errReject{err.Error()}
	}

	rollbackPLMN := func() { o.plmns.Release(plmn) }

	// 2a. Cloud: Heat stack + vEPC, concurrently with the radio/transport
	// chain below.
	type cloudResult struct {
		dep ctrl.Deployment
		err error
	}
	cloudCh := make(chan cloudResult, 1)
	go func() {
		dep, err := o.tb.Ctrl.Cloud.DeployEPC(s.ID(), dcName, plmn, sla.ThroughputMbps, sla.Class)
		cloudCh <- cloudResult{dep, err}
	}()
	// joinCloud tears the concurrent deployment back down (used on
	// radio/transport failure).
	joinCloudAbort := func() {
		if res := <-cloudCh; res.err == nil {
			o.tb.Ctrl.Cloud.Teardown(res.dep.DataCenter, res.dep.StackID, res.dep.EPCID)
		}
	}

	// 2b. Radio PRBs at full contract; squeeze running slices if needed.
	radio, err := o.tb.Ctrl.RAN.ReserveSlice(plmn, sla.ThroughputMbps)
	if err != nil && o.cfg.effectiveRisk() < 0.9995 {
		// The squeeze locks every shard; drop ours first so the global
		// lock order (all shards, ascending) is never violated.
		sh.mu.Unlock()
		o.squeezeAll()
		sh.mu.Lock()
		radio, err = o.tb.Ctrl.RAN.ReserveSlice(plmn, sla.ThroughputMbps)
		if err != nil {
			// Last resort: install at the admission estimate; the epoch
			// loop will grow it when capacity frees up.
			radio, err = o.tb.Ctrl.RAN.ReserveSlice(plmn, o.admissionEstimate(sla))
		}
	}
	if err != nil {
		joinCloudAbort()
		rollbackPLMN()
		return errReject{fmt.Sprintf("radio: %v", err)}
	}
	rollbackRadio := func() { o.tb.Ctrl.RAN.ReleaseSlice(plmn); rollbackPLMN() }

	// 3. Transport paths to the chosen DC, sized like the radio grant.
	budget := sla.MaxLatencyMs - 0.5 // vEPC processing share
	paths, err := o.tb.Ctrl.Transport.SetupPaths(s.ID(), dcName, radio.TotalMbps, budget)
	if err != nil {
		joinCloudAbort()
		rollbackRadio()
		return errReject{fmt.Sprintf("transport: %v", err)}
	}
	rollbackPaths := func() { o.tb.Ctrl.Transport.ReleasePaths(s.ID()); rollbackRadio() }

	// 4. Join the cloud deployment.
	res := <-cloudCh
	if res.err != nil {
		rollbackPaths()
		return errReject{fmt.Sprintf("cloud: %v", res.err)}
	}
	dep := res.dep

	if err := s.Admit(); err != nil {
		o.tb.Ctrl.Cloud.Teardown(dep.DataCenter, dep.StackID, dep.EPCID)
		rollbackPaths()
		return err
	}
	s.SetAllocation(slice.Allocation{
		AllocatedMbps: radio.TotalMbps,
		PRBs:          radio.PRBs,
		PathIDs:       paths.PathIDs,
		PathLatencyMs: paths.WorstDelayMs,
		DataCenter:    dep.DataCenter,
		StackID:       dep.StackID,
		EPCID:         dep.EPCID,
		PLMN:          plmn,
	})

	m := &managedSlice{
		s:          s,
		sh:         sh,
		demand:     demand,
		prov:       forecast.NewProvisioner(o.cfg.NewForecaster(), o.cfg.effectiveRisk(), o.cfg.FloorMbps),
		ledgerMbps: reservedMbps,
	}
	sh.slices[s.ID()] = m

	// Installation stage timeline (Fig. 2 workflow). Resources are already
	// committed; the stages model configuration latency.
	tl := &InstallTimeline{Submitted: now}
	sh.timelines[s.ID()] = tl
	radioAt := now.Add(o.cfg.RadioConfigDelay)
	pathsAt := radioAt.Add(o.cfg.PathSetupDelay)
	stackAt := pathsAt.Add(o.cfg.StackCreateDelay)
	activeAt := stackAt.Add(dep.BootDelay)

	if err := s.BeginInstall(); err != nil {
		return err
	}
	stamp := func(set func(*InstallTimeline)) func() {
		return func() {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			set(tl)
		}
	}
	m.timers = append(m.timers,
		o.clock.At(radioAt, string(s.ID())+"/radio", stamp(func(t *InstallTimeline) { t.RadioDone = o.clock.Now() })),
		o.clock.At(pathsAt, string(s.ID())+"/paths", stamp(func(t *InstallTimeline) { t.PathsDone = o.clock.Now() })),
		o.clock.At(stackAt, string(s.ID())+"/stack", stamp(func(t *InstallTimeline) { t.StackDone = o.clock.Now() })),
		o.clock.At(activeAt, string(s.ID())+"/activate", func() { o.activate(s.ID()) }),
	)
	return nil
}

// activate fires when the vEPC boot delay elapses: the EPC starts serving
// attaches and the slice turns Active until its contracted expiry.
func (o *Orchestrator) activate(id slice.ID) {
	sh := o.shardFor(id)
	sh.mu.Lock()
	m, ok := sh.slices[id]
	if !ok || m.s.State() != slice.StateInstalling {
		sh.mu.Unlock()
		return
	}
	alloc := m.s.Allocation()
	now := o.clock.Now()
	if err := o.tb.Ctrl.Cloud.MarkEPCRunning(alloc.EPCID, now); err != nil {
		evicted := o.teardownLocked(sh, m, fmt.Sprintf("EPC failed to boot: %v", err))
		sh.mu.Unlock()
		o.dropFinished(evicted)
		return
	}
	if err := m.s.Activate(now); err != nil {
		sh.mu.Unlock()
		return
	}
	if tl, ok := sh.timelines[id]; ok {
		tl.Active = now
	}
	m.expiry = o.clock.At(m.s.Expiry(), string(id)+"/expiry", func() {
		sh.mu.Lock()
		mm, ok := sh.slices[id]
		if !ok {
			sh.mu.Unlock()
			return
		}
		// On a wall clock the timer may already be in flight when a
		// concurrent teardown cancels it; re-check liveness under the
		// shard lock so a finished slice is never torn down twice (its
		// PLMN may already belong to someone else).
		switch mm.s.State() {
		case slice.StateRejected, slice.StateTerminated:
			sh.mu.Unlock()
			return
		}
		evicted := o.teardownLocked(sh, mm, "expired")
		sh.mu.Unlock()
		o.dropFinished(evicted)
	})
	sh.mu.Unlock()
}

// teardownLocked releases every domain's resources, returns the slice's
// capacity-ledger entry and terminates the slice. Safe to call from any
// live state; idempotent per domain. The caller holds the slice's shard
// lock (or every shard lock in restoration passes) and must drop the
// returned evicted finished slices once its locks are released.
func (o *Orchestrator) teardownLocked(sh *shard, m *managedSlice, reason string) []slice.ID {
	for _, t := range m.timers {
		t.Cancel()
	}
	m.timers = nil
	if m.expiry != nil {
		m.expiry.Cancel()
		m.expiry = nil
	}
	alloc := m.s.Allocation()
	if alloc.EPCID != "" {
		o.tb.Ctrl.Cloud.Teardown(alloc.DataCenter, alloc.StackID, alloc.EPCID)
	}
	o.tb.Ctrl.Transport.ReleasePaths(m.s.ID())
	if !alloc.PLMN.IsZero() {
		o.tb.Ctrl.RAN.ReleaseSlice(alloc.PLMN)
		o.plmns.Release(alloc.PLMN)
	}
	o.ledger.Release(m.ledgerMbps)
	m.ledgerMbps = 0
	m.s.Terminate(reason)
	return o.history.Push(m.s.ID())
}

// squeezeAll shrinks every live slice's radio+transport reservation to its
// forecast-provisioned target (or the a-priori estimate for slices without
// history), freeing capacity for a newcomer. It is a whole-registry pass:
// callers must hold no shard lock; squeezeAll takes all of them in index
// order.
func (o *Orchestrator) squeezeAll() {
	o.lockAll()
	defer o.unlockAll()
	for _, m := range o.orderedSlicesAllLocked() {
		switch m.s.State() {
		case slice.StateAdmitted, slice.StateInstalling, slice.StateActive:
		default:
			continue
		}
		target := o.admissionEstimate(m.s.SLA())
		if m.prov != nil && m.prov.Observed() {
			target = m.prov.Provision(m.s.SLA().ThroughputMbps)
		}
		o.resizeLocked(m, target)
	}
}

// resizeLocked applies a new radio+transport allocation to the slice if it
// differs enough from the current one (hysteresis). Returns whether a
// reconfiguration happened. The caller holds the slice's shard lock.
func (o *Orchestrator) resizeLocked(m *managedSlice, targetMbps float64) bool {
	sla := m.s.SLA()
	alloc := m.s.Allocation()
	if targetMbps < o.cfg.FloorMbps {
		targetMbps = o.cfg.FloorMbps
	}
	if targetMbps > sla.ThroughputMbps {
		targetMbps = sla.ThroughputMbps
	}
	if diff := targetMbps - alloc.AllocatedMbps; diff > -sla.ThroughputMbps*o.cfg.ReconfigThreshold &&
		diff < sla.ThroughputMbps*o.cfg.ReconfigThreshold {
		return false
	}
	// Active slices go through the Reconfiguring state; slices still being
	// installed are resized in place (their data plane is not live yet).
	if m.s.State() == slice.StateActive {
		if err := m.s.BeginReconfigure(); err != nil {
			return false
		}
		defer m.s.EndReconfigure()
	}

	radio, err := o.tb.Ctrl.RAN.ResizeSlice(alloc.PLMN, targetMbps)
	if err != nil {
		return false
	}
	if err := o.tb.Ctrl.Transport.ResizePaths(m.s.ID(), radio.TotalMbps); err != nil {
		// Radio grew but transport refused: restore the radio side.
		o.tb.Ctrl.RAN.ResizeSlice(alloc.PLMN, alloc.AllocatedMbps)
		return false
	}
	alloc.AllocatedMbps = radio.TotalMbps
	alloc.PRBs = radio.PRBs
	m.s.SetAllocation(alloc)
	m.sh.reconfigurations++
	return true
}
