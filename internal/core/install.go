package core

import (
	"fmt"
	"time"

	"repro/internal/ctrl"
	"repro/internal/forecast"
	"repro/internal/slice"
	"repro/internal/traffic"
)

// epcProcMs is the vEPC user-plane processing share counted against every
// slice's end-to-end latency budget; the domains see the remainder.
const epcProcMs = 0.5

// install reserves resources across the registered domain chain for an
// admitted request and schedules the installation stages on the clock. The
// heavy lifting is the generic two-phase transaction engine (engine.go):
// concurrent-group domains (cloud vEPC, MEC apps, ...) reserve in parallel
// with the sequential radio → transport chain, join in deterministic order,
// and any failure rolls everything back in reverse order automatically and
// converts to a typed rejection.
//
// The caller holds sh.mu (its shard's lock) and has already reserved
// reservedMbps on the capacity ledger and chosen dcName at admission (the
// placement scan is not repeated here); install commits that reservation to
// the managed slice's bookkeeping on success (the caller releases it on
// failure). The engine may briefly release and re-acquire sh.mu around the
// overbooking squeeze — see reserveAll.
func (o *Orchestrator) install(sh *shard, s *slice.Slice, demand traffic.Demand, reservedMbps float64, dcName string) error {
	sla := s.SLA()
	now := o.clock.Now()

	// 1. PLMN — the slice's broadcast identity, acquired before the domain
	// transaction and released after every grant on rollback.
	plmn, err := o.plmns.Allocate(s.ID())
	if err != nil {
		return errReject{slice.CauseOf(err, slice.RejectPLMNExhausted, "")}
	}

	// 2. The multi-domain two-phase transaction.
	tx := ctrl.Tx{
		Slice:           s.ID(),
		PLMN:            plmn,
		SLA:             sla,
		DataCenter:      dcName,
		Mbps:            sla.ThroughputMbps,
		LatencyBudgetMs: o.latencyBudget(sla),
	}
	gs, cause := o.reserveAll(sh, tx, o.admissionEstimate(sla))
	if cause != nil {
		o.plmns.Release(plmn)
		return errReject{cause}
	}
	grants := *gs
	if cause := commitGrants(grants); cause != nil {
		o.recycleGrants(grants) // aborted by commitGrants; engine holds the last reference
		putGrants(gs)
		o.plmns.Release(plmn)
		return errReject{cause}
	}

	if err := s.Admit(); err != nil {
		abortGrants(grants)
		o.recycleGrants(grants)
		putGrants(gs)
		o.plmns.Release(plmn)
		return err
	}
	alloc := slice.Allocation{PLMN: plmn}
	bootDelay := time.Duration(0)
	for _, dg := range grants {
		dg.g.Apply(&alloc)
		if d := dg.g.ActivationDelay(); d > bootDelay {
			bootDelay = d
		}
	}
	s.SetAllocation(alloc)
	// Applied grants surrendered their containers to the allocation; the
	// engine holds the last reference and can hand them back to the pools.
	o.recycleGrants(grants)
	putGrants(gs)

	m := &managedSlice{
		s:          s,
		sh:         sh,
		demand:     demand,
		prov:       forecast.NewProvisioner(o.cfg.NewForecaster(), o.cfg.effectiveRisk(), o.cfg.FloorMbps),
		ledgerMbps: reservedMbps,
	}
	sh.slices[s.ID()] = m

	// Installation stage timeline (Fig. 2 workflow). Resources are already
	// committed; the stages model configuration latency, so their completion
	// times are the scheduled offsets, recorded up front exactly as recovery
	// rebuilds them — only the activation transition needs a real timer.
	radioAt := now.Add(o.cfg.RadioConfigDelay)
	pathsAt := radioAt.Add(o.cfg.PathSetupDelay)
	stackAt := pathsAt.Add(o.cfg.StackCreateDelay)
	activeAt := stackAt.Add(bootDelay)
	m.activateAt = activeAt
	sh.timelines[s.ID()] = &InstallTimeline{
		Submitted: now, RadioDone: radioAt, PathsDone: pathsAt, StackDone: stackAt,
	}

	if err := s.BeginInstall(); err != nil {
		return err
	}
	m.timers = append(m.timers,
		o.clock.At(activeAt, string(s.ID())+"/activate", func() { o.activate(s.ID()) }),
	)
	return nil
}

// activate fires when the vEPC boot delay elapses: the EPC starts serving
// attaches and the slice turns Active until its contracted expiry.
func (o *Orchestrator) activate(id slice.ID) {
	sh := o.shardFor(id)
	sh.mu.Lock()
	m, ok := sh.slices[id]
	if !ok || m.s.State() != slice.StateInstalling {
		sh.mu.Unlock()
		return
	}
	alloc := m.s.Allocation()
	now := o.clock.Now()
	if err := o.tb.Ctrl.Cloud.MarkEPCRunning(alloc.EPCID, now); err != nil {
		evicted := o.teardownLocked(sh, m, fmt.Sprintf("EPC failed to boot: %v", err), EventDeleted)
		o.auditSliceReleased(id)
		sh.mu.Unlock()
		o.dropFinished(evicted)
		o.commitPersist()
		return
	}
	if err := m.s.Activate(now); err != nil {
		sh.mu.Unlock()
		return
	}
	sh.active.Add(1)
	if tl, ok := sh.timelines[id]; ok {
		tl.Active = now
	}
	instEv := o.publish(EventInstalled, m.s, "")
	if o.persist != nil {
		o.appendRecord(recActivate, activateRecord{Slice: id, At: now, Events: []Event{instEv}})
	}
	o.armExpiry(m)
	sh.mu.Unlock()
	o.commitPersist()
}

// armExpiry schedules the slice's contracted-expiry teardown. Called with
// the shard lock held (activation) or from the single-threaded recovery
// pass (rearmTimers).
func (o *Orchestrator) armExpiry(m *managedSlice) {
	sh := m.sh
	id := m.s.ID()
	m.expiry = o.clock.At(m.s.Expiry(), string(id)+"/expiry", func() {
		sh.mu.Lock()
		mm, ok := sh.slices[id]
		if !ok {
			sh.mu.Unlock()
			return
		}
		// On a wall clock the timer may already be in flight when a
		// concurrent teardown cancels it; re-check liveness under the
		// shard lock so a finished slice is never torn down twice (its
		// PLMN may already belong to someone else).
		switch mm.s.State() {
		case slice.StateRejected, slice.StateTerminated:
			sh.mu.Unlock()
			return
		}
		evicted := o.teardownLocked(sh, mm, "expired", EventExpired)
		o.auditSliceReleased(id)
		sh.mu.Unlock()
		o.dropFinished(evicted)
		o.commitPersist()
	})
}

// teardownLocked releases every domain's resources (reverse acquisition
// order through the generic engine), returns the slice's capacity-ledger
// entry and terminates the slice, publishing typ (EventDeleted or
// EventExpired) on the event bus. Safe to call from any live state;
// idempotent per domain. The caller holds the slice's shard lock (or every
// shard lock in restoration passes) and must drop the returned evicted
// finished slices once its locks are released.
func (o *Orchestrator) teardownLocked(sh *shard, m *managedSlice, reason string, typ EventType) []slice.ID {
	for _, t := range m.timers {
		t.Cancel()
	}
	m.timers = nil
	if m.expiry != nil {
		m.expiry.Cancel()
		m.expiry = nil
	}
	st := m.s.State()
	alloc := m.s.Allocation()
	m.s.Terminate(reason)
	ev := o.publish(typ, m.s, reason)
	// The teardown record must be sequenced BEFORE any substrate resource is
	// released: the allocators (PLMN, eNB PRBs, transport) are global, so
	// the instant a resource is freed a concurrent admission on another
	// shard can take it and append its admit record — and if that admit
	// sequenced ahead of this teardown, replay would impose the same
	// exclusive resource twice and fail recovery. Appending first pins the
	// WAL order: any reuse is logged strictly after the release that made
	// it possible.
	if o.persist != nil {
		o.appendRecord(recTeardown, teardownRecord{Slice: m.s.ID(), Reason: reason, Events: []Event{ev}})
	}
	o.releaseAll(m.s.ID(), alloc.PLMN)
	o.plmns.Release(alloc.PLMN)
	o.ledger.Release(m.ledgerMbps)
	m.ledgerMbps = 0
	// Read-plane bookkeeping: the slice leaves the live totals, and the
	// active count drops if it was carrying traffic.
	switch st {
	case slice.StateAdmitted, slice.StateInstalling, slice.StateActive, slice.StateReconfiguring:
		o.acc.release(m.s.SLA().ThroughputMbps, alloc.AllocatedMbps)
	}
	switch st {
	case slice.StateActive, slice.StateReconfiguring:
		sh.active.Add(-1)
	}
	return o.history.Push(m.s.ID())
}

// squeezeAll shrinks every live slice's domain reservations to its
// forecast-provisioned target (or the a-priori estimate for slices without
// history), freeing capacity for a newcomer. It is a whole-registry pass:
// callers must hold no shard lock (reserveAll releases its own around the
// call); squeezeAll serializes on epochMu — so it never interleaves with
// the epoch's phase pipeline — and then takes every shard lock in index
// order.
func (o *Orchestrator) squeezeAll() {
	o.epochMu.Lock()
	defer o.epochMu.Unlock()
	o.lockAll()
	defer o.unlockAll()
	for _, m := range o.orderedSlicesAllLocked() {
		switch m.s.State() {
		case slice.StateAdmitted, slice.StateInstalling, slice.StateActive:
		default:
			continue
		}
		target := o.admissionEstimate(m.s.SLA())
		if m.prov != nil && m.prov.Observed() {
			target = m.prov.Provision(m.s.SLA().ThroughputMbps)
		}
		o.resizeLocked(m, target)
	}
}

// resizeLocked applies a new multi-domain allocation to the slice if it
// differs enough from the current one (hysteresis). Returns whether a
// reconfiguration happened. The caller holds the slice's shard lock.
func (o *Orchestrator) resizeLocked(m *managedSlice, targetMbps float64) bool {
	sla := m.s.SLA()
	alloc := m.s.Allocation()
	if targetMbps < o.cfg.FloorMbps {
		targetMbps = o.cfg.FloorMbps
	}
	if targetMbps > sla.ThroughputMbps {
		targetMbps = sla.ThroughputMbps
	}
	if diff := targetMbps - alloc.AllocatedMbps; diff > -sla.ThroughputMbps*o.cfg.ReconfigThreshold &&
		diff < sla.ThroughputMbps*o.cfg.ReconfigThreshold {
		return false
	}
	// Active slices go through the Reconfiguring state; slices still being
	// installed are resized in place (their data plane is not live yet).
	reconfiguring := false
	if m.s.State() == slice.StateActive {
		if err := m.s.BeginReconfigure(); err != nil {
			return false
		}
		reconfiguring = true
	}
	endReconfigure := func() {
		if reconfiguring {
			m.s.EndReconfigure()
		}
	}

	tx := ctrl.Tx{
		Slice:           m.s.ID(),
		PLMN:            alloc.PLMN,
		SLA:             sla,
		DataCenter:      alloc.DataCenter,
		LatencyBudgetMs: o.latencyBudget(sla),
	}
	before := alloc.AllocatedMbps
	gs, ok := o.resizeAll(tx, targetMbps, alloc.AllocatedMbps)
	if !ok {
		endReconfigure()
		return false
	}
	for _, dg := range *gs {
		if dg.g != nil {
			dg.g.Apply(&alloc)
		}
	}
	m.s.SetAllocation(alloc)
	o.recycleGrants(*gs) // applied; the engine holds the last reference
	putGrants(gs)
	o.acc.allocDelta(alloc.AllocatedMbps - before)
	m.sh.reconfigurations.Add(1)
	// Publish after the Reconfiguring -> Active transition completes so the
	// event carries the post-transition state.
	endReconfigure()
	ev := o.publish(EventResized, m.s, "")
	if o.persist != nil {
		// The engine threads the radio-quantized throughput into transport
		// and MEC, so the post-apply allocation is what every domain saw.
		o.appendRecord(recResize, resizeRecord{
			Slice:       m.s.ID(),
			Mbps:        alloc.AllocatedMbps,
			PRBs:        alloc.PRBs,
			MECMbps:     alloc.AllocatedMbps,
			ResizePaths: true,
			Events:      []Event{ev},
		})
	}
	return true
}
