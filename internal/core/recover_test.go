package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
	"repro/internal/wal"
)

// durableEnv builds a simulator + orchestrator writing a real WAL under dir.
func durableEnv(t *testing.T, cfg Config, dir string) (*sim.Simulator, *Orchestrator, *wal.Writer) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Persist = WALSink(w)
	o := New(cfg, tb, s, monitor.NewStore(512))
	return s, o, w
}

// recoverDir recovers an orchestrator from dir onto a fresh testbed.
func recoverDir(t *testing.T, cfg Config, dir string) (*Orchestrator, *wal.Writer) {
	t.Helper()
	s := sim.NewSimulator(2)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o, w, err := Recover(cfg, tb, s, monitor.NewStore(512), dir)
	if err != nil {
		t.Fatal(err)
	}
	return o, w
}

// TestShutdownRecoverZeroLoss is the daemon kill-and-recover regression: a
// clean shutdown must leave a log from which every admitted slice is
// rebuilt, with the terminal shutdown event both delivered to in-flight
// subscriber drains and durable for post-restart replay.
func TestShutdownRecoverZeroLoss(t *testing.T) {
	dir := t.TempDir()
	s, o, w := durableEnv(t, Config{Overbook: true, Risk: 0.9, PLMNLimit: 8}, dir)

	// A draining subscriber: must observe EventShutdown as its last event
	// instead of a silent cut.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub := o.Watch(ctx, WatchOptions{Buffer: 256})

	var admitted []slice.ID
	for i := 0; i < 4; i++ {
		sl, err := o.Submit(req("tenant", 20, 50, time.Hour, 100), traffic.NewConstant(12, 0, nil))
		if err != nil {
			t.Fatal(err)
		}
		if sl.State() == slice.StateRejected {
			t.Fatalf("slice %d rejected: %s", i, sl.Reason())
		}
		admitted = append(admitted, sl.ID())
	}
	s.RunFor(10 * time.Second) // through the install pipeline: all Active

	ev := o.Shutdown()
	if ev.Type != EventShutdown || ev.Seq == 0 {
		t.Fatalf("shutdown event %+v", ev)
	}
	var sawShutdown bool
	for !sawShutdown {
		select {
		case got, ok := <-sub:
			if !ok {
				t.Fatal("subscriber channel closed before the terminal shutdown event")
			}
			sawShutdown = got.Type == EventShutdown
		case <-ctx.Done():
			t.Fatal("subscriber never saw the terminal shutdown event")
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	o2, w2 := recoverDir(t, Config{Overbook: true, Risk: 0.9, PLMNLimit: 8}, dir)
	defer w2.Close()
	st := o2.PersistStatus()
	if !st.Enabled || !st.Recovered || st.Recovery == nil {
		t.Fatalf("persist status after recovery: %+v", st)
	}
	if !st.Recovery.CleanShutdown {
		t.Fatalf("recovery did not see the clean shutdown: %+v", st.Recovery)
	}
	if st.Recovery.LiveSlices != len(admitted) {
		t.Fatalf("recovered %d live slices, admitted %d", st.Recovery.LiveSlices, len(admitted))
	}
	for _, id := range admitted {
		got, ok := o2.Get(id)
		if !ok {
			t.Fatalf("slice %s lost across kill-and-recover", id)
		}
		if got.State() != slice.StateActive {
			t.Fatalf("slice %s recovered in state %v", id, got.State())
		}
	}
	// The durable shutdown event replays for post-restart subscribers.
	replay := o2.Watch(ctx, WatchOptions{Since: ev.Seq - 1, Buffer: 16})
	got := <-replay
	if got.Type != EventShutdown || got.Seq != ev.Seq {
		t.Fatalf("replayed terminal event %+v, want shutdown seq %d", got, ev.Seq)
	}
}

// TestCheckpointAnchorUnderConcurrency is the checkpoint anchor-race
// regression: a snapshot cut while other goroutines submit must be anchored
// at the WAL sequence current *inside* the quiesced window — an anchor read
// after the shard locks drop can cover records whose effects are not in the
// blob, and recovery (which skips every record at or below the anchor)
// silently loses those operations. No checkpoint runs after the submitters
// finish, so the last snapshot is always one that raced.
func TestCheckpointAnchorUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	_, o, w := durableEnv(t, Config{Overbook: true, Risk: 0.9, PLMNLimit: 8}, dir)

	const submitters, perG = 4, 12
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted []slice.ID
	)
	wg.Add(submitters)
	done := make(chan struct{})
	for g := 0; g < submitters; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sl, err := o.Submit(req(fmt.Sprintf("t%d-%d", g, i), 5, 50, time.Hour, 100), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if sl.State() != slice.StateRejected {
					mu.Lock()
					admitted = append(admitted, sl.ID())
					mu.Unlock()
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()
	for checkpoints := 0; ; checkpoints++ {
		select {
		case <-done:
			if checkpoints == 0 {
				t.Fatal("no checkpoint raced the submitters")
			}
			goto drained
		default:
			o.checkpoint()
		}
	}
drained:
	if st := o.PersistStatus(); st.Error != "" {
		t.Fatalf("persistence latched an error: %s", st.Error)
	}
	before := make(map[slice.ID]bool)
	for _, sn := range o.List() {
		before[sn.ID] = true
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	o2, w2 := recoverDir(t, Config{Overbook: true, Risk: 0.9, PLMNLimit: 8}, dir)
	defer w2.Close()
	for _, id := range admitted {
		got, ok := o2.Get(id)
		if !ok {
			t.Fatalf("admitted slice %s lost: checkpoint anchored past its records", id)
		}
		if st := got.State(); st == slice.StateRejected || st == slice.StateTerminated {
			t.Fatalf("admitted slice %s recovered in state %v", id, st)
		}
	}
	after := make(map[slice.ID]bool)
	for _, sn := range o2.List() {
		after[sn.ID] = true
	}
	if len(after) != len(before) {
		t.Fatalf("recovered registry has %d slices, crashed run had %d", len(after), len(before))
	}
	for id := range before {
		if !after[id] {
			t.Fatalf("registry entry %s lost across recovery", id)
		}
	}
}

// TestClosePersistDuringMutations is the shutdown-ordering regression: the
// WAL writer's Close must be serialized with in-flight appends through the
// persistence mutex (closing it bare races the writer's buffer and fd), and
// mutations that land after the close must proceed without durability
// instead of latching an error on a closed file.
func TestClosePersistDuringMutations(t *testing.T) {
	dir := t.TempDir()
	_, o, w := durableEnv(t, Config{PLMNLimit: 8}, dir)

	var wg sync.WaitGroup
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := o.Submit(req(fmt.Sprintf("c%d-%d", g, i), 5, 50, time.Hour, 100), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	if err := o.ClosePersist(w.Close); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	st := o.PersistStatus()
	if st.Enabled {
		t.Fatal("sink still attached after ClosePersist")
	}
	if st.Error != "" {
		t.Fatalf("append after close latched an error: %s", st.Error)
	}
	if _, err := o.Submit(req("late", 5, 50, time.Hour, 100), nil); err != nil {
		t.Fatalf("mutation after ClosePersist: %v", err)
	}
	if err := o.ClosePersist(nil); err != nil {
		t.Fatalf("second ClosePersist: %v", err)
	}
}

// TestRecoverResumesAppending proves the recovered writer appends after the
// recovered sequence and a second recovery sees both generations.
func TestRecoverResumesAppending(t *testing.T) {
	dir := t.TempDir()
	s, o, w := durableEnv(t, Config{PLMNLimit: 8}, dir)
	if _, err := o.Submit(req("gen1", 20, 50, time.Hour, 100), nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	o.Shutdown()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	firstSeq := w.LastSeq()

	o2, w2 := recoverDir(t, Config{PLMNLimit: 8}, dir)
	if got := w2.LastSeq(); got != firstSeq {
		t.Fatalf("recovered writer resumes at %d, want %d", got, firstSeq)
	}
	if _, err := o2.Submit(req("gen2", 20, 50, time.Hour, 100), nil); err != nil {
		t.Fatal(err)
	}
	if w2.LastSeq() <= firstSeq {
		t.Fatal("second generation appended nothing")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	o3, w3 := recoverDir(t, Config{PLMNLimit: 8}, dir)
	defer w3.Close()
	if got := len(o3.List()); got != 2 {
		t.Fatalf("third generation sees %d slices, want 2", got)
	}
}

// TestRecoverTornTailTruncates proves a torn final record is discarded on
// recovery, the log file is repaired, and the next recovery loads cleanly.
func TestRecoverTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	s, o, w := durableEnv(t, Config{PLMNLimit: 8}, dir)
	if _, err := o.Submit(req("t", 20, 50, time.Hour, 100), nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	o.Shutdown()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a record's worth of garbage.
	logPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}

	o2, w2 := recoverDir(t, Config{PLMNLimit: 8}, dir)
	st := o2.PersistStatus()
	if !st.Recovery.TornTail {
		t.Fatalf("recovery did not flag the torn tail: %+v", st.Recovery)
	}
	if got := len(o2.List()); got != 1 {
		t.Fatalf("recovered %d slices, want 1", got)
	}
	after, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	o3, w3 := recoverDir(t, Config{PLMNLimit: 8}, dir)
	defer w3.Close()
	if o3.PersistStatus().Recovery.TornTail {
		t.Fatal("second recovery still sees a torn tail after repair")
	}
}
