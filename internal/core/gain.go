package core

import (
	"sync"
	"time"
)

// This file is the orchestrator's lock-free read plane: the gain/penalty
// report, the active-slice count and the per-epoch snapshot are served from
// per-shard atomic counters plus one tiny global accumulator, never from a
// whole-registry pass. Before PR 4, Gain() and ActiveCount() took every
// shard lock and walked every slice — a stop-the-world freeze on each
// dashboard poll; now a poll costs O(shards) atomic loads and one leaf
// mutex, and admission never waits on a reader.
//
// Counter taxonomy (see also DESIGN.md §7):
//
//   - Monotone integer counters (admitted, rejected, violation epochs,
//     reconfigurations, active count) live in per-shard atomics: updates on
//     different shards never contend and reads are exact at all times.
//   - Order-sensitive float aggregates (revenue, penalties, contracted and
//     allocated Mbps) live in the single gainAccumulator below, mutated in
//     the deterministic order the engine performs the underlying
//     transitions. Splitting them per shard would change float-addition
//     grouping with the shard count, and a fixed-seed run must produce
//     bit-identical money at any shard count
//     (TestShardCountDoesNotChangeOutcomes).
//
// The accumulator mutex is a leaf: it is taken while holding a shard lock,
// and never the other way around.

// gainAccumulator tracks the order-sensitive aggregates of the gain report.
type gainAccumulator struct {
	mu             sync.Mutex
	revenueEUR     float64
	penaltyEUR     float64
	contractedMbps float64
	allocatedMbps  float64
	// live counts the slices currently contributing to the Mbps totals.
	// Incremental float sums accumulate rounding residue ((x+a)-a need not
	// equal x), so when the last live slice leaves, the totals are snapped
	// back to exactly zero — an empty registry must report zero contracted
	// capacity, not an ulp-sized residue.
	live          int
	rejectReasons map[string]int
}

func newGainAccumulator() *gainAccumulator {
	return &gainAccumulator{rejectReasons: make(map[string]int)}
}

// admit records an accepted request: its price joins the revenue and its
// contract and initial allocation join the live totals.
func (a *gainAccumulator) admit(priceEUR, contractedMbps, allocatedMbps float64) {
	a.mu.Lock()
	a.revenueEUR += priceEUR
	a.contractedMbps += contractedMbps
	a.allocatedMbps += allocatedMbps
	a.live++
	a.mu.Unlock()
}

// reject buckets a rejection under its stable taxonomy code.
func (a *gainAccumulator) reject(code string) {
	a.mu.Lock()
	a.rejectReasons[code]++
	a.mu.Unlock()
}

// release removes a torn-down slice's contract and allocation from the live
// totals.
func (a *gainAccumulator) release(contractedMbps, allocatedMbps float64) {
	a.mu.Lock()
	a.contractedMbps -= contractedMbps
	a.allocatedMbps -= allocatedMbps
	a.live--
	if a.live <= 0 {
		a.contractedMbps = 0
		a.allocatedMbps = 0
	}
	a.mu.Unlock()
}

// allocDelta shifts the live allocated total after a reconfiguration.
func (a *gainAccumulator) allocDelta(deltaMbps float64) {
	if deltaMbps == 0 {
		return
	}
	a.mu.Lock()
	a.allocatedMbps += deltaMbps
	a.mu.Unlock()
}

// penalty charges an SLA-violation penalty.
func (a *gainAccumulator) penalty(eur float64) {
	a.mu.Lock()
	a.penaltyEUR += eur
	a.mu.Unlock()
}

// report copies the accumulator into g (floats plus the histogram).
func (a *gainAccumulator) report(g *GainReport) {
	a.mu.Lock()
	g.RevenueTotalEUR = a.revenueEUR
	g.PenaltyTotalEUR = a.penaltyEUR
	g.ContractedMbps = a.contractedMbps
	g.AllocatedMbps = a.allocatedMbps
	for k, v := range a.rejectReasons {
		g.RejectReasons[k] += v
	}
	a.mu.Unlock()
}

// GainReport is the dashboard's "current gains vs. penalties" panel plus
// the admission counters.
type GainReport struct {
	// CapacityMbps is the physical radio capacity at mean CQI.
	CapacityMbps float64 `json:"capacity_mbps"`
	// ContractedMbps sums the SLAs of live (installing or active) slices.
	ContractedMbps float64 `json:"contracted_mbps"`
	// AllocatedMbps sums the current (possibly shrunk) reservations.
	AllocatedMbps float64 `json:"allocated_mbps"`
	// OverbookingRatio is ContractedMbps / CapacityMbps: above 1 the
	// operator has sold more than it physically owns.
	OverbookingRatio float64 `json:"overbooking_ratio"`
	// MultiplexingGain is ContractedMbps / AllocatedMbps: how much SLA
	// each reserved Mbps carries (1.0 without overbooking).
	MultiplexingGain float64 `json:"multiplexing_gain"`
	// Admission counters.
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Active   int `json:"active"`
	// RejectReasons histograms rejection causes (experiment D6).
	RejectReasons map[string]int `json:"reject_reasons"`
	// Money (the gains-vs-penalties trade-off of Section 3).
	RevenueTotalEUR float64 `json:"revenue_total_eur"`
	PenaltyTotalEUR float64 `json:"penalty_total_eur"`
	NetRevenueEUR   float64 `json:"net_revenue_eur"`
	// ViolationEpochs counts SLA-violation epochs across all slices.
	ViolationEpochs int `json:"violation_epochs"`
	// Reconfigurations counts overbooking resizes applied.
	Reconfigurations int `json:"reconfigurations"`
	// Epochs counts control-loop passes.
	Epochs int `json:"epochs"`
}

// Gain returns the current gain/penalty report. Every individual counter is
// exact — it reflects all completed transitions — and the read is cheap:
// O(shards) atomic loads plus one leaf mutex, with no shard lock taken, so
// a dashboard polling Gain at any rate never stalls admission or the epoch.
// The report is not one atomic cut across fields, though: a transition
// committing concurrently with the read may be visible in the integer
// counters but not yet in the money/Mbps aggregates (or vice versa) for
// that single poll. Epoch-aligned, mutually consistent numbers come from
// LastEpoch, whose report is folded under a momentary all-shard quiesce.
func (o *Orchestrator) Gain() GainReport {
	g := GainReport{
		CapacityMbps:  o.tb.RadioCapacityMbps(),
		Epochs:        int(o.epochs.Load()),
		RejectReasons: make(map[string]int),
	}
	for _, sh := range o.shards {
		g.Admitted += int(sh.admitted.Load())
		g.Rejected += int(sh.rejected.Load())
		g.ViolationEpochs += int(sh.violations.Load())
		g.Reconfigurations += int(sh.reconfigurations.Load())
		g.Active += int(sh.active.Load())
	}
	o.acc.report(&g)
	if g.CapacityMbps > 0 {
		g.OverbookingRatio = g.ContractedMbps / g.CapacityMbps
	}
	if g.AllocatedMbps > 0 {
		g.MultiplexingGain = g.ContractedMbps / g.AllocatedMbps
	}
	g.NetRevenueEUR = g.RevenueTotalEUR - g.PenaltyTotalEUR
	return g
}

// ActiveCount returns the number of active (traffic-carrying) slices from
// the per-shard counters — no shard lock, no registry walk.
func (o *Orchestrator) ActiveCount() int {
	n := 0
	for _, sh := range o.shards {
		n += int(sh.active.Load())
	}
	return n
}

// EpochSnapshot is the atomically published outcome of one control epoch:
// the telemetry barrier (phase P4) folds the epoch's results into one of
// these and swaps it in with a single atomic store. Readers (REST,
// dashboard) get a consistent epoch-aligned view that is at most one epoch
// stale, without touching any lock the write path uses.
type EpochSnapshot struct {
	// Epoch is the control-loop pass counter (1-based).
	Epoch int `json:"epoch"`
	// At is the epoch's timestamp on the driving clock.
	At time.Time `json:"at"`
	// MeasuredSlices counts the active slices the epoch sampled, scheduled
	// and reprovisioned.
	MeasuredSlices int `json:"measured_slices"`
	// RANUtilization is the scheduled PRB utilization of the epoch [0,1].
	RANUtilization float64 `json:"ran_utilization"`
	// Gain is the gain/penalty report folded at the end of the epoch.
	Gain GainReport `json:"gain"`
}

// LastEpoch returns the snapshot published by the most recent control epoch
// and whether any epoch has completed yet. The snapshot is immutable; the
// returned histogram is a copy.
func (o *Orchestrator) LastEpoch() (EpochSnapshot, bool) {
	p := o.lastEpoch.Load()
	if p == nil {
		return EpochSnapshot{}, false
	}
	snap := *p
	reasons := make(map[string]int, len(p.Gain.RejectReasons))
	for k, v := range p.Gain.RejectReasons {
		reasons[k] = v
	}
	snap.Gain.RejectReasons = reasons
	return snap, true
}
