package core

import (
	"math"

	"repro/internal/ctrl"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// admit runs the admission checks of Section 3: "our end-to-end
// orchestration algorithm checks the infrastructure resources availability
// in each domain and performs traffic forecasting, considering past and
// current network slices information". It returns (nil, reservedMbps) to
// admit — with the newcomer's estimated load already reserved on the shared
// capacity ledger (phase one of the two-phase reservation; install commits
// it, any failure must release it) — or a typed rejection cause.
//
// The radio check is the overbooking-aware one: the running sum of
// *estimated* loads (current provisioned allocations of running slices +
// a load-factor estimate for the newcomer) must fit under the capacity cap.
// Without overbooking the estimates are the full contracts, which
// degenerates to classic peak-provisioning admission. The sum is maintained
// incrementally by the ledger, so the check is O(1) and atomic under
// concurrent admissions on other shards.
//
// On admission the chosen data center is returned alongside, so install
// never re-runs the placement scan the admission dry runs already paid for.
func (o *Orchestrator) admit(req slice.Request) (*slice.RejectionCause, float64, string) {
	sla := req.SLA

	// Revenue policy: EUR per Mbps·hour must clear the configured bar.
	if o.cfg.MinRevenueDensity > 0 {
		density := sla.PriceEUR / (sla.ThroughputMbps * sla.Duration.Hours())
		if density < o.cfg.MinRevenueDensity {
			return slice.Rejectf(slice.RejectRevenuePolicy, "",
				"revenue density %.3f EUR/(Mbps·h) below policy %.3f", density, o.cfg.MinRevenueDensity), 0, ""
		}
	}

	// Penalty-aware revenue check: when overbooking at risk r, each epoch
	// independently exceeds the provisioned quantile with probability
	// ~(1-r), costing PenaltyEUR. A slice whose expected penalties eat the
	// price is a losing trade and is rejected up front.
	if o.cfg.PenaltyAware {
		if expected := o.expectedPenaltyEUR(sla); expected >= sla.PriceEUR {
			return slice.Rejectf(slice.RejectRevenuePolicy, "",
				"revenue: expected penalty %.2f EUR >= price %.2f EUR at risk %.2f",
				expected, sla.PriceEUR, o.cfg.effectiveRisk()), 0, ""
		}
	}

	// PLMN slot (MOCN broadcast list).
	if o.plmns.Available() == 0 {
		return slice.Rejectf(slice.RejectPLMNExhausted, "", "PLMN broadcast list full"), 0, ""
	}

	// Radio capacity (overbooking-aware estimate): atomic two-phase
	// reservation against the shared ledger.
	capacity := o.radioCapacityMbps() * o.cfg.UtilizationCap
	newLoad := o.admissionEstimate(sla)
	ok, load := o.ledger.TryReserve(newLoad, capacity)
	if !ok {
		return slice.Rejectf(slice.RejectRadioCapacity, "ran",
			"radio capacity: estimated load %.1f+%.1f Mbps exceeds %.1f", load, newLoad, capacity), 0, ""
	}

	// Per-domain feasibility: at least one data center must pass every
	// registered domain's dry run (latency budget, compute fit, ...). The
	// released amount is returned alongside the cause: float addition is
	// not exactly invertible, so the WAL reject record mirrors this
	// reserve-then-release round trip to keep the ledger bit-reproducible.
	dc, cause := o.chooseDataCenter(sla)
	if cause != nil {
		o.ledger.Release(newLoad)
		return cause, newLoad, ""
	}
	return nil, newLoad, dc
}

// expectedPenaltyEUR estimates the SLA penalties the operator will owe the
// slice over its lifetime when provisioning at the configured risk.
func (o *Orchestrator) expectedPenaltyEUR(sla slice.SLA) float64 {
	risk := o.cfg.effectiveRisk()
	if risk >= 0.9995 {
		return 0 // peak provisioning never violates
	}
	epochs := float64(sla.Duration / o.cfg.Epoch)
	return (1 - risk) * epochs * sla.PenaltyEUR
}

// admissionEstimate is the radio load the newcomer is expected to add.
func (o *Orchestrator) admissionEstimate(sla slice.SLA) float64 {
	if o.cfg.effectiveRisk() >= 0.9995 {
		return sla.ThroughputMbps
	}
	return sla.ThroughputMbps * o.cfg.AdmissionLoadFactor
}

// chooseDataCenter picks the data center for the slice: the one with
// the fewest spare resources that still passes every registered domain's
// feasibility dry run (keeping the scarce edge free for slices that need
// it), honouring EdgeCompute. It returns the DC name or the last candidate's
// typed rejection cause. It reads only the (internally synchronized) domain
// controllers, so it needs no shard lock.
func (o *Orchestrator) chooseDataCenter(sla slice.SLA) (string, *slice.RejectionCause) {
	names := dcCandidates(sla)
	est := o.admissionEstimate(sla)
	var last *slice.RejectionCause
	for _, dc := range names {
		tx := ctrl.Tx{
			SLA:             sla,
			DataCenter:      dc,
			Mbps:            est,
			LatencyBudgetMs: o.latencyBudget(sla),
		}
		if cause := o.feasibleAll(tx); cause != nil {
			last = cause
			continue
		}
		return dc, nil
	}
	if last == nil {
		last = slice.Rejectf(slice.RejectOther, "", "no data center available")
	}
	return "", last
}

// Candidate placement lists as package-level arrays: slicing them hands the
// hot path a ready view with no per-request allocation.
var (
	dcCandidatesBoth = [2]string{testbed.CoreDC, testbed.EdgeDC} // prefer core when both fit
	dcCandidatesEdge = [1]string{testbed.EdgeDC}
)

// dcCandidates returns the data centers eligible for the SLA, in preference
// order. The returned slice views a shared array and must not be mutated.
func dcCandidates(sla slice.SLA) []string {
	if sla.EdgeCompute {
		return dcCandidatesEdge[:]
	}
	return dcCandidatesBoth[:]
}

// KnapsackRequest pairs a request with its estimated radio load for the
// offline revenue-maximization solver.
type KnapsackRequest struct {
	Req slice.Request
	// LoadMbps is the radio load charged against capacity (contract for
	// peak provisioning, load-factor estimate when overbooking).
	LoadMbps float64
}

// MaxRevenueSubset solves the admission knapsack exactly: choose the subset
// of requests maximizing total price under a radio capacity budget. It is
// the offline optimum the online policy is compared against in experiment
// D1 (the slice-broker revenue maximization of reference [3]).
//
// Capacity is discretized to 1 Mbps. Returns the chosen indices (ascending)
// and the optimal revenue.
func MaxRevenueSubset(reqs []KnapsackRequest, capacityMbps float64) ([]int, float64) {
	cap := int(math.Floor(capacityMbps))
	if cap <= 0 || len(reqs) == 0 {
		return nil, 0
	}
	weights := make([]int, len(reqs))
	for i, r := range reqs {
		w := int(math.Ceil(r.LoadMbps))
		if w < 1 {
			w = 1
		}
		weights[i] = w
	}
	// dp[c] = best revenue using capacity c; choice bitmap for recovery.
	dp := make([]float64, cap+1)
	take := make([][]bool, len(reqs))
	for i := range take {
		take[i] = make([]bool, cap+1)
	}
	for i, r := range reqs {
		w := weights[i]
		for c := cap; c >= w; c-- {
			if v := dp[c-w] + r.Req.SLA.PriceEUR; v > dp[c] {
				dp[c] = v
				take[i][c] = true
			}
		}
	}
	// Recover the chosen set.
	best := cap
	var chosen []int
	for i := len(reqs) - 1; i >= 0; i-- {
		if take[i][best] {
			chosen = append(chosen, i)
			best -= weights[i]
		}
	}
	// Reverse to ascending.
	for l, r := 0, len(chosen)-1; l < r; l, r = l+1, r-1 {
		chosen[l], chosen[r] = chosen[r], chosen[l]
	}
	return chosen, dp[cap]
}

// GreedyRevenueSubset is the online baseline: scan requests in arrival
// order and admit whatever fits. Returns chosen indices and revenue.
func GreedyRevenueSubset(reqs []KnapsackRequest, capacityMbps float64) ([]int, float64) {
	var chosen []int
	rev := 0.0
	used := 0.0
	for i, r := range reqs {
		if used+r.LoadMbps <= capacityMbps {
			used += r.LoadMbps
			rev += r.Req.SLA.PriceEUR
			chosen = append(chosen, i)
		}
	}
	return chosen, rev
}

// DensityOrderedSubset admits in descending revenue-density order — the
// practical online revenue-maximization heuristic of [3] when a batch of
// requests is pending.
func DensityOrderedSubset(reqs []KnapsackRequest, capacityMbps float64) ([]int, float64) {
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	density := func(i int) float64 {
		if reqs[i].LoadMbps <= 0 {
			return math.Inf(1)
		}
		return reqs[i].Req.SLA.PriceEUR / reqs[i].LoadMbps
	}
	// Stable sort keeps arrival order among equal densities.
	sortStableBy(idx, func(a, b int) bool { return density(a) > density(b) })
	var chosen []int
	rev, used := 0.0, 0.0
	for _, i := range idx {
		if used+reqs[i].LoadMbps <= capacityMbps {
			used += reqs[i].LoadMbps
			rev += reqs[i].Req.SLA.PriceEUR
			chosen = append(chosen, i)
		}
	}
	sortStableBy(chosen, func(a, b int) bool { return a < b })
	return chosen, rev
}

func sortStableBy(xs []int, less func(a, b int) bool) {
	// Insertion sort: the slices here are small (pending request batches).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
