// Hand-rolled JSON encoders for the write-ahead log's hot record types.
//
// The admission hot path pays two json.Marshal calls per durable operation
// (admit + teardown), and with group commit amortizing the fsync the
// reflection-driven encoder became the single largest CPU item on the
// durable path (DESIGN.md §12). These encoders produce output BYTE-IDENTICAL
// to encoding/json for the exact struct shapes involved — same field order,
// same omitempty decisions, same string escaping (HTML-escaping included),
// same float and time formatting — so the WAL format does not change and
// old logs replay unmodified. TestFastRecordEncodersMatchEncodingJSON pins
// the equivalence over adversarial values; any struct change that breaks it
// must update the matching encoder here.
//
// Cold record types (epoch, reroute, link, ...) keep using encoding/json:
// they are off the admission path and not worth the maintenance surface.
package core

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"time"
	"unicode/utf8"

	"repro/internal/slice"
)

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as encoding/json
// does with its default HTML escaping: <, > and & become \u00XX, control
// characters \n, \r, \t use short escapes and the rest the \u00XX form,
// invalid UTF-8 is replaced with �, and U+2028/U+2029 are escaped for
// JavaScript embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat mirrors encoding/json's float64 encoder: shortest
// representation, 'e' format outside [1e-6, 1e21) with the exponent's
// leading zero stripped. Non-finite values never reach the WAL (SLA
// validation rejects them), matching json.Marshal which would error.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONTime mirrors time.Time.MarshalJSON: a quoted RFC 3339 string
// with nanoseconds and trailing fractional zeros trimmed.
func appendJSONTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

func appendJSONBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

func appendJSONStringSlice(dst []byte, ss []string) []byte {
	if ss == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, s)
	}
	return append(dst, ']')
}

func appendEventJSON(dst []byte, ev *Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, ev.Seq, 10)
	dst = append(dst, `,"time":`...)
	dst = appendJSONTime(dst, ev.Time)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, string(ev.Type))
	if ev.Slice != "" {
		dst = append(dst, `,"slice":`...)
		dst = appendJSONString(dst, string(ev.Slice))
	}
	if ev.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendJSONString(dst, ev.Tenant)
	}
	if ev.State != "" {
		dst = append(dst, `,"state":`...)
		dst = appendJSONString(dst, ev.State)
	}
	if ev.RejectCode != "" {
		dst = append(dst, `,"reject_code":`...)
		dst = appendJSONString(dst, string(ev.RejectCode))
	}
	if ev.Mbps != 0 {
		dst = append(dst, `,"mbps":`...)
		dst = appendJSONFloat(dst, ev.Mbps)
	}
	if ev.Link != "" {
		dst = append(dst, `,"link":`...)
		dst = appendJSONString(dst, ev.Link)
	}
	if ev.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, ev.Detail)
	}
	return append(dst, '}')
}

func appendEventsJSON(dst []byte, evs []Event) []byte {
	if evs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i := range evs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendEventJSON(dst, &evs[i])
	}
	return append(dst, ']')
}

func appendPLMNJSON(dst []byte, p slice.PLMN) []byte {
	dst = append(dst, `{"mcc":`...)
	dst = appendJSONString(dst, p.MCC)
	dst = append(dst, `,"mnc":`...)
	dst = appendJSONString(dst, p.MNC)
	return append(dst, '}')
}

// appendAllocationJSON: slice.Allocation has no json tags, so encoding/json
// uses the Go field names in declaration order and omits nothing.
func appendAllocationJSON(dst []byte, a *slice.Allocation) []byte {
	dst = append(dst, `{"AllocatedMbps":`...)
	dst = appendJSONFloat(dst, a.AllocatedMbps)
	dst = append(dst, `,"PRBs":`...)
	if a.PRBs == nil {
		dst = append(dst, "null"...)
	} else {
		keys := make([]string, 0, len(a.PRBs))
		for k := range a.PRBs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = append(dst, '{')
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, k)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, int64(a.PRBs[k]), 10)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, `,"PathIDs":`...)
	dst = appendJSONStringSlice(dst, a.PathIDs)
	dst = append(dst, `,"PathLatencyMs":`...)
	dst = appendJSONFloat(dst, a.PathLatencyMs)
	dst = append(dst, `,"DataCenter":`...)
	dst = appendJSONString(dst, a.DataCenter)
	dst = append(dst, `,"StackID":`...)
	dst = appendJSONString(dst, a.StackID)
	dst = append(dst, `,"EPCID":`...)
	dst = appendJSONString(dst, a.EPCID)
	dst = append(dst, `,"MECAppID":`...)
	dst = appendJSONString(dst, a.MECAppID)
	dst = append(dst, `,"PLMN":`...)
	dst = appendPLMNJSON(dst, a.PLMN)
	return append(dst, '}')
}

// appendRequestJSON: slice.Request / slice.SLA carry no json tags either.
func appendRequestJSON(dst []byte, r *slice.Request) []byte {
	dst = append(dst, `{"Tenant":`...)
	dst = appendJSONString(dst, r.Tenant)
	dst = append(dst, `,"SLA":{"ThroughputMbps":`...)
	dst = appendJSONFloat(dst, r.SLA.ThroughputMbps)
	dst = append(dst, `,"MaxLatencyMs":`...)
	dst = appendJSONFloat(dst, r.SLA.MaxLatencyMs)
	dst = append(dst, `,"Duration":`...)
	dst = strconv.AppendInt(dst, int64(r.SLA.Duration), 10)
	dst = append(dst, `,"PriceEUR":`...)
	dst = appendJSONFloat(dst, r.SLA.PriceEUR)
	dst = append(dst, `,"PenaltyEUR":`...)
	dst = appendJSONFloat(dst, r.SLA.PenaltyEUR)
	dst = append(dst, `,"Class":`...)
	dst = strconv.AppendInt(dst, int64(r.SLA.Class), 10)
	dst = append(dst, `,"EdgeCompute":`...)
	dst = appendJSONBool(dst, r.SLA.EdgeCompute)
	dst = append(dst, `},"Arrival":`...)
	dst = appendJSONTime(dst, r.Arrival)
	return append(dst, '}')
}

func appendCauseJSON(dst []byte, c *slice.RejectionCause) []byte {
	dst = append(dst, `{"code":`...)
	dst = appendJSONString(dst, string(c.Code))
	if c.Domain != "" {
		dst = append(dst, `,"domain":`...)
		dst = appendJSONString(dst, c.Domain)
	}
	dst = append(dst, `,"detail":`...)
	dst = appendJSONString(dst, c.Detail)
	return append(dst, '}')
}

// appendPersistedJSON mirrors the tagged slice.Persisted image. Note that
// Starts/Expires carry omitempty but are time.Time structs, which
// encoding/json never treats as empty — they always serialize, zero or not.
func appendPersistedJSON(dst []byte, p *slice.Persisted) []byte {
	dst = append(dst, `{"id":`...)
	dst = appendJSONString(dst, string(p.ID))
	dst = append(dst, `,"request":`...)
	dst = appendRequestJSON(dst, &p.Request)
	dst = append(dst, `,"state":`...)
	dst = strconv.AppendInt(dst, int64(p.State), 10)
	if p.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendJSONString(dst, p.Reason)
	}
	if p.Cause != nil {
		dst = append(dst, `,"cause":`...)
		dst = appendCauseJSON(dst, p.Cause)
	}
	dst = append(dst, `,"created":`...)
	dst = appendJSONTime(dst, p.Created)
	dst = append(dst, `,"starts":`...)
	dst = appendJSONTime(dst, p.Starts)
	dst = append(dst, `,"expires":`...)
	dst = appendJSONTime(dst, p.Expires)
	dst = append(dst, `,"allocation":`...)
	dst = appendAllocationJSON(dst, &p.Allocation)
	if p.ViolationEpochs != 0 {
		dst = append(dst, `,"violation_epochs":`...)
		dst = strconv.AppendInt(dst, int64(p.ViolationEpochs), 10)
	}
	if p.ServedEpochs != 0 {
		dst = append(dst, `,"served_epochs":`...)
		dst = strconv.AppendInt(dst, int64(p.ServedEpochs), 10)
	}
	if p.PenaltyEUR != 0 {
		dst = append(dst, `,"penalty_eur":`...)
		dst = appendJSONFloat(dst, p.PenaltyEUR)
	}
	if p.DemandMbps != 0 {
		dst = append(dst, `,"demand_mbps":`...)
		dst = appendJSONFloat(dst, p.DemandMbps)
	}
	if p.ServedMbps != 0 {
		dst = append(dst, `,"served_mbps":`...)
		dst = appendJSONFloat(dst, p.ServedMbps)
	}
	return append(dst, '}')
}

func appendPathRecordJSON(dst []byte, pr *pathRecord) []byte {
	dst = append(dst, `{"id":`...)
	dst = appendJSONString(dst, pr.ID)
	dst = append(dst, `,"hops":`...)
	dst = appendJSONStringSlice(dst, pr.Hops)
	dst = append(dst, `,"mbps":`...)
	dst = appendJSONFloat(dst, pr.Mbps)
	dst = append(dst, `,"delay_ms":`...)
	dst = appendJSONFloat(dst, pr.DelayMs)
	return append(dst, '}')
}

func appendAdmitRecordJSON(dst []byte, r *admitRecord) []byte {
	dst = append(dst, `{"slice":`...)
	dst = appendPersistedJSON(dst, &r.Slice)
	dst = append(dst, `,"reserved_mbps":`...)
	dst = appendJSONFloat(dst, r.ReservedMbps)
	if len(r.Paths) > 0 {
		dst = append(dst, `,"paths":[`...)
		for i := range r.Paths {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendPathRecordJSON(dst, &r.Paths[i])
		}
		dst = append(dst, ']')
	}
	if r.MECHost != "" {
		dst = append(dst, `,"mec_host":`...)
		dst = appendJSONString(dst, r.MECHost)
	}
	if r.MECCPU != 0 {
		dst = append(dst, `,"mec_cpu":`...)
		dst = appendJSONFloat(dst, r.MECCPU)
	}
	dst = append(dst, `,"submitted_at":`...)
	dst = appendJSONTime(dst, r.SubmittedAt)
	dst = append(dst, `,"activate_at":`...)
	dst = appendJSONTime(dst, r.ActivateAt)
	dst = append(dst, `,"events":`...)
	dst = appendEventsJSON(dst, r.Events)
	return append(dst, '}')
}

func appendTeardownRecordJSON(dst []byte, r *teardownRecord) []byte {
	dst = append(dst, `{"slice":`...)
	dst = appendJSONString(dst, string(r.Slice))
	dst = append(dst, `,"reason":`...)
	dst = appendJSONString(dst, r.Reason)
	dst = append(dst, `,"events":`...)
	dst = appendEventsJSON(dst, r.Events)
	return append(dst, '}')
}

// marshalRecord encodes a WAL record payload, routing the admission hot
// path's record types through the hand-rolled encoders and everything else
// through encoding/json.
func marshalRecord(payload any) ([]byte, error) {
	switch p := payload.(type) {
	case admitRecord:
		// A populated admit image runs ~2-3 KB; size the buffer so the
		// common case encodes without a grow-and-copy cycle.
		return appendAdmitRecordJSON(make([]byte, 0, 4096), &p), nil
	case teardownRecord:
		return appendTeardownRecordJSON(make([]byte, 0, 1024), &p), nil
	}
	return json.Marshal(payload)
}
