package core

import (
	"repro/internal/ctrl"
	"repro/internal/slice"
)

// This file is the span-aware face of the two-phase engine: a cross-cluster
// slice span is one transaction over an ordered list of (domain, tx) legs —
// each leg typically a ctrl.ClusterDomain wrapping a whole member
// orchestrator — driven through the exact package-level reuse points the
// single-cluster install uses (safeReserve, commitGrants, abortGrants). The
// engine stays unmodified: a federated admission inherits reverse-order
// rollback, the typed rejection taxonomy and the fault-injection hooks
// because it runs the same code, not a parallel copy.

// SpanLeg is one leg of a cross-cluster span: the domain that owns it and
// the transactional context it is reserved under.
type SpanLeg struct {
	Domain ctrl.Domain
	Tx     ctrl.Tx
}

// SpanTx is an installed span transaction: the committed grants, in
// acquisition order, for the caller to abort or inspect.
type SpanTx struct {
	grants []domainGrant
}

// Grants returns the committed grants in acquisition order.
func (t *SpanTx) Grants() []ctrl.Grant {
	out := make([]ctrl.Grant, len(t.grants))
	for i, dg := range t.grants {
		out[i] = dg.g
	}
	return out
}

// Abort rolls the whole span back in reverse acquisition order. Safe after
// Commit (the engine contract) and idempotent per grant.
func (t *SpanTx) Abort() { abortGrants(t.grants) }

// FeasibleSpan dry-runs every leg in order and returns the first typed
// rejection, or nil when every leg reports feasible. Like the engine's
// admission dry run, a concurrent reservation may still win the race.
func FeasibleSpan(legs []SpanLeg) *slice.RejectionCause {
	for _, l := range legs {
		if cause := l.Domain.Feasible(l.Tx); cause != nil {
			return cause
		}
	}
	return nil
}

// InstallSpan runs the two-phase transaction across the legs: phase one
// reserves each leg in order (any failure aborts everything reserved so far
// in reverse order), phase two commits in acquisition order (a commit
// failure likewise unwinds everything). Both phases are panic-contained per
// leg via the engine's safe wrappers, so one misbehaving cluster converts to
// a typed RejectInternal instead of crashing the federation tier.
func InstallSpan(legs []SpanLeg) (*SpanTx, *slice.RejectionCause) {
	grants := make([]domainGrant, 0, len(legs))
	for _, l := range legs {
		g, cause := safeReserve(l.Domain, l.Tx)
		if cause != nil {
			abortGrants(grants)
			return nil, cause
		}
		grants = append(grants, domainGrant{d: l.Domain, g: g})
	}
	if cause := commitGrants(grants); cause != nil {
		// commitGrants already aborted everything in reverse order.
		return nil, cause
	}
	return &SpanTx{grants: grants}, nil
}

// LedgerLoad returns the capacity ledger's current total — the estimated
// radio load of every live slice. The federation tier reads it at each
// barrier to refresh the member's advertised headroom, and the federation
// conservation invariant uses it as ground truth.
func (o *Orchestrator) LedgerLoad() float64 { return o.ledger.Load() }

// AggregateGain folds per-cluster gain reports into one federation-wide
// report: capacities, contracts, allocations, counters and money sum;
// rejection histograms merge; the ratios are recomputed from the summed
// totals (a ratio of sums, not a sum of ratios); Epochs reports the furthest
// member epoch. The fold is order-independent for the integer counters and
// order-sensitive for float sums — callers that need bit-identical reports
// across member orderings must pass the reports in a canonical (name-sorted)
// order, which is exactly what the federation registry does.
func AggregateGain(reports []GainReport) GainReport {
	g := GainReport{RejectReasons: make(map[string]int)}
	for _, r := range reports {
		g.CapacityMbps += r.CapacityMbps
		g.ContractedMbps += r.ContractedMbps
		g.AllocatedMbps += r.AllocatedMbps
		g.Admitted += r.Admitted
		g.Rejected += r.Rejected
		g.Active += r.Active
		g.RevenueTotalEUR += r.RevenueTotalEUR
		g.PenaltyTotalEUR += r.PenaltyTotalEUR
		g.ViolationEpochs += r.ViolationEpochs
		g.Reconfigurations += r.Reconfigurations
		for code, n := range r.RejectReasons {
			g.RejectReasons[code] += n
		}
		if r.Epochs > g.Epochs {
			g.Epochs = r.Epochs
		}
	}
	if g.CapacityMbps > 0 {
		g.OverbookingRatio = g.ContractedMbps / g.CapacityMbps
	}
	if g.AllocatedMbps > 0 {
		g.MultiplexingGain = g.ContractedMbps / g.AllocatedMbps
	}
	g.NetRevenueEUR = g.RevenueTotalEUR - g.PenaltyTotalEUR
	return g
}
