package core

import (
	"testing"
	"time"

	"repro/internal/slice"
)

func TestHistoryPruningBoundsRegistry(t *testing.T) {
	s, o := env(t, Config{HistoryLimit: 5})
	// Churn 20 slices through submit+delete.
	for i := 0; i < 20; i++ {
		sl, err := o.Submit(req("churn", 10, 50, time.Hour, 10), nil)
		if err != nil {
			t.Fatal(err)
		}
		s.RunFor(12 * time.Second)
		if err := o.Delete(sl.ID()); err != nil {
			t.Fatal(err)
		}
	}
	ls := o.List()
	if len(ls) > 5 {
		t.Fatalf("registry holds %d finished slices, limit 5", len(ls))
	}
	// The retained ones must be the newest.
	for _, sn := range ls {
		if seqOf(sn.ID) <= 15 {
			t.Fatalf("old slice %s survived pruning", sn.ID)
		}
	}
	// Cumulative counters survive pruning.
	if g := o.Gain(); g.Admitted != 20 {
		t.Fatalf("admitted counter %d after pruning", g.Admitted)
	}
}

func TestHistoryPruningNeverDropsLiveSlices(t *testing.T) {
	s, o := env(t, Config{HistoryLimit: 1, Overbook: true, AdmissionLoadFactor: 0.1, PLMNLimit: 6})
	var live []*slice.Slice
	for i := 0; i < 4; i++ {
		sl, _ := o.Submit(req("live", 5, 50, 3*time.Hour, 10), nil)
		if sl.State() != slice.StateRejected {
			live = append(live, sl)
		}
	}
	s.RunFor(15 * time.Second)
	// Churn finished ones past the limit.
	for i := 0; i < 5; i++ {
		sl, _ := o.Submit(req("churn", 5, 50, time.Hour, 10), nil)
		if sl.State() != slice.StateRejected {
			s.RunFor(12 * time.Second)
			o.Delete(sl.ID())
		}
	}
	for _, sl := range live {
		if _, ok := o.Get(sl.ID()); !ok {
			t.Fatalf("live slice %s pruned", sl.ID())
		}
		if sl.State() != slice.StateActive {
			t.Fatalf("live slice %s state %v", sl.ID(), sl.State())
		}
	}
}

func TestTimelinesPrunedWithSlices(t *testing.T) {
	s, o := env(t, Config{HistoryLimit: 2})
	var first slice.ID
	for i := 0; i < 6; i++ {
		sl, _ := o.Submit(req("t", 10, 50, time.Hour, 10), nil)
		if i == 0 {
			first = sl.ID()
		}
		s.RunFor(12 * time.Second)
		o.Delete(sl.ID())
	}
	if _, ok := o.Timeline(first); ok {
		t.Fatal("timeline of pruned slice retained")
	}
}
