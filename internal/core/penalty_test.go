package core

import (
	"strings"
	"testing"
	"time"
)

func TestPenaltyAwareRejectsLosingTrades(t *testing.T) {
	// Epoch 1m, risk 0.8 -> expected violations = 0.2/epoch. A 2-hour
	// slice has 120 epochs: expected penalty = 24 * PenaltyEUR.
	_, o := env(t, Config{Overbook: true, Risk: 0.8, PenaltyAware: true, Epoch: time.Minute})

	// Price 100, penalty 10 -> expected 240 >= 100: rejected.
	bad := req("loser", 20, 50, 2*time.Hour, 100)
	bad.SLA.PenaltyEUR = 10
	sl, _ := o.Submit(bad, nil)
	if sl.State().String() != "rejected" || !strings.Contains(sl.Reason(), "expected penalty") {
		t.Fatalf("state %v reason %q", sl.State(), sl.Reason())
	}

	// Price 300, penalty 1 -> expected 24 < 300: admitted.
	good := req("winner", 20, 50, 2*time.Hour, 300)
	good.SLA.PenaltyEUR = 1
	sl2, _ := o.Submit(good, nil)
	if sl2.State().String() == "rejected" {
		t.Fatalf("profitable slice rejected: %s", sl2.Reason())
	}
}

func TestPenaltyAwareNoopWithoutOverbooking(t *testing.T) {
	_, o := env(t, Config{PenaltyAware: true, Epoch: time.Minute}) // peak provisioning
	bad := req("t", 20, 50, 2*time.Hour, 1)
	bad.SLA.PenaltyEUR = 50
	sl, _ := o.Submit(bad, nil)
	if sl.State().String() == "rejected" {
		t.Fatalf("peak provisioning cannot violate, yet rejected: %s", sl.Reason())
	}
}

func TestPenaltyAwareDisabledByDefault(t *testing.T) {
	_, o := env(t, Config{Overbook: true, Risk: 0.8, Epoch: time.Minute})
	bad := req("t", 20, 50, 2*time.Hour, 1)
	bad.SLA.PenaltyEUR = 50
	sl, _ := o.Submit(bad, nil)
	if sl.State().String() == "rejected" && strings.Contains(sl.Reason(), "expected penalty") {
		t.Fatal("penalty-aware check ran while disabled")
	}
}

func TestExpectedPenaltyComputation(t *testing.T) {
	_, o := env(t, Config{Overbook: true, Risk: 0.9, Epoch: time.Minute})
	sla := req("t", 20, 50, time.Hour, 100).SLA
	sla.PenaltyEUR = 2
	// 60 epochs * 0.1 * 2 = 12.
	if got := o.expectedPenaltyEUR(sla); got < 11.99 || got > 12.01 {
		t.Fatalf("expected penalty %.2f, want 12", got)
	}
	// Peak provisioning: zero.
	o.cfg.Overbook = false
	if got := o.expectedPenaltyEUR(sla); got != 0 {
		t.Fatalf("peak expected penalty %.2f", got)
	}
}
