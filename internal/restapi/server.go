// Package restapi exposes the orchestrator over HTTP/JSON — the demo's
// "gathered monitoring information is promptly fed to the end-to-end
// orchestrator through REST APIs" plus the dashboard's request surface:
// submit a slice with duration, maximum latency, expected throughput, price
// and penalty; watch its state; read the gains-vs-penalties report.
//
// Two API versions share one Server (routed with Go 1.22 method patterns):
//
//   - /api/v1/ is the original poll-only surface, byte-for-byte preserved.
//   - /api/v2/ is the event-driven surface (DESIGN.md §6): filtered and
//     keyset-paginated GET /api/v2/slices, Idempotency-Key-deduplicated
//     POST /api/v2/slices, and GET /api/v2/events — the ordered lifecycle
//     stream as Server-Sent Events with ?since=<seq> resume.
//
// Server wraps an *core.Orchestrator; Client is the typed counterpart used
// by cmd/slicectl and the examples.
package restapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/slice"
)

// SliceRequestBody is the JSON payload of POST /api/{v1,v2}/slices — exactly
// the dashboard's form fields (Section 3).
type SliceRequestBody struct {
	Tenant string `json:"tenant"`
	// DurationSeconds is the slice lifetime.
	DurationSeconds float64 `json:"duration_seconds"`
	// MaxLatencyMs is the maximum end-to-end latency allowed.
	MaxLatencyMs float64 `json:"max_latency_ms"`
	// ThroughputMbps is the expected throughput.
	ThroughputMbps float64 `json:"throughput_mbps"`
	// PriceEUR is the price the tenant is willing to pay.
	PriceEUR float64 `json:"price_eur"`
	// PenaltyEUR is the penalty expected per SLA-violation epoch.
	PenaltyEUR float64 `json:"penalty_eur"`
	// Class is one of "eMBB", "automotive", "e-health", "mMTC".
	Class string `json:"class,omitempty"`
	// EdgeCompute forces mobile-edge placement.
	EdgeCompute bool `json:"edge_compute,omitempty"`
}

// classFromString parses the service-class name (default eMBB).
func classFromString(s string) (slice.ServiceClass, error) {
	switch strings.ToLower(s) {
	case "", "embb":
		return slice.ClassEMBB, nil
	case "automotive":
		return slice.ClassAutomotive, nil
	case "e-health", "ehealth":
		return slice.ClassEHealth, nil
	case "mmtc":
		return slice.ClassMMTC, nil
	default:
		return 0, fmt.Errorf("unknown service class %q", s)
	}
}

// Request converts the body into the internal request type.
func (b SliceRequestBody) Request() (slice.Request, error) {
	class, err := classFromString(b.Class)
	if err != nil {
		return slice.Request{}, err
	}
	return slice.Request{
		Tenant: b.Tenant,
		SLA: slice.SLA{
			ThroughputMbps: b.ThroughputMbps,
			MaxLatencyMs:   b.MaxLatencyMs,
			Duration:       time.Duration(b.DurationSeconds * float64(time.Second)),
			PriceEUR:       b.PriceEUR,
			PenaltyEUR:     b.PenaltyEUR,
			Class:          class,
			EdgeCompute:    b.EdgeCompute,
		},
	}, nil
}

// DemandBody is the JSON payload of POST /api/v1/slices/{id}/demand, the
// live-mode monitoring feed.
type DemandBody struct {
	Mbps float64 `json:"mbps"`
}

// SeriesResponse is the payload of GET /api/v1/metrics/{name}.
type SeriesResponse struct {
	Name    string           `json:"name"`
	Samples []monitor.Sample `json:"samples"`
	Stats   monitor.Stats    `json:"stats"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Server is the HTTP front of one orchestrator.
type Server struct {
	orch *core.Orchestrator
	mux  *http.ServeMux
	idem *idemStore[slice.Snapshot]
	// submit performs the slice submission; a seam so tests can inject
	// internal failures (defaults to orch.Submit).
	submit func(slice.Request) (*slice.Slice, error)
}

// NewServer builds the API server serving both /api/v1/ and /api/v2/.
func NewServer(orch *core.Orchestrator) *Server {
	s := &Server{orch: orch, mux: http.NewServeMux(), idem: newIdemStore[slice.Snapshot](1024)}
	s.submit = func(req slice.Request) (*slice.Slice, error) { return orch.Submit(req, nil) }

	s.mux.HandleFunc("/healthz", s.handleHealth)

	// v1 — method patterns; unmatched methods fall through to the bare
	// path pattern (method patterns are more specific, so they win), which
	// preserves the v1 JSON 405 envelope byte-for-byte. HEAD is registered
	// explicitly because a GET pattern would otherwise claim it — the old
	// hand-rolled method switches answered HEAD with the 405 envelope. The
	// /api/v1/slices/ subtree fallback replicates the old prefix handler
	// for paths the patterns reject (empty ID, extra segments).
	s.mux.HandleFunc("GET /api/v1/slices", s.handleListV1)
	s.mux.HandleFunc("POST /api/v1/slices", s.handleSubmitV1)
	s.mux.HandleFunc("HEAD /api/v1/slices", methodNotAllowed("restapi: use GET or POST"))
	s.mux.HandleFunc("/api/v1/slices", methodNotAllowed("restapi: use GET or POST"))
	s.mux.HandleFunc("GET /api/v1/slices/{id}", s.handleGetSlice)
	s.mux.HandleFunc("DELETE /api/v1/slices/{id}", s.handleDeleteSlice)
	s.mux.HandleFunc("HEAD /api/v1/slices/{id}", methodNotAllowed("restapi: use GET or DELETE"))
	s.mux.HandleFunc("/api/v1/slices/{id}", methodNotAllowed("restapi: use GET or DELETE"))
	s.mux.HandleFunc("POST /api/v1/slices/{id}/demand", s.handleDemand)
	s.mux.HandleFunc("/api/v1/slices/{id}/demand", methodNotAllowed("restapi: use POST"))
	s.mux.HandleFunc("/api/v1/slices/", s.slicesSubtreeFallback("/api/v1/slices/"))
	s.mux.HandleFunc("/api/v1/gain", s.handleGain)
	s.mux.HandleFunc("/api/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/v1/metrics/{name...}", s.handleMetricSeries)
	s.mux.HandleFunc("/api/v1/topology", s.handleTopology)
	s.mux.HandleFunc("POST /api/v1/links/{from}/{to}/{op}", s.handleLinkOps)
	s.mux.HandleFunc("/api/v1/links/", s.handleLinksFallback)
	s.mux.HandleFunc("/api/v1/enbs", s.handleENBs)
	s.mux.HandleFunc("/api/v1/datacenters", s.handleDCs)
	s.mux.HandleFunc("/api/v1/epcs", s.handleEPCs)

	// v2 — the event-driven surface (v2.go).
	s.mux.HandleFunc("GET /api/v2/slices", s.handleListV2)
	s.mux.HandleFunc("POST /api/v2/slices", s.handleSubmitV2)
	s.mux.HandleFunc("/api/v2/slices", methodNotAllowed("restapi: use GET or POST"))
	s.mux.HandleFunc("GET /api/v2/slices/{id}", s.handleGetSlice)
	s.mux.HandleFunc("DELETE /api/v2/slices/{id}", s.handleDeleteSlice)
	s.mux.HandleFunc("/api/v2/slices/{id}", methodNotAllowed("restapi: use GET or DELETE"))
	s.mux.HandleFunc("GET /api/v2/events", s.handleEvents)
	s.mux.HandleFunc("/api/v2/events", methodNotAllowed("restapi: use GET"))
	s.mux.HandleFunc("GET /api/v2/epoch", s.handleEpochV2)
	s.mux.HandleFunc("/api/v2/epoch", methodNotAllowed("restapi: use GET"))
	s.mux.HandleFunc("GET /api/v2/recovery", s.handleRecovery)
	s.mux.HandleFunc("/api/v2/recovery", methodNotAllowed("restapi: use GET"))
	s.mux.HandleFunc("POST /api/v2/dryrun", s.handleDryRunRaw)
	s.mux.HandleFunc("/api/v2/dryrun", methodNotAllowed("restapi: use POST"))
	s.mux.HandleFunc("/api/v2/slices/", s.slicesSubtreeFallback("/api/v2/slices/"))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// logf reports response-encoding failures; swapped out by tests.
var logf = log.Printf

// writeJSON writes the response envelope. The status line and headers go
// out before the body — exactly once, so a mid-body encode failure can
// never double-write headers — and encode errors (typically the client
// hanging up) are logged once rather than silently dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("restapi: encode %T response: %v", v, err)
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// methodNotAllowed is the shared JSON 405 fallback registered on the bare
// path patterns.
func methodNotAllowed(msg string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusMethodNotAllowed, errors.New(msg))
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleListV1(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.List())
}

// decodeSubmitBody parses and validates a slice submission, reporting any
// problem as a 400. The nil,false return means the response is written.
func (s *Server) decodeSubmitBody(w http.ResponseWriter, r *http.Request) (slice.Request, bool) {
	var body SliceRequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return slice.Request{}, false
	}
	req, err := body.Request()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return slice.Request{}, false
	}
	if err := req.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return slice.Request{}, false
	}
	return req, true
}

// handleSubmitV1 serves POST /api/v1/slices. Validation failures are the
// tenant's fault (400); anything Submit returns after validation passed is
// an internal failure (500) — business rejections are not errors and are
// reported in-band. The same mapping backs v2.
func (s *Server) handleSubmitV1(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSubmitBody(w, r)
	if !ok {
		return
	}
	s.handleSubmitV1Decoded(w, req)
}

// handleGetSlice serves GET /api/{v1,v2}/slices/{id}.
func (s *Server) handleGetSlice(w http.ResponseWriter, r *http.Request) {
	s.getSlice(w, slice.ID(r.PathValue("id")))
}

func (s *Server) getSlice(w http.ResponseWriter, id slice.ID) {
	sl, ok := s.orch.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: slice %s not found", id))
		return
	}
	writeJSON(w, http.StatusOK, sl.Snapshot())
}

// handleDeleteSlice serves DELETE /api/{v1,v2}/slices/{id}.
func (s *Server) handleDeleteSlice(w http.ResponseWriter, r *http.Request) {
	s.deleteSlice(w, slice.ID(r.PathValue("id")))
}

func (s *Server) deleteSlice(w http.ResponseWriter, id slice.ID) {
	if err := s.orch.Delete(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "terminated"})
}

// slicesSubtreeFallback answers /api/{v1,v2}/slices/ paths no pattern
// claims — an empty ID ("/api/v1/slices/") or extra path segments — with
// the original v1 prefix handler's parse-and-dispatch, JSON envelopes
// included: the first segment is the slice ID, GET/DELETE operate on it
// (404 for the inevitably unknown ID), anything else is the 405 envelope.
func (s *Server) slicesSubtreeFallback(prefix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, prefix)
		id := slice.ID(strings.SplitN(rest, "/", 2)[0])
		switch r.Method {
		case http.MethodGet:
			s.getSlice(w, id)
		case http.MethodDelete:
			s.deleteSlice(w, id)
		default:
			writeErr(w, http.StatusMethodNotAllowed, errors.New("restapi: use GET or DELETE"))
		}
	}
}

// handleDemand serves POST /api/v1/slices/{id}/demand.
func (s *Server) handleDemand(w http.ResponseWriter, r *http.Request) {
	var body DemandBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return
	}
	if err := s.orch.RecordDemand(slice.ID(r.PathValue("id")), body.Mbps); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) handleGain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.Gain())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.Store().Snapshot())
}

func (s *Server) handleMetricSeries(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("restapi: metric name required"))
		return
	}
	window := 0
	if q := r.URL.Query().Get("window"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad window %q", q))
			return
		}
		window = n
	}
	series := s.orch.Store().Series(name)
	writeJSON(w, http.StatusOK, SeriesResponse{
		Name:    name,
		Samples: series.Window(window),
		Stats:   series.WindowStats(window),
	})
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.Testbed().Transport.Snapshot())
}

// LinkOpBody is the JSON payload of POST /api/v1/links/{from}/{to}/degrade.
type LinkOpBody struct {
	CapacityMbps float64 `json:"capacity_mbps"`
}

// handleLinkOps serves POST /api/v1/links/{from}/{to}/{fail|restore|degrade}
// — the operational hooks for the demo's "different transport network
// topology configurations" and failure injection.
func (s *Server) handleLinkOps(w http.ResponseWriter, r *http.Request) {
	from, to, op := r.PathValue("from"), r.PathValue("to"), r.PathValue("op")
	switch op {
	case "fail":
		rep, err := s.orch.HandleLinkFailure(from, to)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	case "restore":
		if err := s.orch.RestoreLink(from, to); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
	case "degrade":
		var body LinkOpBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
			return
		}
		rep, err := s.orch.HandleLinkDegradation(from, to, body.CapacityMbps)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: unknown link op %q", op))
	}
}

// handleLinksFallback preserves the pre-pattern-routing link-op errors:
// non-POST methods get the JSON 405 envelope; a POST whose path is not
// exactly {from}/{to}/{op} gets the shape hint.
func (s *Server) handleLinksFallback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("restapi: use POST"))
		return
	}
	writeErr(w, http.StatusBadRequest, errors.New("restapi: want /api/v1/links/{from}/{to}/{fail|restore|degrade}"))
}

func (s *Server) handleENBs(w http.ResponseWriter, r *http.Request) {
	tb := s.orch.Testbed()
	out := make([]any, 0, 2)
	for _, e := range tb.RAN.All() {
		out = append(out, e.Snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDCs(w http.ResponseWriter, r *http.Request) {
	tb := s.orch.Testbed()
	type dcView struct {
		Name     string  `json:"name"`
		Kind     string  `json:"kind"`
		Capacity any     `json:"capacity"`
		Util     float64 `json:"utilization"`
	}
	var out []dcView
	for _, dc := range tb.Region.All() {
		out = append(out, dcView{Name: dc.Name(), Kind: dc.Kind(), Capacity: dc.Capacity(), Util: dc.Utilization()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEPCs(w http.ResponseWriter, r *http.Request) {
	var out []any
	for _, in := range s.orch.Testbed().Ctrl.Cloud.EPCs().All() {
		out = append(out, in.Snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

// idemStore deduplicates POST /api/v2/slices by Idempotency-Key: the first
// request with a key performs the submission, concurrent and later
// duplicates replay its outcome instead of creating another slice. The
// store is bounded (oldest keys evicted) so a long-running daemon stays
// flat; failed submissions are not cached, so retries re-attempt. Generic
// over the cached outcome: slice.Snapshot for /api/v2/slices,
// federation.SpanStatus for /api/v2/federation/slices.
type idemStore[T any] struct {
	mu      sync.Mutex
	limit   int
	order   []string
	entries map[string]*idemEntry[T]
}

// idemEntry is one key's outcome. once gates the actual submission:
// concurrent duplicates block on it and then replay.
type idemEntry[T any] struct {
	once sync.Once
	// done marks the submission inside once as finished (written under the
	// store mutex via complete). Capacity eviction may only drop done
	// entries: evicting an in-flight one would hand a concurrent duplicate
	// of the same key a fresh entry with an unfired once — a double-submit.
	done   bool
	id     slice.ID
	status int
	snap   T
	err    error
}

func newIdemStore[T any](limit int) *idemStore[T] {
	return &idemStore[T]{limit: limit, entries: make(map[string]*idemEntry[T])}
}

// entry returns the entry for key, creating it when absent. Beyond the
// bound the oldest *completed* key is evicted; in-flight entries are never
// dropped (their once must stay the single gate for that key), so the store
// may transiently exceed limit while every retained submission is still in
// flight — it shrinks back as they complete and later inserts evict.
func (st *idemStore[T]) entry(key string) *idemEntry[T] {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.entries[key]; ok {
		return e
	}
	e := &idemEntry[T]{}
	st.entries[key] = e
	st.order = append(st.order, key)
	if len(st.order) > st.limit {
		for i, k := range st.order {
			if old, ok := st.entries[k]; ok && old.done {
				delete(st.entries, k)
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
	}
	return e
}

// complete marks the key's submission finished, making the entry eligible
// for capacity eviction. Failed submissions go through drop instead (the
// error-not-cached retry contract), so a completed entry always replays a
// real outcome.
func (st *idemStore[T]) complete(key string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.entries[key]; ok {
		e.done = true
	}
}

// drop removes a failed key so a retry re-attempts the submission.
func (st *idemStore[T]) drop(key string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.entries, key)
	for i, k := range st.order {
		if k == key {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}
