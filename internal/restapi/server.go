// Package restapi exposes the orchestrator over HTTP/JSON — the demo's
// "gathered monitoring information is promptly fed to the end-to-end
// orchestrator through REST APIs" plus the dashboard's request surface:
// submit a slice with duration, maximum latency, expected throughput, price
// and penalty; watch its state; read the gains-vs-penalties report.
//
// Server wraps an *core.Orchestrator; Client is the typed counterpart used
// by cmd/slicectl and the examples.
package restapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/slice"
)

// SliceRequestBody is the JSON payload of POST /api/v1/slices — exactly the
// dashboard's form fields (Section 3).
type SliceRequestBody struct {
	Tenant string `json:"tenant"`
	// DurationSeconds is the slice lifetime.
	DurationSeconds float64 `json:"duration_seconds"`
	// MaxLatencyMs is the maximum end-to-end latency allowed.
	MaxLatencyMs float64 `json:"max_latency_ms"`
	// ThroughputMbps is the expected throughput.
	ThroughputMbps float64 `json:"throughput_mbps"`
	// PriceEUR is the price the tenant is willing to pay.
	PriceEUR float64 `json:"price_eur"`
	// PenaltyEUR is the penalty expected per SLA-violation epoch.
	PenaltyEUR float64 `json:"penalty_eur"`
	// Class is one of "eMBB", "automotive", "e-health", "mMTC".
	Class string `json:"class,omitempty"`
	// EdgeCompute forces mobile-edge placement.
	EdgeCompute bool `json:"edge_compute,omitempty"`
}

// classFromString parses the service-class name (default eMBB).
func classFromString(s string) (slice.ServiceClass, error) {
	switch strings.ToLower(s) {
	case "", "embb":
		return slice.ClassEMBB, nil
	case "automotive":
		return slice.ClassAutomotive, nil
	case "e-health", "ehealth":
		return slice.ClassEHealth, nil
	case "mmtc":
		return slice.ClassMMTC, nil
	default:
		return 0, fmt.Errorf("unknown service class %q", s)
	}
}

// Request converts the body into the internal request type.
func (b SliceRequestBody) Request() (slice.Request, error) {
	class, err := classFromString(b.Class)
	if err != nil {
		return slice.Request{}, err
	}
	return slice.Request{
		Tenant: b.Tenant,
		SLA: slice.SLA{
			ThroughputMbps: b.ThroughputMbps,
			MaxLatencyMs:   b.MaxLatencyMs,
			Duration:       time.Duration(b.DurationSeconds * float64(time.Second)),
			PriceEUR:       b.PriceEUR,
			PenaltyEUR:     b.PenaltyEUR,
			Class:          class,
			EdgeCompute:    b.EdgeCompute,
		},
	}, nil
}

// DemandBody is the JSON payload of POST /api/v1/slices/{id}/demand, the
// live-mode monitoring feed.
type DemandBody struct {
	Mbps float64 `json:"mbps"`
}

// SeriesResponse is the payload of GET /api/v1/metrics/{name}.
type SeriesResponse struct {
	Name    string           `json:"name"`
	Samples []monitor.Sample `json:"samples"`
	Stats   monitor.Stats    `json:"stats"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Server is the HTTP front of one orchestrator.
type Server struct {
	orch *core.Orchestrator
	mux  *http.ServeMux
}

// NewServer builds the API server.
func NewServer(orch *core.Orchestrator) *Server {
	s := &Server{orch: orch, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/api/v1/slices", s.handleSlices)
	s.mux.HandleFunc("/api/v1/slices/", s.handleSliceByID)
	s.mux.HandleFunc("/api/v1/gain", s.handleGain)
	s.mux.HandleFunc("/api/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/v1/metrics/", s.handleMetricSeries)
	s.mux.HandleFunc("/api/v1/topology", s.handleTopology)
	s.mux.HandleFunc("/api/v1/links/", s.handleLinkOps)
	s.mux.HandleFunc("/api/v1/enbs", s.handleENBs)
	s.mux.HandleFunc("/api/v1/datacenters", s.handleDCs)
	s.mux.HandleFunc("/api/v1/epcs", s.handleEPCs)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSlices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.orch.List())
	case http.MethodPost:
		var body SliceRequestBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
			return
		}
		req, err := body.Request()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sl, err := s.orch.Submit(req, nil)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		status := http.StatusAccepted
		if sl.State() == slice.StateRejected {
			// Rejection is a valid business outcome, reported in-band.
			status = http.StatusOK
		}
		writeJSON(w, status, sl.Snapshot())
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("restapi: use GET or POST"))
	}
}

// handleSliceByID serves /api/v1/slices/{id} and /api/v1/slices/{id}/demand.
func (s *Server) handleSliceByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/slices/")
	parts := strings.SplitN(rest, "/", 2)
	id := slice.ID(parts[0])
	if len(parts) == 2 && parts[1] == "demand" {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("restapi: use POST"))
			return
		}
		var body DemandBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
			return
		}
		if err := s.orch.RecordDemand(id, body.Mbps); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
		return
	}
	switch r.Method {
	case http.MethodGet:
		sl, ok := s.orch.Get(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: slice %s not found", id))
			return
		}
		writeJSON(w, http.StatusOK, sl.Snapshot())
	case http.MethodDelete:
		if err := s.orch.Delete(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "terminated"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("restapi: use GET or DELETE"))
	}
}

func (s *Server) handleGain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.Gain())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.Store().Snapshot())
}

func (s *Server) handleMetricSeries(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/v1/metrics/")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("restapi: metric name required"))
		return
	}
	window := 0
	if q := r.URL.Query().Get("window"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad window %q", q))
			return
		}
		window = n
	}
	series := s.orch.Store().Series(name)
	writeJSON(w, http.StatusOK, SeriesResponse{
		Name:    name,
		Samples: series.Window(window),
		Stats:   series.WindowStats(window),
	})
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.Testbed().Transport.Snapshot())
}

// LinkOpBody is the JSON payload of POST /api/v1/links/{from}/{to}/degrade.
type LinkOpBody struct {
	CapacityMbps float64 `json:"capacity_mbps"`
}

// handleLinkOps serves POST /api/v1/links/{from}/{to}/{fail|restore|degrade}
// — the operational hooks for the demo's "different transport network
// topology configurations" and failure injection.
func (s *Server) handleLinkOps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("restapi: use POST"))
		return
	}
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/api/v1/links/"), "/")
	if len(parts) != 3 {
		writeErr(w, http.StatusBadRequest, errors.New("restapi: want /api/v1/links/{from}/{to}/{fail|restore|degrade}"))
		return
	}
	from, to, op := parts[0], parts[1], parts[2]
	switch op {
	case "fail":
		rep, err := s.orch.HandleLinkFailure(from, to)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	case "restore":
		if err := s.orch.RestoreLink(from, to); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
	case "degrade":
		var body LinkOpBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
			return
		}
		rep, err := s.orch.HandleLinkDegradation(from, to, body.CapacityMbps)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: unknown link op %q", op))
	}
}

func (s *Server) handleENBs(w http.ResponseWriter, r *http.Request) {
	tb := s.orch.Testbed()
	out := make([]any, 0, 2)
	for _, e := range tb.RAN.All() {
		out = append(out, e.Snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDCs(w http.ResponseWriter, r *http.Request) {
	tb := s.orch.Testbed()
	type dcView struct {
		Name     string  `json:"name"`
		Kind     string  `json:"kind"`
		Capacity any     `json:"capacity"`
		Util     float64 `json:"utilization"`
	}
	var out []dcView
	for _, dc := range tb.Region.All() {
		out = append(out, dcView{Name: dc.Name(), Kind: dc.Kind(), Capacity: dc.Capacity(), Util: dc.Utilization()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEPCs(w http.ResponseWriter, r *http.Request) {
	var out []any
	for _, in := range s.orch.Testbed().Ctrl.Cloud.EPCs().All() {
		out = append(out, in.Snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}
