package restapi

// Client side of GET /api/v2/events: a minimal Server-Sent-Events consumer
// with ?since resume. StreamEvents handles one connection; WatchEvents
// layers automatic reconnect-and-resume on top, so a consumer survives
// daemon restarts and flaky links while observing each event at most once
// (modulo the resync contract — see core.EventResync).

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// ErrStopWatch is returned by a watch callback to end the stream cleanly:
// StreamEvents/WatchEvents stop and return nil.
var ErrStopWatch = errors.New("restapi: stop watch")

// WatchParams positions and filters an event subscription, mirroring
// core.WatchOptions over the wire: Since 0 tails new events, > 0 resumes
// after that sequence, < 0 replays everything the server ring retains.
type WatchParams struct {
	Since   int64
	Tenants []string
	States  []string
	Types   []core.EventType
}

func (p WatchParams) query() string {
	q := url.Values{}
	switch {
	case p.Since > 0:
		q.Set("since", strconv.FormatInt(p.Since, 10))
	case p.Since < 0:
		q.Set("since", "0")
	}
	for _, t := range p.Tenants {
		q.Add("tenant", t)
	}
	for _, s := range p.States {
		q.Add("state", s)
	}
	for _, t := range p.Types {
		q.Add("type", string(t))
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// callbackErr wraps an error returned by the watch callback so WatchEvents
// can tell "the consumer is done" apart from "the connection dropped".
type callbackErr struct{ err error }

func (e callbackErr) Error() string { return e.err.Error() }
func (e callbackErr) Unwrap() error { return e.err }

// StreamEvents opens one SSE connection to /api/v2/events and invokes fn
// for every event until ctx is cancelled, fn returns an error, or the
// connection drops. It returns the last sequence number seen (0 if none) —
// pass it back as WatchParams.Since to resume without gaps — and the
// terminating error: nil on ErrStopWatch, ctx.Err() on cancellation, the
// transport error otherwise.
func (c *Client) StreamEvents(ctx context.Context, p WatchParams, fn func(core.Event) error) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v2/events"+p.query(), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			eb.Error = resp.Status
		}
		return 0, &apiError{Status: resp.StatusCode, Msg: eb.Error}
	}

	var last int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 16*1024), 1024*1024)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() == 0 {
				continue // retry:/comment frames carry no data
			}
			var ev core.Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return last, fmt.Errorf("restapi: bad event frame: %w", err)
			}
			data.Reset()
			if ev.Seq > last {
				last = ev.Seq
			}
			if err := fn(ev); err != nil {
				if errors.Is(err, ErrStopWatch) {
					return last, nil
				}
				return last, callbackErr{err}
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event:/retry: lines and comments: the data JSON already
			// carries seq and type.
		}
	}
	if ctx.Err() != nil {
		return last, ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, errors.New("restapi: event stream closed by server")
}

// WatchEvents consumes the event stream with automatic resume: when the
// connection drops it reconnects with since=<last seen sequence>, so fn
// observes the same ordered sequence an uninterrupted subscriber would (a
// "resync" event signals the gap when the server ring no longer holds the
// resume point). It returns nil when fn returns ErrStopWatch, fn's error
// when it aborts, and ctx.Err() on cancellation.
func (c *Client) WatchEvents(ctx context.Context, p WatchParams, fn func(core.Event) error) error {
	since := p.Since
	for {
		// Resync markers are authoritative repositioning, tracked here
		// separately from `last` because a marker's sequence may be lower
		// than the stale resume token — including 0, when the server's
		// stream is younger than the token (daemon restart). Folding it
		// into `last` would be wrong the other way: last must never move
		// backwards past events fn already observed on this connection.
		resynced := false
		var resyncTo int64
		last, err := c.StreamEvents(ctx, WatchParams{
			Since: since, Tenants: p.Tenants, States: p.States, Types: p.Types,
		}, func(ev core.Event) error {
			if ev.Type == core.EventResync {
				resynced = true
				resyncTo = ev.Seq
			}
			return fn(ev)
		})
		switch {
		case last > 0:
			since = last
		case resynced:
			// Only the marker arrived before the drop. Resume from its
			// sequence — for Seq 0 that collapses to a live tail, which is
			// exactly the contract: the pre-restart history is gone.
			// Keeping the stale token instead would re-deliver a duplicate
			// resync on every reconnect and silently skip every new event
			// until the young stream outgrew the token.
			since = resyncTo
		}
		// A Since<0 full-replay request with no events consumed stays <0:
		// re-requesting the replay after a failed or empty connection can
		// never duplicate (nothing was delivered) but collapsing to a live
		// tail would silently drop the retained history the caller asked
		// for — e.g. when the first dial races a daemon restart.
		switch {
		case err == nil:
			return nil // fn asked to stop
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			var cb callbackErr
			if errors.As(err, &cb) {
				return cb.err
			}
		}
		// Transport-level drop: back off briefly, then resume.
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
