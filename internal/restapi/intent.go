package restapi

// The intent-plane surface (DESIGN.md §13): versioned slice templates with
// server-side dry-run, fleet instantiation, and canary rollouts. Mounted by
// AttachIntent because the intent Manager is optional equipment — a daemon
// without one serves the v1/v2 slice surface unchanged.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/intent"
)

// TemplateBody is the JSON payload of POST /api/v2/templates — the template
// contract with the wire's duration-in-seconds convention.
type TemplateBody struct {
	Name              string  `json:"name"`
	ThroughputMbps    float64 `json:"throughput_mbps"`
	MaxLatencyMs      float64 `json:"max_latency_ms"`
	DurationSeconds   float64 `json:"duration_seconds"`
	PriceEUR          float64 `json:"price_eur"`
	PenaltyEUR        float64 `json:"penalty_eur"`
	Class             string  `json:"class,omitempty"`
	ProvisionFraction float64 `json:"provision_fraction,omitempty"`
}

// Template converts the body into the internal template type.
func (b TemplateBody) Template() (intent.Template, error) {
	class, err := classFromString(b.Class)
	if err != nil {
		return intent.Template{}, err
	}
	return intent.Template{
		Name:              b.Name,
		ThroughputMbps:    b.ThroughputMbps,
		MaxLatencyMs:      b.MaxLatencyMs,
		Duration:          time.Duration(b.DurationSeconds * float64(time.Second)),
		PriceEUR:          b.PriceEUR,
		PenaltyEUR:        b.PenaltyEUR,
		Class:             class,
		ProvisionFraction: b.ProvisionFraction,
	}, nil
}

// DryRunBody is the JSON payload of POST /api/v2/templates/{name}/{version}/dryrun.
type DryRunBody struct {
	Tenant string `json:"tenant"`
	Region string `json:"region"`
}

// InstantiateBody is the JSON payload of POST /api/v2/fleets.
type InstantiateBody struct {
	Template string   `json:"template"`
	Version  int      `json:"version"`
	Tenants  []string `json:"tenants"`
	Regions  []string `json:"regions"`
	// Policy is the batch admission policy: "fcfs" (default), "density" or
	// "optimal".
	Policy string `json:"policy,omitempty"`
}

// RolloutBody is the JSON payload of POST /api/v2/rollouts.
type RolloutBody struct {
	Fleet          string  `json:"fleet"`
	ToVersion      int     `json:"to_version"`
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
	WindowSeconds  float64 `json:"window_seconds,omitempty"`
	MaxViolations  int     `json:"max_violations,omitempty"`
}

// batchPolicyFromString parses the batch policy name (default FCFS).
func batchPolicyFromString(s string) (core.BatchPolicy, error) {
	switch strings.ToLower(s) {
	case "", "fcfs":
		return core.BatchFCFS, nil
	case "density":
		return core.BatchDensity, nil
	case "optimal", "knapsack", "knapsack-optimal":
		return core.BatchOptimal, nil
	default:
		return 0, fmt.Errorf("restapi: unknown batch policy %q", s)
	}
}

// AttachIntent mounts the intent-plane routes on the server. Fleet and
// rollout creation honour Idempotency-Key with the same dedup contract as
// slice submission: first request acts, duplicates replay, failures are not
// cached.
func (s *Server) AttachIntent(m *intent.Manager) {
	is := &intentServer{srv: s, mgr: m,
		fleetIdem:   newIdemStore[intent.Fleet](1024),
		rolloutIdem: newIdemStore[intent.Rollout](1024),
	}
	s.mux.HandleFunc("GET /api/v2/templates", is.handleListTemplates)
	s.mux.HandleFunc("POST /api/v2/templates", is.handleCreateTemplate)
	s.mux.HandleFunc("/api/v2/templates", methodNotAllowed("restapi: use GET or POST"))
	s.mux.HandleFunc("GET /api/v2/templates/{name}/{version}", is.handleGetTemplate)
	s.mux.HandleFunc("PUT /api/v2/templates/{name}/{version}", is.handleUpdateTemplate)
	s.mux.HandleFunc("/api/v2/templates/{name}/{version}", methodNotAllowed("restapi: use GET or PUT"))
	s.mux.HandleFunc("POST /api/v2/templates/{name}/{version}/publish", is.handlePublishTemplate)
	s.mux.HandleFunc("/api/v2/templates/{name}/{version}/publish", methodNotAllowed("restapi: use POST"))
	s.mux.HandleFunc("POST /api/v2/templates/{name}/{version}/dryrun", is.handleTemplateDryRun)
	s.mux.HandleFunc("/api/v2/templates/{name}/{version}/dryrun", methodNotAllowed("restapi: use POST"))
	s.mux.HandleFunc("/api/v2/templates/", is.handleUnknown)

	s.mux.HandleFunc("GET /api/v2/fleets", is.handleListFleets)
	s.mux.HandleFunc("POST /api/v2/fleets", is.handleInstantiate)
	s.mux.HandleFunc("/api/v2/fleets", methodNotAllowed("restapi: use GET or POST"))
	s.mux.HandleFunc("GET /api/v2/fleets/{id}", is.handleGetFleet)
	s.mux.HandleFunc("/api/v2/fleets/{id}", methodNotAllowed("restapi: use GET"))

	s.mux.HandleFunc("GET /api/v2/rollouts", is.handleListRollouts)
	s.mux.HandleFunc("POST /api/v2/rollouts", is.handleStartRollout)
	s.mux.HandleFunc("/api/v2/rollouts", methodNotAllowed("restapi: use GET or POST"))
	s.mux.HandleFunc("GET /api/v2/rollouts/{id}", is.handleGetRollout)
	s.mux.HandleFunc("/api/v2/rollouts/{id}", methodNotAllowed("restapi: use GET"))
}

// intentServer groups the intent handlers and their idempotency stores.
type intentServer struct {
	srv         *Server
	mgr         *intent.Manager
	fleetIdem   *idemStore[intent.Fleet]
	rolloutIdem *idemStore[intent.Rollout]
}

func (is *intentServer) handleUnknown(w http.ResponseWriter, r *http.Request) {
	writeErr(w, http.StatusNotFound, errors.New("restapi: want /api/v2/templates/{name}/{version}[/publish|/dryrun]"))
}

// templateRef parses the {name}/{version} path values; false means the
// response is written.
func templateRef(w http.ResponseWriter, r *http.Request) (string, int, bool) {
	name := r.PathValue("name")
	version, err := strconv.Atoi(r.PathValue("version"))
	if err != nil || version < 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad template version %q", r.PathValue("version")))
		return "", 0, false
	}
	return name, version, true
}

func (is *intentServer) handleListTemplates(w http.ResponseWriter, r *http.Request) {
	ts := is.mgr.Store().List()
	if ts == nil {
		ts = []intent.Template{}
	}
	writeJSON(w, http.StatusOK, ts)
}

func (is *intentServer) handleCreateTemplate(w http.ResponseWriter, r *http.Request) {
	var body TemplateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return
	}
	t, err := body.Template()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	created, err := is.mgr.Store().CreateDraft(t, time.Now())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, created)
}

func (is *intentServer) handleGetTemplate(w http.ResponseWriter, r *http.Request) {
	name, version, ok := templateRef(w, r)
	if !ok {
		return
	}
	t, ok := is.mgr.Store().Get(name, version)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: template %s v%d not found", name, version))
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (is *intentServer) handleUpdateTemplate(w http.ResponseWriter, r *http.Request) {
	name, version, ok := templateRef(w, r)
	if !ok {
		return
	}
	var body TemplateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return
	}
	t, err := body.Template()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t.Name, t.Version = name, version
	updated, err := is.mgr.Store().UpdateDraft(t)
	if err != nil {
		writeErr(w, statusForIntentErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, updated)
}

func (is *intentServer) handlePublishTemplate(w http.ResponseWriter, r *http.Request) {
	name, version, ok := templateRef(w, r)
	if !ok {
		return
	}
	t, err := is.mgr.Store().Publish(name, version, time.Now())
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "not found") {
			status = http.StatusNotFound
		}
		// Guardrail failures are 422: the request was well-formed, the
		// template violates policy.
		if strings.Contains(err.Error(), "guardrail") {
			status = http.StatusUnprocessableEntity
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (is *intentServer) handleTemplateDryRun(w http.ResponseWriter, r *http.Request) {
	name, version, ok := templateRef(w, r)
	if !ok {
		return
	}
	var body DryRunBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return
	}
	region := intent.RegionCore
	if body.Region != "" {
		var err error
		if region, err = intent.ParseRegion(body.Region); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	rep, err := is.mgr.DryRun(name, version, body.Tenant, region)
	if err != nil {
		writeErr(w, statusForIntentErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (is *intentServer) handleListFleets(w http.ResponseWriter, r *http.Request) {
	fs := is.mgr.Fleets()
	if fs == nil {
		fs = []intent.Fleet{}
	}
	writeJSON(w, http.StatusOK, fs)
}

func (is *intentServer) handleGetFleet(w http.ResponseWriter, r *http.Request) {
	f, ok := is.mgr.GetFleet(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: fleet %s not found", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, f)
}

func (is *intentServer) handleInstantiate(w http.ResponseWriter, r *http.Request) {
	var body InstantiateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return
	}
	policy, err := batchPolicyFromString(body.Policy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	regions := make([]intent.Region, 0, len(body.Regions))
	for _, rn := range body.Regions {
		region, err := intent.ParseRegion(rn)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		regions = append(regions, region)
	}
	run := func() (intent.Fleet, error) {
		return is.mgr.Instantiate(body.Template, body.Version, body.Tenants, regions, policy, nil)
	}
	idemCreate(w, r, is.fleetIdem, run)
}

func (is *intentServer) handleListRollouts(w http.ResponseWriter, r *http.Request) {
	rs := is.mgr.Rollouts()
	if rs == nil {
		rs = []intent.Rollout{}
	}
	writeJSON(w, http.StatusOK, rs)
}

func (is *intentServer) handleGetRollout(w http.ResponseWriter, r *http.Request) {
	ro, ok := is.mgr.GetRollout(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: rollout %s not found", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, ro)
}

func (is *intentServer) handleStartRollout(w http.ResponseWriter, r *http.Request) {
	var body RolloutBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return
	}
	run := func() (intent.Rollout, error) {
		return is.mgr.StartRollout(intent.RolloutConfig{
			Fleet:          body.Fleet,
			ToVersion:      body.ToVersion,
			CanaryFraction: body.CanaryFraction,
			Window:         time.Duration(body.WindowSeconds * float64(time.Second)),
			MaxViolations:  body.MaxViolations,
		})
	}
	idemCreate(w, r, is.rolloutIdem, run)
}

// idemCreate runs a creating action under the Idempotency-Key contract: no
// key = plain create; with a key the first request acts, duplicates replay
// the cached outcome with Idempotency-Replay: true, and failures are
// dropped so retries re-attempt.
func idemCreate[T any](w http.ResponseWriter, r *http.Request, st *idemStore[T], run func() (T, error)) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		out, err := run()
		if err != nil {
			writeErr(w, statusForIntentErr(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, out)
		return
	}
	e := st.entry(key)
	fresh := false
	e.once.Do(func() {
		fresh = true
		out, err := run()
		if err != nil {
			e.err = err
			st.drop(key)
			return
		}
		e.snap = out
		e.status = http.StatusCreated
		st.complete(key)
	})
	if e.err != nil {
		writeErr(w, statusForIntentErr(e.err), e.err)
		return
	}
	if !fresh {
		w.Header().Set("Idempotency-Replay", "true")
	}
	writeJSON(w, e.status, e.snap)
}

// statusForIntentErr maps intent-plane errors onto the envelope statuses:
// unknown objects are 404, everything else the caller's fault is 400.
func statusForIntentErr(err error) int {
	if strings.Contains(err.Error(), "not found") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// handleDryRunRaw serves POST /api/v2/dryrun: the raw-request dry-run that
// needs no template — the same body as slice submission, answered with the
// feasibility report and nothing reserved. Registered unconditionally in
// NewServer (it only needs the orchestrator).
func (s *Server) handleDryRunRaw(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSubmitBody(w, r)
	if !ok {
		return
	}
	rep, err := s.orch.DryRun(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
