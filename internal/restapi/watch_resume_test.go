package restapi

// Regression tests for the SSE ?since= resume edge cases: a resume token
// beyond the stream head and a token lapped by the bounded replay ring must
// both yield one deterministic resync marker — never a silent empty stream,
// never duplicate or skipped events — and WatchEvents must treat the marker
// as authoritative repositioning across reconnects.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// resumeEnv builds a server over an orchestrator with a tiny replay ring
// (8 events) so a test can lap it with a handful of publishes. Events are
// published straight onto the bus — the lifecycle machinery is not
// involved; the resume contract is purely the bus's.
func resumeEnv(t *testing.T) (*Client, *core.EventBus) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{EventBuffer: 8}, tb, s, monitor.NewStore(16))
	orch.Start()
	srv := httptest.NewServer(NewServer(orch))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), orch.Events()
}

func publishN(bus *core.EventBus, n int) {
	for i := 0; i < n; i++ {
		bus.Publish(core.Event{Type: "test-ev", Time: time.Unix(int64(i), 0)})
	}
}

// resumeFrame is one expected frame of a resume stream.
type resumeFrame struct {
	seq    int64
	resync bool
}

func TestSSEResumeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// prepublish fills the bus before the subscription.
		prepublish int
		since      int64
		// livePublish publishes one more event from inside the callback on
		// the first frame — deterministic "new event after subscribe"
		// without sleeping.
		livePublish bool
		want        []resumeFrame
	}{
		{
			// Token ahead of a non-empty stream (e.g. minted by a
			// longer-lived previous daemon): one resync at the current head,
			// then live events — nothing duplicated, nothing silently
			// withheld.
			name:        "since-beyond-head",
			prepublish:  5,
			since:       50,
			livePublish: true,
			want:        []resumeFrame{{5, true}, {6, false}},
		},
		{
			// Token ahead of a brand-new, still-empty stream: the resync
			// must still arrive immediately (at seq 0), not hang silently,
			// and the first real event must then be seen exactly once.
			name:        "since-beyond-empty-stream",
			prepublish:  0,
			since:       50,
			livePublish: true,
			want:        []resumeFrame{{0, true}, {1, false}},
		},
		{
			// Token far past the replay ring (ring=8, head=20, oldest
			// retained=13): one resync at oldest-1 acknowledging the loss,
			// then every retained event in order — no gaps, no duplicates,
			// no silent empty stream.
			name:        "since-lapped-past-ring",
			prepublish:  20,
			since:       2,
			livePublish: true,
			want: []resumeFrame{
				{12, true},
				{13, false}, {14, false}, {15, false}, {16, false},
				{17, false}, {18, false}, {19, false}, {20, false},
				{21, false}, // the live publish
			},
		},
		{
			// Normal resume: token within the ring replays the tail
			// gaplessly with no resync marker.
			name:       "since-within-ring",
			prepublish: 6,
			since:      5,
			want:       []resumeFrame{{6, false}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, bus := resumeEnv(t)
			publishN(bus, tc.prepublish)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			var got []core.Event
			published := false
			_, err := c.StreamEvents(ctx, WatchParams{Since: tc.since}, func(ev core.Event) error {
				got = append(got, ev)
				if tc.livePublish && !published {
					published = true
					bus.Publish(core.Event{Type: "test-ev", Time: time.Unix(99, 0)})
				}
				if len(got) >= len(tc.want) {
					return ErrStopWatch
				}
				return nil
			})
			if err != nil {
				t.Fatalf("stream: %v (got %d/%d frames: %+v)", err, len(got), len(tc.want), got)
			}
			for i, want := range tc.want {
				ev := got[i]
				isResync := ev.Type == core.EventResync
				if ev.Seq != want.seq || isResync != want.resync {
					t.Errorf("frame %d = {seq %d, type %s}, want {seq %d, resync %v}",
						i, ev.Seq, ev.Type, want.seq, want.resync)
				}
			}
			// No duplicate deliveries anywhere in the stream.
			seen := make(map[int64]int)
			for _, ev := range got {
				if ev.Type == core.EventResync {
					continue
				}
				if seen[ev.Seq]++; seen[ev.Seq] > 1 {
					t.Errorf("event seq %d delivered %d times", ev.Seq, seen[ev.Seq])
				}
			}
		})
	}
}

// scriptedSSE serves a fixed script of SSE frames per connection, closes
// the connection after the script, and records each connection's ?since= —
// the harness for the WatchEvents reconnect contract, where the server
// side must be exactly controllable.
type scriptedSSE struct {
	mu     sync.Mutex
	sinces []string
	// scripts[i] is the frame list for connection i (the last script
	// repeats for any further connections).
	scripts [][]core.Event
	conns   int
}

func (h *scriptedSSE) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	i := h.conns
	h.conns++
	h.sinces = append(h.sinces, r.URL.Query().Get("since"))
	script := h.scripts[min(i, len(h.scripts)-1)]
	h.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	for _, ev := range script {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		fl.Flush()
	}
	// Returning closes the connection — WatchEvents must reconnect.
}

// TestWatchEventsRepositionsAfterResync pins the reconnect regression: a
// client holding a stale token (since=50) against a young stream gets a
// resync at seq 0 and the connection drops. The reconnect MUST carry the
// resync position (live tail), not re-send the stale token — which would
// re-deliver the resync forever and silently skip every event until the
// young stream outgrew 50.
func TestWatchEventsRepositionsAfterResync(t *testing.T) {
	h := &scriptedSSE{scripts: [][]core.Event{
		// Connection 1: just the resync-at-0 marker, then drop.
		{{Seq: 0, Type: core.EventResync, Detail: "ahead of stream"}},
		// Connection 2: the young stream's first events.
		{{Seq: 1, Type: "test-ev"}, {Seq: 2, Type: "test-ev"}, {Seq: 3, Type: "test-ev"}},
	}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var got []core.Event
	err := NewClient(srv.URL).WatchEvents(ctx, WatchParams{Since: 50}, func(ev core.Event) error {
		got = append(got, ev)
		if len(got) >= 4 {
			return ErrStopWatch
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v (got %+v)", err, got)
	}

	h.mu.Lock()
	sinces := append([]string(nil), h.sinces...)
	h.mu.Unlock()
	if len(sinces) < 2 {
		t.Fatalf("only %d connections", len(sinces))
	}
	if sinces[0] != "50" {
		t.Errorf("connection 1 since=%q, want the caller's token 50", sinces[0])
	}
	// The regression: before the fix the reconnect re-sent since=50.
	if sinces[1] == "50" {
		t.Errorf("connection 2 re-sent the stale token since=50 — resync position was discarded")
	}
	if sinces[1] != "" {
		t.Errorf("connection 2 since=%q, want live tail (no since param) after resync at 0", sinces[1])
	}

	wantTypes := []core.EventType{core.EventResync, "test-ev", "test-ev", "test-ev"}
	if len(got) != len(wantTypes) {
		t.Fatalf("observed %d frames %+v, want %d", len(got), got, len(wantTypes))
	}
	for i, w := range wantTypes {
		if got[i].Type != w {
			t.Errorf("frame %d type %s, want %s", i, got[i].Type, w)
		}
	}
	// Exactly one resync: duplicates would mean the client looped on the
	// stale token.
	n := 0
	for _, ev := range got {
		if ev.Type == core.EventResync {
			n++
		}
	}
	if n != 1 {
		t.Errorf("saw %d resync markers, want exactly 1", n)
	}
}

// TestWatchEventsResumesFromMidStreamResync covers the lapped variant at
// the WatchEvents layer: a resync at oldest-1 followed by a drop must make
// the reconnect resume from the marker's sequence, not the pre-lap token.
func TestWatchEventsResumesFromMidStreamResync(t *testing.T) {
	h := &scriptedSSE{scripts: [][]core.Event{
		{{Seq: 12, Type: core.EventResync, Detail: "lapped"}},
		{{Seq: 13, Type: "test-ev"}, {Seq: 14, Type: "test-ev"}},
	}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var got []core.Event
	err := NewClient(srv.URL).WatchEvents(ctx, WatchParams{Since: 2}, func(ev core.Event) error {
		got = append(got, ev)
		if len(got) >= 3 {
			return ErrStopWatch
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v (got %+v)", err, got)
	}
	h.mu.Lock()
	sinces := append([]string(nil), h.sinces...)
	h.mu.Unlock()
	if len(sinces) < 2 {
		t.Fatalf("only %d connections", len(sinces))
	}
	if sinces[0] != "2" || sinces[1] != "12" {
		t.Errorf("connection sinces = %v, want [2 12]", sinces)
	}
}
