package restapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/slice"
	"repro/internal/transport"
)

// Client is the typed HTTP client for Server, used by cmd/slicectl and any
// external tooling.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes the server's error envelope.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("restapi: server returned %d: %s", e.Status, e.Msg)
}

// do performs a request and decodes the JSON response into out (unless nil).
func (c *Client) do(method, path string, in, out any) error {
	return c.doHeaders(method, path, nil, in, out)
}

// doHeaders is do with extra request headers (e.g. Idempotency-Key).
func (c *Client) doHeaders(method, path string, hdr http.Header, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("restapi: encode request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			eb.Error = resp.Status
		}
		return &apiError{Status: resp.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks /healthz.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// SubmitSlice posts a slice request and returns the resulting snapshot
// (state "installing" or "rejected" with the reason filled in).
func (c *Client) SubmitSlice(body SliceRequestBody) (slice.Snapshot, error) {
	var snap slice.Snapshot
	err := c.do(http.MethodPost, "/api/v1/slices", body, &snap)
	return snap, err
}

// ListSlices returns all slice snapshots.
func (c *Client) ListSlices() ([]slice.Snapshot, error) {
	var out []slice.Snapshot
	err := c.do(http.MethodGet, "/api/v1/slices", nil, &out)
	return out, err
}

// GetSlice fetches one slice.
func (c *Client) GetSlice(id slice.ID) (slice.Snapshot, error) {
	var snap slice.Snapshot
	err := c.do(http.MethodGet, "/api/v1/slices/"+url.PathEscape(string(id)), nil, &snap)
	return snap, err
}

// DeleteSlice tears a slice down.
func (c *Client) DeleteSlice(id slice.ID) error {
	return c.do(http.MethodDelete, "/api/v1/slices/"+url.PathEscape(string(id)), nil, nil)
}

// RecordDemand feeds a live demand sample for a slice.
func (c *Client) RecordDemand(id slice.ID, mbps float64) error {
	return c.do(http.MethodPost, "/api/v1/slices/"+url.PathEscape(string(id))+"/demand", DemandBody{Mbps: mbps}, nil)
}

// Gain fetches the gains-vs-penalties report.
func (c *Client) Gain() (core.GainReport, error) {
	var g core.GainReport
	err := c.do(http.MethodGet, "/api/v1/gain", nil, &g)
	return g, err
}

// LastEpoch fetches the snapshot published by the most recent control epoch
// (GET /api/v2/epoch). Errors with a 404 envelope until the first epoch
// completes.
func (c *Client) LastEpoch() (core.EpochSnapshot, error) {
	var snap core.EpochSnapshot
	err := c.do(http.MethodGet, "/api/v2/epoch", nil, &snap)
	return snap, err
}

// Metrics fetches the latest value of every series.
func (c *Client) Metrics() (map[string]float64, error) {
	var out map[string]float64
	err := c.do(http.MethodGet, "/api/v1/metrics", nil, &out)
	return out, err
}

// MetricSeries fetches one series (window = number of most recent samples,
// 0 for all stored).
func (c *Client) MetricSeries(name string, window int) (SeriesResponse, error) {
	path := "/api/v1/metrics/" + name
	if window > 0 {
		path += fmt.Sprintf("?window=%d", window)
	}
	var out SeriesResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Topology fetches the transport link table.
func (c *Client) Topology() ([]transport.LinkSnapshot, error) {
	var out []transport.LinkSnapshot
	err := c.do(http.MethodGet, "/api/v1/topology", nil, &out)
	return out, err
}

func linkPath(from, to, op string) string {
	return "/api/v1/links/" + url.PathEscape(from) + "/" + url.PathEscape(to) + "/" + op
}

// FailLink takes the directed link down; the orchestrator re-routes or
// drops the affected slices and reports the outcome.
func (c *Client) FailLink(from, to string) (core.RestorationReport, error) {
	var rep core.RestorationReport
	err := c.do(http.MethodPost, linkPath(from, to, "fail"), struct{}{}, &rep)
	return rep, err
}

// RestoreLink brings the directed link back up.
func (c *Client) RestoreLink(from, to string) error {
	return c.do(http.MethodPost, linkPath(from, to, "restore"), struct{}{}, nil)
}

// DegradeLink rescales the directed link's capacity (rain-fade injection);
// oversubscribed slices are re-routed or shrunk.
func (c *Client) DegradeLink(from, to string, capacityMbps float64) (core.RestorationReport, error) {
	var rep core.RestorationReport
	err := c.do(http.MethodPost, linkPath(from, to, "degrade"), LinkOpBody{CapacityMbps: capacityMbps}, &rep)
	return rep, err
}

// ListQuery filters and paginates ListSlicesV2; the zero value lists
// everything in one page.
type ListQuery struct {
	State      string
	Tenant     string
	RejectCode slice.RejectCode
	Limit      int
	PageToken  string
}

func (q ListQuery) values() url.Values {
	v := url.Values{}
	if q.State != "" {
		v.Set("state", q.State)
	}
	if q.Tenant != "" {
		v.Set("tenant", q.Tenant)
	}
	if q.RejectCode != "" {
		v.Set("reject_code", string(q.RejectCode))
	}
	if q.Limit > 0 {
		v.Set("limit", fmt.Sprint(q.Limit))
	}
	if q.PageToken != "" {
		v.Set("page_token", q.PageToken)
	}
	return v
}

// ListSlicesV2 fetches one filtered page of slice snapshots from
// GET /api/v2/slices; continue with NextPageToken.
func (c *Client) ListSlicesV2(q ListQuery) (core.ListPage, error) {
	path := "/api/v2/slices"
	if v := q.values(); len(v) > 0 {
		path += "?" + v.Encode()
	}
	var page core.ListPage
	err := c.do(http.MethodGet, path, nil, &page)
	return page, err
}

// SubmitSliceV2 posts a slice request through /api/v2/slices. A non-empty
// idempotencyKey deduplicates retries: resubmitting with the same key
// returns the same slice instead of creating another.
func (c *Client) SubmitSliceV2(body SliceRequestBody, idempotencyKey string) (slice.Snapshot, error) {
	var hdr http.Header
	if idempotencyKey != "" {
		hdr = http.Header{"Idempotency-Key": []string{idempotencyKey}}
	}
	var snap slice.Snapshot
	err := c.doHeaders(http.MethodPost, "/api/v2/slices", hdr, body, &snap)
	return snap, err
}

// GetSliceV2 fetches one slice through /api/v2/.
func (c *Client) GetSliceV2(id slice.ID) (slice.Snapshot, error) {
	var snap slice.Snapshot
	err := c.do(http.MethodGet, "/api/v2/slices/"+url.PathEscape(string(id)), nil, &snap)
	return snap, err
}

// DeleteSliceV2 tears a slice down through /api/v2/.
func (c *Client) DeleteSliceV2(id slice.ID) error {
	return c.do(http.MethodDelete, "/api/v2/slices/"+url.PathEscape(string(id)), nil, nil)
}

// --- intent plane (templates / fleets / rollouts) ---

// templatePath builds the /api/v2/templates/{name}/{version} path.
func templatePath(name string, version int, suffix string) string {
	return fmt.Sprintf("/api/v2/templates/%s/%d%s", url.PathEscape(name), version, suffix)
}

// CreateTemplate registers a new draft template version.
func (c *Client) CreateTemplate(body TemplateBody) (intent.Template, error) {
	var t intent.Template
	err := c.do(http.MethodPost, "/api/v2/templates", body, &t)
	return t, err
}

// ListTemplates fetches every template version.
func (c *Client) ListTemplates() ([]intent.Template, error) {
	var ts []intent.Template
	err := c.do(http.MethodGet, "/api/v2/templates", nil, &ts)
	return ts, err
}

// GetTemplate fetches one template version.
func (c *Client) GetTemplate(name string, version int) (intent.Template, error) {
	var t intent.Template
	err := c.do(http.MethodGet, templatePath(name, version, ""), nil, &t)
	return t, err
}

// UpdateTemplate replaces a draft version in place.
func (c *Client) UpdateTemplate(name string, version int, body TemplateBody) (intent.Template, error) {
	var t intent.Template
	err := c.do(http.MethodPut, templatePath(name, version, ""), body, &t)
	return t, err
}

// PublishTemplate promotes a draft through the guardrail chain.
func (c *Client) PublishTemplate(name string, version int) (intent.Template, error) {
	var t intent.Template
	err := c.do(http.MethodPost, templatePath(name, version, "/publish"), nil, &t)
	return t, err
}

// DryRunTemplate runs the server-side feasibility chain for one (tenant,
// region) cell of the template without reserving anything.
func (c *Client) DryRunTemplate(name string, version int, tenant, region string) (core.DryRunReport, error) {
	var rep core.DryRunReport
	err := c.do(http.MethodPost, templatePath(name, version, "/dryrun"), DryRunBody{Tenant: tenant, Region: region}, &rep)
	return rep, err
}

// DryRunSlice runs the feasibility chain for a raw slice request.
func (c *Client) DryRunSlice(body SliceRequestBody) (core.DryRunReport, error) {
	var rep core.DryRunReport
	err := c.do(http.MethodPost, "/api/v2/dryrun", body, &rep)
	return rep, err
}

// Instantiate bulk-creates a fleet from a published template. A non-empty
// idempotencyKey deduplicates retries.
func (c *Client) Instantiate(body InstantiateBody, idempotencyKey string) (intent.Fleet, error) {
	var hdr http.Header
	if idempotencyKey != "" {
		hdr = http.Header{"Idempotency-Key": []string{idempotencyKey}}
	}
	var f intent.Fleet
	err := c.doHeaders(http.MethodPost, "/api/v2/fleets", hdr, body, &f)
	return f, err
}

// ListFleets fetches every fleet.
func (c *Client) ListFleets() ([]intent.Fleet, error) {
	var fs []intent.Fleet
	err := c.do(http.MethodGet, "/api/v2/fleets", nil, &fs)
	return fs, err
}

// GetFleet fetches one fleet.
func (c *Client) GetFleet(id string) (intent.Fleet, error) {
	var f intent.Fleet
	err := c.do(http.MethodGet, "/api/v2/fleets/"+url.PathEscape(id), nil, &f)
	return f, err
}

// StartRollout begins a canary rollout. A non-empty idempotencyKey
// deduplicates retries.
func (c *Client) StartRollout(body RolloutBody, idempotencyKey string) (intent.Rollout, error) {
	var hdr http.Header
	if idempotencyKey != "" {
		hdr = http.Header{"Idempotency-Key": []string{idempotencyKey}}
	}
	var ro intent.Rollout
	err := c.doHeaders(http.MethodPost, "/api/v2/rollouts", hdr, body, &ro)
	return ro, err
}

// ListRollouts fetches every rollout.
func (c *Client) ListRollouts() ([]intent.Rollout, error) {
	var rs []intent.Rollout
	err := c.do(http.MethodGet, "/api/v2/rollouts", nil, &rs)
	return rs, err
}

// GetRollout fetches one rollout.
func (c *Client) GetRollout(id string) (intent.Rollout, error) {
	var ro intent.Rollout
	err := c.do(http.MethodGet, "/api/v2/rollouts/"+url.PathEscape(id), nil, &ro)
	return ro, err
}
