package restapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// apiEnv spins up a server over a simulator-driven orchestrator; returns the
// client and the simulator so tests can advance virtual time.
func apiEnv(t *testing.T) (*Client, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	orch.Start()
	srv := httptest.NewServer(NewServer(orch))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), s
}

func validBody() SliceRequestBody {
	return SliceRequestBody{
		Tenant:          "acme",
		DurationSeconds: 3600,
		MaxLatencyMs:    20,
		ThroughputMbps:  30,
		PriceEUR:        100,
		PenaltyEUR:      2,
		Class:           "e-health",
	}
}

func TestHealth(t *testing.T) {
	c, _ := apiEnv(t)
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAndGetSlice(t *testing.T) {
	c, s := apiEnv(t)
	snap, err := c.SubmitSlice(validBody())
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != "installing" {
		t.Fatalf("state %q reason %q", snap.State, snap.Reason)
	}
	if snap.Class != "e-health" || snap.Tenant != "acme" {
		t.Fatalf("snapshot %+v", snap)
	}
	s.RunFor(15 * time.Second)
	got, err := c.GetSlice(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "active" {
		t.Fatalf("state after install %q", got.State)
	}
	if got.Allocation.DataCenter == "" || got.Allocation.PLMN.IsZero() {
		t.Fatalf("allocation %+v", got.Allocation)
	}
}

func TestSubmitRejectedReportedInBand(t *testing.T) {
	c, _ := apiEnv(t)
	body := validBody()
	body.MaxLatencyMs = 0.01 // unmeetable
	snap, err := c.SubmitSlice(body)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != "rejected" || !strings.Contains(snap.Reason, "latency") {
		t.Fatalf("state %q reason %q", snap.State, snap.Reason)
	}
	// The typed cause code crosses the wire with the snapshot.
	if snap.RejectCode != slice.RejectLatencyUnmeetable {
		t.Fatalf("reject_code %q, want %q", snap.RejectCode, slice.RejectLatencyUnmeetable)
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	c, _ := apiEnv(t)
	body := validBody()
	body.ThroughputMbps = -1
	if _, err := c.SubmitSlice(body); err == nil {
		t.Fatal("invalid throughput accepted")
	}
	body = validBody()
	body.Class = "quantum"
	if _, err := c.SubmitSlice(body); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestListSlices(t *testing.T) {
	c, _ := apiEnv(t)
	c.SubmitSlice(validBody())
	c.SubmitSlice(validBody())
	ls, err := c.ListSlices()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 {
		t.Fatalf("%d slices", len(ls))
	}
}

func TestDeleteSlice(t *testing.T) {
	c, s := apiEnv(t)
	snap, _ := c.SubmitSlice(validBody())
	s.RunFor(15 * time.Second)
	if err := c.DeleteSlice(snap.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := c.GetSlice(snap.ID)
	if got.State != "terminated" {
		t.Fatalf("state %q", got.State)
	}
	if err := c.DeleteSlice(snap.ID); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := c.DeleteSlice("ghost"); err == nil {
		t.Fatal("ghost delete accepted")
	}
}

func TestGetUnknownSlice404(t *testing.T) {
	c, _ := apiEnv(t)
	_, err := c.GetSlice("nope")
	if err == nil {
		t.Fatal("expected 404")
	}
	ae, ok := err.(*apiError)
	if !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("error %v", err)
	}
}

func TestDemandFeed(t *testing.T) {
	c, s := apiEnv(t)
	snap, _ := c.SubmitSlice(validBody())
	s.RunFor(15 * time.Second)
	if err := c.RecordDemand(snap.ID, 12.5); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Minute) // one control epoch
	got, _ := c.GetSlice(snap.ID)
	if got.Accounting.DemandMbps != 12.5 {
		t.Fatalf("demand %v", got.Accounting.DemandMbps)
	}
	if err := c.RecordDemand("ghost", 1); err == nil {
		t.Fatal("ghost demand accepted")
	}
}

func TestGainEndpoint(t *testing.T) {
	c, s := apiEnv(t)
	c.SubmitSlice(validBody())
	s.RunFor(15 * time.Second)
	g, err := c.Gain()
	if err != nil {
		t.Fatal(err)
	}
	if g.Admitted != 1 || g.CapacityMbps <= 0 {
		t.Fatalf("gain %+v", g)
	}
}

func TestMetricsEndpoints(t *testing.T) {
	c, s := apiEnv(t)
	snap, _ := c.SubmitSlice(validBody())
	s.RunFor(15 * time.Second)
	c.RecordDemand(snap.ID, 10)
	s.RunFor(5 * time.Minute)
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["orchestrator/multiplexing_gain"]; !ok {
		t.Fatalf("metrics %v", m)
	}
	series, err := c.MetricSeries("orchestrator/multiplexing_gain", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Samples) == 0 || len(series.Samples) > 3 {
		t.Fatalf("series window %d", len(series.Samples))
	}
	if series.Stats.N != len(series.Samples) {
		t.Fatalf("stats %+v", series.Stats)
	}
}

func TestMetricSeriesBadWindow(t *testing.T) {
	c, _ := apiEnv(t)
	resp, err := http.Get(c.BaseURL + "/api/v1/metrics/foo?window=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestTopologyEndpoint(t *testing.T) {
	c, _ := apiEnv(t)
	links, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(links) == 0 {
		t.Fatal("no links")
	}
	seenTypes := map[string]bool{}
	for _, l := range links {
		seenTypes[l.Type] = true
	}
	if !seenTypes["mmWave"] || !seenTypes["µWave"] || !seenTypes["wired"] {
		t.Fatalf("link types %v", seenTypes)
	}
}

func TestInfrastructureEndpoints(t *testing.T) {
	c, s := apiEnv(t)
	c.SubmitSlice(validBody())
	s.RunFor(15 * time.Second)
	for _, path := range []string{"/api/v1/enbs", "/api/v1/datacenters", "/api/v1/epcs"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestMethodNotAllowed(t *testing.T) {
	c, _ := apiEnv(t)
	req, _ := http.NewRequest(http.MethodPut, c.BaseURL+"/api/v1/slices", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestBadJSONRejected(t *testing.T) {
	c, _ := apiEnv(t)
	resp, err := http.Post(c.BaseURL+"/api/v1/slices", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestClassParsing(t *testing.T) {
	for _, s := range []string{"", "eMBB", "automotive", "e-health", "ehealth", "mMTC"} {
		if _, err := classFromString(s); err != nil {
			t.Fatalf("class %q rejected: %v", s, err)
		}
	}
	if _, err := classFromString("warp"); err == nil {
		t.Fatal("bad class accepted")
	}
}
