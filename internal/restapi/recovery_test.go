package restapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
	"repro/internal/wal"
)

// TestV2RecoveryStatus checks GET /api/v2/recovery on a daemon without
// persistence (enabled=false) and on one rebuilt by crash recovery.
func TestV2RecoveryStatus(t *testing.T) {
	c, _ := apiEnv(t)
	resp, err := http.Get(c.BaseURL + "/api/v2/recovery")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st core.PersistStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled || st.Recovered {
		t.Fatalf("ephemeral daemon reports %+v", st)
	}

	resp, err = http.Post(c.BaseURL+"/api/v2/recovery", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
}

func TestV2RecoveryStatusAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Overbook: true, Risk: 0.9, Persist: core.WALSink(w)}
	orch := core.New(cfg, tb, s, monitor.NewStore(256))
	orch.Shutdown()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := sim.NewSimulator(2)
	tb2, err := testbed.New(testbed.Default(), s2.Rand())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Persist = nil
	orch2, w2, err := core.Recover(cfg, tb2, s2, monitor.NewStore(256), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	srv := httptest.NewServer(NewServer(orch2))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v2/recovery")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st core.PersistStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || !st.Recovered || st.Recovery == nil {
		t.Fatalf("recovered daemon reports %+v", st)
	}
	if !st.Recovery.CleanShutdown {
		t.Fatalf("recovery report misses the clean shutdown: %+v", st.Recovery)
	}
}

// TestV2RecoveryDurabilityCounters checks that GET /api/v2/recovery exposes
// the group-commit telemetry — durable_seq, fsyncs, commit_ops — on a live
// durable daemon, and that the counters are coherent: every committed
// operation is covered by a completed fsync, and the durable horizon has
// caught up with the appended log.
func TestV2RecoveryDurabilityCounters(t *testing.T) {
	dir := t.TempDir()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 8, Persist: core.WALSink(w)}
	orch := core.New(cfg, tb, s, monitor.NewStore(256))
	defer w.Close()
	for i := 0; i < 3; i++ {
		sl, err := orch.Submit(
			slice.Request{Tenant: "tenant", SLA: slice.SLA{
				ThroughputMbps: 10, MaxLatencyMs: 50, Duration: time.Hour, PriceEUR: 10,
			}},
			traffic.NewConstant(5, 0, nil))
		if err != nil {
			t.Fatal(err)
		}
		if sl.State() == slice.StateRejected {
			t.Fatalf("slice %d rejected: %s", i, sl.Reason())
		}
	}

	srv := httptest.NewServer(NewServer(orch))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v2/recovery")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Decode into a map: the assertion is about the wire field names the
	// dashboard and operators script against, not the Go struct.
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"durable_seq", "fsyncs", "commit_ops", "last_seq"} {
		if _, ok := raw[field]; !ok {
			t.Fatalf("recovery status misses %q: %v", field, raw)
		}
	}
	fsyncs, commitOps := raw["fsyncs"].(float64), raw["commit_ops"].(float64)
	durable, last := raw["durable_seq"].(float64), raw["last_seq"].(float64)
	if fsyncs < 1 || commitOps < 3 {
		t.Fatalf("counters not advancing: fsyncs=%v commit_ops=%v", fsyncs, commitOps)
	}
	if fsyncs > commitOps {
		t.Fatalf("more fsyncs (%v) than committed operations (%v)", fsyncs, commitOps)
	}
	if durable == 0 || durable != last {
		t.Fatalf("durable horizon %v lags appended log %v after quiescence", durable, last)
	}
}
