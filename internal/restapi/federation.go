package restapi

// The /api/v2/federation/ surface: the HTTP front of one federation tier
// (DESIGN.md §11). FederationServer is the multi-cluster counterpart of
// Server — same JSON envelopes, same error mapping, same Idempotency-Key
// dedup on submission — serving the cluster registry, federated span
// submission/teardown, the placement dry-run (explain), the aggregated
// member event stream and the federation-wide gain report.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/slice"
)

// FedSliceRequestBody is the JSON payload of POST /api/v2/federation/slices
// and /placement/explain: the dashboard's slice form plus the federation
// knobs (an optional cluster pin and the mean offered demand).
type FedSliceRequestBody struct {
	SliceRequestBody
	// Cluster optionally pins the whole slice to one named member.
	Cluster string `json:"cluster,omitempty"`
	// MeanDemandMbps is the mean offered load driven through the span's legs
	// (default 0.6 × ThroughputMbps).
	MeanDemandMbps float64 `json:"mean_demand_mbps,omitempty"`
}

// FedRequest converts the body into the federation request type.
func (b FedSliceRequestBody) FedRequest() (federation.Request, error) {
	req, err := b.SliceRequestBody.Request()
	if err != nil {
		return federation.Request{}, err
	}
	return federation.Request{
		Tenant:         req.Tenant,
		SLA:            req.SLA,
		Cluster:        b.Cluster,
		MeanDemandMbps: b.MeanDemandMbps,
	}, nil
}

// FederationServer is the HTTP front of one federation tier.
type FederationServer struct {
	fed  *federation.Federation
	mux  *http.ServeMux
	idem *idemStore[federation.SpanStatus]
	// submit performs the span submission; a seam so tests can inject
	// internal failures (defaults to fed.Submit).
	submit func(federation.Request) (federation.SpanStatus, error)
}

// NewFederationServer builds the federation API server.
func NewFederationServer(fed *federation.Federation) *FederationServer {
	s := &FederationServer{
		fed:  fed,
		mux:  http.NewServeMux(),
		idem: newIdemStore[federation.SpanStatus](1024),
	}
	s.submit = fed.Submit

	s.mux.HandleFunc("/healthz", s.handleHealth)

	// Method patterns with bare-path JSON-405 fallbacks, exactly like the
	// single-cluster surface. The /slices/ subtree fallback catches paths the
	// patterns reject (empty ID, extra segments); the /federation/ root
	// fallback answers unknown endpoints with the JSON 404 envelope.
	s.mux.HandleFunc("GET /api/v2/federation/clusters", s.handleClusters)
	s.mux.HandleFunc("/api/v2/federation/clusters", methodNotAllowed("restapi: use GET"))
	s.mux.HandleFunc("GET /api/v2/federation/slices", s.handleListSpans)
	s.mux.HandleFunc("POST /api/v2/federation/slices", s.handleSubmitSpan)
	s.mux.HandleFunc("/api/v2/federation/slices", methodNotAllowed("restapi: use GET or POST"))
	s.mux.HandleFunc("GET /api/v2/federation/slices/{id}", s.handleGetSpan)
	s.mux.HandleFunc("DELETE /api/v2/federation/slices/{id}", s.handleDeleteSpan)
	s.mux.HandleFunc("/api/v2/federation/slices/{id}", methodNotAllowed("restapi: use GET or DELETE"))
	s.mux.HandleFunc("/api/v2/federation/slices/", s.spansSubtreeFallback)
	s.mux.HandleFunc("POST /api/v2/federation/placement/explain", s.handleExplain)
	s.mux.HandleFunc("/api/v2/federation/placement/explain", methodNotAllowed("restapi: use POST"))
	s.mux.HandleFunc("GET /api/v2/federation/events", s.handleFedEvents)
	s.mux.HandleFunc("/api/v2/federation/events", methodNotAllowed("restapi: use GET"))
	s.mux.HandleFunc("GET /api/v2/federation/gain", s.handleFedGain)
	s.mux.HandleFunc("/api/v2/federation/gain", methodNotAllowed("restapi: use GET"))
	s.mux.HandleFunc("GET /api/v2/federation/stats", s.handleFedStats)
	s.mux.HandleFunc("/api/v2/federation/stats", methodNotAllowed("restapi: use GET"))
	s.mux.HandleFunc("/api/v2/federation/", s.handleUnknown)
	return s
}

// ServeHTTP implements http.Handler.
func (s *FederationServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *FederationServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": "federation"})
}

func (s *FederationServer) handleUnknown(w http.ResponseWriter, r *http.Request) {
	writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: unknown federation endpoint %s", r.URL.Path))
}

// handleClusters serves GET /api/v2/federation/clusters: the registry view —
// every member's location, latency, reachability and federation-tier books.
func (s *FederationServer) handleClusters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fed.ClusterInfos())
}

// handleListSpans serves GET /api/v2/federation/slices: the live spans in
// submission order.
func (s *FederationServer) handleListSpans(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fed.Spans())
}

// decodeFedBody parses and validates a federated submission, reporting any
// problem as a 400. The false return means the response is written.
func (s *FederationServer) decodeFedBody(w http.ResponseWriter, r *http.Request) (federation.Request, bool) {
	var body FedSliceRequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return federation.Request{}, false
	}
	req, err := body.FedRequest()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return federation.Request{}, false
	}
	if err := (slice.Request{Tenant: req.Tenant, SLA: req.SLA}).Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return federation.Request{}, false
	}
	return req, true
}

// spanStatusCode maps a span outcome to the HTTP status: 202 for an
// installed span (legs are converging on the members), 200 for an in-band
// business rejection — the same mapping the single-cluster submit uses.
func spanStatusCode(st federation.SpanStatus) int {
	if st.State == "rejected" {
		return http.StatusOK
	}
	return http.StatusAccepted
}

// handleSubmitSpan serves POST /api/v2/federation/slices: validation
// failures are the tenant's fault (400), placement and member rejections are
// in-band outcomes (200 with the typed cause), anything else is internal
// (500). Idempotency-Key dedup matches /api/v2/slices: the first request
// with a key submits, duplicates replay its outcome with
// Idempotency-Replay: true; failed submissions are not cached.
func (s *FederationServer) handleSubmitSpan(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeFedBody(w, r)
	if !ok {
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		st, err := s.submit(req)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, spanStatusCode(st), st)
		return
	}
	e := s.idem.entry(key)
	fresh := false
	e.once.Do(func() {
		fresh = true
		st, err := s.submit(req)
		if err != nil {
			e.err = err
			s.idem.drop(key)
			return
		}
		e.id = st.ID
		e.status = spanStatusCode(st)
		e.snap = st
		s.idem.complete(key)
	})
	if e.err != nil {
		writeErr(w, http.StatusInternalServerError, e.err)
		return
	}
	st := e.snap
	if cur, ok := s.fed.Get(e.id); ok {
		st = cur // replay with the span's current state
	}
	if !fresh {
		w.Header().Set("Idempotency-Replay", "true")
	}
	writeJSON(w, e.status, st)
}

// handleGetSpan serves GET /api/v2/federation/slices/{id}.
func (s *FederationServer) handleGetSpan(w http.ResponseWriter, r *http.Request) {
	s.getSpan(w, slice.ID(r.PathValue("id")))
}

func (s *FederationServer) getSpan(w http.ResponseWriter, id slice.ID) {
	st, ok := s.fed.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: span %s not found", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleDeleteSpan serves DELETE /api/v2/federation/slices/{id}: the span
// transaction aborts in reverse order, releasing every member leg.
func (s *FederationServer) handleDeleteSpan(w http.ResponseWriter, r *http.Request) {
	s.deleteSpan(w, slice.ID(r.PathValue("id")))
}

func (s *FederationServer) deleteSpan(w http.ResponseWriter, id slice.ID) {
	if err := s.fed.Delete(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "terminated"})
}

// spansSubtreeFallback answers /api/v2/federation/slices/ paths no pattern
// claims — empty ID or extra segments — with the standard parse-and-dispatch.
func (s *FederationServer) spansSubtreeFallback(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v2/federation/slices/")
	id := slice.ID(strings.SplitN(rest, "/", 2)[0])
	switch r.Method {
	case http.MethodGet:
		s.getSpan(w, id)
	case http.MethodDelete:
		s.deleteSpan(w, id)
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("restapi: use GET or DELETE"))
	}
}

// handleExplain serves POST /api/v2/federation/placement/explain: the
// placement dry-run — every candidate member's verdict plus the chosen legs
// or the typed rejection, without reserving anything. Tenant is optional
// here; only the SLA is judged.
func (s *FederationServer) handleExplain(w http.ResponseWriter, r *http.Request) {
	var body FedSliceRequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad JSON: %w", err))
		return
	}
	req, err := body.FedRequest()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ex, err := s.fed.Explain(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

// handleFedEvents serves GET /api/v2/federation/events: the members'
// retained lifecycle events merged into one cluster-tagged stream ordered by
// time. ?limit bounds the result (default 256).
func (s *FederationServer) handleFedEvents(w http.ResponseWriter, r *http.Request) {
	limit := 256
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad limit %q", v))
			return
		}
		limit = n
	}
	evs := s.fed.RecentEvents(limit)
	if evs == nil {
		evs = []federation.ClusterEvent{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// handleFedGain serves GET /api/v2/federation/gain: every member's
// gains-vs-penalties report folded into the federation-wide aggregate, plus
// the per-member reports in name order.
func (s *FederationServer) handleFedGain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, FedGainResponse{
		Aggregate: s.fed.Gain(),
		Clusters:  s.fed.ClusterGains(),
	})
}

// FedGainResponse is the payload of GET /api/v2/federation/gain.
type FedGainResponse struct {
	Aggregate core.GainReport          `json:"aggregate"`
	Clusters  []federation.ClusterGain `json:"clusters"`
}

// handleFedStats serves GET /api/v2/federation/stats: the federation-tier
// placement counters.
func (s *FederationServer) handleFedStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fed.Stats())
}
