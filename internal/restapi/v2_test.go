package restapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// jsonBody marshals v for a raw http request.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf)
}

// liveEnv spins up a server over a wall-clock orchestrator (the daemon
// configuration) and returns its client.
func liveEnv(t *testing.T, clock sim.Scheduler) *Client {
	t.Helper()
	tb, err := testbed.New(testbed.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, clock, monitor.NewStore(256))
	srv := httptest.NewServer(NewServer(orch))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL)
}

func TestV2ListFiltersAndPagination(t *testing.T) {
	c, s := apiEnv(t)
	for i := 0; i < 3; i++ {
		if _, err := c.SubmitSlice(validBody()); err != nil {
			t.Fatal(err)
		}
	}
	other := validBody()
	other.Tenant = "zeta"
	other.MaxLatencyMs = 0.01 // rejected
	if _, err := c.SubmitSlice(other); err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)

	page, err := c.ListSlicesV2(ListQuery{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Slices) != 3 || page.NextPageToken != "" {
		t.Fatalf("tenant filter: %d slices token %q", len(page.Slices), page.NextPageToken)
	}

	page, err = c.ListSlicesV2(ListQuery{State: "rejected", RejectCode: slice.RejectLatencyUnmeetable})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Slices) != 1 || page.Slices[0].Tenant != "zeta" {
		t.Fatalf("reject filter: %+v", page.Slices)
	}

	// Two pages of two.
	page, err = c.ListSlicesV2(ListQuery{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Slices) != 2 || page.NextPageToken == "" {
		t.Fatalf("page 1: %d slices token %q", len(page.Slices), page.NextPageToken)
	}
	page2, err := c.ListSlicesV2(ListQuery{Limit: 2, PageToken: page.NextPageToken})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Slices) != 2 || page2.Slices[0].ID == page.Slices[1].ID {
		t.Fatalf("page 2: %+v", page2.Slices)
	}

	// Bad query parameters are 400s.
	for _, path := range []string{"/api/v2/slices?limit=-1", "/api/v2/slices?page_token=x"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
	}
}

func TestV2SubmitIdempotency(t *testing.T) {
	c, _ := apiEnv(t)
	first, err := c.SubmitSliceV2(validBody(), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if first.State != "installing" {
		t.Fatalf("state %q", first.State)
	}
	// Same key replays the same slice; no second admission happens.
	replay, err := c.SubmitSliceV2(validBody(), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if replay.ID != first.ID {
		t.Fatalf("replay created a new slice: %s vs %s", replay.ID, first.ID)
	}
	// A different key (and no key) create new slices.
	second, err := c.SubmitSliceV2(validBody(), "key-2")
	if err != nil {
		t.Fatal(err)
	}
	third, err := c.SubmitSliceV2(validBody(), "")
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID || third.ID == first.ID || third.ID == second.ID {
		t.Fatalf("ids not unique: %s %s %s", first.ID, second.ID, third.ID)
	}
	if ls, _ := c.ListSlices(); len(ls) != 3 {
		t.Fatalf("%d slices after 4 posts (1 replayed)", len(ls))
	}
}

func TestV2SubmitIdempotentReplayHeader(t *testing.T) {
	c, _ := apiEnv(t)
	if _, err := c.SubmitSliceV2(validBody(), "key-h"); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, c.BaseURL+"/api/v2/slices", jsonBody(t, validBody()))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "key-h")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Idempotency-Replay") != "true" {
		t.Fatal("missing Idempotency-Replay header on the duplicate")
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("replay status %d, want the original 202", resp.StatusCode)
	}
}

// sseCollect consumes the client stream until n events arrived, then stops.
func sseCollect(t *testing.T, c *Client, p WatchParams, n int) []core.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out []core.Event
	_, err := c.StreamEvents(ctx, p, func(ev core.Event) error {
		out = append(out, ev)
		if len(out) >= n {
			return ErrStopWatch
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v (got %d/%d events)", err, len(out), n)
	}
	return out
}

func TestSSEStreamDeliversLifecycle(t *testing.T) {
	c, s := apiEnv(t)
	snap, err := c.SubmitSlice(validBody())
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)
	if err := c.DeleteSlice(snap.ID); err != nil {
		t.Fatal(err)
	}
	got := sseCollect(t, c, WatchParams{Since: -1}, 4)
	want := []core.EventType{core.EventSubmitted, core.EventAdmitted, core.EventInstalled, core.EventDeleted}
	for i, ev := range got {
		if ev.Type != want[i] || ev.Slice != snap.ID {
			t.Fatalf("event %d: %+v, want type %s", i, ev, want[i])
		}
	}
}

// TestSSEResumeAfterDisconnect is the acceptance criterion: kill the
// connection mid-stream, resume via ?since=, and the concatenated sequence
// must equal what an uninterrupted subscriber observes.
func TestSSEResumeAfterDisconnect(t *testing.T) {
	c, s := apiEnv(t)

	// Phase 1: generate some events, consume a prefix, then kill the
	// connection (context cancel closes the TCP stream mid-flight).
	a, err := c.SubmitSlice(validBody())
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second) // submitted, admitted, installed
	ctx1, cancel1 := context.WithCancel(context.Background())
	var part1 []core.Event
	killed := false
	_, err = c.StreamEvents(ctx1, WatchParams{Since: -1}, func(ev core.Event) error {
		if killed {
			return nil // a frame already in flight when the kill landed
		}
		part1 = append(part1, ev)
		if len(part1) == 2 {
			killed = true
			cancel1() // kill mid-stream with the server still holding events
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("stream err %v, want context.Canceled", err)
	}
	if len(part1) < 2 {
		t.Fatalf("consumed %d events before the kill", len(part1))
	}

	// Phase 2: more lifecycle activity while disconnected.
	b, err := c.SubmitSlice(validBody())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSlice(a.ID); err != nil {
		t.Fatal(err)
	}
	_ = b

	// Phase 3: resume from the last seen sequence; then compare the full
	// ordered sequence against an uninterrupted ?since=0 subscriber.
	part2 := sseCollect(t, c, WatchParams{Since: part1[len(part1)-1].Seq}, 4)
	resumed := append(part1, part2...)
	uninterrupted := sseCollect(t, c, WatchParams{Since: -1}, len(resumed))
	for i := range uninterrupted {
		if resumed[i].Seq != uninterrupted[i].Seq ||
			resumed[i].Type != uninterrupted[i].Type ||
			resumed[i].Slice != uninterrupted[i].Slice {
			t.Fatalf("resumed stream diverged at %d:\n got %+v\nwant %+v",
				i, resumed[i], uninterrupted[i])
		}
	}
	// No gaps: sequences strictly increase by 1 across the kill boundary.
	for i := 1; i < len(resumed); i++ {
		if resumed[i].Seq != resumed[i-1].Seq+1 {
			t.Fatalf("gap after kill: seq %d follows %d", resumed[i].Seq, resumed[i-1].Seq)
		}
	}
}

func TestSSEFiltersAndBadSince(t *testing.T) {
	c, s := apiEnv(t)
	if _, err := c.SubmitSlice(validBody()); err != nil {
		t.Fatal(err)
	}
	other := validBody()
	other.Tenant = "zeta"
	if _, err := c.SubmitSlice(other); err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)

	for _, ev := range sseCollect(t, c, WatchParams{Since: -1, Tenants: []string{"zeta"}}, 3) {
		if ev.Tenant != "zeta" {
			t.Fatalf("tenant filter leaked %+v", ev)
		}
	}
	for _, ev := range sseCollect(t, c, WatchParams{Since: -1, Types: []core.EventType{core.EventInstalled}}, 2) {
		if ev.Type != core.EventInstalled {
			t.Fatalf("type filter leaked %+v", ev)
		}
	}

	resp, err := http.Get(c.BaseURL + "/api/v2/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since -> %d", resp.StatusCode)
	}
}

// TestV2GetDelete drives the v2 per-slice routes.
func TestV2GetDelete(t *testing.T) {
	c, s := apiEnv(t)
	snap, err := c.SubmitSliceV2(validBody(), "")
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)
	got, err := c.GetSliceV2(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "active" {
		t.Fatalf("state %q", got.State)
	}
	if err := c.DeleteSliceV2(snap.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSliceV2(snap.ID); err == nil {
		t.Fatal("double delete accepted")
	}
}

// TestLiveClockSSE exercises the stream against a wall-clock orchestrator
// (no simulator driving delivery), as the daemon runs it.
func TestLiveClockSSE(t *testing.T) {
	clock := sim.NewRealtimeClock()
	c := liveEnv(t, clock)
	done := make(chan []core.Event, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		var evs []core.Event
		c.WatchEvents(ctx, WatchParams{}, func(ev core.Event) error {
			evs = append(evs, ev)
			if len(evs) == 3 {
				done <- evs
				return ErrStopWatch
			}
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the subscriber attach
	snap, err := c.SubmitSliceV2(validBody(), "live-key")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSliceV2(snap.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case evs := <-done:
		want := []core.EventType{core.EventSubmitted, core.EventAdmitted, core.EventDeleted}
		for i, ev := range evs {
			if ev.Type != want[i] {
				t.Fatalf("event %d: %s, want %s", i, ev.Type, want[i])
			}
		}
	case <-ctx.Done():
		t.Fatal("live SSE events never arrived")
	}
}

func TestV2EpochSnapshot(t *testing.T) {
	c, s := apiEnv(t)

	// Before any epoch the snapshot does not exist yet: 404 envelope.
	if _, err := c.LastEpoch(); err == nil {
		t.Fatal("epoch snapshot served before the first epoch")
	}

	snap0, err := c.SubmitSlice(validBody())
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second) // install stages
	if err := c.RecordDemand(snap0.ID, 5); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * time.Minute) // several control epochs

	snap, err := c.LastEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch < 1 || snap.MeasuredSlices < 1 {
		t.Fatalf("snapshot epoch=%d measured=%d, want both >= 1", snap.Epoch, snap.MeasuredSlices)
	}
	g, err := c.Gain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gain.Epochs > g.Epochs {
		t.Fatalf("snapshot ahead of live report: %d > %d", snap.Gain.Epochs, g.Epochs)
	}
	if snap.Gain.Admitted != g.Admitted {
		t.Fatalf("snapshot admitted %d, live %d (nothing changed since the epoch)", snap.Gain.Admitted, g.Admitted)
	}
	// Method guard: the endpoint is GET-only.
	resp, err := http.Post(c.BaseURL+"/api/v2/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/v2/epoch: %d, want 405", resp.StatusCode)
	}
}
