package restapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// fedEnv spins up a federation API server over a three-member,
// simulator-driven federation; returns the client, the server (for raw
// requests) and the simulator so tests can advance virtual time.
func fedEnv(t *testing.T) (*Client, *FederationServer, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(1)
	fed := federation.New(federation.Config{Seed: 1, Audit: true}, s)
	latency := map[string]float64{"east": 2, "west": 3, "north": 5}
	for _, name := range []string{"east", "west", "north"} {
		_, err := fed.Join(federation.ClusterConfig{
			Name:      name,
			Location:  "eu-" + name,
			LatencyMs: latency[name],
			Orchestrator: core.Config{
				Overbook:  true,
				Risk:      0.9,
				PLMNLimit: 64,
				Audit:     true,
			},
			Testbed: testbed.Config{MaxPLMNs: 64, RedundantTransport: true},
		})
		if err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
	}
	fed.Start()
	fsrv := NewFederationServer(fed)
	ts := httptest.NewServer(fsrv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), fsrv, s
}

func validFedBody(mbps float64) FedSliceRequestBody {
	return FedSliceRequestBody{SliceRequestBody: SliceRequestBody{
		Tenant:          "acme",
		DurationSeconds: 7200,
		MaxLatencyMs:    50,
		ThroughputMbps:  mbps,
		PriceEUR:        2 * mbps,
		PenaltyEUR:      1,
		Class:           "eMBB",
	}}
}

// rawFed performs one raw HTTP request against the federation server.
func rawFed(t *testing.T, c *Client, method, path string, body any, hdr http.Header) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestFederation405Envelopes: every federation route answers a wrong method
// with the JSON 405 envelope, exactly like the single-cluster surface.
func TestFederation405Envelopes(t *testing.T) {
	c, _, _ := fedEnv(t)
	cases := []struct {
		method, path, want string
	}{
		{http.MethodPost, "/api/v2/federation/clusters", "restapi: use GET"},
		{http.MethodDelete, "/api/v2/federation/clusters", "restapi: use GET"},
		{http.MethodPut, "/api/v2/federation/slices", "restapi: use GET or POST"},
		{http.MethodDelete, "/api/v2/federation/slices", "restapi: use GET or POST"},
		{http.MethodPost, "/api/v2/federation/slices/f-1", "restapi: use GET or DELETE"},
		{http.MethodPut, "/api/v2/federation/slices/f-1", "restapi: use GET or DELETE"},
		{http.MethodPut, "/api/v2/federation/slices/f-1/extra", "restapi: use GET or DELETE"},
		{http.MethodGet, "/api/v2/federation/placement/explain", "restapi: use POST"},
		{http.MethodDelete, "/api/v2/federation/placement/explain", "restapi: use POST"},
		{http.MethodPost, "/api/v2/federation/events", "restapi: use GET"},
		{http.MethodPost, "/api/v2/federation/gain", "restapi: use GET"},
		{http.MethodDelete, "/api/v2/federation/stats", "restapi: use GET"},
	}
	for _, tc := range cases {
		resp := rawFed(t, c, tc.method, tc.path, nil, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: content type %q", tc.method, tc.path, ct)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Errorf("%s %s: decode envelope: %v", tc.method, tc.path, err)
			continue
		}
		if eb.Error != tc.want {
			t.Errorf("%s %s: envelope %q, want %q", tc.method, tc.path, eb.Error, tc.want)
		}
	}
}

// TestFederationUnknownEndpoint: paths under /api/v2/federation/ no pattern
// claims get the JSON 404 envelope, not the default text 404.
func TestFederationUnknownEndpoint(t *testing.T) {
	c, _, _ := fedEnv(t)
	resp := rawFed(t, c, http.MethodGet, "/api/v2/federation/nope", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "unknown federation endpoint") {
		t.Fatalf("envelope %q", eb.Error)
	}
}

// TestFederationPlacementExplainGolden pins the explain endpoint's wire
// format — field names, candidate order, verdict strings — against locally
// declared golden structs. The headroom numbers come from the clusters
// endpoint (same books, same barrier), so the comparison is exact.
func TestFederationPlacementExplainGolden(t *testing.T) {
	c, _, _ := fedEnv(t)
	infos, err := c.FedClusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("clusters %+v", infos)
	}
	headroom := make(map[string]float64)
	for _, in := range infos {
		headroom[in.Name] = in.HeadroomMbps
	}

	// 1 Mbps with a 4 ms budget: east (2 ms) and west (3 ms) are eligible,
	// north (5 ms) is latency-blocked; east wins as the lowest-latency
	// member fitting the whole contract.
	body := validFedBody(1)
	body.MaxLatencyMs = 4
	resp := rawFed(t, c, http.MethodPost, "/api/v2/federation/placement/explain", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Golden wire format, declared independently of the server's structs.
	type goldCand struct {
		Cluster      string  `json:"cluster"`
		Location     string  `json:"location,omitempty"`
		LatencyMs    float64 `json:"latency_ms"`
		HeadroomMbps float64 `json:"headroom_mbps"`
		Alive        bool    `json:"alive"`
		Eligible     bool    `json:"eligible"`
		Reason       string  `json:"reason,omitempty"`
	}
	type goldLeg struct {
		Cluster string  `json:"cluster"`
		Mbps    float64 `json:"mbps"`
	}
	type goldExplain struct {
		Placed     bool       `json:"placed"`
		RejectCode string     `json:"reject_code,omitempty"`
		Reason     string     `json:"reason,omitempty"`
		Candidates []goldCand `json:"candidates"`
		Legs       []goldLeg  `json:"legs,omitempty"`
	}
	want, err := json.Marshal(goldExplain{
		Placed: true,
		Candidates: []goldCand{
			{Cluster: "east", Location: "eu-east", LatencyMs: 2,
				HeadroomMbps: headroom["east"], Alive: true, Eligible: true},
			{Cluster: "north", Location: "eu-north", LatencyMs: 5,
				HeadroomMbps: headroom["north"], Alive: true,
				Reason: "federation latency 5.0 ms leaves no budget out of 4.0 ms"},
			{Cluster: "west", Location: "eu-west", LatencyMs: 3,
				HeadroomMbps: headroom["west"], Alive: true, Eligible: true},
		},
		Legs: []goldLeg{{Cluster: "east", Mbps: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(got)) != string(want) {
		t.Fatalf("explain wire format drifted:\n got: %s\nwant: %s", got, want)
	}
}

// TestFederationSubmitIdempotency: the first request with a key submits,
// duplicates replay the same span with Idempotency-Replay: true, and a
// different key creates a new span.
func TestFederationSubmitIdempotency(t *testing.T) {
	c, _, _ := fedEnv(t)
	body := validFedBody(10)
	hdr := http.Header{"Idempotency-Key": []string{"k1"}}

	first := rawFed(t, c, http.MethodPost, "/api/v2/federation/slices", body, hdr)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first status %d", first.StatusCode)
	}
	if first.Header.Get("Idempotency-Replay") != "" {
		t.Fatal("fresh submission marked as replay")
	}
	var st1 federation.SpanStatus
	if err := json.NewDecoder(first.Body).Decode(&st1); err != nil {
		t.Fatal(err)
	}

	second := rawFed(t, c, http.MethodPost, "/api/v2/federation/slices", body, hdr)
	if second.StatusCode != http.StatusAccepted {
		t.Fatalf("replay status %d", second.StatusCode)
	}
	if second.Header.Get("Idempotency-Replay") != "true" {
		t.Fatal("duplicate not marked as replay")
	}
	var st2 federation.SpanStatus
	if err := json.NewDecoder(second.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Fatalf("replay created a new span: %s vs %s", st1.ID, st2.ID)
	}

	st3, err := c.SubmitSpan(body, "k2")
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == st1.ID {
		t.Fatalf("distinct key replayed span %s", st1.ID)
	}
	spans, err := c.ListSpans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans after 3 posts with 2 keys: %+v", spans)
	}
}

// TestFederationSubmitErrorNotCached: an internal submission failure is a
// 500 and is NOT cached under the key — the retry re-attempts and succeeds
// as a fresh submission.
func TestFederationSubmitErrorNotCached(t *testing.T) {
	c, fsrv, _ := fedEnv(t)
	real := fsrv.submit
	fsrv.submit = func(federation.Request) (federation.SpanStatus, error) {
		return federation.SpanStatus{}, fmt.Errorf("injected backend failure")
	}
	hdr := http.Header{"Idempotency-Key": []string{"k-retry"}}
	resp := rawFed(t, c, http.MethodPost, "/api/v2/federation/slices", validFedBody(10), hdr)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	fsrv.submit = real
	retry := rawFed(t, c, http.MethodPost, "/api/v2/federation/slices", validFedBody(10), hdr)
	if retry.StatusCode != http.StatusAccepted {
		t.Fatalf("retry status %d, want 202", retry.StatusCode)
	}
	if retry.Header.Get("Idempotency-Replay") != "" {
		t.Fatal("retry after failure must not be a replay")
	}
}

// TestFederationSpanLifecycleREST drives the whole surface end to end: a
// request bigger than any single member installs as a cross-cluster span,
// shows up in the registry books and the merged event stream, and tears
// down across all legs on DELETE.
func TestFederationSpanLifecycleREST(t *testing.T) {
	c, _, s := fedEnv(t)
	infos, err := c.FedClusters()
	if err != nil {
		t.Fatal(err)
	}
	var max float64
	for _, in := range infos {
		if in.HeadroomMbps > max {
			max = in.HeadroomMbps
		}
	}
	st, err := c.SubmitSpan(validFedBody(1.2*max), "")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "installed" || len(st.Legs) < 2 {
		t.Fatalf("span %+v", st)
	}
	got, err := c.GetSpan(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID || len(got.Legs) != len(st.Legs) {
		t.Fatalf("get %+v vs submit %+v", got, st)
	}

	stats, err := c.FedStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpansInstalled != 1 || stats.SpansCrossCluster != 1 || stats.SpansLive != 1 {
		t.Fatalf("stats %+v", stats)
	}

	s.RunFor(2 * time.Minute) // past one federation barrier

	evs, err := c.FedEvents(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no member events for the span legs")
	}
	legCluster := make(map[string]bool)
	for _, ev := range evs {
		legCluster[ev.Cluster] = true
	}
	for _, leg := range st.Legs {
		if !legCluster[leg.Cluster] {
			t.Fatalf("no event from leg cluster %s: %+v", leg.Cluster, evs)
		}
	}

	gain, err := c.FedGain()
	if err != nil {
		t.Fatal(err)
	}
	if len(gain.Clusters) != 3 || gain.Aggregate.Admitted < 2 {
		t.Fatalf("gain %+v", gain)
	}

	if err := c.DeleteSpan(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSpan(st.ID); err == nil {
		t.Fatal("span still present after delete")
	}
	if err := c.DeleteSpan(st.ID); err == nil {
		t.Fatal("double delete should 404")
	}
}

// TestFederationSubmitValidation: malformed bodies are the tenant's fault.
func TestFederationSubmitValidation(t *testing.T) {
	c, _, _ := fedEnv(t)
	cases := []struct {
		name string
		body any
		raw  string
	}{
		{name: "bad-json", raw: "{nope"},
		{name: "bad-class", body: func() FedSliceRequestBody {
			b := validFedBody(10)
			b.Class = "quantum"
			return b
		}()},
		{name: "no-tenant", body: func() FedSliceRequestBody {
			b := validFedBody(10)
			b.Tenant = ""
			return b
		}()},
		{name: "zero-throughput", body: func() FedSliceRequestBody {
			b := validFedBody(0)
			return b
		}()},
	}
	for _, tc := range cases {
		var resp *http.Response
		if tc.raw != "" {
			r, err := http.Post(c.BaseURL+"/api/v2/federation/slices", "application/json", strings.NewReader(tc.raw))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Body.Close() })
			resp = r
		} else {
			resp = rawFed(t, c, http.MethodPost, "/api/v2/federation/slices", tc.body, nil)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// A pinned-but-unknown cluster is a business rejection, in-band.
	body := validFedBody(10)
	body.Cluster = "mars"
	st, err := c.SubmitSpan(body, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "rejected" || st.RejectCode != slice.RejectClusterUnavailable {
		t.Fatalf("pinned-unknown outcome %+v", st)
	}
}
