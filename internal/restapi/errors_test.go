package restapi

// Satellite coverage: the v1/v2 error surface — method-not-allowed JSON
// envelopes across every route, the validation-vs-internal submit status
// mapping, client error decoding, and writeJSON's encode-failure logging.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// TestMethodNotAllowedAllRoutes table-drives the wrong method against every
// method-restricted route, v1 and v2: all must return the JSON 405 envelope
// (not the mux's plain-text default) with the route's usage hint.
func TestMethodNotAllowedAllRoutes(t *testing.T) {
	c, _ := apiEnv(t)
	cases := []struct {
		method, path, wantMsg string
	}{
		{http.MethodPut, "/api/v1/slices", "restapi: use GET or POST"},
		{http.MethodDelete, "/api/v1/slices", "restapi: use GET or POST"},
		{http.MethodHead, "/api/v1/slices", "restapi: use GET or POST"},
		{http.MethodPatch, "/api/v1/slices/s-1", "restapi: use GET or DELETE"},
		{http.MethodPost, "/api/v1/slices/s-1", "restapi: use GET or DELETE"},
		{http.MethodHead, "/api/v1/slices/s-1", "restapi: use GET or DELETE"},
		{http.MethodGet, "/api/v1/slices/s-1/demand", "restapi: use POST"},
		{http.MethodDelete, "/api/v1/slices/s-1/demand", "restapi: use POST"},
		// Subtree-fallback paths the method patterns reject keep the old
		// prefix handler's envelope too.
		{http.MethodPost, "/api/v1/slices/s-1/extra", "restapi: use GET or DELETE"},
		{http.MethodPut, "/api/v1/slices/", "restapi: use GET or DELETE"},
		{http.MethodGet, "/api/v1/links/a/b/fail", "restapi: use POST"},
		{http.MethodPut, "/api/v1/links/a/b/degrade", "restapi: use POST"},
		{http.MethodPut, "/api/v2/slices", "restapi: use GET or POST"},
		{http.MethodPatch, "/api/v2/slices/s-1", "restapi: use GET or DELETE"},
		{http.MethodPost, "/api/v2/events", "restapi: use GET"},
		{http.MethodDelete, "/api/v2/events", "restapi: use GET"},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.path, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, c.BaseURL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("status %d, want 405", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content type %q: the JSON envelope was lost", ct)
			}
			if tc.method == http.MethodHead {
				return // HEAD responses carry no body by HTTP semantics
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("non-JSON 405 body: %v", err)
			}
			if eb.Error != tc.wantMsg {
				t.Fatalf("message %q, want %q", eb.Error, tc.wantMsg)
			}
		})
	}
}

// TestSubmitInternalError5xx pins the satellite fix: validation failures
// stay 400, but a post-validation Submit failure (capacity ledger,
// transition bug, ...) is an internal 5xx — on v1 and v2 alike.
func TestSubmitInternalError5xx(t *testing.T) {
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	srv := NewServer(orch)
	srv.submit = func(slice.Request) (*slice.Slice, error) {
		return nil, errors.New("capacity ledger corrupted")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/api/v1/slices", "/api/v2/slices"} {
		resp, err := http.Post(ts.URL+path, "application/json", jsonBody(t, validBody()))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("%s: status %d, want 500", path, resp.StatusCode)
		}
		if !strings.Contains(eb.Error, "ledger corrupted") {
			t.Fatalf("%s: error %q", path, eb.Error)
		}
	}

	// Validation failures remain the tenant's 400 even with the seam broken.
	bad := validBody()
	bad.ThroughputMbps = -1
	resp, err := http.Post(ts.URL+"/api/v1/slices", "application/json", jsonBody(t, bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation status %d, want 400", resp.StatusCode)
	}
}

// TestIdempotentSubmitFailureNotCached: a 5xx under an Idempotency-Key must
// not poison the key — the retry re-attempts and succeeds.
func TestIdempotentSubmitFailureNotCached(t *testing.T) {
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	srv := NewServer(orch)
	fail := true
	srv.submit = func(req slice.Request) (*slice.Slice, error) {
		if fail {
			return nil, errors.New("transient backend failure")
		}
		return orch.Submit(req, nil)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	if _, err := c.SubmitSliceV2(validBody(), "retry-key"); err == nil {
		t.Fatal("expected the injected failure")
	}
	fail = false
	snap, err := c.SubmitSliceV2(validBody(), "retry-key")
	if err != nil {
		t.Fatalf("retry after 5xx failed: %v", err)
	}
	if snap.State != "installing" {
		t.Fatalf("state %q", snap.State)
	}
}

// TestClientErrorPaths covers the typed client against every error shape
// the server produces.
func TestClientErrorPaths(t *testing.T) {
	c, _ := apiEnv(t)

	// 404 with JSON envelope decodes into apiError.
	_, err := c.GetSlice("ghost")
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("get ghost: %v", err)
	}
	if !strings.Contains(ae.Error(), "not found") {
		t.Fatalf("apiError message %q", ae.Error())
	}
	if err := c.DeleteSlice("ghost"); err == nil {
		t.Fatal("delete ghost accepted")
	}
	if err := c.RecordDemand("ghost", 1); err == nil {
		t.Fatal("demand ghost accepted")
	}

	// Non-JSON error body (the mux's own 404) falls back to the status line.
	if err := c.do(http.MethodGet, "/api/v1/nope", nil, nil); err == nil {
		t.Fatal("unknown route accepted")
	} else if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || ae.Msg == "" {
		t.Fatalf("plain-text 404: %v", err)
	}

	// Malformed slice paths keep the old prefix handler's JSON 404
	// envelope (first segment is taken as the — unknown — ID), v1 and v2.
	for _, path := range []string{
		"/api/v1/slices/", "/api/v1/slices/ghost/extra/deep",
		"/api/v2/slices/", "/api/v2/slices/ghost/extra",
	} {
		err := c.do(http.MethodGet, path, nil, nil)
		if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || !strings.Contains(ae.Msg, "not found") {
			t.Fatalf("%s: %v", path, err)
		}
	}

	// v2 pagination token error surfaces as a 400 apiError.
	if _, err := c.ListSlicesV2(ListQuery{PageToken: "bogus"}); err == nil {
		t.Fatal("bad page token accepted")
	} else if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad token: %v", err)
	}

	// Unreachable server is a transport error, not an apiError.
	dead := NewClient("http://127.0.0.1:1")
	if err := dead.Health(); err == nil {
		t.Fatal("unreachable server accepted")
	} else if errors.As(err, &ae) {
		t.Fatalf("transport error mis-typed: %v", err)
	}
}

// TestWriteJSONLogsEncodeError pins the satellite fix for silently-ignored
// Encode errors: the status goes out first (no double-written headers) and
// the failure is logged.
func TestWriteJSONLogsEncodeError(t *testing.T) {
	var logged []string
	old := logf
	logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	defer func() { logf = old }()

	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, func() {}) // func values cannot marshal
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: must be written before the body is encoded", rec.Code)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "encode") {
		t.Fatalf("encode failure not logged exactly once: %v", logged)
	}

	// The happy path logs nothing.
	logged = nil
	writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]string{"ok": "yes"})
	if len(logged) != 0 {
		t.Fatalf("spurious log on success: %v", logged)
	}
}
