package restapi

// Tests for the intent-plane REST surface: template CRUD and publish-time
// guardrail mapping (422), the dry-run endpoints, and the Idempotency-Key
// contract on fleet and rollout creation.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// intentEnv is apiEnv plus an attached intent manager; the raw server URL
// comes along for header-level assertions.
func intentEnv(t *testing.T) (*Client, *sim.Simulator, string) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	orch.Start()
	api := NewServer(orch)
	api.AttachIntent(intent.NewManager(orch, s, intent.Config{}))
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), s, srv.URL
}

func validTemplateBody() TemplateBody {
	return TemplateBody{
		Name:            "gold",
		ThroughputMbps:  20,
		MaxLatencyMs:    50,
		DurationSeconds: 3600,
		PriceEUR:        100,
		PenaltyEUR:      2,
	}
}

func TestTemplateCRUDAndPublish(t *testing.T) {
	c, _, _ := intentEnv(t)

	tpl, err := c.CreateTemplate(validTemplateBody())
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Version != 1 || tpl.State != intent.TemplateDraft {
		t.Fatalf("created = v%d %s, want v1 draft", tpl.Version, tpl.State)
	}

	b := validTemplateBody()
	b.PriceEUR = 150
	if _, err := c.UpdateTemplate("gold", 1, b); err != nil {
		t.Fatalf("update draft: %v", err)
	}
	got, err := c.GetTemplate("gold", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.PriceEUR != 150 {
		t.Fatalf("update not visible: price %v", got.PriceEUR)
	}

	pub, err := c.PublishTemplate("gold", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pub.State != intent.TemplatePublished {
		t.Fatalf("publish state = %s", pub.State)
	}
	// Published versions are immutable over the wire too.
	if _, err := c.UpdateTemplate("gold", 1, b); err == nil {
		t.Error("update of a published version succeeded")
	}

	list, err := c.ListTemplates()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("list returned %d templates, want 1", len(list))
	}

	if _, err := c.GetTemplate("gold", 9); err == nil {
		t.Error("unknown version returned")
	} else if ae := asAPIError(t, err); ae.Status != http.StatusNotFound {
		t.Errorf("unknown version status = %d, want 404", ae.Status)
	}
}

func TestPublishGuardrailRejectionIs422(t *testing.T) {
	c, _, _ := intentEnv(t)
	b := validTemplateBody()
	b.ThroughputMbps = 5000 // over the default SLA bound
	if _, err := c.CreateTemplate(b); err != nil {
		t.Fatal(err)
	}
	_, err := c.PublishTemplate("gold", 1)
	if err == nil {
		t.Fatal("publish passed the guardrails")
	}
	if ae := asAPIError(t, err); ae.Status != http.StatusUnprocessableEntity {
		t.Fatalf("guardrail rejection status = %d (%v), want 422", ae.Status, err)
	}
	// The draft survives the failed publish for another round of edits.
	if got, err := c.GetTemplate("gold", 1); err != nil || got.State != intent.TemplateDraft {
		t.Fatalf("draft after failed publish: %+v, %v", got, err)
	}
}

func TestDryRunEndpoints(t *testing.T) {
	c, _, _ := intentEnv(t)
	if _, err := c.CreateTemplate(validTemplateBody()); err != nil {
		t.Fatal(err)
	}
	// Template dry-run works against drafts — probe before publish.
	rep, err := c.DryRunTemplate("gold", 1, "acme", "core")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.DataCenter == "" {
		t.Fatalf("draft probe = %+v, want feasible with a placement", rep)
	}

	// Raw-request dry-run mirrors the submit body.
	raw, err := c.DryRunSlice(validBody())
	if err != nil {
		t.Fatal(err)
	}
	if !raw.Feasible {
		t.Fatalf("raw probe = %+v, want feasible", raw)
	}

	// An infeasible probe reports the typed rejection, not an error.
	big := validTemplateBody()
	big.Name = "goliath"
	big.ThroughputMbps = 1e7
	if _, err := c.CreateTemplate(big); err != nil {
		t.Fatal(err)
	}
	inf, err := c.DryRunTemplate("goliath", 1, "acme", "core")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Feasible || inf.RejectCode == "" {
		t.Fatalf("oversized probe = %+v, want typed rejection", inf)
	}
}

func TestFleetInstantiationIdempotency(t *testing.T) {
	c, _, url := intentEnv(t)
	if _, err := c.CreateTemplate(validTemplateBody()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishTemplate("gold", 1); err != nil {
		t.Fatal(err)
	}

	body := InstantiateBody{Template: "gold", Version: 1, Tenants: []string{"a", "b"}, Regions: []string{"core"}}
	first, err := c.Instantiate(body, "fleet-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if first.Admitted == 0 {
		t.Fatalf("fleet admitted nothing: %+v", first)
	}

	// Same key replays the same fleet — no second instantiation.
	dup, err := c.Instantiate(body, "fleet-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate created fleet %s, want replay of %s", dup.ID, first.ID)
	}
	fleets, err := c.ListFleets()
	if err != nil {
		t.Fatal(err)
	}
	if len(fleets) != 1 {
		t.Fatalf("%d fleets exist after duplicate submit, want 1", len(fleets))
	}

	// Header-level: the duplicate carries Idempotency-Replay: true.
	req, _ := http.NewRequest(http.MethodPost, url+"/api/v2/fleets", jsonBody(t, body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "fleet-key-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Idempotency-Replay") != "true" {
		t.Error("duplicate missing Idempotency-Replay header")
	}

	// Rollout creation honours the same contract.
	ro1, err := c.StartRollout(RolloutBody{Fleet: first.ID, ToVersion: 1}, "ro-key")
	if err == nil {
		// ToVersion == current version is invalid; expect an error instead.
		t.Fatalf("rollout to current version accepted: %+v", ro1)
	}
	b2 := validTemplateBody()
	b2.ProvisionFraction = 0.8
	if _, err := c.CreateTemplate(b2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishTemplate("gold", 2); err != nil {
		t.Fatal(err)
	}
	ro1, err = c.StartRollout(RolloutBody{Fleet: first.ID, ToVersion: 2, WindowSeconds: 600}, "ro-key-2")
	if err != nil {
		t.Fatal(err)
	}
	dupRo, err := c.StartRollout(RolloutBody{Fleet: first.ID, ToVersion: 2, WindowSeconds: 600}, "ro-key-2")
	if err != nil {
		t.Fatal(err)
	}
	if dupRo.ID != ro1.ID {
		t.Fatalf("duplicate rollout %s, want replay of %s", dupRo.ID, ro1.ID)
	}

	if _, err := c.GetFleet("fl-404"); err == nil {
		t.Error("unknown fleet returned")
	}
	if _, err := c.GetRollout("ro-404"); err == nil {
		t.Error("unknown rollout returned")
	}
}

// TestRolloutOverRESTCompletes drives a full promote through the API with
// the simulated clock, proving the rollout decision is visible over the
// wire.
func TestRolloutOverRESTCompletes(t *testing.T) {
	c, s, _ := intentEnv(t)
	if _, err := c.CreateTemplate(validTemplateBody()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishTemplate("gold", 1); err != nil {
		t.Fatal(err)
	}
	b2 := validTemplateBody()
	b2.ProvisionFraction = 0.8
	if _, err := c.CreateTemplate(b2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishTemplate("gold", 2); err != nil {
		t.Fatal(err)
	}
	fleet, err := c.Instantiate(InstantiateBody{
		Template: "gold", Version: 1,
		Tenants: []string{"a", "b", "c", "d"}, Regions: []string{"core"},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := c.StartRollout(RolloutBody{Fleet: fleet.ID, ToVersion: 2, CanaryFraction: 0.25, WindowSeconds: 300}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(6 * 60 * 1e9); err != nil { // 6 minutes
		t.Fatal(err)
	}
	got, err := c.GetRollout(ro.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != intent.RolloutPromoted {
		t.Fatalf("phase over REST = %s, want promoted", got.Phase)
	}
	rollouts, err := c.ListRollouts()
	if err != nil || len(rollouts) != 1 {
		t.Fatalf("list rollouts: %v, n=%d", err, len(rollouts))
	}
}

func asAPIError(t *testing.T, err error) *apiError {
	t.Helper()
	var ae *apiError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an apiError", err)
	}
	return ae
}
