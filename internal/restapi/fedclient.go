package restapi

// Typed client methods for the /api/v2/federation/ surface, used by
// cmd/slicectl --cluster and the federation example.

import (
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/federation"
	"repro/internal/slice"
)

// FedClusters fetches the federation registry view.
func (c *Client) FedClusters() ([]federation.ClusterInfo, error) {
	var out []federation.ClusterInfo
	err := c.do(http.MethodGet, "/api/v2/federation/clusters", nil, &out)
	return out, err
}

// SubmitSpan posts a federated slice request. A non-empty idempotencyKey
// deduplicates retries: resubmitting with the same key replays the same
// span instead of creating another.
func (c *Client) SubmitSpan(body FedSliceRequestBody, idempotencyKey string) (federation.SpanStatus, error) {
	var hdr http.Header
	if idempotencyKey != "" {
		hdr = http.Header{"Idempotency-Key": []string{idempotencyKey}}
	}
	var st federation.SpanStatus
	err := c.doHeaders(http.MethodPost, "/api/v2/federation/slices", hdr, body, &st)
	return st, err
}

// ListSpans fetches the live federated spans in submission order.
func (c *Client) ListSpans() ([]federation.SpanStatus, error) {
	var out []federation.SpanStatus
	err := c.do(http.MethodGet, "/api/v2/federation/slices", nil, &out)
	return out, err
}

// GetSpan fetches one federated span.
func (c *Client) GetSpan(id slice.ID) (federation.SpanStatus, error) {
	var st federation.SpanStatus
	err := c.do(http.MethodGet, "/api/v2/federation/slices/"+url.PathEscape(string(id)), nil, &st)
	return st, err
}

// DeleteSpan tears a federated span down across all its member legs.
func (c *Client) DeleteSpan(id slice.ID) error {
	return c.do(http.MethodDelete, "/api/v2/federation/slices/"+url.PathEscape(string(id)), nil, nil)
}

// ExplainPlacement dry-runs federated placement for the request without
// reserving anything.
func (c *Client) ExplainPlacement(body FedSliceRequestBody) (federation.PlacementExplain, error) {
	var ex federation.PlacementExplain
	err := c.do(http.MethodPost, "/api/v2/federation/placement/explain", body, &ex)
	return ex, err
}

// FedEvents fetches the merged cluster-tagged lifecycle stream (the most
// recent limit events overall; 0 uses the server default).
func (c *Client) FedEvents(limit int) ([]federation.ClusterEvent, error) {
	path := "/api/v2/federation/events"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out []federation.ClusterEvent
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// FedGain fetches the federation-wide aggregated gain report plus the
// per-member reports.
func (c *Client) FedGain() (FedGainResponse, error) {
	var out FedGainResponse
	err := c.do(http.MethodGet, "/api/v2/federation/gain", nil, &out)
	return out, err
}

// FedStats fetches the federation-tier placement counters.
func (c *Client) FedStats() (federation.Stats, error) {
	var out federation.Stats
	err := c.do(http.MethodGet, "/api/v2/federation/stats", nil, &out)
	return out, err
}
