package restapi

// The /api/v2/ surface: the event-driven counterpart of v1 (DESIGN.md §6).
// v2 keeps v1's JSON envelopes and error mapping but adds list filtering
// with keyset pagination, Idempotency-Key submission dedup, and the ordered
// slice-lifecycle stream as Server-Sent Events with ?since resume.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/slice"
)

// handleListV2 serves GET /api/v2/slices with optional query filters
// state, tenant, reject_code, limit and page_token (keyset pagination: pass
// the previous response's next_page_token).
func (s *Server) handleListV2(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opts := core.ListOptions{
		State:      q.Get("state"),
		Tenant:     q.Get("tenant"),
		RejectCode: slice.RejectCode(q.Get("reject_code")),
		PageToken:  q.Get("page_token"),
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad limit %q", v))
			return
		}
		opts.Limit = n
	}
	page, err := s.orch.ListFiltered(opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// handleEpochV2 serves GET /api/v2/epoch: the snapshot the control loop's
// telemetry barrier published at the end of its most recent pass — an
// epoch-aligned, immutable view of the gain report and RAN utilization that
// is at most one epoch stale and costs the orchestrator nothing to serve
// (a single atomic pointer load; see core.EpochSnapshot). 404 until the
// first epoch completes. Clients that need exact live counters keep using
// /api/v1/gain.
func (s *Server) handleEpochV2(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.orch.LastEpoch()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("restapi: no control epoch has completed yet"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleRecovery serves GET /api/v2/recovery: the durability plane's status
// — whether a write-ahead log is attached, the last appended sequence, any
// latched persistence error, and (after a restart) the crash-recovery
// report of the boot (DESIGN.md §9). Always 200: a daemon without -data-dir
// reports {"enabled": false}.
func (s *Server) handleRecovery(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.orch.PersistStatus())
}

// handleSubmitV2 serves POST /api/v2/slices: v1 submission semantics (202
// installing, 200 in-band rejection, 400 validation, 5xx internal) plus
// Idempotency-Key dedup — the first request with a key submits, concurrent
// and later duplicates replay its outcome with Idempotency-Replay: true and
// a fresh snapshot of the same slice. Failed submissions are not cached, so
// retries after a 5xx re-attempt.
func (s *Server) handleSubmitV2(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSubmitBody(w, r)
	if !ok {
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		s.handleSubmitV1Decoded(w, req)
		return
	}
	e := s.idem.entry(key)
	fresh := false
	e.once.Do(func() {
		fresh = true
		sl, err := s.submit(req)
		if err != nil {
			e.err = err
			s.idem.drop(key)
			return
		}
		e.id = sl.ID()
		e.status = http.StatusAccepted
		if sl.State() == slice.StateRejected {
			e.status = http.StatusOK
		}
		e.snap = sl.Snapshot()
		s.idem.complete(key)
	})
	if e.err != nil {
		writeErr(w, http.StatusInternalServerError, e.err)
		return
	}
	snap := e.snap
	if sl, ok := s.orch.Get(e.id); ok {
		snap = sl.Snapshot() // replay with the slice's current state
	}
	if !fresh {
		w.Header().Set("Idempotency-Replay", "true")
	}
	writeJSON(w, e.status, snap)
}

// handleSubmitV1Decoded is the shared non-idempotent submission tail.
func (s *Server) handleSubmitV1Decoded(w http.ResponseWriter, req slice.Request) {
	sl, err := s.submit(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusAccepted
	if sl.State() == slice.StateRejected {
		status = http.StatusOK
	}
	writeJSON(w, status, sl.Snapshot())
}

// handleEvents serves GET /api/v2/events: the ordered slice-lifecycle
// stream as Server-Sent Events. Each frame carries the event's sequence
// number as the SSE id, its type as the SSE event name, and the JSON
// encoding as data. Query parameters: since (resume after this sequence;
// since=0 replays everything the ring retains; absent = live tail),
// tenant, state and type (each repeatable) filter server-side. A consumer
// that outruns the bounded replay ring receives one "resync" frame and
// must re-list state (GET /api/v2/slices) before continuing.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("restapi: streaming unsupported"))
		return
	}
	opts := core.WatchOptions{Buffer: 256}
	q := r.URL.Query()
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("restapi: bad since %q", v))
			return
		}
		if n == 0 {
			opts.Since = -1 // explicit since=0: full replay of the ring
		} else {
			opts.Since = n
		}
	}
	opts.Tenants = q["tenant"]
	opts.States = q["state"]
	for _, t := range q["type"] {
		opts.Types = append(opts.Types, core.EventType(t))
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "retry: 2000\n\n")
	fl.Flush()

	for ev := range s.orch.Watch(r.Context(), opts) {
		data, err := json.Marshal(ev)
		if err != nil {
			logf("restapi: encode event %d: %v", ev.Seq, err)
			continue
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return // client hung up; Watch channel closes via r.Context()
		}
		fl.Flush()
	}
}
