package restapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// fuzzOrch builds a simulated orchestrator (no wall-clock timers leak into
// the fuzz process) fronted by the API server.
func fuzzOrch(tb testing.TB) (*Server, *core.Orchestrator, *sim.Simulator) {
	tb.Helper()
	s := sim.NewSimulator(1)
	env, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		tb.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 16, Audit: true}, env, s, monitor.NewStore(128))
	return NewServer(orch), orch, s
}

// FuzzV2ListQuery hardens GET /api/v2/slices filter/pagination parsing:
// whatever state/tenant/reject-code/limit/page-token combination the fuzzer
// invents, the handler must answer 200 or 400 — never 5xx, never a panic —
// with a well-formed JSON body, and a 200 page must respect the limit.
func FuzzV2ListQuery(f *testing.F) {
	srv, orch, s := fuzzOrch(f)
	for i := 0; i < 8; i++ {
		if _, err := orch.Submit(slice.Request{
			Tenant: "tenant-" + strconv.Itoa(i%3),
			SLA: slice.SLA{ThroughputMbps: 10, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: 10, Class: slice.ClassEMBB},
		}, traffic.NewConstant(4, 0, nil)); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.RunFor(15 * time.Second); err != nil {
		f.Fatal(err)
	}

	f.Add("active", "tenant-1", "", "2", "")
	f.Add("", "", "radio-capacity", "0", "3")
	f.Add("bogus", "no-such", "nope", "-7", "not-a-number")
	f.Add("installing", "", "", "99999999999999999999", "99999999999999999999")
	f.Add("", "", "", "1e3", "-1")
	f.Add("terminated", "tenant-0", "plmn-exhausted", "", "\x00\xff")

	f.Fuzz(func(t *testing.T, state, tenant, rejectCode, limit, pageToken string) {
		q := url.Values{}
		q.Set("state", state)
		q.Set("tenant", tenant)
		q.Set("reject_code", rejectCode)
		q.Set("limit", limit)
		q.Set("page_token", pageToken)
		req := httptest.NewRequest(http.MethodGet, "/api/v2/slices?"+q.Encode(), nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d for query %q; body %s", rec.Code, q.Encode(), rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			var page core.ListPage
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatalf("200 body not a ListPage: %v (%s)", err, rec.Body.String())
			}
			if n, err := strconv.Atoi(limit); err == nil && n > 0 && len(page.Slices) > n {
				t.Fatalf("limit %d ignored: %d slices returned", n, len(page.Slices))
			}
		} else {
			var e map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("400 body not a JSON envelope: %s", rec.Body.String())
			}
		}
	})
}

// FuzzIdempotencyKey hardens POST /api/v2/slices Idempotency-Key handling:
// for arbitrary keys and request bodies (including unparsable ones — float
// fields are formatted verbatim, so NaN/Inf become invalid JSON), a
// duplicate submission with the same key must replay the first outcome
// (same slice ID, Idempotency-Replay header) and never crash or 5xx.
func FuzzIdempotencyKey(f *testing.F) {
	f.Add("key-1", "tenant", 10.0, 50.0, 3600.0, 25.0)
	f.Add("", "tenant", 10.0, 50.0, 3600.0, 25.0)
	f.Add("k\x00\xff", "", -5.0, 0.0, -1.0, -2.0)
	f.Add(strings.Repeat("K", 4096), "t", 1e300, 1e300, 1e300, 1e300)

	f.Fuzz(func(t *testing.T, key, tenant string, mbps, latency, durSec, price float64) {
		srv, _, _ := fuzzOrch(t)
		ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		body := `{"tenant":` + strconv.Quote(tenant) +
			`,"throughput_mbps":` + ff(mbps) +
			`,"max_latency_ms":` + ff(latency) +
			`,"duration_seconds":` + ff(durSec) +
			`,"price_eur":` + ff(price) + `}`
		post := func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodPost, "/api/v2/slices", strings.NewReader(body))
			if key != "" {
				req.Header.Set("Idempotency-Key", key)
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			return rec
		}
		first, second := post(), post()
		for _, rec := range []*httptest.ResponseRecorder{first, second} {
			switch rec.Code {
			case http.StatusOK, http.StatusAccepted, http.StatusBadRequest:
			default:
				t.Fatalf("status %d; body %s", rec.Code, rec.Body.String())
			}
			var parsed map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
				t.Fatalf("body not JSON: %v (%s)", err, rec.Body.String())
			}
		}
		if first.Code == http.StatusBadRequest || key == "" {
			return // no idempotency entry to replay
		}
		if second.Header().Get("Idempotency-Replay") != "true" {
			t.Fatalf("duplicate key %q not marked as replay (first %d, second %d)", key, first.Code, second.Code)
		}
		var a, b slice.Snapshot
		if err := json.Unmarshal(first.Body.Bytes(), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(second.Body.Bytes(), &b); err != nil {
			t.Fatal(err)
		}
		if a.ID != b.ID {
			t.Fatalf("replay returned a different slice: %s vs %s", a.ID, b.ID)
		}
	})
}
