package restapi

// Regression tests for idemStore capacity churn: eviction at the bound must
// never drop an in-flight entry — evicting one would hand a concurrent
// duplicate of the same Idempotency-Key a fresh entry with an unfired once,
// i.e. a double-submit — and drop must keep the error-not-cached retry
// contract. The churn tests run meaningfully under -race.

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestIdemStoreEvictsOnlyCompleted: with the store at its bound, inserting a
// new key evicts the oldest *completed* key and leaves in-flight keys alone,
// even when the in-flight key is the oldest.
func TestIdemStoreEvictsOnlyCompleted(t *testing.T) {
	st := newIdemStore[int](3)

	inflight := st.entry("inflight") // oldest, never completed
	st.entry("a")
	st.complete("a")
	st.entry("b")
	st.complete("b")

	// At the bound (3). The next insert must evict "a" — the oldest
	// completed key — not "inflight".
	st.entry("c")
	st.complete("c")

	if got := st.entry("inflight"); got != inflight {
		t.Fatal("in-flight entry was evicted at capacity: a concurrent duplicate would re-submit")
	}
	st.mu.Lock()
	_, aAlive := st.entries["a"]
	n := len(st.entries)
	st.mu.Unlock()
	if aAlive {
		t.Error("oldest completed key survived eviction")
	}
	if n != 3 {
		t.Errorf("store holds %d entries, want 3 (bound)", n)
	}
}

// TestIdemStoreExceedsLimitWhileAllInFlight: when every retained submission
// is still in flight there is nothing safe to evict — the store transiently
// exceeds its bound rather than dropping an unfired once, and shrinks back
// as completions land.
func TestIdemStoreExceedsLimitWhileAllInFlight(t *testing.T) {
	st := newIdemStore[int](2)
	keys := []string{"k1", "k2", "k3", "k4"}
	got := make([]*idemEntry[int], len(keys))
	for i, k := range keys {
		got[i] = st.entry(k)
	}
	// All four in flight: none may have been evicted.
	for i, k := range keys {
		if st.entry(k) != got[i] {
			t.Fatalf("in-flight entry %q was evicted while over the bound", k)
		}
	}
	// Completions make them evictable again; two more inserts squeeze the
	// store back toward the bound.
	for _, k := range keys {
		st.complete(k)
	}
	st.entry("k5")
	st.entry("k6")
	st.mu.Lock()
	n := len(st.entries)
	st.mu.Unlock()
	if n > 4 {
		t.Errorf("store did not shrink back after completions: %d entries", n)
	}
}

// TestIdemStoreInFlightSurvivesChurn is the concurrent double-submit proof:
// one key's submission is held in flight while churn goroutines push
// hundreds of completed keys through a tiny store, and duplicate goroutines
// keep re-fetching the held key. The held submission must execute exactly
// once and every duplicate must observe its outcome.
func TestIdemStoreInFlightSurvivesChurn(t *testing.T) {
	st := newIdemStore[int](8)
	var submissions atomic.Int32
	release := make(chan struct{})

	const want = 42
	victim := func() int {
		e := st.entry("victim")
		e.once.Do(func() {
			<-release // hold the submission in flight across the churn
			submissions.Add(1)
			e.snap = want
			st.complete("victim")
		})
		return e.snap
	}

	var wg sync.WaitGroup
	// The first submitter, plus duplicates arriving during the churn.
	results := make([]int, 16)
	for i := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = victim()
		}()
	}
	// Churn: 4 goroutines × 200 completed keys each, far past the bound of
	// 8, all while "victim" is in flight and must not be evicted.
	churnDone := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 4; g++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for i := 0; i < 200; i++ {
				k := string(rune('a'+g)) + "-" + string(rune('0'+i%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i/100))
				st.entry(k)
				st.complete(k)
			}
		}()
	}
	go func() { churn.Wait(); close(churnDone) }()
	<-churnDone    // the whole churn happens while victim is in flight
	close(release) // now let the submission finish
	wg.Wait()

	if n := submissions.Load(); n != 1 {
		t.Fatalf("submission ran %d times, want exactly 1 (double-submit)", n)
	}
	for i, r := range results {
		if r != want {
			t.Errorf("duplicate %d observed outcome %d, want %d", i, r, want)
		}
	}
	// Late duplicate after completion still replays, no resubmission.
	if got := victim(); got != want {
		t.Errorf("late duplicate observed %d, want %d", got, want)
	}
	if n := submissions.Load(); n != 1 {
		t.Errorf("late duplicate re-ran the submission (%d times total)", n)
	}
}

// TestIdemStoreDropRetryContract: a failed submission is dropped, so a
// retry with the same key gets a fresh entry and re-attempts; a success on
// the retry is then cached and replayed.
func TestIdemStoreDropRetryContract(t *testing.T) {
	st := newIdemStore[int](4)
	attempts := 0
	submit := func(fail bool) int {
		e := st.entry("k")
		e.once.Do(func() {
			attempts++
			if fail {
				st.drop("k")
				return
			}
			e.snap = 7
			st.complete("k")
		})
		return e.snap
	}
	submit(true) // first attempt fails and is dropped
	if got := submit(false); got != 7 {
		t.Fatalf("retry outcome = %d, want 7", got)
	}
	if got := submit(false); got != 7 {
		t.Fatalf("replay outcome = %d, want 7", got)
	}
	if attempts != 2 {
		t.Fatalf("submission attempted %d times, want 2 (fail + retry; then replay)", attempts)
	}
}
