package restapi

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// redundantEnv builds an API over a testbed with the backup switch.
func redundantEnv(t *testing.T) (*Client, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(1)
	cfg := testbed.Default()
	cfg.RedundantTransport = true
	tb, err := testbed.New(cfg, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	orch.Start()
	srv := httptest.NewServer(NewServer(orch))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), s
}

func TestFailAndRestoreLinkViaAPI(t *testing.T) {
	c, s := redundantEnv(t)
	snap, err := c.SubmitSlice(validBody())
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)

	rep, err := c.FailLink(testbed.ENBName(0), testbed.Switch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 || rep.Restored[0] != snap.ID {
		t.Fatalf("report %+v", rep)
	}
	got, _ := c.GetSlice(snap.ID)
	if got.State != "active" {
		t.Fatalf("state %q after restoration", got.State)
	}
	if err := c.RestoreLink(testbed.ENBName(0), testbed.Switch); err != nil {
		t.Fatal(err)
	}
	// Link shows up again in topology.
	links, _ := c.Topology()
	for _, l := range links {
		if l.From == testbed.ENBName(0) && l.To == testbed.Switch && !l.Up {
			t.Fatal("link still down after restore")
		}
	}
}

func TestDegradeLinkViaAPI(t *testing.T) {
	c, s := redundantEnv(t)
	if _, err := c.SubmitSlice(validBody()); err != nil {
		t.Fatal(err)
	}
	s.RunFor(15 * time.Second)
	rep, err := c.DegradeLink(testbed.ENBName(0), testbed.Switch, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 {
		t.Fatalf("report %+v", rep)
	}
	if _, err := c.DegradeLink(testbed.ENBName(0), testbed.Switch, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestLinkOpsErrors(t *testing.T) {
	c, _ := redundantEnv(t)
	if _, err := c.FailLink("ghost", "sw1"); err == nil {
		t.Fatal("unknown link accepted")
	}
	// Bad op name.
	resp, err := http.Post(c.BaseURL+"/api/v1/links/a/b/teleport", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// GET not allowed.
	resp2, err := http.Get(c.BaseURL + "/api/v1/links/a/b/fail")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	// Malformed path.
	resp3, err := http.Post(c.BaseURL+"/api/v1/links/only-one-part", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp3.StatusCode)
	}
}
