package traffic

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// FuzzDemandModels hardens every demand generator against hostile
// parameters: whatever rates, swings, probabilities or noise levels the
// fuzzer invents — NaN, ±Inf, negatives, denormals — Sample must return a
// finite, non-negative load and Mean must not panic. The seed corpus pins
// the known nasty corners (NaN rate, negative swing, infinite jitter,
// inverted burst probabilities).
func FuzzDemandModels(f *testing.F) {
	f.Add(10.0, 1.0, 30.0, 15.0, 20.0, 2.0, 5.0, 60.0, 0.1, 0.3, int64(1))
	f.Add(math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(),
		math.NaN(), math.NaN(), math.NaN(), math.NaN(), int64(2))
	f.Add(math.Inf(1), math.Inf(-1), -5.0, math.Inf(1), -3.0, math.Inf(1),
		-1.0, math.Inf(-1), 2.0, -1.0, int64(3))
	f.Add(-10.0, -1.0, 5.0, 50.0, 99.0, -2.0, 0.0, 0.0, 0.0, 0.0, int64(4))
	f.Add(math.MaxFloat64, math.MaxFloat64, math.MaxFloat64, math.MaxFloat64,
		math.MaxFloat64, math.MaxFloat64, math.MaxFloat64, math.MaxFloat64,
		1.0, 1.0, int64(5))

	f.Fuzz(func(t *testing.T, rate, jitter, base, swing, peak, noise,
		quiet, burst, pBurst, pCalm float64, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		origin := time.Unix(0, 0).UTC()
		models := []Demand{
			NewConstant(rate, jitter, rng),
			NewDiurnal(base, swing, peak, noise, rng),
			NewBursty(quiet, burst, pBurst, pCalm, noise, rng),
			NewTrace("fuzz", []float64{rate, base, swing, quiet}, time.Minute, origin),
			&FlashCrowd{
				Base:      NewConstant(rate, jitter, rng),
				Start:     origin.Add(30 * time.Minute),
				Duration:  time.Hour,
				ExtraMbps: burst,
			},
		}
		for _, m := range models {
			_ = m.Mean() // must not panic; value is informational
			for i := 0; i < 8; i++ {
				at := origin.Add(time.Duration(i) * 17 * time.Minute)
				v := m.Sample(at)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: non-finite sample %v at %v", m.Name(), v, at)
				}
				if v < 0 {
					t.Fatalf("%s: negative sample %v at %v", m.Name(), v, at)
				}
			}
		}
	})
}

// FuzzRequestGenerator hardens the Poisson request generator: arbitrary
// interarrival means and profile perturbations must keep producing
// non-negative interarrival gaps, and generated requests must either
// validate or be rejected by Validate — never crash downstream layers.
func FuzzRequestGenerator(f *testing.F) {
	f.Add(int64(time.Minute), int64(1))
	f.Add(int64(0), int64(2))
	f.Add(int64(-5), int64(3))
	f.Add(int64(math.MaxInt64), int64(4))
	f.Fuzz(func(t *testing.T, meanIA int64, seed int64) {
		g := NewRequestGenerator(nil, time.Duration(meanIA), rand.New(rand.NewSource(seed)))
		at := time.Unix(0, 0)
		for i := 0; i < 16; i++ {
			if d := g.NextInterarrival(); d < 0 {
				t.Fatalf("negative interarrival %v", d)
			}
			gen := g.Next(at)
			if err := gen.Request.Validate(); err != nil {
				t.Fatalf("generated request invalid: %v", err)
			}
			if v := gen.Demand.Sample(at); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("generated demand sample %v", v)
			}
		}
	})
}
