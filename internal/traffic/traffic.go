// Package traffic synthesises the workloads the demo's testbed observed from
// real UEs: per-slice demand processes with the diurnal shape exploited by
// the forecasting paper [4], plus the arrival process of slice requests the
// admission engine faces.
//
// The paper's intro names the verticals (automotive, e-health); Profiles
// gives each a demand shape and SLA template so experiments stress the
// orchestrator with the heterogeneous mix Section 1 describes.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/slice"
)

// Demand is a stochastic demand process sampled once per monitoring epoch.
// Implementations must be deterministic given the *rand.Rand they were
// constructed with.
type Demand interface {
	// Sample returns the offered load (Mbps) at time t. Implementations
	// must return a finite, non-negative rate no matter how hostile their
	// configured parameters are (NaN rates, negative swings, infinite
	// jitter) — the orchestrator feeds samples straight into forecasters
	// and the capacity ledger, where one NaN poisons everything.
	Sample(t time.Time) float64
	// Mean returns the long-run average demand (Mbps), used by capacity
	// planning in experiments.
	Mean() float64
	// Name identifies the generator in experiment output.
	Name() string
}

// Constant is a fixed-rate demand (plus optional jitter) — e.g. an mMTC
// aggregation stream.
type Constant struct {
	Rate   float64
	Jitter float64 // stddev of Gaussian noise, Mbps
	rng    *rand.Rand
}

// NewConstant returns a constant-rate demand with Gaussian jitter.
func NewConstant(rate, jitter float64, rng *rand.Rand) *Constant {
	return &Constant{Rate: rate, Jitter: jitter, rng: rng}
}

// Sample implements Demand.
func (c *Constant) Sample(time.Time) float64 {
	v := c.Rate
	if c.Jitter > 0 && c.rng != nil {
		v += c.rng.NormFloat64() * c.Jitter
	}
	return clampNonNeg(v)
}

// Mean implements Demand.
func (c *Constant) Mean() float64 { return c.Rate }

// Name implements Demand.
func (c *Constant) Name() string { return fmt.Sprintf("constant(%.1f)", c.Rate) }

// Diurnal is the classic day/night mobile-traffic curve: a raised sinusoid
// with its peak at PeakHour plus Gaussian noise. Demand never goes negative.
type Diurnal struct {
	// BaseMbps is the mean demand level.
	BaseMbps float64
	// SwingMbps is the amplitude: peak = base+swing, trough = base-swing.
	SwingMbps float64
	// PeakHour is the local hour (0..24) of maximum demand.
	PeakHour float64
	// NoiseMbps is the stddev of the additive Gaussian noise.
	NoiseMbps float64
	rng       *rand.Rand
}

// NewDiurnal returns a diurnal demand process.
func NewDiurnal(base, swing, peakHour, noise float64, rng *rand.Rand) *Diurnal {
	return &Diurnal{BaseMbps: base, SwingMbps: swing, PeakHour: peakHour, NoiseMbps: noise, rng: rng}
}

// Sample implements Demand.
func (d *Diurnal) Sample(t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	phase := 2 * math.Pi * (hour - d.PeakHour) / 24
	v := d.BaseMbps + d.SwingMbps*math.Cos(phase)
	if d.NoiseMbps > 0 && d.rng != nil {
		v += d.rng.NormFloat64() * d.NoiseMbps
	}
	return clampNonNeg(v)
}

// Mean implements Demand.
func (d *Diurnal) Mean() float64 { return d.BaseMbps }

// Name implements Demand.
func (d *Diurnal) Name() string {
	return fmt.Sprintf("diurnal(base=%.1f,swing=%.1f,peak=%.0fh)", d.BaseMbps, d.SwingMbps, d.PeakHour)
}

// Bursty is a two-state Markov-modulated process (quiet/burst). It models
// the automotive vertical: mostly telemetry with sudden event bursts.
type Bursty struct {
	QuietMbps, BurstMbps float64
	// PBurst is the per-sample probability of transitioning quiet->burst;
	// PCalm of burst->quiet.
	PBurst, PCalm float64
	NoiseMbps     float64
	rng           *rand.Rand
	inBurst       bool
}

// NewBursty returns a Markov-modulated on/off demand process.
func NewBursty(quiet, burst, pBurst, pCalm, noise float64, rng *rand.Rand) *Bursty {
	return &Bursty{QuietMbps: quiet, BurstMbps: burst, PBurst: pBurst, PCalm: pCalm, NoiseMbps: noise, rng: rng}
}

// Sample implements Demand.
func (b *Bursty) Sample(time.Time) float64 {
	if b.rng != nil {
		if b.inBurst {
			if b.rng.Float64() < b.PCalm {
				b.inBurst = false
			}
		} else if b.rng.Float64() < b.PBurst {
			b.inBurst = true
		}
	}
	v := b.QuietMbps
	if b.inBurst {
		v = b.BurstMbps
	}
	if b.NoiseMbps > 0 && b.rng != nil {
		v += b.rng.NormFloat64() * b.NoiseMbps
	}
	return clampNonNeg(v)
}

// Mean implements Demand.
func (b *Bursty) Mean() float64 {
	// Stationary distribution of the 2-state chain.
	if b.PBurst+b.PCalm == 0 {
		return b.QuietMbps
	}
	pb := b.PBurst / (b.PBurst + b.PCalm)
	return b.QuietMbps*(1-pb) + b.BurstMbps*pb
}

// Name implements Demand.
func (b *Bursty) Name() string {
	return fmt.Sprintf("bursty(%.1f/%.1f)", b.QuietMbps, b.BurstMbps)
}

// FlashCrowd layers a one-off demand spike (e.g. a stadium event) on top of
// a base process — the adversarial case for overbooking.
type FlashCrowd struct {
	Base      Demand
	Start     time.Time
	Duration  time.Duration
	ExtraMbps float64
}

// Sample implements Demand.
func (f *FlashCrowd) Sample(t time.Time) float64 {
	v := f.Base.Sample(t)
	if !t.Before(f.Start) && t.Before(f.Start.Add(f.Duration)) {
		v += f.ExtraMbps
	}
	return clampNonNeg(v)
}

// Mean implements Demand.
func (f *FlashCrowd) Mean() float64 { return f.Base.Mean() }

// Name implements Demand.
func (f *FlashCrowd) Name() string { return f.Base.Name() + "+flashcrowd" }

// Trace replays a fixed series, one value per epoch, cycling at the end —
// the hook for feeding recorded testbed traces through the same pipeline.
type Trace struct {
	Values []float64
	Epoch  time.Duration
	Origin time.Time
	label  string
}

// NewTrace returns a demand process replaying values with the given epoch,
// anchored at origin.
func NewTrace(label string, values []float64, epoch time.Duration, origin time.Time) *Trace {
	if len(values) == 0 {
		values = []float64{0}
	}
	if epoch <= 0 {
		epoch = time.Minute
	}
	return &Trace{Values: values, Epoch: epoch, Origin: origin, label: label}
}

// Sample implements Demand.
func (tr *Trace) Sample(t time.Time) float64 {
	idx := int(t.Sub(tr.Origin)/tr.Epoch) % len(tr.Values)
	if idx < 0 {
		idx += len(tr.Values)
	}
	return clampNonNeg(tr.Values[idx])
}

// Mean implements Demand.
func (tr *Trace) Mean() float64 {
	s := 0.0
	for _, v := range tr.Values {
		s += v
	}
	return s / float64(len(tr.Values))
}

// Name implements Demand.
func (tr *Trace) Name() string { return "trace(" + tr.label + ")" }

// clampNonNeg sanitizes a demand sample: negative rates clamp to zero, and
// non-finite values (NaN from hostile parameters, ±Inf from overflowed
// arithmetic) collapse to zero outright — a single NaN sample would
// otherwise poison the forecasters, the capacity ledger and every
// telemetry aggregate downstream. Every Demand implementation routes its
// samples through here, which is the contract the traffic fuzz targets pin.
func clampNonNeg(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

// Profile is a tenant archetype: an SLA template plus a demand-shape
// factory. The four profiles mirror the service classes in package slice.
type Profile struct {
	// Class is the slice service class this profile requests.
	Class slice.ServiceClass
	// Tenant is the display name used for generated requests.
	Tenant string
	// SLA is the template; Duration/Price may be perturbed per request.
	SLA slice.SLA
	// NewDemand builds the demand process for an admitted slice of this
	// profile, scaled so its long-run mean is meanMbps.
	NewDemand func(meanMbps float64, rng *rand.Rand) Demand
	// MeanDemandFraction is the typical ratio mean-demand / contracted
	// peak. Overbooking gain comes precisely from this being < 1.
	MeanDemandFraction float64
}

// DefaultProfiles returns the four verticals used throughout the
// experiments. Throughputs are sized against the testbed scale (two eNBs,
// ~150 Mbps of radio capacity each at 20 MHz).
func DefaultProfiles() []Profile {
	return []Profile{
		{
			Class:  slice.ClassEMBB,
			Tenant: "mvno-broadband",
			SLA: slice.SLA{
				ThroughputMbps: 60, MaxLatencyMs: 50,
				Duration: 2 * time.Hour, PriceEUR: 120, PenaltyEUR: 1.0,
				Class: slice.ClassEMBB,
			},
			MeanDemandFraction: 0.45,
			NewDemand: func(mean float64, rng *rand.Rand) Demand {
				return NewDiurnal(mean, 0.7*mean, 20, 0.08*mean, rng)
			},
		},
		{
			Class:  slice.ClassAutomotive,
			Tenant: "acme-automotive",
			SLA: slice.SLA{
				ThroughputMbps: 20, MaxLatencyMs: 8,
				Duration: 1 * time.Hour, PriceEUR: 90, PenaltyEUR: 4.0,
				Class: slice.ClassAutomotive, EdgeCompute: true,
			},
			MeanDemandFraction: 0.35,
			NewDemand: func(mean float64, rng *rand.Rand) Demand {
				// Quiet 0.5x mean / burst 3x mean with stationary mean ~= mean.
				return NewBursty(0.5*mean, 3*mean, 0.08, 0.32, 0.05*mean, rng)
			},
		},
		{
			Class:  slice.ClassEHealth,
			Tenant: "medcare-ehealth",
			SLA: slice.SLA{
				ThroughputMbps: 30, MaxLatencyMs: 20,
				Duration: 3 * time.Hour, PriceEUR: 150, PenaltyEUR: 6.0,
				Class: slice.ClassEHealth,
			},
			MeanDemandFraction: 0.5,
			NewDemand: func(mean float64, rng *rand.Rand) Demand {
				return NewDiurnal(mean, 0.5*mean, 11, 0.05*mean, rng)
			},
		},
		{
			Class:  slice.ClassMMTC,
			Tenant: "sensornet-mmtc",
			SLA: slice.SLA{
				ThroughputMbps: 10, MaxLatencyMs: 100,
				Duration: 4 * time.Hour, PriceEUR: 40, PenaltyEUR: 0.5,
				Class: slice.ClassMMTC,
			},
			MeanDemandFraction: 0.6,
			NewDemand: func(mean float64, rng *rand.Rand) Demand {
				return NewConstant(mean, 0.05*mean, rng)
			},
		},
	}
}

// RequestGenerator produces slice requests as a marked Poisson process over
// a set of tenant profiles — the offered load knob of experiment D1.
type RequestGenerator struct {
	Profiles []Profile
	// MeanInterarrival is the mean gap between requests.
	MeanInterarrival time.Duration
	rng              *rand.Rand
	seq              int
}

// NewRequestGenerator returns a generator drawing from profiles with
// exponential interarrivals.
func NewRequestGenerator(profiles []Profile, meanInterarrival time.Duration, rng *rand.Rand) *RequestGenerator {
	if len(profiles) == 0 {
		profiles = DefaultProfiles()
	}
	if meanInterarrival <= 0 {
		meanInterarrival = 5 * time.Minute
	}
	return &RequestGenerator{Profiles: profiles, MeanInterarrival: meanInterarrival, rng: rng}
}

// NextInterarrival draws the gap to the next request. The draw saturates at
// MaxInt64 nanoseconds: an exponential tail sample times a large mean
// overflows time.Duration and would wrap negative, re-arming the arrival
// timer in the past forever.
func (g *RequestGenerator) NextInterarrival() time.Duration {
	if g.rng == nil {
		return g.MeanInterarrival
	}
	d := g.rng.ExpFloat64() * float64(g.MeanInterarrival)
	if d < 0 || d >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// Generated pairs a request with the demand process the slice will offer if
// admitted.
type Generated struct {
	Request slice.Request
	Demand  Demand
	Profile Profile
}

// Next synthesises the next request arriving at time at. Prices and
// durations are perturbed ±25% so the admission knapsack faces
// heterogeneous value densities.
func (g *RequestGenerator) Next(at time.Time) Generated {
	g.seq++
	p := g.Profiles[0]
	perturb := func(v float64) float64 { return v }
	if g.rng != nil {
		p = g.Profiles[g.rng.Intn(len(g.Profiles))]
		perturb = func(v float64) float64 { return v * (0.75 + 0.5*g.rng.Float64()) }
	}
	sla := p.SLA
	sla.PriceEUR = perturb(sla.PriceEUR)
	sla.Duration = time.Duration(perturb(float64(sla.Duration)))
	req := slice.Request{
		Tenant:  fmt.Sprintf("%s-%d", p.Tenant, g.seq),
		SLA:     sla,
		Arrival: at,
	}
	mean := sla.ThroughputMbps * p.MeanDemandFraction
	return Generated{Request: req, Demand: p.NewDemand(mean, g.rng), Profile: p}
}
