package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/slice"
)

var t0 = time.Date(2018, 8, 20, 0, 0, 0, 0, time.UTC)

func TestConstantSample(t *testing.T) {
	c := NewConstant(25, 0, nil)
	for i := 0; i < 5; i++ {
		if got := c.Sample(t0); got != 25 {
			t.Fatalf("sample %v", got)
		}
	}
	if c.Mean() != 25 {
		t.Fatal("mean")
	}
}

func TestConstantJitterNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConstant(0.5, 5, rng)
	for i := 0; i < 1000; i++ {
		if c.Sample(t0) < 0 {
			t.Fatal("negative demand")
		}
	}
}

func TestDiurnalPeaksAtPeakHour(t *testing.T) {
	d := NewDiurnal(100, 40, 20, 0, nil)
	peak := d.Sample(time.Date(2018, 8, 20, 20, 0, 0, 0, time.UTC))
	trough := d.Sample(time.Date(2018, 8, 20, 8, 0, 0, 0, time.UTC))
	if math.Abs(peak-140) > 1e-9 {
		t.Fatalf("peak %v, want 140", peak)
	}
	if math.Abs(trough-60) > 1e-9 {
		t.Fatalf("trough %v, want 60", trough)
	}
}

func TestDiurnalMeanOverDay(t *testing.T) {
	d := NewDiurnal(80, 30, 14, 0, nil)
	sum := 0.0
	n := 0
	for h := 0; h < 24; h++ {
		for m := 0; m < 60; m += 5 {
			sum += d.Sample(time.Date(2018, 8, 20, h, m, 0, 0, time.UTC))
			n++
		}
	}
	if avg := sum / float64(n); math.Abs(avg-80) > 1 {
		t.Fatalf("daily average %v, want ~80", avg)
	}
}

func TestBurstyStationaryMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBursty(10, 100, 0.1, 0.3, 0, rng)
	wantMean := 10*0.75 + 100*0.25
	if math.Abs(b.Mean()-wantMean) > 1e-9 {
		t.Fatalf("analytic mean %v, want %v", b.Mean(), wantMean)
	}
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += b.Sample(t0)
	}
	if emp := sum / n; math.Abs(emp-wantMean) > 2 {
		t.Fatalf("empirical mean %v, want ~%v", emp, wantMean)
	}
}

func TestBurstyStatesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBursty(5, 50, 0.2, 0.2, 0, rng)
	for i := 0; i < 1000; i++ {
		v := b.Sample(t0)
		if v != 5 && v != 50 {
			t.Fatalf("bursty emitted %v", v)
		}
	}
}

func TestFlashCrowdWindow(t *testing.T) {
	base := NewConstant(10, 0, nil)
	f := &FlashCrowd{Base: base, Start: t0.Add(time.Hour), Duration: 30 * time.Minute, ExtraMbps: 90}
	if got := f.Sample(t0); got != 10 {
		t.Fatalf("before crowd %v", got)
	}
	if got := f.Sample(t0.Add(time.Hour)); got != 100 {
		t.Fatalf("at crowd start %v", got)
	}
	if got := f.Sample(t0.Add(89 * time.Minute)); got != 100 {
		t.Fatalf("during crowd %v", got)
	}
	if got := f.Sample(t0.Add(91 * time.Minute)); got != 10 {
		t.Fatalf("after crowd %v", got)
	}
	if f.Mean() != 10 {
		t.Fatal("flash crowd mean should be base mean")
	}
}

func TestTraceReplayAndCycle(t *testing.T) {
	tr := NewTrace("t", []float64{1, 2, 3}, time.Minute, t0)
	cases := []struct {
		at   time.Time
		want float64
	}{
		{t0, 1},
		{t0.Add(time.Minute), 2},
		{t0.Add(2 * time.Minute), 3},
		{t0.Add(3 * time.Minute), 1}, // cycles
		{t0.Add(90 * time.Second), 2},
	}
	for _, c := range cases {
		if got := tr.Sample(c.at); got != c.want {
			t.Fatalf("trace at %v = %v, want %v", c.at, got, c.want)
		}
	}
	if tr.Mean() != 2 {
		t.Fatalf("trace mean %v", tr.Mean())
	}
}

func TestTraceBeforeOriginWraps(t *testing.T) {
	tr := NewTrace("t", []float64{1, 2, 3}, time.Minute, t0)
	if got := tr.Sample(t0.Add(-time.Minute)); got != 3 {
		t.Fatalf("pre-origin sample %v", got)
	}
}

func TestTraceEmptyDefaults(t *testing.T) {
	tr := NewTrace("e", nil, 0, t0)
	if got := tr.Sample(t0); got != 0 {
		t.Fatalf("empty trace sample %v", got)
	}
}

func TestDefaultProfilesCoverAllClasses(t *testing.T) {
	ps := DefaultProfiles()
	seen := map[slice.ServiceClass]bool{}
	for _, p := range ps {
		seen[p.Class] = true
		if err := p.SLA.Validate(); err != nil {
			t.Fatalf("profile %s SLA invalid: %v", p.Tenant, err)
		}
		if p.MeanDemandFraction <= 0 || p.MeanDemandFraction >= 1 {
			t.Fatalf("profile %s mean fraction %v outside (0,1) — no multiplexing gain possible", p.Tenant, p.MeanDemandFraction)
		}
		d := p.NewDemand(p.SLA.ThroughputMbps*p.MeanDemandFraction, rand.New(rand.NewSource(1)))
		if d == nil {
			t.Fatalf("profile %s demand nil", p.Tenant)
		}
	}
	for _, c := range []slice.ServiceClass{slice.ClassEMBB, slice.ClassAutomotive, slice.ClassEHealth, slice.ClassMMTC} {
		if !seen[c] {
			t.Fatalf("class %v missing from default profiles", c)
		}
	}
}

func TestProfileDemandMeanApproximatesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range DefaultProfiles() {
		target := p.SLA.ThroughputMbps * p.MeanDemandFraction
		d := p.NewDemand(target, rng)
		sum := 0.0
		const n = 20000
		at := t0
		for i := 0; i < n; i++ {
			sum += d.Sample(at)
			at = at.Add(time.Minute)
		}
		emp := sum / n
		if math.Abs(emp-target)/target > 0.25 {
			t.Fatalf("profile %s empirical mean %.2f vs target %.2f", p.Tenant, emp, target)
		}
	}
}

func TestRequestGeneratorDeterministic(t *testing.T) {
	gen := func() []string {
		g := NewRequestGenerator(nil, time.Minute, rand.New(rand.NewSource(5)))
		var out []string
		at := t0
		for i := 0; i < 10; i++ {
			at = at.Add(g.NextInterarrival())
			out = append(out, g.Next(at).Request.Tenant)
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic generator: %v vs %v", a[i], b[i])
		}
	}
}

func TestRequestGeneratorValidRequests(t *testing.T) {
	g := NewRequestGenerator(nil, time.Minute, rand.New(rand.NewSource(9)))
	for i := 0; i < 200; i++ {
		gen := g.Next(t0)
		if err := gen.Request.Validate(); err != nil {
			t.Fatalf("generated request invalid: %v", err)
		}
		if gen.Demand == nil {
			t.Fatal("generated demand nil")
		}
	}
}

func TestRequestGeneratorUniqueTenants(t *testing.T) {
	g := NewRequestGenerator(nil, time.Minute, rand.New(rand.NewSource(2)))
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		name := g.Next(t0).Request.Tenant
		if seen[name] {
			t.Fatalf("duplicate tenant %s", name)
		}
		seen[name] = true
	}
}

func TestExponentialInterarrivalMean(t *testing.T) {
	g := NewRequestGenerator(nil, 2*time.Minute, rand.New(rand.NewSource(17)))
	var sum time.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		sum += g.NextInterarrival()
	}
	mean := sum / n
	if math.Abs(float64(mean-2*time.Minute)) > float64(4*time.Second) {
		t.Fatalf("mean interarrival %v, want ~2m", mean)
	}
}

func TestGeneratorDefaultsWithoutRNG(t *testing.T) {
	g := NewRequestGenerator(nil, 0, nil)
	if g.NextInterarrival() != 5*time.Minute {
		t.Fatal("default interarrival")
	}
	gen := g.Next(t0)
	if gen.Request.SLA.ThroughputMbps <= 0 {
		t.Fatal("default request invalid")
	}
}

// Property: every demand process returns non-negative samples at all times.
func TestPropertyNonNegativeDemand(t *testing.T) {
	f := func(seed int64, hourOffsets []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		demands := []Demand{
			NewConstant(1, 3, rng),
			NewDiurnal(10, 15, 20, 5, rng), // swing > base stresses clamping
			NewBursty(0.2, 8, 0.3, 0.3, 2, rng),
		}
		for _, off := range hourOffsets {
			at := t0.Add(time.Duration(off) * time.Minute)
			for _, d := range demands {
				if d.Sample(at) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
