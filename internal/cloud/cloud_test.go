package cloud

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func dcWith(t *testing.T, policy PlacementPolicy, hosts ...float64) *DataCenter {
	t.Helper()
	dc := NewDataCenter("edge", "edge", policy)
	for i, v := range hosts {
		if err := dc.AddHost(fmt.Sprintf("h%d", i+1), v, int(v)*4096, int(v)*100); err != nil {
			t.Fatal(err)
		}
	}
	return dc
}

func tmplOf(flavors ...Flavor) Template {
	var t Template
	for i, f := range flavors {
		t.Resources = append(t.Resources, TemplateResource{Name: fmt.Sprintf("r%d", i), Flavor: f})
	}
	return t
}

func TestFlavorValidate(t *testing.T) {
	if err := FlavorSmall.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Flavor{
		{Name: "", VCPUs: 1, RAMMB: 1},
		{Name: "x", VCPUs: 0, RAMMB: 1},
		{Name: "x", VCPUs: 1, RAMMB: 0},
		{Name: "x", VCPUs: 1, RAMMB: 1, DiskGB: -1},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("flavor %+v accepted", f)
		}
	}
}

func TestTemplateValidate(t *testing.T) {
	if err := (Template{}).Validate(); err == nil {
		t.Fatal("empty template accepted")
	}
	dup := Template{Resources: []TemplateResource{
		{Name: "a", Flavor: FlavorSmall},
		{Name: "a", Flavor: FlavorSmall},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate resource accepted")
	}
	if got := tmplOf(FlavorSmall, FlavorLarge).TotalVCPUs(); got != 5 {
		t.Fatalf("total vcpus %v", got)
	}
}

func TestAddHostValidation(t *testing.T) {
	dc := NewDataCenter("d", "core", FirstFit)
	if err := dc.AddHost("", 4, 1, 1); err == nil {
		t.Fatal("empty host name accepted")
	}
	if err := dc.AddHost("h", 0, 1, 1); err == nil {
		t.Fatal("zero vcpus accepted")
	}
	if err := dc.AddHost("h", 4, 4096, 100); err != nil {
		t.Fatal(err)
	}
	if err := dc.AddHost("h", 4, 4096, 100); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestCreateStackPlacesAllVMs(t *testing.T) {
	dc := dcWith(t, FirstFit, 8, 8)
	st, err := dc.CreateStack("s1", tmplOf(FlavorMedium, FlavorMedium, FlavorSmall))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.VMs) != 3 {
		t.Fatalf("placed %d VMs", len(st.VMs))
	}
	c := dc.Capacity()
	if c.UsedVCPUs != 5 || c.VMs != 3 || c.Stacks != 1 {
		t.Fatalf("capacity %+v", c)
	}
}

func TestCreateStackRollsBackOnFailure(t *testing.T) {
	dc := dcWith(t, FirstFit, 3) // 3 vCPUs total
	_, err := dc.CreateStack("s1", tmplOf(FlavorMedium, FlavorMedium))
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("expected capacity error, got %v", err)
	}
	if c := dc.Capacity(); c.UsedVCPUs != 0 || c.VMs != 0 {
		t.Fatalf("rollback leaked: %+v", c)
	}
	if _, ok := dc.Stack("s1"); ok {
		t.Fatal("failed stack registered")
	}
}

func TestCreateStackDuplicateID(t *testing.T) {
	dc := dcWith(t, FirstFit, 8)
	if _, err := dc.CreateStack("s1", tmplOf(FlavorSmall)); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.CreateStack("s1", tmplOf(FlavorSmall)); !errors.Is(err, ErrDuplicateStack) {
		t.Fatalf("duplicate stack: %v", err)
	}
}

func TestDeleteStackFreesCapacity(t *testing.T) {
	dc := dcWith(t, BestFit, 8)
	dc.CreateStack("s1", tmplOf(FlavorLarge))
	dc.DeleteStack("s1")
	if c := dc.Capacity(); c.UsedVCPUs != 0 || c.Stacks != 0 {
		t.Fatalf("delete leaked %+v", c)
	}
	dc.DeleteStack("s1") // idempotent
}

func TestRAMConstraintBinds(t *testing.T) {
	dc := NewDataCenter("d", "edge", FirstFit)
	dc.AddHost("h1", 16, 2048, 100) // lots of CPU, little RAM
	if _, err := dc.CreateStack("s", tmplOf(FlavorMedium)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("RAM-bound placement: %v", err)
	}
}

func TestBestFitPacksTightly(t *testing.T) {
	dc := dcWith(t, BestFit, 8, 4)
	// Best-fit should put a small VM on the smaller host (least free CPU).
	st, err := dc.CreateStack("s", tmplOf(FlavorSmall))
	if err != nil {
		t.Fatal(err)
	}
	if st.VMs[0].Host != "h2" {
		t.Fatalf("best-fit chose %s, want h2", st.VMs[0].Host)
	}
}

func TestWorstFitSpreads(t *testing.T) {
	dc := dcWith(t, WorstFit, 8, 4)
	st, err := dc.CreateStack("s", tmplOf(FlavorSmall))
	if err != nil {
		t.Fatal(err)
	}
	if st.VMs[0].Host != "h1" {
		t.Fatalf("worst-fit chose %s, want h1", st.VMs[0].Host)
	}
}

func TestFirstFitNameOrder(t *testing.T) {
	dc := dcWith(t, FirstFit, 4, 8)
	st, _ := dc.CreateStack("s", tmplOf(FlavorSmall))
	if st.VMs[0].Host != "h1" {
		t.Fatalf("first-fit chose %s", st.VMs[0].Host)
	}
}

func TestCanFitDryRun(t *testing.T) {
	dc := dcWith(t, FirstFit, 4)
	if !dc.CanFit(tmplOf(FlavorLarge)) {
		t.Fatal("4-vCPU template should fit 4-vCPU host")
	}
	if dc.CanFit(tmplOf(FlavorLarge, FlavorSmall)) {
		t.Fatal("5 vCPUs cannot fit 4")
	}
	// Dry run must not consume anything.
	if c := dc.Capacity(); c.UsedVCPUs != 0 {
		t.Fatalf("CanFit consumed capacity %+v", c)
	}
	if dc.CanFit(Template{}) {
		t.Fatal("invalid template fits")
	}
}

func TestCanFitFragmentation(t *testing.T) {
	// Two hosts with 2 vCPUs each cannot host one 4-vCPU VM even though
	// total capacity suffices.
	dc := dcWith(t, FirstFit, 2, 2)
	if dc.CanFit(tmplOf(FlavorLarge)) {
		t.Fatal("fragmented capacity accepted a large VM")
	}
	if !dc.CanFit(tmplOf(FlavorMedium, FlavorMedium)) {
		t.Fatal("two mediums should fit two 2-vCPU hosts")
	}
}

func TestUtilization(t *testing.T) {
	dc := dcWith(t, FirstFit, 8)
	if dc.Utilization() != 0 {
		t.Fatal("fresh DC utilised")
	}
	dc.CreateStack("s", tmplOf(FlavorLarge))
	if got := dc.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization %v", got)
	}
}

func TestRegionRegistry(t *testing.T) {
	r := NewRegion()
	edge := NewDataCenter("edge", "edge", BestFit)
	core := NewDataCenter("core", "core", BestFit)
	if err := r.Add(edge); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(core); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(edge); err == nil {
		t.Fatal("duplicate DC accepted")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "core" {
		t.Fatalf("names %v", got)
	}
	if _, ok := r.Get("edge"); !ok {
		t.Fatal("Get edge failed")
	}
	if got := r.All(); len(got) != 2 || got[0].Name() != "core" {
		t.Fatal("All order wrong")
	}
}

// Property: used capacity equals the sum of live stacks' demands after any
// create/delete sequence, and never exceeds totals.
func TestPropertyCapacityConservation(t *testing.T) {
	f := func(ops []struct {
		Delete bool
		Size   uint8
	}) bool {
		dc := dcWith(t, BestFit, 16, 16)
		type liveStack struct {
			id    string
			vcpus float64
		}
		var live []liveStack
		for i, op := range ops {
			if op.Delete && len(live) > 0 {
				dc.DeleteStack(live[0].id)
				live = live[1:]
				continue
			}
			fl := []Flavor{FlavorSmall, FlavorMedium, FlavorLarge}[op.Size%3]
			id := fmt.Sprintf("s%d", i)
			if _, err := dc.CreateStack(id, tmplOf(fl)); err == nil {
				live = append(live, liveStack{id, fl.VCPUs})
			}
		}
		want := 0.0
		for _, s := range live {
			want += s.vcpus
		}
		c := dc.Capacity()
		return math.Abs(c.UsedVCPUs-want) < 1e-9 &&
			c.UsedVCPUs <= c.TotalVCPUs+1e-9 &&
			c.Stacks == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
