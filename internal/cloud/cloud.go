// Package cloud models the demo's two OpenStack deployments — a mobile-edge
// and a core data center — together with a Heat-style stack orchestrator.
// The demo performs "dynamic configurations of computational resources ...
// through Heat"; per admitted slice, a stack template describing the vEPC
// VMs is instantiated in the data center chosen by the embedding logic.
//
// The model covers what the orchestration control loop actually exercises:
// host capacity accounting (vCPU/RAM/disk), flavors, VM placement policies,
// atomic stack create/delete, and utilization telemetry. It does not speak
// the OpenStack wire protocol (non-goal, see DESIGN.md).
package cloud

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Flavor is a VM size, mirroring Nova flavors.
type Flavor struct {
	Name   string  `json:"name"`
	VCPUs  float64 `json:"vcpus"`
	RAMMB  int     `json:"ram_mb"`
	DiskGB int     `json:"disk_gb"`
}

// Validate reports the first problem with the flavor.
func (f Flavor) Validate() error {
	switch {
	case f.Name == "":
		return errors.New("cloud: flavor needs a name")
	case f.VCPUs <= 0:
		return fmt.Errorf("cloud: flavor %s vcpus %.1f must be positive", f.Name, f.VCPUs)
	case f.RAMMB <= 0:
		return fmt.Errorf("cloud: flavor %s ram %d must be positive", f.Name, f.RAMMB)
	case f.DiskGB < 0:
		return fmt.Errorf("cloud: flavor %s disk %d must be non-negative", f.Name, f.DiskGB)
	}
	return nil
}

// Standard flavors used by the vEPC templates.
var (
	FlavorSmall  = Flavor{Name: "m1.small", VCPUs: 1, RAMMB: 2048, DiskGB: 20}
	FlavorMedium = Flavor{Name: "m1.medium", VCPUs: 2, RAMMB: 4096, DiskGB: 40}
	FlavorLarge  = Flavor{Name: "m1.large", VCPUs: 4, RAMMB: 8192, DiskGB: 80}
)

// Host is one compute node.
type Host struct {
	Name   string
	VCPUs  float64
	RAMMB  int
	DiskGB int

	usedVCPUs  float64
	usedRAMMB  int
	usedDiskGB int
	vms        map[string]*VM
}

// fits reports whether the flavor fits in the host's free capacity.
func (h *Host) fits(f Flavor) bool {
	return h.VCPUs-h.usedVCPUs >= f.VCPUs-1e-9 &&
		h.RAMMB-h.usedRAMMB >= f.RAMMB &&
		h.DiskGB-h.usedDiskGB >= f.DiskGB
}

func (h *Host) place(vm *VM) {
	h.usedVCPUs += vm.Flavor.VCPUs
	h.usedRAMMB += vm.Flavor.RAMMB
	h.usedDiskGB += vm.Flavor.DiskGB
	h.vms[vm.ID] = vm
}

func (h *Host) evict(vm *VM) {
	if _, ok := h.vms[vm.ID]; !ok {
		return
	}
	h.usedVCPUs -= vm.Flavor.VCPUs
	h.usedRAMMB -= vm.Flavor.RAMMB
	h.usedDiskGB -= vm.Flavor.DiskGB
	delete(h.vms, vm.ID)
}

// cpuUtil returns the host's vCPU utilization in [0,1].
func (h *Host) cpuUtil() float64 {
	if h.VCPUs <= 0 {
		return 0
	}
	return h.usedVCPUs / h.VCPUs
}

// VM is one placed instance.
type VM struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Flavor Flavor `json:"flavor"`
	Host   string `json:"host"`
	Stack  string `json:"stack"`
}

// PlacementPolicy selects a host for a flavor.
type PlacementPolicy int

// Placement policies for the embedding ablation.
const (
	// FirstFit scans hosts in name order and takes the first that fits —
	// fast, fragments capacity.
	FirstFit PlacementPolicy = iota
	// BestFit picks the fitting host with the least free vCPU, packing
	// tightly (default; matches Nova's ram-weigher behaviour closely
	// enough for control-plane purposes).
	BestFit
	// WorstFit picks the fitting host with the most free vCPU, spreading
	// load.
	WorstFit
)

// String returns the policy name.
func (p PlacementPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// Errors surfaced as admission-rejection reasons.
var (
	ErrNoCapacity     = errors.New("cloud: no host fits the flavor")
	ErrUnknownStack   = errors.New("cloud: unknown stack")
	ErrDuplicateStack = errors.New("cloud: stack already exists")
)

// DataCenter is one OpenStack deployment.
type DataCenter struct {
	name   string
	kind   string // "edge" or "core", informational
	policy PlacementPolicy

	mu     sync.Mutex
	hosts  map[string]*Host
	byName []*Host // hosts sorted by name, maintained on AddHost
	stacks map[string]*Stack
	vmSeq  int

	// orderScratch/fitScratch are per-DC working arrays reused across
	// hostOrder and CanFit calls (both run under mu), so the admission
	// dry-run and placement loops allocate nothing in steady state.
	orderScratch []*Host
	fitScratch   []hostFree

	// ver counts every state change that can flip a CanFit answer:
	// AddHost, CreateStack, DeleteStack. Memoized feasibility outcomes
	// keyed by this value stay exact.
	ver atomic.Uint64
}

// hostFree is the dry-run copy of one host's free capacity.
type hostFree struct {
	vcpus float64
	ram   int
	disk  int
}

// Version returns a counter bumped by every capacity-affecting mutation;
// equal versions guarantee equal CanFit answers.
func (dc *DataCenter) Version() uint64 { return dc.ver.Load() }

// NewDataCenter returns a data center with the given placement policy.
func NewDataCenter(name, kind string, policy PlacementPolicy) *DataCenter {
	return &DataCenter{
		name:   name,
		kind:   kind,
		policy: policy,
		hosts:  make(map[string]*Host),
		stacks: make(map[string]*Stack),
	}
}

// Name returns the data-center name (matches its transport gateway node).
func (dc *DataCenter) Name() string { return dc.name }

// Kind returns "edge" or "core".
func (dc *DataCenter) Kind() string { return dc.kind }

// AddHost registers a compute node.
func (dc *DataCenter) AddHost(name string, vcpus float64, ramMB, diskGB int) error {
	if name == "" || vcpus <= 0 || ramMB <= 0 || diskGB < 0 {
		return fmt.Errorf("cloud: invalid host %q (%.1f vCPU, %d MB, %d GB)", name, vcpus, ramMB, diskGB)
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, ok := dc.hosts[name]; ok {
		return fmt.Errorf("cloud: duplicate host %q in %s", name, dc.name)
	}
	h := &Host{Name: name, VCPUs: vcpus, RAMMB: ramMB, DiskGB: diskGB, vms: map[string]*VM{}}
	dc.hosts[name] = h
	i := sort.Search(len(dc.byName), func(i int) bool { return dc.byName[i].Name >= name })
	dc.byName = append(dc.byName, nil)
	copy(dc.byName[i+1:], dc.byName[i:])
	dc.byName[i] = h
	dc.ver.Add(1)
	return nil
}

// hostOrder returns hosts in scheduling order for the policy: name order as
// the stable base, then a stable free-vCPU sort for Best/WorstFit. The
// returned slice is dc.orderScratch (valid under dc.mu until the next call).
func (dc *DataCenter) hostOrder(f Flavor) []*Host {
	hosts := append(dc.orderScratch[:0], dc.byName...)
	dc.orderScratch = hosts
	switch dc.policy {
	case BestFit:
		slices.SortStableFunc(hosts, func(a, b *Host) int {
			return cmp.Compare(a.VCPUs-a.usedVCPUs, b.VCPUs-b.usedVCPUs)
		})
	case WorstFit:
		slices.SortStableFunc(hosts, func(a, b *Host) int {
			return cmp.Compare(b.VCPUs-b.usedVCPUs, a.VCPUs-a.usedVCPUs)
		})
	}
	_ = f
	return hosts
}

// TemplateResource is one VM in a stack template.
type TemplateResource struct {
	Name   string `json:"name"`
	Flavor Flavor `json:"flavor"`
}

// Template is a Heat-style stack template: the set of VMs a slice's vEPC
// needs.
type Template struct {
	Resources []TemplateResource `json:"resources"`
}

// Validate reports the first problem with the template.
func (t Template) Validate() error {
	if len(t.Resources) == 0 {
		return errors.New("cloud: template has no resources")
	}
	// Duplicate detection by pairwise scan: templates are a handful of VMs,
	// and this keeps validation allocation-free on the admission hot path.
	for i, r := range t.Resources {
		if r.Name == "" {
			return errors.New("cloud: template resource needs a name")
		}
		for j := 0; j < i; j++ {
			if t.Resources[j].Name == r.Name {
				return fmt.Errorf("cloud: duplicate resource %q", r.Name)
			}
		}
		if err := r.Flavor.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalVCPUs sums the template's vCPU demand, the quantity admission
// control checks against DC capacity.
func (t Template) TotalVCPUs() float64 {
	s := 0.0
	for _, r := range t.Resources {
		s += r.Flavor.VCPUs
	}
	return s
}

// Stack is an instantiated template.
type Stack struct {
	ID  string `json:"id"`
	VMs []*VM  `json:"vms"`
}

// CreateStack atomically places every VM of the template or none of them
// (Heat's create-rollback semantics).
func (dc *DataCenter) CreateStack(id string, tmpl Template) (*Stack, error) {
	if err := tmpl.Validate(); err != nil {
		return nil, err
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, ok := dc.stacks[id]; ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrDuplicateStack, id, dc.name)
	}
	stack := &Stack{ID: id, VMs: make([]*VM, 0, len(tmpl.Resources))}
	for _, res := range tmpl.Resources {
		var target *Host
		for _, h := range dc.hostOrder(res.Flavor) {
			if h.fits(res.Flavor) {
				target = h
				break
			}
		}
		if target == nil {
			for _, vm := range stack.VMs { // Heat create-rollback: all or none
				dc.hosts[vm.Host].evict(vm)
			}
			return nil, fmt.Errorf("%w: %s (%.1f vCPU) in %s", ErrNoCapacity, res.Flavor.Name, res.Flavor.VCPUs, dc.name)
		}
		dc.vmSeq++
		vm := &VM{
			ID:     dc.name + "/vm-" + strconv.Itoa(dc.vmSeq),
			Name:   res.Name,
			Flavor: res.Flavor,
			Host:   target.Name,
			Stack:  id,
		}
		target.place(vm)
		stack.VMs = append(stack.VMs, vm)
	}
	dc.stacks[id] = stack
	dc.ver.Add(1)
	return stack, nil
}

// DeleteStack removes the stack and frees its VMs. Unknown IDs are a no-op.
func (dc *DataCenter) DeleteStack(id string) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	stack, ok := dc.stacks[id]
	if !ok {
		return
	}
	for _, vm := range stack.VMs {
		if h, ok := dc.hosts[vm.Host]; ok {
			h.evict(vm)
		}
	}
	delete(dc.stacks, id)
	dc.ver.Add(1)
}

// Stack returns the named stack.
func (dc *DataCenter) Stack(id string) (*Stack, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	s, ok := dc.stacks[id]
	return s, ok
}

// StackIDs returns every instantiated stack ID, sorted — the leak-check
// enumeration the invariant auditor maps back onto live slices.
func (dc *DataCenter) StackIDs() []string {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	out := make([]string, 0, len(dc.stacks))
	for id := range dc.stacks {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AuditConservation cross-checks the data center's capacity books against
// ground truth and returns one message per discrepancy (empty when the
// books balance): each host's used vCPU/RAM/disk counters must equal the
// sums over its placed VMs, free capacity must never go negative, every
// host VM must belong to a registered stack, and every stack VM must be
// placed on the host it names.
func (dc *DataCenter) AuditConservation() []string {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	var out []string
	names := make([]string, 0, len(dc.hosts))
	for n := range dc.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := dc.hosts[n]
		var vcpus float64
		var ram, disk int
		for id, vm := range h.vms {
			vcpus += vm.Flavor.VCPUs
			ram += vm.Flavor.RAMMB
			disk += vm.Flavor.DiskGB
			stack, ok := dc.stacks[vm.Stack]
			if !ok {
				out = append(out, fmt.Sprintf("cloud %s/%s: VM %s belongs to unknown stack %q", dc.name, n, id, vm.Stack))
				continue
			}
			found := false
			for _, sv := range stack.VMs {
				if sv.ID == id {
					found = true
					break
				}
			}
			if !found {
				out = append(out, fmt.Sprintf("cloud %s/%s: VM %s missing from its stack %q", dc.name, n, id, vm.Stack))
			}
		}
		if d := h.usedVCPUs - vcpus; d > 1e-6 || d < -1e-6 {
			out = append(out, fmt.Sprintf("cloud %s/%s: used vCPUs %.3f != sum over VMs %.3f", dc.name, n, h.usedVCPUs, vcpus))
		}
		if h.usedRAMMB != ram {
			out = append(out, fmt.Sprintf("cloud %s/%s: used RAM %d != sum over VMs %d", dc.name, n, h.usedRAMMB, ram))
		}
		if h.usedDiskGB != disk {
			out = append(out, fmt.Sprintf("cloud %s/%s: used disk %d != sum over VMs %d", dc.name, n, h.usedDiskGB, disk))
		}
		if h.VCPUs-h.usedVCPUs < -1e-9 || h.RAMMB-h.usedRAMMB < 0 || h.DiskGB-h.usedDiskGB < 0 {
			out = append(out, fmt.Sprintf("cloud %s/%s: negative slack (%.1f/%.1f vCPU, %d/%d MB, %d/%d GB)",
				dc.name, n, h.usedVCPUs, h.VCPUs, h.usedRAMMB, h.RAMMB, h.usedDiskGB, h.DiskGB))
		}
	}
	for id, stack := range dc.stacks {
		for _, vm := range stack.VMs {
			h, ok := dc.hosts[vm.Host]
			if !ok {
				out = append(out, fmt.Sprintf("cloud %s: stack %q VM %s names unknown host %q", dc.name, id, vm.ID, vm.Host))
				continue
			}
			if _, ok := h.vms[vm.ID]; !ok {
				out = append(out, fmt.Sprintf("cloud %s: stack %q VM %s not placed on host %s", dc.name, id, vm.ID, vm.Host))
			}
		}
	}
	sort.Strings(out)
	return out
}

// CanFit reports whether the template could be placed right now (a dry-run
// used by admission control before committing).
func (dc *DataCenter) CanFit(tmpl Template) bool {
	if tmpl.Validate() != nil {
		return false
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	// Dry-run against copies of the free capacities, scanning hosts in name
	// order exactly as before — but over the maintained sorted host slice
	// and a pooled scratch array instead of a fresh map + sort per call.
	if cap(dc.fitScratch) < len(dc.byName) {
		dc.fitScratch = make([]hostFree, len(dc.byName))
	}
	frees := dc.fitScratch[:len(dc.byName)]
	for i, h := range dc.byName {
		frees[i] = hostFree{vcpus: h.VCPUs - h.usedVCPUs, ram: h.RAMMB - h.usedRAMMB, disk: h.DiskGB - h.usedDiskGB}
	}
	for _, res := range tmpl.Resources {
		placed := false
		for i := range frees {
			f := &frees[i]
			if f.vcpus >= res.Flavor.VCPUs-1e-9 && f.ram >= res.Flavor.RAMMB && f.disk >= res.Flavor.DiskGB {
				f.vcpus -= res.Flavor.VCPUs
				f.ram -= res.Flavor.RAMMB
				f.disk -= res.Flavor.DiskGB
				placed = true
				break
			}
		}
		if !placed {
			return false
		}
	}
	return true
}

// Capacity summarises total and used resources.
type Capacity struct {
	TotalVCPUs float64 `json:"total_vcpus"`
	UsedVCPUs  float64 `json:"used_vcpus"`
	TotalRAMMB int     `json:"total_ram_mb"`
	UsedRAMMB  int     `json:"used_ram_mb"`
	Hosts      int     `json:"hosts"`
	VMs        int     `json:"vms"`
	Stacks     int     `json:"stacks"`
}

// Capacity returns the data-center capacity summary.
func (dc *DataCenter) Capacity() Capacity {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	var c Capacity
	c.Hosts = len(dc.hosts)
	c.Stacks = len(dc.stacks)
	for _, h := range dc.hosts {
		c.TotalVCPUs += h.VCPUs
		c.UsedVCPUs += h.usedVCPUs
		c.TotalRAMMB += h.RAMMB
		c.UsedRAMMB += h.usedRAMMB
		c.VMs += len(h.vms)
	}
	return c
}

// Utilization returns used/total vCPUs in [0,1].
func (dc *DataCenter) Utilization() float64 {
	c := dc.Capacity()
	if c.TotalVCPUs <= 0 {
		return 0
	}
	return c.UsedVCPUs / c.TotalVCPUs
}

// Region is the set of data centers available to the orchestrator. All
// methods are safe for concurrent use; lookups take a shared read lock
// because every admission check and installation resolves a data center.
type Region struct {
	mu  sync.RWMutex
	dcs map[string]*DataCenter
	ver atomic.Uint64 // bumped when the DC set changes
}

// NewRegion returns an empty region.
func NewRegion() *Region { return &Region{dcs: make(map[string]*DataCenter)} }

// Add registers a data center; duplicates error.
func (r *Region) Add(dc *DataCenter) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dcs[dc.Name()]; ok {
		return fmt.Errorf("cloud: duplicate data center %q", dc.Name())
	}
	r.dcs[dc.Name()] = dc
	r.ver.Add(1)
	return nil
}

// Version returns a counter bumped when the data-center set changes;
// callers may cache the DC list keyed by it.
func (r *Region) Version() uint64 { return r.ver.Load() }

// Get returns the named data center.
func (r *Region) Get(name string) (*DataCenter, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dc, ok := r.dcs[name]
	return dc, ok
}

// Names lists data centers sorted.
func (r *Region) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.dcs))
	for n := range r.dcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns data centers sorted by name.
func (r *Region) All() []*DataCenter {
	names := r.Names()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*DataCenter, 0, len(names))
	for _, n := range names {
		out = append(out, r.dcs[n])
	}
	return out
}
