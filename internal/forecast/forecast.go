// Package forecast implements the traffic-forecasting engine the demo's
// orchestrator uses to overbook slice resources (Section 2: "By monitoring
// past slices traffic behaviors [4], our orchestrator forecasts future
// traffic demands so as to schedule slice resources while pursuing the
// overall resource efficiency maximization").
//
// The companion paper [4] (Sciancalepore et al., INFOCOM'17) forecasts
// per-slice mobile traffic, which is strongly diurnal, and adds a safety
// margin so the provisioned capacity covers a chosen demand percentile.
// We provide that exact pipeline: online forecasters (naive, moving average,
// EWMA, Holt linear trend, Holt-Winters additive seasonal), a residual
// tracker that converts forecast error into a Gaussian quantile margin, and
// accuracy metrics for the ablation experiment (D3).
//
// Forecasters and Provisioners are deliberately unsynchronized: each one
// belongs to exactly one slice, and every Observe/Provision call happens
// while the caller holds that slice's shard lock. Since PR 4 the control
// epoch's analysis phase (P3) runs one worker goroutine per shard, so
// forecasters on different shards are driven in parallel — but a single
// forecaster still only ever sees one goroutine at a time (its shard's
// worker, or the squeeze/restore passes, which the orchestrator serializes
// against the epoch; see DESIGN.md §7). Do not share one instance across
// slices or goroutines.
package forecast

import (
	"fmt"
	"math"
)

// Forecaster is an online one-step-ahead predictor. Observe feeds a new
// sample; Forecast returns the prediction for the next step. Implementations
// are deliberately cheap: the orchestrator re-forecasts every slice every
// control epoch.
type Forecaster interface {
	// Observe feeds the demand measured during the epoch that just ended.
	Observe(v float64)
	// Forecast predicts demand for the next epoch. Before any observation
	// it returns 0.
	Forecast() float64
	// Name identifies the forecaster in experiment tables.
	Name() string
	// Reset discards all learned state.
	Reset()
}

// Naive predicts the last observed value (persistence forecast). This is the
// baseline every published forecaster must beat.
type Naive struct {
	last float64
	seen bool
}

// NewNaive returns a persistence forecaster.
func NewNaive() *Naive { return &Naive{} }

// Observe implements Forecaster.
func (n *Naive) Observe(v float64) { n.last, n.seen = v, true }

// Forecast implements Forecaster.
func (n *Naive) Forecast() float64 { return n.last }

// Name implements Forecaster.
func (n *Naive) Name() string { return "naive" }

// Reset implements Forecaster.
func (n *Naive) Reset() { *n = Naive{} }

// MovingAverage predicts the mean of the last W observations.
type MovingAverage struct {
	window []float64
	size   int
	idx    int
	full   bool
	sum    float64
}

// NewMovingAverage returns a forecaster over a window of size samples.
func NewMovingAverage(size int) *MovingAverage {
	if size < 1 {
		size = 1
	}
	return &MovingAverage{window: make([]float64, size), size: size}
}

// Observe implements Forecaster.
func (m *MovingAverage) Observe(v float64) {
	m.sum -= m.window[m.idx]
	m.window[m.idx] = v
	m.sum += v
	m.idx++
	if m.idx == m.size {
		m.idx = 0
		m.full = true
	}
}

// Forecast implements Forecaster.
func (m *MovingAverage) Forecast() float64 {
	n := m.size
	if !m.full {
		n = m.idx
	}
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// Name implements Forecaster.
func (m *MovingAverage) Name() string { return fmt.Sprintf("ma(%d)", m.size) }

// Reset implements Forecaster.
func (m *MovingAverage) Reset() { *m = *NewMovingAverage(m.size) }

// EWMA is exponentially weighted moving average: level += alpha*(v-level).
type EWMA struct {
	alpha float64
	level float64
	seen  bool
}

// NewEWMA returns an EWMA forecaster with smoothing factor alpha in (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("forecast: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe implements Forecaster.
func (e *EWMA) Observe(v float64) {
	if !e.seen {
		e.level, e.seen = v, true
		return
	}
	e.level += e.alpha * (v - e.level)
}

// Forecast implements Forecaster.
func (e *EWMA) Forecast() float64 { return e.level }

// Name implements Forecaster.
func (e *EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", e.alpha) }

// Reset implements Forecaster.
func (e *EWMA) Reset() { e.level, e.seen = 0, false }

// Holt is double exponential smoothing (level + linear trend).
type Holt struct {
	alpha, beta  float64
	level, trend float64
	n            int
	prev         float64
}

// NewHolt returns a Holt linear-trend forecaster.
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("forecast: Holt parameters (%v,%v) out of (0,1]", alpha, beta))
	}
	return &Holt{alpha: alpha, beta: beta}
}

// Observe implements Forecaster.
func (h *Holt) Observe(v float64) {
	switch h.n {
	case 0:
		h.level = v
	case 1:
		h.trend = v - h.prev
		h.level = v
	default:
		prevLevel := h.level
		h.level = h.alpha*v + (1-h.alpha)*(h.level+h.trend)
		h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	}
	h.prev = v
	h.n++
}

// Forecast implements Forecaster.
func (h *Holt) Forecast() float64 {
	if h.n == 0 {
		return 0
	}
	return h.level + h.trend
}

// Name implements Forecaster.
func (h *Holt) Name() string { return fmt.Sprintf("holt(%.2f,%.2f)", h.alpha, h.beta) }

// Reset implements Forecaster.
func (h *Holt) Reset() { *h = *NewHolt(h.alpha, h.beta) }

// HoltWinters is triple exponential smoothing with additive seasonality —
// the workhorse for the diurnal mobile traffic the overbooking engine rides
// on. Season length is expressed in observation epochs (e.g. 24h of 15-min
// epochs = 96).
type HoltWinters struct {
	alpha, beta, gamma float64
	period             int

	level, trend float64
	season       []float64
	warmup       []float64
	ready        bool
	step         int
}

// NewHoltWinters returns an additive-seasonal Holt-Winters forecaster.
// The first two full periods of observations are used to initialise the
// seasonal components; until then it forecasts like a growing average.
func NewHoltWinters(alpha, beta, gamma float64, period int) *HoltWinters {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 || gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("forecast: Holt-Winters parameters (%v,%v,%v) out of (0,1]", alpha, beta, gamma))
	}
	if period < 2 {
		panic(fmt.Sprintf("forecast: Holt-Winters period %d must be >= 2", period))
	}
	return &HoltWinters{alpha: alpha, beta: beta, gamma: gamma, period: period}
}

// Observe implements Forecaster.
func (hw *HoltWinters) Observe(v float64) {
	if !hw.ready {
		hw.warmup = append(hw.warmup, v)
		if len(hw.warmup) >= 2*hw.period {
			hw.initialise()
		}
		return
	}
	i := hw.step % hw.period
	prevLevel := hw.level
	hw.level = hw.alpha*(v-hw.season[i]) + (1-hw.alpha)*(hw.level+hw.trend)
	hw.trend = hw.beta*(hw.level-prevLevel) + (1-hw.beta)*hw.trend
	hw.season[i] = hw.gamma*(v-hw.level) + (1-hw.gamma)*hw.season[i]
	hw.step++
}

// initialise seeds level, trend and seasonal indices from the two warm-up
// periods using the standard decomposition.
func (hw *HoltWinters) initialise() {
	p := hw.period
	mean1, mean2 := 0.0, 0.0
	for i := 0; i < p; i++ {
		mean1 += hw.warmup[i]
		mean2 += hw.warmup[p+i]
	}
	mean1 /= float64(p)
	mean2 /= float64(p)

	hw.level = mean2
	hw.trend = (mean2 - mean1) / float64(p)
	hw.season = make([]float64, p)
	for i := 0; i < p; i++ {
		hw.season[i] = (hw.warmup[i] - mean1 + hw.warmup[p+i] - mean2) / 2
	}
	hw.ready = true
	hw.step = 0
	hw.warmup = nil
}

// Forecast implements Forecaster.
func (hw *HoltWinters) Forecast() float64 {
	if !hw.ready {
		// Growing average during warm-up.
		if len(hw.warmup) == 0 {
			return 0
		}
		sum := 0.0
		for _, v := range hw.warmup {
			sum += v
		}
		return sum / float64(len(hw.warmup))
	}
	i := hw.step % hw.period
	return hw.level + hw.trend + hw.season[i]
}

// Name implements Forecaster.
func (hw *HoltWinters) Name() string {
	return fmt.Sprintf("holt-winters(%.2f,%.2f,%.2f,p=%d)", hw.alpha, hw.beta, hw.gamma, hw.period)
}

// Ready reports whether the seasonal components are initialised.
func (hw *HoltWinters) Ready() bool { return hw.ready }

// Reset implements Forecaster.
func (hw *HoltWinters) Reset() { *hw = *NewHoltWinters(hw.alpha, hw.beta, hw.gamma, hw.period) }

// Clamp wraps a forecaster and clips its output into [lo, hi]. Demands are
// physical quantities, so negative forecasts (possible with trends) must
// never reach the provisioning logic.
type Clamp struct {
	F      Forecaster
	Lo, Hi float64
}

// NewClamp wraps f to output within [lo, hi]; hi <= 0 means unbounded above.
func NewClamp(f Forecaster, lo, hi float64) *Clamp { return &Clamp{F: f, Lo: lo, Hi: hi} }

// Observe implements Forecaster.
func (c *Clamp) Observe(v float64) { c.F.Observe(v) }

// Forecast implements Forecaster.
func (c *Clamp) Forecast() float64 {
	v := c.F.Forecast()
	if v < c.Lo {
		return c.Lo
	}
	if c.Hi > 0 && v > c.Hi {
		return c.Hi
	}
	return v
}

// Name implements Forecaster.
func (c *Clamp) Name() string { return c.F.Name() + "+clamp" }

// Reset implements Forecaster.
func (c *Clamp) Reset() { c.F.Reset() }

// zTable holds inverse-normal quantiles for the risk percentiles the
// overbooking sweep uses. Keys are the one-sided confidence levels.
var zTable = []struct {
	p float64
	z float64
}{
	{0.50, 0.0000},
	{0.60, 0.2533},
	{0.70, 0.5244},
	{0.75, 0.6745},
	{0.80, 0.8416},
	{0.85, 1.0364},
	{0.90, 1.2816},
	{0.95, 1.6449},
	{0.975, 1.9600},
	{0.99, 2.3263},
	{0.995, 2.5758},
	{0.999, 3.0902},
}

// ZScore returns the standard-normal quantile for one-sided confidence p in
// [0.5, 0.999], linearly interpolating the table. Out-of-range values clamp.
func ZScore(p float64) float64 {
	if p <= zTable[0].p {
		return zTable[0].z
	}
	last := zTable[len(zTable)-1]
	if p >= last.p {
		return last.z
	}
	for i := 1; i < len(zTable); i++ {
		if p <= zTable[i].p {
			lo, hi := zTable[i-1], zTable[i]
			frac := (p - lo.p) / (hi.p - lo.p)
			return lo.z + frac*(hi.z-lo.z)
		}
	}
	return last.z
}

// Provisioner turns raw forecasts into the capacity actually reserved for a
// slice: forecast + z(risk)·σ(residuals), clipped to [floor, contract].
// risk=1.0 degenerates to peak (SLA) provisioning — the no-overbooking
// baseline; lower risk overbooks harder.
type Provisioner struct {
	F Forecaster
	// Risk is the one-sided confidence that provisioned >= actual demand.
	// 1.0 (or anything >= 0.9995) disables overbooking entirely.
	Risk float64
	// FloorMbps is the minimum reservation (keeps control traffic alive).
	FloorMbps float64

	resid *Residuals
	last  float64 // last forecast, to compute residual on next observe
	seen  bool
}

// NewProvisioner wraps f with a residual-tracking quantile margin.
func NewProvisioner(f Forecaster, risk, floorMbps float64) *Provisioner {
	return &Provisioner{F: f, Risk: risk, FloorMbps: floorMbps, resid: NewResiduals(64)}
}

// Observe feeds the measured demand and updates the residual distribution.
func (p *Provisioner) Observe(demand float64) {
	if p.seen {
		p.resid.Add(demand - p.last)
	}
	p.F.Observe(demand)
	p.last = p.F.Forecast()
	p.seen = true
}

// Provision returns the Mbps to reserve for the next epoch under contract
// contractMbps. PeakProvisioning (risk >= 0.9995) always returns the
// contract.
func (p *Provisioner) Provision(contractMbps float64) float64 {
	if p.Risk >= 0.9995 || !p.seen {
		return contractMbps
	}
	v := p.F.Forecast() + ZScore(p.Risk)*p.resid.StdDev()
	if v < p.FloorMbps {
		v = p.FloorMbps
	}
	if v > contractMbps {
		v = contractMbps
	}
	return v
}

// Margin returns the current safety margin in Mbps.
func (p *Provisioner) Margin() float64 {
	return ZScore(p.Risk) * p.resid.StdDev()
}

// Observed reports whether any demand sample has been fed yet. Admission
// control uses it to fall back to the a-priori load estimate for slices
// without history.
func (p *Provisioner) Observed() bool { return p.seen }

// Residuals tracks a sliding window of forecast errors and exposes their
// standard deviation (used for the Gaussian provisioning margin).
type Residuals struct {
	buf  []float64
	idx  int
	full bool
}

// NewResiduals returns a tracker over a window of size errors.
func NewResiduals(size int) *Residuals {
	if size < 2 {
		size = 2
	}
	return &Residuals{buf: make([]float64, size)}
}

// Add records one forecast error.
func (r *Residuals) Add(e float64) {
	r.buf[r.idx] = e
	r.idx++
	if r.idx == len(r.buf) {
		r.idx = 0
		r.full = true
	}
}

// n returns the number of valid samples.
func (r *Residuals) n() int {
	if r.full {
		return len(r.buf)
	}
	return r.idx
}

// StdDev returns the sample standard deviation of the recorded errors
// (0 with fewer than 2 samples).
func (r *Residuals) StdDev() float64 {
	n := r.n()
	if n < 2 {
		return 0
	}
	mean := 0.0
	for i := 0; i < n; i++ {
		mean += r.buf[i]
	}
	mean /= float64(n)
	ss := 0.0
	for i := 0; i < n; i++ {
		d := r.buf[i] - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}
