package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNaivePredictsLast(t *testing.T) {
	n := NewNaive()
	if n.Forecast() != 0 {
		t.Fatal("empty naive forecast non-zero")
	}
	n.Observe(5)
	n.Observe(7)
	if n.Forecast() != 7 {
		t.Fatalf("naive = %v", n.Forecast())
	}
	n.Reset()
	if n.Forecast() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestMovingAverageWindow(t *testing.T) {
	m := NewMovingAverage(3)
	for _, v := range []float64{3, 6, 9} {
		m.Observe(v)
	}
	if got := m.Forecast(); got != 6 {
		t.Fatalf("ma = %v, want 6", got)
	}
	m.Observe(12) // window now {6,9,12}
	if got := m.Forecast(); got != 9 {
		t.Fatalf("ma after slide = %v, want 9", got)
	}
}

func TestMovingAveragePartialWindow(t *testing.T) {
	m := NewMovingAverage(10)
	m.Observe(4)
	m.Observe(8)
	if got := m.Forecast(); got != 6 {
		t.Fatalf("partial ma = %v, want 6", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 200; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Forecast()-42) > 1e-9 {
		t.Fatalf("ewma on constant = %v", e.Forecast())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v accepted", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	h := NewHolt(0.5, 0.5)
	// y = 10 + 3t: after training, one-step forecast should be near next value.
	for i := 0; i < 100; i++ {
		h.Observe(10 + 3*float64(i))
	}
	want := 10 + 3*100.0
	if got := h.Forecast(); math.Abs(got-want) > 0.5 {
		t.Fatalf("holt forecast %v, want ~%v", got, want)
	}
}

func TestHoltWintersLearnsSeasonality(t *testing.T) {
	const period = 24
	hw := NewHoltWinters(0.3, 0.05, 0.4, period)
	season := func(i int) float64 {
		return 100 + 40*math.Sin(2*math.Pi*float64(i%period)/period)
	}
	// Train 10 full periods.
	for i := 0; i < 10*period; i++ {
		hw.Observe(season(i))
	}
	if !hw.Ready() {
		t.Fatal("Holt-Winters not initialised after 10 periods")
	}
	// One-step forecasts over the next period should track the seasonal shape.
	var acc Accuracy
	for i := 10 * period; i < 11*period; i++ {
		acc.Record(hw.Forecast(), season(i))
		hw.Observe(season(i))
	}
	if acc.RMSE() > 3 {
		t.Fatalf("seasonal RMSE %.3f too high", acc.RMSE())
	}
}

func TestHoltWintersBeatsNaiveOnSeasonal(t *testing.T) {
	const period = 24
	rng := rand.New(rand.NewSource(42))
	series := make([]float64, 30*period)
	for i := range series {
		series[i] = 100 + 40*math.Sin(2*math.Pi*float64(i%period)/period) + rng.NormFloat64()*3
	}
	res := Evaluate(series, 5*period,
		NewHoltWinters(0.3, 0.05, 0.4, period), NewNaive())
	hw, naive := res[0].Accuracy, res[1].Accuracy
	if hw.RMSE() >= naive.RMSE() {
		t.Fatalf("holt-winters RMSE %.3f not better than naive %.3f", hw.RMSE(), naive.RMSE())
	}
}

func TestHoltWintersPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("period=1 accepted")
		}
	}()
	NewHoltWinters(0.3, 0.1, 0.1, 1)
}

func TestClampBounds(t *testing.T) {
	h := NewHolt(0.9, 0.9)
	// Strong downward trend drives raw forecast negative.
	for v := 100.0; v > 0; v -= 20 {
		h.Observe(v)
	}
	c := NewClamp(h, 0, 50)
	if got := c.Forecast(); got < 0 {
		t.Fatalf("clamped forecast %v < 0", got)
	}
	e := NewEWMA(1.0)
	e.Observe(500)
	c2 := NewClamp(e, 0, 50)
	if got := c2.Forecast(); got != 50 {
		t.Fatalf("upper clamp = %v", got)
	}
}

func TestZScoreMonotoneAndAnchored(t *testing.T) {
	if z := ZScore(0.5); z != 0 {
		t.Fatalf("z(0.5)=%v", z)
	}
	if z := ZScore(0.95); math.Abs(z-1.6449) > 1e-4 {
		t.Fatalf("z(0.95)=%v", z)
	}
	prev := -1.0
	for p := 0.5; p <= 0.999; p += 0.01 {
		z := ZScore(p)
		if z < prev {
			t.Fatalf("ZScore not monotone at %v", p)
		}
		prev = z
	}
	// Clamping outside the table.
	if ZScore(0.2) != 0 || ZScore(0.9999) != ZScore(0.999) {
		t.Fatal("ZScore clamp broken")
	}
}

func TestResidualsStdDev(t *testing.T) {
	r := NewResiduals(8)
	if r.StdDev() != 0 {
		t.Fatal("stddev of empty residuals")
	}
	for _, e := range []float64{2, -2, 2, -2} {
		r.Add(e)
	}
	// Sample stddev of {2,-2,2,-2} = sqrt(16/3) ≈ 2.309.
	if got := r.StdDev(); math.Abs(got-2.3094) > 1e-3 {
		t.Fatalf("stddev %v", got)
	}
}

func TestProvisionerPeakRiskReturnsContract(t *testing.T) {
	p := NewProvisioner(NewEWMA(0.3), 1.0, 1)
	for i := 0; i < 50; i++ {
		p.Observe(10)
	}
	if got := p.Provision(100); got != 100 {
		t.Fatalf("peak provisioning = %v, want contract 100", got)
	}
}

func TestProvisionerOverbooksBelowContract(t *testing.T) {
	p := NewProvisioner(NewEWMA(0.3), 0.95, 1)
	for i := 0; i < 100; i++ {
		p.Observe(10)
	}
	got := p.Provision(100)
	if got >= 100 {
		t.Fatalf("overbooked provision %v not below contract", got)
	}
	if got < 10 {
		t.Fatalf("provision %v below steady demand", got)
	}
}

func TestProvisionerRespectsFloorAndContract(t *testing.T) {
	p := NewProvisioner(NewEWMA(0.5), 0.9, 5)
	p.Observe(0.1)
	p.Observe(0.1)
	if got := p.Provision(100); got < 5 {
		t.Fatalf("provision %v below floor", got)
	}
	// Huge demand: clipped at contract.
	for i := 0; i < 20; i++ {
		p.Observe(1e6)
	}
	if got := p.Provision(100); got != 100 {
		t.Fatalf("provision %v exceeds contract", got)
	}
}

func TestProvisionerBeforeDataReturnsContract(t *testing.T) {
	p := NewProvisioner(NewEWMA(0.5), 0.9, 0)
	if got := p.Provision(77); got != 77 {
		t.Fatalf("cold-start provision %v, want contract", got)
	}
}

func TestAccuracyMetrics(t *testing.T) {
	var a Accuracy
	a.Record(10, 8)  // err +2
	a.Record(6, 10)  // err -4
	a.Record(10, 10) // err 0
	if a.N() != 3 {
		t.Fatalf("n=%d", a.N())
	}
	if got := a.MAE(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("MAE %v", got)
	}
	if got := a.RMSE(); math.Abs(got-math.Sqrt(20.0/3)) > 1e-9 {
		t.Fatalf("RMSE %v", got)
	}
	if got := a.Bias(); math.Abs(got-(-2.0/3)) > 1e-9 {
		t.Fatalf("bias %v", got)
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("max %v", a.MaxAbs())
	}
	// MAPE: |2/8| + |4/10| + 0 over 3 = 23.33%
	if got := a.MAPE(); math.Abs(got-100*(0.25+0.4)/3) > 1e-9 {
		t.Fatalf("MAPE %v", got)
	}
}

func TestMAPESkipsZeroActuals(t *testing.T) {
	var a Accuracy
	a.Record(5, 0)
	if a.MAPE() != 0 {
		t.Fatalf("MAPE with zero actual = %v", a.MAPE())
	}
}

func TestEvaluateRanks(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	// On a pure trend Holt must beat naive; ranking should reflect it.
	res := RankByRMSE(Evaluate(series, 10, NewNaive(), NewHolt(0.5, 0.5)))
	if res[0].Name != "holt(0.50,0.50)" {
		t.Fatalf("ranking = %v, %v", res[0].Name, res[1].Name)
	}
}

// Property: provisioned capacity never exceeds the contract and never drops
// below the floor (when floor <= contract), for any demand sequence and risk.
func TestPropertyProvisionBounds(t *testing.T) {
	f := func(demands []uint16, riskPct uint8) bool {
		risk := 0.5 + float64(riskPct%50)/100.0
		const contract, floor = 500.0, 2.0
		p := NewProvisioner(NewEWMA(0.3), risk, floor)
		for _, d := range demands {
			p.Observe(float64(d % 1000))
			got := p.Provision(contract)
			if got > contract+1e-9 || got < floor-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EWMA forecast always lies within the min/max of observations.
func TestPropertyEWMAWithinRange(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		e := NewEWMA(0.4)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v)
			e.Observe(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		fc := e.Forecast()
		return fc >= lo-1e-9 && fc <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
