package forecast

import "fmt"

// SeasonalNaive predicts the value observed exactly one season ago — the
// standard seasonal baseline: any seasonal model that cannot beat it is not
// learning the season. Before a full period of history it behaves like the
// plain naive forecaster.
type SeasonalNaive struct {
	period int
	buf    []float64
	idx    int
	n      int
	last   float64
}

// NewSeasonalNaive returns a seasonal-naive forecaster with the given
// period (in observation epochs, >= 2).
func NewSeasonalNaive(period int) *SeasonalNaive {
	if period < 2 {
		panic(fmt.Sprintf("forecast: seasonal-naive period %d must be >= 2", period))
	}
	return &SeasonalNaive{period: period, buf: make([]float64, period)}
}

// Observe implements Forecaster.
func (sn *SeasonalNaive) Observe(v float64) {
	sn.buf[sn.idx] = v
	sn.idx = (sn.idx + 1) % sn.period
	sn.n++
	sn.last = v
}

// Forecast implements Forecaster. The next epoch's seasonal slot is the
// current write index once a full period has been seen.
func (sn *SeasonalNaive) Forecast() float64 {
	if sn.n == 0 {
		return 0
	}
	if sn.n < sn.period {
		return sn.last
	}
	return sn.buf[sn.idx]
}

// Name implements Forecaster.
func (sn *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive(p=%d)", sn.period) }

// Reset implements Forecaster.
func (sn *SeasonalNaive) Reset() { *sn = *NewSeasonalNaive(sn.period) }
