package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func TestSeasonalNaivePredictsOnePeriodBack(t *testing.T) {
	sn := NewSeasonalNaive(4)
	series := []float64{10, 20, 30, 40, 11, 21, 31, 41}
	for i, v := range series {
		if i >= 4 {
			// Forecast before observing slot i must be series[i-4].
			if got := sn.Forecast(); got != series[i-4] {
				t.Fatalf("at %d forecast %v, want %v", i, got, series[i-4])
			}
		}
		sn.Observe(v)
	}
}

func TestSeasonalNaiveWarmupFallsBackToNaive(t *testing.T) {
	sn := NewSeasonalNaive(8)
	if sn.Forecast() != 0 {
		t.Fatal("empty forecast")
	}
	sn.Observe(5)
	sn.Observe(7)
	if got := sn.Forecast(); got != 7 {
		t.Fatalf("warm-up forecast %v, want last value 7", got)
	}
}

func TestSeasonalNaivePanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("period 1 accepted")
		}
	}()
	NewSeasonalNaive(1)
}

func TestSeasonalNaiveReset(t *testing.T) {
	sn := NewSeasonalNaive(3)
	for _, v := range []float64{1, 2, 3, 4} {
		sn.Observe(v)
	}
	sn.Reset()
	if sn.Forecast() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHoltWintersBeatsSeasonalNaiveWithNoise(t *testing.T) {
	const period = 24
	rng := rand.New(rand.NewSource(9))
	series := make([]float64, 40*period)
	for i := range series {
		series[i] = 100 + 40*math.Sin(2*math.Pi*float64(i%period)/period) + rng.NormFloat64()*5
	}
	res := Evaluate(series, 5*period,
		NewHoltWinters(0.2, 0.02, 0.2, period),
		NewSeasonalNaive(period),
		NewNaive(),
	)
	hw, snv, naive := res[0].Accuracy, res[1].Accuracy, res[2].Accuracy
	// Seasonal-naive must beat plain naive on seasonal data.
	if snv.RMSE() >= naive.RMSE() {
		t.Fatalf("seasonal-naive %.2f not better than naive %.2f", snv.RMSE(), naive.RMSE())
	}
	// Holt-Winters averages out noise, so it must beat seasonal-naive
	// (whose error is ~sqrt(2)·σ on pure season+noise).
	if hw.RMSE() >= snv.RMSE() {
		t.Fatalf("holt-winters %.2f not better than seasonal-naive %.2f", hw.RMSE(), snv.RMSE())
	}
}
