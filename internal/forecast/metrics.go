package forecast

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy accumulates one-step-ahead forecast accuracy statistics. Feed it
// (predicted, actual) pairs with Record and read the standard error metrics
// used by the D3 experiment table.
type Accuracy struct {
	n       int
	sumAbs  float64
	sumSq   float64
	sumPct  float64
	nPct    int // samples where actual != 0, for MAPE
	maxErr  float64
	sumBias float64
}

// Record adds one (predicted, actual) pair.
func (a *Accuracy) Record(predicted, actual float64) {
	e := predicted - actual
	a.n++
	a.sumAbs += math.Abs(e)
	a.sumSq += e * e
	a.sumBias += e
	if math.Abs(e) > a.maxErr {
		a.maxErr = math.Abs(e)
	}
	if actual != 0 {
		a.sumPct += math.Abs(e / actual)
		a.nPct++
	}
}

// N returns the number of recorded pairs.
func (a *Accuracy) N() int { return a.n }

// MAE returns the mean absolute error.
func (a *Accuracy) MAE() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumAbs / float64(a.n)
}

// RMSE returns the root mean square error.
func (a *Accuracy) RMSE() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.sumSq / float64(a.n))
}

// MAPE returns the mean absolute percentage error over non-zero actuals,
// in percent.
func (a *Accuracy) MAPE() float64 {
	if a.nPct == 0 {
		return 0
	}
	return 100 * a.sumPct / float64(a.nPct)
}

// Bias returns the mean signed error (positive = over-forecasting).
func (a *Accuracy) Bias() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumBias / float64(a.n)
}

// MaxAbs returns the largest absolute error seen.
func (a *Accuracy) MaxAbs() float64 { return a.maxErr }

// String renders the metrics as one experiment-table row.
func (a *Accuracy) String() string {
	return fmt.Sprintf("n=%d MAE=%.3f RMSE=%.3f MAPE=%.1f%% bias=%+.3f max=%.3f",
		a.n, a.MAE(), a.RMSE(), a.MAPE(), a.Bias(), a.MaxAbs())
}

// Evaluate replays a series through a fresh copy of each forecaster and
// returns per-forecaster accuracy, skipping the first warmup samples from
// scoring (they still train the model). It is the engine behind experiment
// D3.
func Evaluate(series []float64, warmup int, forecasters ...Forecaster) []EvalResult {
	results := make([]EvalResult, 0, len(forecasters))
	for _, f := range forecasters {
		f.Reset()
		var acc Accuracy
		for i, v := range series {
			if i >= warmup {
				acc.Record(f.Forecast(), v)
			}
			f.Observe(v)
		}
		results = append(results, EvalResult{Name: f.Name(), Accuracy: acc})
	}
	return results
}

// EvalResult pairs a forecaster name with its measured accuracy.
type EvalResult struct {
	Name     string
	Accuracy Accuracy
}

// RankByRMSE sorts results ascending by RMSE (best first) in place and
// returns them.
func RankByRMSE(rs []EvalResult) []EvalResult {
	sort.SliceStable(rs, func(i, j int) bool {
		return rs[i].Accuracy.RMSE() < rs[j].Accuracy.RMSE()
	})
	return rs
}
