// First-class fault injection for the domain controllers. PR 2 proved the
// transaction engine's rollback with an ad-hoc test-local Domain wrapper
// hooked through Set.Wrap; chaos testing needs the same capability as a
// runtime-armable part of every controller, so the radio, transport, cloud
// and MEC controllers all embed a FaultArm and consult it at the top of
// their transactional verbs. Arming and clearing faults is cheap and safe
// for concurrent use; a disarmed arm costs one atomic load per verb.
//
// Injected failures are business outcomes, not crashes: a reserve fault
// surfaces as a typed *slice.RejectionCause (RejectFaultInjected) and a
// commit fault as an error that the engine classifies under the same code —
// so chaos scenarios can assert, end to end, that scripted faults reject
// slices through the normal taxonomy and roll back leak-free.
package ctrl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/slice"
)

// FaultStage selects the transactional verb an injected fault fires on.
type FaultStage int

// The injectable stages.
const (
	// FaultReserve fails Reserve before the substrate is touched.
	FaultReserve FaultStage = iota
	// FaultCommit fails Commit (after every domain reserved), exercising
	// the engine's full reverse-order rollback.
	FaultCommit
	// FaultResize fails Resize, exercising the epoch loop's restore path.
	FaultResize
)

// String returns the stage name.
func (s FaultStage) String() string {
	switch s {
	case FaultReserve:
		return "reserve"
	case FaultCommit:
		return "commit"
	case FaultResize:
		return "resize"
	default:
		return fmt.Sprintf("FaultStage(%d)", int(s))
	}
}

// Fault arms one failure mode on a controller.
type Fault struct {
	// Stage is the verb that fails.
	Stage FaultStage
	// Remaining is how many times the fault fires before disarming itself.
	// <= 0 means it stays armed until ClearFaults.
	Remaining int
	// Detail is appended to the injected error text (defaults to
	// "injected fault").
	Detail string
}

// FaultInjector is the optional controller capability chaos timelines drive:
// a domain that can be armed, at runtime, to fail its transactional verbs.
// All four built-in controllers implement it (via FaultArm). Discover it
// with a type assertion on a Domain — a capability query, exactly like
// LatencyContributor, never a domain-identity branch.
type FaultInjector interface {
	// InjectFault arms f, replacing any fault already armed on f.Stage.
	InjectFault(f Fault)
	// ClearFaults disarms every stage.
	ClearFaults()
}

// FaultArm is the embeddable fault state. The zero value is disarmed and
// ready to use. Controllers call fire() at the top of each verb; armed is
// an atomic fast path so the disarmed hot path never takes the mutex.
type FaultArm struct {
	armed atomic.Bool
	mu    sync.Mutex
	byStg map[FaultStage]*Fault
}

// InjectFault implements FaultInjector.
func (a *FaultArm) InjectFault(f Fault) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.byStg == nil {
		a.byStg = make(map[FaultStage]*Fault)
	}
	cp := f
	a.byStg[f.Stage] = &cp
	a.armed.Store(true)
}

// ClearFaults implements FaultInjector.
func (a *FaultArm) ClearFaults() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.byStg = nil
	a.armed.Store(false)
}

// fire reports whether an armed fault on stage should trigger now, consuming
// one shot from a counted fault.
func (a *FaultArm) fire(stage FaultStage) (string, bool) {
	if !a.armed.Load() {
		return "", false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f, ok := a.byStg[stage]
	if !ok {
		return "", false
	}
	if f.Remaining > 0 {
		f.Remaining--
		if f.Remaining == 0 {
			delete(a.byStg, stage)
			if len(a.byStg) == 0 {
				a.armed.Store(false)
			}
		}
	}
	detail := f.Detail
	if detail == "" {
		detail = "injected fault"
	}
	return detail, true
}

// reserveFault returns the typed rejection for an armed reserve fault on the
// named domain, or nil.
func (a *FaultArm) reserveFault(domain string) *slice.RejectionCause {
	if detail, ok := a.fire(FaultReserve); ok {
		return slice.Rejectf(slice.RejectFaultInjected, domain, "%s: %s (reserve)", domain, detail)
	}
	return nil
}

// commitFault returns the error for an armed commit fault, or nil. The error
// carries a typed cause so the engine's classification preserves the
// fault-injected code.
func (a *FaultArm) commitFault(domain string) error {
	if detail, ok := a.fire(FaultCommit); ok {
		return slice.Rejectf(slice.RejectFaultInjected, domain, "%s: %s (commit)", domain, detail)
	}
	return nil
}

// resizeFault returns the error for an armed resize fault, or nil.
func (a *FaultArm) resizeFault(domain string) error {
	if detail, ok := a.fire(FaultResize); ok {
		return fmt.Errorf("%s: %s (resize)", domain, detail)
	}
	return nil
}

// Injector returns the domain's fault-injection capability, unwrapping any
// Set.Wrap decoration is the caller's concern — chaos drives the raw
// controllers from the Set directly.
func Injector(d Controller) (FaultInjector, bool) {
	fi, ok := d.(FaultInjector)
	return fi, ok
}
