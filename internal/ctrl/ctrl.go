// Package ctrl implements the hierarchical domain controllers of the demo:
// "Our end-to-end orchestration solution is hierarchically placed on top of
// three controllers separately managing the radio, transport and core
// network domains. The controllers dynamically issue resource assignments
// as well as implement monitoring activities on the respective resources
// utilization."
//
// Each controller wraps its substrate, exposes the reserve/resize/release
// primitives the orchestrator drives, and pushes utilization telemetry into
// a monitor.Store — the "gathered monitoring information promptly fed to
// the end-to-end orchestrator". Beyond the three controllers of the demo,
// every controller also implements the uniform transactional Domain surface
// (domain.go) the orchestrator's generic engine drives, and additional
// domains (the MEC compute controller) plug in through Set.Extra without
// touching the core.
//
// All controller methods are safe for concurrent use: the sharded
// orchestrator core installs independent slices in parallel (and runs the
// cloud deployment concurrently with the radio/transport chain within one
// request), so every reserve/resize/release primitive synchronizes on its
// substrate's internal locks, and hot read paths (path feasibility, slice
// path lookups, utilization) take shared read locks. Multi-step primitives
// (ReserveSlice across eNBs, SetupPaths across paths) are all-or-nothing
// per call but not atomic against concurrent callers — the orchestrator's
// capacity ledger and shard serialization provide admission-level
// consistency above them.
package ctrl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/epc"
	"repro/internal/monitor"
	"repro/internal/ran"
	"repro/internal/slice"
	"repro/internal/transport"
)

// Controller is the common surface of the three domain controllers.
type Controller interface {
	// Domain names the managed domain: "ran", "transport" or "cloud".
	Domain() string
	// Utilization reports the domain's primary-resource utilization [0,1].
	Utilization() float64
	// PushTelemetry records domain metrics into the store at time now.
	PushTelemetry(store *monitor.Store, now time.Time)
}

// RANController manages the radio domain: PLMN-keyed PRB reservations
// spread across all eNBs (the slice's UEs camp on both testbed cells).
// The embedded FaultArm makes it a ctrl.FaultInjector for chaos timelines.
type RANController struct {
	FaultArm
	net *ran.Network
	// cellCache memoizes the sorted eNB list keyed by the RAN topology
	// version, so the hot reserve/resize/schedule paths never rebuild it.
	cellCache atomic.Pointer[ranCellCache]
}

// ranCellCache is one immutable snapshot of the sorted eNB list.
type ranCellCache struct {
	ver  uint64
	enbs []*ran.ENB
}

// Cells returns the sorted eNB list, cached until the eNB set changes. The
// returned slice is shared and must be treated as read-only.
func (c *RANController) Cells() []*ran.ENB {
	ver := c.net.Version()
	if e := c.cellCache.Load(); e != nil && e.ver == ver {
		return e.enbs
	}
	enbs := c.net.All()
	c.cellCache.Store(&ranCellCache{ver: ver, enbs: enbs})
	return enbs
}

// NewRANController wraps the RAN.
func NewRANController(net *ran.Network) *RANController { return &RANController{net: net} }

// Domain implements Controller.
func (c *RANController) Domain() string { return "ran" }

// Network exposes the underlying RAN (read-mostly; used by telemetry and
// experiments).
func (c *RANController) Network() *ran.Network { return c.net }

// RadioReservation reports the result of a slice's radio installation.
type RadioReservation struct {
	// PRBs per eNB name.
	PRBs map[string]int
	// TotalMbps is the throughput the reserved PRBs sustain at mean CQI.
	TotalMbps float64
}

// ReserveSlice reserves PRBs for mbps of aggregate throughput, split evenly
// across eNBs. On any per-eNB failure everything is rolled back, so the
// radio domain never holds a partial slice.
func (c *RANController) ReserveSlice(p slice.PLMN, mbps float64) (RadioReservation, error) {
	res := RadioReservation{PRBs: make(map[string]int)}
	if err := c.reserveSliceInto(p, mbps, &res); err != nil {
		return RadioReservation{}, err
	}
	return res, nil
}

// reserveSliceInto is ReserveSlice writing into a caller-owned reservation
// (res.PRBs must be a non-nil empty map) so pooled grants can reuse their
// map across slices.
func (c *RANController) reserveSliceInto(p slice.PLMN, mbps float64, res *RadioReservation) error {
	enbs := c.Cells()
	if len(enbs) == 0 {
		return errors.New("ctrl: RAN has no eNBs")
	}
	share := mbps / float64(len(enbs))
	res.TotalMbps = 0
	for i, e := range enbs {
		prbs := e.PRBsForThroughput(share)
		if prbs == 0 {
			prbs = 1 // every cell keeps the slice schedulable
		}
		if err := e.Reserve(p, prbs); err != nil {
			for j := 0; j < i; j++ {
				enbs[j].Release(p)
			}
			return fmt.Errorf("ctrl: radio reserve on %s: %w", e.Name(), err)
		}
		res.PRBs[e.Name()] = prbs
		res.TotalMbps += e.ThroughputForPRBs(prbs)
	}
	return nil
}

// ResizeSlice adjusts the PLMN's reservations for a new aggregate
// throughput. Failures on one eNB restore the previous sizes everywhere.
func (c *RANController) ResizeSlice(p slice.PLMN, mbps float64) (RadioReservation, error) {
	res := RadioReservation{PRBs: make(map[string]int)}
	if err := c.resizeSliceInto(p, mbps, &res); err != nil {
		return RadioReservation{}, err
	}
	return res, nil
}

// resizeSliceInto is ResizeSlice writing into a caller-owned reservation
// (res.PRBs must be a non-nil empty map). The previous per-eNB sizes used
// for rollback live in a small stack buffer at common cell counts.
func (c *RANController) resizeSliceInto(p slice.PLMN, mbps float64, res *RadioReservation) error {
	enbs := c.Cells()
	if len(enbs) == 0 {
		return errors.New("ctrl: RAN has no eNBs")
	}
	share := mbps / float64(len(enbs))
	var prevBuf [8]int
	prev := prevBuf[:0]
	for _, e := range enbs {
		n, ok := e.Reservation(p)
		if !ok {
			return fmt.Errorf("ctrl: resize: %s has no reservation for %s", e.Name(), p)
		}
		prev = append(prev, n)
	}
	res.TotalMbps = 0
	for i, e := range enbs {
		prbs := e.PRBsForThroughput(share)
		if prbs == 0 {
			prbs = 1
		}
		if err := e.Resize(p, prbs); err != nil {
			for j := 0; j < i; j++ {
				enbs[j].Resize(p, prev[j])
			}
			return fmt.Errorf("ctrl: radio resize on %s: %w", e.Name(), err)
		}
		res.PRBs[e.Name()] = prbs
		res.TotalMbps += e.ThroughputForPRBs(prbs)
	}
	return nil
}

// ReleaseSlice drops the PLMN from every eNB. Idempotent.
func (c *RANController) ReleaseSlice(p slice.PLMN) {
	for _, e := range c.Cells() {
		e.Release(p)
	}
}

// ScheduleEpoch distributes per-slice demand evenly over the eNBs, runs
// each cell's scheduler and returns the summed served throughput per PLMN
// plus the mean cell utilization.
//
// It is the serial heart of the control epoch (core's phase P2): the
// orchestrator calls it exactly once per epoch, from one goroutine, while
// the per-slice forecast/provision work runs in the parallel phase around
// it. The per-eNB demand split is built once and shared across cells (each
// cell only reads it), so the pass is O(slices + slices·cells-in-scheduler)
// rather than re-building a map per cell.
func (c *RANController) ScheduleEpoch(demand map[slice.PLMN]float64, shareUnused bool) (map[slice.PLMN]float64, float64) {
	enbs := c.Cells()
	served := make(map[slice.PLMN]float64, len(demand))
	if len(enbs) == 0 {
		return served, 0
	}
	// One shared per-cell demand map: every slice's UEs camp on all cells,
	// so the per-cell share is the same everywhere.
	local := make(ran.DemandMbps, len(demand))
	for p, d := range demand {
		local[p] = d / float64(len(enbs))
	}
	utilSum := 0.0
	for _, e := range enbs {
		s, u := e.ScheduleEpoch(local, shareUnused)
		for p, v := range s {
			served[p] += v
		}
		utilSum += u
	}
	return served, utilSum / float64(len(enbs))
}

// Utilization implements Controller (mean reserved-PRB fraction).
func (c *RANController) Utilization() float64 {
	enbs := c.Cells()
	if len(enbs) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range enbs {
		sum += e.Utilization()
	}
	return sum / float64(len(enbs))
}

// PushTelemetry implements Controller.
func (c *RANController) PushTelemetry(store *monitor.Store, now time.Time) {
	store.Record(monitor.DomainMetric("ran", "utilization"), now, c.Utilization())
	for _, e := range c.Cells() {
		store.Record(monitor.DomainMetric("ran", e.Name()+"/free_prbs"), now, float64(e.FreePRBs()))
	}
}

// TransportController manages path setup between the eNBs and the data
// centers through the programmable switches.
type TransportController struct {
	FaultArm
	net *transport.Network

	mu      sync.RWMutex
	bySlice map[slice.ID][]string // path IDs per slice

	// enbCache memoizes the sorted eNB transport-port list keyed by the
	// topology version, so path setup and feasibility checks never rebuild
	// it per request.
	enbCache atomic.Pointer[nodeListCache]
}

// nodeListCache is one immutable snapshot of a sorted node-name list.
type nodeListCache struct {
	ver   uint64
	names []string
}

// enbNodes returns the sorted eNB node names, cached until the topology
// changes. The returned slice is shared and must be treated as read-only.
func (c *TransportController) enbNodes() []string {
	ver := c.net.TopoVersion()
	if e := c.enbCache.Load(); e != nil && e.ver == ver {
		return e.names
	}
	names := c.net.NodesOfKind(transport.KindENB)
	c.enbCache.Store(&nodeListCache{ver: ver, names: names})
	return names
}

// NewTransportController wraps the transport network.
func NewTransportController(net *transport.Network) *TransportController {
	return &TransportController{net: net, bySlice: make(map[slice.ID][]string)}
}

// Domain implements Controller.
func (c *TransportController) Domain() string { return "transport" }

// Network exposes the underlying topology.
func (c *TransportController) Network() *transport.Network { return c.net }

// PathSetup reports the result of a slice's transport installation.
type PathSetup struct {
	PathIDs []string
	// WorstDelayMs is the largest per-path delay — the number checked
	// against the slice latency budget.
	WorstDelayMs float64
}

// SetupPaths reserves one path from every eNB transport port to the chosen
// data-center gateway, each sized to the eNB's share of the slice
// throughput. All-or-nothing.
func (c *TransportController) SetupPaths(id slice.ID, dc string, mbps, maxDelayMs float64) (PathSetup, error) {
	var setup PathSetup
	if err := c.setupPathsInto(id, dc, mbps, maxDelayMs, &setup); err != nil {
		return PathSetup{}, err
	}
	return setup, nil
}

// setupPathsInto is SetupPaths writing into a caller-owned setup (its
// PathIDs backing array is reused) so pooled grants can recycle it.
func (c *TransportController) setupPathsInto(id slice.ID, dc string, mbps, maxDelayMs float64, setup *PathSetup) error {
	enbs := c.enbNodes()
	if len(enbs) == 0 {
		return errors.New("ctrl: transport has no eNB nodes")
	}
	share := mbps / float64(len(enbs))
	setup.PathIDs = setup.PathIDs[:0]
	setup.WorstDelayMs = 0
	for _, enb := range enbs {
		pid := string(id) + "/" + enb + "->" + dc
		r, err := c.net.ReservePath(pid, transport.PathRequest{
			From: enb, To: dc, MinMbps: share, MaxDelayMs: maxDelayMs,
		})
		if err != nil {
			for _, done := range setup.PathIDs { // roll back: all paths or none
				c.net.Release(done)
			}
			setup.PathIDs = setup.PathIDs[:0]
			return fmt.Errorf("ctrl: path %s->%s: %w", enb, dc, err)
		}
		setup.PathIDs = append(setup.PathIDs, pid)
		if r.DelayMs > setup.WorstDelayMs {
			setup.WorstDelayMs = r.DelayMs
		}
	}
	c.mu.Lock()
	c.bySlice[id] = append([]string(nil), setup.PathIDs...)
	c.mu.Unlock()
	return nil
}

// ResizePaths changes every path of the slice to the new aggregate
// bandwidth. On failure, previously resized paths are restored.
func (c *TransportController) ResizePaths(id slice.ID, mbps float64) error {
	c.mu.RLock()
	pids := append([]string(nil), c.bySlice[id]...)
	c.mu.RUnlock()
	if len(pids) == 0 {
		return fmt.Errorf("ctrl: slice %s has no transport paths", id)
	}
	share := mbps / float64(len(pids))
	prev := make([]float64, len(pids))
	for i, pid := range pids {
		r, ok := c.net.Reservation(pid)
		if !ok {
			return fmt.Errorf("ctrl: reservation %s vanished", pid)
		}
		prev[i] = r.Mbps
	}
	for i, pid := range pids {
		if err := c.net.Resize(pid, share); err != nil {
			for j := 0; j < i; j++ {
				c.net.Resize(pids[j], prev[j])
			}
			return fmt.Errorf("ctrl: transport resize %s: %w", pid, err)
		}
	}
	return nil
}

// ReleasePaths frees every path of the slice. Idempotent.
func (c *TransportController) ReleasePaths(id slice.ID) {
	c.mu.Lock()
	pids := c.bySlice[id]
	delete(c.bySlice, id)
	c.mu.Unlock()
	for _, pid := range pids {
		c.net.Release(pid)
	}
}

// ImportPaths restores the slice→path-ID index after crash recovery. The
// underlying transport reservations are re-imposed separately (recorded
// hops at recorded bandwidth); this only rebuilds the controller's lookup
// table that resize and release consult.
func (c *TransportController) ImportPaths(id slice.ID, pids []string) {
	c.mu.Lock()
	c.bySlice[id] = append([]string(nil), pids...)
	c.mu.Unlock()
}

// FeasibleDelay returns the minimum worst-case eNB→DC delay achievable for
// the bandwidth, without reserving — admission control's transport check.
// It uses the delay-only path computation, so a feasibility probe never
// materialises hop lists.
func (c *TransportController) FeasibleDelay(dc string, mbps float64) (float64, error) {
	enbs := c.enbNodes()
	if len(enbs) == 0 {
		return 0, errors.New("ctrl: transport has no eNB nodes")
	}
	share := mbps / float64(len(enbs))
	worst := 0.0
	for _, enb := range enbs {
		d, err := c.net.PathDelay(transport.PathRequest{From: enb, To: dc, MinMbps: share})
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Utilization implements Controller (mean up-link utilization).
func (c *TransportController) Utilization() float64 {
	mean, _ := c.net.Utilization()
	return mean
}

// PushTelemetry implements Controller.
func (c *TransportController) PushTelemetry(store *monitor.Store, now time.Time) {
	mean, max := c.net.Utilization()
	store.Record(monitor.DomainMetric("transport", "utilization"), now, mean)
	store.Record(monitor.DomainMetric("transport", "max_link_utilization"), now, max)
}

// CloudController manages the two data centers and the vEPC instances
// running in them.
type CloudController struct {
	FaultArm
	region *cloud.Region
	epcs   *epc.Registry

	mu      sync.RWMutex
	bySlice map[slice.ID]Deployment // live deployments per slice

	// dcCache memoizes the sorted DC list keyed by the region version.
	dcCache atomic.Pointer[dcListCache]
}

// dcListCache is one immutable snapshot of the sorted DC list.
type dcListCache struct {
	ver uint64
	dcs []*cloud.DataCenter
}

// dcs returns the sorted data-center list, cached until the region's DC set
// changes. The returned slice is shared and must be treated as read-only.
func (c *CloudController) dcs() []*cloud.DataCenter {
	ver := c.region.Version()
	if e := c.dcCache.Load(); e != nil && e.ver == ver {
		return e.dcs
	}
	dcs := c.region.All()
	c.dcCache.Store(&dcListCache{ver: ver, dcs: dcs})
	return dcs
}

// NewCloudController wraps the region with a fresh EPC registry.
func NewCloudController(region *cloud.Region) *CloudController {
	return &CloudController{region: region, epcs: epc.NewRegistry(), bySlice: make(map[slice.ID]Deployment)}
}

// Domain implements Controller.
func (c *CloudController) Domain() string { return "cloud" }

// Region exposes the underlying data centers.
func (c *CloudController) Region() *cloud.Region { return c.region }

// EPCs exposes the vEPC registry (UE attach entry point).
func (c *CloudController) EPCs() *epc.Registry { return c.epcs }

// Deployment reports the result of a slice's cloud installation.
type Deployment struct {
	DataCenter string
	StackID    string
	EPCID      string
	// BootDelay is how long until the vEPC serves attaches.
	BootDelay time.Duration
}

// CanFit reports whether the named DC can host a vEPC for the throughput.
func (c *CloudController) CanFit(dc string, throughputMbps float64) bool {
	d, ok := c.region.Get(dc)
	if !ok {
		return false
	}
	return d.CanFit(epc.Template(throughputMbps))
}

// DeployEPC creates the Heat stack and registers the vEPC (in Deploying
// state) in the named data center.
func (c *CloudController) DeployEPC(id slice.ID, dcName string, p slice.PLMN, throughputMbps float64, class slice.ServiceClass) (Deployment, error) {
	dc, ok := c.region.Get(dcName)
	if !ok {
		return Deployment{}, fmt.Errorf("ctrl: unknown data center %q", dcName)
	}
	stackID := string(id) + "/vepc"
	if _, err := dc.CreateStack(stackID, epc.Template(throughputMbps)); err != nil {
		return Deployment{}, fmt.Errorf("ctrl: heat stack for %s: %w", id, err)
	}
	epcID := string(id) + "/epc"
	inst := epc.NewInstance(epcID, p, dcName, stackID, class)
	if err := c.epcs.Add(inst); err != nil {
		dc.DeleteStack(stackID)
		return Deployment{}, err
	}
	return Deployment{
		DataCenter: dcName,
		StackID:    stackID,
		EPCID:      epcID,
		BootDelay:  epc.BootDelayFor(throughputMbps),
	}, nil
}

// RestoreDeployment re-registers a slice's live deployment after crash
// recovery. DeployEPC recreates the stack and vEPC instance, but the
// controller's per-slice deployment index is normally written by the
// transaction engine's commit path — recovery bypasses that engine, so it
// restores the index here for release/teardown to find.
func (c *CloudController) RestoreDeployment(id slice.ID, dep Deployment) {
	c.mu.Lock()
	c.bySlice[id] = dep
	c.mu.Unlock()
}

// MarkEPCRunning flips the instance to Running (called when the boot timer
// fires).
func (c *CloudController) MarkEPCRunning(epcID string, now time.Time) error {
	in, ok := c.epcs.Get(epcID)
	if !ok {
		return fmt.Errorf("ctrl: unknown EPC %q", epcID)
	}
	return in.MarkRunning(now)
}

// Teardown removes the vEPC and its stack. Idempotent.
func (c *CloudController) Teardown(dcName, stackID, epcID string) {
	c.epcs.Remove(epcID)
	if dc, ok := c.region.Get(dcName); ok {
		dc.DeleteStack(stackID)
	}
}

// Utilization implements Controller (mean DC vCPU utilization).
func (c *CloudController) Utilization() float64 {
	dcs := c.dcs()
	if len(dcs) == 0 {
		return 0
	}
	sum := 0.0
	for _, dc := range dcs {
		sum += dc.Utilization()
	}
	return sum / float64(len(dcs))
}

// PushTelemetry implements Controller.
func (c *CloudController) PushTelemetry(store *monitor.Store, now time.Time) {
	store.Record(monitor.DomainMetric("cloud", "utilization"), now, c.Utilization())
	for _, dc := range c.dcs() {
		cap := dc.Capacity()
		store.Record(monitor.DomainMetric("cloud", dc.Name()+"/used_vcpus"), now, cap.UsedVCPUs)
		store.Record(monitor.DomainMetric("cloud", dc.Name()+"/stacks"), now, float64(cap.Stacks))
	}
}

// Set bundles the domain controllers and describes the execution plan the
// orchestrator's generic transaction engine follows.
type Set struct {
	RAN       *RANController
	Transport *TransportController
	Cloud     *CloudController
	// Extra holds additional pluggable domains (e.g. the MEC compute
	// controller) the testbed registered. They join the engine's
	// concurrent group after the cloud domain, in registration order —
	// the core never learns their identity.
	Extra []Domain
	// Wrap, when non-nil, decorates every domain handed to the engine —
	// the hook fault-injection tests and tracing use. It must be set
	// before the orchestrator is constructed.
	Wrap func(Domain) Domain
}

// Wrapped applies the Set's Wrap decoration (if any) to d — the same
// decoration Chain/Async apply, so domain-event handlers (restoration)
// drive decorated domains exactly like the transaction engine does.
func (s Set) Wrapped(d Domain) Domain {
	if s.Wrap != nil {
		return s.Wrap(d)
	}
	return d
}

// Chain returns the sequential (dependent) domains in install order: each
// stage is sized to the previous grant's effective throughput, so transport
// paths match what the radio actually granted.
func (s Set) Chain() []Domain {
	return []Domain{s.Wrapped(s.RAN), s.Wrapped(s.Transport)}
}

// Async returns the domains independent of the chain: the engine reserves
// them concurrently with the chain and joins them in this (deterministic)
// order, so rejection precedence never depends on goroutine scheduling.
func (s Set) Async() []Domain {
	out := []Domain{s.Wrapped(s.Cloud)}
	for _, d := range s.Extra {
		out = append(out, s.Wrapped(d))
	}
	return out
}

// All returns every controller as the generic monitoring interface, sorted
// by domain name.
func (s Set) All() []Controller {
	out := []Controller{s.Cloud, s.RAN, s.Transport}
	for _, d := range s.Extra {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain() < out[j].Domain() })
	return out
}

// PushTelemetry pushes all three domains' metrics.
func (s Set) PushTelemetry(store *monitor.Store, now time.Time) {
	for _, c := range s.All() {
		c.PushTelemetry(store, now)
	}
}
