// The cluster-as-Domain adapter: a whole remote member cluster wrapped as
// one ctrl.Domain, so a cross-cluster slice span is just another multi-
// domain two-phase transaction. Reserve submits the leg to the member's
// facade (the member runs its own full admission and multi-domain install),
// Abort/Release tear the leg down, and Feasible delegates the member's
// admission dry run — so the federation tier inherits reverse-order
// rollback, the typed rejection taxonomy and, because the adapter embeds a
// FaultArm exactly like the four built-in controllers, the chaos
// fault-injection hooks, all without a line of new engine code.
package ctrl

import (
	"sync/atomic"
	"time"

	"repro/internal/monitor"
	"repro/internal/slice"
)

// ClusterLeg is the member-side outcome of one reserved span leg: the
// member-local slice carrying it, the throughput the member actually
// granted, and how long the member needs before the leg serves.
type ClusterLeg struct {
	// Slice is the member-local slice ID backing the leg.
	Slice slice.ID
	// Mbps is the throughput the member granted the leg.
	Mbps float64
	// Delay is the member's installation delay before the leg serves.
	Delay time.Duration
}

// ClusterBackend is the member-cluster surface the adapter delegates to —
// implemented by the federation registry over a member's core.Orchestrator
// facade. Implementations must be safe for concurrent use.
type ClusterBackend interface {
	// SpanFeasible dry-runs leg admission on the member without reserving.
	SpanFeasible(tx Tx) *slice.RejectionCause
	// SpanReserve admits and installs the leg on the member. A member-side
	// rejection comes back as its typed cause.
	SpanReserve(tx Tx) (ClusterLeg, *slice.RejectionCause)
	// SpanRelease tears one reserved leg down. Idempotent.
	SpanRelease(leg ClusterLeg)
	// SpanReleaseSlice tears down whatever the member holds for the span
	// slice ID. Idempotent.
	SpanReleaseSlice(id slice.ID)
	// FeasVersion is the member's feasibility version (see FeasVersioner).
	FeasVersion() uint64
	// Utilization is the member's radio utilization [0,1].
	Utilization() float64
}

// ClusterDomain adapts one member cluster to the Domain surface. It embeds a
// FaultArm consulted at the top of each transactional verb, so chaos
// timelines can fail federated reserves and commits through the same
// first-class FaultInjector capability as any built-in controller.
type ClusterDomain struct {
	FaultArm
	name    string
	backend ClusterBackend
}

// NewClusterDomain wraps the member backend as a Domain named
// "cluster/<name>".
func NewClusterDomain(name string, backend ClusterBackend) *ClusterDomain {
	return &ClusterDomain{name: "cluster/" + name, backend: backend}
}

// Domain implements Controller.
func (c *ClusterDomain) Domain() string { return c.name }

// Utilization implements Controller: the member's radio utilization.
func (c *ClusterDomain) Utilization() float64 { return c.backend.Utilization() }

// PushTelemetry implements Controller.
func (c *ClusterDomain) PushTelemetry(store *monitor.Store, now time.Time) {
	store.Record(monitor.DomainMetric(c.name, "utilization"), now, c.backend.Utilization())
}

// FeasVersion implements FeasVersioner: the member's version counter covers
// every state change that can alter its admission answer, so equal versions
// guarantee equal Feasible outcomes.
func (c *ClusterDomain) FeasVersion() uint64 { return c.backend.FeasVersion() }

// ClusterGrant is the adapter's reservation: the member-side leg, plus the
// single-shot abort latch every built-in grant carries (a second Abort after
// the member recycled the leg's resources must be a no-op).
type ClusterGrant struct {
	leg     ClusterLeg
	backend ClusterBackend
	aborted atomic.Bool
}

// Leg returns the member-side leg backing the grant.
func (g *ClusterGrant) Leg() ClusterLeg { return g.leg }

// Domain implements Grant.
func (g *ClusterGrant) Domain() string { return "cluster" }

// EffectiveMbps implements Grant: what the member actually granted.
func (g *ClusterGrant) EffectiveMbps() float64 { return g.leg.Mbps }

// ActivationDelay implements Grant: the member's installation delay.
func (g *ClusterGrant) ActivationDelay() time.Duration { return g.leg.Delay }

// Apply implements Grant. The federation tier keeps its own span records
// (per-leg member slice IDs), so there is nothing to write into a
// member-local allocation.
func (g *ClusterGrant) Apply(a *slice.Allocation) {}

// Feasible implements Domain: the member's admission dry run.
func (c *ClusterDomain) Feasible(tx Tx) *slice.RejectionCause {
	return c.backend.SpanFeasible(tx)
}

// Reserve implements Domain: admit and install the leg on the member. The
// member's own typed rejection flows back unchanged.
func (c *ClusterDomain) Reserve(tx Tx) (Grant, *slice.RejectionCause) {
	if cause := c.reserveFault(c.name); cause != nil {
		return nil, cause
	}
	leg, cause := c.backend.SpanReserve(tx)
	if cause != nil {
		return nil, cause
	}
	return &ClusterGrant{leg: leg, backend: c.backend}, nil
}

// Commit implements Domain. The member installed the leg at Reserve (its own
// two-phase transaction already committed); only an armed fault can fail it.
func (c *ClusterDomain) Commit(g Grant) error { return c.commitFault(c.name) }

// Abort implements Domain: tear the member-side leg down. Single-shot per
// grant and idempotent with Release.
func (c *ClusterDomain) Abort(g Grant) {
	if cg, ok := g.(*ClusterGrant); ok && cg.aborted.CompareAndSwap(false, true) {
		cg.backend.SpanRelease(cg.leg)
	}
}

// Resize implements Domain: member epochs manage their own legs' sizing, so
// a federated resize is a no-op (only an armed fault can fail it).
func (c *ClusterDomain) Resize(tx Tx, mbps float64) (Grant, error) {
	return nil, c.resizeFault(c.name)
}

// Release implements Domain. Idempotent.
func (c *ClusterDomain) Release(id slice.ID, p slice.PLMN) { c.backend.SpanReleaseSlice(id) }
