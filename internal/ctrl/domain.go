// The generic domain-transaction surface: every domain controller (radio,
// transport, cloud — and any future domain, proven by the MEC compute
// controller below) implements the same transactional verbs, so the
// orchestrator core is one generic multi-domain two-phase engine instead of
// N copies of install/resize/release/restore logic. The shape follows the
// package-orchestration idiom of uniform lifecycle verbs over heterogeneous
// resources: a domain never leaks its substrate types through the engine —
// it returns an opaque Grant that knows how to record itself in the slice's
// allocation and how to be rolled back.
package ctrl

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/epc"
	"repro/internal/mec"
	"repro/internal/monitor"
	"repro/internal/ran"
	"repro/internal/slice"
	"repro/internal/transport"
)

// Tx is the per-slice transactional context handed to every domain. It is
// built once per engine operation by the orchestrator and passed by value;
// domains must not retain it.
type Tx struct {
	// Slice identifies the transaction's slice.
	Slice slice.ID
	// PLMN is the dedicated PLMN the slice broadcasts under.
	PLMN slice.PLMN
	// SLA carries the full contract (domains that size off the contract —
	// e.g. the vEPC template — read it directly).
	SLA slice.SLA
	// DataCenter is the compute placement chosen at admission.
	DataCenter string
	// Mbps is the throughput this stage must size for. The engine threads
	// each chained grant's effective throughput into the next stage, so a
	// downstream domain is never sized larger than what upstream granted.
	Mbps float64
	// LatencyBudgetMs is the end-to-end latency budget available to the
	// domains (SLA.MaxLatencyMs minus fixed shares such as the vEPC
	// user-plane processing).
	LatencyBudgetMs float64
}

// Grant is one domain's reservation for a slice — the engine's only handle
// on what a domain allocated. Grants are applied to the slice's allocation
// record on commit and handed back to their domain on rollback.
type Grant interface {
	// Domain names the granting domain.
	Domain() string
	// EffectiveMbps is the throughput the grant actually sustains (PRB
	// quantization can round up); the engine threads it into downstream
	// chain stages. <= 0 means "carried throughput unchanged".
	EffectiveMbps() float64
	// ActivationDelay is how long after installation the granted resource
	// needs before serving (vEPC boot); the engine activates the slice
	// after the longest such delay.
	ActivationDelay() time.Duration
	// Apply records the grant in the slice's allocation.
	Apply(a *slice.Allocation)
}

// Domain is the uniform transactional surface of one orchestration domain.
// It embeds the monitoring Controller surface and adds the two-phase
// lifecycle verbs the generic engine drives:
//
//	Reserve(tx) → Grant   allocate; all-or-nothing per call
//	Commit(Grant)         finalize once every domain reserved
//	Abort(Grant)          roll one grant back (reverse-order rollback)
//	Resize(tx, mbps)      adjust a live slice's share
//	Release(id, plmn)     free everything held for the slice; idempotent
//	Feasible(tx)          admission dry run, no reservation
//
// Failures that are business outcomes (capacity, latency, placement) are
// returned as typed *slice.RejectionCause values — each domain classifies
// its own failures under the stable taxonomy; the engine never inspects
// detail strings. Abort must be safe to call after Commit (2PC unwind) and
// Release must be idempotent.
//
// All methods must be safe for concurrent use: the sharded core installs
// independent slices in parallel and runs chain-independent domains
// concurrently within one request.
type Domain interface {
	Controller

	// Feasible reports whether a reservation for tx could plausibly
	// succeed right now, without reserving. A concurrent reservation may
	// still win the race — the engine rolls back on Reserve failure.
	Feasible(tx Tx) *slice.RejectionCause
	// Reserve allocates resources for tx. All-or-nothing per call.
	Reserve(tx Tx) (Grant, *slice.RejectionCause)
	// Commit finalizes a grant once every domain has reserved.
	Commit(g Grant) error
	// Abort rolls a grant back. Must accept grants in any state
	// (reserved or committed) and be idempotent with Release.
	Abort(g Grant)
	// Resize adjusts the slice's reservation to mbps. The returned grant
	// (may be nil) records any allocation changes; on error the engine
	// restores previously resized domains in reverse order.
	Resize(tx Tx, mbps float64) (Grant, error)
	// Release frees everything the domain holds for the slice. Idempotent.
	Release(id slice.ID, p slice.PLMN)
}

// LatencyContributor is an optional Domain capability: a fixed user-plane
// processing latency (in ms) the domain's resources add to every slice's
// data path. The engine sums the contributions of all registered domains
// and subtracts them from the latency budget it hands to every domain, so
// the transport feasibility check accounts for downstream processing it
// cannot see. This is a capability query, never a domain-identity branch.
type LatencyContributor interface {
	ProcessingLatencyMs() float64
}

// FeasVersioner is an optional Domain capability: a monotonic version
// counter covering every substrate state that can change the outcome of
// Feasible. Equal versions guarantee equal Feasible answers for the same
// transaction, so the orchestrator may memoize outcomes keyed by
// (tx signature, version) — an exact cache, not a heuristic. Domains whose
// Feasible consults mutable state implement it; wrappers that inject faults
// deliberately do not, which switches memoization off under chaos. This is
// a capability query, never a domain-identity branch.
type FeasVersioner interface {
	FeasVersion() uint64
}

// FeasVersion implements FeasVersioner: the transport feasibility answer is
// a pure function of the network state covered by its feasibility version.
func (c *TransportController) FeasVersion() uint64 { return c.net.Version() }

// FeasVersion implements FeasVersioner: CanFit depends on the DC set and
// each DC's capacity books. Every counter is monotonic, so the sum strictly
// increases on any mutation.
func (c *CloudController) FeasVersion() uint64 {
	v := c.region.Version()
	for _, dc := range c.dcs() {
		v += dc.Version()
	}
	return v
}

// FeasVersion implements FeasVersioner for the MEC pool.
func (c *MECController) FeasVersion() uint64 { return c.pool.Version() }

// ---------------------------------------------------------------------------
// Radio domain.

// radioGrant is the RAN domain's reservation. aborted makes Abort
// single-shot: PLMNs are recycled, so a second Abort of the same grant after
// the slot was re-allocated would release the new owner's PRBs.
type radioGrant struct {
	plmn    slice.PLMN
	res     RadioReservation
	aborted atomic.Bool
}

func (g *radioGrant) Domain() string                 { return "ran" }
func (g *radioGrant) EffectiveMbps() float64         { return g.res.TotalMbps }
func (g *radioGrant) ActivationDelay() time.Duration { return 0 }
func (g *radioGrant) Apply(a *slice.Allocation) {
	a.AllocatedMbps = g.res.TotalMbps
	a.PRBs = g.res.PRBs
	// Ownership of the PRB map moves to the allocation; drop it so a later
	// RecycleGrant can never alias live slice state.
	g.res.PRBs = nil
}

// radioCause classifies a RAN substrate error: a full MOCN broadcast list is
// a PLMN exhaustion, everything else is radio capacity.
func radioCause(err error) *slice.RejectionCause {
	code := slice.RejectRadioCapacity
	if errors.Is(err, ran.ErrPLMNListFull) {
		code = slice.RejectPLMNExhausted
	}
	return slice.Rejectf(code, "ran", "radio: %w", err)
}

// Feasible implements Domain. Radio capacity is governed by the
// orchestrator's overbooking capacity ledger, so the per-request dry run is
// vacuous here; per-eNB PRB and broadcast-list limits surface at Reserve.
func (c *RANController) Feasible(tx Tx) *slice.RejectionCause { return nil }

// Reserve implements Domain.
func (c *RANController) Reserve(tx Tx) (Grant, *slice.RejectionCause) {
	if cause := c.reserveFault("ran"); cause != nil {
		return nil, cause
	}
	g := newRadioGrant(tx.PLMN)
	if err := c.reserveSliceInto(tx.PLMN, tx.Mbps, &g.res); err != nil {
		RecycleGrant(g)
		return nil, radioCause(err)
	}
	return g, nil
}

// Commit implements Domain (PRB reservations are live at Reserve; only an
// armed fault can fail it).
func (c *RANController) Commit(g Grant) error { return c.commitFault("ran") }

// Abort implements Domain. Idempotent per grant: the PLMN is released at
// most once, so an engine retry or a chaos double-abort can never free a
// recycled slot now owned by another slice.
func (c *RANController) Abort(g Grant) {
	if rg, ok := g.(*radioGrant); ok && rg.aborted.CompareAndSwap(false, true) {
		c.ReleaseSlice(rg.plmn)
	}
}

// Resize implements Domain.
func (c *RANController) Resize(tx Tx, mbps float64) (Grant, error) {
	if err := c.resizeFault("ran"); err != nil {
		return nil, err
	}
	g := newRadioGrant(tx.PLMN)
	if err := c.resizeSliceInto(tx.PLMN, mbps, &g.res); err != nil {
		RecycleGrant(g)
		return nil, err
	}
	return g, nil
}

// Release implements Domain.
func (c *RANController) Release(id slice.ID, p slice.PLMN) { c.ReleaseSlice(p) }

// ---------------------------------------------------------------------------
// Transport domain.

// pathGrant is the transport domain's reservation.
type pathGrant struct {
	id      slice.ID
	setup   PathSetup
	aborted atomic.Bool
}

func (g *pathGrant) Domain() string                 { return "transport" }
func (g *pathGrant) EffectiveMbps() float64         { return 0 }
func (g *pathGrant) ActivationDelay() time.Duration { return 0 }
func (g *pathGrant) Apply(a *slice.Allocation) {
	a.PathIDs = g.setup.PathIDs
	a.PathLatencyMs = g.setup.WorstDelayMs
	// Ownership of the path-ID slice moves to the allocation; drop it so a
	// later RecycleGrant can never alias live slice state.
	g.setup.PathIDs = nil
}

// transportCause classifies a transport substrate error: a missed delay
// budget is a latency rejection, everything else is transport capacity.
func transportCause(err error, format string, args ...any) *slice.RejectionCause {
	code := slice.RejectTransportCapacity
	if errors.Is(err, transport.ErrDelayBudget) {
		code = slice.RejectLatencyUnmeetable
	}
	return slice.Rejectf(code, "transport", format, args...)
}

// Feasible implements Domain: the delay-constrained path dry run of the
// admission check, against the latency budget left for the transport hop.
func (c *TransportController) Feasible(tx Tx) *slice.RejectionCause {
	delay, err := c.FeasibleDelay(tx.DataCenter, tx.Mbps)
	if err != nil {
		return transportCause(err, "transport to %s: %w", tx.DataCenter, err)
	}
	if proc := tx.SLA.MaxLatencyMs - tx.LatencyBudgetMs; delay+proc > tx.SLA.MaxLatencyMs {
		return slice.Rejectf(slice.RejectLatencyUnmeetable, "transport",
			"latency: best path to %s is %.2f ms + %.2f ms EPC > budget %.2f ms",
			tx.DataCenter, delay, proc, tx.SLA.MaxLatencyMs)
	}
	return nil
}

// Reserve implements Domain.
func (c *TransportController) Reserve(tx Tx) (Grant, *slice.RejectionCause) {
	if cause := c.reserveFault("transport"); cause != nil {
		return nil, cause
	}
	g := newPathGrant(tx.Slice)
	if err := c.setupPathsInto(tx.Slice, tx.DataCenter, tx.Mbps, tx.LatencyBudgetMs, &g.setup); err != nil {
		RecycleGrant(g)
		return nil, transportCause(err, "transport: %w", err)
	}
	return g, nil
}

// Commit implements Domain (flows are installed at Reserve; only an armed
// fault can fail it).
func (c *TransportController) Commit(g Grant) error { return c.commitFault("transport") }

// Abort implements Domain. Idempotent per grant.
func (c *TransportController) Abort(g Grant) {
	if pg, ok := g.(*pathGrant); ok && pg.aborted.CompareAndSwap(false, true) {
		c.ReleasePaths(pg.id)
	}
}

// Resize implements Domain. Path IDs are unchanged by a resize, so no grant
// is returned.
func (c *TransportController) Resize(tx Tx, mbps float64) (Grant, error) {
	if err := c.resizeFault("transport"); err != nil {
		return nil, err
	}
	return nil, c.ResizePaths(tx.Slice, mbps)
}

// Release implements Domain.
func (c *TransportController) Release(id slice.ID, p slice.PLMN) { c.ReleasePaths(id) }

// ---------------------------------------------------------------------------
// Cloud domain.

// cloudGrant is the cloud domain's reservation.
type cloudGrant struct {
	id      slice.ID
	dep     Deployment
	aborted atomic.Bool
}

func (g *cloudGrant) Domain() string                 { return "cloud" }
func (g *cloudGrant) EffectiveMbps() float64         { return 0 }
func (g *cloudGrant) ActivationDelay() time.Duration { return g.dep.BootDelay }
func (g *cloudGrant) Apply(a *slice.Allocation) {
	a.DataCenter = g.dep.DataCenter
	a.StackID = g.dep.StackID
	a.EPCID = g.dep.EPCID
}

// Feasible implements Domain: the chosen data center must fit the slice's
// vEPC template at contract size.
func (c *CloudController) Feasible(tx Tx) *slice.RejectionCause {
	if !c.CanFit(tx.DataCenter, tx.SLA.ThroughputMbps) {
		return slice.Rejectf(slice.RejectCloudCapacity, "cloud",
			"cloud compute: %s cannot fit a %.0f-vCPU vEPC", tx.DataCenter, epc.VCPUDemand(tx.SLA.ThroughputMbps))
	}
	return nil
}

// Reserve implements Domain.
func (c *CloudController) Reserve(tx Tx) (Grant, *slice.RejectionCause) {
	if cause := c.reserveFault("cloud"); cause != nil {
		return nil, cause
	}
	dep, err := c.DeployEPC(tx.Slice, tx.DataCenter, tx.PLMN, tx.SLA.ThroughputMbps, tx.SLA.Class)
	if err != nil {
		return nil, slice.Rejectf(slice.RejectCloudCapacity, "cloud", "cloud: %w", err)
	}
	c.mu.Lock()
	c.bySlice[tx.Slice] = dep
	c.mu.Unlock()
	g := newCloudGrant(tx.Slice)
	g.dep = dep
	return g, nil
}

// Commit implements Domain (the stack and vEPC registration are live at
// Reserve; the boot timer is the engine's job via ActivationDelay; only an
// armed fault can fail it).
func (c *CloudController) Commit(g Grant) error { return c.commitFault("cloud") }

// Abort implements Domain. Idempotent per grant.
func (c *CloudController) Abort(g Grant) {
	if cg, ok := g.(*cloudGrant); ok && cg.aborted.CompareAndSwap(false, true) {
		c.mu.Lock()
		delete(c.bySlice, cg.id)
		c.mu.Unlock()
		c.Teardown(cg.dep.DataCenter, cg.dep.StackID, cg.dep.EPCID)
	}
}

// Resize implements Domain: vEPC stacks are sized to the contract and are
// not resized by the overbooking loop (only an armed fault can fail it).
func (c *CloudController) Resize(tx Tx, mbps float64) (Grant, error) {
	return nil, c.resizeFault("cloud")
}

// Release implements Domain.
func (c *CloudController) Release(id slice.ID, p slice.PLMN) {
	c.mu.Lock()
	dep, ok := c.bySlice[id]
	delete(c.bySlice, id)
	c.mu.Unlock()
	if ok {
		c.Teardown(dep.DataCenter, dep.StackID, dep.EPCID)
	}
}

// ---------------------------------------------------------------------------
// MEC domain — the pluggable fourth domain.

// MECController manages the edge MEC compute pool: one low-latency edge
// application per slice, placed next to the radio site. It exists to prove
// the Domain surface is pluggable: the orchestrator core drives it through
// the generic engine exactly like the three original domains.
type MECController struct {
	FaultArm
	pool *mec.Pool
}

// NewMECController wraps the pool.
func NewMECController(pool *mec.Pool) *MECController { return &MECController{pool: pool} }

// Domain implements Controller.
func (c *MECController) Domain() string { return "mec" }

// Pool exposes the underlying substrate (telemetry, tests).
func (c *MECController) Pool() *mec.Pool { return c.pool }

// appID derives the slice's edge-app identifier.
func appID(id slice.ID) string { return string(id) + "/app" }

// mecGrant is the MEC domain's reservation.
type mecGrant struct {
	app     mec.App
	aborted atomic.Bool
}

func (g *mecGrant) Domain() string                 { return "mec" }
func (g *mecGrant) EffectiveMbps() float64         { return 0 }
func (g *mecGrant) ActivationDelay() time.Duration { return 0 }
func (g *mecGrant) Apply(a *slice.Allocation)      { a.MECAppID = g.app.ID }

// ProcessingLatencyMs implements LatencyContributor: the engine deducts the
// app's processing share from every domain's latency budget.
func (c *MECController) ProcessingLatencyMs() float64 { return c.pool.ProcessingDelayMs() }

// Feasible implements Domain: the pool must fit the slice's app, and the
// budget left after all fixed processing shares must not already be
// exhausted.
func (c *MECController) Feasible(tx Tx) *slice.RejectionCause {
	if tx.LatencyBudgetMs < 0 {
		return slice.Rejectf(slice.RejectLatencyUnmeetable, "mec",
			"mec: app processing %.2f ms exhausts the latency budget %.2f ms",
			c.pool.ProcessingDelayMs(), tx.SLA.MaxLatencyMs)
	}
	if cpu := mec.CPUForMbps(tx.SLA.ThroughputMbps); !c.pool.CanFit(cpu) {
		return slice.Rejectf(slice.RejectMECCapacity, "mec",
			"mec compute: cannot fit a %.1f-CPU edge app", cpu)
	}
	return nil
}

// Reserve implements Domain.
func (c *MECController) Reserve(tx Tx) (Grant, *slice.RejectionCause) {
	if cause := c.reserveFault("mec"); cause != nil {
		return nil, cause
	}
	app, err := c.pool.Place(appID(tx.Slice), tx.Slice, mec.CPUForMbps(tx.SLA.ThroughputMbps))
	if err != nil {
		return nil, slice.Rejectf(slice.RejectMECCapacity, "mec", "mec: %w", err)
	}
	g := newMECGrant()
	g.app = app
	return g, nil
}

// Commit implements Domain (only an armed fault can fail it).
func (c *MECController) Commit(g Grant) error { return c.commitFault("mec") }

// Abort implements Domain. Idempotent per grant.
func (c *MECController) Abort(g Grant) {
	if mg, ok := g.(*mecGrant); ok && mg.aborted.CompareAndSwap(false, true) {
		c.pool.Remove(mg.app.ID)
	}
}

// Resize implements Domain: the app's CPU share follows the slice's
// (possibly overbooked) throughput allocation.
func (c *MECController) Resize(tx Tx, mbps float64) (Grant, error) {
	if err := c.resizeFault("mec"); err != nil {
		return nil, err
	}
	return nil, c.pool.Resize(appID(tx.Slice), mec.CPUForMbps(mbps))
}

// Release implements Domain.
func (c *MECController) Release(id slice.ID, p slice.PLMN) { c.pool.Remove(appID(id)) }

// Utilization implements Controller (CPU utilization of the pool).
func (c *MECController) Utilization() float64 { return c.pool.Utilization() }

// PushTelemetry implements Controller.
func (c *MECController) PushTelemetry(store *monitor.Store, now time.Time) {
	cap := c.pool.Capacity()
	store.Record(monitor.DomainMetric("mec", "utilization"), now, c.pool.Utilization())
	store.Record(monitor.DomainMetric("mec", "apps"), now, float64(cap.Apps))
	store.Record(monitor.DomainMetric("mec", "used_cpus"), now, cap.UsedCPUs)
}
