// Grant pooling for the admission hot path. Every install/resize allocates
// one grant per domain; under load that is the dominant per-request garbage
// after path computation. Grants have a strict ownership lifecycle —
// constructed by Reserve/Resize, applied at most once, then either committed
// or aborted — so the engine can return them to a pool at well-defined
// exclusive-ownership points (see RecycleGrant).
//
// Ownership rules (the §10 pool contract):
//
//   - A grant's heap containers (the radio PRB map, the transport path-ID
//     slice) are surrendered to the slice allocation by Apply: Apply nils the
//     grant's reference after the transfer, so recycling a applied grant can
//     never alias live slice state.
//   - RecycleGrant must only be called by the party holding the last
//     reference (the engine after commit cleanup or rollback, or the domain
//     itself on a failed Reserve). Recycling is optional — an un-recycled
//     grant is ordinary garbage.
//   - Abort and Release never recycle: chaos wrappers and tests may retain
//     grants past Abort, and the single-shot aborted latch must stay
//     readable.
package ctrl

import (
	"sync"
	"sync/atomic"

	"repro/internal/mec"
	"repro/internal/slice"
)

var (
	radioGrantPool = sync.Pool{New: func() any { return new(radioGrant) }}
	pathGrantPool  = sync.Pool{New: func() any { return new(pathGrant) }}
	cloudGrantPool = sync.Pool{New: func() any { return new(cloudGrant) }}
	mecGrantPool   = sync.Pool{New: func() any { return new(mecGrant) }}
)

// poisonGrants, when set, makes RecycleGrant overwrite every recycled grant
// with sentinel garbage before returning it to its pool. Any component that
// illegally retains a reference past the recycle point then observes
// impossible values (negative PRB counts, "poisoned" IDs) that the
// conservation auditors and golden tests flag immediately. Test-only.
var poisonGrants atomic.Bool

// SetGrantPoisoning toggles poison-on-recycle (tests only). Not intended for
// production paths: poisoning defeats container reuse on purpose.
func SetGrantPoisoning(on bool) { poisonGrants.Store(on) }

// newRadioGrant returns a pooled radio grant ready for reserveSliceInto: the
// abort latch is re-armed and the PRB map is present and empty.
func newRadioGrant(p slice.PLMN) *radioGrant {
	g := radioGrantPool.Get().(*radioGrant)
	g.aborted.Store(false)
	g.plmn = p
	g.res.TotalMbps = 0
	if g.res.PRBs == nil {
		g.res.PRBs = make(map[string]int, 4)
	}
	return g
}

// newPathGrant returns a pooled transport grant; setupPathsInto reuses the
// retained PathIDs backing array.
func newPathGrant(id slice.ID) *pathGrant {
	g := pathGrantPool.Get().(*pathGrant)
	g.aborted.Store(false)
	g.id = id
	g.setup.WorstDelayMs = 0
	if g.setup.PathIDs != nil {
		g.setup.PathIDs = g.setup.PathIDs[:0]
	}
	return g
}

// newCloudGrant returns a pooled cloud grant; the caller fills dep.
func newCloudGrant(id slice.ID) *cloudGrant {
	g := cloudGrantPool.Get().(*cloudGrant)
	g.aborted.Store(false)
	g.id = id
	g.dep = Deployment{}
	return g
}

// newMECGrant returns a pooled MEC grant; the caller fills app.
func newMECGrant() *mecGrant {
	g := mecGrantPool.Get().(*mecGrant)
	g.aborted.Store(false)
	g.app = mec.App{}
	return g
}

// RecycleGrant returns a grant to its domain pool. The caller asserts it
// holds the last reference — after this call the grant (and, unless Apply
// surrendered them, its containers) may be reused by an unrelated slice.
// Grants of unknown concrete types (test doubles, wrappers) are left to the
// garbage collector.
func RecycleGrant(g Grant) {
	switch t := g.(type) {
	case *radioGrant:
		if poisonGrants.Load() {
			// Poison in place: a retainer aliasing the map sees negative
			// PRB counts; one aliasing the grant sees an impossible PLMN.
			for k := range t.res.PRBs {
				t.res.PRBs[k] = -1 << 20
			}
			t.plmn = slice.PLMN{MCC: "poisoned", MNC: "poisoned"}
			t.res.TotalMbps = -1
			t.res.PRBs = nil
		} else {
			t.plmn = slice.PLMN{}
			t.res.TotalMbps = 0
			clear(t.res.PRBs)
		}
		radioGrantPool.Put(t)
	case *pathGrant:
		if poisonGrants.Load() {
			for i := range t.setup.PathIDs {
				t.setup.PathIDs[i] = "poisoned-path"
			}
			t.id = "poisoned-slice"
			t.setup.WorstDelayMs = -1
			t.setup.PathIDs = nil
		} else {
			t.id = ""
			t.setup.WorstDelayMs = 0
			if t.setup.PathIDs != nil {
				t.setup.PathIDs = t.setup.PathIDs[:0]
			}
		}
		pathGrantPool.Put(t)
	case *cloudGrant:
		if poisonGrants.Load() {
			t.id = "poisoned-slice"
			t.dep = Deployment{DataCenter: "poisoned-dc", StackID: "poisoned-stack", EPCID: "poisoned-epc", BootDelay: -1}
		} else {
			t.id = ""
			t.dep = Deployment{}
		}
		cloudGrantPool.Put(t)
	case *mecGrant:
		if poisonGrants.Load() {
			t.app = mec.App{ID: "poisoned-app", Slice: "poisoned-slice", CPU: -1, Host: "poisoned-host"}
		} else {
			t.app = mec.App{}
		}
		mecGrantPool.Put(t)
	}
}
