package ctrl_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/ctrl"
	"repro/internal/epc"
	"repro/internal/monitor"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/transport"
)

var (
	plmnA = slice.PLMN{MCC: "001", MNC: "01"}
	plmnB = slice.PLMN{MCC: "001", MNC: "02"}
	t0    = time.Date(2018, 8, 20, 9, 0, 0, 0, time.UTC)
)

func newTB(t *testing.T) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.New(testbed.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestRANReserveSpreadsAcrossENBs(t *testing.T) {
	tb := newTB(t)
	c := tb.Ctrl.RAN
	res, err := c.ReserveSlice(plmnA, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PRBs) != 2 {
		t.Fatalf("PRBs on %d eNBs", len(res.PRBs))
	}
	if res.TotalMbps < 40 {
		t.Fatalf("reserved %.1f Mbps < asked 40", res.TotalMbps)
	}
	for name, prbs := range res.PRBs {
		e, _ := tb.RAN.Get(name)
		got, ok := e.Reservation(plmnA)
		if !ok || got != prbs {
			t.Fatalf("eNB %s reservation %d vs reported %d", name, got, prbs)
		}
	}
}

func TestRANReserveRollsBackOnPartialFailure(t *testing.T) {
	tb := newTB(t)
	// Saturate the second eNB so reservation succeeds on enb-1 only.
	e2, _ := tb.RAN.Get(testbed.ENBName(1))
	if err := e2.Reserve(plmnB, e2.TotalPRBs()); err != nil {
		t.Fatal(err)
	}
	_, err := tb.Ctrl.RAN.ReserveSlice(plmnA, 40)
	if err == nil {
		t.Fatal("reserve should fail when one eNB is full")
	}
	e1, _ := tb.RAN.Get(testbed.ENBName(0))
	if _, ok := e1.Reservation(plmnA); ok {
		t.Fatal("partial reservation leaked on enb-1")
	}
}

func TestRANResizeRestoresOnFailure(t *testing.T) {
	tb := newTB(t)
	c := tb.Ctrl.RAN
	if _, err := c.ReserveSlice(plmnA, 20); err != nil {
		t.Fatal(err)
	}
	// Fill the rest of both cells with another tenant, then attempt to
	// grow A beyond free space.
	e1, _ := tb.RAN.Get(testbed.ENBName(0))
	e2, _ := tb.RAN.Get(testbed.ENBName(1))
	e1.Reserve(plmnB, e1.FreePRBs())
	e2.Reserve(plmnB, e2.FreePRBs())
	before1, _ := e1.Reservation(plmnA)
	before2, _ := e2.Reservation(plmnA)
	if _, err := c.ResizeSlice(plmnA, 500); err == nil {
		t.Fatal("oversize resize succeeded")
	}
	after1, _ := e1.Reservation(plmnA)
	after2, _ := e2.Reservation(plmnA)
	if after1 != before1 || after2 != before2 {
		t.Fatalf("failed resize mutated reservations: %d/%d -> %d/%d", before1, before2, after1, after2)
	}
}

func TestRANResizeUnknownPLMN(t *testing.T) {
	tb := newTB(t)
	if _, err := tb.Ctrl.RAN.ResizeSlice(plmnA, 10); err == nil {
		t.Fatal("resize of unknown PLMN succeeded")
	}
}

func TestRANScheduleEpochAggregates(t *testing.T) {
	tb := newTB(t)
	c := tb.Ctrl.RAN
	res, err := c.ReserveSlice(plmnA, 40)
	if err != nil {
		t.Fatal(err)
	}
	served, util := c.ScheduleEpoch(map[slice.PLMN]float64{plmnA: 30}, false)
	if served[plmnA] < 29.999 || served[plmnA] > 30.001 {
		t.Fatalf("served %.3f, want 30 (reserved %.1f)", served[plmnA], res.TotalMbps)
	}
	if util <= 0 || util > 1 {
		t.Fatalf("util %.3f", util)
	}
	// Demand above reservation: capped near the reservation.
	served, _ = c.ScheduleEpoch(map[slice.PLMN]float64{plmnA: 500}, false)
	if served[plmnA] > res.TotalMbps+0.001 {
		t.Fatalf("served %.3f above reservation %.3f", served[plmnA], res.TotalMbps)
	}
}

func TestRANReleaseIdempotent(t *testing.T) {
	tb := newTB(t)
	tb.Ctrl.RAN.ReserveSlice(plmnA, 20)
	tb.Ctrl.RAN.ReleaseSlice(plmnA)
	tb.Ctrl.RAN.ReleaseSlice(plmnA)
	if tb.Ctrl.RAN.Utilization() != 0 {
		t.Fatal("release left PRBs reserved")
	}
}

func TestTransportSetupPathsBothENBs(t *testing.T) {
	tb := newTB(t)
	c := tb.Ctrl.Transport
	setup, err := c.SetupPaths("s1", testbed.EdgeDC, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(setup.PathIDs) != 2 {
		t.Fatalf("paths %v", setup.PathIDs)
	}
	if setup.WorstDelayMs <= 0 || setup.WorstDelayMs > 5 {
		t.Fatalf("worst delay %.2f", setup.WorstDelayMs)
	}
	// Flow entries installed in the switch.
	if got := len(tb.Transport.FlowTable(testbed.Switch)); got != 2 {
		t.Fatalf("switch flow entries %d", got)
	}
}

func TestTransportSetupRollsBack(t *testing.T) {
	tb := newTB(t)
	// Saturate the µWave link (enb-2 side) so the second path fails.
	if _, err := tb.Transport.Reserve("filler", []string{testbed.ENBName(1), testbed.Switch}, tb.Config.MicroWaveMbps); err != nil {
		t.Fatal(err)
	}
	_, err := tb.Ctrl.Transport.SetupPaths("s1", testbed.CoreDC, 300, 0)
	if err == nil {
		t.Fatal("setup should fail with saturated µWave hop")
	}
	l, _ := tb.Transport.Link(testbed.ENBName(0), testbed.Switch)
	if l.ReservedMbps() != 0 {
		t.Fatalf("mmWave hop leaked %.1f Mbps", l.ReservedMbps())
	}
}

func TestTransportDelayBudgetForcesEdge(t *testing.T) {
	tb := newTB(t)
	// Core is CoreDelayMs (6) + hop away: a 3 ms budget must fail to core
	// and pass to edge.
	if _, err := tb.Ctrl.Transport.SetupPaths("s1", testbed.CoreDC, 10, 3); err == nil {
		t.Fatal("core within 3ms should be infeasible")
	}
	if _, err := tb.Ctrl.Transport.SetupPaths("s2", testbed.EdgeDC, 10, 3); err != nil {
		t.Fatalf("edge within 3ms failed: %v", err)
	}
}

func TestTransportResizeAndRelease(t *testing.T) {
	tb := newTB(t)
	c := tb.Ctrl.Transport
	setup, err := c.SetupPaths("s1", testbed.EdgeDC, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ResizePaths("s1", 300); err != nil {
		t.Fatal(err)
	}
	r, _ := tb.Transport.Reservation(setup.PathIDs[0])
	if r.Mbps != 150 {
		t.Fatalf("per-path after resize %.1f, want 150", r.Mbps)
	}
	c.ReleasePaths("s1")
	if _, ok := tb.Transport.Reservation(setup.PathIDs[0]); ok {
		t.Fatal("path survived release")
	}
	if err := c.ResizePaths("s1", 100); err == nil {
		t.Fatal("resize after release succeeded")
	}
	c.ReleasePaths("s1") // idempotent
}

func TestTransportResizeRestoresOnFailure(t *testing.T) {
	tb := newTB(t)
	c := tb.Ctrl.Transport
	if _, err := c.SetupPaths("s1", testbed.CoreDC, 100, 0); err != nil {
		t.Fatal(err)
	}
	// Saturate µWave so growing s1 fails on the enb-2 path.
	free := tb.Config.MicroWaveMbps - 50
	if _, err := tb.Transport.Reserve("filler", []string{testbed.ENBName(1), testbed.Switch}, free); err != nil {
		t.Fatal(err)
	}
	if err := c.ResizePaths("s1", 700); err == nil {
		t.Fatal("oversize resize succeeded")
	}
	r, _ := tb.Transport.Reservation("s1/" + testbed.ENBName(0) + "->" + testbed.CoreDC)
	if r.Mbps != 50 {
		t.Fatalf("path size after failed resize %.1f, want 50", r.Mbps)
	}
}

func TestTransportFeasibleDelay(t *testing.T) {
	tb := newTB(t)
	edge, err := tb.Ctrl.Transport.FeasibleDelay(testbed.EdgeDC, 50)
	if err != nil {
		t.Fatal(err)
	}
	core, err := tb.Ctrl.Transport.FeasibleDelay(testbed.CoreDC, 50)
	if err != nil {
		t.Fatal(err)
	}
	if edge >= core {
		t.Fatalf("edge delay %.2f not below core %.2f", edge, core)
	}
	if _, err := tb.Ctrl.Transport.FeasibleDelay(testbed.CoreDC, 1e6); err == nil {
		t.Fatal("absurd bandwidth feasible")
	}
}

func TestCloudDeployAndTeardown(t *testing.T) {
	tb := newTB(t)
	c := tb.Ctrl.Cloud
	if !c.CanFit(testbed.EdgeDC, 30) {
		t.Fatal("edge cannot fit a small vEPC")
	}
	dep, err := c.DeployEPC("s1", testbed.EdgeDC, plmnA, 30, slice.ClassAutomotive)
	if err != nil {
		t.Fatal(err)
	}
	if dep.DataCenter != testbed.EdgeDC || !strings.Contains(dep.StackID, "s1") {
		t.Fatalf("deployment %+v", dep)
	}
	if dep.BootDelay < 2*time.Second {
		t.Fatalf("boot delay %v", dep.BootDelay)
	}
	in, ok := c.EPCs().Get(dep.EPCID)
	if !ok || in.State() != epc.StateDeploying {
		t.Fatal("EPC not registered as deploying")
	}
	if err := c.MarkEPCRunning(dep.EPCID, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EPCs().Attach(epc.UE{IMSI: "i1", PLMN: plmnA}, t0); err != nil {
		t.Fatalf("attach after running: %v", err)
	}
	c.Teardown(dep.DataCenter, dep.StackID, dep.EPCID)
	dc, _ := tb.Region.Get(testbed.EdgeDC)
	if got := dc.Capacity().UsedVCPUs; got != 0 {
		t.Fatalf("teardown leaked %.1f vCPUs", got)
	}
	c.Teardown(dep.DataCenter, dep.StackID, dep.EPCID) // idempotent
}

func TestCloudDeployUnknownDC(t *testing.T) {
	tb := newTB(t)
	if _, err := tb.Ctrl.Cloud.DeployEPC("s1", "nowhere", plmnA, 30, slice.ClassEMBB); err == nil {
		t.Fatal("unknown DC accepted")
	}
	if tb.Ctrl.Cloud.CanFit("nowhere", 30) {
		t.Fatal("unknown DC fits")
	}
}

func TestCloudDeployNoCapacity(t *testing.T) {
	tb := testbed.MustNew(testbed.Config{EdgeHosts: 1, EdgeHostVCPUs: 2}, nil)
	// A small vEPC needs 4+ vCPUs; the edge has 2.
	if tb.Ctrl.Cloud.CanFit(testbed.EdgeDC, 10) {
		t.Fatal("tiny edge fits vEPC")
	}
	if _, err := tb.Ctrl.Cloud.DeployEPC("s1", testbed.EdgeDC, plmnA, 10, slice.ClassEMBB); err == nil {
		t.Fatal("deploy into tiny edge succeeded")
	}
}

func TestCloudMarkRunningUnknown(t *testing.T) {
	tb := newTB(t)
	if err := tb.Ctrl.Cloud.MarkEPCRunning("ghost", t0); err == nil {
		t.Fatal("unknown EPC marked running")
	}
}

func TestSetTelemetryPushesAllDomains(t *testing.T) {
	tb := newTB(t)
	store := monitor.NewStore(32)
	tb.Ctrl.RAN.ReserveSlice(plmnA, 40)
	tb.Ctrl.Transport.SetupPaths("s1", testbed.EdgeDC, 100, 0)
	tb.Ctrl.Cloud.DeployEPC("s1", testbed.EdgeDC, plmnA, 30, slice.ClassEMBB)
	tb.Ctrl.PushTelemetry(store, t0)
	snap := store.Snapshot()
	for _, key := range []string{
		monitor.DomainMetric("ran", "utilization"),
		monitor.DomainMetric("transport", "utilization"),
		monitor.DomainMetric("cloud", "utilization"),
	} {
		v, ok := snap[key]
		if !ok {
			t.Fatalf("metric %s missing: %v", key, snap)
		}
		if v <= 0 {
			t.Fatalf("metric %s = %v, want > 0", key, v)
		}
	}
}

func TestSetAllOrdered(t *testing.T) {
	tb := newTB(t)
	all := tb.Ctrl.All()
	if len(all) != 3 {
		t.Fatalf("%d controllers", len(all))
	}
	if all[0].Domain() != "cloud" || all[1].Domain() != "ran" || all[2].Domain() != "transport" {
		t.Fatalf("order %s %s %s", all[0].Domain(), all[1].Domain(), all[2].Domain())
	}
}

func TestControllerInterfaceCompliance(t *testing.T) {
	var _ ctrl.Controller = (*ctrl.RANController)(nil)
	var _ ctrl.Controller = (*ctrl.TransportController)(nil)
	var _ ctrl.Controller = (*ctrl.CloudController)(nil)
}

func TestTestbedShape(t *testing.T) {
	tb := newTB(t)
	if got := len(tb.RAN.Names()); got != 2 {
		t.Fatalf("eNBs %d", got)
	}
	if got := tb.Transport.NodesOfKind(transport.KindDC); len(got) != 2 {
		t.Fatalf("DCs %v", got)
	}
	if tb.RadioCapacityMbps() <= 0 {
		t.Fatal("no radio capacity")
	}
	if _, ok := tb.Region.Get(testbed.CoreDC); !ok {
		t.Fatal("core DC missing")
	}
	// Edge must be cheaper in delay than core from every eNB.
	for i := 0; i < 2; i++ {
		pe, err := tb.Transport.ShortestPath(transport.PathRequest{From: testbed.ENBName(i), To: testbed.EdgeDC, MinMbps: 1})
		if err != nil {
			t.Fatal(err)
		}
		pc, err := tb.Transport.ShortestPath(transport.PathRequest{From: testbed.ENBName(i), To: testbed.CoreDC, MinMbps: 1})
		if err != nil {
			t.Fatal(err)
		}
		if pe.DelayMs >= pc.DelayMs {
			t.Fatalf("edge %0.2f >= core %0.2f from %s", pe.DelayMs, pc.DelayMs, testbed.ENBName(i))
		}
	}
}

func TestTestbedScalesENBs(t *testing.T) {
	tb := testbed.MustNew(testbed.Config{ENBs: 4}, nil)
	if got := len(tb.RAN.Names()); got != 4 {
		t.Fatalf("eNBs %d", got)
	}
	if got := len(tb.Transport.NodesOfKind(transport.KindENB)); got != 4 {
		t.Fatalf("transport eNB nodes %d", got)
	}
}

func TestCanFitHonoursPolicy(t *testing.T) {
	for _, pol := range []cloud.PlacementPolicy{cloud.FirstFit, cloud.BestFit, cloud.WorstFit} {
		tb := testbed.MustNew(testbed.Config{Placement: pol}, nil)
		if !tb.Ctrl.Cloud.CanFit(testbed.CoreDC, 120) {
			t.Fatalf("policy %v: core cannot fit a large vEPC", pol)
		}
	}
}
