// Package federation implements the multi-cluster orchestration tier of
// ROADMAP item 3: a registry of member clusters (each a full
// core.Orchestrator over its own testbed), a hierarchical capacity ledger
// tracking per-cluster headroom at the federation level, and a latency- and
// capacity-aware placement engine that maps a submitted slice — or a
// cross-cluster span — onto owning clusters.
//
// Ownership and propagation follow the package-orchestration model: the
// federation owns the span (the cross-cluster intent), each member owns the
// member-local leg slices realizing it, and state propagates one way — the
// federation submits and deletes legs through the member's public facade and
// refreshes its advertised-capacity summaries from the member's books at
// every barrier; a member never knows it is federated beyond the "fed:<span>"
// tenant tag on its legs.
//
// Cross-cluster spans reuse the PR 2 two-phase engine unchanged: every
// member is wrapped as a ctrl.Domain (ctrl.ClusterDomain), and
// core.InstallSpan drives Reserve/Commit/Abort across the legs with the
// engine's reverse-order rollback, typed rejection taxonomy and
// fault-injection hooks. Placement is deterministic: members are kept sorted
// by name regardless of Join order, member testbed randomness is derived
// from the member's name (never from shared-RNG consumption order), and leg
// demand processes are RNG-free — so the same seed yields bit-identical
// per-cluster outcomes under any join order (TestFederationDeterminism).
//
// Partition semantics (the survivability model): partitioning a member
// freezes its advertised summary and excludes it from placement; spans with
// a leg on it are rolled back on every reachable member, and the
// unreachable member's legs are remembered as orphans, deleted exactly once
// when the partition heals. Failing a member is a permanent partition: its
// control loop stops and placement re-homes all new demand elsewhere. The
// federation conservation invariant (invariant.FedSweep) audits the books
// at every barrier: member ledger + federation headroom == advertised
// capacity for every reachable member, and the reserved book equals the
// span registry's per-member leg sum.
package federation

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/invariant"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

// ClusterConfig describes one member cluster.
type ClusterConfig struct {
	// Name identifies the member; it keys the registry and must be unique.
	Name string `json:"name"`
	// Location is free-form placement metadata ("eu-west", "edge-muc-1").
	Location string `json:"location"`
	// LatencyMs is the fixed control/user-plane latency the federation tier
	// adds to reach this cluster; placement subtracts it from every span's
	// latency budget before handing the leg down.
	LatencyMs float64 `json:"latency_ms"`
	// Orchestrator configures the member's orchestrator.
	Orchestrator core.Config `json:"-"`
	// Testbed scales the member's infrastructure (zero = demo default).
	Testbed testbed.Config `json:"-"`
}

// Config tunes the federation tier.
type Config struct {
	// Seed drives the per-member testbed randomness. Each member's RNG is
	// derived from Seed and the member's name, so outcomes are independent
	// of join order and of any shared-RNG consumption interleaving.
	Seed int64
	// Epoch is the federation barrier period: summaries refresh and the
	// conservation invariant sweeps every Epoch (default 1m, matching the
	// member epoch default).
	Epoch time.Duration
	// BarrierOffset delays the first barrier past the member epoch instant
	// (default 1s), so a barrier never ties with member epoch events on the
	// shared clock.
	BarrierOffset time.Duration
	// Audit attaches the federation conservation auditor: every barrier
	// runs invariant.FedSweep over the books and the span registry.
	Audit bool
	// AuditOnViolation, when set with Audit, is called synchronously for
	// every detected violation.
	AuditOnViolation func(invariant.Violation)
}

func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = time.Minute
	}
	if c.BarrierOffset <= 0 {
		c.BarrierOffset = time.Second
	}
	return c
}

// Cluster is one registered member: a full orchestrator plus its testbed,
// the ctrl.Domain adapter the span engine drives, and the federation-tier
// books for it. The books (advertised, headroom, reserved) are guarded by
// the Federation mutex.
type Cluster struct {
	cfg     ClusterConfig
	orch    *core.Orchestrator
	tb      *testbed.Testbed
	domain  *ctrl.ClusterDomain
	backend *memberBackend

	// Federation-tier capacity books (guarded by Federation.mu).
	// advertised is the member's capacity bar (radio capacity times the
	// member's utilization cap) at the last refresh; headroom is what the
	// federation may still place on it (advertised minus the member's
	// ledger load at refresh, minus contracts placed since); reserved is
	// the running sum of live span-leg contracts on the member.
	advertised float64
	headroom   float64
	reserved   float64
	ledgerLast float64 // member ledger load at the last refresh
	epochLast  int     // member epoch count at the last refresh

	partitioned bool
	failed      bool
}

// Name returns the member's name.
func (c *Cluster) Name() string { return c.cfg.Name }

// Orchestrator returns the member's orchestrator.
func (c *Cluster) Orchestrator() *core.Orchestrator { return c.orch }

// Testbed returns the member's testbed.
func (c *Cluster) Testbed() *testbed.Testbed { return c.tb }

// Domain returns the member's ctrl.Domain adapter (chaos timelines arm
// faults on it through the standard FaultInjector capability).
func (c *Cluster) Domain() *ctrl.ClusterDomain { return c.domain }

// alive reports whether the federation can currently reach the member.
func (c *Cluster) alive() bool { return !c.partitioned && !c.failed }

// ClusterInfo is the REST/dashboard view of one member's registration and
// federation-tier books.
type ClusterInfo struct {
	Name           string  `json:"name"`
	Location       string  `json:"location,omitempty"`
	LatencyMs      float64 `json:"latency_ms"`
	Alive          bool    `json:"alive"`
	Partitioned    bool    `json:"partitioned,omitempty"`
	Failed         bool    `json:"failed,omitempty"`
	AdvertisedMbps float64 `json:"advertised_mbps"`
	HeadroomMbps   float64 `json:"headroom_mbps"`
	ReservedMbps   float64 `json:"reserved_mbps"`
	LedgerMbps     float64 `json:"ledger_mbps"`
	Epoch          int     `json:"epoch"`
	ActiveSlices   int     `json:"active_slices"`
}

// Federation is the multi-cluster orchestration tier. All methods are safe
// for concurrent use; the mutex guards the registry, the span table and the
// capacity books, and is never held across a member call that can block on
// member shard locks (the span install itself runs unlocked — the books are
// reserved first, exactly like the core's two-phase ledger reservation).
type Federation struct {
	cfg   Config
	clock sim.Scheduler
	audit *invariant.Auditor

	mu       sync.Mutex
	members  []*Cluster // sorted by name, regardless of Join order
	byName   map[string]*Cluster
	spans    map[slice.ID]*span
	orphans  map[string][]slice.ID // member name -> leg IDs awaiting heal
	spanSeq  int64
	barriers int

	// Federation-tier outcome counters (span placements, not member
	// admissions) plus the in-flight submissions' mean-demand fractions.
	admitted      int
	rejected      int
	crossCluster  int
	rejectReasons map[string]int
	pendingFrac   map[slice.ID]float64

	loopMu sync.Mutex
	loop   *sim.Event
}

// New returns an empty federation on the shared clock.
func New(cfg Config, clock sim.Scheduler) *Federation {
	cfg = cfg.withDefaults()
	f := &Federation{
		cfg:         cfg,
		clock:       clock,
		byName:      make(map[string]*Cluster),
		spans:       make(map[slice.ID]*span),
		orphans:     make(map[string][]slice.ID),
		pendingFrac: make(map[slice.ID]float64),
	}
	if cfg.Audit {
		f.audit = invariant.New(invariant.Options{OnViolation: cfg.AuditOnViolation})
	}
	return f
}

// memberSeed derives the member's testbed RNG seed from the federation seed
// and the member's name — never from shared-RNG consumption order, so the
// channel realizations of a member are identical under any join order.
func memberSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Join registers a member cluster: builds its testbed and orchestrator on
// the shared clock and inserts it into the name-sorted registry. The books
// are primed immediately, so placement works before the first barrier.
func (f *Federation) Join(cc ClusterConfig) (*Cluster, error) {
	if cc.Name == "" {
		return nil, fmt.Errorf("federation: cluster name required")
	}
	rng := rand.New(rand.NewSource(memberSeed(f.cfg.Seed, cc.Name)))
	tb, err := testbed.New(cc.Testbed, rng)
	if err != nil {
		return nil, fmt.Errorf("federation: cluster %s: %w", cc.Name, err)
	}
	orch := core.New(cc.Orchestrator, tb, f.clock, monitor.NewStore(4096))
	c := &Cluster{cfg: cc, orch: orch, tb: tb}
	c.backend = newMemberBackend(f, c)
	c.domain = ctrl.NewClusterDomain(cc.Name, c.backend)

	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byName[cc.Name]; dup {
		return nil, fmt.Errorf("federation: duplicate cluster name %q", cc.Name)
	}
	f.byName[cc.Name] = c
	f.members = append(f.members, c)
	sort.Slice(f.members, func(i, j int) bool {
		return f.members[i].cfg.Name < f.members[j].cfg.Name
	})
	f.refreshLocked(c)
	return c, nil
}

// Cluster returns the member by name.
func (f *Federation) Cluster(name string) (*Cluster, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.byName[name]
	return c, ok
}

// Clusters returns the members' names in registry (sorted) order.
func (f *Federation) Clusters() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.members))
	for i, c := range f.members {
		out[i] = c.cfg.Name
	}
	return out
}

// ClusterInfos returns the registry view in sorted order.
func (f *Federation) ClusterInfos() []ClusterInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ClusterInfo, 0, len(f.members))
	for _, c := range f.members {
		out = append(out, ClusterInfo{
			Name:           c.cfg.Name,
			Location:       c.cfg.Location,
			LatencyMs:      c.cfg.LatencyMs,
			Alive:          c.alive(),
			Partitioned:    c.partitioned,
			Failed:         c.failed,
			AdvertisedMbps: c.advertised,
			HeadroomMbps:   c.headroom,
			ReservedMbps:   c.reserved,
			LedgerMbps:     c.ledgerLast,
			Epoch:          c.epochLast,
			ActiveSlices:   c.orch.ActiveCount(),
		})
	}
	return out
}

// Auditor returns the federation conservation auditor (nil unless
// Config.Audit).
func (f *Federation) Auditor() *invariant.Auditor { return f.audit }

// Barriers returns how many federation barriers have run.
func (f *Federation) Barriers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.barriers
}

// Start starts every member's control loop (in sorted order, so the shared
// clock sees a deterministic schedule) and the federation barrier. The
// first barrier fires one Epoch plus BarrierOffset from now — offset past
// the member epoch instants so barrier events never tie with member epochs.
func (f *Federation) Start() {
	f.mu.Lock()
	members := append([]*Cluster(nil), f.members...)
	f.mu.Unlock()
	for _, c := range members {
		c.orch.Start()
	}
	f.loopMu.Lock()
	defer f.loopMu.Unlock()
	if f.loop != nil {
		return
	}
	var tick func()
	tick = func() {
		f.RunBarrier()
		f.loopMu.Lock()
		if f.loop != nil {
			f.loop = f.clock.After(f.cfg.Epoch, "federation/barrier", tick)
		}
		f.loopMu.Unlock()
	}
	f.loop = f.clock.After(f.cfg.Epoch+f.cfg.BarrierOffset, "federation/barrier", tick)
}

// Stop cancels the barrier and stops every member's control loop.
func (f *Federation) Stop() {
	f.loopMu.Lock()
	if f.loop != nil {
		f.loop.Cancel()
		f.loop = nil
	}
	f.loopMu.Unlock()
	f.mu.Lock()
	members := append([]*Cluster(nil), f.members...)
	f.mu.Unlock()
	for _, c := range members {
		c.orch.Stop()
	}
}

// refreshLocked re-anchors one reachable member's books to ground truth:
// advertised is the member's current capacity bar and headroom snaps to
// advertised minus the member's ledger load. Caller holds f.mu.
func (f *Federation) refreshLocked(c *Cluster) {
	if !c.alive() {
		return
	}
	mcfg := c.orch.Config()
	c.advertised = c.tb.RadioCapacityMbps() * mcfg.UtilizationCap
	c.ledgerLast = c.orch.LedgerLoad()
	c.headroom = c.advertised - c.ledgerLast
	if c.headroom < 0 {
		c.headroom = 0
	}
	c.epochLast = c.orch.Gain().Epochs
	c.backend.bump()
}

// RunBarrier runs one federation barrier: refresh every reachable member's
// advertised summary from its latest books, then audit the federation
// conservation invariant over the refreshed cut. The epoch pipeline of each
// member runs independently; the barrier only reads their public facades.
func (f *Federation) RunBarrier() {
	f.mu.Lock()
	f.barriers++
	for _, c := range f.members {
		f.refreshLocked(c)
	}
	var in invariant.FedSweepInput
	if f.audit != nil {
		in = f.fedSweepInputLocked()
	}
	f.mu.Unlock()
	if f.audit != nil {
		f.audit.FedSweep(in)
	}
}

// fedSweepInputLocked builds the conservation auditor's neutral view of the
// books and the span registry. Caller holds f.mu.
func (f *Federation) fedSweepInputLocked() invariant.FedSweepInput {
	in := invariant.FedSweepInput{
		Orphans: make(map[string][]slice.ID, len(f.orphans)),
	}
	for name, legs := range f.orphans {
		in.Orphans[name] = append([]slice.ID(nil), legs...)
	}
	for _, c := range f.members {
		mv := invariant.FedMemberView{
			Name:           c.cfg.Name,
			Alive:          c.alive(),
			AdvertisedMbps: c.advertised,
			HeadroomMbps:   c.headroom,
			ReservedMbps:   c.reserved,
			FedSlices:      make(map[slice.ID]slice.ID),
		}
		if c.alive() {
			// Fresh ground truth, read after the refresh in the same
			// barrier event: verifies the refresh pipeline kept the
			// identity, not merely that a-b == a-b.
			mv.LedgerMbps = c.orch.LedgerLoad()
			for _, sn := range c.orch.List() {
				if spanID, ok := spanOfTenant(sn.Tenant); ok && liveState(sn.State) {
					mv.FedSlices[sn.ID] = spanID
				}
			}
		}
		in.Members = append(in.Members, mv)
	}
	ids := make([]slice.ID, 0, len(f.spans))
	for id := range f.spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sp := f.spans[id]
		sv := invariant.FedSpanView{ID: id}
		for _, leg := range sp.legs {
			sv.Legs = append(sv.Legs, invariant.FedLegView{
				Member: leg.Cluster, Leg: leg.Slice, Mbps: leg.Mbps,
			})
		}
		in.Spans = append(in.Spans, sv)
	}
	return in
}

// liveState reports whether a member-slice state string means the slice
// currently holds resources.
func liveState(state string) bool {
	switch state {
	case "admitted", "installing", "active", "reconfiguring":
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Partition, heal, fail-over.

// Partition marks the member unreachable: its summary freezes, placement
// excludes it, and every span with a leg on it is rolled back on all
// reachable members — the unreachable legs are remembered as orphans and
// deleted when the partition heals. The member itself keeps running (a
// control-plane partition, not a crash).
func (f *Federation) Partition(name string) error {
	return f.isolate(name, false)
}

// Fail marks the member permanently dead: like Partition, but the member's
// control loop is stopped and it never rejoins placement. New demand
// re-homes to the surviving members.
func (f *Federation) Fail(name string) error {
	return f.isolate(name, true)
}

func (f *Federation) isolate(name string, fail bool) error {
	f.mu.Lock()
	c, ok := f.byName[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("federation: unknown cluster %q", name)
	}
	if fail {
		c.failed = true
	} else if c.failed {
		f.mu.Unlock()
		return fmt.Errorf("federation: cluster %q already failed", name)
	} else {
		c.partitioned = true
	}
	c.backend.bump()
	// Roll back every span touching the member: release the books for all
	// its legs, remember the unreachable leg as an orphan, and collect the
	// reachable legs to tear down outside the lock.
	type victimLeg struct {
		backend *memberBackend
		leg     ctrl.ClusterLeg
	}
	var teardown []victimLeg
	ids := make([]slice.ID, 0, len(f.spans))
	for id := range f.spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sp := f.spans[id]
		touched := false
		for _, leg := range sp.legs {
			if leg.Cluster == name {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		f.dropSpanLocked(sp)
		for _, leg := range sp.legs {
			if leg.Cluster == name {
				f.orphans[name] = append(f.orphans[name], leg.Slice)
				continue
			}
			if mc, ok := f.byName[leg.Cluster]; ok {
				teardown = append(teardown, victimLeg{
					backend: mc.backend,
					leg:     ctrl.ClusterLeg{Slice: leg.Slice, Mbps: leg.Mbps},
				})
			}
		}
	}
	orch := c.orch
	f.mu.Unlock()
	for _, v := range teardown {
		v.backend.SpanRelease(v.leg)
	}
	if fail {
		orch.Stop()
	}
	return nil
}

// Heal ends the member's partition: the orphaned legs are deleted exactly
// once, the summary refreshes, and the member rejoins placement.
func (f *Federation) Heal(name string) error {
	f.mu.Lock()
	c, ok := f.byName[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("federation: unknown cluster %q", name)
	}
	if c.failed {
		f.mu.Unlock()
		return fmt.Errorf("federation: cluster %q failed permanently", name)
	}
	c.partitioned = false
	orphans := f.orphans[name]
	delete(f.orphans, name)
	backend := c.backend
	f.mu.Unlock()
	// Delete the orphans before re-anchoring the books, so the refreshed
	// headroom reflects the reclaimed capacity (a leg may have expired on
	// its own during the partition — release is idempotent).
	for _, legID := range orphans {
		backend.releaseLeg(legID)
	}
	f.mu.Lock()
	f.refreshLocked(c)
	f.mu.Unlock()
	return nil
}
