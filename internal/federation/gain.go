package federation

import (
	"sort"

	"repro/internal/core"
)

// Stats counts federation-tier outcomes — span placements, not member
// admissions (a 2-leg span is one installed span here and two admitted
// slices in the aggregated member gain).
type Stats struct {
	SpansInstalled    int            `json:"spans_installed"`
	SpansRejected     int            `json:"spans_rejected"`
	SpansCrossCluster int            `json:"spans_cross_cluster"`
	SpansLive         int            `json:"spans_live"`
	Barriers          int            `json:"barriers"`
	RejectReasons     map[string]int `json:"reject_reasons,omitempty"`
}

// Stats returns the federation-tier counters.
func (f *Federation) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		SpansInstalled:    f.admitted,
		SpansRejected:     f.rejected,
		SpansCrossCluster: f.crossCluster,
		SpansLive:         len(f.spans),
		Barriers:          f.barriers,
	}
	if len(f.rejectReasons) > 0 {
		s.RejectReasons = make(map[string]int, len(f.rejectReasons))
		for code, n := range f.rejectReasons {
			s.RejectReasons[code] = n
		}
	}
	return s
}

// ClusterGain pairs a member with its gain report.
type ClusterGain struct {
	Cluster string          `json:"cluster"`
	Gain    core.GainReport `json:"gain"`
}

// ClusterGains returns every member's gain report in name order — the
// canonical fold order, so downstream aggregation is bit-identical across
// member orderings.
func (f *Federation) ClusterGains() []ClusterGain {
	f.mu.Lock()
	members := append([]*Cluster(nil), f.members...)
	f.mu.Unlock()
	out := make([]ClusterGain, 0, len(members))
	for _, c := range members {
		out = append(out, ClusterGain{Cluster: c.cfg.Name, Gain: c.orch.Gain()})
	}
	return out
}

// Gain returns the federated multiplexing-gain report: every member's report
// folded in name order (see core.AggregateGain for the fold semantics).
func (f *Federation) Gain() core.GainReport {
	gains := f.ClusterGains()
	reports := make([]core.GainReport, len(gains))
	for i, g := range gains {
		reports[i] = g.Gain
	}
	return core.AggregateGain(reports)
}

// ClusterEvent is one member lifecycle event tagged with its cluster.
type ClusterEvent struct {
	Cluster string `json:"cluster"`
	core.Event
}

// RecentEvents merges the members' retained lifecycle events into one
// federation-wide stream: ordered by time, then cluster name, then the
// member-local sequence number, keeping the most recent n overall.
func (f *Federation) RecentEvents(n int) []ClusterEvent {
	f.mu.Lock()
	members := append([]*Cluster(nil), f.members...)
	f.mu.Unlock()
	var all []ClusterEvent
	for _, c := range members {
		for _, ev := range c.orch.Events().Recent(n) {
			all = append(all, ClusterEvent{Cluster: c.cfg.Name, Event: ev})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if !all[i].Time.Equal(all[j].Time) {
			return all[i].Time.Before(all[j].Time)
		}
		if all[i].Cluster != all[j].Cluster {
			return all[i].Cluster < all[j].Cluster
		}
		return all[i].Seq < all[j].Seq
	})
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}
