package federation

import (
	"sync"
	"sync/atomic"

	"repro/internal/ctrl"
	"repro/internal/slice"
	"repro/internal/traffic"
)

// memberBackend implements ctrl.ClusterBackend over one member's public
// orchestrator facade. It owns the span→member-leg mapping (set at reserve,
// cleared on release) and the member's feasibility version counter: every
// federation-tier state change that can alter a Feasible answer — headroom
// reserve/release, summary refresh, partition, heal, fail — bumps it.
type memberBackend struct {
	f       *Federation
	c       *Cluster
	version atomic.Uint64

	mu        sync.Mutex
	legBySpan map[slice.ID]slice.ID // span ID -> member-local leg slice ID
	spanByLeg map[slice.ID]slice.ID
}

func newMemberBackend(f *Federation, c *Cluster) *memberBackend {
	return &memberBackend{
		f:         f,
		c:         c,
		legBySpan: make(map[slice.ID]slice.ID),
		spanByLeg: make(map[slice.ID]slice.ID),
	}
}

// bump invalidates the member's feasibility version. Called under f.mu by
// every books/reachability mutation.
func (b *memberBackend) bump() { b.version.Add(1) }

// FeasVersion implements ctrl.ClusterBackend.
func (b *memberBackend) FeasVersion() uint64 { return b.version.Load() }

// Utilization implements ctrl.ClusterBackend: the member's ledger load over
// its advertised capacity bar, read straight from the member (no f.mu).
func (b *memberBackend) Utilization() float64 {
	bar := b.c.tb.RadioCapacityMbps() * b.c.orch.Config().UtilizationCap
	if bar <= 0 {
		return 0
	}
	u := b.c.orch.LedgerLoad() / bar
	if u > 1 {
		u = 1
	}
	return u
}

// SpanFeasible implements ctrl.ClusterBackend via the federation-tier dry
// run (see Federation.legFeasible for the versioning contract).
func (b *memberBackend) SpanFeasible(tx ctrl.Tx) *slice.RejectionCause {
	return b.f.legFeasible(b.c, tx)
}

// SpanReserve implements ctrl.ClusterBackend: submit the leg to the member
// as a normal slice request tagged with the owning span's tenant. The
// member runs its full admission and multi-domain install; a rejection
// comes back with the member's own taxonomy code, re-domained to the
// cluster adapter. The leg's demand process is an RNG-free constant, so
// member outcomes never depend on federation iteration order.
func (b *memberBackend) SpanReserve(tx ctrl.Tx) (ctrl.ClusterLeg, *slice.RejectionCause) {
	dom := b.c.domain.Domain()
	demand := traffic.NewConstant(tx.Mbps*b.f.spanFraction(tx.Slice), 0, nil)
	sl, err := b.c.orch.Submit(slice.Request{Tenant: fedTenant(tx.Slice), SLA: tx.SLA}, demand)
	if err != nil {
		return ctrl.ClusterLeg{}, slice.Rejectf(slice.RejectInternal, dom,
			"cluster %s: %v", b.c.cfg.Name, err)
	}
	if sl.State() == slice.StateRejected {
		if cause, ok := sl.Cause(); ok {
			return ctrl.ClusterLeg{}, slice.Rejectf(cause.Code, dom,
				"cluster %s: %s", b.c.cfg.Name, cause.Detail)
		}
		return ctrl.ClusterLeg{}, slice.Rejectf(slice.RejectOther, dom,
			"cluster %s rejected the leg", b.c.cfg.Name)
	}
	b.mu.Lock()
	b.legBySpan[tx.Slice] = sl.ID()
	b.spanByLeg[sl.ID()] = tx.Slice
	b.mu.Unlock()
	return ctrl.ClusterLeg{Slice: sl.ID(), Mbps: tx.Mbps}, nil
}

// SpanRelease implements ctrl.ClusterBackend. Idempotent: the leg may
// already have expired on the member's own clock.
func (b *memberBackend) SpanRelease(leg ctrl.ClusterLeg) { b.releaseLeg(leg.Slice) }

// SpanReleaseSlice implements ctrl.ClusterBackend: release by owning span ID
// (the engine's Domain.Release verb hands down the span's slice ID).
func (b *memberBackend) SpanReleaseSlice(id slice.ID) {
	b.mu.Lock()
	legID, ok := b.legBySpan[id]
	b.mu.Unlock()
	if ok {
		b.releaseLeg(legID)
	}
}

// releaseLeg deletes the member-local leg slice and clears the mapping.
// Idempotent — a double release or a release after member-side expiry is a
// no-op error the member already tolerates.
func (b *memberBackend) releaseLeg(legID slice.ID) {
	b.mu.Lock()
	if spanID, ok := b.spanByLeg[legID]; ok {
		delete(b.spanByLeg, legID)
		delete(b.legBySpan, spanID)
	}
	b.mu.Unlock()
	_ = b.c.orch.Delete(legID)
}

// forget drops the span's mapping without touching the member — used when
// the span record retires but the member leg lives on its own terms (expiry)
// or is torn down through a grant abort that carries the leg ID directly.
func (b *memberBackend) forget(spanID slice.ID) {
	b.mu.Lock()
	if legID, ok := b.legBySpan[spanID]; ok {
		delete(b.legBySpan, spanID)
		delete(b.spanByLeg, legID)
	}
	b.mu.Unlock()
}

// spanFraction returns the mean-demand fraction recorded for an in-flight
// span submission (default 0.6 of the contract).
func (f *Federation) spanFraction(id slice.ID) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if frac, ok := f.pendingFrac[id]; ok {
		return frac
	}
	return 0.6
}
