package federation_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
)

func memberConfig(name, location string, latencyMs float64) federation.ClusterConfig {
	return federation.ClusterConfig{
		Name:      name,
		Location:  location,
		LatencyMs: latencyMs,
		Orchestrator: core.Config{
			Overbook:  true,
			Risk:      0.9,
			PLMNLimit: 64,
			Audit:     true,
		},
		Testbed: testbed.Config{MaxPLMNs: 64, RedundantTransport: true},
	}
}

// newTestFed builds a started federation joining the named members in the
// given order (Join keeps the registry name-sorted regardless).
func newTestFed(t *testing.T, seed int64, names []string) (*federation.Federation, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(seed)
	fed := federation.New(federation.Config{Seed: seed, Audit: true}, s)
	latency := map[string]float64{"east": 2, "west": 3, "north": 5}
	for _, n := range names {
		if _, err := fed.Join(memberConfig(n, "eu-"+n, latency[n])); err != nil {
			t.Fatalf("join %s: %v", n, err)
		}
	}
	return fed, s
}

func sla(mbps float64) slice.SLA {
	return slice.SLA{
		ThroughputMbps: mbps,
		MaxLatencyMs:   50,
		Duration:       2 * time.Hour,
		PriceEUR:       2 * mbps,
		PenaltyEUR:     1,
		Class:          slice.ClassEMBB,
	}
}

// TestFederatedSpanAcceptance is the PR's acceptance drill: on a 2-cluster
// federation, a request bigger than any single member's headroom installs as
// a cross-cluster span through the unmodified two-phase engine — member-local
// leg slices tagged with the owning span live on both members — and the
// conservation invariant is clean at the barrier. Deleting the span releases
// every leg.
func TestFederatedSpanAcceptance(t *testing.T) {
	fed, s := newTestFed(t, 42, []string{"east", "west"})
	fed.Start()
	defer fed.Stop()

	infos := fed.ClusterInfos()
	if len(infos) != 2 {
		t.Fatalf("want 2 clusters, got %+v", infos)
	}
	single := infos[0].HeadroomMbps
	if infos[1].HeadroomMbps < single {
		single = infos[1].HeadroomMbps
	}
	if single <= 0 {
		t.Fatalf("no headroom advertised: %+v", infos)
	}

	st, err := fed.Submit(federation.Request{Tenant: "acme", SLA: sla(1.5 * single)})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "installed" {
		t.Fatalf("span rejected: %+v", st)
	}
	if len(st.Legs) != 2 {
		t.Fatalf("want a 2-leg cross-cluster span, got %+v", st.Legs)
	}
	clusters := map[string]bool{}
	for _, leg := range st.Legs {
		clusters[leg.Cluster] = true
		c, ok := fed.Cluster(leg.Cluster)
		if !ok {
			t.Fatalf("leg on unknown cluster %q", leg.Cluster)
		}
		found := false
		for _, sn := range c.Orchestrator().List() {
			if sn.ID == leg.Slice {
				found = true
				if !strings.HasPrefix(sn.Tenant, "fed:") {
					t.Fatalf("leg %s tenant %q lacks the fed: span tag", leg.Slice, sn.Tenant)
				}
				if sn.State != "active" && sn.State != "installing" && sn.State != "admitted" {
					t.Fatalf("leg %s not live: %s", leg.Slice, sn.State)
				}
			}
		}
		if !found {
			t.Fatalf("member %s does not hold leg %s", leg.Cluster, leg.Slice)
		}
	}
	if len(clusters) != 2 {
		t.Fatalf("span did not cross clusters: %+v", st.Legs)
	}

	// Let the barrier sweep the conservation invariant a few times.
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	a := fed.Auditor()
	if a == nil {
		t.Fatal("no federation auditor")
	}
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("conservation violations: %v", vs)
	}
	if a.Stats().Sweeps == 0 {
		t.Fatal("federation barrier never swept")
	}

	if err := fed.Delete(st.ID); err != nil {
		t.Fatal(err)
	}
	for _, leg := range st.Legs {
		c, _ := fed.Cluster(leg.Cluster)
		for _, sn := range c.Orchestrator().List() {
			if sn.ID == leg.Slice && sn.State != "terminated" {
				t.Fatalf("leg %s survives span delete in state %s", leg.Slice, sn.State)
			}
		}
	}
	if err := s.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if vs := fed.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("post-delete violations: %v", vs)
	}
}

// TestFederationDeterminism proves placement and member outcomes are
// independent of join order: the same seed and the same submissions against
// members joined in different orders yield identical placements and
// bit-identical per-cluster gain reports.
func TestFederationDeterminism(t *testing.T) {
	orders := [][]string{
		{"east", "west", "north"},
		{"north", "west", "east"},
	}
	type outcome struct {
		spans  []federation.SpanStatus
		gains  []federation.ClusterGain
		agg    core.GainReport
		infos  []federation.ClusterInfo
		sweeps int
	}
	runs := make([]outcome, 0, len(orders))
	for _, order := range orders {
		fed, s := newTestFed(t, 7, order)
		fed.Start()
		// A mix of sizes: small single-cluster slices and oversized
		// cross-cluster spans, interleaved with time so epochs run between.
		sizes := []float64{40, 60, 500, 30, 400, 80}
		for _, mbps := range sizes {
			if _, err := fed.Submit(federation.Request{Tenant: "det", SLA: sla(mbps)}); err != nil {
				t.Fatal(err)
			}
			if err := s.RunFor(5 * time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RunFor(time.Hour); err != nil {
			t.Fatal(err)
		}
		o := outcome{
			spans: fed.Spans(),
			gains: fed.ClusterGains(),
			agg:   fed.Gain(),
			infos: fed.ClusterInfos(),
		}
		if fed.Auditor() != nil {
			if vs := fed.Auditor().Violations(); len(vs) != 0 {
				t.Fatalf("order %v: violations %v", order, vs)
			}
			o.sweeps = fed.Auditor().Stats().Sweeps
		}
		fed.Stop()
		runs = append(runs, o)
	}
	if !reflect.DeepEqual(runs[0].spans, runs[1].spans) {
		t.Errorf("placements diverged across join orders:\n a: %+v\n b: %+v", runs[0].spans, runs[1].spans)
	}
	if !reflect.DeepEqual(runs[0].gains, runs[1].gains) {
		t.Errorf("per-cluster gain reports diverged:\n a: %+v\n b: %+v", runs[0].gains, runs[1].gains)
	}
	if !reflect.DeepEqual(runs[0].agg, runs[1].agg) {
		t.Errorf("aggregated gain diverged:\n a: %+v\n b: %+v", runs[0].agg, runs[1].agg)
	}
	if !reflect.DeepEqual(runs[0].infos, runs[1].infos) {
		t.Errorf("cluster infos diverged:\n a: %+v\n b: %+v", runs[0].infos, runs[1].infos)
	}
	if runs[0].sweeps == 0 || runs[0].sweeps != runs[1].sweeps {
		t.Errorf("sweep counts diverged or zero: %d vs %d", runs[0].sweeps, runs[1].sweeps)
	}
}

// TestFederationPartitionRollback pins the partition semantics: partitioning
// a member rolls back spans touching it on the reachable members, placement
// excludes it, the heal deletes the orphaned legs exactly once and the books
// reconverge — all conservation-clean.
func TestFederationPartitionRollback(t *testing.T) {
	fed, s := newTestFed(t, 11, []string{"east", "west"})
	fed.Start()
	defer fed.Stop()

	infos := fed.ClusterInfos()
	single := infos[0].HeadroomMbps
	if infos[1].HeadroomMbps < single {
		single = infos[1].HeadroomMbps
	}
	st, err := fed.Submit(federation.Request{Tenant: "acme", SLA: sla(1.5 * single)})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "installed" || len(st.Legs) != 2 {
		t.Fatalf("want an installed 2-leg span, got %+v", st)
	}

	if err := fed.Partition("west"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fed.Get(st.ID); ok {
		t.Fatal("span touching the partitioned member still registered")
	}
	east, _ := fed.Cluster("east")
	for _, sn := range east.Orchestrator().List() {
		if strings.HasPrefix(sn.Tenant, "fed:") && sn.State != "terminated" {
			t.Fatalf("reachable leg %s not rolled back: %s", sn.ID, sn.State)
		}
	}

	// Placement must exclude the partitioned member.
	st2, err := fed.Submit(federation.Request{Tenant: "acme", SLA: sla(20), Cluster: "west"})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != "rejected" || st2.RejectCode != slice.RejectClusterUnavailable {
		t.Fatalf("pinned submit to partitioned member: %+v", st2)
	}

	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := fed.Heal("west"); err != nil {
		t.Fatal(err)
	}
	west, _ := fed.Cluster("west")
	for _, sn := range west.Orchestrator().List() {
		if strings.HasPrefix(sn.Tenant, "fed:") && sn.State != "terminated" {
			t.Fatalf("orphaned leg %s survived the heal: %s", sn.ID, sn.State)
		}
	}
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if vs := fed.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("violations after heal: %v", vs)
	}

	// The healed member serves again.
	st3, err := fed.Submit(federation.Request{Tenant: "acme", SLA: sla(20), Cluster: "west"})
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != "installed" {
		t.Fatalf("healed member refuses placement: %+v", st3)
	}
}

// TestFederationFailover pins Fail: the dead member never rejoins, and new
// demand re-homes onto the survivors.
func TestFederationFailover(t *testing.T) {
	fed, s := newTestFed(t, 13, []string{"east", "west"})
	fed.Start()
	defer fed.Stop()

	if err := fed.Fail("west"); err != nil {
		t.Fatal(err)
	}
	if err := fed.Heal("west"); err == nil {
		t.Fatal("healed a permanently failed member")
	}
	st, err := fed.Submit(federation.Request{Tenant: "acme", SLA: sla(20)})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "installed" || len(st.Legs) != 1 || st.Legs[0].Cluster != "east" {
		t.Fatalf("demand not re-homed to the survivor: %+v", st)
	}
	if err := s.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if vs := fed.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("violations after fail-over: %v", vs)
	}
}

// TestFederationExplain pins the placement-explain surface.
func TestFederationExplain(t *testing.T) {
	fed, _ := newTestFed(t, 17, []string{"east", "west", "north"})
	fed.Start()
	defer fed.Stop()

	ex, err := fed.Explain(federation.Request{Tenant: "acme", SLA: sla(20)})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Placed || len(ex.Legs) != 1 {
		t.Fatalf("small request should single-place: %+v", ex)
	}
	if ex.Legs[0].Cluster != "east" {
		t.Fatalf("want lowest-latency cluster east, got %+v", ex.Legs)
	}
	if len(ex.Candidates) != 3 {
		t.Fatalf("want 3 candidate verdicts, got %+v", ex.Candidates)
	}

	// Latency filter: a 4 ms budget excludes north (5 ms).
	tight := sla(20)
	tight.MaxLatencyMs = 4
	ex, err = fed.Explain(federation.Request{Tenant: "acme", SLA: tight})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range ex.Candidates {
		if cand.Cluster == "north" && cand.Eligible {
			t.Fatalf("north should be latency-ineligible: %+v", cand)
		}
	}

	// Oversized request explains a split.
	infos := fed.ClusterInfos()
	total := 0.0
	for _, in := range infos {
		total += in.HeadroomMbps
	}
	ex, err = fed.Explain(federation.Request{Tenant: "acme", SLA: sla(total * 0.9)})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Placed || len(ex.Legs) < 2 {
		t.Fatalf("oversized request should split: %+v", ex)
	}

	// Impossible request rejects with the radio-capacity code.
	ex, err = fed.Explain(federation.Request{Tenant: "acme", SLA: sla(total * 10)})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Placed || ex.RejectCode != slice.RejectRadioCapacity {
		t.Fatalf("impossible request verdict: %+v", ex)
	}
}
