package federation

import (
	"fmt"
	"sort"

	"repro/internal/ctrl"
	"repro/internal/slice"
)

// legPlan is one placement decision: the owning cluster and the throughput
// share it carries.
type legPlan struct {
	cluster *Cluster
	mbps    float64
}

// ExplainCandidate is the placement engine's per-member verdict for one
// request: why the member was or wasn't eligible, with the books it was
// judged against.
type ExplainCandidate struct {
	Cluster      string  `json:"cluster"`
	Location     string  `json:"location,omitempty"`
	LatencyMs    float64 `json:"latency_ms"`
	HeadroomMbps float64 `json:"headroom_mbps"`
	Alive        bool    `json:"alive"`
	Eligible     bool    `json:"eligible"`
	Reason       string  `json:"reason,omitempty"`
}

// ExplainLeg is one leg of the chosen placement.
type ExplainLeg struct {
	Cluster string  `json:"cluster"`
	Mbps    float64 `json:"mbps"`
}

// PlacementExplain is the dry-run trace of one placement decision — every
// candidate's verdict plus either the chosen legs or the typed rejection.
type PlacementExplain struct {
	Placed     bool               `json:"placed"`
	RejectCode slice.RejectCode   `json:"reject_code,omitempty"`
	Reason     string             `json:"reason,omitempty"`
	Candidates []ExplainCandidate `json:"candidates"`
	Legs       []ExplainLeg       `json:"legs,omitempty"`
}

// Explain dry-runs placement for the request without reserving anything:
// the same deterministic engine Submit uses, with its per-candidate
// reasoning exposed. A concurrent Submit may still change the books before
// a follow-up Submit, exactly like the engine's Feasible contract.
func (f *Federation) Explain(req Request) (PlacementExplain, error) {
	if err := req.SLA.Validate(); err != nil {
		return PlacementExplain{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var ex PlacementExplain
	f.placeLocked(req, &ex)
	return ex, nil
}

// minLegMbps floors a leg share: placement never creates a sliver leg whose
// contract would round to nothing on the member.
const minLegMbps = 1e-6

// placeLocked maps the request onto owning clusters against the current
// federation books. Strategy: prefer the single eligible cluster with the
// lowest federation latency that fits the whole contract (ties broken by
// name); otherwise split greedily across eligible clusters by descending
// headroom (ties by name) — a cross-cluster span. Deterministic: members are
// iterated in name order and every tie-break is by name. Caller holds f.mu;
// when ex is non-nil the full per-candidate trace is recorded.
func (f *Federation) placeLocked(req Request, ex *PlacementExplain) ([]legPlan, *slice.RejectionCause) {
	need := req.SLA.ThroughputMbps
	eps := 1e-9 * (1 + need)

	reject := func(cause *slice.RejectionCause) ([]legPlan, *slice.RejectionCause) {
		if ex != nil {
			ex.RejectCode = cause.Code
			ex.Reason = cause.Detail
		}
		return nil, cause
	}

	if req.Cluster != "" {
		if _, ok := f.byName[req.Cluster]; !ok {
			return reject(slice.Rejectf(slice.RejectClusterUnavailable, "federation",
				"unknown cluster %q", req.Cluster))
		}
	}

	var eligible []*Cluster
	latencyBlocked, unreachable := 0, 0
	for _, c := range f.members {
		cand := ExplainCandidate{
			Cluster:      c.cfg.Name,
			Location:     c.cfg.Location,
			LatencyMs:    c.cfg.LatencyMs,
			HeadroomMbps: c.headroom,
			Alive:        c.alive(),
		}
		switch {
		case req.Cluster != "" && c.cfg.Name != req.Cluster:
			cand.Reason = "not the pinned cluster"
		case !c.alive():
			unreachable++
			cand.Reason = "unreachable (partitioned or failed)"
		case req.SLA.MaxLatencyMs > 0 && c.cfg.LatencyMs >= req.SLA.MaxLatencyMs:
			latencyBlocked++
			cand.Reason = fmt.Sprintf("federation latency %.1f ms leaves no budget out of %.1f ms",
				c.cfg.LatencyMs, req.SLA.MaxLatencyMs)
		default:
			cand.Eligible = true
			eligible = append(eligible, c)
		}
		if ex != nil {
			ex.Candidates = append(ex.Candidates, cand)
		}
	}

	if len(eligible) == 0 {
		switch {
		case latencyBlocked > 0 && unreachable == 0 && req.Cluster == "":
			return reject(slice.Rejectf(slice.RejectLatencyUnmeetable, "federation",
				"no cluster within the %.1f ms latency budget", req.SLA.MaxLatencyMs))
		case req.Cluster != "" && latencyBlocked > 0:
			return reject(slice.Rejectf(slice.RejectLatencyUnmeetable, "federation",
				"pinned cluster %q cannot meet the %.1f ms latency budget", req.Cluster, req.SLA.MaxLatencyMs))
		default:
			return reject(slice.Rejectf(slice.RejectClusterUnavailable, "federation",
				"no reachable cluster for the request"))
		}
	}

	// Single-cluster pass: lowest-latency member that fits the whole
	// contract. eligible is name-sorted, so a strict < keeps the
	// lexicographically first member on latency ties.
	var best *Cluster
	for _, c := range eligible {
		if c.headroom+eps >= need && (best == nil || c.cfg.LatencyMs < best.cfg.LatencyMs) {
			best = c
		}
	}
	if best != nil {
		plan := []legPlan{{cluster: best, mbps: need}}
		if ex != nil {
			ex.Placed = true
			ex.Legs = []ExplainLeg{{Cluster: best.cfg.Name, Mbps: need}}
		}
		return plan, nil
	}

	// Split pass: a cross-cluster span, greedy by descending headroom so the
	// span touches as few clusters as possible.
	split := append([]*Cluster(nil), eligible...)
	sort.SliceStable(split, func(i, j int) bool {
		if split[i].headroom != split[j].headroom {
			return split[i].headroom > split[j].headroom
		}
		return split[i].cfg.Name < split[j].cfg.Name
	})
	var plan []legPlan
	remaining := need
	total := 0.0
	for _, c := range split {
		total += c.headroom
		take := c.headroom
		if take > remaining {
			take = remaining
		}
		if take < minLegMbps {
			continue
		}
		plan = append(plan, legPlan{cluster: c, mbps: take})
		remaining -= take
		if remaining <= eps {
			remaining = 0
			break
		}
	}
	if remaining > eps {
		return reject(slice.Rejectf(slice.RejectRadioCapacity, "federation",
			"%.1f Mbps requested, %.1f Mbps federated headroom across %d eligible clusters",
			need, total, len(eligible)))
	}
	if ex != nil {
		ex.Placed = true
		for _, lp := range plan {
			ex.Legs = append(ex.Legs, ExplainLeg{Cluster: lp.cluster.cfg.Name, Mbps: lp.mbps})
		}
	}
	return plan, nil
}

// legFeasible answers a leg's admission dry run from federation-tier state
// only — the member's reachability and its headroom book — both of which
// change only under f.mu with a version bump, making the FeasVersioner
// contract exact: equal versions guarantee equal answers. The member's real
// admission runs at Reserve; losing that race rolls back through the engine,
// which the Feasible contract explicitly allows.
func (f *Federation) legFeasible(c *Cluster, tx ctrl.Tx) *slice.RejectionCause {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !c.alive() {
		return slice.Rejectf(slice.RejectClusterUnavailable, c.domain.Domain(),
			"cluster %s unreachable", c.cfg.Name)
	}
	if tx.Mbps > c.headroom+1e-9 {
		return slice.Rejectf(slice.RejectRadioCapacity, c.domain.Domain(),
			"leg %.1f Mbps exceeds cluster %s federated headroom %.1f Mbps",
			tx.Mbps, c.cfg.Name, c.headroom)
	}
	return nil
}
