package federation

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/sim"
	"repro/internal/slice"
)

// Request is one federated slice request. The federation places it on one
// or more member clusters and installs the resulting span through the
// two-phase engine.
type Request struct {
	// Tenant names the requesting business player.
	Tenant string `json:"tenant"`
	// SLA carries the end-to-end contract. MaxLatencyMs is the budget
	// before the per-cluster federation latency is subtracted.
	SLA slice.SLA `json:"sla"`
	// Cluster optionally pins the whole slice to one named member.
	Cluster string `json:"cluster,omitempty"`
	// MeanDemandMbps is the mean offered load the simulation drives through
	// the span's legs (default 0.6 × ThroughputMbps). Leg demand processes
	// are RNG-free constants, so outcomes never depend on member iteration
	// order.
	MeanDemandMbps float64 `json:"mean_demand_mbps,omitempty"`
}

// Leg is one member-cluster share of an installed span.
type Leg struct {
	// Cluster names the owning member.
	Cluster string `json:"cluster"`
	// Slice is the member-local slice realizing the leg.
	Slice slice.ID `json:"slice"`
	// Mbps is the leg's contracted throughput share.
	Mbps float64 `json:"mbps"`
}

// SpanStatus is the outcome view of one federated submission.
type SpanStatus struct {
	ID         slice.ID         `json:"id"`
	Tenant     string           `json:"tenant"`
	State      string           `json:"state"` // "installed" or "rejected"
	RejectCode slice.RejectCode `json:"reject_code,omitempty"`
	Reason     string           `json:"reason,omitempty"`
	Legs       []Leg            `json:"legs,omitempty"`
	Expires    time.Time        `json:"expires,omitempty"`
}

// span is the federation's bookkeeping for one live span (guarded by f.mu).
type span struct {
	id      slice.ID
	tenant  string
	sla     slice.SLA
	legs    []Leg
	tx      *core.SpanTx
	expires time.Time
	expiry  *sim.Event
}

func (sp *span) status() SpanStatus {
	return SpanStatus{
		ID:      sp.id,
		Tenant:  sp.tenant,
		State:   "installed",
		Legs:    append([]Leg(nil), sp.legs...),
		Expires: sp.expires,
	}
}

// fedTenant tags a member-local leg with its owning span — the ownership
// convention the conservation auditor uses to map member slices back to
// spans, mirroring the core's "<sliceID>/<suffix>" resource naming.
func fedTenant(spanID slice.ID) string { return "fed:" + string(spanID) }

// spanOfTenant recovers the owning span from a leg's tenant tag.
func spanOfTenant(tenant string) (slice.ID, bool) {
	if len(tenant) > 4 && tenant[:4] == "fed:" {
		return slice.ID(tenant[4:]), true
	}
	return "", false
}

// Submit places the request across the member clusters and installs the
// resulting span through the unmodified two-phase engine: every leg is
// reserved in placement order (a member-side rejection aborts the
// already-reserved legs in reverse order) and then committed. Rejection is
// an outcome, not an error — the returned status carries the typed cause.
func (f *Federation) Submit(req Request) (SpanStatus, error) {
	if req.Tenant == "" {
		return SpanStatus{}, fmt.Errorf("federation: request missing tenant")
	}
	if err := req.SLA.Validate(); err != nil {
		return SpanStatus{}, err
	}

	f.mu.Lock()
	f.spanSeq++
	id := slice.ID("f-" + strconv.FormatInt(f.spanSeq, 10))
	plan, cause := f.placeLocked(req, nil)
	if cause != nil {
		f.rejectLocked(cause)
		f.mu.Unlock()
		return SpanStatus{ID: id, Tenant: req.Tenant, State: "rejected",
			RejectCode: cause.Code, Reason: cause.Detail}, nil
	}
	// Reserve the federation books before installing — the hierarchical
	// ledger's phase one, mirroring the core's admission reservation. Any
	// install failure releases exactly what was reserved.
	frac := 0.6
	if req.MeanDemandMbps > 0 && req.SLA.ThroughputMbps > 0 {
		frac = req.MeanDemandMbps / req.SLA.ThroughputMbps
	}
	f.pendingFrac[id] = frac
	for _, lp := range plan {
		lp.cluster.headroom -= lp.mbps
		lp.cluster.reserved += lp.mbps
		lp.cluster.backend.bump()
	}
	f.mu.Unlock()

	legs := make([]core.SpanLeg, 0, len(plan))
	for _, lp := range plan {
		legs = append(legs, core.SpanLeg{
			Domain: lp.cluster.domain,
			Tx: ctrl.Tx{
				Slice:           id,
				SLA:             legSLA(req.SLA, lp),
				Mbps:            lp.mbps,
				LatencyBudgetMs: req.SLA.MaxLatencyMs - lp.cluster.cfg.LatencyMs,
			},
		})
	}
	spanTx, cause := core.InstallSpan(legs)

	f.mu.Lock()
	delete(f.pendingFrac, id)
	if cause != nil {
		for _, lp := range plan {
			lp.cluster.headroom += lp.mbps
			lp.cluster.reserved -= lp.mbps
			lp.cluster.backend.bump()
		}
		f.rejectLocked(cause)
		f.mu.Unlock()
		return SpanStatus{ID: id, Tenant: req.Tenant, State: "rejected",
			RejectCode: cause.Code, Reason: cause.Detail}, nil
	}
	sp := &span{
		id:      id,
		tenant:  req.Tenant,
		sla:     req.SLA,
		tx:      spanTx,
		expires: f.clock.Now().Add(req.SLA.Duration),
	}
	grants := spanTx.Grants()
	for i, lp := range plan {
		leg := Leg{Cluster: lp.cluster.cfg.Name, Mbps: lp.mbps}
		if cg, ok := grants[i].(*ctrl.ClusterGrant); ok {
			leg.Slice = cg.Leg().Slice
		}
		sp.legs = append(sp.legs, leg)
	}
	f.spans[id] = sp
	f.admitted++
	if len(sp.legs) > 1 {
		f.crossCluster++
	}
	// The federation owns the span lifecycle: its expiry tears the member
	// legs down through the span transaction. The members also arm their own
	// leg expiries, but those run from activation — install latency after
	// admission — so they are only a backstop; relying on them would leave
	// each leg alive past the span record for the install-latency window,
	// which the conservation sweep would (rightly) flag as a fed-leak.
	sp.expiry = f.clock.After(req.SLA.Duration, "federation/"+string(id)+"/expiry", func() {
		f.expireSpan(id)
	})
	st := sp.status()
	f.mu.Unlock()
	return st, nil
}

// legSLA derives the member-facing contract for one leg: the throughput
// share, the latency budget left after the cluster's federation latency, and
// price/penalty prorated by the leg's share of the contract.
func legSLA(sla slice.SLA, lp legPlan) slice.SLA {
	leg := sla
	leg.ThroughputMbps = lp.mbps
	leg.MaxLatencyMs = sla.MaxLatencyMs - lp.cluster.cfg.LatencyMs
	if sla.ThroughputMbps > 0 {
		share := lp.mbps / sla.ThroughputMbps
		leg.PriceEUR = sla.PriceEUR * share
		leg.PenaltyEUR = sla.PenaltyEUR * share
	}
	return leg
}

// rejectLocked buckets a federation-level rejection. Caller holds f.mu.
func (f *Federation) rejectLocked(cause *slice.RejectionCause) {
	f.rejected++
	if f.rejectReasons == nil {
		f.rejectReasons = make(map[string]int)
	}
	f.rejectReasons[string(cause.Code)]++
}

// expireSpan retires a span whose contract duration elapsed: the books are
// released and the member legs are torn down through the span transaction,
// in reverse acquisition order. A leg whose member-side expiry already fired
// is released idempotently.
func (f *Federation) expireSpan(id slice.ID) {
	f.mu.Lock()
	sp, ok := f.spans[id]
	if ok {
		f.dropSpanLocked(sp)
	}
	f.mu.Unlock()
	if ok {
		sp.tx.Abort()
	}
}

// dropSpanLocked removes the span from the registry, cancels its expiry and
// returns its leg contracts to the federation books. An unreachable member's
// headroom is NOT credited: its leg is orphaned, not released — the member
// still holds it on the far side of the partition — and its books are frozen
// until the heal re-anchors them. The reserved book always drops: it mirrors
// the span registry, and the leg's registration is gone. Caller holds f.mu.
func (f *Federation) dropSpanLocked(sp *span) {
	delete(f.spans, sp.id)
	if sp.expiry != nil {
		sp.expiry.Cancel()
		sp.expiry = nil
	}
	for _, leg := range sp.legs {
		if c, ok := f.byName[leg.Cluster]; ok {
			if c.alive() {
				c.headroom += leg.Mbps
			}
			c.reserved -= leg.Mbps
			c.backend.bump()
			c.backend.forget(sp.id)
		}
	}
}

// Delete tears a span down ahead of its expiry: the span transaction aborts
// in reverse acquisition order, releasing every member leg.
func (f *Federation) Delete(id slice.ID) error {
	f.mu.Lock()
	sp, ok := f.spans[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("federation: unknown span %s", id)
	}
	f.dropSpanLocked(sp)
	f.mu.Unlock()
	sp.tx.Abort()
	return nil
}

// Get returns the live span by ID.
func (f *Federation) Get(id slice.ID) (SpanStatus, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sp, ok := f.spans[id]
	if !ok {
		return SpanStatus{}, false
	}
	return sp.status(), true
}

// Spans lists the live spans in submission order.
func (f *Federation) Spans() []SpanStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SpanStatus, 0, len(f.spans))
	for _, sp := range f.spans {
		out = append(out, sp.status())
	}
	sort.Slice(out, func(i, j int) bool { return spanSeqOf(out[i].ID) < spanSeqOf(out[j].ID) })
	return out
}

func spanSeqOf(id slice.ID) int {
	n := 0
	for i := 2; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n
}
