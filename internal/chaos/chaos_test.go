package chaos

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/forecast"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func chaosEnv(t *testing.T, seed int64) *Env {
	t.Helper()
	s := sim.NewSimulator(seed)
	tb, err := testbed.New(testbed.Config{MECHosts: 1, MECHostCPUs: 16, RedundantTransport: true}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := core.New(core.Config{Audit: true, PLMNLimit: 16}, tb, s, monitor.NewStore(256))
	return &Env{Sim: s, Orch: o, TB: tb}
}

func submitN(t *testing.T, env *Env, n int) []slice.ID {
	t.Helper()
	var ids []slice.ID
	for i := 0; i < n; i++ {
		sl, err := env.Orch.Submit(slice.Request{
			Tenant: "t",
			SLA: slice.SLA{ThroughputMbps: 10, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: 10, Class: slice.ClassEMBB},
		}, traffic.NewConstant(4, 0, nil))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sl.ID())
	}
	if err := env.Sim.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestTimelineFiresInOrder: steps execute at their offsets, in offset order,
// and the fired log records them.
func TestTimelineFiresInOrder(t *testing.T) {
	env := chaosEnv(t, 1)
	var got []string
	mark := func(name string) Action {
		return func(*Env) { got = append(got, name) }
	}
	NewTimeline(1).
		At(2*time.Minute, "b", mark("b")).
		At(1*time.Minute, "a", mark("a")).
		Every(3*time.Minute, time.Minute, 2, "c", mark("c")).
		Install(env)
	if err := env.Sim.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if lg := env.Log(); len(lg) != 4 || lg[0].Name != "a" || lg[0].At != time.Minute {
		t.Fatalf("log %v", lg)
	}
}

// TestPickFractionDeterministic: same seed, same picks; picks preserve
// submission order and have the right size.
func TestPickFractionDeterministic(t *testing.T) {
	ids := []slice.ID{"s-1", "s-2", "s-3", "s-4", "s-5", "s-6", "s-7", "s-8"}
	run := func(seed int64) []slice.ID {
		env := &Env{rng: rand.New(rand.NewSource(seed))}
		return pickFraction(env, ids, 0.5)
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("picked %d of 8 at frac 0.5, want 4", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			t.Fatalf("picks out of submission order: %v", a)
		}
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical picks %v", a)
	}
}

// TestChurnAndFaultActions drives burst-delete, link failure, cell fade,
// MEC brownout and an injected commit fault against a live orchestrator and
// leaves the invariants clean.
func TestChurnAndFaultActions(t *testing.T) {
	env := chaosEnv(t, 7)
	submitted := 0
	env.Submit = func() {
		submitted++
		_, _ = env.Orch.Submit(slice.Request{
			Tenant: "burst",
			SLA: slice.SLA{ThroughputMbps: 10, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: 10, Class: slice.ClassEMBB},
		}, traffic.NewConstant(4, 0, nil))
	}
	submitN(t, env, 6)

	NewTimeline(7).
		At(time.Minute, "delete-half", MassDelete(0.5)).
		At(2*time.Minute, "fail-link", LinkFail(testbed.ENBName(0), testbed.Switch)).
		At(3*time.Minute, "restore-link", LinkRestore(testbed.ENBName(0), testbed.Switch)).
		At(4*time.Minute, "fade", CellFade(0, 6)).
		At(5*time.Minute, "arm-commit-fault", InjectFault("cloud", ctrl.FaultCommit, 1)).
		At(6*time.Minute, "burst", BurstSubmit(3)).
		At(7*time.Minute, "clear", ClearFaults("cloud")).
		At(8*time.Minute, "brownout", MECBrownout(0, 1)).
		Install(env)
	if err := env.Sim.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	env.Orch.RunEpoch() // audit sweep over the post-chaos state

	if submitted != 3 {
		t.Fatalf("burst submitted %d, want 3", submitted)
	}
	if err := env.Orch.Auditor().Err(); err != nil {
		t.Fatal(err)
	}
	// The armed commit fault rejected the first burst submission with the
	// typed code.
	g := env.Orch.Gain()
	if g.RejectReasons["fault-injected"] == 0 {
		t.Fatalf("no fault-injected rejection recorded: %v", g.RejectReasons)
	}
}

// TestFlashCrowdRaisesDemand: the overlay shows up in the next epoch's
// sampled demand and decays after its duration.
func TestFlashCrowdRaisesDemand(t *testing.T) {
	env := chaosEnv(t, 3)
	ids := submitN(t, env, 1)
	NewTimeline(3).At(30*time.Second, "crowd", FlashCrowd(1.0, 100, 2*time.Minute)).Install(env)
	if err := env.Sim.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	env.Orch.RunEpoch()
	sl, _ := env.Orch.Get(ids[0])
	if got := sl.Snapshot().Accounting.DemandMbps; got != 104 {
		t.Fatalf("spiked demand %v, want 104", got)
	}
	if err := env.Sim.RunFor(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	env.Orch.RunEpoch()
	if got := sl.Snapshot().Accounting.DemandMbps; got != 4 {
		t.Fatalf("post-crowd demand %v, want 4", got)
	}
	if err := env.Orch.Auditor().Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMispredictForecaster: the decorator corrupts exactly every k-th
// forecast and resets cleanly.
func TestMispredictForecaster(t *testing.T) {
	m := NewMispredict(forecast.NewNaive(), 2, 0.5)
	m.Observe(10)
	if f := m.Forecast(); f != 10 {
		t.Fatalf("1st forecast %v, want 10", f)
	}
	if f := m.Forecast(); f != 5 {
		t.Fatalf("2nd forecast %v, want corrupted 5", f)
	}
	m.Reset()
	m.Observe(10)
	if f := m.Forecast(); f != 10 {
		t.Fatalf("post-reset forecast %v, want 10", f)
	}
	factory := MispredictFactory(func() forecast.Forecaster { return forecast.NewNaive() }, 3, 2)
	if name := factory().Name(); name != "mispredict(naive,every=3,x2.00)" {
		t.Fatalf("factory name %q", name)
	}
}
