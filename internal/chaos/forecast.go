package chaos

import (
	"fmt"

	"repro/internal/forecast"
)

// Mispredict decorates a Forecaster with deterministic misprediction
// injection: every k-th forecast is scaled by factor (factor < 1
// under-predicts, starving slices and provoking SLA violations; factor > 1
// over-predicts, wasting capacity). The counter is per instance — each
// slice owns its forecaster — so injection is shard-count independent and
// bit-reproducible.
type Mispredict struct {
	inner  forecast.Forecaster
	every  int
	factor float64
	n      int
}

// NewMispredict wraps inner. every <= 1 corrupts every forecast.
func NewMispredict(inner forecast.Forecaster, every int, factor float64) *Mispredict {
	if every < 1 {
		every = 1
	}
	return &Mispredict{inner: inner, every: every, factor: factor}
}

// Observe implements forecast.Forecaster.
func (m *Mispredict) Observe(v float64) { m.inner.Observe(v) }

// Forecast implements forecast.Forecaster.
func (m *Mispredict) Forecast() float64 {
	m.n++
	f := m.inner.Forecast()
	if m.n%m.every == 0 {
		return f * m.factor
	}
	return f
}

// Name implements forecast.Forecaster.
func (m *Mispredict) Name() string {
	return fmt.Sprintf("mispredict(%s,every=%d,x%.2f)", m.inner.Name(), m.every, m.factor)
}

// Reset implements forecast.Forecaster.
func (m *Mispredict) Reset() { m.inner.Reset(); m.n = 0 }

// MispredictFactory adapts a forecaster factory for core.Config.
// NewForecaster: every slice's forecaster is independently corrupted.
func MispredictFactory(newInner func() forecast.Forecaster, every int, factor float64) func() forecast.Forecaster {
	return func() forecast.Forecaster {
		return NewMispredict(newInner(), every, factor)
	}
}
