package chaos

// FederationTarget is the narrow federation surface the multi-cluster
// actions drive — implemented by federation.Federation. An interface rather
// than a concrete type so chaos stays import-acyclic with the tiers it
// attacks, exactly like Env.Submit.
type FederationTarget interface {
	// Partition marks the named member unreachable (control-plane split).
	Partition(name string) error
	// Heal ends the named member's partition.
	Heal(name string) error
	// Fail kills the named member permanently.
	Fail(name string) error
}

// PartitionCluster splits the named member cluster from the federation:
// its summary freezes, placement excludes it, and every span with a leg on
// it rolls back on the reachable members. No-op when the environment has no
// federation.
func PartitionCluster(name string) Action {
	return func(env *Env) {
		if env.Fed != nil {
			_ = env.Fed.Partition(name)
		}
	}
}

// HealCluster ends the named member's partition: orphaned legs are deleted
// exactly once and the member rejoins placement.
func HealCluster(name string) Action {
	return func(env *Env) {
		if env.Fed != nil {
			_ = env.Fed.Heal(name)
		}
	}
}

// FailCluster kills the named member permanently — the fail-over drill:
// placement re-homes all new demand onto the survivors.
func FailCluster(name string) Action {
	return func(env *Env) {
		if env.Fed != nil {
			_ = env.Fed.Fail(name)
		}
	}
}
