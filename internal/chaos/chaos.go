// Package chaos implements the scripted failure-timeline engine: a
// declarative Go builder that schedules adversarial events — tenant flash
// crowds, mass churn, link failures and repairs, cell fades, MEC-host
// brownouts, forecaster mispredictions and injected domain-commit faults —
// against a running simulation, deterministically from a seed.
//
// A Timeline is a list of (offset, action) steps plus optional repeating
// steps. Install schedules every step on the simulation clock; actions run
// on the simulator's driver goroutine in deterministic event order, and any
// randomness (victim selection for churn) draws from the timeline's own
// seeded RNG — never from the shared simulation RNG — so the same timeline
// against the same scenario produces bit-identical outcomes at any shard
// count (the property TestChaosShardEquivalence pins).
//
// Chaos is a verification weapon, not a demo: every canned scenario in
// internal/scenario (C1–C6) runs with core.Config.Audit enabled, so each
// scripted disaster doubles as a proof that the ledgers, reservations and
// event streams stay exact under it.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Env is the surface a timeline acts on. The scenario runner assembles it;
// chaos never imports the runner, so the dependency stays acyclic.
type Env struct {
	// Sim drives time (actions are scheduled on it).
	Sim *sim.Simulator
	// Orch is the orchestrator under attack.
	Orch *core.Orchestrator
	// TB exposes the substrates and domain controllers.
	TB *testbed.Testbed
	// Submit injects one generated request from the scenario's workload
	// generator (used by burst actions). May be nil when a timeline uses no
	// submission actions.
	Submit func()
	// Fed is the federation under attack in multi-cluster scenarios (nil in
	// single-cluster ones; the federation actions are then no-ops). Typed as
	// a narrow surface so chaos keeps not importing the orchestration tiers
	// it attacks.
	Fed FederationTarget

	// rng is the timeline's private randomness (victim selection); see the
	// package comment for why it is separate from the simulation RNG.
	rng *rand.Rand
	// log records fired steps for experiment output.
	log []FiredStep
}

// FiredStep records one executed timeline step.
type FiredStep struct {
	At   time.Duration `json:"at"`
	Name string        `json:"name"`
}

// Log returns the steps fired so far, in execution order.
func (e *Env) Log() []FiredStep { return append([]FiredStep(nil), e.log...) }

// Action is one scripted chaos event.
type Action func(*Env)

// step is one scheduled occurrence.
type step struct {
	offset time.Duration
	name   string
	act    Action
}

// Timeline is a declarative chaos script. Build it with At/Every, then
// Install it on an Env before the simulation runs.
type Timeline struct {
	seed  int64
	steps []step
}

// NewTimeline returns an empty timeline whose actions draw victim
// randomness from seed.
func NewTimeline(seed int64) *Timeline {
	return &Timeline{seed: seed}
}

// At schedules one action at the given offset from installation.
func (t *Timeline) At(offset time.Duration, name string, act Action) *Timeline {
	t.steps = append(t.steps, step{offset: offset, name: name, act: act})
	return t
}

// Every schedules count occurrences of the action, the first at start and
// the rest period apart.
func (t *Timeline) Every(start, period time.Duration, count int, name string, act Action) *Timeline {
	for i := 0; i < count; i++ {
		t.At(start+time.Duration(i)*period, fmt.Sprintf("%s#%d", name, i+1), act)
	}
	return t
}

// Install binds the timeline to the environment and schedules every step on
// the simulation clock. The environment's RNG is (re)seeded here, so
// installing the same timeline on two identically-seeded environments
// replays identically.
func (t *Timeline) Install(env *Env) {
	env.rng = rand.New(rand.NewSource(t.seed))
	start := env.Sim.Now()
	// Steps fire in offset order; ties fire in declaration order (the sim
	// heap breaks equal-time ties by schedule order, and sort.SliceStable
	// keeps declaration order among equal offsets).
	steps := append([]step(nil), t.steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].offset < steps[j].offset })
	for _, st := range steps {
		st := st
		env.Sim.At(start.Add(st.offset), "chaos/"+st.name, func() {
			env.log = append(env.log, FiredStep{At: st.offset, Name: st.name})
			st.act(env)
		})
	}
}

// ---------------------------------------------------------------------------
// Victim selection.

// activeIDs returns the IDs of active slices in submission order.
func activeIDs(env *Env) []slice.ID {
	page, _ := env.Orch.ListFiltered(core.ListOptions{State: "active"})
	out := make([]slice.ID, 0, len(page.Slices))
	for _, sn := range page.Slices {
		out = append(out, sn.ID)
	}
	return out
}

// pickFraction deterministically samples ceil(frac*n) of ids without
// replacement, preserving submission order among the picks.
func pickFraction(env *Env, ids []slice.ID, frac float64) []slice.ID {
	if frac <= 0 || len(ids) == 0 {
		return nil
	}
	if frac >= 1 {
		return ids
	}
	n := (len(ids)*int(frac*1000) + 999) / 1000
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	picked := make(map[int]bool, n)
	for len(picked) < n {
		picked[env.rng.Intn(len(ids))] = true
	}
	out := make([]slice.ID, 0, n)
	for i, id := range ids {
		if picked[i] {
			out = append(out, id)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Actions.

// FlashCrowd overlays a demand spike of extraMbps for dur on a frac-sized
// random subset of the active slices — the stadium-event adversary for the
// overbooking forecasts.
func FlashCrowd(frac, extraMbps float64, dur time.Duration) Action {
	return func(env *Env) {
		now := env.Sim.Now()
		for _, id := range pickFraction(env, activeIDs(env), frac) {
			_ = env.Orch.WrapDemand(id, func(d traffic.Demand) traffic.Demand {
				if d == nil {
					d = traffic.NewConstant(0, 0, nil)
				}
				return &traffic.FlashCrowd{Base: d, Start: now, Duration: dur, ExtraMbps: extraMbps}
			})
		}
	}
}

// BurstSubmit injects n workload requests back to back — the admission half
// of mass churn.
func BurstSubmit(n int) Action {
	return func(env *Env) {
		for i := 0; i < n; i++ {
			env.Submit()
		}
	}
}

// MassDelete tears down a frac-sized random subset of the active slices —
// the teardown half of mass churn.
func MassDelete(frac float64) Action {
	return func(env *Env) {
		for _, id := range pickFraction(env, activeIDs(env), frac) {
			_ = env.Orch.Delete(id)
		}
	}
}

// LinkFail takes the directed transport link down mid-epoch; the
// orchestrator re-routes or drops the victims.
func LinkFail(from, to string) Action {
	return func(env *Env) { _, _ = env.Orch.HandleLinkFailure(from, to) }
}

// LinkRestore brings the directed link back up.
func LinkRestore(from, to string) Action {
	return func(env *Env) { _ = env.Orch.RestoreLink(from, to) }
}

// LinkDegrade rescales the directed link's capacity (rain fade /
// interference); oversubscribed victims are re-routed, shrunk to fair
// share, or dropped.
func LinkDegrade(from, to string, capacityMbps float64) Action {
	return func(env *Env) { _, _ = env.Orch.HandleLinkDegradation(from, to, capacityMbps) }
}

// CellFade rescales eNB i's mean CQI — the radio model of capacity loss: a
// deep fade cuts the throughput every PRB sustains, shrinking the cell
// capacity and the overbooking budget while reservations stay intact.
func CellFade(enbIndex int, cqi float64) Action {
	return func(env *Env) {
		if e, ok := env.TB.RAN.Get(testbed.ENBName(enbIndex)); ok {
			e.SetMeanCQI(cqi)
		}
	}
}

// MECBrownout shrinks the i-th MEC host's spare CPU capacity toward
// targetCPUs (clamped at current usage — placed apps are never stranded),
// starving subsequent edge placements.
func MECBrownout(hostIndex int, targetCPUs float64) Action {
	return func(env *Env) {
		if env.TB.MEC == nil {
			return
		}
		names := env.TB.MEC.HostNames()
		if hostIndex < 0 || hostIndex >= len(names) {
			return
		}
		_, _ = env.TB.MEC.SetHostCapacity(names[hostIndex], targetCPUs)
	}
}

// MECRecover restores the i-th MEC host's CPU capacity.
func MECRecover(hostIndex int, cpus float64) Action {
	return MECBrownout(hostIndex, cpus)
}

// controllerByName resolves a domain controller from the testbed's Set by
// its Domain() name — no identity branches, so pluggable Extra domains are
// addressable the same way as the built-in three.
func controllerByName(tb *testbed.Testbed, domain string) (ctrl.Controller, bool) {
	for _, c := range tb.Ctrl.All() {
		if c.Domain() == domain {
			return c, true
		}
	}
	return nil, false
}

// InjectFault arms a fault on the named domain through its first-class
// ctrl.FaultInjector capability: the next `remaining` invocations of the
// stage fail with the typed fault-injected rejection (remaining <= 0 keeps
// it armed until ClearFaults).
func InjectFault(domain string, stage ctrl.FaultStage, remaining int) Action {
	return func(env *Env) {
		if c, ok := controllerByName(env.TB, domain); ok {
			if fi, ok := ctrl.Injector(c); ok {
				fi.InjectFault(ctrl.Fault{Stage: stage, Remaining: remaining,
					Detail: "chaos timeline fault"})
			}
		}
	}
}

// ClearFaults disarms every fault on the named domain.
func ClearFaults(domain string) Action {
	return func(env *Env) {
		if c, ok := controllerByName(env.TB, domain); ok {
			if fi, ok := ctrl.Injector(c); ok {
				fi.ClearFaults()
			}
		}
	}
}
