package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSimulatorStartsAtEpoch(t *testing.T) {
	s := NewSimulator(1)
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), Epoch)
	}
}

func TestAtRunsInOrder(t *testing.T) {
	s := NewSimulator(1)
	var got []int
	s.After(3*time.Second, "c", func() { got = append(got, 3) })
	s.After(1*time.Second, "a", func() { got = append(got, 1) })
	s.After(2*time.Second, "b", func() { got = append(got, 2) })
	if err := s.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEqualTimeEventsRunInScheduleOrder(t *testing.T) {
	s := NewSimulator(1)
	var got []int
	at := s.Now().Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, "e", func() { got = append(got, i) })
	}
	s.RunFor(2 * time.Second)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := NewSimulator(1)
	var at time.Time
	s.After(42*time.Millisecond, "tick", func() { at = s.Now() })
	s.RunFor(time.Second)
	if want := Epoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("event saw clock %v, want %v", at, want)
	}
	if want := Epoch.Add(time.Second); !s.Now().Equal(want) {
		t.Fatalf("clock ended at %v, want %v", s.Now(), want)
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	s := NewSimulator(1)
	s.RunFor(10 * time.Second)
	fired := false
	e := s.At(Epoch, "past", func() { fired = true })
	if e.When().Before(s.Now()) {
		t.Fatalf("past event scheduled at %v before now %v", e.When(), s.Now())
	}
	s.RunFor(time.Millisecond)
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	s := NewSimulator(1)
	n := 0
	s.Every(time.Second, "tick", func() { n++ })
	s.RunFor(10500 * time.Millisecond)
	if n != 10 {
		t.Fatalf("periodic fired %d times, want 10", n)
	}
}

func TestCancelStopsOneShot(t *testing.T) {
	s := NewSimulator(1)
	fired := false
	e := s.After(time.Second, "x", func() { fired = true })
	e.Cancel()
	s.RunFor(2 * time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromInsideStopsPeriodic(t *testing.T) {
	s := NewSimulator(1)
	n := 0
	var e *Event
	e = s.Every(time.Second, "tick", func() {
		n++
		if n == 3 {
			e.Cancel()
		}
	})
	s.RunFor(time.Minute)
	if n != 3 {
		t.Fatalf("self-cancelled periodic fired %d times, want 3", n)
	}
}

func TestEveryZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewSimulator(1).Every(0, "bad", func() {})
}

func TestDrainBounded(t *testing.T) {
	s := NewSimulator(1)
	s.Every(time.Second, "forever", func() {})
	if n := s.Drain(25); n != 25 {
		t.Fatalf("Drain(25) executed %d", n)
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	s := NewSimulator(1)
	if s.Step() {
		t.Fatal("Step on empty queue reported work")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := NewSimulator(7)
		var vals []int64
		s.Every(time.Second, "draw", func() { vals = append(vals, s.Rand().Int63n(1000)) })
		s.RunFor(20 * time.Second)
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 20 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	s := NewSimulator(1)
	target := Epoch.Add(time.Hour)
	if err := s.RunUntil(target); err != nil {
		t.Fatal(err)
	}
	if !s.Now().Equal(target) {
		t.Fatalf("clock %v, want %v", s.Now(), target)
	}
}

// Property: for any set of non-negative delays, events fire in nondecreasing
// time order and the clock never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		s := NewSimulator(3)
		var seen []time.Time
		for _, d := range delaysMs {
			s.After(time.Duration(d)*time.Millisecond, "e", func() {
				seen = append(seen, s.Now())
			})
		}
		s.RunFor(time.Duration(1<<16) * time.Millisecond)
		for i := 1; i < len(seen); i++ {
			if seen[i].Before(seen[i-1]) {
				return false
			}
		}
		return len(seen) == len(delaysMs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRealtimeClockFiresCallbacks(t *testing.T) {
	c := NewRealtimeClock()
	defer c.CancelAll()
	done := make(chan struct{})
	c.After(5*time.Millisecond, "rt", func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("realtime event never fired")
	}
}

func TestRealtimeCancel(t *testing.T) {
	c := NewRealtimeClock()
	defer c.CancelAll()
	fired := make(chan struct{}, 1)
	e := c.After(30*time.Millisecond, "rt", func() { fired <- struct{}{} })
	e.Cancel()
	select {
	case <-fired:
		t.Fatal("cancelled realtime event fired")
	case <-time.After(80 * time.Millisecond):
	}
}

func TestRealtimePeriodic(t *testing.T) {
	c := NewRealtimeClock()
	defer c.CancelAll()
	ch := make(chan struct{}, 16)
	e := c.Every(10*time.Millisecond, "tick", func() { ch <- struct{}{} })
	n := 0
	timeout := time.After(2 * time.Second)
	for n < 3 {
		select {
		case <-ch:
			n++
		case <-timeout:
			t.Fatalf("periodic realtime fired only %d times", n)
		}
	}
	e.Cancel()
}
