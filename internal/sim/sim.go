// Package sim provides the discrete-event simulation kernel that drives
// every substrate in the testbed reproduction.
//
// The original demo ran on a wall-clock hardware testbed. Reproducing it as
// a library requires experiments to be fast and deterministic, so all
// components take their notion of time from a Clock. Two implementations are
// provided: Simulator (a classic event-heap discrete-event engine with a
// virtual clock) and RealtimeClock (a thin wrapper over time.Now used by the
// live dashboard daemon). Orchestrator code is identical under both.
//
// Scheduling (Now, At, After, Every, Event.Cancel) is safe for concurrent
// use on both clocks, so the concurrent orchestrator core can install
// timers from parallel admissions. Advancing a Simulator (Step, RunUntil,
// RunFor, Drain) and drawing from Rand remain single-goroutine operations:
// one driver advances virtual time, which is what keeps experiments
// deterministic.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the minimal time source every component depends on.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// Scheduler is implemented by clocks that can run callbacks in the future.
type Scheduler interface {
	Clock
	// At schedules fn to run at time t. Scheduling in the past (or exactly
	// now) runs fn at the current time, never before it.
	At(t time.Time, name string, fn func()) *Event
	// After schedules fn to run d after the current time.
	After(d time.Duration, name string, fn func()) *Event
	// Every schedules fn to run every d, starting d from now, until the
	// returned Event is cancelled.
	Every(d time.Duration, name string, fn func()) *Event
}

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending work (e.g. a slice expiry timer when the slice
// is deleted early).
type Event struct {
	when     time.Time
	seq      uint64 // tie-break so equal-time events run in schedule order
	name     string
	fn       func()
	period   time.Duration // >0 for periodic events
	canceled atomic.Bool
	stop     func() // releases the backing runtime timer (RealtimeClock)
	index    int    // heap index, -1 when not queued
}

// When returns the time the event is due to fire next.
func (e *Event) When() time.Time { return e.when }

// Name returns the diagnostic label the event was scheduled with.
func (e *Event) Name() string { return e.name }

// Cancel prevents the event from firing again. Cancelling an already-fired
// one-shot event is a no-op. Cancel is safe to call from inside the event's
// own callback (this is how periodic tasks stop themselves) and from any
// goroutine. On a RealtimeClock it also releases the backing runtime timer
// immediately, so churning slices do not accumulate dead timers.
func (e *Event) Cancel() {
	e.canceled.Store(true)
	if e.stop != nil {
		e.stop()
	}
}

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when.Equal(q[j].when) {
		return q[i].seq < q[j].seq
	}
	return q[i].when.Before(q[j].when)
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event engine. Scheduling and Now
// are safe for concurrent use (the concurrent orchestrator installs timers
// from parallel goroutines); advancing time (Step, RunUntil, RunFor, Drain)
// and Rand are driven by a single goroutine, which is what removes every
// race from the experiments.
type Simulator struct {
	mu    sync.Mutex
	now   time.Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand

	// Stats.
	fired uint64
}

// Epoch is the default simulation start time. A fixed epoch (rather than
// time.Now) keeps runs bit-for-bit reproducible.
var Epoch = time.Date(2018, time.August, 20, 0, 0, 0, 0, time.UTC)

// NewSimulator returns a Simulator starting at Epoch with a seeded RNG.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		now: Epoch,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now implements Clock.
func (s *Simulator) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Rand exposes the simulator's deterministic random source. All stochastic
// models (traffic noise, CQI draws, arrival processes) must draw from this,
// never from the global rand, so a seed fully determines a run. It is not
// synchronized: only the driving goroutine may draw from it.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsFired reports how many callbacks have executed.
func (s *Simulator) EventsFired() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Pending reports how many events are queued.
func (s *Simulator) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// At implements Scheduler.
func (s *Simulator) At(t time.Time, name string, fn func()) *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.atLocked(t, name, fn)
}

func (s *Simulator) atLocked(t time.Time, name string, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	e := &Event{when: t, seq: s.seq, name: name, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After implements Scheduler.
func (s *Simulator) After(d time.Duration, name string, fn func()) *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.atLocked(s.now.Add(d), name, fn)
}

// Every implements Scheduler.
func (s *Simulator) Every(d time.Duration, name string, fn func()) *Event {
	if d <= 0 {
		panic(fmt.Sprintf("sim: Every(%v) requires a positive period", d))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.atLocked(s.now.Add(d), name, fn)
	e.period = d
	return e
}

// ErrDeadlock is returned by RunUntil when the queue drains before the
// target time is reached and no progress can be made.
var ErrDeadlock = errors.New("sim: event queue empty before target time")

// Step executes the single earliest event, advancing the clock to its due
// time. It reports whether an event was executed. The callback runs without
// the scheduler lock held, so it may schedule or cancel events freely.
func (s *Simulator) Step() bool {
	return s.step(time.Time{}, false)
}

// step pops and executes the earliest live event. When bounded, events due
// after limit stay queued and step reports false — this keeps RunUntil from
// overshooting its target when a concurrent Cancel removes the event peeked
// at the head (events due exactly at limit do run).
func (s *Simulator) step(limit time.Time, bounded bool) bool {
	s.mu.Lock()
	for len(s.queue) > 0 && s.queue[0].canceled.Load() {
		heap.Pop(&s.queue)
	}
	if len(s.queue) == 0 || (bounded && s.queue[0].when.After(limit)) {
		s.mu.Unlock()
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	// Never move the clock backwards: a concurrent scheduler may have
	// enqueued this event (clamped against a pre-jump now) just before a
	// RunUntil empty-queue jump.
	if e.when.After(s.now) {
		s.now = e.when
	}
	s.fired++
	s.mu.Unlock()
	e.fn()
	if e.period > 0 && !e.canceled.Load() {
		s.mu.Lock()
		e.when = e.when.Add(e.period)
		e.seq = s.seq
		s.seq++
		heap.Push(&s.queue, e)
		s.mu.Unlock()
	}
	return true
}

// RunUntil executes events in order until the virtual clock reaches t.
// Events due exactly at t are executed. The clock always ends at t even when
// the queue drains early, so periodic samplers restarted afterwards line up.
func (s *Simulator) RunUntil(t time.Time) error {
	for s.step(t, true) {
	}
	s.mu.Lock()
	if t.After(s.now) {
		s.now = t
	}
	s.mu.Unlock()
	return nil
}

// RunFor advances the clock by d, executing everything due in the window.
func (s *Simulator) RunFor(d time.Duration) error {
	return s.RunUntil(s.Now().Add(d))
}

// Drain runs until the queue is empty or maxEvents callbacks have fired.
// It returns the number of events executed. maxEvents <= 0 means unbounded —
// only safe when no periodic events are registered.
func (s *Simulator) Drain(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RealtimeClock adapts wall-clock time to the Scheduler interface so the
// live daemon (cmd/orchestrator) can run the exact same orchestration code
// as the deterministic experiments. Safe for concurrent use.
type RealtimeClock struct {
	mu     sync.Mutex
	timers map[*Event]*time.Timer
}

// NewRealtimeClock returns a Scheduler backed by the runtime timers.
func NewRealtimeClock() *RealtimeClock {
	return &RealtimeClock{timers: make(map[*Event]*time.Timer)}
}

// Now implements Clock.
func (c *RealtimeClock) Now() time.Time { return time.Now() }

// At implements Scheduler.
func (c *RealtimeClock) At(t time.Time, name string, fn func()) *Event {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	return c.schedule(d, 0, name, fn)
}

// After implements Scheduler.
func (c *RealtimeClock) After(d time.Duration, name string, fn func()) *Event {
	return c.schedule(d, 0, name, fn)
}

// Every implements Scheduler.
func (c *RealtimeClock) Every(d time.Duration, name string, fn func()) *Event {
	return c.schedule(d, d, name, fn)
}

func (c *RealtimeClock) schedule(d, period time.Duration, name string, fn func()) *Event {
	e := &Event{when: time.Now().Add(d), name: name, fn: fn, period: period, index: -1}
	var run func()
	run = func() {
		c.mu.Lock()
		delete(c.timers, e) // this firing consumed the timer
		canceled := e.canceled.Load()
		c.mu.Unlock()
		if canceled {
			return
		}
		fn()
		if period > 0 {
			c.mu.Lock()
			if !e.canceled.Load() {
				e.when = time.Now().Add(period)
				c.timers[e] = time.AfterFunc(period, run)
			}
			c.mu.Unlock()
		}
	}
	// Cancel releases the runtime timer and its map entry eagerly, so a
	// daemon churning short-lived slices does not leak one timer per
	// cancelled installation stage or expiry.
	e.stop = func() {
		c.mu.Lock()
		if t, ok := c.timers[e]; ok {
			t.Stop()
			delete(c.timers, e)
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.timers[e] = time.AfterFunc(d, run)
	c.mu.Unlock()
	return e
}

// CancelAll stops every outstanding timer. Used at daemon shutdown.
func (c *RealtimeClock) CancelAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e, t := range c.timers {
		e.canceled.Store(true)
		t.Stop()
		delete(c.timers, e)
	}
}
