// Package sim provides the discrete-event simulation kernel that drives
// every substrate in the testbed reproduction.
//
// The original demo ran on a wall-clock hardware testbed. Reproducing it as
// a library requires experiments to be fast and deterministic, so all
// components take their notion of time from a Clock. Two implementations are
// provided: Simulator (a classic event-heap discrete-event engine with a
// virtual clock) and RealtimeClock (a thin wrapper over time.Now used by the
// live dashboard daemon). Orchestrator code is identical under both.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the minimal time source every component depends on.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// Scheduler is implemented by clocks that can run callbacks in the future.
type Scheduler interface {
	Clock
	// At schedules fn to run at time t. Scheduling in the past (or exactly
	// now) runs fn at the current time, never before it.
	At(t time.Time, name string, fn func()) *Event
	// After schedules fn to run d after the current time.
	After(d time.Duration, name string, fn func()) *Event
	// Every schedules fn to run every d, starting d from now, until the
	// returned Event is cancelled.
	Every(d time.Duration, name string, fn func()) *Event
}

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending work (e.g. a slice expiry timer when the slice
// is deleted early).
type Event struct {
	when     time.Time
	seq      uint64 // tie-break so equal-time events run in schedule order
	name     string
	fn       func()
	period   time.Duration // >0 for periodic events
	canceled atomic.Bool
	index    int // heap index, -1 when not queued
}

// When returns the time the event is due to fire next.
func (e *Event) When() time.Time { return e.when }

// Name returns the diagnostic label the event was scheduled with.
func (e *Event) Name() string { return e.name }

// Cancel prevents the event from firing again. Cancelling an already-fired
// one-shot event is a no-op. Cancel is safe to call from inside the event's
// own callback (this is how periodic tasks stop themselves).
func (e *Event) Cancel() { e.canceled.Store(true) }

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when.Equal(q[j].when) {
		return q[i].seq < q[j].seq
	}
	return q[i].when.Before(q[j].when)
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event engine. It is not safe for
// concurrent use; the whole point is that a single goroutine advances virtual
// time, which removes every race from the experiments.
type Simulator struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand

	// Stats.
	fired uint64
}

// Epoch is the default simulation start time. A fixed epoch (rather than
// time.Now) keeps runs bit-for-bit reproducible.
var Epoch = time.Date(2018, time.August, 20, 0, 0, 0, 0, time.UTC)

// NewSimulator returns a Simulator starting at Epoch with a seeded RNG.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		now: Epoch,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now implements Clock.
func (s *Simulator) Now() time.Time { return s.now }

// Rand exposes the simulator's deterministic random source. All stochastic
// models (traffic noise, CQI draws, arrival processes) must draw from this,
// never from the global rand, so a seed fully determines a run.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsFired reports how many callbacks have executed.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// At implements Scheduler.
func (s *Simulator) At(t time.Time, name string, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	e := &Event{when: t, seq: s.seq, name: name, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After implements Scheduler.
func (s *Simulator) After(d time.Duration, name string, fn func()) *Event {
	return s.At(s.now.Add(d), name, fn)
}

// Every implements Scheduler.
func (s *Simulator) Every(d time.Duration, name string, fn func()) *Event {
	if d <= 0 {
		panic(fmt.Sprintf("sim: Every(%v) requires a positive period", d))
	}
	e := s.At(s.now.Add(d), name, fn)
	e.period = d
	return e
}

// ErrDeadlock is returned by RunUntil when the queue drains before the
// target time is reached and no progress can be made.
var ErrDeadlock = errors.New("sim: event queue empty before target time")

// Step executes the single earliest event, advancing the clock to its due
// time. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled.Load() {
			continue
		}
		s.now = e.when
		s.fired++
		e.fn()
		if e.period > 0 && !e.canceled.Load() {
			e.when = e.when.Add(e.period)
			e.seq = s.seq
			s.seq++
			heap.Push(&s.queue, e)
		}
		return true
	}
	return false
}

// RunUntil executes events in order until the virtual clock reaches t.
// Events due exactly at t are executed. The clock always ends at t even when
// the queue drains early, so periodic samplers restarted afterwards line up.
func (s *Simulator) RunUntil(t time.Time) error {
	for {
		next, ok := s.peek()
		if !ok {
			s.now = t
			return nil
		}
		if next.After(t) {
			s.now = t
			return nil
		}
		s.Step()
	}
}

// RunFor advances the clock by d, executing everything due in the window.
func (s *Simulator) RunFor(d time.Duration) error {
	return s.RunUntil(s.now.Add(d))
}

// Drain runs until the queue is empty or maxEvents callbacks have fired.
// It returns the number of events executed. maxEvents <= 0 means unbounded —
// only safe when no periodic events are registered.
func (s *Simulator) Drain(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

func (s *Simulator) peek() (time.Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].canceled.Load() {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].when, true
	}
	return time.Time{}, false
}

// RealtimeClock adapts wall-clock time to the Scheduler interface so the
// live daemon (cmd/orchestrator) can run the exact same orchestration code
// as the deterministic experiments.
type RealtimeClock struct {
	mu     sync.Mutex
	timers map[*Event]*time.Timer
}

// NewRealtimeClock returns a Scheduler backed by the runtime timers.
func NewRealtimeClock() *RealtimeClock {
	return &RealtimeClock{timers: make(map[*Event]*time.Timer)}
}

// Now implements Clock.
func (c *RealtimeClock) Now() time.Time { return time.Now() }

// At implements Scheduler.
func (c *RealtimeClock) At(t time.Time, name string, fn func()) *Event {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	return c.schedule(d, 0, name, fn)
}

// After implements Scheduler.
func (c *RealtimeClock) After(d time.Duration, name string, fn func()) *Event {
	return c.schedule(d, 0, name, fn)
}

// Every implements Scheduler.
func (c *RealtimeClock) Every(d time.Duration, name string, fn func()) *Event {
	return c.schedule(d, d, name, fn)
}

func (c *RealtimeClock) schedule(d, period time.Duration, name string, fn func()) *Event {
	e := &Event{when: time.Now().Add(d), name: name, fn: fn, period: period, index: -1}
	c.mu.Lock()
	defer c.mu.Unlock()
	var run func()
	run = func() {
		c.mu.Lock()
		canceled := e.canceled.Load()
		c.mu.Unlock()
		if canceled {
			return
		}
		fn()
		if period > 0 {
			c.mu.Lock()
			if !e.canceled.Load() {
				e.when = time.Now().Add(period)
				c.timers[e] = time.AfterFunc(period, run)
			}
			c.mu.Unlock()
		}
	}
	c.timers[e] = time.AfterFunc(d, run)
	return e
}

// CancelAll stops every outstanding timer. Used at daemon shutdown.
func (c *RealtimeClock) CancelAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e, t := range c.timers {
		e.canceled.Store(true)
		t.Stop()
		delete(c.timers, e)
	}
}
