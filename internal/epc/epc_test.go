package epc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/slice"
)

var (
	plmnA = slice.PLMN{MCC: "001", MNC: "01"}
	plmnB = slice.PLMN{MCC: "001", MNC: "02"}
	t0    = time.Date(2018, 8, 20, 12, 0, 0, 0, time.UTC)
)

func TestTemplateScalesGateways(t *testing.T) {
	small := Template(20)
	med := Template(80)
	large := Template(200)
	find := func(tm cloud.Template, name string) cloud.Flavor {
		for _, r := range tm.Resources {
			if r.Name == name {
				return r.Flavor
			}
		}
		t.Fatalf("component %s missing", name)
		return cloud.Flavor{}
	}
	if find(small, CompSGW) != cloud.FlavorSmall ||
		find(med, CompSGW) != cloud.FlavorMedium ||
		find(large, CompPGW) != cloud.FlavorLarge {
		t.Fatal("gateway flavors do not scale with throughput")
	}
	// Control plane stays small regardless.
	if find(large, CompMME) != cloud.FlavorSmall || find(large, CompHSS) != cloud.FlavorSmall {
		t.Fatal("control-plane components should stay small")
	}
	for _, tm := range []cloud.Template{small, med, large} {
		if err := tm.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(tm.Resources) != 4 {
			t.Fatalf("vEPC has %d components", len(tm.Resources))
		}
	}
}

func TestVCPUDemandMonotone(t *testing.T) {
	if !(VCPUDemand(10) < VCPUDemand(80) && VCPUDemand(80) < VCPUDemand(150)) {
		t.Fatalf("vCPU demand not monotone: %v %v %v", VCPUDemand(10), VCPUDemand(80), VCPUDemand(150))
	}
}

func TestQCIMapping(t *testing.T) {
	cases := map[slice.ServiceClass]int{
		slice.ClassAutomotive: 3,
		slice.ClassEHealth:    2,
		slice.ClassMMTC:       8,
		slice.ClassEMBB:       9,
	}
	for class, want := range cases {
		if got := QCIFor(class); got != want {
			t.Fatalf("QCI(%v) = %d, want %d", class, got, want)
		}
	}
}

func TestInstanceLifecycle(t *testing.T) {
	in := NewInstance("epc-1", plmnA, "edge", "stack-1", slice.ClassEMBB)
	if in.State() != StateDeploying {
		t.Fatalf("initial state %v", in.State())
	}
	if _, err := in.Attach(UE{IMSI: "001010000000001", PLMN: plmnA}, t0); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("attach while deploying: %v", err)
	}
	if err := in.MarkRunning(t0); err != nil {
		t.Fatal(err)
	}
	if err := in.MarkRunning(t0); err == nil {
		t.Fatal("double MarkRunning accepted")
	}
	b, err := in.Attach(UE{IMSI: "001010000000001", PLMN: plmnA}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if b.EBI != 5 || b.QCI != 9 {
		t.Fatalf("bearer %+v", b)
	}
	in.Stop()
	if in.State() != StateStopped || in.Attached() != 0 {
		t.Fatal("stop did not drop bearers")
	}
}

func TestAttachDuplicateIMSI(t *testing.T) {
	in := NewInstance("epc-1", plmnA, "edge", "s", slice.ClassEMBB)
	in.MarkRunning(t0)
	ue := UE{IMSI: "imsi-1", PLMN: plmnA}
	if _, err := in.Attach(ue, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Attach(ue, t0); !errors.Is(err, ErrAlreadyAttached) {
		t.Fatalf("duplicate attach: %v", err)
	}
	in.Detach("imsi-1")
	if _, err := in.Attach(ue, t0); err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
	in.Detach("unknown") // no-op
}

func TestEBIWraps(t *testing.T) {
	in := NewInstance("epc-1", plmnA, "edge", "s", slice.ClassEMBB)
	in.MarkRunning(t0)
	for i := 0; i < 11; i++ { // EBIs 5..15
		if _, err := in.Attach(UE{IMSI: fmt.Sprintf("i%d", i), PLMN: plmnA}, t0); err != nil {
			t.Fatal(err)
		}
	}
	b, err := in.Attach(UE{IMSI: "i11", PLMN: plmnA}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if b.EBI != 5 {
		t.Fatalf("EBI after wrap = %d", b.EBI)
	}
}

func TestBearersSorted(t *testing.T) {
	in := NewInstance("epc-1", plmnA, "edge", "s", slice.ClassEHealth)
	in.MarkRunning(t0)
	for _, imsi := range []string{"c", "a", "b"} {
		in.Attach(UE{IMSI: imsi, PLMN: plmnA}, t0)
	}
	bs := in.Bearers()
	if len(bs) != 3 || bs[0].UE.IMSI != "a" || bs[2].UE.IMSI != "c" {
		t.Fatalf("bearers %v", bs)
	}
	if bs[0].QCI != 2 {
		t.Fatalf("e-health QCI %d", bs[0].QCI)
	}
}

func TestRegistryRouting(t *testing.T) {
	r := NewRegistry()
	a := NewInstance("epc-a", plmnA, "edge", "sa", slice.ClassEMBB)
	b := NewInstance("epc-b", plmnB, "core", "sb", slice.ClassEMBB)
	if err := r.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(a); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate add: %v", err)
	}

	// No instance running yet: attach must fail with no-serving-EPC.
	if _, err := r.Attach(UE{IMSI: "x", PLMN: plmnA}, t0); !errors.Is(err, ErrNoServingEPC) {
		t.Fatalf("attach before running: %v", err)
	}
	a.MarkRunning(t0)
	b.MarkRunning(t0)

	if _, err := r.Attach(UE{IMSI: "x", PLMN: plmnA}, t0); err != nil {
		t.Fatal(err)
	}
	if a.Attached() != 1 || b.Attached() != 0 {
		t.Fatal("attach routed to wrong instance")
	}
	if _, err := r.Attach(UE{IMSI: "y", PLMN: slice.PLMN{MCC: "001", MNC: "99"}}, t0); !errors.Is(err, ErrNoServingEPC) {
		t.Fatalf("unknown PLMN: %v", err)
	}
	if r.TotalAttached() != 1 {
		t.Fatalf("total attached %d", r.TotalAttached())
	}

	r.Remove("epc-a")
	if _, ok := r.Get("epc-a"); ok {
		t.Fatal("removed instance still present")
	}
	if a.State() != StateStopped {
		t.Fatal("remove did not stop instance")
	}
	r.Remove("epc-a") // idempotent
}

func TestRegistryAllSorted(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"epc-c", "epc-a", "epc-b"} {
		r.Add(NewInstance(id, plmnA, "edge", "s", slice.ClassEMBB))
	}
	all := r.All()
	if len(all) != 3 || all[0].ID() != "epc-a" || all[2].ID() != "epc-c" {
		t.Fatal("All not sorted")
	}
}

func TestSnapshot(t *testing.T) {
	in := NewInstance("epc-1", plmnA, "edge", "stack-9", slice.ClassEMBB)
	in.MarkRunning(t0)
	in.Attach(UE{IMSI: "i", PLMN: plmnA}, t0)
	s := in.Snapshot()
	if s.ID != "epc-1" || s.State != "running" || s.AttachedUE != 1 || s.Stack != "stack-9" {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestBootDelayFewSeconds(t *testing.T) {
	for _, mbps := range []float64{10, 80, 200} {
		d := BootDelayFor(mbps)
		if d < 2*time.Second || d > 15*time.Second {
			t.Fatalf("boot delay %v for %.0f Mbps outside 'few seconds'", d, mbps)
		}
	}
	if BootDelayFor(200) <= BootDelayFor(10) {
		t.Fatal("boot delay should grow with size")
	}
}

func TestStateString(t *testing.T) {
	if StateDeploying.String() != "deploying" || StateRunning.String() != "running" || StateStopped.String() != "stopped" {
		t.Fatal("state names")
	}
}
