// Package epc models the virtualized Evolved Packet Core instances the demo
// deploys per slice (OpenEPC 7 in the testbed): one vEPC — MME, HSS, SGW,
// PGW as VMs — is instantiated in the chosen data center, and "after few
// seconds, user devices associated with the PLMN-id of the new slices are
// allowed to connect to the respective services".
//
// The control surface the orchestrator needs is small: a stack template
// sized to the slice, instance lifecycle (deploying → running → stopped),
// and the UE attach procedure keyed by PLMN. Per-packet GTP handling is a
// data-plane concern and out of scope (see DESIGN.md).
package epc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/slice"
)

// Component names of a vEPC.
const (
	CompMME = "mme"
	CompHSS = "hss"
	CompSGW = "sgw"
	CompPGW = "pgw"
)

// The three possible vEPC templates, precomputed so the admission hot path
// never rebuilds them. Callers must treat the shared Resources as read-only
// (CanFit and CreateStack only read them).
var vepcTemplates = func() [3]cloud.Template {
	var out [3]cloud.Template
	for i, gw := range []cloud.Flavor{cloud.FlavorSmall, cloud.FlavorMedium, cloud.FlavorLarge} {
		out[i] = cloud.Template{Resources: []cloud.TemplateResource{
			{Name: CompMME, Flavor: cloud.FlavorSmall},
			{Name: CompHSS, Flavor: cloud.FlavorSmall},
			{Name: CompSGW, Flavor: gw},
			{Name: CompPGW, Flavor: gw},
		}}
	}
	return out
}()

// Template returns the Heat-style stack template for a vEPC serving the
// given contracted throughput. Control-plane components (MME, HSS) are
// fixed-size; user-plane gateways (SGW, PGW) scale one flavor step per
// 50 Mbps, mirroring how the testbed dimensioned OpenEPC VMs. The returned
// template shares a precomputed read-only Resources slice.
func Template(throughputMbps float64) cloud.Template {
	switch {
	case throughputMbps > 100:
		return vepcTemplates[2]
	case throughputMbps > 50:
		return vepcTemplates[1]
	}
	return vepcTemplates[0]
}

// State is the vEPC instance lifecycle.
type State int

// Instance states.
const (
	// StateDeploying covers stack creation plus OpenEPC boot ("a few
	// seconds" in the demo).
	StateDeploying State = iota
	// StateRunning accepts UE attaches.
	StateRunning
	// StateStopped is terminal.
	StateStopped
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateDeploying:
		return "deploying"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// DefaultBootDelay is how long a vEPC takes from stack creation to serving
// attaches — the "few seconds" of the demo narrative.
const DefaultBootDelay = 5 * time.Second

// Errors surfaced by the attach procedure and lifecycle.
var (
	ErrNoServingEPC    = errors.New("epc: no running EPC broadcasts this PLMN")
	ErrNotRunning      = errors.New("epc: instance not running")
	ErrAlreadyAttached = errors.New("epc: UE already attached")
	ErrDuplicateID     = errors.New("epc: duplicate instance ID")
)

// UE is a user device identified by IMSI, subscribed to one PLMN (its
// slice).
type UE struct {
	IMSI string     `json:"imsi"`
	PLMN slice.PLMN `json:"plmn"`
}

// Bearer is the default EPS bearer created at attach.
type Bearer struct {
	UE UE `json:"ue"`
	// QCI is the QoS class identifier assigned from the slice class.
	QCI int `json:"qci"`
	// EBI is the EPS bearer identity (5..15 per 3GPP TS 24.301).
	EBI int `json:"ebi"`
	// Attached is when the bearer was established.
	Attached time.Time `json:"attached"`
}

// QCIFor maps slice service classes to standardized QCIs
// (3GPP TS 23.203 Table 6.1.7): automotive → 3 (real-time gaming/V2X-ish
// low latency), e-health → 2 (conversational video reliability), eMBB → 9
// (default best effort), mMTC → 8.
func QCIFor(c slice.ServiceClass) int {
	switch c {
	case slice.ClassAutomotive:
		return 3
	case slice.ClassEHealth:
		return 2
	case slice.ClassMMTC:
		return 8
	default:
		return 9
	}
}

// Instance is one deployed vEPC.
type Instance struct {
	mu sync.Mutex

	id     string
	plmn   slice.PLMN
	dc     string
	stack  string
	qci    int
	state  State
	booted time.Time

	bearers map[string]*Bearer // by IMSI
	nextEBI int

	// ProcessingDelayMs is the user-plane latency contribution of the
	// gateways, counted against the slice's end-to-end budget.
	ProcessingDelayMs float64
}

// NewInstance returns a vEPC in StateDeploying.
func NewInstance(id string, plmn slice.PLMN, dc, stackID string, class slice.ServiceClass) *Instance {
	return &Instance{
		id:                id,
		plmn:              plmn,
		dc:                dc,
		stack:             stackID,
		qci:               QCIFor(class),
		state:             StateDeploying,
		bearers:           make(map[string]*Bearer),
		nextEBI:           5,
		ProcessingDelayMs: 0.5,
	}
}

// ID returns the instance ID.
func (in *Instance) ID() string { return in.id }

// PLMN returns the PLMN the instance serves.
func (in *Instance) PLMN() slice.PLMN { return in.plmn }

// DataCenter returns where the instance runs.
func (in *Instance) DataCenter() string { return in.dc }

// StackID returns the backing Heat stack.
func (in *Instance) StackID() string { return in.stack }

// State returns the lifecycle state.
func (in *Instance) State() State {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.state
}

// MarkRunning transitions Deploying → Running at time now.
func (in *Instance) MarkRunning(now time.Time) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.state != StateDeploying {
		return fmt.Errorf("epc: %s cannot start from %v", in.id, in.state)
	}
	in.state = StateRunning
	in.booted = now
	return nil
}

// Stop transitions to Stopped, dropping all bearers.
func (in *Instance) Stop() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.state = StateStopped
	in.bearers = make(map[string]*Bearer)
}

// Attach runs the (abstracted) attach procedure: PLMN match is checked by
// the Registry; here the default bearer is created.
func (in *Instance) Attach(ue UE, now time.Time) (*Bearer, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.state != StateRunning {
		return nil, fmt.Errorf("%w: %s is %v", ErrNotRunning, in.id, in.state)
	}
	if _, ok := in.bearers[ue.IMSI]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyAttached, ue.IMSI)
	}
	b := &Bearer{UE: ue, QCI: in.qci, EBI: in.nextEBI, Attached: now}
	in.nextEBI++
	if in.nextEBI > 15 {
		in.nextEBI = 5 // EBI space wraps; fine at control-plane fidelity
	}
	in.bearers[ue.IMSI] = b
	return b, nil
}

// Detach removes the UE's bearer; unknown IMSIs are a no-op.
func (in *Instance) Detach(imsi string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.bearers, imsi)
}

// Attached returns the number of attached UEs.
func (in *Instance) Attached() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.bearers)
}

// Bearers returns the bearers sorted by IMSI.
func (in *Instance) Bearers() []Bearer {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Bearer, 0, len(in.bearers))
	for _, b := range in.bearers {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UE.IMSI < out[j].UE.IMSI })
	return out
}

// Snapshot is the API view of an instance.
type Snapshot struct {
	ID         string     `json:"id"`
	PLMN       slice.PLMN `json:"plmn"`
	DataCenter string     `json:"data_center"`
	Stack      string     `json:"stack"`
	State      string     `json:"state"`
	AttachedUE int        `json:"attached_ue"`
}

// Snapshot captures the instance state.
func (in *Instance) Snapshot() Snapshot {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Snapshot{
		ID: in.id, PLMN: in.plmn, DataCenter: in.dc, Stack: in.stack,
		State: in.state.String(), AttachedUE: len(in.bearers),
	}
}

// Registry tracks all vEPC instances and routes UE attaches by PLMN — the
// role the shared MOCN RAN plays when it forwards NAS traffic to the core
// of the UE's selected PLMN.
type Registry struct {
	mu        sync.Mutex
	instances map[string]*Instance
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{instances: make(map[string]*Instance)} }

// Add registers an instance.
func (r *Registry) Add(in *Instance) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.instances[in.ID()]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, in.ID())
	}
	r.instances[in.ID()] = in
	return nil
}

// Remove stops and deregisters the instance; unknown IDs are a no-op.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	in, ok := r.instances[id]
	delete(r.instances, id)
	r.mu.Unlock()
	if ok {
		in.Stop()
	}
}

// Get returns the instance by ID.
func (r *Registry) Get(id string) (*Instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.instances[id]
	return in, ok
}

// ByPLMN returns the running instance serving the PLMN.
func (r *Registry) ByPLMN(p slice.PLMN) (*Instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, in := range r.instances {
		if in.PLMN() == p && in.State() == StateRunning {
			return in, true
		}
	}
	return nil, false
}

// Attach routes the UE to the running instance broadcasting its PLMN.
func (r *Registry) Attach(ue UE, now time.Time) (*Bearer, error) {
	in, ok := r.ByPLMN(ue.PLMN)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoServingEPC, ue.PLMN)
	}
	return in.Attach(ue, now)
}

// All returns instances sorted by ID.
func (r *Registry) All() []*Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Instance, 0, len(r.instances))
	for _, in := range r.instances {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// TotalAttached sums attached UEs over all instances.
func (r *Registry) TotalAttached() int {
	n := 0
	for _, in := range r.All() {
		n += in.Attached()
	}
	return n
}

// SizeSteps reports how many flavor steps the user-plane gateways of a
// template for mbps take — exposed for capacity planning tests.
func SizeSteps(mbps float64) int {
	switch {
	case mbps > 100:
		return 2
	case mbps > 50:
		return 1
	default:
		return 0
	}
}

// VCPUDemand returns the template vCPU total for a contracted throughput,
// the number admission control charges against the data center.
func VCPUDemand(throughputMbps float64) float64 {
	return Template(throughputMbps).TotalVCPUs()
}

// BootDelayFor scales the boot delay mildly with template size: larger
// gateways take longer to come up. Returned values stay in the "few
// seconds" the paper reports.
func BootDelayFor(throughputMbps float64) time.Duration {
	steps := SizeSteps(throughputMbps)
	return DefaultBootDelay + time.Duration(math.Round(float64(steps)*1.5))*time.Second
}
