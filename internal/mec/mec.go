// Package mec models a mobile-edge-compute substrate: a small pool of CPU
// capacity co-located with the radio site that hosts one low-latency edge
// application per network slice. It is the fourth orchestration domain —
// added to prove that the orchestrator's generic domain-transaction engine
// is pluggable: the MEC controller (internal/ctrl) implements the same
// transactional surface as the radio, transport and cloud controllers, and
// the core engine installs, resizes, restores and rolls back MEC apps
// without a single MEC-specific branch.
//
// The model mirrors internal/cloud at smaller scale: named hosts with CPU
// capacity, first-fit placement in host-name order (deterministic), atomic
// per-app place/resize/remove, and a fixed per-app processing-latency
// contribution counted against the slice's end-to-end budget.
//
// All methods are safe for concurrent use.
package mec

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/slice"
)

// Errors surfaced to the orchestrator as rejection causes.
var (
	ErrNoCapacity   = errors.New("mec: no edge host fits the app")
	ErrDuplicateApp = errors.New("mec: app already placed")
	ErrUnknownApp   = errors.New("mec: unknown app")
)

// CPUForMbps sizes a slice's edge app: one CPU per 20 Mbps of throughput,
// minimum one — the deterministic dimensioning rule the admission check and
// the overbooking resize share.
func CPUForMbps(mbps float64) float64 {
	if mbps <= 0 {
		return 1
	}
	return math.Max(1, math.Ceil(mbps/20))
}

// App is one placed edge application.
type App struct {
	ID    string   `json:"id"`
	Slice slice.ID `json:"slice"`
	CPU   float64  `json:"cpu"`
	Host  string   `json:"host"`
}

// host is one edge compute node.
type host struct {
	name string
	cap  float64
	used float64
}

// Pool is the edge MEC compute substrate.
type Pool struct {
	mu    sync.RWMutex
	hosts []*host // sorted by name (first-fit order)
	apps  map[string]*App

	procDelayMs float64

	// ver counts every state change that can flip a CanFit answer, so
	// memoized feasibility outcomes keyed by it stay exact.
	ver atomic.Uint64
}

// Version returns a counter bumped by every capacity-affecting mutation;
// equal versions guarantee equal CanFit answers.
func (p *Pool) Version() uint64 { return p.ver.Load() }

// NewPool returns an empty pool whose apps contribute procDelayMs of
// user-plane processing latency each.
func NewPool(procDelayMs float64) *Pool {
	if procDelayMs < 0 {
		procDelayMs = 0
	}
	return &Pool{apps: make(map[string]*App), procDelayMs: procDelayMs}
}

// ProcessingDelayMs is the per-app latency contribution, charged against the
// slice's end-to-end budget by the MEC controller's feasibility check.
func (p *Pool) ProcessingDelayMs() float64 { return p.procDelayMs }

// AddHost registers an edge compute node.
func (p *Pool) AddHost(name string, cpus float64) error {
	if name == "" || cpus <= 0 {
		return fmt.Errorf("mec: invalid host %q (%.1f CPUs)", name, cpus)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.hosts {
		if h.name == name {
			return fmt.Errorf("mec: duplicate host %q", name)
		}
	}
	p.hosts = append(p.hosts, &host{name: name, cap: cpus})
	sort.Slice(p.hosts, func(i, j int) bool { return p.hosts[i].name < p.hosts[j].name })
	p.ver.Add(1)
	return nil
}

// CanFit reports whether some host could take cpu right now (admission's
// dry run; a concurrent placement may still win the race — the orchestrator
// engine rolls back on reserve failure).
func (p *Pool) CanFit(cpu float64) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, h := range p.hosts {
		if h.cap-h.used >= cpu-1e-9 {
			return true
		}
	}
	return false
}

// Place puts an app of cpu CPUs on the first host (name order) that fits.
func (p *Pool) Place(id string, owner slice.ID, cpu float64) (App, error) {
	if cpu <= 0 {
		return App{}, fmt.Errorf("mec: app %q needs positive CPU, got %.2f", id, cpu)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.apps[id]; ok {
		return App{}, fmt.Errorf("%w: %s", ErrDuplicateApp, id)
	}
	for _, h := range p.hosts {
		if h.cap-h.used >= cpu-1e-9 {
			h.used += cpu
			a := &App{ID: id, Slice: owner, CPU: cpu, Host: h.name}
			p.apps[id] = a
			p.ver.Add(1)
			return *a, nil
		}
	}
	return App{}, fmt.Errorf("%w: %.1f CPUs for %s", ErrNoCapacity, cpu, owner)
}

// PlaceAt pins an app of cpu CPUs onto the named host, bypassing first-fit
// selection — the crash-recovery primitive. Replaying a write-ahead log
// must land every app exactly where the original run placed it (an
// unlogged brownout may have steered first-fit differently), otherwise a
// later Resize, which grows in place on the app's host, could diverge.
func (p *Pool) PlaceAt(id string, owner slice.ID, cpu float64, hostName string) (App, error) {
	if cpu <= 0 {
		return App{}, fmt.Errorf("mec: app %q needs positive CPU, got %.2f", id, cpu)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.apps[id]; ok {
		return App{}, fmt.Errorf("%w: %s", ErrDuplicateApp, id)
	}
	for _, h := range p.hosts {
		if h.name != hostName {
			continue
		}
		if h.cap-h.used < cpu-1e-9 {
			return App{}, fmt.Errorf("%w: %.1f CPUs for %s on pinned host %s", ErrNoCapacity, cpu, owner, hostName)
		}
		h.used += cpu
		a := &App{ID: id, Slice: owner, CPU: cpu, Host: h.name}
		p.apps[id] = a
		p.ver.Add(1)
		return *a, nil
	}
	return App{}, fmt.Errorf("mec: unknown host %q", hostName)
}

// Resize changes the app's CPU share in place on its host. Growing fails
// when the host's free capacity does not cover the increase.
func (p *Pool) Resize(id string, cpu float64) error {
	if cpu <= 0 {
		return fmt.Errorf("mec: resize of %q to %.2f CPUs must be positive", id, cpu)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.apps[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownApp, id)
	}
	for _, h := range p.hosts {
		if h.name != a.Host {
			continue
		}
		if delta := cpu - a.CPU; h.cap-h.used < delta-1e-9 {
			return fmt.Errorf("%w: grow %s by %.1f CPUs, free %.1f on %s", ErrNoCapacity, id, delta, h.cap-h.used, h.name)
		}
		h.used += cpu - a.CPU
		a.CPU = cpu
		p.ver.Add(1)
		return nil
	}
	return fmt.Errorf("%w: host %q vanished", ErrUnknownApp, a.Host)
}

// Remove frees the app. Unknown IDs are a no-op so teardown is idempotent.
func (p *Pool) Remove(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.apps[id]
	if !ok {
		return
	}
	delete(p.apps, id)
	p.ver.Add(1)
	for _, h := range p.hosts {
		if h.name == a.Host {
			h.used -= a.CPU
			if h.used < 0 {
				h.used = 0
			}
			return
		}
	}
}

// SetHostCapacity rescales the named host's CPU capacity — the chaos model
// of a MEC-host brownout. Shrinks are clamped at the host's current usage
// (only spare capacity can be lost; placed apps are never stranded), so the
// pool's conservation invariants hold throughout. It returns the capacity
// actually applied.
func (p *Pool) SetHostCapacity(name string, cpus float64) (float64, error) {
	if cpus <= 0 {
		return 0, fmt.Errorf("mec: host capacity %.2f must be positive", cpus)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.hosts {
		if h.name != name {
			continue
		}
		if cpus < h.used {
			cpus = h.used
		}
		h.cap = cpus
		p.ver.Add(1)
		return cpus, nil
	}
	return 0, fmt.Errorf("mec: unknown host %q", name)
}

// HostNames returns the pool's host names in first-fit (sorted) order.
func (p *Pool) HostNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.hosts))
	for _, h := range p.hosts {
		out = append(out, h.name)
	}
	return out
}

// AuditConservation cross-checks the pool's CPU books against ground truth
// and returns one message per discrepancy (empty when the books balance):
// each host's used counter must equal the sum over its placed apps, free
// capacity must never go negative, and every app must name a registered
// host.
func (p *Pool) AuditConservation() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []string
	perHost := make(map[string]float64, len(p.hosts))
	for id, a := range p.apps {
		if a.CPU <= 0 {
			out = append(out, fmt.Sprintf("mec app %q: non-positive CPU share %.2f", id, a.CPU))
		}
		perHost[a.Host] += a.CPU
	}
	known := make(map[string]bool, len(p.hosts))
	for _, h := range p.hosts {
		known[h.name] = true
		if d := h.used - perHost[h.name]; d > 1e-6 || d < -1e-6 {
			out = append(out, fmt.Sprintf("mec %s: used counter %.3f != sum over apps %.3f", h.name, h.used, perHost[h.name]))
		}
		if h.cap-h.used < -1e-9 {
			out = append(out, fmt.Sprintf("mec %s: negative slack (%.2f used of %.2f)", h.name, h.used, h.cap))
		}
	}
	for id, a := range p.apps {
		if !known[a.Host] {
			out = append(out, fmt.Sprintf("mec app %q: placed on unknown host %q", id, a.Host))
		}
	}
	sort.Strings(out)
	return out
}

// App returns the placed app by ID.
func (p *Pool) App(id string) (App, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	a, ok := p.apps[id]
	if !ok {
		return App{}, false
	}
	return *a, true
}

// Apps returns every placed app sorted by ID.
func (p *Pool) Apps() []App {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]App, 0, len(p.apps))
	for _, a := range p.apps {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Capacity summarises the pool.
type Capacity struct {
	TotalCPUs float64 `json:"total_cpus"`
	UsedCPUs  float64 `json:"used_cpus"`
	Hosts     int     `json:"hosts"`
	Apps      int     `json:"apps"`
}

// Capacity returns the pool capacity summary.
func (p *Pool) Capacity() Capacity {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c := Capacity{Hosts: len(p.hosts), Apps: len(p.apps)}
	for _, h := range p.hosts {
		c.TotalCPUs += h.cap
		c.UsedCPUs += h.used
	}
	return c
}

// Utilization returns used/total CPUs in [0,1].
func (p *Pool) Utilization() float64 {
	c := p.Capacity()
	if c.TotalCPUs <= 0 {
		return 0
	}
	return c.UsedCPUs / c.TotalCPUs
}
