package mec

import (
	"errors"
	"testing"
)

func pool(t *testing.T) *Pool {
	t.Helper()
	p := NewPool(0.2)
	if err := p.AddHost("mec-h1", 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddHost("mec-h2", 2); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCPUForMbps(t *testing.T) {
	cases := map[float64]float64{0: 1, 5: 1, 20: 1, 21: 2, 40: 2, 100: 5}
	for mbps, want := range cases {
		if got := CPUForMbps(mbps); got != want {
			t.Fatalf("CPUForMbps(%.0f) = %.1f, want %.1f", mbps, got, want)
		}
	}
}

func TestPlaceFirstFitByHostName(t *testing.T) {
	p := pool(t)
	a, err := p.Place("s-1/app", "s-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Host != "mec-h1" {
		t.Fatalf("placed on %s, want mec-h1 (first fit, name order)", a.Host)
	}
	// 1 CPU left on h1, 2 on h2: a 2-CPU app lands on h2.
	b, err := p.Place("s-2/app", "s-2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Host != "mec-h2" {
		t.Fatalf("placed on %s, want mec-h2", b.Host)
	}
	if _, err := p.Place("s-3/app", "s-3", 2); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("overfull place error = %v", err)
	}
	if _, err := p.Place("s-1/app", "s-1", 1); !errors.Is(err, ErrDuplicateApp) {
		t.Fatalf("duplicate place error = %v", err)
	}
	if u := p.Utilization(); u != 5.0/6.0 {
		t.Fatalf("utilization %g", u)
	}
}

func TestResizeAndRemove(t *testing.T) {
	p := pool(t)
	if _, err := p.Place("s-1/app", "s-1", 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Resize("s-1/app", 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Resize("s-1/app", 5); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("grow past host error = %v", err)
	}
	if a, _ := p.App("s-1/app"); a.CPU != 4 {
		t.Fatalf("CPU %v after failed grow, want 4", a.CPU)
	}
	if err := p.Resize("s-1/app", 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Resize("ghost", 1); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown resize error = %v", err)
	}
	p.Remove("s-1/app")
	p.Remove("s-1/app") // idempotent
	if u := p.Utilization(); u != 0 {
		t.Fatalf("utilization %g after remove", u)
	}
	// CanFit is per-host: 6 CPUs never fit on 4+2-CPU hosts.
	if p.CanFit(6) {
		t.Fatal("CanFit(6) = true on 4+2 hosts")
	}
	if !p.CanFit(4) {
		t.Fatal("CanFit(4) = false on an empty 4-CPU host")
	}
}
