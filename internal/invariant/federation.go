// Federation conservation sweep: the hierarchical-ledger counterpart of the
// per-cluster Sweep. The federation tier keeps three books per member —
// advertised capacity, placement headroom and the reserved sum of live
// span-leg contracts — and a span registry mapping every federated span to
// its member-local leg slices. FedSweep proves, at every federation barrier:
//
//	fed-ledger   headroom + member ledger == advertised for every reachable
//	             member (the barrier refresh re-anchored headroom from a
//	             fresh ledger read; a second independent read here verifies
//	             the refresh pipeline, partition bookkeeping included), and
//	             the incremental reserved book equals the span registry's
//	             per-member leg walk. No book may go negative and headroom
//	             never exceeds advertised.
//	fed-leak     every "fed:"-tagged live slice on a reachable member maps
//	             to a registered span leg (orphans from an unhealed
//	             partition are exempt, once each), and every registered leg
//	             on a reachable member is actually alive there — nothing
//	             survives a span rollback, partition teardown or heal.
//
// Like the per-cluster sweep, the package stays core-agnostic: the
// federation passes neutral views built under its own mutex in the same
// scheduler event as the barrier refresh, so the cut is consistent.
package invariant

import (
	"math"

	"repro/internal/slice"
)

// FedMemberView is one member cluster's books at the sweep cut.
type FedMemberView struct {
	Name  string
	Alive bool
	// AdvertisedMbps/HeadroomMbps/ReservedMbps are the federation-tier books.
	AdvertisedMbps float64
	HeadroomMbps   float64
	ReservedMbps   float64
	// LedgerMbps is the member's capacity-ledger load, read fresh from the
	// member after the barrier refresh (only meaningful when Alive).
	LedgerMbps float64
	// FedSlices maps every live "fed:"-tagged member slice to its owning
	// span ID (only populated when Alive — a partitioned member cannot be
	// consulted).
	FedSlices map[slice.ID]slice.ID
}

// FedLegView is one registered span leg.
type FedLegView struct {
	Member string
	Leg    slice.ID
	Mbps   float64
}

// FedSpanView is one registered span and its legs.
type FedSpanView struct {
	ID   slice.ID
	Legs []FedLegView
}

// FedSweepInput is everything one federation conservation sweep needs.
type FedSweepInput struct {
	Members []FedMemberView
	Spans   []FedSpanView
	// Orphans lists member-local leg IDs stranded on unreachable members by
	// a partition, keyed by member name; they are exempt from leak checks
	// until the heal deletes them.
	Orphans map[string][]slice.ID
}

// FedSweep runs the federation conservation and leak audit over one
// barrier cut.
func (a *Auditor) FedSweep(in FedSweepInput) {
	a.mu.Lock()
	a.sweeps++
	a.mu.Unlock()

	// Walk the span registry: per-member reserved sums and the leg->span
	// index the leak checks cross-reference.
	reservedWalk := make(map[string]float64, len(in.Members))
	legSpan := make(map[string]map[slice.ID]slice.ID, len(in.Members))
	for _, sp := range in.Spans {
		if len(sp.Legs) == 0 {
			a.record("fed-ledger", "span %s registered with no legs", sp.ID)
		}
		for _, leg := range sp.Legs {
			if leg.Mbps <= 0 {
				a.record("fed-ledger", "span %s leg %s on %s holds non-positive contract %.3f Mbps",
					sp.ID, leg.Leg, leg.Member, leg.Mbps)
			}
			reservedWalk[leg.Member] += leg.Mbps
			m := legSpan[leg.Member]
			if m == nil {
				m = make(map[slice.ID]slice.ID)
				legSpan[leg.Member] = m
			}
			m[leg.Leg] = sp.ID
		}
	}

	orphaned := make(map[string]map[slice.ID]bool, len(in.Orphans))
	for name, legs := range in.Orphans {
		m := make(map[slice.ID]bool, len(legs))
		for _, id := range legs {
			m[id] = true
		}
		orphaned[name] = m
	}

	for _, mv := range in.Members {
		if mv.HeadroomMbps < -1e-6 {
			a.record("fed-ledger", "member %s headroom negative: %.6f Mbps", mv.Name, mv.HeadroomMbps)
		}
		if mv.ReservedMbps < -1e-6 {
			a.record("fed-ledger", "member %s reserved book negative: %.6f Mbps", mv.Name, mv.ReservedMbps)
		}
		if mv.HeadroomMbps > mv.AdvertisedMbps+1e-6 {
			a.record("fed-ledger", "member %s headroom %.6f exceeds advertised %.6f Mbps",
				mv.Name, mv.HeadroomMbps, mv.AdvertisedMbps)
		}
		if d := mv.ReservedMbps - reservedWalk[mv.Name]; math.Abs(d) > 1e-6 {
			a.record("fed-ledger", "member %s reserved book %.6f != Σ registered legs %.6f (Δ %.3g)",
				mv.Name, mv.ReservedMbps, reservedWalk[mv.Name], d)
		}
		legs := legSpan[mv.Name]
		if !mv.Alive {
			// Unreachable: the books are frozen and the member cannot be
			// consulted; a reachable-member walk would be ground truth from
			// the wrong side of the partition. Spans never keep legs here —
			// isolate() rolls them back — so any registered leg is a bug.
			for leg, span := range legs {
				a.record("fed-leak", "span %s keeps leg %s on unreachable member %s", span, leg, mv.Name)
			}
			continue
		}
		// Conservation: the barrier refresh anchored headroom = advertised −
		// ledger; re-deriving it from an independent ledger read proves the
		// refresh pipeline (skip lists, partition flags, clamping) kept the
		// identity rather than checking a − b == a − b. The refresh clamps
		// negative headroom to zero, so only over-budget members are exempt.
		if mv.LedgerMbps <= mv.AdvertisedMbps+1e-6 {
			if d := mv.HeadroomMbps + mv.LedgerMbps - mv.AdvertisedMbps; math.Abs(d) > 1e-6 {
				a.record("fed-ledger", "member %s headroom %.6f + ledger %.6f != advertised %.6f (Δ %.3g)",
					mv.Name, mv.HeadroomMbps, mv.LedgerMbps, mv.AdvertisedMbps, d)
			}
		}
		// Leak-freedom, both directions.
		for legID, spanID := range mv.FedSlices {
			if orphaned[mv.Name][legID] {
				continue
			}
			if got, ok := legs[legID]; !ok {
				a.record("fed-leak", "member %s live leg %s (span %s) has no registered span leg",
					mv.Name, legID, spanID)
			} else if got != spanID {
				a.record("fed-leak", "member %s leg %s tagged for span %s but registered to span %s",
					mv.Name, legID, spanID, got)
			}
		}
		for legID, spanID := range legs {
			if _, ok := mv.FedSlices[legID]; !ok {
				a.record("fed-leak", "span %s registers leg %s on %s but the member no longer holds it",
					spanID, legID, mv.Name)
			}
		}
	}
}
