package invariant

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ctrl"
	"repro/internal/slice"
	"repro/internal/testbed"
)

func testEnv(t *testing.T) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.New(testbed.Config{MECHosts: 1, MECHostCPUs: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// reserveSlice installs one slice's resources directly through the domain
// controllers and returns the matching SliceView.
func reserveSlice(t *testing.T, tb *testbed.Testbed, id slice.ID, plmn slice.PLMN, mbps float64) SliceView {
	t.Helper()
	tx := ctrl.Tx{Slice: id, PLMN: plmn, SLA: slice.SLA{ThroughputMbps: mbps, MaxLatencyMs: 50,
		Duration: time.Hour, Class: slice.ClassEMBB}, DataCenter: testbed.CoreDC, Mbps: mbps, LatencyBudgetMs: 40}
	v := SliceView{ID: id, State: "active", PLMN: plmn, LedgerMbps: mbps, DC: testbed.CoreDC}
	rg, cause := tb.Ctrl.RAN.Reserve(tx)
	if cause != nil {
		t.Fatal(cause)
	}
	_ = rg
	pg, cause := tb.Ctrl.Transport.Reserve(tx)
	if cause != nil {
		t.Fatal(cause)
	}
	var alloc slice.Allocation
	pg.Apply(&alloc)
	v.PathIDs = alloc.PathIDs
	cg, cause := tb.Ctrl.Cloud.Reserve(tx)
	if cause != nil {
		t.Fatal(cause)
	}
	cg.Apply(&alloc)
	v.StackID, v.EPCID = alloc.StackID, alloc.EPCID
	mg, cause := tb.Ctrl.Extra[0].Reserve(tx)
	if cause != nil {
		t.Fatal(cause)
	}
	mg.Apply(&alloc)
	v.MECAppID = alloc.MECAppID
	return v
}

func plmn(mnc string) slice.PLMN { return slice.PLMN{MCC: "001", MNC: mnc} }

// TestSweepCleanBaseline proves the sweep reports nothing on a consistent
// registry/substrate cut, both empty and with one fully installed slice.
func TestSweepCleanBaseline(t *testing.T) {
	tb := testEnv(t)
	a := New(Options{})
	a.Sweep(SweepInput{TB: tb, PLMNOwners: map[slice.PLMN]slice.ID{}})
	if err := a.Err(); err != nil {
		t.Fatalf("empty testbed not clean: %v", err)
	}

	p := plmn("01")
	v := reserveSlice(t, tb, "s-1", p, 20)
	a.Sweep(SweepInput{
		TB:         tb,
		Slices:     []SliceView{v},
		LedgerLoad: 20,
		PLMNOwners: map[slice.PLMN]slice.ID{p: "s-1"},
	})
	if err := a.Err(); err != nil {
		t.Fatalf("installed slice not clean: %v", err)
	}
	if st := a.Stats(); st.Sweeps != 2 {
		t.Fatalf("stats %+v, want 2 sweeps", st)
	}
}

// TestSweepDetectsLeaks seeds every class of leak (orphaned substrate
// resources, dangling slice records, ledger drift) and asserts each is
// flagged.
func TestSweepDetectsLeaks(t *testing.T) {
	tb := testEnv(t)
	p := plmn("01")
	reserveSlice(t, tb, "s-1", p, 20)

	// No live slices at all: the radio PRBs, transport paths, cloud stack
	// and MEC app all become leaks; the ledger total has no owner.
	a := New(Options{})
	a.Sweep(SweepInput{TB: tb, LedgerLoad: 20, PLMNOwners: map[slice.PLMN]slice.ID{p: "s-1"}})
	wants := []string{"PLMN", "transport path", "cloud stack", "mec app", "capacity ledger"}
	got := a.Violations()
	for _, want := range wants {
		found := false
		for _, v := range got {
			if strings.Contains(v.Detail, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no violation mentioning %q in %v", want, got)
		}
	}
}

// TestSweepDetectsDanglingRecords is the mirror image: a live slice records
// resources the substrates no longer hold.
func TestSweepDetectsDanglingRecords(t *testing.T) {
	tb := testEnv(t)
	p := plmn("01")
	v := reserveSlice(t, tb, "s-1", p, 20)
	// Tear everything down behind the registry's back.
	tb.Ctrl.RAN.Release("s-1", p)
	tb.Ctrl.Transport.Release("s-1", p)
	tb.Ctrl.Cloud.Release("s-1", p)
	tb.Ctrl.Extra[0].Release("s-1", p)

	a := New(Options{})
	a.Sweep(SweepInput{TB: tb, Slices: []SliceView{v}, LedgerLoad: 20,
		PLMNOwners: map[slice.PLMN]slice.ID{p: "s-1"}})
	wants := []string{"no PRB reservation", "transport no longer holds", "no longer holds", "mec app"}
	got := a.Violations()
	for _, want := range wants {
		found := false
		for _, vv := range got {
			if strings.Contains(vv.Detail, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no violation mentioning %q in %v", want, got)
		}
	}
}

// TestSweepPendingExemption: resources of an in-flight install (the squeeze
// window) are not leaks, and the ledger equality check stands down.
func TestSweepPendingExemption(t *testing.T) {
	tb := testEnv(t)
	p := plmn("01")
	reserveSlice(t, tb, "s-1", p, 20)
	a := New(Options{})
	a.Sweep(SweepInput{TB: tb, LedgerLoad: 20,
		PLMNOwners: map[slice.PLMN]slice.ID{p: "s-1"},
		Pending:    map[slice.ID]bool{"s-1": true}})
	if err := a.Err(); err != nil {
		t.Fatalf("pending install flagged: %v", err)
	}
}

// TestEventStreamInvariants drives the observer with a legal sequence, then
// a gap and an illegal transition.
func TestEventStreamInvariants(t *testing.T) {
	a := New(Options{})
	a.ObserveEvent(1, "s-1", "submitted", "pending")
	a.ObserveEvent(2, "s-1", "admitted", "installing")
	a.ObserveEvent(3, "s-1", "resized", "installing")
	a.ObserveEvent(4, "s-1", "installed", "active")
	a.ObserveEvent(5, "", "link-failed", "")
	a.ObserveEvent(6, "s-1", "deleted", "terminated")
	if err := a.Err(); err != nil {
		t.Fatalf("legal sequence flagged: %v", err)
	}

	a.ObserveEvent(8, "s-2", "submitted", "pending") // gap: 6 -> 8
	if len(a.Violations()) != 1 || a.Violations()[0].Check != "event-gap" {
		t.Fatalf("gap not flagged: %v", a.Violations())
	}
	a.ObserveEvent(9, "s-2", "installed", "active") // pending -> active is illegal
	found := false
	for _, v := range a.Violations() {
		if v.Check == "state-machine" {
			found = true
		}
	}
	if !found {
		t.Fatalf("illegal transition not flagged: %v", a.Violations())
	}

	// A slice whose first event is not its submission means the submitted
	// event was lost or reordered — flagged even for rejections, which
	// also publish submitted first.
	lost := New(Options{})
	lost.ObserveEvent(1, "s-3", "rejected", "rejected")
	if vs := lost.Violations(); len(vs) != 1 || vs[0].Check != "state-machine" {
		t.Fatalf("rejected-first stream not flagged: %v", vs)
	}
}

// TestEpochMonotonicity flags regressing epoch counters and timestamps.
func TestEpochMonotonicity(t *testing.T) {
	a := New(Options{})
	t0 := time.Unix(1000, 0)
	a.ObserveEpoch(1, t0)
	a.ObserveEpoch(2, t0.Add(time.Minute))
	if err := a.Err(); err != nil {
		t.Fatalf("monotone epochs flagged: %v", err)
	}
	a.ObserveEpoch(4, t0.Add(2*time.Minute)) // skipped 3
	a.ObserveEpoch(5, t0)                    // time regressed
	vs := a.Violations()
	if len(vs) != 2 {
		t.Fatalf("want 2 violations, got %v", vs)
	}
	for _, v := range vs {
		if v.Check != "epoch-monotonic" {
			t.Fatalf("unexpected check %q", v.Check)
		}
	}
}

// TestCheckSliceReleased flags every surviving ID-keyed resource after a
// supposed teardown and stays quiet once everything is released.
func TestCheckSliceReleased(t *testing.T) {
	tb := testEnv(t)
	p := plmn("01")
	reserveSlice(t, tb, "s-1", p, 20)

	a := New(Options{})
	a.CheckSliceReleased(tb, "s-1")
	if n := len(a.Violations()); n != 4 { // 2 paths (one per eNB) + stack + app
		t.Fatalf("want 4 leak violations, got %d: %v", n, a.Violations())
	}

	tb.Ctrl.Transport.Release("s-1", p)
	tb.Ctrl.Cloud.Release("s-1", p)
	tb.Ctrl.Extra[0].Release("s-1", p)
	clean := New(Options{})
	clean.CheckSliceReleased(tb, "s-1")
	if err := clean.Err(); err != nil {
		t.Fatalf("released slice flagged: %v", err)
	}
}

// TestViolationLimitAndCallback: the retention cap holds and the callback
// fires for every breach.
func TestViolationLimitAndCallback(t *testing.T) {
	calls := 0
	a := New(Options{Limit: 2, OnViolation: func(Violation) { calls++ }})
	for i := 0; i < 5; i++ {
		a.ObserveEpoch(10+2*i, time.Unix(int64(1000+i), 0)) // every call jumps
	}
	if got := len(a.Violations()); got != 2 {
		t.Fatalf("retained %d, want 2", got)
	}
	if st := a.Stats(); st.Violations != 4 {
		t.Fatalf("stats %+v, want 4 total violations", st)
	}
	if calls != 4 {
		t.Fatalf("callback fired %d times, want 4", calls)
	}
}
