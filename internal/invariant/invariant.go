// Package invariant implements the cross-domain invariant auditor: an
// always-on verification layer the orchestrator core drives (enabled via
// core.Config.Audit) that proves the capacity ledgers, domain reservations
// and lifecycle event stream stay mutually consistent under every workload
// — steady state, overload, and the scripted failure timelines of
// internal/chaos.
//
// The auditor checks five invariant families:
//
//	conservation   per domain, Σ reserved + free == pool and no negative
//	               slack: each substrate's incremental books (eNB used-PRB
//	               counters, link bandwidth sums, host vCPU/RAM/disk, MEC
//	               CPU shares) are cross-checked against ground truth by
//	               the substrate's own AuditConservation, and the
//	               orchestrator's radio capacity ledger must equal the sum
//	               of live slices' ledger entries.
//	leak-freedom   every resource held in any substrate maps back to a
//	               live slice, and every live slice's recorded allocation
//	               is actually held — nothing survives an abort, teardown
//	               or restoration pass.
//	event order    the lifecycle event stream is gap-free (sequence
//	               numbers are consecutive) and every per-slice transition
//	               it announces is legal under the slice state machine.
//	epoch          epoch snapshots are strictly monotone in epoch number
//	               and non-decreasing in time.
//	shard equiv.   outcomes are identical at any shard count — proved by
//	               the scenario-level equivalence tests, not by a runtime
//	               check.
//
// The package deliberately does not import internal/core: the core passes
// neutral SliceView records plus its testbed, so the dependency points
// core -> invariant and the auditor stays reusable from tests that build
// substrates directly.
package invariant

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/slice"
	"repro/internal/testbed"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Check names the invariant family ("ledger", "conservation", "leak",
	// "event-gap", "state-machine", "epoch-monotonic").
	Check string `json:"check"`
	// Detail is the human-readable discrepancy.
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// Options tunes the auditor.
type Options struct {
	// Limit bounds how many violations are retained (default 256); further
	// breaches only bump the dropped counter. A broken invariant tends to
	// cascade, and the first violations are the diagnostic ones.
	Limit int
	// OnViolation, when non-nil, is called synchronously for every breach
	// (tests install t.Errorf-style hooks to fail fast with context).
	OnViolation func(Violation)
}

// Auditor collects invariant violations. All methods are safe for
// concurrent use; the mutex is a leaf — the auditor never calls back into
// the orchestrator or the substrates while holding it (substrate reads
// happen before recording).
type Auditor struct {
	onViolation func(Violation)

	mu         sync.Mutex
	violations []Violation
	dropped    int
	limit      int

	// Event-stream state.
	lastSeq   int64
	lastState map[slice.ID]string

	// Epoch-snapshot state.
	lastEpoch int
	lastAt    time.Time

	sweeps int
	events int64
}

// New returns an auditor.
func New(opts Options) *Auditor {
	if opts.Limit <= 0 {
		opts.Limit = 256
	}
	return &Auditor{
		onViolation: opts.OnViolation,
		limit:       opts.Limit,
		lastState:   make(map[slice.ID]string),
	}
}

// record registers one violation.
func (a *Auditor) record(check, format string, args ...any) {
	v := Violation{Check: check, Detail: fmt.Sprintf(format, args...)}
	a.mu.Lock()
	if len(a.violations) < a.limit {
		a.violations = append(a.violations, v)
	} else {
		a.dropped++
	}
	cb := a.onViolation
	a.mu.Unlock()
	if cb != nil {
		cb(v)
	}
}

// Violations returns a copy of the retained violations.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// Err returns nil when no invariant was ever breached, or an error
// summarising the first few violations (and how many more followed).
func (a *Auditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.violations) + a.dropped
	if n == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s):", n)
	for i, v := range a.violations {
		if i == 5 {
			fmt.Fprintf(&b, " ... and %d more", n-i)
			break
		}
		b.WriteString("\n  " + v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Stats reports how much auditing happened — so a "clean" run can prove the
// auditor actually looked.
type Stats struct {
	Sweeps     int   `json:"sweeps"`
	Events     int64 `json:"events"`
	Violations int   `json:"violations"`
}

// Stats returns the audit counters.
func (a *Auditor) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Sweeps: a.sweeps, Events: a.events, Violations: len(a.violations) + a.dropped}
}

// ---------------------------------------------------------------------------
// Event-stream invariants.

// liveEventStates maps each announced post-transition state to the states a
// later event for the same slice may announce. Self-loops cover the epoch
// loop (resized/violation while active) and the squeeze (resized while
// installing); "reconfiguring" never reaches the bus — resize events are
// published after the transition back to active completes.
var liveEventStates = map[string][]string{
	"pending":    {"rejected", "installing"},
	"installing": {"installing", "active", "terminated"},
	"active":     {"active", "terminated"},
	"rejected":   {},
	"terminated": {},
}

// ObserveEvent feeds one published lifecycle event. The orchestrator calls
// it synchronously from the event bus, in sequence order, so gap-freeness
// and per-slice transition legality are checked exactly — no reordering
// tolerance needed. sliceID is empty for link events and resync markers
// (they participate in the sequence but carry no slice state).
func (a *Auditor) ObserveEvent(seq int64, sliceID slice.ID, typ, state string) {
	a.mu.Lock()
	a.events++
	last := a.lastSeq
	a.lastSeq = seq
	var prev string
	havePrev := false
	if sliceID != "" {
		prev, havePrev = a.lastState[sliceID]
		a.lastState[sliceID] = state
		if state == "terminated" || state == "rejected" {
			// Terminal: drop the entry so a soak's map stays bounded; the
			// terminal states forbid successors, and slice IDs are never
			// reused, so forgetting them is safe.
			delete(a.lastState, sliceID)
		}
	}
	a.mu.Unlock()

	if last != 0 && seq != last+1 {
		a.record("event-gap", "sequence jumped %d -> %d (type %s)", last, seq, typ)
	}
	if sliceID == "" {
		return
	}
	if !havePrev {
		// The first event for a slice must be its submission (state
		// pending): every core path — including every rejection path —
		// publishes EventSubmitted before anything else, so any other
		// first state means the submitted event was lost or reordered.
		if state != "pending" {
			a.record("state-machine", "slice %s first event %s announces state %q, want pending", sliceID, typ, state)
		}
		return
	}
	for _, ok := range liveEventStates[prev] {
		if ok == state {
			return
		}
	}
	a.record("state-machine", "slice %s: illegal announced transition %q -> %q (event %s)", sliceID, prev, state, typ)
}

// Prime seeds the event-stream and epoch state after crash recovery: the
// next observed event must carry seq+1, and each listed live slice's next
// event is checked against its recovered state rather than being mistaken
// for a missing submission. Without priming, a recovered auditor would
// flag every pre-crash slice's first post-recovery event as "first event
// must announce pending".
func (a *Auditor) Prime(seq int64, states map[slice.ID]string, epoch int, at time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastSeq = seq
	a.lastState = make(map[slice.ID]string, len(states))
	for id, st := range states {
		a.lastState[id] = st
	}
	a.lastEpoch = epoch
	a.lastAt = at
}

// ObserveEpoch feeds one published epoch snapshot (the P4 barrier).
func (a *Auditor) ObserveEpoch(epoch int, at time.Time) {
	a.mu.Lock()
	lastEpoch, lastAt := a.lastEpoch, a.lastAt
	a.lastEpoch, a.lastAt = epoch, at
	a.mu.Unlock()
	if lastEpoch != 0 && epoch != lastEpoch+1 {
		a.record("epoch-monotonic", "epoch counter jumped %d -> %d", lastEpoch, epoch)
	}
	if !lastAt.IsZero() && at.Before(lastAt) {
		a.record("epoch-monotonic", "epoch %d timestamp %v precedes epoch %d's %v", epoch, at, lastEpoch, lastAt)
	}
}

// ---------------------------------------------------------------------------
// Conservation and leak sweeps.

// SliceView is the core's neutral description of one registered slice at
// sweep time, collected under every shard lock so the cut is consistent.
type SliceView struct {
	ID    slice.ID
	State string // API string form ("installing", "active", ...)
	// LedgerMbps is the slice's entry in the shared radio capacity ledger.
	LedgerMbps float64
	// Allocation echoes the slice's recorded multi-domain allocation.
	PLMN     slice.PLMN
	PathIDs  []string
	StackID  string
	EPCID    string
	MECAppID string
	DC       string
}

// live reports whether the slice should currently hold resources.
func (v SliceView) live() bool {
	switch v.State {
	case "admitted", "installing", "active", "reconfiguring":
		return true
	}
	return false
}

// SweepInput is everything one conservation/leak sweep needs. The core
// builds it while holding every shard lock (so no install transaction is
// mid-flight except those listed in Pending).
type SweepInput struct {
	TB     *testbed.Testbed
	Slices []SliceView
	// LedgerLoad is the capacity ledger's current total.
	LedgerLoad float64
	// PLMNOwners maps every allocator-held PLMN to its owning slice.
	PLMNOwners map[slice.PLMN]slice.ID
	// Pending lists slice IDs whose install transaction is in flight (the
	// squeeze window releases the shard lock mid-install); their resources
	// are exempt from leak checks and their ledger reservations excuse an
	// over-full ledger.
	Pending map[slice.ID]bool
}

// Sweep runs the full cross-domain conservation and leak audit. The caller
// (the epoch barrier, or a test) must present a quiescent registry cut; the
// substrate reads take each substrate's own lock.
func (a *Auditor) Sweep(in SweepInput) {
	a.mu.Lock()
	a.sweeps++
	a.mu.Unlock()

	live := make(map[slice.ID]SliceView, len(in.Slices))
	ledgerSum := 0.0
	for _, v := range in.Slices {
		if !v.live() {
			continue
		}
		live[v.ID] = v
		ledgerSum += v.LedgerMbps
		if v.LedgerMbps < 0 {
			a.record("ledger", "slice %s holds negative ledger entry %.3f Mbps", v.ID, v.LedgerMbps)
		}
	}

	// Radio capacity ledger: the shared overbooking budget must be exactly
	// the sum of live entries. In-flight installs (Pending) have reserved
	// their admission estimate but not yet recorded it on a managed slice,
	// so equality can only be checked on a quiet registry.
	if len(in.Pending) == 0 {
		if d := in.LedgerLoad - ledgerSum; math.Abs(d) > 1e-6 {
			a.record("ledger", "capacity ledger %.6f != Σ live slice entries %.6f (Δ %.3g over %d slices)",
				in.LedgerLoad, ledgerSum, d, len(live))
		}
	}
	if in.LedgerLoad < 0 {
		a.record("ledger", "capacity ledger negative: %.6f", in.LedgerLoad)
	}

	a.sweepRadio(in, live)
	a.sweepTransport(in, live)
	a.sweepCloud(in, live)
	a.sweepMEC(in, live)
}

// sweepRadio checks eNB conservation plus PLMN <-> slice leak-freedom.
func (a *Auditor) sweepRadio(in SweepInput, live map[slice.ID]SliceView) {
	// Allocator view: every held PLMN belongs to a live or pending slice,
	// and every live slice's PLMN is held.
	for p, owner := range in.PLMNOwners {
		if in.Pending[owner] {
			continue
		}
		if _, ok := live[owner]; !ok {
			a.record("leak", "PLMN %s still allocated to non-live slice %s", p, owner)
		}
	}
	plmnOf := make(map[slice.PLMN]slice.ID, len(live))
	for id, v := range live {
		if v.PLMN.IsZero() {
			continue // admitted-but-not-allocated windows carry no PLMN
		}
		plmnOf[v.PLMN] = id
		if got, ok := in.PLMNOwners[v.PLMN]; !ok || got != id {
			a.record("leak", "slice %s records PLMN %s but the allocator assigns it to %q", id, v.PLMN, got)
		}
	}
	for _, e := range in.TB.RAN.All() {
		for _, msg := range e.AuditConservation() {
			a.record("conservation", "%s", msg)
		}
		for _, p := range e.BroadcastList() {
			owner, allocated := in.PLMNOwners[p]
			if !allocated {
				a.record("leak", "%s broadcasts PLMN %s that no slice owns", e.Name(), p)
				continue
			}
			if in.Pending[owner] {
				continue
			}
			if _, ok := plmnOf[p]; !ok {
				a.record("leak", "%s holds PRBs for PLMN %s of non-live slice %s", e.Name(), p, owner)
			}
		}
		// Every live slice past installation must hold PRBs on every cell.
		for id, v := range live {
			if v.PLMN.IsZero() || in.Pending[id] {
				continue
			}
			if _, ok := e.Reservation(v.PLMN); !ok {
				a.record("leak", "live slice %s (PLMN %s) has no PRB reservation on %s", id, v.PLMN, e.Name())
			}
		}
	}
}

// sweepTransport checks link conservation plus path <-> slice leak-freedom.
func (a *Auditor) sweepTransport(in SweepInput, live map[slice.ID]SliceView) {
	for _, msg := range in.TB.Transport.AuditConservation() {
		a.record("conservation", "%s", msg)
	}
	held := make(map[string]bool)
	for _, r := range in.TB.Transport.Reservations() {
		held[r.ID] = true
		owner := sliceOfPath(r.ID)
		if in.Pending[owner] {
			continue
		}
		if _, ok := live[owner]; !ok {
			a.record("leak", "transport path %q survives its slice %s", r.ID, owner)
		}
	}
	for id, v := range live {
		if in.Pending[id] {
			continue
		}
		for _, pid := range v.PathIDs {
			if !held[pid] {
				a.record("leak", "live slice %s records path %q that transport no longer holds", id, pid)
			}
		}
	}
}

// sliceOfPath recovers the owning slice from a path ID
// ("<sliceID>/<enb>-><dc>").
func sliceOfPath(pathID string) slice.ID {
	if i := strings.IndexByte(pathID, '/'); i >= 0 {
		return slice.ID(pathID[:i])
	}
	return slice.ID(pathID)
}

// sliceOfStack recovers the owning slice from a stack/EPC/app ID of the form
// "<sliceID>/<suffix>".
func sliceOfStack(id string) slice.ID { return sliceOfPath(id) }

// sweepCloud checks DC conservation plus stack <-> slice leak-freedom.
func (a *Auditor) sweepCloud(in SweepInput, live map[slice.ID]SliceView) {
	for _, dc := range in.TB.Region.All() {
		for _, msg := range dc.AuditConservation() {
			a.record("conservation", "%s", msg)
		}
		for _, stackID := range dc.StackIDs() {
			owner := sliceOfStack(stackID)
			if in.Pending[owner] {
				continue
			}
			if _, ok := live[owner]; !ok {
				a.record("leak", "cloud stack %q in %s survives its slice %s", stackID, dc.Name(), owner)
			}
		}
	}
	for id, v := range live {
		if v.StackID == "" || in.Pending[id] {
			continue
		}
		dc, ok := in.TB.Region.Get(v.DC)
		if !ok {
			a.record("leak", "live slice %s records unknown data center %q", id, v.DC)
			continue
		}
		if _, ok := dc.Stack(v.StackID); !ok {
			a.record("leak", "live slice %s records stack %q that %s no longer holds", id, v.StackID, v.DC)
		}
	}
}

// sweepMEC checks pool conservation plus app <-> slice leak-freedom.
func (a *Auditor) sweepMEC(in SweepInput, live map[slice.ID]SliceView) {
	if in.TB.MEC == nil {
		return
	}
	for _, msg := range in.TB.MEC.AuditConservation() {
		a.record("conservation", "%s", msg)
	}
	placed := make(map[string]bool)
	for _, app := range in.TB.MEC.Apps() {
		placed[app.ID] = true
		if in.Pending[app.Slice] {
			continue
		}
		if _, ok := live[app.Slice]; !ok {
			a.record("leak", "mec app %q survives its slice %s", app.ID, app.Slice)
		}
	}
	for id, v := range live {
		if v.MECAppID == "" || in.Pending[id] {
			continue
		}
		if !placed[v.MECAppID] {
			a.record("leak", "live slice %s records mec app %q that the pool no longer holds", id, v.MECAppID)
		}
	}
}

// CheckSliceReleased is the scoped per-transaction audit: after a rollback
// or teardown of the slice, no uniquely-named resource of it may survive in
// any substrate. It deliberately checks only ID-keyed resources (paths,
// stacks, MEC apps) — PLMNs are recycled, so their absence can only be
// checked by the quiescent Sweep.
func (a *Auditor) CheckSliceReleased(tb *testbed.Testbed, id slice.ID) {
	prefix := string(id) + "/"
	for _, r := range tb.Transport.Reservations() {
		if strings.HasPrefix(r.ID, prefix) {
			a.record("leak", "rollback/teardown of %s left transport path %q reserved", id, r.ID)
		}
	}
	for _, dc := range tb.Region.All() {
		for _, stackID := range dc.StackIDs() {
			if strings.HasPrefix(stackID, prefix) {
				a.record("leak", "rollback/teardown of %s left cloud stack %q in %s", id, stackID, dc.Name())
			}
		}
	}
	if tb.MEC != nil {
		if _, ok := tb.MEC.App(prefix + "app"); ok {
			a.record("leak", "rollback/teardown of %s left mec app placed", id)
		}
	}
}

// CheckSliceInstalled is the scoped post-commit audit: everything the
// freshly installed slice's allocation records must actually be held by the
// substrates — a commit that "succeeded" without its resources is as much a
// conservation bug as a leak.
func (a *Auditor) CheckSliceInstalled(tb *testbed.Testbed, v SliceView) {
	if !v.PLMN.IsZero() {
		for _, e := range tb.RAN.All() {
			if _, ok := e.Reservation(v.PLMN); !ok {
				a.record("leak", "post-commit: slice %s (PLMN %s) holds no PRBs on %s", v.ID, v.PLMN, e.Name())
			}
		}
	}
	for _, pid := range v.PathIDs {
		if _, ok := tb.Transport.Reservation(pid); !ok {
			a.record("leak", "post-commit: slice %s path %q not reserved", v.ID, pid)
		}
	}
	if v.StackID != "" {
		dc, ok := tb.Region.Get(v.DC)
		if !ok {
			a.record("leak", "post-commit: slice %s records unknown data center %q", v.ID, v.DC)
		} else if _, ok := dc.Stack(v.StackID); !ok {
			a.record("leak", "post-commit: slice %s stack %q missing from %s", v.ID, v.StackID, v.DC)
		}
	}
	if v.MECAppID != "" && tb.MEC != nil {
		if _, ok := tb.MEC.App(v.MECAppID); !ok {
			a.record("leak", "post-commit: slice %s mec app %q not placed", v.ID, v.MECAppID)
		}
	}
}

// SortedViolationChecks returns the distinct Check families seen, sorted —
// a compact summary for experiment output.
func (a *Auditor) SortedViolationChecks() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := map[string]bool{}
	for _, v := range a.violations {
		seen[v.Check] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
