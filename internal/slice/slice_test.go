package slice

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func validReq() Request {
	return Request{
		Tenant: "acme-automotive",
		SLA: SLA{
			ThroughputMbps: 50,
			MaxLatencyMs:   10,
			Duration:       time.Hour,
			PriceEUR:       100,
			PenaltyEUR:     2,
			Class:          ClassAutomotive,
		},
	}
}

func TestSLAValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SLA)
		ok     bool
	}{
		{"valid", func(s *SLA) {}, true},
		{"zero throughput", func(s *SLA) { s.ThroughputMbps = 0 }, false},
		{"negative throughput", func(s *SLA) { s.ThroughputMbps = -1 }, false},
		{"zero latency", func(s *SLA) { s.MaxLatencyMs = 0 }, false},
		{"zero duration", func(s *SLA) { s.Duration = 0 }, false},
		{"negative price", func(s *SLA) { s.PriceEUR = -1 }, false},
		{"negative penalty", func(s *SLA) { s.PenaltyEUR = -0.5 }, false},
		{"zero price ok", func(s *SLA) { s.PriceEUR = 0 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sla := validReq().SLA
			tc.mutate(&sla)
			err := sla.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestRequestValidateRequiresTenant(t *testing.T) {
	r := validReq()
	r.Tenant = ""
	if err := r.Validate(); err == nil {
		t.Fatal("empty tenant accepted")
	}
}

func TestNewRejectsInvalidRequest(t *testing.T) {
	r := validReq()
	r.SLA.Duration = -time.Second
	if _, err := New("s1", r); err == nil {
		t.Fatal("New accepted invalid request")
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	s, err := New("s1", validReq())
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		name string
		fn   func() error
		want State
	}{
		{"admit", s.Admit, StateAdmitted},
		{"install", s.BeginInstall, StateInstalling},
		{"activate", func() error { return s.Activate(time.Unix(1000, 0)) }, StateActive},
		{"reconf", s.BeginReconfigure, StateReconfiguring},
		{"reconf-done", s.EndReconfigure, StateActive},
		{"terminate", func() error { return s.Terminate("expired") }, StateTerminated},
	}
	for _, st := range steps {
		if err := st.fn(); err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if got := s.State(); got != st.want {
			t.Fatalf("%s: state %v, want %v", st.name, got, st.want)
		}
	}
	if got := s.Reason(); got != "expired" {
		t.Fatalf("reason %q", got)
	}
}

func TestActivateSetsExpiry(t *testing.T) {
	s, _ := New("s1", validReq())
	s.Admit()
	s.BeginInstall()
	now := time.Unix(5000, 0)
	s.Activate(now)
	if want := now.Add(time.Hour); !s.Expiry().Equal(want) {
		t.Fatalf("expiry %v, want %v", s.Expiry(), want)
	}
}

func TestInvalidTransitions(t *testing.T) {
	s, _ := New("s1", validReq())
	if err := s.Activate(time.Now()); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("pending->active error = %v", err)
	}
	s.Reject(Rejectf(RejectRadioCapacity, "ran", "no capacity"))
	if err := s.Admit(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("rejected->admitted error = %v", err)
	}
	if got := s.State(); got != StateRejected {
		t.Fatalf("state mutated on failed transition: %v", got)
	}
}

func TestTerminatedIsTerminal(t *testing.T) {
	s, _ := New("s1", validReq())
	s.Admit()
	s.Terminate("op")
	for _, fn := range []func() error{s.Admit, s.BeginInstall, s.BeginReconfigure} {
		if err := fn(); !errors.Is(err, ErrBadTransition) {
			t.Fatalf("transition out of terminated allowed: %v", err)
		}
	}
}

func TestRecordEpochViolationAccounting(t *testing.T) {
	s, _ := New("s1", validReq()) // contract 50 Mbps, penalty 2
	s.Admit()

	// Demand below contract, fully served: no violation.
	if s.RecordEpoch(30, 30) {
		t.Fatal("fully served epoch counted as violation")
	}
	// Demand below contract, under-served: violation.
	if !s.RecordEpoch(30, 20) {
		t.Fatal("under-served epoch not counted")
	}
	// Demand above contract, served at contract: tenant exceeded SLA, no violation.
	if s.RecordEpoch(80, 50) {
		t.Fatal("over-demand epoch wrongly penalised")
	}
	// Demand above contract, served below contract: violation (entitled = contract).
	if !s.RecordEpoch(80, 40) {
		t.Fatal("under-contract service not penalised")
	}

	a := s.Accounting()
	if a.ViolationEpochs != 2 || a.ServedEpochs != 4 {
		t.Fatalf("epochs = %+v", a)
	}
	if a.PenaltyEUR != 4 {
		t.Fatalf("penalty %.2f, want 4", a.PenaltyEUR)
	}
	if a.PriceEUR != 100 || a.NetEUR != 96 {
		t.Fatalf("price %.2f net %.2f", a.PriceEUR, a.NetEUR)
	}
	if a.ViolationRate != 0.5 {
		t.Fatalf("violation rate %.2f", a.ViolationRate)
	}
}

func TestRejectedSliceEarnsNothing(t *testing.T) {
	s, _ := New("s1", validReq())
	s.Reject(Rejectf(RejectPLMNExhausted, "", "full"))
	if a := s.Accounting(); a.PriceEUR != 0 || a.NetEUR != 0 {
		t.Fatalf("rejected slice has revenue: %+v", a)
	}
}

func TestAllocationCloneIsDeep(t *testing.T) {
	s, _ := New("s1", validReq())
	s.SetAllocation(Allocation{
		AllocatedMbps: 40,
		PRBs:          map[string]int{"enb1": 10},
		PathIDs:       []string{"p1"},
	})
	a := s.Allocation()
	a.PRBs["enb1"] = 99
	a.PathIDs[0] = "mutated"
	b := s.Allocation()
	if b.PRBs["enb1"] != 10 || b.PathIDs[0] != "p1" {
		t.Fatalf("allocation aliased: %+v", b)
	}
}

func TestSnapshotReflectsState(t *testing.T) {
	s, _ := New("s9", validReq())
	s.Admit()
	s.UpdateAllocatedMbps(33)
	snap := s.Snapshot()
	if snap.ID != "s9" || snap.State != "admitted" || snap.Class != "automotive" {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Allocation.AllocatedMbps != 33 {
		t.Fatalf("snapshot alloc %v", snap.Allocation.AllocatedMbps)
	}
}

func TestServiceClassString(t *testing.T) {
	if ClassEHealth.String() != "e-health" || ClassEMBB.String() != "eMBB" {
		t.Fatal("class names wrong")
	}
	if ServiceClass(99).String() != "ServiceClass(99)" {
		t.Fatal("unknown class formatting")
	}
}

// Property: penalties are monotonically non-decreasing and equal
// violationEpochs * penaltyEUR.
func TestPropertyPenaltyAccounting(t *testing.T) {
	f := func(epochs []struct{ D, S uint8 }) bool {
		s, _ := New("p", validReq())
		s.Admit()
		violations := 0
		for _, e := range epochs {
			d, srv := float64(e.D), float64(e.S)
			if s.RecordEpoch(d, srv) {
				violations++
			}
		}
		a := s.Accounting()
		return a.ViolationEpochs == violations &&
			a.PenaltyEUR == float64(violations)*2 &&
			a.ServedEpochs == len(epochs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
