package slice

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPLMNAllocateReleaseCycle(t *testing.T) {
	a := NewPLMNAllocator("001", 3)
	p1, err := a.Allocate("s1")
	if err != nil {
		t.Fatal(err)
	}
	if p1.MCC != "001" || p1.MNC != "01" {
		t.Fatalf("first PLMN %v", p1)
	}
	p2, _ := a.Allocate("s2")
	p3, _ := a.Allocate("s3")
	if _, err := a.Allocate("s4"); !errors.Is(err, ErrPLMNExhausted) {
		t.Fatalf("4th allocate on limit-3: %v", err)
	}
	a.Release(p2)
	p4, err := a.Allocate("s4")
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p2 {
		t.Fatalf("recycled PLMN %v, want %v", p4, p2)
	}
	_ = p3
}

func TestPLMNOwner(t *testing.T) {
	a := NewPLMNAllocator("", 0)
	p, _ := a.Allocate("sliceX")
	owner, ok := a.Owner(p)
	if !ok || owner != "sliceX" {
		t.Fatalf("owner = %v %v", owner, ok)
	}
	a.Release(p)
	if _, ok := a.Owner(p); ok {
		t.Fatal("released PLMN still owned")
	}
}

func TestPLMNReleaseUnknownIsNoop(t *testing.T) {
	a := NewPLMNAllocator("001", 2)
	a.Release(PLMN{MCC: "001", MNC: "55"})
	if a.Available() != 2 {
		t.Fatal("release of unknown PLMN changed availability")
	}
}

func TestPLMNDoubleReleaseDoesNotDuplicate(t *testing.T) {
	a := NewPLMNAllocator("001", 2)
	p, _ := a.Allocate("s1")
	a.Release(p)
	a.Release(p)
	if got := a.Available(); got != 2 {
		t.Fatalf("available %d after double release", got)
	}
	// Pool must not hand the same PLMN out twice concurrently.
	q1, _ := a.Allocate("s2")
	q2, err := a.Allocate("s3")
	if err != nil {
		t.Fatal(err)
	}
	if q1 == q2 {
		t.Fatalf("duplicate PLMN %v handed out", q1)
	}
}

func TestPLMNInUseSorted(t *testing.T) {
	a := NewPLMNAllocator("001", 6)
	for i := 0; i < 5; i++ {
		a.Allocate(ID(rune('a' + i)))
	}
	got := a.InUse()
	if len(got) != 5 {
		t.Fatalf("in use %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].MNC <= got[i-1].MNC {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestPLMNDefaultLimit(t *testing.T) {
	a := NewPLMNAllocator("001", 0)
	if a.Available() != DefaultPLMNLimit {
		t.Fatalf("default limit %d", a.Available())
	}
}

// Property: after any sequence of allocate/release, the number in use plus
// available equals the limit, and no PLMN is ever owned twice.
func TestPropertyPLMNConservation(t *testing.T) {
	f := func(ops []bool) bool {
		const limit = 6
		a := NewPLMNAllocator("001", limit)
		var held []PLMN
		for i, alloc := range ops {
			if alloc {
				p, err := a.Allocate(ID(rune(i)))
				if err == nil {
					held = append(held, p)
				} else if len(held) != limit {
					return false // exhausted while not full
				}
			} else if len(held) > 0 {
				a.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		inUse := a.InUse()
		if len(inUse) != len(held) {
			return false
		}
		seen := map[PLMN]bool{}
		for _, p := range inUse {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return a.Available() == limit-len(held)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
