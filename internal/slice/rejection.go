package slice

import (
	"errors"
	"fmt"
	"sync"
)

// RejectCode is the stable, machine-readable taxonomy of admission-rejection
// causes. The codes are the dashboard's histogram buckets, the REST API's
// `reject_code` field and slicectl's bracketed tag — they are part of the
// public surface and must stay stable across releases; the human-readable
// detail string may change freely.
//
// RejectCode implements error so the codes double as errors.Is sentinels:
//
//	if errors.Is(cause, slice.RejectRadioCapacity) { ... }
type RejectCode string

// The rejection taxonomy. Every domain classifies its own failures; the
// engine never inspects detail strings.
const (
	// RejectPLMNExhausted: no free PLMN broadcast slot (orchestrator
	// allocator or a cell's MOCN SIB1 list).
	RejectPLMNExhausted RejectCode = "plmn-exhausted"
	// RejectRadioCapacity: the radio domain cannot carry the estimated
	// load (capacity-ledger check or PRB reservation failure).
	RejectRadioCapacity RejectCode = "radio-capacity"
	// RejectLatencyUnmeetable: no placement satisfies the latency budget.
	RejectLatencyUnmeetable RejectCode = "latency-unmeetable"
	// RejectTransportCapacity: no feasible transport path with enough
	// residual bandwidth.
	RejectTransportCapacity RejectCode = "transport-capacity"
	// RejectCloudCapacity: the chosen data center cannot host the vEPC.
	RejectCloudCapacity RejectCode = "cloud-capacity"
	// RejectMECCapacity: the edge MEC pool cannot place the slice's app.
	RejectMECCapacity RejectCode = "mec-capacity"
	// RejectRevenuePolicy: the revenue-maximization policy turned the
	// request down (density floor, penalty-aware check, batch admission).
	RejectRevenuePolicy RejectCode = "revenue-policy"
	// RejectFaultInjected: a chaos-armed fault (ctrl.FaultInjector) failed a
	// domain's transactional verb. Chaos scenarios assert on this bucket to
	// prove scripted faults reject through the normal taxonomy.
	RejectFaultInjected RejectCode = "fault-injected"
	// RejectClusterUnavailable: the federation tier cannot place the request
	// because a required member cluster is partitioned, failed, or unknown.
	RejectClusterUnavailable RejectCode = "cluster-unavailable"
	// RejectInternal: a domain panicked mid-transaction (double-release or
	// substrate corruption); the engine recovered and converted the panic to
	// a typed rejection instead of crashing the orchestrator.
	RejectInternal RejectCode = "internal"
	// RejectOther: unclassified (fault-injection wrappers, future domains
	// without a dedicated code).
	RejectOther RejectCode = "other"
)

// Error implements error, making each code an errors.Is target.
func (c RejectCode) Error() string { return string(c) }

// RejectionCause is a typed admission rejection: a stable code, the domain
// that raised it and the human-readable detail shown on the dashboard. It
// implements error and participates in errors.Is/errors.As chains — both
// `errors.Is(cause, slice.RejectRadioCapacity)` and unwrapping to the
// underlying substrate error work.
type RejectionCause struct {
	// Code is the stable taxonomy bucket.
	Code RejectCode `json:"code"`
	// Domain names the domain that classified the failure ("" for
	// orchestrator-level policy rejections).
	Domain string `json:"domain,omitempty"`
	// Detail is the human-readable reason.
	Detail string `json:"detail"`

	err error // wrapped substrate error, if any
	// pooled marks causes owned by the fast-reject pool: RecycleRejection
	// returns only these, so shared causes (memoized feasibility outcomes,
	// causes stored in slice state) are never recycled under a reader.
	pooled bool
}

// Rejectf builds a cause with a formatted detail. %w verbs wrap the
// underlying error into the cause's chain.
func Rejectf(code RejectCode, domain, format string, args ...any) *RejectionCause {
	err := fmt.Errorf(format, args...)
	return &RejectionCause{Code: code, Domain: domain, Detail: err.Error(), err: err}
}

// Error implements error.
func (c *RejectionCause) Error() string { return c.Detail }

// Unwrap exposes the underlying substrate error to errors.Is/As.
func (c *RejectionCause) Unwrap() error { return c.err }

// Is matches RejectCode sentinels and other causes by code.
func (c *RejectionCause) Is(target error) bool {
	switch t := target.(type) {
	case RejectCode:
		return c.Code == t
	case *RejectionCause:
		return t != nil && c.Code == t.Code
	}
	return false
}

// causePool backs the zero-allocation fast-reject path: rejection storms
// produce one cause per probe, and pooling them keeps the storm allocation
// free in steady state.
var causePool = sync.Pool{New: func() any { return new(RejectionCause) }}

// PooledRejection returns a pooled cause carrying a prebuilt detail string
// (no formatting on the hot path). The caller owns it until handing it to
// RecycleRejection; it must not be stored anywhere that outlives that call.
func PooledRejection(code RejectCode, domain, detail string) *RejectionCause {
	c := causePool.Get().(*RejectionCause)
	c.Code, c.Domain, c.Detail, c.err, c.pooled = code, domain, detail, nil, true
	return c
}

// RecycleRejection returns a PooledRejection cause to the pool. Causes built
// by Rejectf/CauseOf — including memoized feasibility outcomes shared across
// requests — are left for the garbage collector, so callers may pass any
// cause they were handed without tracking its provenance.
func RecycleRejection(c *RejectionCause) {
	if c == nil || !c.pooled {
		return
	}
	*c = RejectionCause{}
	causePool.Put(c)
}

// CauseOf coerces err into a typed cause: an existing *RejectionCause in
// err's chain is returned as-is, anything else is wrapped under code.
func CauseOf(err error, code RejectCode, domain string) *RejectionCause {
	if err == nil {
		return nil
	}
	var c *RejectionCause
	if errors.As(err, &c) {
		return c
	}
	return &RejectionCause{Code: code, Domain: domain, Detail: err.Error(), err: err}
}
