package slice

import (
	"fmt"
	"sort"
	"sync"
)

// PLMN is a Public Land Mobile Network identifier (MCC+MNC). The demo maps
// each network slice onto a dedicated PLMN dynamically installed in the
// MOCN-sharing eNBs, because no commercial slicing equipment existed.
type PLMN struct {
	// MCC is the 3-digit mobile country code, e.g. "001" (test range).
	MCC string `json:"mcc"`
	// MNC is the 2-digit mobile network code.
	MNC string `json:"mnc"`
}

// String renders the PLMN as MCC-MNC, e.g. "001-01".
func (p PLMN) String() string { return p.MCC + "-" + p.MNC }

// IsZero reports whether the PLMN is unset.
func (p PLMN) IsZero() bool { return p.MCC == "" && p.MNC == "" }

// PLMNAllocator hands out dedicated PLMN IDs from the test MCC range and
// recycles those of terminated slices. An eNB can only broadcast a bounded
// number of PLMNs under MOCN (six per 3GPP TS 36.331 SIB1), so exhaustion is
// a real admission-rejection cause the orchestrator must surface.
type PLMNAllocator struct {
	mu    sync.Mutex
	mcc   string
	limit int
	inUse map[PLMN]ID
	free  []PLMN
	next  int
}

// DefaultPLMNLimit matches the SIB1 limit of 6 PLMN identities per cell
// broadcast; the demo's two eNBs broadcast a shared MOCN list.
const DefaultPLMNLimit = 6

// NewPLMNAllocator returns an allocator over mcc with at most limit
// simultaneously assigned PLMNs. limit <= 0 selects DefaultPLMNLimit.
func NewPLMNAllocator(mcc string, limit int) *PLMNAllocator {
	if mcc == "" {
		mcc = "001"
	}
	if limit <= 0 {
		limit = DefaultPLMNLimit
	}
	return &PLMNAllocator{
		mcc:   mcc,
		limit: limit,
		inUse: make(map[PLMN]ID),
	}
}

// ErrPLMNExhausted is returned when all broadcastable PLMN slots are taken.
var ErrPLMNExhausted = fmt.Errorf("slice: PLMN broadcast list full (MOCN limit)")

// Allocate assigns a free PLMN to the slice.
func (a *PLMNAllocator) Allocate(owner ID) (PLMN, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.inUse) >= a.limit {
		return PLMN{}, fmt.Errorf("%w: %d in use", ErrPLMNExhausted, len(a.inUse))
	}
	var p PLMN
	if n := len(a.free); n > 0 {
		p = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		a.next++
		p = PLMN{MCC: a.mcc, MNC: fmt.Sprintf("%02d", a.next)}
	}
	a.inUse[p] = owner
	return p, nil
}

// Release returns the slice's PLMN to the pool. Releasing an unknown PLMN is
// a no-op so teardown paths stay idempotent.
func (a *PLMNAllocator) Release(p PLMN) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.inUse[p]; !ok {
		return
	}
	delete(a.inUse, p)
	a.free = append(a.free, p)
}

// Owner reports which slice currently holds the PLMN.
func (a *PLMNAllocator) Owner(p PLMN) (ID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.inUse[p]
	return id, ok
}

// InUse returns the currently broadcast PLMNs in deterministic order —
// exactly the MOCN list the eNBs would advertise in SIB1.
func (a *PLMNAllocator) InUse() []PLMN {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PLMN, 0, len(a.inUse))
	for p := range a.inUse {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MCC != out[j].MCC {
			return out[i].MCC < out[j].MCC
		}
		return out[i].MNC < out[j].MNC
	})
	return out
}

// PLMNAssignment is one in-use entry of an exported allocator state.
type PLMNAssignment struct {
	PLMN  PLMN `json:"plmn"`
	Owner ID   `json:"owner"`
}

// PLMNState is the allocator's durable state for checkpoint snapshots.
// Free preserves stack order (Allocate pops the tail), so a restored
// allocator recycles identifiers in exactly the original order.
type PLMNState struct {
	Next  int              `json:"next"`
	Free  []PLMN           `json:"free,omitempty"`
	InUse []PLMNAssignment `json:"in_use,omitempty"`
}

// Export captures the allocator state for a snapshot. InUse is sorted by
// PLMN for a canonical encoding; Free keeps its stack order.
func (a *PLMNAllocator) Export() PLMNState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := PLMNState{Next: a.next, Free: append([]PLMN(nil), a.free...)}
	for p, id := range a.inUse {
		st.InUse = append(st.InUse, PLMNAssignment{PLMN: p, Owner: id})
	}
	sort.Slice(st.InUse, func(i, j int) bool {
		if st.InUse[i].PLMN.MCC != st.InUse[j].PLMN.MCC {
			return st.InUse[i].PLMN.MCC < st.InUse[j].PLMN.MCC
		}
		return st.InUse[i].PLMN.MNC < st.InUse[j].PLMN.MNC
	})
	return st
}

// Restore replaces the allocator state with an exported snapshot.
func (a *PLMNAllocator) Restore(st PLMNState) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next = st.Next
	a.free = append([]PLMN(nil), st.Free...)
	a.inUse = make(map[PLMN]ID, len(st.InUse))
	for _, e := range st.InUse {
		a.inUse[e.PLMN] = e.Owner
	}
}

// Impose assigns a specific PLMN to the slice — the log-replay primitive.
// Where Allocate picks the next identifier itself, replay must reproduce
// the exact PLMN the original run assigned: the identifier is removed from
// the free stack if recycled, or the fresh-numbering counter is advanced
// past it.
func (a *PLMNAllocator) Impose(p PLMN, owner ID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cur, ok := a.inUse[p]; ok {
		return fmt.Errorf("slice: PLMN %s already assigned to %s", p, cur)
	}
	if len(a.inUse) >= a.limit {
		return fmt.Errorf("%w: %d in use", ErrPLMNExhausted, len(a.inUse))
	}
	for i := len(a.free) - 1; i >= 0; i-- {
		if a.free[i] == p {
			a.free = append(a.free[:i], a.free[i+1:]...)
			a.inUse[p] = owner
			return nil
		}
	}
	var n int
	if _, err := fmt.Sscanf(p.MNC, "%d", &n); err == nil && n > a.next {
		a.next = n
	}
	a.inUse[p] = owner
	return nil
}

// Available reports how many more PLMNs can be assigned.
func (a *PLMNAllocator) Available() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit - len(a.inUse)
}
